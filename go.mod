module selflearn

go 1.22
