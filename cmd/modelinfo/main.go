// Command modelinfo inspects a detector checkpoint produced by
// cmd/deploy or pipeline.Session.SaveDetector: ensemble shape, flash
// footprint of the generated C tables, and — for freshly trained models —
// the most important features.
//
// Usage:
//
//	modelinfo -model firmware/chb01_detector.json
//	modelinfo -train chb01    (train a small detector in-process and inspect it)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"selflearn/internal/chbmit"
	"selflearn/internal/export/cgen"
	"selflearn/internal/features"
	"selflearn/internal/ml/forest"
	"selflearn/internal/pipeline"
	"selflearn/internal/platform"
	"selflearn/internal/signal"
)

func main() {
	model := flag.String("model", "", "path to a detector JSON checkpoint")
	train := flag.String("train", "", "train a quick detector for this catalog patient instead")
	topK := flag.Int("top", 10, "number of top features to list")
	flag.Parse()

	var f *forest.Forest
	var names []string
	switch {
	case *model != "":
		r, err := os.Open(*model)
		if err != nil {
			fatal(err)
		}
		defer r.Close()
		if f, err = forest.Load(r); err != nil {
			fatal(err)
		}
	case *train != "":
		var err error
		if f, err = quickTrain(*train); err != nil {
			fatal(err)
		}
		base := features.EGlassFeatureNames()
		for _, ch := range []string{signal.ChannelF7T3, signal.ChannelF8T4} {
			for _, n := range base {
				names = append(names, ch+"/"+n)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "modelinfo: need -model or -train")
		os.Exit(2)
	}

	fmt.Printf("trees: %d\n", f.NumTrees())
	fmt.Printf("out-of-bag error: %.4f\n", f.OOBError())
	spec, err := cgen.Flatten(f)
	if err != nil {
		fatal(err)
	}
	kb := (spec.FlashBytes() + 1023) / 1024
	fmt.Printf("nodes: %d, input features: %d\n", len(spec.Feature), spec.NumFeatures)
	fmt.Printf("C tables: %d bytes (%d KB) — STM32L151 flash %d KB, fits with hour buffer: %v\n",
		spec.FlashBytes(), kb, platform.FlashKB,
		kb+platform.HourBufferKB <= platform.FlashKB)

	imp := f.Importances()
	var any bool
	for _, v := range imp {
		if v > 0 {
			any = true
			break
		}
	}
	if !any {
		fmt.Println("feature importances: not available (deserialized model)")
		return
	}
	type fi struct {
		idx int
		v   float64
	}
	ranked := make([]fi, len(imp))
	for i, v := range imp {
		ranked[i] = fi{i, v}
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].v > ranked[b].v })
	if *topK > len(ranked) {
		*topK = len(ranked)
	}
	fmt.Printf("top %d features by mean decrease in impurity:\n", *topK)
	for _, r := range ranked[:*topK] {
		name := fmt.Sprintf("feature[%d]", r.idx)
		if names != nil {
			name = names[r.idx]
		}
		fmt.Printf("  %-36s %6.2f %%\n", name, 100*r.v)
	}
}

func quickTrain(patientID string) (*forest.Forest, error) {
	p, err := chbmit.PatientByID(patientID)
	if err != nil {
		return nil, err
	}
	opts := pipeline.DefaultOptions()
	opts.CropDuration = 900
	opts.ForestCfg.NumTrees = 30
	session, err := pipeline.NewSession(p, opts)
	if err != nil {
		return nil, err
	}
	for ev := 1; ev <= 2 && ev <= len(p.Seizures); ev++ {
		rec, err := p.SeizureRecord(ev, 0)
		if err != nil {
			return nil, err
		}
		truth := rec.Seizures[0]
		lo := truth.Start - 400
		if lo < 0 {
			lo = 0
		}
		buf, err := rec.Slice(lo, lo+900)
		if err != nil {
			return nil, err
		}
		if _, err := session.ReportMissedSeizure(buf); err != nil {
			return nil, err
		}
	}
	return session.Detector(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
