// Command shardd is a standalone shard worker: one serve.Server —
// sessions, model cache, background learners, the whole self-learning
// loop — wrapped in the cluster wire protocol and exposed over TCP.
// A serving front end (cmd/serve -cluster host:port,...) routes
// patients across N shardd processes by rendezvous hashing; each shardd
// owns its patients' sessions and streams alarm/retrain/eviction/shed
// events back to every connected client.
//
// The shard's own admission policy defaults to block-forever: the read
// loop stalling on a full queue is the cluster's flow control (the TCP
// window fills, and the client-side admission policy — where drop/shed
// decisions belong — takes over). Give each shardd its own -store
// directory to persist detectors across restarts; point two shardds at
// shared storage only if they can never own the same patient.
//
// With -peers (the full fleet address list) the shard replicates every
// checkpoint it saves to the next -replicas shards in each patient's
// rendezvous order — the same order the front end routes by — so the
// shard a patient fails over to already holds their detector and the
// patient resumes warm at the same model version.
//
// Configuration must agree with the front end where it matters: -rate
// must match the client's replay rate, the wire protocol version is
// checked in the connection handshake, and the -peers strings must be
// byte-identical to the front end's -cluster list.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	ossignal "os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"selflearn/internal/cluster"
	"selflearn/internal/fault"
	"selflearn/internal/rt"
	"selflearn/internal/serve"
	"selflearn/internal/signal"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7461", "TCP address to serve the shard protocol on")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "serving worker (shard) count inside this process")
	learners := flag.Int("learners", 2, "background retraining workers")
	queue := flag.Int("queue", 256, "per-worker queue depth")
	rate := flag.Float64("rate", 256, "sampling rate in Hz (must match the front end)")
	history := flag.Duration("history", time.Hour, "feature history buffered per session for a-posteriori labeling")
	avgSeizure := flag.Duration("avg-seizure", 25*time.Second, "expert average seizure duration W for the labeling algorithm")
	admission := flag.String("admission", "block", "admission policy on full worker queues: drop, block or shed")
	quality := flag.Bool("quality", false, "reject low-quality sample batches (flatline/clipped channels) before classification")
	refractory := flag.Duration("refractory", 0, "alarm hold-off after a raised alarm (0 = detector default; loadgen's matrix expects 30s)")
	deadline := flag.Duration("deadline", 0, "queue-space wait for -admission block (0 = wait forever: socket backpressure)")
	storeDir := flag.String("store", "", "model checkpoint directory (persists detectors across restarts); empty = in-memory only")
	eventBuffer := flag.Int("events", 4096, "event hub buffer before a lagging consumer drops events")
	peers := flag.String("peers", "", "comma-separated fleet addresses (every shardd, including this one) enabling checkpoint replication")
	advertise := flag.String("advertise", "", "this shard's address as it appears in -peers and the front end's -cluster list (default -listen)")
	replicas := flag.Int("replicas", 1, "next-in-line shards holding a copy of each checkpoint (with -peers)")
	writeDeadline := flag.Duration("write-deadline", 10*time.Second, "socket write deadline for the shard protocol")
	faultsFile := flag.String("faults", "", "fault-injection plan (JSON, see internal/fault) armed at boot: faults the listener, its connections, replication pushes, and the model store")
	flag.Parse()

	// The fault plan arms at boot, so window offsets count from process
	// start. Connections accepted on the wrapped listener match rules by
	// the listener label (this shard's advertised address), the store by
	// label "store".
	var inj *fault.Injector
	if *faultsFile != "" {
		data, err := os.ReadFile(*faultsFile)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := fault.LoadPlan(data)
		if err != nil {
			log.Fatal(err)
		}
		if inj, err = fault.New(plan); err != nil {
			log.Fatal(err)
		}
		inj.Arm()
		log.Printf("shardd: fault plan armed: %d windows (fault seed %d)", len(inj.Windows()), plan.Seed)
	}

	opts := []serve.Option{serve.WithEventBuffer(*eventBuffer)}
	switch *admission {
	case "drop":
		opts = append(opts, serve.WithAdmission(serve.DropOnFull()))
	case "block":
		opts = append(opts, serve.WithAdmission(serve.BlockWithDeadline(*deadline)))
	case "shed":
		opts = append(opts, serve.WithAdmission(serve.ShedOldest()))
	default:
		log.Fatalf("shardd: unknown -admission %q (want drop, block or shed)", *admission)
	}
	if *storeDir != "" {
		fs, err := serve.NewFileStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		if inj != nil {
			opts = append(opts, serve.WithModelStore(fault.NewStore(fs, inj, "store")))
		} else {
			opts = append(opts, serve.WithModelStore(fs))
		}
	}
	if *quality {
		pf, err := serve.QualityPrefilter(signal.DefaultQuality())
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, serve.WithPrefilter(pf))
	}
	cfg := serve.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		Learners:           *learners,
		SampleRate:         *rate,
		History:            *history,
		AvgSeizureDuration: *avgSeizure,
	}
	if *refractory > 0 {
		cfg.AlarmCfg = rt.DefaultConfig()
		cfg.AlarmCfg.Refractory = *refractory
	}
	srv, err := serve.New(cfg, opts...)
	if err != nil {
		log.Fatal(err)
	}

	copts := cluster.Options{WriteDeadline: *writeDeadline}
	if inj != nil {
		copts.Dialer = inj.Dial // replication pushes run under the plan too
	}
	if *peers != "" {
		self := *advertise
		if self == "" {
			self = *listen
		}
		repl := &cluster.ReplicationConfig{
			Self:     self,
			Fleet:    strings.Split(*peers, ","),
			Replicas: *replicas,
		}
		if err := repl.Validate(); err != nil {
			log.Fatal(err)
		}
		copts.Replication = repl
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	if inj != nil {
		label := *advertise
		if label == "" {
			label = *listen
		}
		ln = fault.NewListener(ln, inj, label)
	}
	ss := cluster.Serve(srv, ln, copts)
	replication := "off"
	if copts.Replication != nil {
		replication = *peers
	}
	log.Printf("shardd: serving on %s (workers=%d learners=%d admission=%s rate=%gHz store=%q replication=%s)",
		ss.Addr(), *workers, *learners, *admission, *rate, *storeDir, replication)

	sig := make(chan os.Signal, 1)
	ossignal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shardd: shutting down")
	ss.Close()  // stop accepting, sever clients
	srv.Close() // drain queues, finish retrains, flush checkpoints
	st := srv.Snapshot()
	log.Printf("shardd: served %d windows, %d alarms, %d retrains (%d errors) across %d sessions",
		st.Windows, st.Alarms, st.Retrains, st.RetrainErrors, st.SessionsCreated)
}
