package main

import "testing"

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{4, 2}, 3},
		{[]float64{58300, 68700, 71000}, 68700}, // one noisy low run cannot drag the median
		{[]float64{1, 2, 3, 4}, 2.5},
	}
	for _, c := range cases {
		if got := median(append([]float64(nil), c.xs...)); got != c.want {
			t.Errorf("median(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestMergeMedianOfN(t *testing.T) {
	// The flap this mode exists to stop: a committed workers=4 baseline
	// of 68.7k windows/s, three fresh runs of which one dips to 58.3k
	// (a >10% single-run regression at GOMAXPROCS=1) while the median
	// holds. The merged series must be the healthy median, and a series
	// missing from any run must vanish so the gate reports it.
	fresh := []snapshot{
		{Benchmark: "Serve", WindowsPerSec: map[string]float64{"workers=4": 58300, "workers=2": 66000}},
		{Benchmark: "Serve", WindowsPerSec: map[string]float64{"workers=4": 69100, "workers=2": 67000}},
		{Benchmark: "Serve", WindowsPerSec: map[string]float64{"workers=4": 70200}},
	}
	m := merge(fresh)
	if got := m.WindowsPerSec["workers=4"]; got != 69100 {
		t.Errorf("workers=4 median = %g, want 69100", got)
	}
	if _, ok := m.WindowsPerSec["workers=2"]; ok {
		t.Error("series missing from one run survived the merge")
	}

	// Single-snapshot merge is the identity, so the 2-arg mode is
	// unchanged.
	one := merge(fresh[:1])
	if got := one.WindowsPerSec["workers=4"]; got != 58300 {
		t.Errorf("single-run merge = %g, want 58300", got)
	}
}
