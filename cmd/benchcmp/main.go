// Command benchcmp compares BENCH_*.json throughput snapshots (the
// machine-readable files internal/serve's TestMain writes) and exits
// nonzero when any series regressed by more than -threshold — the
// regression gate of CI's bench-snapshot job.
//
//	benchcmp [-threshold 0.10] committed.json fresh.json
//	benchcmp [-threshold 0.10] committed.json run1.json run2.json run3.json
//
// With more than one fresh snapshot, each series is compared against
// the per-series median across the fresh runs — the median-of-N mode
// the CI gate uses so one noisy run (a GOMAXPROCS=1 scheduler hiccup
// can swing a single run past 10%) cannot flap the gate.
//
// Every series present in the committed snapshot must exist in every
// fresh one (a silently vanished benchmark is itself a regression);
// series the fresh runs added are reported but never gate. Comparisons
// are only meaningful within one hardware class: re-record the
// committed snapshots when the benchmark shape or the CI runner class
// changes, not to chase run-to-run noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type snapshot struct {
	Benchmark     string             `json:"benchmark"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	WindowsPerSec map[string]float64 `json:"windows_per_sec"`
}

func load(path string) snapshot {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %s: %v\n", path, err)
		os.Exit(2)
	}
	if len(s.WindowsPerSec) == 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %s: no windows_per_sec series\n", path)
		os.Exit(2)
	}
	return s
}

// median of a non-empty slice; averages the middle pair on even length.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// merge folds N fresh snapshots into one whose per-series rate is the
// median across the runs. A series missing from any single run is
// dropped entirely, so the committed-side completeness check below
// reports it as a regression rather than comparing a partial median.
func merge(fresh []snapshot) snapshot {
	series := map[string][]float64{}
	for _, s := range fresh {
		for name, v := range s.WindowsPerSec {
			series[name] = append(series[name], v)
		}
	}
	out := snapshot{Benchmark: fresh[0].Benchmark, GOMAXPROCS: fresh[0].GOMAXPROCS, WindowsPerSec: map[string]float64{}}
	for name, vs := range series {
		if len(vs) == len(fresh) {
			out.WindowsPerSec[name] = median(vs)
		}
	}
	return out
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "max tolerated fractional regression per series")
	flag.Parse()
	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold 0.10] committed.json fresh.json [fresh2.json ...]")
		os.Exit(2)
	}
	was := load(flag.Arg(0))
	fresh := make([]snapshot, 0, flag.NArg()-1)
	for _, path := range flag.Args()[1:] {
		s := load(path)
		if was.Benchmark != s.Benchmark {
			fmt.Fprintf(os.Stderr, "benchcmp: comparing %s against %s (%s)\n", was.Benchmark, s.Benchmark, path)
			os.Exit(2)
		}
		fresh = append(fresh, s)
	}
	now := merge(fresh)
	if len(fresh) > 1 {
		fmt.Printf("benchcmp: median of %d fresh runs\n", len(fresh))
	}

	names := make([]string, 0, len(was.WindowsPerSec))
	for name := range was.WindowsPerSec {
		names = append(names, name)
	}
	sort.Strings(names)
	fail := false
	for _, name := range names {
		old := was.WindowsPerSec[name]
		cur, ok := now.WindowsPerSec[name]
		if !ok {
			fmt.Printf("FAIL  %-16s series missing from fresh snapshot(s)\n", name)
			fail = true
			continue
		}
		if old <= 0 {
			fmt.Printf("skip  %-16s committed rate %.0f is not comparable\n", name, old)
			continue
		}
		delta := (cur - old) / old
		verdict := "ok  "
		if delta < -*threshold {
			verdict = "FAIL"
			fail = true
		}
		fmt.Printf("%s  %-16s %10.0f -> %10.0f windows/s (%+.1f%%)\n", verdict, name, old, cur, 100*delta)
	}
	for name := range now.WindowsPerSec {
		if _, ok := was.WindowsPerSec[name]; !ok {
			fmt.Printf("new   %-16s %10.0f windows/s (no committed baseline)\n", name, now.WindowsPerSec[name])
		}
	}
	if fail {
		fmt.Printf("benchcmp: %s regressed more than %.0f%% vs %s\n", now.Benchmark, 100**threshold, flag.Arg(0))
		os.Exit(1)
	}
}
