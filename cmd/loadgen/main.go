// Command loadgen replays adversarial scenarios against the serving
// layer and emits one eval row (JSON) per scenario: admitted windows,
// quality rejections, admission losses, and detection metrics scored
// against ground truth. By default it runs the pinned scenario matrix
// (internal/scenario.Matrix, documented in EXPERIMENTS.md) against an
// in-process server; -cluster points it at a shardd fleet instead, and
// -spec loads a custom scenario from JSON.
//
//	loadgen -list
//	loadgen -scenario artifact-dropout
//	loadgen -scenario clean-replay,patient-churn -out rows.json
//	loadgen -spec myscenario.json -cluster 127.0.0.1:7481,127.0.0.1:7482
//	loadgen -scenario diurnal-wave -speed 4
//	loadgen -scenario clean-replay -cluster 127.0.0.1:7461 -faults plan.json
//
// Cluster runs need the fleet started with a -rate matching the
// workload's sample rate (128 for the synthetic matrix, 256 for
// chbmit-replay) and, for scenarios that set quality thresholds,
// shardd -quality — the engine mirrors the prefilter client-side to
// map ground truth into admitted stream time, so the two must agree.
// Rows are exactly reproducible on a fresh fleet; scenarios after the
// first in one invocation run under prefixed patient IDs so their
// window accounting starts on cold sessions.
//
// Scenarios with a prefilter section run the stage-1 amplitude gate in
// this process — the "on device" half of the edge/cloud split — and
// need every shard speaking wire v5; rows then carry uplink_bytes,
// suppressed_windows and audit counters accounted in exact
// wire-protocol bytes.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"selflearn/internal/cluster"
	"selflearn/internal/fault"
	"selflearn/internal/scenario"
	"selflearn/internal/serve"
	"selflearn/internal/signal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		list     = flag.Bool("list", false, "print the pinned scenario matrix and exit")
		names    = flag.String("scenario", "", `comma-separated matrix scenario names, or "all" (default: all)`)
		specFile = flag.String("spec", "", "path to a custom scenario spec (JSON, see internal/scenario.Spec)")
		fleet    = flag.String("cluster", "", "comma-separated shardd addresses; empty runs in-process")
		seed     = flag.Int64("seed", -1, "override every scenario's seed (-1 keeps the pinned seeds)")
		patients = flag.Int("patients", 0, "override the patient count (0 keeps each spec's)")
		duration = flag.Float64("duration", 0, "override stream seconds per patient (0 keeps each spec's)")
		speed    = flag.Float64("speed", 0, "real-time pacing multiple (1 = wall clock, 0 = full speed)")
		faults   = flag.String("faults", "", "fault-injection plan (JSON, see internal/fault); overrides each spec's faults section")
		out      = flag.String("out", "", "write eval rows to this file instead of stdout")
	)
	flag.Parse()

	if *list {
		for _, s := range scenario.Matrix() {
			fmt.Printf("%-22s seed=%-4d %s\n", s.Name, s.Seed, describe(s))
		}
		return
	}

	specs, err := selectSpecs(*names, *specFile)
	if err != nil {
		log.Fatal(err)
	}
	var plan *fault.Plan
	if *faults != "" {
		data, err := os.ReadFile(*faults)
		if err != nil {
			log.Fatal(err)
		}
		if plan, err = fault.LoadPlan(data); err != nil {
			log.Fatal(err)
		}
	}
	for i := range specs {
		if *seed >= 0 {
			specs[i].Seed = *seed
		}
		if *patients > 0 {
			specs[i].Patients = *patients
		}
		if *duration > 0 {
			specs[i].Duration = *duration
		}
		if plan != nil {
			specs[i].Faults = plan
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)

	addrs := splitList(*fleet)
	for i, spec := range specs {
		start := time.Now()
		res, err := runOne(spec, addrs, i, *speed)
		if err != nil {
			log.Fatalf("%s: %v", spec.Name, err)
		}
		line := fmt.Sprintf("%s: %d windows, %d rejected, %d/%d detected, %.1f FA/h, %d uplink bytes",
			res.Name, res.Windows, res.QualityRejected, res.Detected, res.Events,
			res.FalseAlarmsPerHour, res.UplinkBytes)
		if res.SuppressedWindows > 0 {
			line += fmt.Sprintf(" (%d suppressed, %d audited, %d disagreed)",
				res.SuppressedWindows, res.AuditSamples, res.AuditDisagreements)
		}
		log.Printf("%s (%.1fs)", line, time.Since(start).Seconds())
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
	}
}

// selectSpecs resolves the -scenario and -spec flags into the run list.
func selectSpecs(names, specFile string) ([]scenario.Spec, error) {
	var specs []scenario.Spec
	switch {
	case names == "all" || (names == "" && specFile == ""):
		specs = scenario.Matrix()
	case names != "":
		for _, name := range splitList(names) {
			s, ok := scenario.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("unknown scenario %q (try -list)", name)
			}
			specs = append(specs, s)
		}
	}
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		var s scenario.Spec
		if err := json.Unmarshal(data, &s); err != nil {
			return nil, fmt.Errorf("%s: %w", specFile, err)
		}
		if s.Name == "" {
			s.Name = strings.TrimSuffix(filepath.Base(specFile), filepath.Ext(specFile))
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// runOne builds and replays a single scenario against the selected
// backend, returning its eval row.
func runOne(spec scenario.Spec, addrs []string, idx int, speed float64) (*scenario.Result, error) {
	w, err := scenario.Build(spec)
	if err != nil {
		return nil, err
	}
	w.Speed = speed
	c := scenario.NewCollector()

	if len(addrs) == 0 {
		if w.Spec.Faults != nil {
			log.Printf("%s: faults ignored in-process (network fault injection needs -cluster)", w.Spec.Name)
		}
		srv, err := scenario.NewLocalServer(w, c)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		return w.Run(scenario.LocalBackend(srv), c)
	}

	if w.Spec.Quality != nil {
		if *w.Spec.Quality == signal.DefaultQuality() {
			log.Printf("%s: expects the fleet started with -quality", w.Spec.Name)
		} else {
			log.Printf("%s: custom quality thresholds cannot be installed remotely; the fleet's prefilter must match or rejection counts will not", w.Spec.Name)
		}
	}
	log.Printf("%s: expects the fleet started with -rate %g", w.Spec.Name, w.SampleRate)
	if w.Spec.Prefilter != nil {
		log.Printf("%s: expects the fleet started with -avg-seizure 20s — stage-2 audits score with the shard's model, and a fleet trained under different labels inflates audit disagreements", w.Spec.Name)
	}
	if idx > 0 {
		// Sessions persist on the fleet between scenarios: a reused
		// patient ID would resume a warm feature streamer and break the
		// cold-start window accounting, so later scenarios in one
		// invocation run under prefixed IDs.
		for s := range w.Streams {
			w.Streams[s].ID = fmt.Sprintf("s%d-%s", idx, w.Streams[s].ID)
		}
	}

	copts := cluster.Options{Admission: admissionPolicy(w.Spec.Admission)}
	if w.Spec.Faults != nil {
		// Every router and dial runs under the plan from here on; plan
		// time starts now, so window offsets are relative to the
		// scenario's cluster bring-up.
		inj, err := fault.New(w.Spec.Faults)
		if err != nil {
			return nil, err
		}
		inj.Arm()
		copts.Dialer = inj.Dial
		log.Printf("%s: fault plan armed: %d windows (fault seed %d)", w.Spec.Name, len(inj.Windows()), w.Spec.Faults.Seed)
	}
	r, err := cluster.Dial(addrs, copts)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if err := r.WaitReady(10 * time.Second); err != nil {
		return nil, err
	}
	if w.Spec.Prefilter != nil && !r.SupportsPrefilter() {
		// A pre-v5 shard would silently drop the digest/audit frames and
		// the engine's exact-drain accounting would hang; refuse up front.
		return nil, fmt.Errorf("scenario declares a prefilter but the fleet does not speak wire v5")
	}
	go func() {
		for ev := range r.Events() {
			c.Observe(ev)
		}
	}()
	return w.Run(routerBackend{r}, c)
}

func admissionPolicy(name string) serve.AdmissionPolicy {
	switch name {
	case "drop":
		return serve.DropOnFull()
	case "shed":
		return serve.ShedOldest()
	default:
		return serve.BlockWithDeadline(0)
	}
}

// routerBackend drives a shardd fleet through a cluster.Router. The
// engine only retries serve.ErrBackpressure, so the handle absorbs the
// transport-level retryables (a shard failing over) with its own
// bounded retry.
type routerBackend struct{ r *cluster.Router }

func (b routerBackend) Open(patient string) (scenario.Handle, error) {
	st, err := b.r.Open(patient)
	if err != nil {
		return nil, err
	}
	return clusterHandle{st}, nil
}

func (b routerBackend) Snapshot() serve.Stats { return b.r.Snapshot() }

type clusterHandle struct{ st *cluster.Stream }

func (h clusterHandle) Push(c0, c1 []float64) error {
	return retryTransient(func() error { return h.st.Push(c0, c1) })
}
func (h clusterHandle) Confirm() error {
	return retryTransient(func() error { return h.st.Confirm() })
}

// The PrefilterHandle extension: the stage-1 gate runs in this process
// ("on device"), and these carry its declaration, digests and audit
// samples to the shard over the v5 wire frames.
func (h clusterHandle) DeclarePrefilter(cfg serve.PrefilterConfig) error {
	return retryTransient(func() error { return h.st.DeclarePrefilter(cfg) })
}
func (h clusterHandle) PushDigest(d serve.Digest) error {
	return retryTransient(func() error { return h.st.PushDigest(d) })
}
func (h clusterHandle) PushAudit(c0, c1 []float64) error {
	return retryTransient(func() error { return h.st.PushAudit(c0, c1) })
}
func (h clusterHandle) Close() { h.st.Close() }

// retryTransient retries fn while it fails with a shard outage for up
// to 30 s, passing every other outcome — including
// serve.ErrBackpressure, which the engine owns — straight through.
func retryTransient(fn func() error) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := fn()
		if !errors.Is(err, cluster.ErrShardDown) && !errors.Is(err, cluster.ErrNoShards) {
			return err
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// describe summarizes a matrix spec's adversarial traits for -list.
func describe(s scenario.Spec) string {
	var traits []string
	src := s.Source.Kind
	if src == "" {
		src = "synth"
	}
	traits = append(traits, src)
	if s.Seizures.Count > 0 && s.Source.Kind == "" {
		traits = append(traits, fmt.Sprintf("%d seizures", s.Seizures.Count))
	}
	if s.Artifacts.Blinks || s.Artifacts.Chewing {
		traits = append(traits, "benign artifacts")
	}
	if s.Artifacts.Bursts > 0 {
		traits = append(traits, fmt.Sprintf("%d saturating bursts", s.Artifacts.Bursts))
	}
	if s.Dropouts.Count > 0 {
		traits = append(traits, fmt.Sprintf("%d dropouts", s.Dropouts.Count))
	}
	if s.Churn.Reopens > 0 {
		traits = append(traits, fmt.Sprintf("%d reopens", s.Churn.Reopens))
	}
	if s.Wave.Period > 0 {
		traits = append(traits, fmt.Sprintf("%gs load wave", s.Wave.Period))
	}
	if s.Quality == nil {
		traits = append(traits, "no prefilter")
	}
	if s.Prefilter != nil {
		traits = append(traits, fmt.Sprintf("stage-1 gate ×%g", s.Prefilter.Factor))
	}
	if s.Faults != nil {
		traits = append(traits, fmt.Sprintf("%d fault rules", len(s.Faults.Rules)))
	}
	if s.Patients > 0 {
		traits = append(traits, fmt.Sprintf("%d patients", s.Patients))
	}
	return strings.Join(traits, ", ")
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
