// Command serve replays the synthetic corpus for many simulated
// patients through the concurrent serving subsystem (internal/serve) —
// the load harness for the multi-tenant deployment scenario: N
// wearables streaming EEG to one backend, each closing its own
// self-learning loop.
//
// Every patient Opens a session-handle stream and pushes a synthetic
// recording containing one seizure in one-second batches, optionally
// paced at a real-time multiplier (-speed 1 is wall-clock realtime, 0
// is as fast as the hardware allows). Shortly after each patient's
// seizure ends, the harness issues the patient's confirmation button
// press, which schedules a-posteriori labeling and detector retraining
// on the background learner pool. An Events subscriber prints the live
// alarm stream — the paper's "alarm to caregivers" — alongside retrain
// failures; the final summary cross-checks that every alarm the server
// counted was delivered.
//
// The backend is pluggable: by default the harness runs an in-process
// serve.Server, while -cluster host:port,... replays the identical
// workload across N cmd/shardd processes through the rendezvous-hashing
// TCP router (internal/cluster), with every shard's live alarm stream
// merged back into one feed. Per-patient results are bit-identical
// between the two modes; what changes is the topology.
//
// Flags select the admission policy applied on full shard queues
// (-admission drop|block|shed — client-side queues in cluster mode), an
// on-disk model store so detectors survive restarts (-store DIR, local
// mode only; shardds own their stores), machine-readable output (-json
// emits one JSON object per line: "stats", "alarm", "retrain-error" and
// a final "summary"), and a summary snapshot file (-benchout FILE, how
// CI captures BENCH_cluster.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"selflearn/internal/cluster"
	"selflearn/internal/rt"
	"selflearn/internal/serve"
	"selflearn/internal/synth"
)

// streamHandle is the per-patient surface the replay drives; both
// serve.Stream and cluster.Stream satisfy it, including the wire-v5
// prefilter verbs (-prefilter leaves them uncalled when off).
type streamHandle interface {
	Push(c0, c1 []float64) error
	Confirm() error
	DeclarePrefilter(serve.PrefilterConfig) error
	PushDigest(serve.Digest) error
	PushAudit(c0, c1 []float64) error
	Patient() string
	Close()
}

// backend abstracts the serving topology: one in-process server, or a
// router over N shardd processes.
type backend interface {
	open(patient string) (streamHandle, error)
	events() <-chan serve.Event
	snapshot() serve.Stats
	// modelVersions is the backend's own per-patient model version
	// table, merged over the event-derived view in the summary. Local
	// servers have none (the event stream is lossless in-process); the
	// cluster router tracks what every shard announced.
	modelVersions() map[string]uint64
	close()
}

type localBackend struct{ srv *serve.Server }

func (b localBackend) open(p string) (streamHandle, error) { return b.srv.Open(p) }
func (b localBackend) events() <-chan serve.Event          { return b.srv.Events() }
func (b localBackend) snapshot() serve.Stats               { return b.srv.Snapshot() }
func (b localBackend) modelVersions() map[string]uint64    { return nil }
func (b localBackend) close()                              { b.srv.Close() }

type clusterBackend struct{ r *cluster.Router }

func (b clusterBackend) open(p string) (streamHandle, error) { return b.r.Open(p) }
func (b clusterBackend) events() <-chan serve.Event          { return b.r.Events() }
func (b clusterBackend) snapshot() serve.Stats               { return b.r.Snapshot() }
func (b clusterBackend) modelVersions() map[string]uint64    { return b.r.ModelVersions() }
func (b clusterBackend) close()                              { b.r.Close() }

func main() {
	patients := flag.Int("patients", 64, "number of simulated patients streaming concurrently")
	duration := flag.Float64("duration", 120, "seconds of signal streamed per patient")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "serving worker (shard) count (local mode)")
	learners := flag.Int("learners", 2, "background retraining workers (local mode)")
	speed := flag.Float64("speed", 0, "real-time multiplier (1 = wall clock, 0 = as fast as possible)")
	rate := flag.Float64("rate", 256, "sampling rate in Hz")
	queue := flag.Int("queue", 256, "queue depth: per-worker locally, per-shard outbound in cluster mode")
	statsEvery := flag.Duration("stats", 2*time.Second, "statistics print interval")
	admission := flag.String("admission", "drop", "admission policy on full shard queues: drop, block or shed")
	deadline := flag.Duration("deadline", 50*time.Millisecond, "queue-space wait for -admission block")
	storeDir := flag.String("store", "", "model checkpoint directory (persists detectors across runs); empty = in-memory")
	prefilter := flag.Float64("prefilter", 0, "stage-1 amplitude gate factor run on-device (0 = off; >1 suppresses quiet seconds into digests)")
	clusterAddrs := flag.String("cluster", "", "comma-separated shardd addresses; replaces the in-process server with the TCP router")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON lines instead of text")
	benchOut := flag.String("benchout", "", "write the final summary JSON object to this file")
	flag.Parse()

	if *duration < 60 {
		log.Fatal("serve: -duration must be at least 60 s to fit a seizure and its confirmation")
	}
	var adm serve.AdmissionPolicy
	switch *admission {
	case "drop":
		adm = serve.DropOnFull()
	case "block":
		adm = serve.BlockWithDeadline(*deadline)
	case "shed":
		adm = serve.ShedOldest()
	default:
		log.Fatalf("serve: unknown -admission %q (want drop, block or shed)", *admission)
	}

	var pfCfg *serve.PrefilterConfig
	if *prefilter > 0 {
		// Proactive sampling: the replay loop doesn't service
		// shard-requested audits, so declare a fixed audit cadence.
		cfg := serve.PrefilterConfig{
			Gate:       rt.GateConfig{Factor: *prefilter, HistoryWindows: 64},
			AuditEvery: serve.DefaultAuditEvery,
		}
		if err := cfg.Validate(); err != nil {
			log.Fatalf("serve: -prefilter %g: %v", *prefilter, err)
		}
		pfCfg = &cfg
	}

	clusterMode := *clusterAddrs != ""
	var bk backend
	var topology string
	if clusterMode {
		if *storeDir != "" {
			log.Fatal("serve: -store is a shardd concern in cluster mode (give each shardd its own -store)")
		}
		addrs := strings.Split(*clusterAddrs, ",")
		r, err := cluster.Dial(addrs, cluster.Options{
			QueueDepth:  *queue,
			Admission:   adm,
			EventBuffer: 16 * *patients,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := r.WaitReady(10 * time.Second); err != nil {
			log.Fatal(err)
		}
		if pfCfg != nil && !r.SupportsPrefilter() {
			log.Fatal("serve: -prefilter needs every shardd speaking wire v5")
		}
		bk = clusterBackend{r}
		topology = fmt.Sprintf("%d shardd processes %v", len(addrs), addrs)
	} else {
		opts := []serve.Option{serve.WithEventBuffer(16 * *patients), serve.WithAdmission(adm)}
		if *storeDir != "" {
			fs, err := serve.NewFileStore(*storeDir)
			if err != nil {
				log.Fatal(err)
			}
			opts = append(opts, serve.WithModelStore(fs))
		}
		srv, err := serve.New(serve.Config{
			Workers:            *workers,
			QueueDepth:         *queue,
			Learners:           *learners,
			LearnerQueue:       *patients,
			SampleRate:         *rate,
			History:            time.Duration(*duration) * time.Second,
			AvgSeizureDuration: 25 * time.Second,
		}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		bk = localBackend{srv}
		topology = fmt.Sprintf("%d workers, %d learners", *workers, *learners)
	}

	out := &printer{json: *jsonOut, start: time.Now()}
	out.headline("serving %d patients × %.0f s at %g Hz (%s, admission %s, speed ×%g)",
		*patients, *duration, *rate, topology, *admission, *speed)

	// The delivery path: one subscriber drains every alarm, retrain
	// outcome, eviction and shed; the summary cross-checks its alarm
	// count against the server's counter.
	var alarmsObserved, retrainsObserved, evictionsObserved, shedsObserved, driftsObserved uint64
	modelVersions := map[string]uint64{} // per-patient, from model-updated events
	eventsDone := make(chan struct{})
	events := bk.events() // subscribe before any traffic can emit
	go func() {
		defer close(eventsDone)
		for ev := range events {
			switch ev.Kind {
			case serve.EventAlarm:
				alarmsObserved++
				out.alarm(ev)
			case serve.EventRetrain:
				retrainsObserved++
				if ev.Err != nil {
					out.retrainError(ev)
				}
			case serve.EventEviction:
				evictionsObserved++
			case serve.EventShed:
				shedsObserved++
			case serve.EventPrefilterDrift:
				driftsObserved++
				out.headline("PREFILTER-DRIFT %s: stage-1 suppression disagrees with stage-2 beyond the declared threshold", ev.Patient)
			case serve.EventModelUpdated:
				if ev.Version > modelVersions[ev.Patient] {
					modelVersions[ev.Patient] = ev.Version
				}
			}
		}
	}()

	stop := make(chan struct{})
	meter := &steadyRate{}
	go func() {
		tick := time.NewTicker(*statsEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				st := bk.snapshot()
				meter.observe(st.WindowsPerSec)
				out.stats(st)
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < *patients; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			replayPatient(bk, p, *duration, *rate, *speed, pfCfg)
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Stop the periodic printer before the drain loop below starts
	// polling: Snapshot is a mutating rate sampler, and two concurrent
	// observers would slice each other's WindowsPerSec intervals.
	close(stop)

	// Let the learner pools drain outstanding confirmations.
	drainDeadline := time.Now().Add(2 * time.Minute)
	var st serve.Stats
	for {
		st = bk.snapshot()
		if st.Retrains+st.RetrainErrors+st.ConfirmsDropped >= st.Confirms || time.Now().After(drainDeadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if clusterMode {
		// The final snapshot must precede close: once the router hangs
		// up there is no healthy shard left to answer a stats request.
		st = bk.snapshot()
	}
	bk.close()
	<-eventsDone // events channel closed by close; subscriber has seen everything
	if !clusterMode {
		st = bk.snapshot()
	}
	// Merge the backend's authoritative version table (the router's
	// announce-fed view in cluster mode) over the event-derived one:
	// events are at-most-once across the wire, announces keep the table
	// exact. Safe only now — the event collector has exited.
	for p, v := range bk.modelVersions() {
		if v > modelVersions[p] {
			modelVersions[p] = v
		}
	}

	out.headline("replayed %d patient-streams in %v", *patients, elapsed.Round(time.Millisecond))
	summary := summaryFields(st, elapsed, alarmsObserved, retrainsObserved, evictionsObserved, shedsObserved)
	summary["drifts_observed"] = driftsObserved
	// The final snapshot's interval rate covers the idle drain tail, so
	// statsFields put a meaningless ~0 in windows_per_sec. Replace it
	// with the steady-state rate the ticker measured mid-replay.
	summary["windows_per_sec"] = meter.value(summary["windows_per_sec_avg"].(float64))
	summary["model_versions"] = modelVersions
	out.summary(st, summary)
	if *benchOut != "" {
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fail := false
	// A shard killed mid-replay takes its counters with it (Snapshot
	// sums the reachable fleet), so judge retraining against the best
	// surviving evidence: the counters, the observed retrain events, or
	// the per-patient model-version table — a patient with a version
	// provably closed the self-learning loop somewhere.
	retrained := st.Retrains
	if retrainsObserved > retrained {
		retrained = retrainsObserved
	}
	if n := uint64(len(modelVersions)); n > retrained {
		retrained = n
	}
	if retrained < uint64(*patients) {
		out.headline("warning: only %d/%d patients retrained", retrained, *patients)
		// Under shed-oldest an unpaced replay loses data by design —
		// retrain shortfalls demonstrate the policy rather than a bug.
		if *admission != "shed" {
			fail = true
		}
	}
	if alarmsObserved != st.Alarms {
		out.headline("warning: subscriber observed %d alarms but the server raised %d (events dropped: %d)",
			alarmsObserved, st.Alarms, st.EventsDropped)
		// Local delivery is lossless with an attentive subscriber; the
		// cluster merge is at-most-once across two hops, so there only
		// total silence is a failure.
		if !clusterMode || alarmsObserved == 0 && st.Alarms > 0 {
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}

// replayPatient generates one patient's recording (background plus one
// seizure) and streams it through a session handle in one-second
// batches, confirming the seizure 15 s after it ends. A non-nil pf
// runs the stage-1 amplitude gate here — the "on device" half of the
// edge/cloud split — shipping only gated seconds at full rate and
// folding the rest into digests with periodic audit samples.
func replayPatient(bk backend, p int, duration, rate, speed float64, pf *serve.PrefilterConfig) {
	id := fmt.Sprintf("patient-%04d", p)
	// Stagger seizure onsets across patients so confirmations (and the
	// retrains they trigger) don't arrive in one synchronized burst,
	// clamping so the seizure always fits inside the recording.
	seizureDur := 20 + float64(p%3)*5
	seizureStart := 30 + float64(p%7)*3
	if maxStart := duration - seizureDur - 5; seizureStart > maxStart {
		seizureStart = maxStart
	}
	rec, err := synth.Generate(synth.RecordConfig{
		PatientID:  id,
		RecordID:   "replay",
		Seed:       int64(1000 + p),
		Duration:   duration,
		SampleRate: rate,
		Background: synth.DefaultBackground(),
		Seizures:   []synth.SeizureEvent{{Start: seizureStart, Duration: seizureDur, Config: synth.DefaultSeizure()}},
	})
	if err != nil {
		log.Fatalf("%s: %v", id, err)
	}
	h, err := bk.open(id)
	if err != nil {
		log.Fatalf("%s: %v", id, err)
	}
	defer h.Close()
	var pc *serve.PrefilterClient
	if pf != nil {
		if pc, err = serve.NewPrefilterClient(*pf); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		retry(id, func() error { return h.DeclarePrefilter(*pf) })
	}
	c0, c1 := rec.Data[0], rec.Data[1]
	batch := int(rate)
	confirmAt := seizureStart + seizureDur + 15
	confirmed := false
	start := time.Now()
	for off, sec := 0, 0; off < len(c0); off, sec = off+batch, sec+1 {
		if speed > 0 {
			next := start.Add(time.Duration(float64(sec) * float64(time.Second) / speed))
			time.Sleep(time.Until(next))
		}
		end := off + batch
		if end > len(c0) {
			end = len(c0)
		}
		if pc == nil {
			push(h, c0[off:end], c1[off:end])
		} else {
			a := pc.Decide(c0[off:end], c1[off:end])
			// The closed digest span precedes the decision that closed it.
			if a.Flush.Windows > 0 {
				retry(id, func() error { return h.PushDigest(a.Flush) })
			}
			switch {
			case a.Ship:
				push(h, c0[off:end], c1[off:end])
			case a.Audit:
				retry(id, func() error { return h.PushAudit(c0[off:end], c1[off:end]) })
			}
		}
		if !confirmed && float64(sec) >= confirmAt {
			confirmed = true
			confirm(h)
		}
	}
	if pc != nil {
		if d := pc.Final(); d.Windows > 0 {
			retry(id, func() error { return h.PushDigest(d) })
		}
	}
	if !confirmed {
		confirm(h)
	}
}

// retryable reports transient refusals the gateway retries: admission
// backpressure everywhere, plus shard outages in cluster mode (a
// failover window looks like a brief full queue to the caller).
func retryable(err error) bool {
	switch err {
	case serve.ErrBackpressure, cluster.ErrShardDown, cluster.ErrNoShards:
		return true
	}
	return false
}

// retry repeats op until the shard accepts it; the wearable gateway's
// local buffer-and-resend policy. (Under -admission shed the first
// attempt always lands: the server makes room itself.)
func retry(patient string, op func() error) {
	for {
		err := op()
		if err == nil {
			return
		}
		if !retryable(err) {
			log.Fatalf("%s: %v", patient, err)
		}
		time.Sleep(time.Millisecond)
	}
}

func push(h streamHandle, c0, c1 []float64) {
	retry(h.Patient(), func() error { return h.Push(c0, c1) })
}

func confirm(h streamHandle) {
	retry(h.Patient(), func() error { return h.Confirm() })
}

// steadyRate accumulates the interval throughput samples the periodic
// stats ticker observes during the replay. serve.Stats.WindowsPerSec is
// sampled over the interval since the previous Snapshot call, so with
// the ticker as the sole mid-replay observer each sample is one clean
// -stats interval. The first interval is warmup (session opens,
// first-batch model loads) and is excluded; the drain tail never enters
// because sampling stops with the ticker.
type steadyRate struct {
	mu      sync.Mutex
	samples []float64
}

func (s *steadyRate) observe(v float64) {
	s.mu.Lock()
	s.samples = append(s.samples, v)
	s.mu.Unlock()
}

// value returns the mean post-warmup interval rate, or fallback when
// the replay finished before the ticker saw a steady interval.
func (s *steadyRate) value(fallback float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	xs := s.samples
	if len(xs) >= 2 {
		xs = xs[1:]
	}
	if len(xs) == 0 {
		return fallback
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// printer renders harness output as human text or JSON lines.
type printer struct {
	mu    sync.Mutex
	json  bool
	start time.Time
}

func (p *printer) emit(v any) {
	data, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	p.mu.Lock()
	fmt.Println(string(data))
	p.mu.Unlock()
}

func (p *printer) headline(format string, args ...any) {
	if p.json {
		p.emit(map[string]any{"type": "note", "message": fmt.Sprintf(format, args...)})
		return
	}
	p.mu.Lock()
	fmt.Printf(format+"\n", args...)
	p.mu.Unlock()
}

func (p *printer) alarm(ev serve.Event) {
	if p.json {
		p.emit(map[string]any{"type": "alarm", "patient": ev.Patient, "t_s": ev.Time.Sub(p.start).Seconds(), "seq": ev.Seq})
		return
	}
	p.mu.Lock()
	fmt.Printf("ALARM  %-14s t=+%.1fs\n", ev.Patient, ev.Time.Sub(p.start).Seconds())
	p.mu.Unlock()
}

func (p *printer) retrainError(ev serve.Event) {
	if p.json {
		p.emit(map[string]any{"type": "retrain-error", "patient": ev.Patient, "error": ev.Err.Error()})
		return
	}
	p.mu.Lock()
	fmt.Printf("RETRAIN-ERROR %s: %v\n", ev.Patient, ev.Err)
	p.mu.Unlock()
}

// statsFields flattens the snapshot for JSON output.
func statsFields(st serve.Stats) map[string]any {
	return map[string]any{
		"uptime_s":            st.Uptime.Seconds(),
		"sessions":            st.Sessions,
		"streams_open":        st.StreamsOpen,
		"windows":             st.Windows,
		"windows_per_sec":     st.WindowsPerSec,
		"alarms":              st.Alarms,
		"queue_depth":         st.QueueDepth,
		"batches":             st.Batches,
		"batches_dropped":     st.BatchesDropped,
		"batches_shed":        st.BatchesShed,
		"quality_rejected":    st.QualityRejected,
		"windows_suppressed":  st.WindowsSuppressed,
		"audit_samples":       st.AuditSamples,
		"audit_disagreements": st.AuditDisagreements,
		"prefilter_drift":     st.PrefilterDrift,
		"confirms":            st.Confirms,
		"confirms_rejected":   st.ConfirmsRejected,
		"confirms_dropped":    st.ConfirmsDropped,
		"retrains":            st.Retrains,
		"retrain_errors":      st.RetrainErrors,
		"models_cached":       st.ModelsCached,
		"store_errors":        st.StoreErrors,
		"events_dropped":      st.EventsDropped,
	}
}

// summaryFields is the final summary object — printed as the "summary"
// JSON line and written verbatim to -benchout.
func summaryFields(st serve.Stats, elapsed time.Duration, alarmsObserved, retrainsObserved, evictionsObserved, shedsObserved uint64) map[string]any {
	f := statsFields(st)
	f["type"] = "summary"
	f["elapsed_s"] = elapsed.Seconds()
	// statsFields copied the final snapshot's windows_per_sec, which
	// covers the idle drain interval; main overrides it with the
	// steady-state mid-replay rate. The replay-wide average rides along
	// for dashboards that want a whole-run number.
	f["windows_per_sec_avg"] = float64(st.Windows) / elapsed.Seconds()
	f["alarms_observed"] = alarmsObserved
	f["retrains_observed"] = retrainsObserved
	f["evictions_observed"] = evictionsObserved
	f["sheds_observed"] = shedsObserved
	return f
}

func (p *printer) stats(st serve.Stats) {
	if p.json {
		f := statsFields(st)
		f["type"] = "stats"
		p.emit(f)
		return
	}
	p.mu.Lock()
	fmt.Printf("[%7.1fs] sessions %4d | windows %8d (%7.0f/s) | alarms %4d | queue %4d | confirms %3d | retrains %3d (%d err, %d lost) | backpressure %d | shed %d\n",
		st.Uptime.Seconds(), st.Sessions, st.Windows, st.WindowsPerSec, st.Alarms,
		st.QueueDepth, st.Confirms, st.Retrains, st.RetrainErrors, st.ConfirmsDropped,
		st.BatchesDropped+st.ConfirmsRejected, st.BatchesShed)
	p.mu.Unlock()
}

func (p *printer) summary(st serve.Stats, fields map[string]any) {
	if p.json {
		p.emit(fields)
		return
	}
	p.stats(st)
	p.mu.Lock()
	fmt.Printf("replay average %.0f windows/s | events delivered: %d alarms, %d retrains, %d evictions, %d sheds (%d dropped)\n",
		fields["windows_per_sec_avg"].(float64), fields["alarms_observed"], fields["retrains_observed"],
		fields["evictions_observed"], fields["sheds_observed"], st.EventsDropped)
	if versions, ok := fields["model_versions"].(map[string]uint64); ok && len(versions) > 0 {
		minV, maxV := uint64(0), uint64(0)
		for _, v := range versions {
			if minV == 0 || v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		fmt.Printf("model versions: %d patients trained (v%d–v%d)\n", len(versions), minV, maxV)
	}
	p.mu.Unlock()
}
