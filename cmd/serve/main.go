// Command serve replays the synthetic corpus for many simulated
// patients through the concurrent serving subsystem (internal/serve) —
// the load harness for the multi-tenant deployment scenario: N
// wearables streaming EEG to one backend, each closing its own
// self-learning loop.
//
// Every patient streams a synthetic recording containing one seizure in
// one-second batches, optionally paced at a real-time multiplier
// (-speed 1 is wall-clock realtime, 0 is as fast as the hardware
// allows). Shortly after each patient's seizure ends, the harness
// issues the patient's confirmation button press, which schedules
// a-posteriori labeling and detector retraining on the background
// learner pool. Periodic and final statistics show sessions, windows
// classified per second, alarms, queue depth and retrain outcomes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"selflearn/internal/serve"
	"selflearn/internal/synth"
)

func main() {
	patients := flag.Int("patients", 64, "number of simulated patients streaming concurrently")
	duration := flag.Float64("duration", 120, "seconds of signal streamed per patient")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "serving worker (shard) count")
	learners := flag.Int("learners", 2, "background retraining workers")
	speed := flag.Float64("speed", 0, "real-time multiplier (1 = wall clock, 0 = as fast as possible)")
	rate := flag.Float64("rate", 256, "sampling rate in Hz")
	queue := flag.Int("queue", 256, "per-worker queue depth")
	statsEvery := flag.Duration("stats", 2*time.Second, "statistics print interval")
	flag.Parse()

	if *duration < 60 {
		log.Fatal("serve: -duration must be at least 60 s to fit a seizure and its confirmation")
	}
	srv, err := serve.New(serve.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		Learners:           *learners,
		LearnerQueue:       *patients,
		SampleRate:         *rate,
		History:            time.Duration(*duration) * time.Second,
		AvgSeizureDuration: 25 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("serving %d patients × %.0f s at %g Hz (%d workers, %d learners, speed ×%g)\n\n",
		*patients, *duration, *rate, *workers, *learners, *speed)

	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(*statsEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				printStats(srv.Snapshot())
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < *patients; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			replayPatient(srv, p, *duration, *rate, *speed)
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Let the learner pool drain outstanding confirmations.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := srv.Snapshot()
		if st.Retrains+st.RetrainErrors+st.ConfirmsDropped >= st.Confirms || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	srv.Close()
	close(stop)

	st := srv.Snapshot()
	fmt.Printf("\nreplayed %d patient-streams in %v\n", *patients, elapsed.Round(time.Millisecond))
	printStats(st)
	if st.Retrains < uint64(*patients) {
		fmt.Printf("warning: only %d/%d patients retrained\n", st.Retrains, *patients)
		os.Exit(1)
	}
}

// replayPatient generates one patient's recording (background plus one
// seizure) and streams it in one-second batches, confirming the seizure
// 15 s after it ends.
func replayPatient(srv *serve.Server, p int, duration, rate, speed float64) {
	id := fmt.Sprintf("patient-%04d", p)
	// Stagger seizure onsets across patients so confirmations (and the
	// retrains they trigger) don't arrive in one synchronized burst,
	// clamping so the seizure always fits inside the recording.
	seizureDur := 20 + float64(p%3)*5
	seizureStart := 30 + float64(p%7)*3
	if maxStart := duration - seizureDur - 5; seizureStart > maxStart {
		seizureStart = maxStart
	}
	rec, err := synth.Generate(synth.RecordConfig{
		PatientID:  id,
		RecordID:   "replay",
		Seed:       int64(1000 + p),
		Duration:   duration,
		SampleRate: rate,
		Background: synth.DefaultBackground(),
		Seizures:   []synth.SeizureEvent{{Start: seizureStart, Duration: seizureDur, Config: synth.DefaultSeizure()}},
	})
	if err != nil {
		log.Fatalf("%s: %v", id, err)
	}
	c0, c1 := rec.Data[0], rec.Data[1]
	batch := int(rate)
	confirmAt := seizureStart + seizureDur + 15
	confirmed := false
	start := time.Now()
	for off, sec := 0, 0; off < len(c0); off, sec = off+batch, sec+1 {
		if speed > 0 {
			next := start.Add(time.Duration(float64(sec) * float64(time.Second) / speed))
			time.Sleep(time.Until(next))
		}
		end := off + batch
		if end > len(c0) {
			end = len(c0)
		}
		submit(srv, id, c0[off:end], c1[off:end])
		if !confirmed && float64(sec) >= confirmAt {
			confirmed = true
			for srv.Confirm(id) == serve.ErrBackpressure {
				time.Sleep(time.Millisecond)
			}
		}
	}
	if !confirmed {
		for srv.Confirm(id) == serve.ErrBackpressure {
			time.Sleep(time.Millisecond)
		}
	}
}

// submit retries one batch until the shard accepts it; the wearable
// gateway's local buffer-and-resend policy.
func submit(srv *serve.Server, id string, c0, c1 []float64) {
	for {
		err := srv.Submit(id, c0, c1)
		if err == nil {
			return
		}
		if err != serve.ErrBackpressure {
			log.Fatalf("%s: %v", id, err)
		}
		time.Sleep(time.Millisecond)
	}
}

func printStats(st serve.Stats) {
	fmt.Printf("[%7.1fs] sessions %4d | windows %8d (%7.0f/s) | alarms %4d | queue %4d | confirms %3d | retrains %3d (%d err, %d lost) | backpressure %d\n",
		st.Uptime.Seconds(), st.Sessions, st.Windows, st.WindowsPerSec, st.Alarms,
		st.QueueDepth, st.Confirms, st.Retrains, st.RetrainErrors, st.ConfirmsDropped, st.BatchesDropped+st.ConfirmsRejected)
}
