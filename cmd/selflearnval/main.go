// Command selflearnval reproduces Fig. 4 and the Section VI-B headline:
// the geometric mean of the real-time detector per patient when trained
// on doctor-labeled versus algorithm-labeled data, and the resulting
// degradation (paper: 94.95 % vs 92.60 %, −2.35 points).
//
// Usage:
//
//	selflearnval [-patient chbNN] [-crop SECONDS] [-trees N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"selflearn/internal/chbmit"
	"selflearn/internal/pipeline"
)

func main() {
	patient := flag.String("patient", "", "restrict to one patient id")
	crop := flag.Float64("crop", 2700, "record slice length per seizure in seconds (paper: 30-60 min)")
	trees := flag.Int("trees", 50, "random-forest size")
	seed := flag.Int64("seed", 1, "experiment seed")
	generic := flag.Bool("generic", false, "also run the generic-vs-personalized motivation experiment (Section I)")
	eventLevel := flag.Bool("eventlevel", false, "also run the event-level detection study (extension E11)")
	flag.Parse()

	opts := pipeline.DefaultOptions()
	opts.CropDuration = *crop
	opts.ForestCfg.NumTrees = *trees
	opts.Seed = *seed
	if *patient != "" {
		p, err := chbmit.PatientByID(*patient)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Patients = []chbmit.Patient{p}
	}

	res, err := pipeline.Validate(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("FIG. 4: GEOMETRIC MEAN, DOCTOR- VS ALGORITHM-LABELED TRAINING")
	fmt.Printf("%-10s %12s %12s %10s %10s\n", "Patient", "doctor", "algorithm", "se(drop)", "sp(drop)")
	for _, pv := range res.PerPatient {
		fmt.Printf("%-10s %11.2f%% %11.2f%% %9.2f%% %9.2f%%\n",
			pv.PatientID,
			100*pv.Expert.GeometricMean(),
			100*pv.Algorithm.GeometricMean(),
			100*(pv.Expert.Sensitivity()-pv.Algorithm.Sensitivity()),
			100*(pv.Expert.Specificity()-pv.Algorithm.Specificity()))
	}
	fmt.Println()
	fmt.Printf("Geometric mean across subjects, doctor labels:    %6.2f %%  (paper: 94.95 %%)\n", 100*res.ExpertGeoMean)
	fmt.Printf("Geometric mean across subjects, algorithm labels: %6.2f %%  (paper: 92.60 %%)\n", 100*res.AlgorithmGeoMean)
	fmt.Printf("Degradation:                                      %6.2f points (paper: 2.35)\n", res.Degradation())
	fmt.Printf("Sensitivity degradation:                          %6.2f points (paper: 2.43)\n",
		100*(res.ExpertSensitivity-res.AlgorithmSensitivity))
	fmt.Printf("Specificity degradation:                          %6.2f points (paper: 2.26)\n",
		100*(res.ExpertSpecificity-res.AlgorithmSpecificity))

	if *generic {
		fmt.Println()
		fmt.Println("GENERIC VS PERSONALIZED TRAINING (Section I motivation)")
		gres, err := pipeline.ValidateGeneric(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %14s %14s\n", "Patient", "personalized", "generic")
		for _, pr := range gres.PerPatient {
			fmt.Printf("%-10s %13.2f%% %13.2f%%\n",
				pr.PatientID, 100*pr.Personalized.GeometricMean(), 100*pr.Generic.GeometricMean())
		}
		fmt.Printf("Across patients: personalized %.2f %% vs generic %.2f %% (gap %.2f points)\n",
			100*gres.PersonalizedGeoMean, 100*gres.GenericGeoMean, gres.Gap())
	}

	if *eventLevel {
		fmt.Println()
		fmt.Println("EVENT-LEVEL DETECTION STUDY (extension E11)")
		eres, err := pipeline.EventLevelStudy(opts.Patients, opts, 2, 3600)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %8s %10s %14s\n", "Patient", "events", "detected", "false alarms")
		for _, pl := range eres.PerPatient {
			fmt.Printf("%-10s %8d %10d %14d\n", pl.PatientID, pl.Events, pl.Detected, pl.FalseAlarms)
		}
		fmt.Printf("Event sensitivity: %.1f %%; false alarms: %.2f /h; median latency: %.1f s\n",
			100*eres.EventSensitivity, eres.FalseAlarmsPerHour, eres.MedianLatency)
	}
}
