// Command selflearnvet is the repo's multichecker: it machine-checks
// the invariants the serving stack's correctness rests on — hot-path
// allocation discipline, deterministic-replay clock/RNG hygiene, wire
// codec bounds and parity, and lock-region send discipline.
//
// Run it standalone:
//
//	go run ./cmd/selflearnvet ./...
//
// or as a vet tool, which also covers test-variant builds and caches
// per-package results:
//
//	go build -o bin/selflearnvet ./cmd/selflearnvet
//	go vet -vettool=$PWD/bin/selflearnvet ./...
//
// selflearnvet -list prints the analyzer roster with docs.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"selflearn/internal/analysis"
	"selflearn/internal/analysis/checker"
	"selflearn/internal/analysis/hotpathalloc"
	"selflearn/internal/analysis/load"
	"selflearn/internal/analysis/nowallclock"
	"selflearn/internal/analysis/unitchecker"
	"selflearn/internal/analysis/unlockedsend"
	"selflearn/internal/analysis/wirebounds"
)

var analyzers = []*analysis.Analyzer{
	hotpathalloc.Analyzer,
	nowallclock.Analyzer,
	wirebounds.Analyzer,
	unlockedsend.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go fingerprints vet tools with a `-V=full` probe before any
	// real invocation. A "devel" version must carry a buildID field —
	// cmd/go keys its vet result cache on it — so, like x/tools'
	// unitchecker, we hash our own executable. Then cmd/go asks for the
	// tool's flag inventory with `-flags` (a JSON array; we expose no
	// tool-specific vet flags).
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			h := [32]byte{}
			if exe, err := os.Executable(); err == nil {
				if data, err := os.ReadFile(exe); err == nil {
					h = sha256.Sum256(data)
				}
			}
			fmt.Printf("selflearnvet version devel comments-go-here buildID=%02x\n", string(h[:4]))
			return 0
		case "-flags":
			fmt.Println("[]")
			return 0
		}
	}

	// Vet-tool mode: cmd/go passes flags then one *.cfg positional arg.
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		return unitchecker.Run(args[len(args)-1], analyzers)
	}

	fs := flag.NewFlagSet("selflearnvet", flag.ContinueOnError)
	list := fs.Bool("list", false, "print analyzer names and docs, then exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: selflearnvet [-list] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Checks selflearn invariant annotations over the named packages\n")
		fmt.Fprintf(fs.Output(), "(default ./...). Also runs as go vet -vettool=$(which selflearnvet).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
			for _, line := range strings.Split(a.Doc, "\n")[1:] {
				fmt.Printf("    %s\n", line)
			}
			fmt.Println()
		}
		return 0
	}

	res, err := load.Load(".", fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selflearnvet: %v\n", err)
		return 1
	}
	findings, err := checker.Run(res, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selflearnvet: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
