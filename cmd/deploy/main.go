// Command deploy produces firmware artifacts for the wearable: it runs
// the self-learning session over a patient's first seizures (labeling
// them with the a-posteriori algorithm), then writes the trained
// random-forest detector both as a JSON checkpoint and as generated C99
// tables, and reports the flash footprint against the STM32L151 budget.
//
// Usage:
//
//	deploy [-patient chb01] [-events 3] [-out ./firmware] [-trees 50]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"selflearn/internal/chbmit"
	"selflearn/internal/export/cgen"
	"selflearn/internal/ml/forest"
	"selflearn/internal/pipeline"
	"selflearn/internal/platform"
)

func main() {
	patient := flag.String("patient", "chb01", "catalog patient id")
	events := flag.Int("events", 3, "number of missed-seizure events to learn from")
	out := flag.String("out", "firmware", "output directory")
	trees := flag.Int("trees", 50, "random-forest size")
	crop := flag.Float64("crop", 900, "buffer length per event in seconds")
	flag.Parse()

	p, err := chbmit.PatientByID(*patient)
	if err != nil {
		fatal(err)
	}
	if *events < 1 || *events > len(p.Seizures) {
		fatal(fmt.Errorf("deploy: patient %s has %d seizures; -events %d invalid", p.ID, len(p.Seizures), *events))
	}
	opts := pipeline.DefaultOptions()
	opts.CropDuration = *crop
	opts.ForestCfg.NumTrees = *trees
	session, err := pipeline.NewSession(p, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("self-learning on %s: %d events\n", p.ID, *events)
	for ev := 1; ev <= *events; ev++ {
		rec, err := p.SeizureRecord(ev, 0)
		if err != nil {
			fatal(err)
		}
		truth := rec.Seizures[0]
		lo := truth.Start - *crop/2
		if lo < 0 {
			lo = 0
		}
		buf, err := rec.Slice(lo, lo+*crop)
		if err != nil {
			fatal(err)
		}
		iv, err := session.ReportMissedSeizure(buf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  event %d: labeled [%.0f, %.0f] s in buffer\n", ev, iv.Start, iv.End)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	// JSON checkpoint.
	jsonPath := filepath.Join(*out, p.ID+"_detector.json")
	jf, err := os.Create(jsonPath)
	if err != nil {
		fatal(err)
	}
	if err := session.SaveDetector(jf); err != nil {
		fatal(err)
	}
	if err := jf.Close(); err != nil {
		fatal(err)
	}
	// C tables: reload the checkpoint and flatten.
	jr, err := os.Open(jsonPath)
	if err != nil {
		fatal(err)
	}
	defer jr.Close()
	restored, err := loadForest(jr)
	if err != nil {
		fatal(err)
	}
	spec, err := cgen.Flatten(restored)
	if err != nil {
		fatal(err)
	}
	cPath := filepath.Join(*out, p.ID+"_detector.c")
	cf, err := os.Create(cPath)
	if err != nil {
		fatal(err)
	}
	if err := spec.WriteC(cf, "seizure_rf"); err != nil {
		fatal(err)
	}
	if err := cf.Close(); err != nil {
		fatal(err)
	}

	budget := platform.STM32L151Budget()
	kb := (spec.FlashBytes() + 1023) / 1024
	fmt.Printf("wrote %s and %s\n", jsonPath, cPath)
	fmt.Printf("model: %d trees, %d nodes, %d KB of tables (flash %d KB, hour buffer %d KB) — fits: %v\n",
		len(spec.Roots), len(spec.Feature), kb,
		budget.FlashKB, platform.HourBufferKB,
		kb+platform.HourBufferKB <= budget.FlashKB)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// loadForest wraps forest.Load for symmetry with the session checkpoint.
func loadForest(r *os.File) (*forest.Forest, error) {
	return forest.Load(r)
}
