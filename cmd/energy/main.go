// Command energy reproduces the energy analysis of Section VI-C: Table
// III (battery lifetime budget at one seizure per day), Fig. 5 (energy
// share per task) and the lifetime sweeps over seizure frequency.
//
// Usage:
//
//	energy [-sweep] [-battery MAH]
package main

import (
	"flag"
	"fmt"
	"os"

	"selflearn/internal/platform"
)

func main() {
	sweep := flag.Bool("sweep", true, "print the lifetime sweep over seizure frequency")
	battery := flag.Float64("battery", platform.BatteryCapacityMAh, "battery capacity in mAh")
	flag.Parse()

	s, err := platform.Combined(1) // worst case: one seizure per day
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("TABLE III. BATTERY LIFETIME OF THE SYSTEM FOR THE WORST CASE (ONE SEIZURE PER DAY)")
	fmt.Printf("%-24s %10s %10s %14s %10s\n", "Task", "Current", "Duty", "Avg. current", "Energy")
	fmt.Printf("%-24s %10s %10s %14s %10s\n", "", "(mA)", "Cycle (%)", "(mA)", "(%)")
	shares := s.EnergyShares()
	for i, t := range s.Tasks {
		fmt.Printf("%-24s %10.3f %9.2f%% %14.3f %9.2f%%\n",
			t.Name, t.CurrentMA, 100*t.Duty, t.AvgCurrentMA(), 100*shares[i])
	}
	fmt.Printf("%-24s %46.2f days\n", "Battery Lifetime", s.LifetimeDays(*battery))
	fmt.Println("(paper: 2.59 days; shares 9.47 / 85.72 / 4.77 / 0.04 %)")
	fmt.Println()

	fmt.Println("FIG. 5: PERCENTAGE OF ENERGY CONSUMPTION OF EACH TASK")
	for i, t := range s.Tasks {
		bar := ""
		for j := 0; j < int(shares[i]*60+0.5); j++ {
			bar += "#"
		}
		fmt.Printf("  %-24s %6.2f%% %s\n", t.Name, 100*shares[i], bar)
	}
	fmt.Println()

	fmt.Println("Section VI-C lifetime figures")
	month, err := platform.LabelingOnly(1.0 / 30)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	day, err := platform.LabelingOnly(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  labeling only, 1 seizure/month: %7.2f h = %5.2f days (paper: 631.46 h, 26.31 d)\n",
		month.LifetimeHours(*battery), month.LifetimeHours(*battery)/24)
	fmt.Printf("  labeling only, 1 seizure/day:   %7.2f h = %5.2f days (paper: 430.16 h, 17.92 d)\n",
		day.LifetimeHours(*battery), day.LifetimeHours(*battery)/24)
	det := platform.DetectionOnly()
	fmt.Printf("  detection only:                 %7.2f h = %5.2f days (paper: 65.15 h, 2.71 d)\n",
		det.LifetimeHours(*battery), det.LifetimeDays(*battery))
	cMonth, _ := platform.Combined(1.0 / 30)
	cDay, _ := platform.Combined(1)
	fmt.Printf("  combined, 1 seizure/month:      %7.2f h = %5.2f days (paper: 2.71 d)\n",
		cMonth.LifetimeHours(*battery), cMonth.LifetimeDays(*battery))
	fmt.Printf("  combined, 1 seizure/day:        %7.2f h = %5.2f days (paper: 2.59 d)\n",
		cDay.LifetimeHours(*battery), cDay.LifetimeDays(*battery))
	fmt.Println()

	if *sweep {
		fmt.Println("Lifetime sweep: combined scenario vs seizure frequency")
		fmt.Printf("  %-22s %12s %12s\n", "seizures", "duty (%)", "days")
		for _, f := range []struct {
			name string
			perD float64
		}{
			{"1 per month", 1.0 / 30},
			{"1 per 2 weeks", 1.0 / 14},
			{"1 per week", 1.0 / 7},
			{"2 per week", 2.0 / 7},
			{"1 per 2 days", 0.5},
			{"1 per day", 1},
		} {
			sc, err := platform.Combined(f.perD)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			duty, _ := platform.LabelingDuty(f.perD)
			fmt.Printf("  %-22s %11.2f%% %12.2f\n", f.name, 100*duty, sc.LifetimeDays(*battery))
		}
	}

	fmt.Println()
	fmt.Println("Monte-Carlo discharge (Poisson seizure arrivals, 500 trials)")
	for _, f := range []struct {
		name string
		perD float64
	}{{"1 per month", 1.0 / 30}, {"1 per day", 1}, {"4 per day", 4}} {
		sim, err := platform.SimulateDischarge(f.perD, *battery, 500, 42)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %-14s mean %.2f days (min %.2f, max %.2f)\n",
			f.name, sim.MeanDays, sim.MinDays, sim.MaxDays)
	}

	// Memory sanity per Section VI-C.
	budget := platform.STM32L151Budget()
	fmt.Println()
	fmt.Printf("Memory: hour buffer %d KB, flash %d KB, fits: %v\n",
		platform.HourBufferKB, budget.FlashKB, budget.FitsHourBuffer(platform.HourBufferKB))
	kb, _ := platform.FeatureBufferKB(3600, 10, 4)
	fmt.Printf("        feature-domain hour buffer (3600×10 float32): %d KB\n", kb)
}
