// Command aposteriori runs the minimally-supervised a-posteriori labeling
// algorithm (Algorithm 1) on a single recording and prints the produced
// seizure label, the deviation from the ground truth when available, and
// a sketch of the distance curve.
//
// The recording is either generated from the synthetic catalog
// (-patient/-seizure/-variant) or loaded from an EDF file with a
// CHB-MIT-style summary sidecar (-edf DIR -record NAME).
//
// Usage:
//
//	aposteriori [-patient chb01] [-seizure 1] [-variant 0] [-window SECONDS]
//	aposteriori -edf ./data -record chb01_sz01_v0 -window 60
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"selflearn/internal/chbmit"
	"selflearn/internal/core"
	"selflearn/internal/edf"
	"selflearn/internal/eval"
	"selflearn/internal/features"
	"selflearn/internal/fixedpoint"
	"selflearn/internal/signal"
	"selflearn/internal/stats"
)

func main() {
	patient := flag.String("patient", "chb01", "catalog patient id")
	seizure := flag.Int("seizure", 1, "catalog seizure index (1-based)")
	variant := flag.Int64("variant", 0, "catalog record variant")
	edfDir := flag.String("edf", "", "directory containing <record>.edf (+ summary); overrides the catalog")
	record := flag.String("record", "", "EDF record name (without extension)")
	window := flag.Float64("window", 0, "average seizure duration W in seconds (0 = patient catalog value)")
	curve := flag.Bool("curve", true, "print an ASCII sketch of the distance curve")
	fixed := flag.Bool("fixed", false, "also run the Q15 fixed-point kernel (the Cortex-M3 deployment form) and report agreement")
	flag.Parse()

	var rec *signal.Recording
	var avg float64
	var err error
	switch {
	case *edfDir != "":
		if *record == "" {
			fmt.Fprintln(os.Stderr, "aposteriori: -edf requires -record")
			os.Exit(2)
		}
		rec, err = edf.LoadRecording(*edfDir, *record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		avg = *window
		if avg <= 0 {
			fmt.Fprintln(os.Stderr, "aposteriori: EDF input requires -window > 0 (the expert-provided average seizure duration)")
			os.Exit(2)
		}
	default:
		p, err := chbmit.PatientByID(*patient)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rec, err = p.SeizureRecord(*seizure, *variant)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		avg = p.AvgSeizureDuration
		if *window > 0 {
			avg = *window
		}
	}

	fmt.Printf("Recording %s/%s: %.0f s, %d channels at %g Hz\n",
		rec.PatientID, rec.RecordID, rec.Duration(), len(rec.Channels), rec.SampleRate)

	start := time.Now()
	m, err := features.Extract10(rec, features.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	extractTime := time.Since(start)

	start = time.Now()
	iv, res, err := core.LabelMatrix(m, time.Duration(avg*float64(time.Second)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	labelTime := time.Since(start)

	fmt.Printf("Feature extraction: %d windows × %d features in %v\n", m.NumRows(), m.NumFeatures(), extractTime.Round(time.Millisecond))
	fmt.Printf("A-posteriori labeling (W = %d points) in %v\n", res.Window, labelTime.Round(time.Millisecond))
	fmt.Printf("Detected seizure label: [%.0f s, %.0f s]\n", iv.Start, iv.End)

	if len(rec.Seizures) > 0 {
		truth := rec.Seizures[0]
		d := eval.Delta(truth, iv)
		dn, err := eval.DeltaNorm(truth, iv, rec.Duration())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Ground truth:           [%.0f s, %.0f s]\n", truth.Start, truth.End)
		fmt.Printf("δ = %.1f s, δ_norm = %.4f\n", d, dn)
	}

	if *fixed {
		start = time.Now()
		fx, err := fixedpoint.Label(m.Rows, res.Window, 4)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Q15 fixed-point kernel: argmax %d (float argmax %d, |Δ| = %d points) in %v\n",
			fx.Index, res.Index, abs(fx.Index-res.Index), time.Since(start).Round(time.Millisecond))
	}

	if *curve {
		fmt.Println("\nDistance curve (64 bins, # = relative magnitude):")
		printCurve(res.Distances, res.Index)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// printCurve draws a coarse ASCII version of Fig. 2's distance curve.
func printCurve(d []float64, argmax int) {
	const bins = 64
	if len(d) == 0 {
		return
	}
	per := (len(d) + bins - 1) / bins
	max := stats.Max(d)
	if max <= 0 {
		max = 1
	}
	for b := 0; b < bins; b++ {
		lo := b * per
		if lo >= len(d) {
			break
		}
		hi := lo + per
		if hi > len(d) {
			hi = len(d)
		}
		seg := d[lo:hi]
		v := stats.Max(seg)
		n := int(v / max * 50)
		mark := " "
		if argmax >= lo && argmax < hi {
			mark = "*"
		}
		fmt.Printf("%6d s %s|", lo, mark)
		for i := 0; i < n; i++ {
			fmt.Print("#")
		}
		fmt.Println()
	}
}
