// Command eegview renders an ASCII spectrogram of a recording segment —
// the quickest way to see the ictal low-frequency chirp and the artifact
// bursts that drive the Table II outliers.
//
// Usage:
//
//	eegview [-patient chb03] [-seizure 1] [-channel F7T3] [-from S] [-to S] [-maxfreq 30]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"selflearn/internal/chbmit"
	"selflearn/internal/dsp/stft"
	"selflearn/internal/dsp/window"
	"selflearn/internal/signal"
)

var shades = []rune(" .:-=+*#%@")

func main() {
	patient := flag.String("patient", "chb03", "catalog patient id")
	seizure := flag.Int("seizure", 1, "catalog seizure index")
	channel := flag.String("channel", signal.ChannelF7T3, "channel to render")
	from := flag.Float64("from", -1, "segment start in seconds (-1 = 120 s before the seizure)")
	to := flag.Float64("to", -1, "segment end in seconds (-1 = 120 s after the seizure)")
	maxFreq := flag.Float64("maxfreq", 30, "highest frequency row in Hz")
	cols := flag.Int("width", 100, "output width in characters")
	flag.Parse()

	p, err := chbmit.PatientByID(*patient)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rec, err := p.SeizureRecord(*seizure, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	truth := rec.Seizures[0]
	lo, hi := *from, *to
	if lo < 0 {
		lo = math.Max(0, truth.Start-120)
	}
	if hi < 0 {
		hi = math.Min(rec.Duration(), truth.End+120)
	}
	seg, err := rec.Slice(lo, hi)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data := seg.Channel(*channel)
	if data == nil {
		fmt.Fprintf(os.Stderr, "eegview: no channel %q\n", *channel)
		os.Exit(1)
	}
	fs := seg.SampleRate
	hop := int(float64(seg.Samples()) / float64(*cols))
	if hop < int(fs/4) {
		hop = int(fs / 4)
	}
	sg, err := stft.Compute(data, fs, 1024, hop, window.Hann)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	db := sg.LogCompress(-50)

	fmt.Printf("%s %s [%0.f, %0.f] s — seizure at [%.0f, %.0f] s%s\n",
		rec.RecordID, *channel, lo, hi, truth.Start, truth.End, outlierNote(p, *seizure))
	// Render top-down from maxFreq to 0.
	binsPerRow := int(*maxFreq / sg.BinWidth / 20)
	if binsPerRow < 1 {
		binsPerRow = 1
	}
	topBin := int(*maxFreq / sg.BinWidth)
	for row := 19; row >= 0; row-- {
		binLo := row * binsPerRow
		binHi := binLo + binsPerRow
		if binHi > topBin {
			binHi = topBin
		}
		fmt.Printf("%5.1f Hz |", float64(binLo)*sg.BinWidth)
		for t := 0; t < sg.Frames(); t++ {
			// Max power across the row's bins.
			v := -50.0
			for k := binLo; k < binHi && k < len(db[t]); k++ {
				if db[t][k] > v {
					v = db[t][k]
				}
			}
			idx := int((v + 50) / 50 * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			fmt.Print(string(shades[idx]))
		}
		fmt.Println()
	}
	// Time axis with seizure markers.
	fmt.Print("         ")
	for t := 0; t < sg.Frames(); t++ {
		at := lo + sg.FrameTime(t)
		switch {
		case math.Abs(at-truth.Start) < sg.HopSeconds/2:
			fmt.Print("S")
		case math.Abs(at-truth.End) < sg.HopSeconds/2:
			fmt.Print("E")
		case at >= truth.Start && at <= truth.End:
			fmt.Print("~")
		default:
			fmt.Print(" ")
		}
	}
	fmt.Println()
	fmt.Println("         S = annotated onset, E = offset, ~ = ictal span")
}

func outlierNote(p chbmit.Patient, seizureIdx int) string {
	if seizureIdx >= 1 && seizureIdx <= len(p.Seizures) && p.Seizures[seizureIdx-1].Outlier {
		return " (artifact-contaminated outlier)"
	}
	return ""
}
