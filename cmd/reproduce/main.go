// Command reproduce runs every experiment of the paper end to end at a
// configurable scale and prints one consolidated paper-vs-measured
// verdict table. It is the single entry point for checking the whole
// reproduction:
//
//	go run ./cmd/reproduce            # reduced scale, ~2 minutes
//	go run ./cmd/reproduce -samples 100 -crop 2700 -trees 50   # full scale
//
// Exit status is nonzero when any structural check deviates.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"selflearn/internal/eval"
	"selflearn/internal/pipeline"
	"selflearn/internal/platform"
	"selflearn/internal/report"
	"selflearn/internal/stats"
)

func main() {
	samples := flag.Int("samples", 3, "crops per seizure for E1-E3 (paper: 100)")
	crop := flag.Float64("crop", 900, "record slice per seizure for E4/E8 in seconds (paper: 1800-3600)")
	trees := flag.Int("trees", 20, "random-forest size (full scale: 50)")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	cmp := report.NewComparison()

	// E1–E3: a-posteriori labeling quality.
	fmt.Fprintln(os.Stderr, "running E1-E3 (labeling quality)...")
	eOpts := eval.DefaultOptions()
	eOpts.SamplesPerSeizure = *samples
	eOpts.Seed = *seed
	res, err := eval.EvaluateCorpus(eOpts)
	if err != nil {
		fatal(err)
	}
	cmp.Add("E1 overall median δ", "10.1 s", report.Float(res.OverallDelta, 1)+" s",
		res.OverallDelta < 30)
	cmp.Add("E1 overall δ_norm", "0.9935", report.Float(res.OverallDeltaNorm, 4),
		res.OverallDeltaNorm > 0.98)
	outliers := 0
	for _, s := range res.AllSeizures() {
		if s.MeanDelta > 100 {
			outliers++
		}
	}
	cmp.Add("E2 artifact outliers", "3 (pat. 2/3/4)", fmt.Sprintf("%d", outliers),
		outliers == 3)
	cmp.Add("E3 within 60 s", "93.3 %", report.Percent(res.WithinSeconds(60), 1),
		math.Abs(res.WithinSeconds(60)-0.933) < 0.05)

	// E4: self-learning validation.
	fmt.Fprintln(os.Stderr, "running E4 (doctor vs algorithm labels)...")
	pOpts := pipeline.DefaultOptions()
	pOpts.CropDuration = *crop
	pOpts.ForestCfg.NumTrees = *trees
	pOpts.Seed = *seed
	val, err := pipeline.Validate(pOpts)
	if err != nil {
		fatal(err)
	}
	cmp.Add("E4 doctor-label geomean", "94.95 %", report.Percent(val.ExpertGeoMean, 2),
		val.ExpertGeoMean > 0.85)
	cmp.Add("E4 algorithm-label geomean", "92.60 %", report.Percent(val.AlgorithmGeoMean, 2),
		val.AlgorithmGeoMean > 0.80)
	cmp.Add("E4 degradation", "2.35 pts", report.Float(val.Degradation(), 2)+" pts",
		val.Degradation() > -3 && val.Degradation() < 10)

	// E5–E7: energy model (analytic, must match exactly).
	fmt.Fprintln(os.Stderr, "running E5-E7 (energy model)...")
	comb, err := platform.Combined(1)
	if err != nil {
		fatal(err)
	}
	life := comb.LifetimeDays(platform.BatteryCapacityMAh)
	cmp.Add("E5 lifetime @1 seizure/day", "2.59 d", report.Float(life, 2)+" d",
		math.Abs(life-2.59) < 0.01)
	shares := comb.EnergyShares()
	cmp.Add("E6 detection energy share", "85.72 %", report.Percent(shares[1], 2),
		math.Abs(shares[1]-0.8572) < 0.002)
	det := platform.DetectionOnly()
	cmp.Add("E7 detection-only lifetime", "65.15 h",
		report.Float(det.LifetimeHours(platform.BatteryCapacityMAh), 2)+" h",
		math.Abs(det.LifetimeHours(platform.BatteryCapacityMAh)-65.15) < 0.1)

	// E8: generic vs personalized.
	fmt.Fprintln(os.Stderr, "running E8 (generic vs personalized)...")
	gen, err := pipeline.ValidateGeneric(pOpts)
	if err != nil {
		fatal(err)
	}
	cmp.Add("E8 personalization gap", "> 0 pts", report.Float(gen.Gap(), 2)+" pts",
		gen.Gap() > -2)

	// E10: Monte-Carlo discharge tracks the analytic lifetime.
	fmt.Fprintln(os.Stderr, "running E10 (Monte-Carlo discharge)...")
	sim, err := platform.SimulateDischarge(1, platform.BatteryCapacityMAh, 200, *seed)
	if err != nil {
		fatal(err)
	}
	cmp.Add("E10 simulated mean lifetime", "≈2.59 d", report.Float(sim.MeanDays, 2)+" d",
		math.Abs(sim.MeanDays-life) < 0.05)

	// Bootstrap CI for the headline (statistical sanity, not in paper).
	var meanDeltas []float64
	for _, s := range res.AllSeizures() {
		meanDeltas = append(meanDeltas, s.MeanDelta)
	}
	lo, hi, err := stats.BootstrapCI(meanDeltas, stats.Median, 1000, 0.95, *seed)
	if err != nil {
		fatal(err)
	}
	cmp.Add("median δ 95% bootstrap CI", "—",
		"["+report.Float(lo, 1)+", "+report.Float(hi, 1)+"] s", hi-lo < 60)

	fmt.Println()
	if err := cmp.Render(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()
	if !cmp.AllOK() {
		fmt.Println("one or more structural checks DEVIATE from the paper — see EXPERIMENTS.md")
		os.Exit(1)
	}
	fmt.Println("all structural checks consistent with the paper (see EXPERIMENTS.md for full-scale numbers)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
