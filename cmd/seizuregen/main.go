// Command seizuregen materializes the synthetic CHB-MIT-like corpus as
// EDF files with CHB-MIT-style summary sidecars, so the other tools (and
// third-party EDF software) can consume it from disk.
//
// Usage:
//
//	seizuregen -out ./data [-patient chbNN] [-variant 0] [-duration 4200]
package main

import (
	"flag"
	"fmt"
	"os"

	"selflearn/internal/chbmit"
	"selflearn/internal/edf"
)

func main() {
	out := flag.String("out", "data", "output directory")
	patient := flag.String("patient", "", "restrict to one patient id")
	variant := flag.Int64("variant", 0, "record variant seed")
	list := flag.Bool("list", false, "print the catalog summary and exit")
	flag.Parse()

	if *list {
		fmt.Print(chbmit.Summary())
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	patients := chbmit.Patients()
	if *patient != "" {
		p, err := chbmit.PatientByID(*patient)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		patients = []chbmit.Patient{p}
	}
	total := 0
	for _, p := range patients {
		for _, sz := range p.Seizures {
			rec, err := p.SeizureRecord(sz.Index, *variant)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := edf.SaveRecording(*out, rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s/%s.edf (%.0f s, seizure [%.0f, %.0f], outlier=%v)\n",
				*out, rec.RecordID, rec.Duration(), rec.Seizures[0].Start, rec.Seizures[0].End, sz.Outlier)
			total++
		}
	}
	fmt.Printf("%d records written to %s\n", total, *out)
}
