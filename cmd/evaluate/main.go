// Command evaluate reproduces the paper's Table I (per-patient labeling
// quality), Table II (per-seizure mean δ) and the cumulative
// within-15/30/60 s statistics of Section VI-A.
//
// Usage:
//
//	evaluate [-samples N] [-patient chbNN] [-features K] [-seed S] [-per-seizure]
//
// The paper draws 100 samples per seizure (4500 in total); -samples
// scales that down for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"selflearn/internal/chbmit"
	"selflearn/internal/eval"
	"selflearn/internal/stats"
)

func main() {
	samples := flag.Int("samples", 100, "random crops per seizure (paper: 100)")
	patient := flag.String("patient", "", "restrict to one patient id (e.g. chb03)")
	nFeatures := flag.Int("features", 0, "truncate the 10-feature set to its first N features (0 = all)")
	seed := flag.Int64("seed", 1, "crop randomization seed")
	perSeizure := flag.Bool("per-seizure", true, "print Table II (per-seizure mean δ)")
	csvOut := flag.String("csv", "", "also write per-seizure results to this CSV file")
	flag.Parse()

	opts := eval.DefaultOptions()
	opts.SamplesPerSeizure = *samples
	opts.Seed = *seed
	opts.NumFeatures = *nFeatures
	opts.Parallel = true // per-seizure results are seed-deterministic either way
	if *patient != "" {
		p, err := chbmit.PatientByID(*patient)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Patients = []chbmit.Patient{p}
	}

	res, err := eval.EvaluateCorpus(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("TABLE I. CLASSIFICATION PERFORMANCE PER PATIENT")
	fmt.Printf("%-10s", "ID")
	for _, p := range res.Patients {
		fmt.Printf("%8d", p.Ordinal)
	}
	fmt.Println()
	fmt.Printf("%-10s", "δ (s)")
	for _, p := range res.Patients {
		fmt.Printf("%8.1f", p.MedianDelta)
	}
	fmt.Println()
	fmt.Printf("%-10s", "δnorm (%)")
	for _, p := range res.Patients {
		fmt.Printf("%8.1f", 100*p.MedianDeltaNorm)
	}
	fmt.Println()
	fmt.Println()
	fmt.Printf("Overall median δ        = %.1f s  (paper: 10.1 s)\n", res.OverallDelta)
	fmt.Printf("Overall median δ_norm   = %.4f    (paper: 0.9935)\n", res.OverallDeltaNorm)
	var meanDeltas []float64
	for _, s := range res.AllSeizures() {
		meanDeltas = append(meanDeltas, s.MeanDelta)
	}
	if lo, hi, err := stats.BootstrapCI(meanDeltas, stats.Median, 2000, 0.95, *seed); err == nil {
		fmt.Printf("95%% bootstrap CI (median δ across seizures): [%.1f, %.1f] s\n", lo, hi)
	}
	fmt.Println()

	if *perSeizure {
		fmt.Println("TABLE II. VALUE OF δ IN SECONDS PER SEIZURE (mean across samples)")
		fmt.Printf("%-8s %s\n", "Patient", "Seizure Number")
		fmt.Printf("%-8s", "ID")
		maxSeiz := 0
		for _, p := range res.Patients {
			if len(p.Seizures) > maxSeiz {
				maxSeiz = len(p.Seizures)
			}
		}
		for i := 1; i <= maxSeiz; i++ {
			fmt.Printf("%8d", i)
		}
		fmt.Println()
		for _, p := range res.Patients {
			fmt.Printf("%-8d", p.Ordinal)
			szs := append([]eval.SeizureResult(nil), p.Seizures...)
			sort.Slice(szs, func(a, b int) bool { return szs[a].Index < szs[b].Index })
			for _, s := range szs {
				fmt.Printf("%8.0f", s.MeanDelta)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := eval.WriteCSV(f, res); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("per-seizure CSV written to %s\n\n", *csvOut)
	}

	fmt.Println("Cumulative deviation statistics (Section VI-A)")
	for _, tsec := range []float64{15, 30, 60} {
		fmt.Printf("  seizures within %3.0f s: %5.1f %%\n", tsec, 100*res.WithinSeconds(tsec))
	}
	fmt.Println("  (paper: 73.3 % ≤ 15 s, 86.7 % ≤ 30 s, 93.3 % ≤ 60 s)")
}
