// Integration tests exercising cross-module flows: synthetic corpus →
// EDF persistence → feature extraction → a-posteriori labeling → detector
// training → real-time alarms, and the feature-selection story behind the
// paper's 10-feature set.
package selflearn

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"selflearn/internal/chbmit"
	"selflearn/internal/core"
	"selflearn/internal/edf"
	"selflearn/internal/eval"
	"selflearn/internal/features"
	"selflearn/internal/features/selection"
	"selflearn/internal/pipeline"
	"selflearn/internal/rt"
	"selflearn/internal/signal"
	"selflearn/internal/synth"
)

// TestEndToEndEDFLabeling persists a catalogue record as EDF, reloads it,
// and verifies the a-posteriori label survives the 16-bit round trip.
func TestEndToEndEDFLabeling(t *testing.T) {
	p, err := chbmit.PatientByID("chb08")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.SeizureRecord(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth := rec.Seizures[0]
	crop, err := rec.Slice(truth.Start-500, truth.Start+500)
	if err != nil {
		t.Fatal(err)
	}
	crop.RecordID = "it_chb08"
	dir := t.TempDir()
	if err := edf.SaveRecording(dir, crop); err != nil {
		t.Fatal(err)
	}
	loaded, err := edf.LoadRecording(dir, "it_chb08")
	if err != nil {
		t.Fatal(err)
	}
	avg := time.Duration(p.AvgSeizureDuration * float64(time.Second))

	label := func(r *signal.Recording) signal.Interval {
		m, err := features.Extract10(r, features.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		iv, _, err := core.LabelMatrix(m, avg)
		if err != nil {
			t.Fatal(err)
		}
		return iv
	}
	direct := label(crop)
	decoded := label(loaded)
	// The quantized path must land within a couple of seconds of the
	// direct path.
	if d := eval.Delta(direct, decoded); d > 2 {
		t.Errorf("EDF quantization moved the label by %g s", d)
	}
	if d := eval.Delta(loaded.Seizures[0], decoded); d > 30 {
		t.Errorf("label δ on decoded EDF = %g s", d)
	}
}

// TestSelfLearningToAlarms closes the loop: a session learns from two
// missed seizures, then the rt alarm layer runs over a held-out record
// and must alert during the true seizure without false alarms elsewhere.
func TestSelfLearningToAlarms(t *testing.T) {
	p, err := chbmit.PatientByID("chb01")
	if err != nil {
		t.Fatal(err)
	}
	opts := pipeline.DefaultOptions()
	opts.CropDuration = 600
	opts.ForestCfg.NumTrees = 20
	session, err := pipeline.NewSession(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for event := 1; event <= 2; event++ {
		rec, err := p.SeizureRecord(event, 0)
		if err != nil {
			t.Fatal(err)
		}
		truth := rec.Seizures[0]
		buf, err := rec.Slice(truth.Start-250, truth.Start+350)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := session.ReportMissedSeizure(buf); err != nil {
			t.Fatal(err)
		}
	}
	// Held-out record.
	test, err := p.SeizureRecord(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth := test.Seizures[0]
	crop, err := test.Slice(truth.Start-300, truth.Start+300)
	if err != nil {
		t.Fatal(err)
	}
	preds, m, err := session.Detect(crop)
	if err != nil {
		t.Fatal(err)
	}
	det, err := rt.NewDetector(nopClassifier{}, rt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range preds {
		det.PushPrediction(pr)
	}
	alarms := det.Alarms()
	if len(alarms) == 0 {
		t.Fatal("no alarm raised on a seizure record")
	}
	cropTruth := crop.Seizures[0]
	metrics := rt.ScoreEvents(alarms, [][2]float64{{cropTruth.Start, cropTruth.End}}, 10)
	if metrics.Detected != 1 {
		t.Errorf("seizure not detected: %+v (alarms %v)", metrics, alarms)
	}
	if metrics.FalseAlarms > 1 {
		t.Errorf("%d false alarms in a 10-minute crop", metrics.FalseAlarms)
	}
	// A window straddling the onset already contains ictal data, so the
	// alarm may legitimately fire a few seconds before the annotation.
	lat := rt.Latency(alarms, cropTruth.Start-10)
	if lat < 0 || lat > 70 {
		t.Errorf("detection latency %g s relative to onset−10 s", lat)
	}
	_ = m
}

type nopClassifier struct{}

func (nopClassifier) Predict([]float64) bool { return false }

// TestNoFalseAlarmsOnArtifactBackground stress-tests specificity: a
// detector self-learned on real seizures must not alarm on a seizure-free
// background contaminated with routine physiological artifacts (eye
// blinks and chewing EMG).
func TestNoFalseAlarmsOnArtifactBackground(t *testing.T) {
	p, err := chbmit.PatientByID("chb05")
	if err != nil {
		t.Fatal(err)
	}
	opts := pipeline.DefaultOptions()
	opts.CropDuration = 600
	opts.ForestCfg.NumTrees = 20
	opts.AugmentArtifacts = true // train the negative class on artifacts too
	session, err := pipeline.NewSession(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for event := 1; event <= 2; event++ {
		rec, err := p.SeizureRecord(event, 0)
		if err != nil {
			t.Fatal(err)
		}
		truth := rec.Seizures[0]
		buf, err := rec.Slice(truth.Start-250, truth.Start+350)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := session.ReportMissedSeizure(buf); err != nil {
			t.Fatal(err)
		}
	}
	// Ten artifact-rich seizure-free minutes.
	bg, err := p.NonSeizureRecord(600, 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	fs := bg.SampleRate
	for c := range bg.Data {
		if err := synth.AddBlinks(rng, bg.Data[c], 0, bg.Samples(), fs, synth.DefaultBlink()); err != nil {
			t.Fatal(err)
		}
		if err := synth.AddChewing(rng, bg.Data[c], 100*int(fs), 60*int(fs), fs, synth.DefaultChew()); err != nil {
			t.Fatal(err)
		}
	}
	preds, _, err := session.Detect(bg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := rt.NewDetector(nopClassifier{}, rt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range preds {
		det.PushPrediction(pr)
	}
	if alarms := det.Alarms(); len(alarms) > 1 {
		t.Errorf("%d false alarms in 10 artifact-rich minutes: %v", len(alarms), alarms)
	}
	// Augmentation must not cost sensitivity: a held-out seizure still
	// raises an alarm.
	rec3, err := p.SeizureRecord(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth := rec3.Seizures[0]
	crop, err := rec3.Slice(truth.Start-200, truth.Start+200)
	if err != nil {
		t.Fatal(err)
	}
	preds, _, err = session.Detect(crop)
	if err != nil {
		t.Fatal(err)
	}
	det.Reset()
	for _, pr := range preds {
		det.PushPrediction(pr)
	}
	cropTruth := crop.Seizures[0]
	m := rt.ScoreEvents(det.Alarms(), [][2]float64{{cropTruth.Start, cropTruth.End}}, 10)
	if m.Detected != 1 {
		t.Errorf("augmented detector missed the held-out seizure: %+v", m)
	}
}

// TestBackwardEliminationOnRealFeatures re-derives a feature ranking from
// labeled windows of the 54-feature bank and checks that class-relevant
// spectral features beat near-constant ones, mirroring how the paper's
// 10-feature set was selected.
func TestBackwardEliminationOnRealFeatures(t *testing.T) {
	p, err := chbmit.PatientByID("chb05")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.SeizureRecord(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth := rec.Seizures[0]
	crop, err := rec.Slice(truth.Start-250, truth.Start+250)
	if err != nil {
		t.Fatal(err)
	}
	m, err := features.Extract10(crop, features.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	labels := features.Labels(m, crop.Seizures)
	rank, err := selection.BackwardElimination(m.Rows, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) != 10 {
		t.Fatalf("rank length %d", len(rank))
	}
	// One of the three F7T3 band-power features (columns 0-2) must rank
	// in the top three: they carry the ictal signature most directly.
	top3 := map[int]bool{rank[0]: true, rank[1]: true, rank[2]: true}
	if !top3[0] && !top3[1] && !top3[2] {
		t.Errorf("no band-power feature in the top 3 of rank %v", rank)
	}
	topName := features.PaperFeatureNames()[rank[0]]
	if !strings.Contains(topName, "power") && !strings.Contains(topName, "entropy") {
		t.Errorf("implausible top feature %q", topName)
	}
}

// TestDetectorTrainsOnAlgorithmLabels verifies the core claim end to end
// at small scale: a forest trained purely on algorithm-labeled windows
// performs close to one trained on expert labels for the same seizures.
func TestDetectorTrainsOnAlgorithmLabels(t *testing.T) {
	p, err := chbmit.PatientByID("chb04")
	if err != nil {
		t.Fatal(err)
	}
	opts := pipeline.DefaultOptions()
	opts.Patients = []chbmit.Patient{p}
	opts.CropDuration = 600
	opts.ForestCfg.NumTrees = 15
	res, err := pipeline.Validate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.ExpertGeoMean) || math.IsNaN(res.AlgorithmGeoMean) {
		t.Fatal("NaN geomeans")
	}
	// chb04 contains an outlier-labeled seizure, so some degradation is
	// expected — but the algorithm arm must stay usable.
	if res.AlgorithmGeoMean < 0.5 {
		t.Errorf("algorithm-arm geomean %.3f collapsed", res.AlgorithmGeoMean)
	}
	if res.Degradation() < -20 {
		t.Errorf("algorithm arm implausibly better than expert arm: %+v", res)
	}
}

// TestCorpusDeterminismAcrossProcessBoundaries re-evaluates a seizure and
// checks the exact numbers against a frozen snapshot, guarding the
// reproducibility promise of DESIGN.md. If a generator change
// intentionally shifts these numbers, update the snapshot alongside
// EXPERIMENTS.md.
func TestCorpusDeterminismSnapshot(t *testing.T) {
	p, err := chbmit.PatientByID("chb01")
	if err != nil {
		t.Fatal(err)
	}
	opts := eval.DefaultOptions()
	opts.SamplesPerSeizure = 2
	sr, err := eval.EvaluateSeizure(p, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Deltas) != 2 {
		t.Fatal("sample count")
	}
	// The exact values depend only on the fixed seeds.
	for _, d := range sr.Deltas {
		if d < 0 || d > 60 {
			t.Errorf("snapshot drift: δ = %g outside the expected clean-case band", d)
		}
	}
	if sr.GeoDeltaNorm < 0.99 {
		t.Errorf("snapshot drift: δ_norm = %g", sr.GeoDeltaNorm)
	}
}
