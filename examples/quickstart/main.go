// Quickstart: generate a synthetic EEG recording with one seizure,
// extract the paper's 10-feature matrix, run the minimally-supervised
// a-posteriori labeling algorithm, and compare the produced label with
// the ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"selflearn/internal/core"
	"selflearn/internal/eval"
	"selflearn/internal/features"
	"selflearn/internal/synth"
)

func main() {
	// 1. Synthesize 30 minutes of two-channel EEG with a 60 s seizure
	//    starting at minute 12. In a real deployment this buffer comes
	//    from the wearable's flash after the patient's button press.
	rec, err := synth.Generate(synth.RecordConfig{
		PatientID:  "demo",
		RecordID:   "quickstart",
		Seed:       42,
		Duration:   1800,
		Background: synth.DefaultBackground(),
		Seizures: []synth.SeizureEvent{
			{Start: 720, Duration: 60, Config: synth.DefaultSeizure()},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: %.0f s at %g Hz, seizure at [%.0f, %.0f] s\n",
		rec.RecordID, rec.Duration(), rec.SampleRate,
		rec.Seizures[0].Start, rec.Seizures[0].End)

	// 2. Extract the 10 features of Section III-A over 4 s windows with
	//    75 % overlap.
	m, err := features.Extract10(rec, features.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d windows × %d features\n", m.NumRows(), m.NumFeatures())

	// 3. Run Algorithm 1. The only supervision is the patient's
	//    confirmation that the buffer contains a seizure, plus the
	//    expert-provided average seizure duration (60 s here).
	label, res, err := core.LabelMatrix(m, 60*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a-posteriori label: [%.0f, %.0f] s (distance argmax at window %d)\n",
		label.Start, label.End, res.Index)

	// 4. Score against the ground truth with the paper's δ metric.
	truth := rec.Seizures[0]
	d := eval.Delta(truth, label)
	dn, err := eval.DeltaNorm(truth, label, rec.Duration())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("δ = %.1f s, δ_norm = %.4f (paper reports a 10.1 s median)\n", d, dn)
}
