// Energy planning: size a wearable deployment with the platform model.
// Given a patient's seizure frequency and a candidate battery, estimate
// how long the device runs the full self-learning pipeline between
// charges and what dominates the budget.
//
// Run with:
//
//	go run ./examples/energyplanning
package main

import (
	"fmt"
	"log"

	"selflearn/internal/platform"
)

func main() {
	// Candidate batteries (capacity in mAh).
	batteries := []struct {
		name string
		mAh  float64
	}{
		{"coin-stack 240 mAh", 240},
		{"paper's 570 mAh", platform.BatteryCapacityMAh},
		{"smartwatch 1200 mAh", 1200},
	}
	// Patient profiles by seizure burden.
	profiles := []struct {
		name   string
		perDay float64
	}{
		{"well-controlled (1/month)", 1.0 / 30},
		{"refractory (2/week)", 2.0 / 7},
		{"severe (1/day)", 1},
	}

	fmt.Println("Full self-learning pipeline lifetime (days) per battery and seizure burden")
	fmt.Printf("%-28s", "")
	for _, b := range batteries {
		fmt.Printf("%22s", b.name)
	}
	fmt.Println()
	for _, p := range profiles {
		s, err := platform.Combined(p.perDay)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s", p.name)
		for _, b := range batteries {
			fmt.Printf("%22.2f", s.LifetimeDays(b.mAh))
		}
		fmt.Println()
	}
	fmt.Println()

	// Where does the energy go for the paper's worst case?
	s, err := platform.Combined(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget at 1 seizure/day (avg current %.3f mA):\n", s.AvgCurrentMA())
	shares := s.EnergyShares()
	for i, t := range s.Tasks {
		fmt.Printf("  %-24s %6.2f %%\n", t.Name, 100*shares[i])
	}
	fmt.Println()

	// What would a lighter-duty detector buy? Ablate the detector duty
	// cycle (e.g. a future detector that needs 1 s instead of 3 s per
	// 4 s window).
	fmt.Println("ablation: detector duty cycle vs lifetime (570 mAh, 1 seizure/day)")
	for _, duty := range []float64{0.75, 0.5, 0.25} {
		lab, err := platform.LabelingTask(1)
		if err != nil {
			log.Fatal(err)
		}
		det := platform.DetectionTask()
		det.Duty = duty
		idle, err := platform.IdleTask(duty + lab.Duty)
		if err != nil {
			log.Fatal(err)
		}
		sc := platform.Scenario{
			Name:  fmt.Sprintf("detector duty %.0f%%", 100*duty),
			Tasks: []platform.Task{platform.AcquisitionTask(), det, lab, idle},
		}
		if err := sc.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  duty %4.0f%% -> %.2f days\n", 100*duty, sc.LifetimeDays(platform.BatteryCapacityMAh))
	}
}
