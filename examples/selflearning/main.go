// Self-learning loop: the full Fig. 1 scenario. A patient's wearable
// starts with no detector. Each missed seizure is reported by button
// press within the hour; the device labels the buffered hour with the
// a-posteriori algorithm, adds the data to its personalized training set,
// and retrains the real-time random-forest detector. The example shows
// the detector improving over successive events and finally scoring a
// held-out seizure record.
//
// Run with:
//
//	go run ./examples/selflearning
package main

import (
	"fmt"
	"log"

	"selflearn/internal/chbmit"
	"selflearn/internal/eval"
	"selflearn/internal/features"
	"selflearn/internal/ml/metrics"
	"selflearn/internal/pipeline"
	"selflearn/internal/signal"
)

func main() {
	patient, err := chbmit.PatientByID("chb09")
	if err != nil {
		log.Fatal(err)
	}
	opts := pipeline.DefaultOptions()
	opts.CropDuration = 900 // 15-minute buffers keep the demo quick
	opts.ForestCfg.NumTrees = 30

	session, err := pipeline.NewSession(patient, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patient %s: %d catalogued seizures, average duration %.0f s\n",
		patient.ID, len(patient.Seizures), patient.AvgSeizureDuration)

	// Seizures 1..3 are "missed" one after another and self-labeled.
	for event := 1; event <= 3; event++ {
		rec, err := patient.SeizureRecord(event, 0)
		if err != nil {
			log.Fatal(err)
		}
		truth := rec.Seizures[0]
		// The device buffers the surrounding ~15 minutes.
		buf, err := rec.Slice(truth.Start-400, truth.Start+500)
		if err != nil {
			log.Fatal(err)
		}
		label, err := session.ReportMissedSeizure(buf)
		if err != nil {
			log.Fatal(err)
		}
		d := eval.Delta(buf.Seizures[0], label)
		fmt.Printf("event %d: labeled [%.0f, %.0f] s in the buffer, δ = %.1f s; detector retrained (%d events)\n",
			event, label.Start, label.End, d, session.Events())
	}

	// Score the now-trained detector on a held-out seizure record.
	test, err := patient.SeizureRecord(4, 0)
	if err != nil {
		log.Fatal(err)
	}
	tTruth := test.Seizures[0]
	crop, err := test.Slice(tTruth.Start-300, tTruth.Start+300)
	if err != nil {
		log.Fatal(err)
	}
	preds, m, err := session.Detect(crop)
	if err != nil {
		log.Fatal(err)
	}
	actual := features.Labels(m, []signal.Interval{crop.Seizures[0]})
	conf, err := metrics.FromSlices(preds, actual)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out seizure record: %s\n", conf)
	fmt.Printf("geometric mean after 3 self-learning events: %.1f %%\n", 100*conf.GeometricMean())
}
