// Embedded loop: how the pieces run on the wearable itself. EEG samples
// arrive one at a time from the AFE; a streaming feature extractor emits
// a 10-feature row every second; a Goertzel detector tracks theta power
// in parallel; and when the (deployed, fixed-point) detector's alarm
// layer confirms a seizure, the device would notify caregivers. The
// example then shows the a-posteriori path in its fixed-point form — the
// arithmetic the FPU-less Cortex-M3 actually executes.
//
// Run with:
//
//	go run ./examples/embedded
package main

import (
	"fmt"
	"log"
	"time"

	"selflearn/internal/chbmit"
	"selflearn/internal/core"
	"selflearn/internal/dsp/goertzel"
	"selflearn/internal/eval"
	"selflearn/internal/features"
	"selflearn/internal/fixedpoint"
	"selflearn/internal/platform"
	"selflearn/internal/signal"
)

func main() {
	patient, err := chbmit.PatientByID("chb03")
	if err != nil {
		log.Fatal(err)
	}
	rec, err := patient.SeizureRecord(2, 0)
	if err != nil {
		log.Fatal(err)
	}
	truth := rec.Seizures[0]
	buf, err := rec.Slice(truth.Start-300, truth.Start+300)
	if err != nil {
		log.Fatal(err)
	}
	fs := buf.SampleRate
	c0 := buf.Channel(signal.ChannelF7T3)
	c1 := buf.Channel(signal.ChannelF8T4)

	// 1. Stream samples through the firmware-style extractor and a
	//    Goertzel theta-band monitor simultaneously.
	st, err := features.NewStreamer(fs, features.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	theta, err := goertzel.NewDetector(fs, 5.5, int(fs)) // 1 s blocks at the ictal frequency
	if err != nil {
		log.Fatal(err)
	}
	var rows [][]float64
	var thetaPeak float64
	var thetaPeakAt int
	second := 0
	for i := range c0 {
		if row, ready, err := st.Push(c0[i], c1[i]); err != nil {
			log.Fatal(err)
		} else if ready {
			// Push reuses its emission buffer; copy to retain the row.
			rows = append(rows, append([]float64(nil), row...))
		}
		if p, done := theta.Push(c0[i]); done {
			if p > thetaPeak {
				thetaPeak, thetaPeakAt = p, second
			}
			second++
		}
	}
	fmt.Printf("streamed %d samples -> %d feature rows; Goertzel theta peak at t=%d s (ictal span [%.0f, %.0f] s)\n",
		len(c0), len(rows), thetaPeakAt, buf.Seizures[0].Start, buf.Seizures[0].End)

	// 2. The patient presses the button: run the a-posteriori labeling —
	//    first the float64 reference, then the Q15 kernel the MCU runs.
	m := &features.Matrix{
		Names:      features.PaperFeatureNames(),
		Rows:       rows,
		Window:     features.DefaultConfig().Window,
		SampleRate: fs,
	}
	avg := time.Duration(patient.AvgSeizureDuration * float64(time.Second))
	label, res, err := core.LabelMatrix(m, avg)
	if err != nil {
		log.Fatal(err)
	}
	fx, err := fixedpoint.Label(rows, res.Window, 4)
	if err != nil {
		log.Fatal(err)
	}
	d := eval.Delta(buf.Seizures[0], label)
	fmt.Printf("float64 label [%.0f, %.0f] s (δ = %.1f s); Q15 argmax %d vs float %d\n",
		label.Start, label.End, d, fx.Index, res.Index)

	// 3. What does this cost on the target? The cycle model answers.
	soft := platform.SoftFloatM3()
	fixed := platform.FixedPointM3()
	rtfSoft, err := soft.RealTimeFactor(buf.Duration(), res.Window, 10, true)
	if err != nil {
		log.Fatal(err)
	}
	rtfFixed, err := fixed.RealTimeFactor(buf.Duration(), res.Window, 10, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cortex-M3 real-time factor for this buffer: soft-float %.2f, Q15 %.2f (budget: ≤ 1)\n",
		rtfSoft, rtfFixed)
}
