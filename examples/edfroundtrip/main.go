// EDF round trip: persist a synthetic recording in the European Data
// Format with a CHB-MIT-style annotation sidecar, load it back, and run
// the a-posteriori labeling on the decoded signal — the offline analysis
// path a clinician's workstation would use.
//
// Run with:
//
//	go run ./examples/edfroundtrip
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"selflearn/internal/chbmit"
	"selflearn/internal/core"
	"selflearn/internal/edf"
	"selflearn/internal/eval"
	"selflearn/internal/features"
)

func main() {
	dir, err := os.MkdirTemp("", "selflearn-edf-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Render a catalogue record and crop 20 minutes around the seizure.
	patient, err := chbmit.PatientByID("chb05")
	if err != nil {
		log.Fatal(err)
	}
	rec, err := patient.SeizureRecord(2, 0)
	if err != nil {
		log.Fatal(err)
	}
	truth := rec.Seizures[0]
	crop, err := rec.Slice(truth.Start-600, truth.Start+600)
	if err != nil {
		log.Fatal(err)
	}
	crop.RecordID = "chb05_demo"

	if err := edf.SaveRecording(dir, crop); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(dir + "/chb05_demo.edf")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%.1f MB) + summary sidecar\n", info.Name(), float64(info.Size())/1e6)

	// Load it back: 16-bit quantization, headers, annotations.
	loaded, err := edf.LoadRecording(dir, "chb05_demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %.0f s, channels %v, %d seizure annotation(s)\n",
		loaded.RecordID, loaded.Duration(), loaded.Channels, len(loaded.Seizures))

	// Run the pipeline on the decoded data.
	m, err := features.Extract10(loaded, features.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	label, _, err := core.LabelMatrix(m, time.Duration(patient.AvgSeizureDuration*float64(time.Second)))
	if err != nil {
		log.Fatal(err)
	}
	d := eval.Delta(loaded.Seizures[0], label)
	fmt.Printf("a-posteriori label on decoded EDF: [%.0f, %.0f] s, δ = %.1f s\n",
		label.Start, label.End, d)
	fmt.Println("16-bit EDF quantization does not disturb the labeling.")
}
