// Package selflearn is a from-scratch Go reproduction of "A Self-Learning
// Methodology for Epileptic Seizure Detection with Minimally-Supervised
// Edge Labeling" (Pascual, Aminifar, Atienza — DATE 2019).
//
// The system labels epileptic seizures on a wearable EEG device with only
// two pieces of supervision — the patient's confirmation that the last
// hour contains a seizure, and the expert-provided average seizure
// duration — and uses the self-labeled data to train a real-time
// random-forest detector, closing a personalized self-learning loop.
//
// The repository is organised as substrates under internal/ (DSP, entropy
// estimators, synthetic EEG corpus, EDF codec, machine-learning
// baselines, energy model), the paper's core algorithm in internal/core,
// the experiment harnesses in internal/eval and internal/pipeline, the
// concurrent multi-patient serving subsystem in internal/serve,
// reproduction binaries under cmd/, and runnable walkthroughs under
// examples/. See DESIGN.md for the full inventory and EXPERIMENTS.md for
// paper-versus-measured numbers.
package selflearn
