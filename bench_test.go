// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus ablations of the design choices called out in
// DESIGN.md. Each experiment bench runs a reduced but structurally
// complete version of the experiment per iteration; the cmd/ tools run
// the full-scale versions.
package selflearn

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"selflearn/internal/chbmit"
	"selflearn/internal/core"
	"selflearn/internal/dsp/goertzel"
	"selflearn/internal/dsp/spectrum"
	"selflearn/internal/eval"
	"selflearn/internal/features"
	"selflearn/internal/fixedpoint"
	"selflearn/internal/ml/cluster"
	"selflearn/internal/ml/forest"
	"selflearn/internal/ml/knn"
	"selflearn/internal/ml/svm"
	"selflearn/internal/pipeline"
	"selflearn/internal/platform"
)

// ---------------------------------------------------------------------------
// Shared fixtures (built once, outside the timed loops).

var fixture struct {
	once sync.Once
	err  error
	// m10 is the 10-feature matrix of a 20-minute crop around chb01's
	// first seizure; m54 the corresponding 108-column matrix.
	m10, m54 *features.Matrix
	labels   []bool
	patient  chbmit.Patient
}

func loadFixture(b *testing.B) {
	b.Helper()
	fixture.once.Do(func() {
		p, err := chbmit.PatientByID("chb01")
		if err != nil {
			fixture.err = err
			return
		}
		fixture.patient = p
		rec, err := p.SeizureRecord(1, 0)
		if err != nil {
			fixture.err = err
			return
		}
		truth := rec.Seizures[0]
		crop, err := rec.Slice(truth.Start-600, truth.Start+600)
		if err != nil {
			fixture.err = err
			return
		}
		if fixture.m10, err = features.Extract10(crop, features.DefaultConfig()); err != nil {
			fixture.err = err
			return
		}
		if fixture.m54, err = features.Extract54(crop, features.DefaultConfig()); err != nil {
			fixture.err = err
			return
		}
		fixture.labels = features.Labels(fixture.m54, crop.Seizures)
	})
	if fixture.err != nil {
		b.Fatal(fixture.err)
	}
}

// ---------------------------------------------------------------------------
// E8 — generic vs personalized training (reduced scale).

func BenchmarkE8_GenericVsPersonalized(b *testing.B) {
	var ps []chbmit.Patient
	for _, id := range []string{"chb01", "chb09"} {
		p, err := chbmit.PatientByID(id)
		if err != nil {
			b.Fatal(err)
		}
		ps = append(ps, p)
	}
	opts := pipeline.DefaultOptions()
	opts.Patients = ps
	opts.CropDuration = 600
	opts.ForestCfg.NumTrees = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.ValidateGeneric(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("personalized %.2f %% vs generic %.2f %% (gap %.2f points; full-scale gap: 2.61)",
				100*res.PersonalizedGeoMean, 100*res.GenericGeoMean, res.Gap())
		}
	}
}

// E9 — artifact false-alarm study (reduced scale).

func BenchmarkE9_FalseAlarmStudy(b *testing.B) {
	p, err := chbmit.PatientByID("chb09")
	if err != nil {
		b.Fatal(err)
	}
	opts := pipeline.DefaultOptions()
	opts.CropDuration = 600
	opts.ForestCfg.NumTrees = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.FalseAlarmStudy(p, opts, 600, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("false alarms/h: plain %.1f vs augmented %.1f",
				res.FalseAlarmsPerHourPlain, res.FalseAlarmsPerHourAugmented)
		}
	}
}

// E10 — Monte-Carlo battery discharge.

func BenchmarkE10_MonteCarloDischarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim, err := platform.SimulateDischarge(1, platform.BatteryCapacityMAh, 200, 42)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("simulated mean lifetime %.2f days (analytic 2.59)", sim.MeanDays)
		}
	}
}

// ---------------------------------------------------------------------------
// E1 — Table I: per-patient labeling quality.

func BenchmarkTableI_LabelingPerPatient(b *testing.B) {
	p, err := chbmit.PatientByID("chb09")
	if err != nil {
		b.Fatal(err)
	}
	opts := eval.DefaultOptions()
	opts.SamplesPerSeizure = 2
	opts.CropMin, opts.CropMax = 1800, 1800
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := eval.EvaluateSeizure(p, 1+i%len(p.Seizures), opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("chb09 seizure %d: mean δ = %.1f s, δ_norm = %.4f (paper overall: 10.1 s / 0.9935)",
				sr.Index, sr.MeanDelta, sr.GeoDeltaNorm)
		}
	}
}

// E2 — Table II: per-seizure mean δ, including an artifact outlier.

func BenchmarkTableII_PerSeizure(b *testing.B) {
	p, err := chbmit.PatientByID("chb04")
	if err != nil {
		b.Fatal(err)
	}
	opts := eval.DefaultOptions()
	opts.SamplesPerSeizure = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Seizure 1 is the artifact-contaminated Table II outlier.
		sr, err := eval.EvaluateSeizure(p, 1, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("chb04 seizure 1 (outlier): mean δ = %.0f s (paper: 408 s)", sr.MeanDelta)
		}
	}
}

// E3 — cumulative within-15/30/60 s statistics ride on the Table I/II
// machinery; the aggregation itself is benchmarked here.

func BenchmarkTableI_AggregationChain(b *testing.B) {
	loadFixture(b)
	// Synthetic per-sample deltas for 45 seizures × 100 samples.
	rng := rand.New(rand.NewSource(1))
	res := &eval.CorpusResult{}
	for p := 0; p < 9; p++ {
		pr := eval.PatientResult{Ordinal: p + 1}
		for s := 0; s < 5; s++ {
			sr := eval.SeizureResult{MeanDelta: rng.Float64() * 30}
			pr.Seizures = append(pr.Seizures, sr)
		}
		res.Patients = append(res.Patients, pr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.WithinSeconds(15)
		_ = res.WithinSeconds(30)
		_ = res.WithinSeconds(60)
	}
}

// E4 — Fig. 4: doctor- vs algorithm-labeled training.

func BenchmarkFig4_SelfLearningValidation(b *testing.B) {
	p, err := chbmit.PatientByID("chb02")
	if err != nil {
		b.Fatal(err)
	}
	opts := pipeline.DefaultOptions()
	opts.Patients = []chbmit.Patient{p}
	opts.CropDuration = 600
	opts.ForestCfg.NumTrees = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Validate(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("chb02: doctor %.2f %% vs algorithm %.2f %% (degradation %.2f points; paper: 2.35)",
				100*res.ExpertGeoMean, 100*res.AlgorithmGeoMean, res.Degradation())
		}
	}
}

// E5 — Table III: battery lifetime budget.

func BenchmarkTableIII_BatteryLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := platform.Combined(1)
		if err != nil {
			b.Fatal(err)
		}
		d := s.LifetimeDays(platform.BatteryCapacityMAh)
		if i == 0 {
			b.Logf("combined @ 1 seizure/day: %.2f days (paper: 2.59)", d)
		}
	}
}

// E6 — Fig. 5: energy share per task.

func BenchmarkFig5_EnergyShares(b *testing.B) {
	s, err := platform.Combined(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shares := s.EnergyShares()
		if i == 0 {
			b.Logf("shares: %.2f / %.2f / %.2f / %.2f %% (paper: 9.47 / 85.72 / 4.77 / 0.04)",
				100*shares[0], 100*shares[1], 100*shares[2], 100*shares[3])
		}
	}
}

// E7 — Section VI-C lifetime sweep over seizure frequency.

func BenchmarkSweep_LifetimeVsFrequency(b *testing.B) {
	freqs := []float64{1.0 / 30, 1.0 / 14, 1.0 / 7, 2.0 / 7, 0.5, 1}
	for i := 0; i < b.N; i++ {
		for _, f := range freqs {
			s, err := platform.Combined(f)
			if err != nil {
				b.Fatal(err)
			}
			_ = s.LifetimeDays(platform.BatteryCapacityMAh)
		}
	}
}

// ---------------------------------------------------------------------------
// A1 — ablation: naive (pseudocode) vs decomposed labeling.

func ablationMatrix(l, f int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	X := make([][]float64, l)
	for i := range X {
		row := make([]float64, f)
		for j := range row {
			row[j] = rng.NormFloat64()
			if i >= l/3 && i < l/3+40 {
				row[j] += 3
			}
		}
		X[i] = row
	}
	return X
}

func BenchmarkAblation_NaiveLabeling(b *testing.B) {
	X := ablationMatrix(300, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LabelNaive(X, 40); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_FastLabeling(b *testing.B) {
	X := ablationMatrix(300, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Label(X, 40); err != nil {
			b.Fatal(err)
		}
	}
}

// A4 — ablation: Q15 fixed point (the deployed Cortex-M3 form, no FPU)
// vs float64 labeling.

func BenchmarkAblation_FixedPointLabeling(b *testing.B) {
	X := ablationMatrix(300, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fixedpoint.Label(X, 40, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fl, err := core.Label(X, 40)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("fixed argmax %d vs float argmax %d", res.Index, fl.Index)
		}
	}
}

// A5 — ablation: multi-core offline labeling.

func BenchmarkAblation_ParallelLabeling(b *testing.B) {
	X := ablationMatrix(3600, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LabelParallel(X, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLabelFast_OneHour checks the paper's real-time envelope ("one
// second of signal is processed in one second"): labeling a full hour of
// features must finish orders of magnitude faster than the hour itself.
func BenchmarkLabelFast_OneHour(b *testing.B) {
	X := ablationMatrix(3600, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Label(X, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// A2 — ablation: labeling quality/cost vs feature count.

func BenchmarkAblation_FeatureCount(b *testing.B) {
	loadFixture(b)
	for _, n := range []int{3, 10} {
		cols := make([]int, n)
		for i := range cols {
			cols[i] = i
		}
		sub, err := fixture.m10.Select(cols)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{3: "features=3", 10: "features=10"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.LabelMatrix(sub, 60*time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// A3 — ablation: supervised vs unsupervised detector baselines on the
// same window features.

func BenchmarkAblation_ClassifierBaselines(b *testing.B) {
	loadFixture(b)
	X, y := fixture.m54.Rows, fixture.labels
	b.Run("random-forest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := forest.DefaultConfig()
			cfg.NumTrees = 20
			f, err := forest.Train(X, y, cfg)
			if err != nil {
				b.Fatal(err)
			}
			_ = f.PredictBatch(X)
		}
	})
	b.Run("linear-svm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := svm.Train(X, y, svm.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			for _, x := range X {
				_ = m.Predict(x)
			}
		}
	})
	b.Run("knn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := knn.Train(X, y, 5)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 50; j++ { // kNN prediction is the expensive part
				_ = m.Predict(X[j*len(X)/50])
			}
		}
	})
	b.Run("kmeans-unsupervised", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := cluster.KMeans(X, 2, 50, 1)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cluster.BinaryFromClusters(res); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// A6 — ablation: Goertzel vs FFT-periodogram band power (the embedded
// trade: O(N) per band vs one FFT for all bands).

func BenchmarkAblation_BandPowerBackends(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.Run("periodogram-all-bands", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := spectrum.BandPowers(xs, 256, spectrum.ClinicalBands()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("goertzel-delta-theta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := goertzel.BandPower(xs, 256, 0.5, 4); err != nil {
				b.Fatal(err)
			}
			if _, err := goertzel.BandPower(xs, 256, 4, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Component throughput benches.

func BenchmarkExtract10_TwentyMinutes(b *testing.B) {
	p, err := chbmit.PatientByID("chb01")
	if err != nil {
		b.Fatal(err)
	}
	rec, err := p.SeizureRecord(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	crop, err := rec.Slice(0, 1200)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.Extract10(crop, features.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtract54_FiveMinutes(b *testing.B) {
	p, err := chbmit.PatientByID("chb01")
	if err != nil {
		b.Fatal(err)
	}
	rec, err := p.SeizureRecord(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	crop, err := rec.Slice(0, 300)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.Extract54(crop, features.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
