package synth

import (
	"math"
	"math/rand"
	"testing"

	"selflearn/internal/dsp/spectrum"
	"selflearn/internal/dsp/window"
	"selflearn/internal/stats"
)

func TestAddBlinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fs := 256.0
	data := make([]float64, 120*int(fs))
	if err := AddBlinks(rng, data, 0, len(data), fs, DefaultBlink()); err != nil {
		t.Fatal(err)
	}
	// Blinks are positive deflections near the configured amplitude.
	if peak := stats.Max(data); peak < 0.8*DefaultBlink().Amp {
		t.Errorf("peak %g, want near %g", peak, DefaultBlink().Amp)
	}
	// Roughly Rate·duration blinks: count threshold crossings.
	count := 0
	above := false
	for _, v := range data {
		if v > DefaultBlink().Amp/2 {
			if !above {
				count++
				above = true
			}
		} else {
			above = false
		}
	}
	want := DefaultBlink().Rate * 120
	if float64(count) < want/3 || float64(count) > want*3 {
		t.Errorf("%d blinks in 120 s, want ≈%g", count, want)
	}
}

func TestAddBlinksErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 100)
	if err := AddBlinks(rng, data, -1, 50, 256, DefaultBlink()); err == nil {
		t.Error("negative start should fail")
	}
	if err := AddBlinks(rng, data, 0, 200, 256, DefaultBlink()); err == nil {
		t.Error("overflow should fail")
	}
	bad := DefaultBlink()
	bad.Width = 0
	if err := AddBlinks(rng, data, 0, 100, 256, bad); err == nil {
		t.Error("zero width should fail")
	}
	quiet := DefaultBlink()
	quiet.Rate = 0
	if err := AddBlinks(rng, data, 0, 100, 256, quiet); err != nil {
		t.Errorf("zero rate should be a no-op, got %v", err)
	}
}

func TestAddChewingSpectralSignature(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fs := 256.0
	data := make([]float64, 60*int(fs))
	if err := AddChewing(rng, data, 0, len(data), fs, DefaultChew()); err != nil {
		t.Fatal(err)
	}
	psd, err := spectrum.Welch(data, fs, 1024, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	// Broadband EMG: beta+gamma share should be substantial.
	high := psd.RelativeBandPower(spectrum.Beta) + psd.RelativeBandPower(spectrum.Gamma)
	if high < 0.5 {
		t.Errorf("chewing EMG should be high-frequency dominant, share %g", high)
	}
}

func TestAddChewingRhythm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fs := 256.0
	data := make([]float64, 20*int(fs))
	cfg := ChewConfig{Amp: 50, Rate: 2, BurstFraction: 0.3}
	if err := AddChewing(rng, data, 0, len(data), fs, cfg); err != nil {
		t.Fatal(err)
	}
	// Quiet phases between bursts stay zero.
	period := int(fs / cfg.Rate)
	quietIdx := int(0.7 * float64(period)) // well inside the quiet phase
	for c := 0; c < 10; c++ {
		if data[c*period+quietIdx] != 0 {
			t.Fatalf("quiet phase contaminated at cycle %d", c)
		}
	}
}

func TestAddChewingErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]float64, 100)
	if err := AddChewing(rng, data, 0, 200, 256, DefaultChew()); err == nil {
		t.Error("overflow should fail")
	}
	bad := DefaultChew()
	bad.Rate = 0
	if err := AddChewing(rng, data, 0, 100, 256, bad); err == nil {
		t.Error("zero rate should fail")
	}
	bad = DefaultChew()
	bad.BurstFraction = 1.5
	if err := AddChewing(rng, data, 0, 100, 256, bad); err == nil {
		t.Error("burst fraction > 1 should fail")
	}
}

func TestAddDropout(t *testing.T) {
	fs := 256.0
	data := make([]float64, 30*int(fs))
	for i := range data {
		data[i] = 10
	}
	cfg := DropoutConfig{Duration: 10, Level: -12.5}
	if err := AddDropout(data, 5*int(fs), fs, cfg); err != nil {
		t.Fatal(err)
	}
	lo, hi := 5*int(fs), 15*int(fs)
	for i := lo; i < hi; i++ {
		if data[i] != cfg.Level {
			t.Fatalf("sample %d = %g inside dropout, want %g", i, data[i], cfg.Level)
		}
	}
	// The overwrite is exact: neighbors untouched.
	if data[lo-1] != 10 || data[hi] != 10 {
		t.Fatalf("dropout bled outside [%d, %d)", lo, hi)
	}

	if err := AddDropout(data, -1, fs, cfg); err == nil {
		t.Error("negative start should fail")
	}
	if err := AddDropout(data, 25*int(fs), fs, cfg); err == nil {
		t.Error("overflow should fail")
	}
	if err := AddDropout(data, 0, fs, DropoutConfig{Duration: 0}); err == nil {
		t.Error("zero duration should fail")
	}
}

// renderContaminated drives every artifact generator over one buffer
// from a single seeded RNG — the way scenario contamination composes
// them.
func renderContaminated(t *testing.T, seed int64) []float64 {
	t.Helper()
	fs := 256.0
	n := 60 * int(fs)
	rng := rand.New(rand.NewSource(seed))
	data := Background(rng, n, fs, DefaultBackground())
	if err := AddBlinks(rng, data, 0, n, fs, DefaultBlink()); err != nil {
		t.Fatal(err)
	}
	if err := AddChewing(rng, data, 0, n, fs, DefaultChew()); err != nil {
		t.Fatal(err)
	}
	if err := AddArtifact(rng, data, 20*int(fs), fs, ArtifactConfig{Amp: 800, Duration: 5, HighFreq: true}); err != nil {
		t.Fatal(err)
	}
	if err := AddDropout(data, 40*int(fs), fs, DefaultDropout()); err != nil {
		t.Fatal(err)
	}
	return data
}

// TestArtifactStreamDeterminism pins the property every seeded scenario
// rests on: the same seed renders a bit-identical contaminated stream,
// and a different seed does not.
func TestArtifactStreamDeterminism(t *testing.T) {
	a := renderContaminated(t, 42)
	b := renderContaminated(t, 42)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("sample %d differs bitwise: %x vs %x", i, math.Float64bits(a[i]), math.Float64bits(b[i]))
		}
	}
	c := renderContaminated(t, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestBlinksDoNotDerailLabeling(t *testing.T) {
	// Routine blinks must not hijack the distance argmax the way the
	// outlier bursts do: their per-window energy is far below ictal
	// levels. This is the property that separates everyday artifacts
	// from the Table II failure mode.
	rng := rand.New(rand.NewSource(6))
	fs := 256.0
	n := 600 * int(fs)
	bg := Background(rng, n, fs, DefaultBackground())
	if err := AddSeizure(rng, bg, 300*int(fs), 50*int(fs), fs, DefaultSeizure()); err != nil {
		t.Fatal(err)
	}
	if err := AddBlinks(rng, bg, 0, n, fs, DefaultBlink()); err != nil {
		t.Fatal(err)
	}
	// The ictal span still has far larger RMS than any blink-only span.
	ictal := stats.RMS(bg[310*int(fs) : 340*int(fs)])
	blinky := stats.RMS(bg[60*int(fs) : 90*int(fs)])
	if ictal < 2*blinky {
		t.Errorf("ictal RMS %g vs blink background %g: separation lost", ictal, blinky)
	}
}
