// Package synth generates deterministic synthetic scalp-EEG signals that
// stand in for the access-gated CHB-MIT corpus. The generator produces the
// phenomena the paper's pipeline keys on: 1/f background activity with an
// alpha rhythm, rhythmic spike-wave seizure discharges with elevated
// delta/theta power and reduced signal complexity, and high-amplitude
// artifact bursts ("large bursts of noise") that the paper identifies as
// the cause of its three mislabeled seizures.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"selflearn/internal/signal"
)

// BackgroundConfig parameterises seizure-free EEG.
type BackgroundConfig struct {
	// NoiseRMS is the target RMS of the 1/f noise floor in µV.
	NoiseRMS float64
	// AlphaAmp is the amplitude of the posterior alpha rhythm in µV.
	AlphaAmp float64
	// AlphaFreq is the alpha rhythm frequency in Hz.
	AlphaFreq float64
	// ThetaAmp is the amplitude of background theta activity in µV
	// (small in awake adults).
	ThetaAmp float64
}

// DefaultBackground returns physiologically plausible awake-EEG defaults.
func DefaultBackground() BackgroundConfig {
	return BackgroundConfig{NoiseRMS: 12, AlphaAmp: 18, AlphaFreq: 10, ThetaAmp: 4}
}

// SeizureConfig parameterises an ictal (seizure) discharge.
type SeizureConfig struct {
	// Amp is the peak amplitude of the spike-wave complex in µV.
	Amp float64
	// StartFreq and EndFreq bound the discharge frequency in Hz; ictal
	// rhythms typically slow from ~5-6 Hz toward ~3 Hz.
	StartFreq float64
	EndFreq   float64
	// SpikeSharpness controls the spike width (larger = sharper).
	SpikeSharpness float64
	// RampFraction is the fraction of the seizure spent ramping the
	// envelope up at onset (and down at offset).
	RampFraction float64
}

// DefaultSeizure returns a canonical spike-wave configuration.
func DefaultSeizure() SeizureConfig {
	return SeizureConfig{Amp: 120, StartFreq: 5.5, EndFreq: 3.2, SpikeSharpness: 18, RampFraction: 0.12}
}

// ArtifactConfig parameterises a noise burst (electrode movement / EMG).
type ArtifactConfig struct {
	// Amp is the artifact amplitude in µV; large bursts dwarf the EEG.
	Amp float64
	// Duration is the burst length in seconds.
	Duration float64
	// HighFreq selects muscle-like (true, broadband high frequency) or
	// movement-like (false, large slow swing) morphology.
	HighFreq bool
}

// DefaultArtifact returns a large electrode-movement burst.
func DefaultArtifact() ArtifactConfig {
	return ArtifactConfig{Amp: 400, Duration: 18, HighFreq: false}
}

// pinkNoise is Paul Kellet's economy 1/f filter driven by Gaussian white
// noise.
type pinkNoise struct {
	rng        *rand.Rand
	b0, b1, b2 float64
}

func (p *pinkNoise) next() float64 {
	w := p.rng.NormFloat64()
	p.b0 = 0.99765*p.b0 + w*0.0990460
	p.b1 = 0.96300*p.b1 + w*0.2965164
	p.b2 = 0.57000*p.b2 + w*1.0526913
	return p.b0 + p.b1 + p.b2 + w*0.1848
}

// Background synthesizes n samples of seizure-free EEG at fs Hz.
func Background(rng *rand.Rand, n int, fs float64, cfg BackgroundConfig) []float64 {
	out := make([]float64, n)
	pink := &pinkNoise{rng: rng}
	// Calibrate the pink-noise gain empirically over the first pass.
	raw := make([]float64, n)
	var ss float64
	for i := range raw {
		raw[i] = pink.next()
		ss += raw[i] * raw[i]
	}
	rms := math.Sqrt(ss / float64(maxInt(n, 1)))
	gain := 0.0
	if rms > 0 {
		gain = cfg.NoiseRMS / rms
	}
	// Alpha rhythm with slow random amplitude modulation (waxing and
	// waning spindles) and theta undertone.
	alphaPhase := rng.Float64() * 2 * math.Pi
	thetaPhase := rng.Float64() * 2 * math.Pi
	mod := 0.5
	for i := range out {
		t := float64(i) / fs
		// Random-walk modulation clipped to [0.2, 1].
		mod += 0.002 * rng.NormFloat64()
		if mod < 0.2 {
			mod = 0.2
		}
		if mod > 1 {
			mod = 1
		}
		alpha := cfg.AlphaAmp * mod * math.Sin(2*math.Pi*cfg.AlphaFreq*t+alphaPhase)
		theta := cfg.ThetaAmp * math.Sin(2*math.Pi*5.0*t+thetaPhase)
		out[i] = gain*raw[i] + alpha + theta
	}
	return out
}

// AddSeizure superimposes a spike-wave discharge on data in the sample
// range [start, start+durSamples). The discharge chirps from
// cfg.StartFreq to cfg.EndFreq with an onset/offset envelope ramp.
func AddSeizure(rng *rand.Rand, data []float64, start, durSamples int, fs float64, cfg SeizureConfig) error {
	if start < 0 || durSamples <= 0 || start+durSamples > len(data) {
		return fmt.Errorf("synth: seizure [%d, %d) outside data of %d samples", start, start+durSamples, len(data))
	}
	phase := rng.Float64() * 2 * math.Pi
	ramp := cfg.RampFraction
	if ramp <= 0 || ramp > 0.5 {
		ramp = 0.12
	}
	for i := 0; i < durSamples; i++ {
		frac := float64(i) / float64(durSamples)
		freq := cfg.StartFreq + (cfg.EndFreq-cfg.StartFreq)*frac
		phase += 2 * math.Pi * freq / fs
		// Envelope: raised-cosine ramps at both ends.
		env := 1.0
		if frac < ramp {
			env = 0.5 * (1 - math.Cos(math.Pi*frac/ramp))
		} else if frac > 1-ramp {
			env = 0.5 * (1 - math.Cos(math.Pi*(1-frac)/ramp))
		}
		// Spike-and-wave morphology: slow wave plus a sharp Gaussian
		// spike once per cycle.
		cyc := math.Mod(phase, 2*math.Pi)
		spike := math.Exp(-cfg.SpikeSharpness * (cyc - math.Pi) * (cyc - math.Pi) / (2 * math.Pi))
		wave := math.Sin(phase)
		// Mild cycle-to-cycle amplitude jitter keeps it organic.
		jitter := 1 + 0.05*rng.NormFloat64()
		data[start+i] += cfg.Amp * env * jitter * (0.55*wave + 0.45*spike)
	}
	return nil
}

// AddArtifact superimposes a noise burst at sample range
// [start, start+duration·fs).
func AddArtifact(rng *rand.Rand, data []float64, start int, fs float64, cfg ArtifactConfig) error {
	durSamples := int(cfg.Duration * fs)
	if start < 0 || durSamples <= 0 || start+durSamples > len(data) {
		return fmt.Errorf("synth: artifact [%d, %d) outside data of %d samples", start, start+durSamples, len(data))
	}
	phase := rng.Float64() * 2 * math.Pi
	for i := 0; i < durSamples; i++ {
		frac := float64(i) / float64(durSamples)
		env := math.Sin(math.Pi * frac) // smooth in/out
		var v float64
		if cfg.HighFreq {
			v = rng.NormFloat64() // broadband EMG-like
		} else {
			// Large slow electrode swing with erratic wobble.
			v = math.Sin(2*math.Pi*0.6*float64(i)/fs+phase) + 0.3*rng.NormFloat64()
		}
		data[start+i] += cfg.Amp * env * v
	}
	return nil
}

// RecordConfig describes one synthetic recording.
type RecordConfig struct {
	PatientID  string
	RecordID   string
	Seed       int64
	Duration   float64 // seconds
	SampleRate float64 // Hz; 0 means signal.DefaultSampleRate
	Background BackgroundConfig
	// Seizures to inject, expressed in seconds.
	Seizures []SeizureEvent
	// Artifacts to inject, expressed in seconds.
	Artifacts []ArtifactEvent
}

// SeizureEvent places one seizure.
type SeizureEvent struct {
	Start    float64 // seconds
	Duration float64 // seconds
	Config   SeizureConfig
}

// ArtifactEvent places one artifact burst.
type ArtifactEvent struct {
	Start  float64 // seconds
	Config ArtifactConfig
}

// Generate renders the configured recording with the two wearable
// electrode-pair channels, F7T3 and F8T4. The seizure source projects
// into both channels with different gains (focal discharges are rarely
// symmetric); backgrounds are independent per channel.
func Generate(cfg RecordConfig) (*signal.Recording, error) {
	fs := cfg.SampleRate
	if fs == 0 {
		fs = signal.DefaultSampleRate
	}
	if fs <= 0 {
		return nil, fmt.Errorf("synth: invalid sample rate %g", fs)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("synth: invalid duration %g", cfg.Duration)
	}
	n := int(cfg.Duration * fs)
	rng := rand.New(rand.NewSource(cfg.Seed))
	ch0 := Background(rng, n, fs, cfg.Background)
	ch1 := Background(rng, n, fs, cfg.Background)
	rec := &signal.Recording{
		PatientID:  cfg.PatientID,
		RecordID:   cfg.RecordID,
		SampleRate: fs,
		Channels:   []string{signal.ChannelF7T3, signal.ChannelF8T4},
		Data:       [][]float64{ch0, ch1},
	}
	for _, ev := range cfg.Seizures {
		start := int(ev.Start * fs)
		dur := int(ev.Duration * fs)
		// Render the discharge once and project into both channels so
		// they stay coherent.
		src := make([]float64, n)
		if err := AddSeizure(rng, src, start, dur, fs, ev.Config); err != nil {
			return nil, err
		}
		for i := start; i < start+dur && i < n; i++ {
			ch0[i] += src[i]
			ch1[i] += 0.75 * src[i]
		}
		rec.Seizures = append(rec.Seizures, signal.Interval{Start: ev.Start, End: ev.Start + ev.Duration})
	}
	for _, ev := range cfg.Artifacts {
		start := int(ev.Start * fs)
		// Artifacts hit both electrodes (movement is mechanical).
		if err := AddArtifact(rng, ch0, start, fs, ev.Config); err != nil {
			return nil, err
		}
		if err := AddArtifact(rng, ch1, start, fs, ev.Config); err != nil {
			return nil, err
		}
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
