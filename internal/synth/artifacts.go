package synth

import (
	"fmt"
	"math"
	"math/rand"
)

// BlinkConfig parameterises eye-blink artifacts: stereotyped slow
// deflections (~300 ms) that dominate frontal electrode pairs such as
// F7T3 and are the most common benign EEG artifact.
type BlinkConfig struct {
	// Amp is the peak deflection in µV.
	Amp float64
	// Width is the blink duration in seconds.
	Width float64
	// Rate is the average blink rate in blinks per second.
	Rate float64
}

// DefaultBlink returns a typical awake blink pattern (~12 blinks/min).
func DefaultBlink() BlinkConfig {
	return BlinkConfig{Amp: 120, Width: 0.3, Rate: 0.2}
}

// AddBlinks superimposes randomly timed eye blinks over the sample range
// [start, start+durSamples).
func AddBlinks(rng *rand.Rand, data []float64, start, durSamples int, fs float64, cfg BlinkConfig) error {
	if start < 0 || durSamples <= 0 || start+durSamples > len(data) {
		return fmt.Errorf("synth: blink range [%d, %d) outside data of %d samples", start, start+durSamples, len(data))
	}
	if cfg.Width <= 0 || cfg.Rate < 0 {
		return fmt.Errorf("synth: invalid blink config %+v", cfg)
	}
	widthSamples := int(cfg.Width * fs)
	if widthSamples < 2 {
		widthSamples = 2
	}
	// Poisson arrivals via exponential gaps.
	pos := start
	for {
		if cfg.Rate == 0 {
			break
		}
		gap := int(rng.ExpFloat64() / cfg.Rate * fs)
		pos += gap
		if pos+widthSamples >= start+durSamples {
			break
		}
		// Half-sine deflection with slight asymmetry (faster down-slope).
		for i := 0; i < widthSamples; i++ {
			frac := float64(i) / float64(widthSamples)
			shape := math.Sin(math.Pi * math.Pow(frac, 0.8))
			data[pos+i] += cfg.Amp * shape
		}
		pos += widthSamples
	}
	return nil
}

// DropoutConfig parameterises an electrode dropout: a lead break or a
// detached electrode leaves the channel reading a flat front-end level
// instead of brain activity.
type DropoutConfig struct {
	// Duration is the dropout length in seconds.
	Duration float64
	// Level is the DC level in µV the channel holds while disconnected
	// (an open input typically sits at a rail or near zero).
	Level float64
}

// DefaultDropout returns a ten-second disconnect resting at zero.
func DefaultDropout() DropoutConfig {
	return DropoutConfig{Duration: 10, Level: 0}
}

// AddDropout replaces the sample range [start, start+Duration·fs) with
// the flat disconnect level. Unlike the additive artifacts it overwrites
// the signal: a disconnected electrode records nothing, which is exactly
// the flatline morphology quality assessment keys on.
func AddDropout(data []float64, start int, fs float64, cfg DropoutConfig) error {
	durSamples := int(cfg.Duration * fs)
	if start < 0 || durSamples <= 0 || start+durSamples > len(data) {
		return fmt.Errorf("synth: dropout [%d, %d) outside data of %d samples", start, start+durSamples, len(data))
	}
	for i := 0; i < durSamples; i++ {
		data[start+i] = cfg.Level
	}
	return nil
}

// ChewConfig parameterises chewing/bruxism artifacts: rhythmic broadband
// EMG bursts at ~1–2 Hz that ride on temporal electrodes.
type ChewConfig struct {
	// Amp is the EMG burst amplitude in µV.
	Amp float64
	// Rate is the chewing rate in Hz.
	Rate float64
	// BurstFraction is the duty cycle of each chew cycle spent bursting.
	BurstFraction float64
}

// DefaultChew returns a typical chewing pattern.
func DefaultChew() ChewConfig {
	return ChewConfig{Amp: 60, Rate: 1.5, BurstFraction: 0.4}
}

// AddChewing superimposes a chewing episode over the sample range
// [start, start+durSamples).
func AddChewing(rng *rand.Rand, data []float64, start, durSamples int, fs float64, cfg ChewConfig) error {
	if start < 0 || durSamples <= 0 || start+durSamples > len(data) {
		return fmt.Errorf("synth: chew range [%d, %d) outside data of %d samples", start, start+durSamples, len(data))
	}
	if cfg.Rate <= 0 || cfg.BurstFraction <= 0 || cfg.BurstFraction > 1 {
		return fmt.Errorf("synth: invalid chew config %+v", cfg)
	}
	period := fs / cfg.Rate
	for i := 0; i < durSamples; i++ {
		phase := math.Mod(float64(i), period) / period
		if phase < cfg.BurstFraction {
			// Envelope within the burst.
			env := math.Sin(math.Pi * phase / cfg.BurstFraction)
			data[start+i] += cfg.Amp * env * rng.NormFloat64()
		}
	}
	return nil
}
