package synth

import (
	"math"
	"math/rand"
	"testing"

	"selflearn/internal/dsp/spectrum"
	"selflearn/internal/dsp/window"
	"selflearn/internal/entropy"
	"selflearn/internal/signal"
	"selflearn/internal/stats"
)

func TestBackgroundStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultBackground()
	xs := Background(rng, 60*256, 256, cfg)
	if len(xs) != 60*256 {
		t.Fatalf("length %d", len(xs))
	}
	m := stats.Mean(xs)
	if math.Abs(m) > 5 {
		t.Errorf("background mean %g µV, want ≈0", m)
	}
	r := stats.RMS(xs)
	if r < 5 || r > 60 {
		t.Errorf("background RMS %g µV outside plausible EEG range", r)
	}
}

func TestBackgroundAlphaDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := Background(rng, 120*256, 256, DefaultBackground())
	psd, err := spectrum.Welch(xs, 256, 2048, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	alpha := psd.BandPower(spectrum.Alpha)
	theta := psd.BandPower(spectrum.Theta)
	if alpha <= theta {
		t.Errorf("awake background should be alpha-dominant: alpha %g vs theta %g", alpha, theta)
	}
}

func TestBackgroundDeterministic(t *testing.T) {
	a := Background(rand.New(rand.NewSource(7)), 1000, 256, DefaultBackground())
	b := Background(rand.New(rand.NewSource(7)), 1000, 256, DefaultBackground())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the signal")
		}
	}
	c := Background(rand.New(rand.NewSource(8)), 1000, 256, DefaultBackground())
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestAddSeizureSpectralSignature(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fs := 256.0
	n := 120 * int(fs)
	bg := Background(rng, n, fs, DefaultBackground())
	ictal := append([]float64(nil), bg...)
	if err := AddSeizure(rng, ictal, 30*int(fs), 60*int(fs), fs, DefaultSeizure()); err != nil {
		t.Fatal(err)
	}
	seg := ictal[40*int(fs) : 80*int(fs)] // fully ictal span
	ref := bg[40*int(fs) : 80*int(fs)]
	psdI, err := spectrum.Welch(seg, fs, 1024, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	psdB, err := spectrum.Welch(ref, fs, 1024, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	// Ictal theta+delta power must dwarf background theta+delta.
	ictalLow := psdI.BandPower(spectrum.Delta) + psdI.BandPower(spectrum.Theta)
	bgLow := psdB.BandPower(spectrum.Delta) + psdB.BandPower(spectrum.Theta)
	if ictalLow < 10*bgLow {
		t.Errorf("ictal low-band power %g should dominate background %g", ictalLow, bgLow)
	}
	// Relative theta must increase.
	if psdI.RelativeBandPower(spectrum.Theta) <= psdB.RelativeBandPower(spectrum.Theta) {
		t.Error("relative theta power should rise during the seizure")
	}
}

func TestSeizureReducesComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fs := 256.0
	n := 120 * int(fs)
	bg := Background(rng, n, fs, DefaultBackground())
	ictal := append([]float64(nil), bg...)
	if err := AddSeizure(rng, ictal, 30*int(fs), 60*int(fs), fs, DefaultSeizure()); err != nil {
		t.Fatal(err)
	}
	peIctal, err := entropy.Permutation(ictal[40*int(fs):70*int(fs)], 5)
	if err != nil {
		t.Fatal(err)
	}
	peBg, err := entropy.Permutation(bg[40*int(fs):70*int(fs)], 5)
	if err != nil {
		t.Fatal(err)
	}
	if peIctal >= peBg {
		t.Errorf("ictal permutation entropy %g should fall below background %g", peIctal, peBg)
	}
}

func TestAddSeizureBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]float64, 1000)
	if err := AddSeizure(rng, data, -1, 100, 256, DefaultSeizure()); err == nil {
		t.Error("negative start should fail")
	}
	if err := AddSeizure(rng, data, 950, 100, 256, DefaultSeizure()); err == nil {
		t.Error("overflow should fail")
	}
	if err := AddSeizure(rng, data, 0, 0, 256, DefaultSeizure()); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestAddArtifactAmplitude(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	fs := 256.0
	data := make([]float64, 60*int(fs))
	cfg := DefaultArtifact()
	if err := AddArtifact(rng, data, 10*int(fs), fs, cfg); err != nil {
		t.Fatal(err)
	}
	peak := stats.Max(data)
	if peak < cfg.Amp/3 {
		t.Errorf("artifact peak %g too small for amp %g", peak, cfg.Amp)
	}
	// Samples outside the burst remain zero.
	if data[0] != 0 || data[len(data)-1] != 0 {
		t.Error("artifact leaked outside its interval")
	}
}

func TestAddArtifactHighFreq(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	fs := 256.0
	data := make([]float64, 60*int(fs))
	cfg := ArtifactConfig{Amp: 200, Duration: 10, HighFreq: true}
	if err := AddArtifact(rng, data, 20*int(fs), fs, cfg); err != nil {
		t.Fatal(err)
	}
	seg := data[22*int(fs) : 28*int(fs)]
	psd, err := spectrum.Welch(seg, fs, 512, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	// Broadband burst: substantial power above 30 Hz.
	if psd.RelativeBandPower(spectrum.Gamma) < 0.3 {
		t.Errorf("high-frequency artifact should be broadband, gamma share %g", psd.RelativeBandPower(spectrum.Gamma))
	}
}

func TestAddArtifactBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	data := make([]float64, 100)
	if err := AddArtifact(rng, data, 0, 256, ArtifactConfig{Amp: 1, Duration: 10}); err == nil {
		t.Error("burst longer than data should fail")
	}
	if err := AddArtifact(rng, data, -5, 256, DefaultArtifact()); err == nil {
		t.Error("negative start should fail")
	}
}

func TestGenerateRecord(t *testing.T) {
	rec, err := Generate(RecordConfig{
		PatientID:  "chb01",
		RecordID:   "r1",
		Seed:       42,
		Duration:   300,
		Background: DefaultBackground(),
		Seizures: []SeizureEvent{
			{Start: 100, Duration: 50, Config: DefaultSeizure()},
		},
		Artifacts: []ArtifactEvent{
			{Start: 200, Config: DefaultArtifact()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Channels) != 2 || rec.Channels[0] != signal.ChannelF7T3 {
		t.Errorf("channels = %v", rec.Channels)
	}
	if rec.Duration() != 300 {
		t.Errorf("duration = %g", rec.Duration())
	}
	if len(rec.Seizures) != 1 || rec.Seizures[0] != (signal.Interval{Start: 100, End: 150}) {
		t.Errorf("seizures = %v", rec.Seizures)
	}
	// Seizure present on both channels, weaker on F8T4.
	fs := int(rec.SampleRate)
	rms := func(xs []float64) float64 { return stats.RMS(xs) }
	s0 := rms(rec.Data[0][110*fs : 140*fs])
	s1 := rms(rec.Data[1][110*fs : 140*fs])
	b0 := rms(rec.Data[0][10*fs : 40*fs])
	if s0 < 2*b0 {
		t.Errorf("seizure RMS %g should exceed background %g substantially", s0, b0)
	}
	if s1 >= s0 {
		t.Errorf("F8T4 projection %g should be weaker than F7T3 %g", s1, s0)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := RecordConfig{
		PatientID: "p", RecordID: "r", Seed: 9, Duration: 30,
		Background: DefaultBackground(),
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Data {
		for i := range a.Data[c] {
			if a.Data[c][i] != b.Data[c][i] {
				t.Fatal("generation must be deterministic in the seed")
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(RecordConfig{Duration: 0}); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := Generate(RecordConfig{Duration: 10, SampleRate: -1}); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := Generate(RecordConfig{
		Duration:   10,
		Background: DefaultBackground(),
		Seizures:   []SeizureEvent{{Start: 5, Duration: 30, Config: DefaultSeizure()}},
	}); err == nil {
		t.Error("seizure past the end should fail")
	}
}
