package serve

import (
	"sync"
	"testing"
	"time"
)

// TestEventDelivery subscribes before any traffic and checks that the
// channel carries exactly the alarms, retrain outcomes and evictions
// the counters report — the paper's "alarm to caregivers" made
// observable. Run with -race in CI, it also exercises concurrent
// emit/subscribe safety.
func TestEventDelivery(t *testing.T) {
	var sinkMu sync.Mutex
	sinkCounts := map[EventKind]int{}
	srv, err := New(Config{
		Workers:            1, // single shard so MaxSessions is exact
		MaxSessions:        1, // second patient evicts the first
		SampleRate:         testRate,
		History:            4 * time.Minute,
		AvgSeizureDuration: 20 * time.Second,
	}, WithEventBuffer(4096), WithEventSink(func(ev Event) {
		sinkMu.Lock()
		sinkCounts[ev.Kind]++
		sinkMu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	counts := map[EventKind]int{}
	seqs := map[uint64]bool{}
	collected := make(chan struct{})
	events := srv.Events()
	go func() {
		defer close(collected)
		for ev := range events {
			counts[ev.Kind]++
			// Seqs are stamped before the send, so arrival order across
			// emitter goroutines may interleave — but never repeat.
			if seqs[ev.Seq] {
				t.Errorf("duplicate event seq %d", ev.Seq)
			}
			seqs[ev.Seq] = true
			if ev.Patient == "" {
				t.Errorf("event without patient: %+v", ev)
			}
			if ev.Kind == EventRetrain && ev.Err != nil {
				t.Errorf("retrain failed: %v", ev.Err)
			}
			if ev.Kind == EventModelUpdated && ev.Version == 0 {
				t.Errorf("model-updated event without a version: %+v", ev)
			}
		}
	}()

	// Train patient A on a confirmed seizure, then replay a fresh
	// seizure so the retrained detector raises alarms.
	const patient = "chb01"
	h := open(t, srv, patient)
	stream(t, h, testRecording(t, 1, 180, 90, 24))
	if err := h.Confirm(); err != nil {
		t.Fatal(err)
	}
	if st := awaitRetrains(t, srv, 1); st.Retrains != 1 {
		t.Fatalf("retrain failed: %+v", st)
	}
	stream(t, h, testRecording(t, 2, 180, 100, 24))
	// A second patient on the one-session shard evicts patient A.
	h2 := open(t, srv, "chb02")
	stream(t, h2, testRecording(t, 3, 10, -1, 0))
	srv.Close()
	<-collected

	st := srv.Snapshot()
	if st.Alarms == 0 || st.SessionsEvicted == 0 {
		t.Fatalf("scenario raised no alarms/evictions: %+v", st)
	}
	if st.EventsDropped != 0 {
		t.Fatalf("EventsDropped = %d with an attentive subscriber, want 0", st.EventsDropped)
	}
	if got, want := counts[EventAlarm], int(st.Alarms); got != want {
		t.Fatalf("alarm events = %d, counter says %d", got, want)
	}
	if got, want := counts[EventRetrain], int(st.Retrains+st.RetrainErrors); got != want {
		t.Fatalf("retrain events = %d, counter says %d", got, want)
	}
	if got, want := counts[EventEviction], int(st.SessionsEvicted); got != want {
		t.Fatalf("eviction events = %d, counter says %d", got, want)
	}
	// Every successful retrain publishes exactly one model version.
	if got, want := counts[EventModelUpdated], int(st.Retrains); got != want {
		t.Fatalf("model-updated events = %d, retrain counter says %d", got, want)
	}
	// The synchronous sink saw everything the channel saw.
	sinkMu.Lock()
	defer sinkMu.Unlock()
	for _, k := range []EventKind{EventAlarm, EventRetrain, EventEviction, EventModelUpdated} {
		if sinkCounts[k] != counts[k] {
			t.Fatalf("sink saw %d %v events, channel saw %d", sinkCounts[k], k, counts[k])
		}
	}
}

// TestShedEventEmitted: every batch a ShedOldest admission discards is
// observable — the victim stream saw no error (its Push had succeeded),
// so the EventShed stream is the only way operators notice data loss
// before the stats scrape. One event per shed batch, carrying the
// shed stream's patient, mirroring the eviction events.
func TestShedEventEmitted(t *testing.T) {
	var sinkMu sync.Mutex
	shedEvents := 0
	patients := map[string]bool{}
	srv, err := New(Config{
		Workers:    1,
		QueueDepth: 1,
		SampleRate: testRate,
		History:    time.Minute,
	}, WithAdmission(ShedOldest()), WithEventSink(func(ev Event) {
		if ev.Kind != EventShed {
			return
		}
		sinkMu.Lock()
		shedEvents++
		patients[ev.Patient] = true
		sinkMu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := open(t, srv, "p")
	// Jam the one worker on a two-minute batch, then keep pushing: with
	// a depth-1 queue every extra push sheds the previously queued batch.
	rec := testRecording(t, 6, 120, -1, 0)
	if err := h.Push(rec.Data[0], rec.Data[1]); err != nil {
		t.Fatal(err)
	}
	small0, small1 := make([]float64, testRate), make([]float64, testRate)
	for i := 0; i < 50; i++ {
		if err := h.Push(small0, small1); err != nil {
			t.Fatalf("push %d under shed-oldest = %v", i, err)
		}
	}
	st := srv.Snapshot()
	if st.BatchesShed == 0 {
		t.Fatalf("BatchesShed = 0; scenario did not shed: %+v", st)
	}
	sinkMu.Lock()
	defer sinkMu.Unlock()
	if uint64(shedEvents) != st.BatchesShed {
		t.Fatalf("shed events = %d, BatchesShed counter = %d", shedEvents, st.BatchesShed)
	}
	if !patients["p"] || len(patients) != 1 {
		t.Fatalf("shed events named patients %v, want only p", patients)
	}
}

// TestEventsDroppedWhenUnread: an activated subscriber that never reads
// loses events beyond the buffer — counted, never blocking the servers.
func TestEventsDroppedWhenUnread(t *testing.T) {
	srv, err := New(Config{
		Workers:     1,
		MaxSessions: 1,
		SampleRate:  testRate,
		History:     time.Minute,
	}, WithEventBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Events() // subscribe, then ignore the channel
	rec := testRecording(t, 5, 10, -1, 0)
	for _, p := range []string{"a", "b", "c"} { // two evictions
		h := open(t, srv, p)
		stream(t, h, rec)
		h.Close()
	}
	srv.Close()
	st := srv.Snapshot()
	if st.SessionsEvicted != 2 {
		t.Fatalf("evictions = %d, want 2", st.SessionsEvicted)
	}
	if st.EventsDropped == 0 {
		t.Fatal("EventsDropped = 0 with a 1-slot buffer and an absent reader")
	}
}

// TestNoSubscriberNoDrops: before Events is called, channel delivery is
// off — servers without observers must not accumulate drop counts.
func TestNoSubscriberNoDrops(t *testing.T) {
	srv, err := New(Config{
		Workers:     1,
		MaxSessions: 1,
		SampleRate:  testRate,
		History:     time.Minute,
	}, WithEventBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rec := testRecording(t, 5, 10, -1, 0)
	for _, p := range []string{"a", "b", "c"} {
		h := open(t, srv, p)
		stream(t, h, rec)
		h.Close()
	}
	srv.Close()
	if st := srv.Snapshot(); st.EventsDropped != 0 {
		t.Fatalf("EventsDropped = %d with no subscriber, want 0", st.EventsDropped)
	}
}
