package serve

import "selflearn/internal/ml/forest"

// localTransport is the in-process ShardTransport: the goroutine worker
// pool the server was born with, now behind the same seam a cluster of
// shardd processes plugs into. Patients map to workers by FNV-1a hash;
// a patient's jobs always land on the same worker, which preserves
// per-stream ordering without locks. The per-batch path stays
// allocation-free: a Job is a value on a channel, and per-stream
// attribution rides a pre-existing pointer in its Stream field.
type localTransport struct {
	workers []*worker
}

func newLocalTransport(s *Server, historyRows int) *localTransport {
	t := &localTransport{workers: make([]*worker, s.cfg.Workers)}
	for i := range t.workers {
		t.workers[i] = newWorker(s, i, historyRows)
	}
	return t
}

// Shard implements ShardTransport; local resolution cannot fail.
func (t *localTransport) Shard(patientID string) (Shard, error) {
	return t.workers[shardHash(patientID)%uint32(len(t.workers))], nil
}

// Depth implements ShardTransport.
func (t *localTransport) Depth() int {
	depth := 0
	for _, w := range t.workers {
		depth += w.queue.Depth()
	}
	return depth
}

// Close implements ShardTransport: closes every worker queue and waits
// for the drains. The caller (Server.Close) guarantees no Enqueue is in
// flight.
func (t *localTransport) Close() {
	for _, w := range t.workers {
		w.queue.Close()
	}
	for _, w := range t.workers {
		<-w.done
	}
}

// worker owns a shard of patients: their sessions, the LRU session
// table, and the goroutine that processes their jobs strictly in
// arrival order. It implements Shard by delegating to its queue.
type worker struct {
	srv      *Server
	index    int
	queue    *Queue
	done     chan struct{}
	sessions *lru[*session]
}

func newWorker(s *Server, index, historyRows int) *worker {
	w := &worker{
		srv:   s,
		index: index,
		done:  make(chan struct{}),
	}
	w.queue = NewQueue(s.cfg.QueueDepth, QueueHooks{
		Shed: func(j Job) {
			s.batchesShed.Add(1)
			s.hub.emit(Event{Kind: EventShed, Patient: j.Patient})
		},
		ConfirmLost: func(Job) { s.confirmsDropped.Add(1) },
	})
	w.sessions = newLRU[*session](s.cfg.MaxSessions, func(id string, sess *session) {
		// The session's streaming state dies with it, but the trained
		// model is already in the model cache/store (the learner
		// publishes there), so a returning patient resumes detection warm.
		s.sessions.Add(-1)
		s.sessionsEvicted.Add(1)
		s.hub.emit(Event{Kind: EventEviction, Patient: id})
	})
	go w.run(historyRows)
	return w
}

// Enqueue implements Shard.
func (w *worker) Enqueue(p AdmissionPolicy, j Job) error { return w.queue.Offer(p, j) }

// Congested implements Shard.
func (w *worker) Congested(p AdmissionPolicy) bool { return w.queue.FastReject(p) }

// Depth implements Shard.
func (w *worker) Depth() int { return w.queue.Depth() }

// drainJob is one admitted batch job's place in a coalesced drain: its
// session, its row span [lo, hi) in the shared row arena, and the model
// pointer captured at admission time (so a learner publish landing
// mid-drain cannot split one job's rows across two models).
type drainJob struct {
	j      Job
	sess   *session
	lo, hi int32
	model  *forest.FlatForest
	scored bool
}

// drain owns the reusable arenas of the coalescing loop: the admitted
// jobs, every job's completed feature rows (stable history-ring views),
// the prediction arena aligned with the rows, and the per-model-group
// gather/scatter scratch. All slices grow once and are reused, keeping
// the steady-state drain allocation-free.
type drain struct {
	jobs  []drainJob
	rows  [][]float64
	preds []bool
	gmap  []int32     // model group: arena row indices
	grows [][]float64 // model group: gathered rows (float fallback)
	gpred []bool      // model group: contiguous predictions
	codes []int16     // model group: quantized row codes
}

func (d *drain) reset() {
	d.jobs = d.jobs[:0]
	d.rows = d.rows[:0]
}

// run is the worker loop: one blocking receive per wakeup, then a
// non-blocking drain of up to Coalesce-1 more ready jobs, processed as
// one cross-patient batch in three phases — admit (prefilter, session,
// ingest, model reconcile; strictly in arrival order), score (one
// tree-major walk per distinct model across every patient's rows), and
// settle (alarms, stats, events; again in arrival order). Per-patient
// semantics are exactly the one-job-at-a-time loop's: a patient's jobs
// all land on this worker, rows enter the alarm layer in arrival
// order, and two row-bearing jobs of the same patient never share a
// drain (the second would overwrite the first's history-ring views),
// enforced by the conflict check below.
func (w *worker) run(historyRows int) {
	defer close(w.done)
	maxDrain := w.srv.cfg.Coalesce
	if maxDrain < 1 {
		maxDrain = 1
	}
	d := &drain{}
	for {
		j, ok := <-w.queue.C()
		if !ok {
			return
		}
		for pending := true; pending; {
			pending = false
			d.reset()
			w.admit(d, j, historyRows)
			for len(d.jobs) < maxDrain {
				nj, ok := w.queue.TryRecv()
				if !ok {
					break
				}
				if !nj.Confirm && w.conflicts(d, nj.Patient) {
					// Same patient already contributed rows: flush what we
					// have and start the next drain with this job, keeping
					// its ring views and alarm ordering intact.
					j, pending = nj, true
					break
				}
				w.admit(d, nj, historyRows)
			}
			w.score(d)
			w.settle(d)
		}
	}
}

// conflicts reports whether a row-bearing job for patient is already in
// the drain. Confirm jobs never conflict: they snapshot the ring, they
// do not advance it.
func (w *worker) conflicts(d *drain, patient string) bool {
	for i := range d.jobs {
		if !d.jobs[i].j.Confirm && d.jobs[i].j.Patient == patient {
			return true
		}
	}
	return false
}

// admit runs one job's arrival-order phase: quality admission, session
// resolution, confirm dispatch or ingest, and the model-cache
// reconcile. Completed rows are appended to the drain's shared arena.
// Prefilter jobs (declare, digest, audit sample) are handled entirely
// here — they carry no feature rows.
func (w *worker) admit(d *drain, j Job, historyRows int) {
	if j.Declare != nil || j.Digest != nil || j.Audit {
		w.admitPrefilter(j, historyRows)
		return
	}
	// Quality-aware admission: a garbage batch is refused here,
	// before any session state or classifier time is spent on it.
	// The samples never reach the feature streamer — the window
	// stream skips the unusable second.
	if !j.Confirm && w.srv.prefilter != nil &&
		!w.srv.prefilter.Admit(j.C0, j.C1, w.srv.cfg.SampleRate) {
		w.srv.qualityRejected.Add(1)
		if j.Stream != nil {
			j.Stream.NoteRejected()
		}
		w.srv.hub.emit(Event{Kind: EventQualityReject, Patient: j.Patient})
		return
	}
	sess, err := w.session(j.Patient, historyRows)
	if err != nil {
		// The pipeline was pre-flighted in New, so a constructor
		// failure here should be unreachable; count it rather than
		// crash the shard, and surface it via Stats.StreamErrors.
		w.srv.streamErrors.Add(1)
		return
	}
	if j.Confirm {
		// Snapshot at the job's arrival position: earlier ingests in this
		// drain have already advanced the ring, later ones have not.
		w.confirm(sess)
		return
	}
	if sess.audit != nil {
		// A declared prefilter's mirror gate consumes shipped
		// amplitudes in stream order, keeping its cold-start baseline
		// in lockstep with the client's.
		sess.audit.observeShipped(j.C0, j.C1)
	}
	rows, err := sess.ingest(j.C0, j.C1)
	if err != nil {
		w.srv.streamErrors.Add(1)
	}
	if len(rows) == 0 {
		return
	}
	// Reconcile with the model cache: the learner publishes
	// there first, and a session recreated after LRU eviction
	// would otherwise miss a retrain that completed in flight.
	// LRU-only lookup — the store must stay off the batch path.
	if f := w.srv.cache.cached(j.Patient); f != nil && f != sess.model.Load() {
		sess.model.Store(f)
	}
	lo := int32(len(d.rows))
	// Copy the row views out of the session's reusable scratch; the
	// views themselves are stable ring slots, valid for the whole drain.
	d.rows = append(d.rows, rows...)
	d.jobs = append(d.jobs, drainJob{
		j: j, sess: sess, lo: lo, hi: int32(len(d.rows)), model: sess.model.Load(),
	})
}

// score classifies every admitted row, grouping jobs by model pointer
// so each distinct forest makes exactly one tree-major pass over all of
// its patients' rows. Quantized models score the whole group from one
// contiguous int16 code arena — the cross-patient generalization of the
// 4-row lock-step walk; un-quantized models gather their group and take
// the float batch path; untrained sessions are all-negative.
//
//selflearn:hotpath
func (w *worker) score(d *drain) {
	if len(d.rows) == 0 {
		return
	}
	if cap(d.preds) < len(d.rows) {
		d.preds = make([]bool, len(d.rows))
	}
	d.preds = d.preds[:len(d.rows)]
	for i := range d.jobs {
		ji := &d.jobs[i]
		if ji.scored || ji.lo == ji.hi {
			continue
		}
		m := ji.model
		if m == nil {
			for k := i; k < len(d.jobs); k++ {
				jk := &d.jobs[k]
				if jk.model == nil {
					for r := jk.lo; r < jk.hi; r++ {
						d.preds[r] = false
					}
					jk.scored = true
				}
			}
			continue
		}
		d.gmap = d.gmap[:0]
		for k := i; k < len(d.jobs); k++ {
			jk := &d.jobs[k]
			if jk.model == m {
				for r := jk.lo; r < jk.hi; r++ {
					d.gmap = append(d.gmap, r)
				}
				jk.scored = true
			}
		}
		n := len(d.gmap)
		if cap(d.gpred) < n {
			d.gpred = make([]bool, n)
		}
		if qf := m.Quant(); qf != nil {
			nf := qf.NumFeatures()
			if cap(d.codes) < n*nf {
				d.codes = make([]int16, n*nf)
			}
			codes := d.codes[:n*nf]
			for gi, r := range d.gmap {
				qf.QuantizeRowInto(codes[gi*nf:(gi+1)*nf], d.rows[r])
			}
			qf.PredictBatchInto(d.gpred[:n], codes, n)
		} else {
			if cap(d.grows) < n {
				d.grows = make([][]float64, n)
			}
			grows := d.grows[:n]
			for gi, r := range d.gmap {
				grows[gi] = d.rows[r]
			}
			m.PredictBatchInto(d.gpred[:n], grows)
		}
		for gi, r := range d.gmap {
			d.preds[r] = d.gpred[gi]
		}
	}
}

// settle feeds each job's predictions through its session's alarm
// layer and attributes stats and events, in arrival order.
func (w *worker) settle(d *drain) {
	for i := range d.jobs {
		ji := &d.jobs[i]
		if ji.lo == ji.hi {
			continue
		}
		nRows := int(ji.hi - ji.lo)
		fired := ji.sess.pushAlarms(d.preds[ji.lo:ji.hi])
		w.srv.windows.Add(uint64(nRows))
		if ji.j.Stream != nil {
			ji.j.Stream.NoteWindows(nRows)
		}
		if len(fired) > 0 {
			w.srv.alarms.Add(uint64(len(fired)))
			if ji.j.Stream != nil {
				ji.j.Stream.NoteAlarms(len(fired))
			}
			for _, at := range fired {
				w.srv.hub.emit(Event{Kind: EventAlarm, Patient: ji.j.Patient, StreamTime: at})
			}
		}
	}
}

// admitPrefilter processes the prefilter job kinds against the
// patient's session-attached audit state: a Declare (re)builds the
// mirror, a Digest is checked against the declared gate and counted,
// and an Audit sample replays through stage 2 with the session's
// current model. Disagreements crossing the declared threshold emit
// EventPrefilterDrift; unaudited suppression on a no-proactive-sampling
// stream emits EventAuditRequest.
func (w *worker) admitPrefilter(j Job, historyRows int) {
	sess, err := w.session(j.Patient, historyRows)
	if err != nil {
		w.srv.streamErrors.Add(1)
		return
	}
	if j.Declare != nil {
		audit, err := newPrefilterAudit(*j.Declare, w.srv.cfg)
		if err != nil {
			// Stream.DeclarePrefilter validates before enqueueing, so
			// only a feature-pipeline failure lands here; surface it.
			w.srv.streamErrors.Add(1)
			return
		}
		sess.audit = audit
		return
	}
	if sess.audit == nil {
		// Digest or audit traffic without a declaration — a client bug
		// or a declaration lost to shedding. Count the suppression (the
		// uplink saving is real) but nothing can be audited.
		if j.Digest != nil {
			w.srv.windowsSuppressed.Add(uint64(j.Digest.Windows))
		}
		return
	}
	if j.Digest != nil {
		w.srv.windowsSuppressed.Add(uint64(j.Digest.Windows))
		disagreed, requestAudit := sess.audit.observeDigest(*j.Digest)
		w.noteAuditOutcome(sess, j.Patient, disagreed)
		if requestAudit {
			w.srv.hub.emit(Event{Kind: EventAuditRequest, Patient: j.Patient})
		}
		return
	}
	// Audit sample: reconcile the model first so the replay scores with
	// the freshest forest, exactly like the ingest path.
	if f := w.srv.cache.cached(j.Patient); f != nil && f != sess.model.Load() {
		sess.model.Store(f)
	}
	w.srv.auditSamples.Add(1)
	disagreed := sess.audit.observeSample(j.C0, j.C1, sess.model.Load())
	w.noteAuditOutcome(sess, j.Patient, disagreed)
}

// noteAuditOutcome folds audit disagreements into the server counters
// and emits the once-per-declaration drift event when the stream's
// threshold is crossed.
func (w *worker) noteAuditOutcome(sess *session, patient string, disagreed uint64) {
	if disagreed == 0 {
		return
	}
	w.srv.auditDisagreements.Add(disagreed)
	if sess.audit.noteDisagreements(disagreed) {
		w.srv.prefilterDrift.Add(1)
		w.srv.hub.emit(Event{Kind: EventPrefilterDrift, Patient: patient})
	}
}

// session returns the patient's live session, creating (and warm
// starting from the model cache or its backing store) or LRU-touching
// as needed.
func (w *worker) session(patientID string, historyRows int) (*session, error) {
	if sess, ok := w.sessions.Get(patientID); ok {
		return sess, nil
	}
	sess, err := newSession(patientID, historyRows, w.srv.cfg)
	if err != nil {
		return nil, err
	}
	// Full read-through Get: a first session after process restart warm
	// starts from a FileStore checkpoint here, before its first window
	// is ever classified.
	if f := w.srv.cache.Get(patientID); f != nil {
		sess.model.Store(f)
	}
	w.sessions.Put(patientID, sess)
	w.srv.sessions.Add(1)
	w.srv.sessionsCreated.Add(1)
	return sess, nil
}

// confirm snapshots the session's feature history and hands it to the
// background learner pool; the real-time path never blocks on training.
func (w *worker) confirm(sess *session) {
	rows := sess.historySnapshot()
	sess.retrainSeq++
	if !w.srv.learner.schedule(retrainJob{sess: sess, rows: rows, seq: sess.retrainSeq}) {
		w.srv.confirmsDropped.Add(1)
	}
}
