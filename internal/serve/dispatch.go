package serve

// localTransport is the in-process ShardTransport: the goroutine worker
// pool the server was born with, now behind the same seam a cluster of
// shardd processes plugs into. Patients map to workers by FNV-1a hash;
// a patient's jobs always land on the same worker, which preserves
// per-stream ordering without locks. The per-batch path stays
// allocation-free: a Job is a value on a channel, and per-stream
// attribution rides a pre-existing pointer in its Stream field.
type localTransport struct {
	workers []*worker
}

func newLocalTransport(s *Server, historyRows int) *localTransport {
	t := &localTransport{workers: make([]*worker, s.cfg.Workers)}
	for i := range t.workers {
		t.workers[i] = newWorker(s, i, historyRows)
	}
	return t
}

// Shard implements ShardTransport; local resolution cannot fail.
func (t *localTransport) Shard(patientID string) (Shard, error) {
	return t.workers[shardHash(patientID)%uint32(len(t.workers))], nil
}

// Depth implements ShardTransport.
func (t *localTransport) Depth() int {
	depth := 0
	for _, w := range t.workers {
		depth += w.queue.Depth()
	}
	return depth
}

// Close implements ShardTransport: closes every worker queue and waits
// for the drains. The caller (Server.Close) guarantees no Enqueue is in
// flight.
func (t *localTransport) Close() {
	for _, w := range t.workers {
		w.queue.Close()
	}
	for _, w := range t.workers {
		<-w.done
	}
}

// worker owns a shard of patients: their sessions, the LRU session
// table, and the goroutine that processes their jobs strictly in
// arrival order. It implements Shard by delegating to its queue.
type worker struct {
	srv      *Server
	index    int
	queue    *Queue
	done     chan struct{}
	sessions *lru[*session]
}

func newWorker(s *Server, index, historyRows int) *worker {
	w := &worker{
		srv:   s,
		index: index,
		done:  make(chan struct{}),
	}
	w.queue = NewQueue(s.cfg.QueueDepth, QueueHooks{
		Shed: func(j Job) {
			s.batchesShed.Add(1)
			s.hub.emit(Event{Kind: EventShed, Patient: j.Patient})
		},
		ConfirmLost: func(Job) { s.confirmsDropped.Add(1) },
	})
	w.sessions = newLRU[*session](s.cfg.MaxSessions, func(id string, sess *session) {
		// The session's streaming state dies with it, but the trained
		// model is already in the model cache/store (the learner
		// publishes there), so a returning patient resumes detection warm.
		s.sessions.Add(-1)
		s.sessionsEvicted.Add(1)
		s.hub.emit(Event{Kind: EventEviction, Patient: id})
	})
	go w.run(historyRows)
	return w
}

// Enqueue implements Shard.
func (w *worker) Enqueue(p AdmissionPolicy, j Job) error { return w.queue.Offer(p, j) }

// Congested implements Shard.
func (w *worker) Congested(p AdmissionPolicy) bool { return w.queue.FastReject(p) }

// Depth implements Shard.
func (w *worker) Depth() int { return w.queue.Depth() }

func (w *worker) run(historyRows int) {
	defer close(w.done)
	for j := range w.queue.C() {
		// Quality-aware admission: a garbage batch is refused here,
		// before any session state or classifier time is spent on it.
		// The samples never reach the feature streamer — the window
		// stream skips the unusable second.
		if !j.Confirm && w.srv.prefilter != nil &&
			!w.srv.prefilter.Admit(j.C0, j.C1, w.srv.cfg.SampleRate) {
			w.srv.qualityRejected.Add(1)
			if j.Stream != nil {
				j.Stream.NoteRejected()
			}
			w.srv.hub.emit(Event{Kind: EventQualityReject, Patient: j.Patient})
			continue
		}
		sess, err := w.session(j.Patient, historyRows)
		if err != nil {
			// The pipeline was pre-flighted in New, so a constructor
			// failure here should be unreachable; count it rather than
			// crash the shard, and surface it via Stats.StreamErrors.
			w.srv.streamErrors.Add(1)
			continue
		}
		if j.Confirm {
			w.confirm(sess)
			continue
		}
		rows, err := sess.ingest(j.C0, j.C1)
		if err != nil {
			w.srv.streamErrors.Add(1)
		}
		if len(rows) > 0 {
			// Reconcile with the model cache: the learner publishes
			// there first, and a session recreated after LRU eviction
			// would otherwise miss a retrain that completed in flight.
			// LRU-only lookup — the store must stay off the batch path.
			if f := w.srv.cache.cached(j.Patient); f != nil && f != sess.model.Load() {
				sess.model.Store(f)
			}
			fired := sess.classify(rows)
			w.srv.windows.Add(uint64(len(rows)))
			if j.Stream != nil {
				j.Stream.NoteWindows(len(rows))
			}
			if len(fired) > 0 {
				w.srv.alarms.Add(uint64(len(fired)))
				if j.Stream != nil {
					j.Stream.NoteAlarms(len(fired))
				}
				for _, at := range fired {
					w.srv.hub.emit(Event{Kind: EventAlarm, Patient: j.Patient, StreamTime: at})
				}
			}
		}
	}
}

// session returns the patient's live session, creating (and warm
// starting from the model cache or its backing store) or LRU-touching
// as needed.
func (w *worker) session(patientID string, historyRows int) (*session, error) {
	if sess, ok := w.sessions.Get(patientID); ok {
		return sess, nil
	}
	sess, err := newSession(patientID, historyRows, w.srv.cfg)
	if err != nil {
		return nil, err
	}
	// Full read-through Get: a first session after process restart warm
	// starts from a FileStore checkpoint here, before its first window
	// is ever classified.
	if f := w.srv.cache.Get(patientID); f != nil {
		sess.model.Store(f)
	}
	w.sessions.Put(patientID, sess)
	w.srv.sessions.Add(1)
	w.srv.sessionsCreated.Add(1)
	return sess, nil
}

// confirm snapshots the session's feature history and hands it to the
// background learner pool; the real-time path never blocks on training.
func (w *worker) confirm(sess *session) {
	rows := sess.historySnapshot()
	sess.retrainSeq++
	if !w.srv.learner.schedule(retrainJob{sess: sess, rows: rows, seq: sess.retrainSeq}) {
		w.srv.confirmsDropped.Add(1)
	}
}
