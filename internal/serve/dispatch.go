package serve

// job is one unit of worker input: either a sample batch or a seizure
// confirmation. Both kinds flow through the same queue so a patient's
// confirmation is processed after every batch submitted before it.
// stream points back at the originating handle for per-stream stats
// (nil for internally generated jobs).
type job struct {
	patient string
	stream  *Stream
	c0, c1  []float64
	confirm bool
}

// worker owns a shard of patients: their sessions, the LRU session
// table, and the goroutine that processes their jobs strictly in
// arrival order.
type worker struct {
	srv      *Server
	index    int
	jobs     chan job
	done     chan struct{}
	sessions *lru[*session]
}

func newWorker(s *Server, index, historyRows int) *worker {
	w := &worker{
		srv:   s,
		index: index,
		jobs:  make(chan job, s.cfg.QueueDepth),
		done:  make(chan struct{}),
	}
	w.sessions = newLRU[*session](s.cfg.MaxSessions, func(id string, sess *session) {
		// The session's streaming state dies with it, but the trained
		// model is already in the model cache/store (the learner
		// publishes there), so a returning patient resumes detection warm.
		s.sessions.Add(-1)
		s.sessionsEvicted.Add(1)
		s.hub.emit(Event{Kind: EventEviction, Patient: id})
	})
	go w.run(historyRows)
	return w
}

func (w *worker) run(historyRows int) {
	defer close(w.done)
	for j := range w.jobs {
		sess, err := w.session(j.patient, historyRows)
		if err != nil {
			// The pipeline was pre-flighted in New, so a constructor
			// failure here should be unreachable; count it rather than
			// crash the shard, and surface it via Stats.StreamErrors.
			w.srv.streamErrors.Add(1)
			continue
		}
		if j.confirm {
			w.confirm(sess)
			continue
		}
		rows, err := sess.ingest(j.c0, j.c1)
		if err != nil {
			w.srv.streamErrors.Add(1)
		}
		if len(rows) > 0 {
			// Reconcile with the model cache: the learner publishes
			// there first, and a session recreated after LRU eviction
			// would otherwise miss a retrain that completed in flight.
			// LRU-only lookup — the store must stay off the batch path.
			if f := w.srv.cache.cached(j.patient); f != nil && f != sess.model.Load() {
				sess.model.Store(f)
			}
			fired := sess.classify(rows)
			w.srv.windows.Add(uint64(len(rows)))
			if j.stream != nil {
				j.stream.windows.Add(uint64(len(rows)))
			}
			if fired > 0 {
				w.srv.alarms.Add(uint64(fired))
				if j.stream != nil {
					j.stream.alarms.Add(uint64(fired))
				}
				for i := 0; i < fired; i++ {
					w.srv.hub.emit(Event{Kind: EventAlarm, Patient: j.patient})
				}
			}
		}
	}
}

// session returns the patient's live session, creating (and warm
// starting from the model cache or its backing store) or LRU-touching
// as needed.
func (w *worker) session(patientID string, historyRows int) (*session, error) {
	if sess, ok := w.sessions.Get(patientID); ok {
		return sess, nil
	}
	sess, err := newSession(patientID, historyRows, w.srv.cfg)
	if err != nil {
		return nil, err
	}
	// Full read-through Get: a first session after process restart warm
	// starts from a FileStore checkpoint here, before its first window
	// is ever classified.
	if f := w.srv.cache.Get(patientID); f != nil {
		sess.model.Store(f)
	}
	w.sessions.Put(patientID, sess)
	w.srv.sessions.Add(1)
	w.srv.sessionsCreated.Add(1)
	return sess, nil
}

// confirm snapshots the session's feature history and hands it to the
// background learner pool; the real-time path never blocks on training.
func (w *worker) confirm(sess *session) {
	rows := sess.historySnapshot()
	sess.retrainSeq++
	if !w.srv.learner.schedule(retrainJob{sess: sess, rows: rows, seq: sess.retrainSeq}) {
		w.srv.confirmsDropped.Add(1)
	}
}
