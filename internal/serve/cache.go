package serve

import (
	"container/list"
	"sync"

	"selflearn/internal/ml/forest"
)

// lru is a fixed-capacity least-recently-used table. It is not safe for
// concurrent use; each owner either confines it to one goroutine (the
// per-worker session table) or wraps it in a mutex (the shared model
// cache).
type lru[V any] struct {
	capacity int
	order    *list.List // front = most recent
	items    map[string]*list.Element
	onEvict  func(key string, v V)
}

type lruEntry[V any] struct {
	key string
	val V
}

// newLRU builds a table evicting beyond capacity entries; onEvict (may
// be nil) observes each eviction.
func newLRU[V any](capacity int, onEvict func(string, V)) *lru[V] {
	return &lru[V]{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
		onEvict:  onEvict,
	}
}

// Len returns the number of live entries.
func (c *lru[V]) Len() int { return c.order.Len() }

// Get returns the value for key and marks it most recently used.
func (c *lru[V]) Get(key string) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or refreshes key and evicts the least recently used entry
// when the table overflows.
func (c *lru[V]) Put(key string, v V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry[V]{key: key, val: v})
	for c.capacity > 0 && c.order.Len() > c.capacity {
		c.evictOldest()
	}
}

func (c *lru[V]) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	e := el.Value.(*lruEntry[V])
	c.order.Remove(el)
	delete(c.items, e.key)
	if c.onEvict != nil {
		c.onEvict(e.key, e.val)
	}
}

// modelCache is the shared per-patient model layer: a bounded LRU of
// hot forests in front of the pluggable ModelStore. Trained forests
// outlive their streaming session — and, with a FileStore, the process —
// so a patient whose session was LRU-evicted (or whose server was
// restarted) resumes detection warm instead of re-entering the
// untrained state. The learner writes through: every published model
// lands in both the LRU and the store.
type modelCache struct {
	mu    sync.Mutex
	t     *lru[*forest.FlatForest]
	store ModelStore
	// onErr observes store Load/Save failures (the serving path treats
	// them as misses rather than stalling on persistence).
	onErr func(error)
}

func newModelCache(capacity int, store ModelStore, onErr func(error)) *modelCache {
	return &modelCache{t: newLRU[*forest.FlatForest](capacity, nil), store: store, onErr: onErr}
}

// Get returns the patient's model, reading through to the store on an
// LRU miss, or nil when the patient has never been trained.
func (m *modelCache) Get(patient string) *forest.FlatForest {
	if f := m.cached(patient); f != nil {
		return f
	}
	if m.store == nil {
		return nil
	}
	f, err := m.store.Load(patient)
	if err != nil {
		if m.onErr != nil {
			m.onErr(err)
		}
		return nil
	}
	if f == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Re-check under the lock: if a retrain published while the (slow)
	// store load ran, its forest is newer than the checkpoint we read —
	// keep it rather than clobbering the LRU with the stale load.
	if cur, ok := m.t.Get(patient); ok {
		return cur
	}
	m.t.Put(patient, f)
	return f
}

// cached returns the patient's model from the LRU alone — the per-batch
// reconcile path, which must never touch the (possibly on-disk) store.
// Learner publishes always pass through the LRU, so in-process model
// updates are visible here; only cross-restart warm starts need Get.
func (m *modelCache) cached(patient string) *forest.FlatForest {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, _ := m.t.Get(patient)
	return f
}

// Put publishes the patient's model to the LRU and writes it through to
// the store.
func (m *modelCache) Put(patient string, f *forest.FlatForest) {
	if f == nil {
		return
	}
	m.mu.Lock()
	m.t.Put(patient, f)
	m.mu.Unlock()
	if m.store == nil {
		return
	}
	if err := m.store.Save(patient, f); err != nil && m.onErr != nil {
		m.onErr(err)
	}
}

// Len returns the number of cached models.
func (m *modelCache) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t.Len()
}
