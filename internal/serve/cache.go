package serve

import (
	"container/list"
	"sync"

	"selflearn/internal/ml/forest"
)

// lru is a fixed-capacity least-recently-used table. It is not safe for
// concurrent use; each owner either confines it to one goroutine (the
// per-worker session table) or wraps it in a mutex (the shared model
// cache).
type lru[V any] struct {
	capacity int
	order    *list.List // front = most recent
	items    map[string]*list.Element
	onEvict  func(key string, v V)
}

type lruEntry[V any] struct {
	key string
	val V
}

// newLRU builds a table evicting beyond capacity entries; onEvict (may
// be nil) observes each eviction.
func newLRU[V any](capacity int, onEvict func(string, V)) *lru[V] {
	return &lru[V]{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
		onEvict:  onEvict,
	}
}

// Len returns the number of live entries.
func (c *lru[V]) Len() int { return c.order.Len() }

// Get returns the value for key and marks it most recently used.
func (c *lru[V]) Get(key string) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or refreshes key and evicts the least recently used entry
// when the table overflows.
func (c *lru[V]) Put(key string, v V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry[V]{key: key, val: v})
	for c.capacity > 0 && c.order.Len() > c.capacity {
		c.evictOldest()
	}
}

func (c *lru[V]) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	e := el.Value.(*lruEntry[V])
	c.order.Remove(el)
	delete(c.items, e.key)
	if c.onEvict != nil {
		c.onEvict(e.key, e.val)
	}
}

// modelCache is the shared per-patient model store: trained forests
// outlive their streaming session, so a patient whose session was
// LRU-evicted under load resumes detection instantly on reconnect
// instead of re-entering the untrained state.
type modelCache struct {
	mu sync.Mutex
	t  *lru[*forest.Forest]
}

func newModelCache(capacity int) *modelCache {
	return &modelCache{t: newLRU[*forest.Forest](capacity, nil)}
}

// Get returns the cached model for the patient, or nil.
func (m *modelCache) Get(patient string) *forest.Forest {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, _ := m.t.Get(patient)
	return f
}

// Put stores (or refreshes) the patient's model.
func (m *modelCache) Put(patient string, f *forest.Forest) {
	if f == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t.Put(patient, f)
}

// Len returns the number of cached models.
func (m *modelCache) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t.Len()
}
