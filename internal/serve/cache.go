package serve

import (
	"container/list"
	"sync"

	"selflearn/internal/ml/forest"
)

// lru is a fixed-capacity least-recently-used table. It is not safe for
// concurrent use; each owner either confines it to one goroutine (the
// per-worker session table) or wraps it in a mutex (the shared model
// cache).
type lru[V any] struct {
	capacity int
	order    *list.List // front = most recent
	items    map[string]*list.Element
	onEvict  func(key string, v V)
}

type lruEntry[V any] struct {
	key string
	val V
}

// newLRU builds a table evicting beyond capacity entries; onEvict (may
// be nil) observes each eviction.
func newLRU[V any](capacity int, onEvict func(string, V)) *lru[V] {
	return &lru[V]{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
		onEvict:  onEvict,
	}
}

// Len returns the number of live entries.
func (c *lru[V]) Len() int { return c.order.Len() }

// Get returns the value for key and marks it most recently used.
func (c *lru[V]) Get(key string) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or refreshes key and evicts the least recently used entry
// when the table overflows.
func (c *lru[V]) Put(key string, v V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry[V]{key: key, val: v})
	for c.capacity > 0 && c.order.Len() > c.capacity {
		c.evictOldest()
	}
}

func (c *lru[V]) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	e := el.Value.(*lruEntry[V])
	c.order.Remove(el)
	delete(c.items, e.key)
	if c.onEvict != nil {
		c.onEvict(e.key, e.val)
	}
}

// modelEntry is one cached model: the detector plus its monotonic
// per-patient version.
type modelEntry struct {
	f       *forest.FlatForest
	version uint64
}

// modelCache is the shared per-patient model layer: a bounded LRU of
// hot forests in front of the pluggable ModelStore. Trained forests
// outlive their streaming session — and, with a FileStore, the process —
// so a patient whose session was LRU-evicted (or whose server was
// restarted) resumes detection warm instead of re-entering the
// untrained state. The learner writes through: every published model
// lands in both the LRU and the store.
//
// The cache is also the version authority: Publish allocates the next
// monotonic per-patient version (continuing a persisted sequence after
// restarts and LRU evictions via the store), and Install applies
// externally-produced versions — replicas pushed by peer shards — only
// when strictly newer than everything seen. The versions table never
// evicts; it holds one uint64 per patient ever trained this process,
// which is what makes monotonicity cheap off the store path.
type modelCache struct {
	mu       sync.Mutex
	t        *lru[modelEntry]
	versions map[string]uint64 // highest version seen per patient
	store    VersionedStore
	// saveMu serializes store writes, which lets saveVersion order them
	// by version without holding mu (the per-batch reconcile lock) over
	// disk I/O. Checkpoint saves happen at retrain/replica rate, far too
	// rarely for one mutex to matter.
	saveMu sync.Mutex
	// onErr observes store Load/Save failures (the serving path treats
	// them as misses rather than stalling on persistence).
	onErr func(error)
}

func newModelCache(capacity int, store ModelStore, onErr func(error)) *modelCache {
	return &modelCache{
		t:        newLRU[modelEntry](capacity, nil),
		versions: make(map[string]uint64),
		store:    AsVersioned(store),
		onErr:    onErr,
	}
}

// Get returns the patient's model, reading through to the store on an
// LRU miss, or nil when the patient has never been trained.
func (m *modelCache) Get(patient string) *forest.FlatForest {
	f, _ := m.GetVersioned(patient)
	return f
}

// GetVersioned returns the patient's model and its version, reading
// through to the store on an LRU miss. A pre-versioning checkpoint
// reports version 0.
func (m *modelCache) GetVersioned(patient string) (*forest.FlatForest, uint64) {
	m.mu.Lock()
	if e, ok := m.t.Get(patient); ok {
		m.mu.Unlock()
		return e.f, e.version
	}
	m.mu.Unlock()
	if m.store == nil {
		return nil, 0
	}
	f, v, err := m.store.LoadVersion(patient)
	if err != nil {
		if m.onErr != nil {
			m.onErr(err)
		}
		// The model is lost but a salvaged version still anchors the
		// monotonic sequence (see FileStore.LoadVersion).
		m.noteVersion(patient, v)
		return nil, 0
	}
	if f == nil {
		return nil, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Re-check under the lock: if a retrain published while the (slow)
	// store load ran, its forest is newer than the checkpoint we read —
	// keep it rather than clobbering the LRU with the stale load.
	if cur, ok := m.t.Get(patient); ok {
		return cur.f, cur.version
	}
	if v > m.versions[patient] {
		m.versions[patient] = v
	}
	m.t.Put(patient, modelEntry{f: f, version: v})
	return f, v
}

// cached returns the patient's model from the LRU alone — the per-batch
// reconcile path, which must never touch the (possibly on-disk) store.
// Learner publishes always pass through the LRU, so in-process model
// updates are visible here; only cross-restart warm starts need Get.
func (m *modelCache) cached(patient string) *forest.FlatForest {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, _ := m.t.Get(patient)
	return e.f
}

// noteVersion max-merges an externally-observed version into the
// per-patient table.
func (m *modelCache) noteVersion(patient string, v uint64) {
	if v == 0 {
		return
	}
	m.mu.Lock()
	if v > m.versions[patient] {
		m.versions[patient] = v
	}
	m.mu.Unlock()
}

// currentVersion returns the highest version known for the patient,
// consulting the store only when this process has never seen one —
// how a restarted server continues a persisted version sequence
// instead of regressing to 1. A store whose checkpoint is corrupt
// still contributes its salvaged version to the sequence.
func (m *modelCache) currentVersion(patient string) uint64 {
	m.mu.Lock()
	cur := m.versions[patient]
	m.mu.Unlock()
	if cur > 0 || m.store == nil {
		return cur
	}
	_, v, err := m.store.LoadVersion(patient)
	if err != nil && m.onErr != nil {
		m.onErr(err)
	}
	m.noteVersion(patient, v)
	return v
}

// Publish installs a freshly-trained model under the next monotonic
// version, writes it through to the store, and returns the allocated
// version — the learner's checkpoint-save step.
func (m *modelCache) Publish(patient string, f *forest.FlatForest) uint64 {
	if f == nil {
		return 0
	}
	cur := m.currentVersion(patient)
	m.mu.Lock()
	if v := m.versions[patient]; v > cur {
		cur = v // a concurrent publish or install advanced it meanwhile
	}
	version := cur + 1
	m.versions[patient] = version
	m.t.Put(patient, modelEntry{f: f, version: version})
	m.mu.Unlock()
	m.saveVersion(patient, f, version)
	return version
}

// Install applies an externally-produced model version — a replica
// pushed by a peer shard, or a checkpoint transferred by a router
// during failover. Only a version strictly newer than everything seen
// (in cache, table, or store) installs; anything else is a stale
// duplicate and reports false.
func (m *modelCache) Install(patient string, f *forest.FlatForest, version uint64) bool {
	if f == nil || version == 0 {
		return false
	}
	cur := m.currentVersion(patient)
	m.mu.Lock()
	if v := m.versions[patient]; v > cur {
		cur = v
	}
	if version <= cur {
		m.mu.Unlock()
		return false
	}
	m.versions[patient] = version
	m.t.Put(patient, modelEntry{f: f, version: version})
	m.mu.Unlock()
	m.saveVersion(patient, f, version)
	return true
}

// saveVersion writes one versioned checkpoint through to the store.
// Writes are serialized and version-ordered: a save that lost the race
// to a newer one (a replication Install racing a local Publish, say)
// is skipped rather than letting last-write-wins persist the older
// checkpoint over the newer.
func (m *modelCache) saveVersion(patient string, f *forest.FlatForest, version uint64) {
	if m.store == nil {
		return
	}
	m.saveMu.Lock()
	m.mu.Lock()
	latest := m.versions[patient]
	m.mu.Unlock()
	if version < latest {
		m.saveMu.Unlock()
		return // a newer checkpoint has been (or is being) saved
	}
	err := m.store.SaveVersion(patient, f, version) //selflearn:locked-ok saveMu IS the store-write serialization point
	m.saveMu.Unlock()
	// The error hook runs outside saveMu: it is arbitrary user code (the
	// server routes it into the event hub) and must be free to re-enter
	// the cache or block without wedging every later checkpoint write.
	if err != nil && m.onErr != nil {
		m.onErr(err)
	}
}

// Len returns the number of cached models.
func (m *modelCache) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t.Len()
}
