package serve

import "selflearn/internal/signal"

// Prefilter inspects a raw sample batch before it enters the feature
// pipeline — the quality-aware admission stage of the serving path. A
// batch the prefilter refuses is discarded on the shard worker before
// any feature extraction or classification happens, counted in
// Stats.QualityRejected (and the owning stream's
// StreamStats.QualityRejected) and surfaced as an EventQualityReject.
// Rejected samples never reach the feature streamer: the session's
// window stream simply skips the garbage second, exactly as if the
// wearable had never recorded it.
type Prefilter interface {
	// Admit reports whether the batch is usable signal. It runs on the
	// shard worker goroutine for every accepted batch, so it must be
	// fast and must not block or allocate.
	Admit(c0, c1 []float64, fs float64) bool
}

// QualityPrefilter returns a Prefilter backed by internal/signal's
// channel quality assessment: a batch is admitted only when BOTH
// electrode channels pass cfg's flatline and clipping thresholds. An
// electrode dropout (flatlined lead) or a saturating motion artifact on
// either channel rejects the whole batch — the paper's 10-feature set
// mixes both channels, so one garbage electrode poisons every feature.
func QualityPrefilter(cfg signal.QualityConfig) (Prefilter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return qualityPrefilter{cfg: cfg}, nil
}

type qualityPrefilter struct{ cfg signal.QualityConfig }

func (p qualityPrefilter) Admit(c0, c1 []float64, fs float64) bool {
	return p.channelOK(c0, fs) && p.channelOK(c1, fs)
}

func (p qualityPrefilter) channelOK(xs []float64, fs float64) bool {
	r, err := signal.AssessChannel(xs, fs, p.cfg)
	if err != nil {
		// An unassessable batch (empty, bad rate) is not evidence of
		// garbage; fail open so a prefilter bug never silences a patient.
		return true
	}
	return r.OK
}
