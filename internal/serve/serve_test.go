package serve

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"testing"
	"time"

	"selflearn/internal/features"
	"selflearn/internal/signal"
	"selflearn/internal/synth"
)

// testRate keeps feature extraction cheap in tests: 4 s windows at
// 128 Hz are 512 samples, still divisible by 2^7 for the level-7 DWT.
const testRate = 128

// testRecording renders a two-channel synthetic recording; seizureStart
// < 0 yields a seizure-free background.
func testRecording(t testing.TB, seed int64, duration, seizureStart, seizureDur float64) *signal.Recording {
	t.Helper()
	cfg := synth.RecordConfig{
		PatientID:  fmt.Sprintf("synthetic-%d", seed),
		RecordID:   "r1",
		Seed:       seed,
		Duration:   duration,
		SampleRate: testRate,
		Background: synth.DefaultBackground(),
	}
	if seizureStart >= 0 {
		cfg.Seizures = []synth.SeizureEvent{{Start: seizureStart, Duration: seizureDur, Config: synth.DefaultSeizure()}}
	}
	rec, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// stream pushes rec through the handle in one-second batches, retrying
// on backpressure.
func stream(t testing.TB, h *Stream, rec *signal.Recording) {
	t.Helper()
	c0, c1 := rec.Data[0], rec.Data[1]
	batch := int(rec.SampleRate)
	for off := 0; off < len(c0); off += batch {
		end := off + batch
		if end > len(c0) {
			end = len(c0)
		}
		for {
			err := h.Push(c0[off:end], c1[off:end])
			if err == nil {
				break
			}
			if err != ErrBackpressure {
				t.Fatalf("Push: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// open returns a handle, failing the test on error.
func open(t testing.TB, srv *Server, patient string, opts ...StreamOption) *Stream {
	t.Helper()
	h, err := srv.Open(patient, opts...)
	if err != nil {
		t.Fatalf("Open(%q): %v", patient, err)
	}
	return h
}

// awaitRetrains polls until the learner pool has finished n retrains
// (success or failure) or the deadline passes.
func awaitRetrains(t testing.TB, srv *Server, n uint64) Stats {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := srv.Snapshot()
		if st.Retrains+st.RetrainErrors >= n {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("retrain never completed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSessionLifecycleAndSelfLearning(t *testing.T) {
	srv, err := New(Config{
		Workers:            2,
		SampleRate:         testRate,
		History:            4 * time.Minute,
		AvgSeizureDuration: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const patient = "chb01"
	h := open(t, srv, patient)
	// Phase 1: stream a buffer containing one seizure, then confirm it.
	rec := testRecording(t, 1, 180, 90, 24)
	stream(t, h, rec)
	if err := h.Confirm(); err != nil {
		t.Fatalf("Confirm: %v", err)
	}
	if st := awaitRetrains(t, srv, 1); st.Retrains != 1 {
		t.Fatalf("retrain failed: %+v", st)
	}
	if srv.Model(patient) == nil {
		t.Fatal("no model cached after retrain")
	}

	// Phase 2: the retrained detector must alarm on a fresh seizure.
	rec2 := testRecording(t, 2, 180, 100, 24)
	stream(t, h, rec2)
	srv.Close()

	st := srv.Snapshot()
	if st.Sessions != 1 || st.SessionsCreated != 1 {
		t.Fatalf("sessions = %d created %d, want 1/1", st.Sessions, st.SessionsCreated)
	}
	// First stream: 180−4+1 rows while the window fills; second stream
	// continues the same session, whose ring is already full, so every
	// hop emits: 180 more rows.
	wantWindows := uint64((180 - 4 + 1) + 180)
	if st.Windows != wantWindows {
		t.Fatalf("windows = %d, want %d", st.Windows, wantWindows)
	}
	if st.Alarms == 0 {
		t.Fatal("retrained detector raised no alarm on a fresh seizure")
	}

	// The handle's view must agree with the server's: this stream
	// carried all the traffic.
	hs := h.Stats()
	if hs.Batches != st.Batches || hs.Windows != st.Windows || hs.Alarms != st.Alarms || hs.Confirms != 1 {
		t.Fatalf("stream stats %+v disagree with server stats %+v", hs, st)
	}

	// Pushes after server Close must fail fast.
	if err := h.Push([]float64{0}, []float64{0}); err != ErrClosed {
		t.Fatalf("Push after server Close = %v, want ErrClosed", err)
	}
	if err := h.Confirm(); err != ErrClosed {
		t.Fatalf("Confirm after server Close = %v, want ErrClosed", err)
	}
	if _, err := srv.Open(patient); err != ErrClosed {
		t.Fatalf("Open after Close = %v, want ErrClosed", err)
	}
}

func TestConcurrentPushManyPatients(t *testing.T) {
	srv, err := New(Config{
		Workers:    4,
		QueueDepth: 64,
		SampleRate: testRate,
		History:    2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const patients = 32
	const seconds = 30
	rec := testRecording(t, 7, seconds, -1, 0)
	var wg sync.WaitGroup
	for p := 0; p < patients; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Workers only read the sample slices, so all patients can
			// share one recording.
			h := open(t, srv, fmt.Sprintf("patient-%03d", p))
			defer h.Close()
			stream(t, h, rec)
		}(p)
	}
	wg.Wait()
	srv.Close()

	st := srv.Snapshot()
	if st.Sessions != patients {
		t.Fatalf("sessions = %d, want %d", st.Sessions, patients)
	}
	if st.StreamsOpen != 0 {
		t.Fatalf("streams open after all closed = %d, want 0", st.StreamsOpen)
	}
	wantWindows := uint64(patients * (seconds - 4 + 1))
	if st.Windows != wantWindows {
		t.Fatalf("windows = %d, want %d", st.Windows, wantWindows)
	}
	if st.Alarms != 0 {
		t.Fatalf("alarms = %d on untrained sessions, want 0", st.Alarms)
	}
}

func TestSessionLRUEviction(t *testing.T) {
	srv, err := New(Config{
		Workers:     1, // single shard so the per-worker cap is exact
		MaxSessions: 2,
		SampleRate:  testRate,
		History:     time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec := testRecording(t, 9, 10, -1, 0)
	handles := map[string]*Stream{}
	for _, p := range []string{"a", "b", "c", "a", "d"} {
		h, ok := handles[p]
		if !ok {
			h = open(t, srv, p)
			handles[p] = h
		}
		stream(t, h, rec)
	}
	srv.Close()

	st := srv.Snapshot()
	if st.Sessions != 2 {
		t.Fatalf("live sessions = %d, want cap 2", st.Sessions)
	}
	// a, b, c created; c evicts a; a recreated evicting b; d evicts c.
	if st.SessionsCreated != 5 || st.SessionsEvicted != 3 {
		t.Fatalf("created/evicted = %d/%d, want 5/3", st.SessionsCreated, st.SessionsEvicted)
	}
}

func TestNewRejectsBadPipelineConfig(t *testing.T) {
	// 4 s windows at 16 Hz cannot feed a level-7 DWT; the failure only
	// surfaces at a window boundary, so New must pre-flight it.
	if _, err := New(Config{SampleRate: 16}); err == nil {
		t.Fatal("New accepted a sample rate too low for the level-7 DWT")
	}
	// A partially-built feature config must fail loudly, not be
	// silently replaced with the defaults.
	if _, err := New(Config{SampleRate: testRate, FeatureCfg: features.Config{Window: signal.DefaultWindow()}}); err == nil {
		t.Fatal("New accepted a feature config with a window but Level 0")
	}
}

func TestOpenAndPushValidation(t *testing.T) {
	srv, err := New(Config{Workers: 1, SampleRate: testRate})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Open(""); err == nil {
		t.Fatal("Open accepted an empty patient ID")
	}
	h := open(t, srv, "p")
	if err := h.Push([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched channel lengths accepted")
	}
	if err := h.Push(nil, nil); err != nil {
		t.Fatalf("empty batch = %v, want nil", err)
	}

	// A closed handle fails without touching the server; the patient can
	// reconnect with a fresh handle.
	h.Close()
	h.Close() // idempotent
	if err := h.Push([]float64{0}, []float64{0}); err != ErrStreamClosed {
		t.Fatalf("Push on closed stream = %v, want ErrStreamClosed", err)
	}
	if err := h.Confirm(); err != ErrStreamClosed {
		t.Fatalf("Confirm on closed stream = %v, want ErrStreamClosed", err)
	}
	if st := srv.Snapshot(); st.StreamsOpen != 0 {
		t.Fatalf("StreamsOpen = %d after double Close, want 0", st.StreamsOpen)
	}
	h2 := open(t, srv, "p")
	if err := h2.Push([]float64{0}, []float64{0}); err != nil {
		t.Fatalf("Push on reopened stream = %v", err)
	}
}

// TestShardHashMatchesFNV pins the inlined shard hash to the stdlib
// FNV-1a it replaced, so patients keep their shard across the change.
func TestShardHashMatchesFNV(t *testing.T) {
	for _, id := range []string{"", "p", "chb01", "patient-0042", "ward-3/bed 12"} {
		h := fnv.New32a()
		h.Write([]byte(id))
		if got, want := shardHash(id), h.Sum32(); got != want {
			t.Fatalf("shardHash(%q) = %#x, want %#x", id, got, want)
		}
	}
}

// TestWindowsPerSecSameTick pins the degenerate sampling interval: two
// Snapshots within the same clock tick produce dt == 0, where a naive
// delta/dt would return Inf (or NaN before any windows). The sampler
// must skip the resample and return the last completed interval's
// finite rate — 0 when no interval has completed yet.
func TestWindowsPerSecSameTick(t *testing.T) {
	srv, err := New(Config{Workers: 1, SampleRate: testRate, History: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Same tick as construction, before any interval completed: 0, not NaN.
	if r := srv.sampleWindowRate(srv.start); r != 0 {
		t.Fatalf("same-tick rate before any interval = %g, want 0", r)
	}
	h := open(t, srv, "p")
	stream(t, h, testRecording(t, 4, 10, -1, 0))
	now := time.Now()
	r1 := srv.sampleWindowRate(now)
	r2 := srv.sampleWindowRate(now) // dt == 0: same clock tick
	for _, r := range []float64{r1, r2} {
		if math.IsInf(r, 0) || math.IsNaN(r) || r < 0 {
			t.Fatalf("rate = %g, want finite and non-negative", r)
		}
	}
	if r2 != r1 {
		t.Fatalf("same-tick resample changed the rate: %g then %g", r1, r2)
	}
}

// TestWindowsPerSecIsIntervalRate verifies the rate covers the window
// since the previous Snapshot, not the process lifetime: after a burst
// is processed, an idle interval must read ~0 even though the lifetime
// average is large.
func TestWindowsPerSecIsIntervalRate(t *testing.T) {
	srv, err := New(Config{Workers: 1, SampleRate: testRate, History: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := open(t, srv, "p")
	stream(t, h, testRecording(t, 3, 30, -1, 0))

	// Once an interval passes with no new windows, its rate must read
	// exactly 0 — a lifetime average could never return there.
	for tries := 0; ; tries++ {
		before := srv.Snapshot()
		time.Sleep(50 * time.Millisecond)
		after := srv.Snapshot()
		if after.Windows == before.Windows {
			if after.Windows == 0 {
				t.Fatalf("no windows processed: %+v", after)
			}
			if after.WindowsPerSec != 0 {
				t.Fatalf("idle-interval WindowsPerSec = %g, want 0", after.WindowsPerSec)
			}
			return
		}
		if tries > 200 {
			t.Fatalf("worker never went idle: %+v", after)
		}
	}
}
