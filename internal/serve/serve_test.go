package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"selflearn/internal/features"
	"selflearn/internal/signal"
	"selflearn/internal/synth"
)

// testRate keeps feature extraction cheap in tests: 4 s windows at
// 128 Hz are 512 samples, still divisible by 2^7 for the level-7 DWT.
const testRate = 128

// testRecording renders a two-channel synthetic recording; seizureStart
// < 0 yields a seizure-free background.
func testRecording(t testing.TB, seed int64, duration, seizureStart, seizureDur float64) *signal.Recording {
	t.Helper()
	cfg := synth.RecordConfig{
		PatientID:  fmt.Sprintf("synthetic-%d", seed),
		RecordID:   "r1",
		Seed:       seed,
		Duration:   duration,
		SampleRate: testRate,
		Background: synth.DefaultBackground(),
	}
	if seizureStart >= 0 {
		cfg.Seizures = []synth.SeizureEvent{{Start: seizureStart, Duration: seizureDur, Config: synth.DefaultSeizure()}}
	}
	rec, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// stream submits rec for patientID in one-second batches, retrying on
// backpressure.
func stream(t testing.TB, s *Server, patientID string, rec *signal.Recording) {
	t.Helper()
	c0, c1 := rec.Data[0], rec.Data[1]
	batch := int(rec.SampleRate)
	for off := 0; off < len(c0); off += batch {
		end := off + batch
		if end > len(c0) {
			end = len(c0)
		}
		for {
			err := s.Submit(patientID, c0[off:end], c1[off:end])
			if err == nil {
				break
			}
			if err != ErrBackpressure {
				t.Fatalf("Submit: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestSessionLifecycleAndSelfLearning(t *testing.T) {
	srv, err := New(Config{
		Workers:            2,
		SampleRate:         testRate,
		History:            4 * time.Minute,
		AvgSeizureDuration: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const patient = "chb01"
	// Phase 1: stream a buffer containing one seizure, then confirm it.
	rec := testRecording(t, 1, 180, 90, 24)
	stream(t, srv, patient, rec)
	if err := srv.Confirm(patient); err != nil {
		t.Fatalf("Confirm: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := srv.Snapshot()
		if st.Retrains+st.RetrainErrors >= 1 {
			if st.Retrains != 1 {
				t.Fatalf("retrain failed: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retrain never completed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Model(patient) == nil {
		t.Fatal("no model cached after retrain")
	}

	// Phase 2: the retrained detector must alarm on a fresh seizure.
	rec2 := testRecording(t, 2, 180, 100, 24)
	stream(t, srv, patient, rec2)
	srv.Close()

	st := srv.Snapshot()
	if st.Sessions != 1 || st.SessionsCreated != 1 {
		t.Fatalf("sessions = %d created %d, want 1/1", st.Sessions, st.SessionsCreated)
	}
	// First stream: 180−4+1 rows while the window fills; second stream
	// continues the same session, whose ring is already full, so every
	// hop emits: 180 more rows.
	wantWindows := uint64((180 - 4 + 1) + 180)
	if st.Windows != wantWindows {
		t.Fatalf("windows = %d, want %d", st.Windows, wantWindows)
	}
	if st.Alarms == 0 {
		t.Fatal("retrained detector raised no alarm on a fresh seizure")
	}
	if st.WindowsPerSec <= 0 {
		t.Fatalf("WindowsPerSec = %g, want > 0", st.WindowsPerSec)
	}

	// Submissions after Close must fail fast.
	if err := srv.Submit(patient, []float64{0}, []float64{0}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := srv.Confirm(patient); err != ErrClosed {
		t.Fatalf("Confirm after Close = %v, want ErrClosed", err)
	}
}

func TestConcurrentSubmitManyPatients(t *testing.T) {
	srv, err := New(Config{
		Workers:    4,
		QueueDepth: 64,
		SampleRate: testRate,
		History:    2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const patients = 32
	const seconds = 30
	rec := testRecording(t, 7, seconds, -1, 0)
	var wg sync.WaitGroup
	for p := 0; p < patients; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Workers only read the sample slices, so all patients can
			// share one recording.
			stream(t, srv, fmt.Sprintf("patient-%03d", p), rec)
		}(p)
	}
	wg.Wait()
	srv.Close()

	st := srv.Snapshot()
	if st.Sessions != patients {
		t.Fatalf("sessions = %d, want %d", st.Sessions, patients)
	}
	wantWindows := uint64(patients * (seconds - 4 + 1))
	if st.Windows != wantWindows {
		t.Fatalf("windows = %d, want %d", st.Windows, wantWindows)
	}
	if st.Alarms != 0 {
		t.Fatalf("alarms = %d on untrained sessions, want 0", st.Alarms)
	}
}

func TestSessionLRUEviction(t *testing.T) {
	srv, err := New(Config{
		Workers:     1, // single shard so the per-worker cap is exact
		MaxSessions: 2,
		SampleRate:  testRate,
		History:     time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec := testRecording(t, 9, 10, -1, 0)
	for _, p := range []string{"a", "b", "c", "a", "d"} {
		stream(t, srv, p, rec)
	}
	srv.Close()

	st := srv.Snapshot()
	if st.Sessions != 2 {
		t.Fatalf("live sessions = %d, want cap 2", st.Sessions)
	}
	// a, b, c created; c evicts a; a recreated evicting b; d evicts c.
	if st.SessionsCreated != 5 || st.SessionsEvicted != 3 {
		t.Fatalf("created/evicted = %d/%d, want 5/3", st.SessionsCreated, st.SessionsEvicted)
	}
}

func TestBackpressure(t *testing.T) {
	srv, err := New(Config{
		Workers:    1,
		QueueDepth: 1,
		SampleRate: testRate,
		History:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A two-minute batch keeps the single worker busy long enough for a
	// tight submit loop to fill the depth-1 queue.
	rec := testRecording(t, 11, 120, -1, 0)
	if err := srv.Submit("p", rec.Data[0], rec.Data[1]); err != nil {
		t.Fatal(err)
	}
	sawBackpressure := false
	small0, small1 := make([]float64, testRate), make([]float64, testRate)
	for i := 0; i < 100000; i++ {
		if err := srv.Submit("p", small0, small1); err == ErrBackpressure {
			sawBackpressure = true
			break
		}
	}
	if !sawBackpressure {
		t.Fatal("never saw ErrBackpressure with a full depth-1 queue")
	}
	if st := srv.Snapshot(); st.BatchesDropped == 0 {
		t.Fatalf("BatchesDropped = 0 after backpressure: %+v", st)
	}
}

func TestNewRejectsBadPipelineConfig(t *testing.T) {
	// 4 s windows at 16 Hz cannot feed a level-7 DWT; the failure only
	// surfaces at a window boundary, so New must pre-flight it.
	if _, err := New(Config{SampleRate: 16}); err == nil {
		t.Fatal("New accepted a sample rate too low for the level-7 DWT")
	}
	// A partially-built feature config must fail loudly, not be
	// silently replaced with the defaults.
	if _, err := New(Config{SampleRate: testRate, FeatureCfg: features.Config{Window: signal.DefaultWindow()}}); err == nil {
		t.Fatal("New accepted a feature config with a window but Level 0")
	}
}

func TestSubmitValidation(t *testing.T) {
	srv, err := New(Config{Workers: 1, SampleRate: testRate})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit("p", []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched channel lengths accepted")
	}
	if err := srv.Submit("p", nil, nil); err != nil {
		t.Fatalf("empty batch = %v, want nil", err)
	}
}
