// Package servetest holds the transport-level behavioral suite for the
// serving layer's admission policies. The suite exercises a
// serve.Shard — the seam a session handle enqueues through — so every
// transport implementation (the in-process worker queue and the
// cluster client's per-shard TCP senders) proves the same drop, block
// and shed semantics against one set of assertions.
package servetest

import (
	"sync/atomic"
	"testing"
	"time"

	"selflearn/internal/serve"
)

// Harness is one transport's shard under test. The suite needs
// exclusive control of the drain side, so implementations hand over a
// shard whose queue nothing else consumes, plus a Drain that pops one
// queued job the way the transport's consumer would.
type Harness struct {
	Shard serve.Shard
	Drain func() (serve.Job, bool)
}

// Observer counts per-stream attribution, standing in for a session
// handle on jobs the suite enqueues.
type Observer struct {
	Sheds    atomic.Uint64
	Windows  atomic.Uint64
	Alarms   atomic.Uint64
	Rejected atomic.Uint64
}

// NoteShed implements serve.StreamObserver.
func (o *Observer) NoteShed() { o.Sheds.Add(1) }

// NoteRejected implements serve.StreamObserver.
func (o *Observer) NoteRejected() { o.Rejected.Add(1) }

// NoteWindows implements serve.StreamObserver.
func (o *Observer) NoteWindows(n int) { o.Windows.Add(uint64(n)) }

// NoteAlarms implements serve.StreamObserver.
func (o *Observer) NoteAlarms(n int) { o.Alarms.Add(uint64(n)) }

// RunAdmissionSuite runs the shared admission-policy suite. mk must
// return a fresh idle harness whose shard queue holds at most depth
// jobs and has no concurrent consumer. The suite doubles as a leak
// gate: every goroutine a harness spawns (workers, manage loops,
// drain helpers) must be gone once its cleanup has run.
func RunAdmissionSuite(t *testing.T, mk func(t *testing.T, depth int) Harness) {
	CheckGoroutines(t)
	batch := func(patient string, obs *Observer) serve.Job {
		return serve.Job{Patient: patient, C0: []float64{0}, C1: []float64{0}, Stream: obs}
	}
	confirm := func(patient string) serve.Job {
		return serve.Job{Patient: patient, Confirm: true}
	}

	t.Run("DropOnFullRejectsWhenFull", func(t *testing.T) {
		h := mk(t, 2)
		p := serve.DropOnFull()
		for i := 0; i < 2; i++ {
			if err := h.Shard.Enqueue(p, batch("p", nil)); err != nil {
				t.Fatalf("enqueue %d on empty shard = %v", i, err)
			}
		}
		if err := h.Shard.Enqueue(p, batch("p", nil)); err != serve.ErrBackpressure {
			t.Fatalf("enqueue on full shard = %v, want ErrBackpressure", err)
		}
		if !h.Shard.Congested(p) {
			t.Fatal("Congested(DropOnFull) = false on a full queue")
		}
		if _, ok := h.Drain(); !ok {
			t.Fatal("drain on a full queue returned nothing")
		}
		if err := h.Shard.Enqueue(p, batch("p", nil)); err != nil {
			t.Fatalf("enqueue after drain = %v, want nil", err)
		}
	})

	t.Run("CongestedOnlyUnderDrop", func(t *testing.T) {
		// Block and shed policies handle a full queue themselves; their
		// fast path must never short-circuit a push.
		h := mk(t, 1)
		if err := h.Shard.Enqueue(serve.DropOnFull(), batch("p", nil)); err != nil {
			t.Fatal(err)
		}
		if h.Shard.Congested(serve.BlockWithDeadline(time.Second)) {
			t.Fatal("Congested(BlockWithDeadline) = true; blocking policies must reach admit")
		}
		if h.Shard.Congested(serve.ShedOldest()) {
			t.Fatal("Congested(ShedOldest) = true; shedding policies must reach admit")
		}
	})

	t.Run("BlockWithDeadlineExpires", func(t *testing.T) {
		// An idle shard (no consumer) keeps the queue full forever, so
		// the wait must expire — deterministically, unlike racing a real
		// worker.
		const deadline = 60 * time.Millisecond
		h := mk(t, 1)
		p := serve.BlockWithDeadline(deadline)
		if err := h.Shard.Enqueue(p, batch("p", nil)); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		err := h.Shard.Enqueue(p, batch("p", nil))
		elapsed := time.Since(start)
		if err != serve.ErrBackpressure {
			t.Fatalf("enqueue on a stuck full queue = %v, want ErrBackpressure", err)
		}
		if elapsed < deadline {
			t.Fatalf("gave up after %v, before the %v deadline", elapsed, deadline)
		}
	})

	t.Run("BlockAdmitsWhenSpaceFrees", func(t *testing.T) {
		h := mk(t, 1)
		p := serve.BlockWithDeadline(30 * time.Second)
		if err := h.Shard.Enqueue(p, batch("p", nil)); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- h.Shard.Enqueue(p, batch("p", nil)) }()
		time.Sleep(10 * time.Millisecond)
		if _, ok := h.Drain(); !ok {
			t.Fatal("drain returned nothing")
		}
		if err := <-done; err != nil {
			t.Fatalf("enqueue after space freed = %v, want nil", err)
		}
	})

	t.Run("ShedOldestDiscardsOldest", func(t *testing.T) {
		h := mk(t, 2)
		p := serve.ShedOldest()
		victim, survivor := &Observer{}, &Observer{}
		if err := h.Shard.Enqueue(p, batch("old-0", victim)); err != nil {
			t.Fatal(err)
		}
		if err := h.Shard.Enqueue(p, batch("old-1", survivor)); err != nil {
			t.Fatal(err)
		}
		// Full queue: the fresh batch must displace the oldest one.
		if err := h.Shard.Enqueue(p, batch("fresh", nil)); err != nil {
			t.Fatalf("enqueue on full queue = %v, want nil", err)
		}
		if got := victim.Sheds.Load(); got != 1 {
			t.Fatalf("oldest stream sheds = %d, want 1", got)
		}
		if got := survivor.Sheds.Load(); got != 0 {
			t.Fatalf("surviving stream sheds = %d, want 0", got)
		}
		var order []string
		for {
			j, ok := h.Drain()
			if !ok {
				break
			}
			order = append(order, j.Patient)
		}
		if len(order) != 2 || order[0] != "old-1" || order[1] != "fresh" {
			t.Fatalf("queue order = %v, want [old-1 fresh]", order)
		}
	})

	t.Run("ShedOldestPreservesConfirms", func(t *testing.T) {
		h := mk(t, 3)
		p := serve.ShedOldest()
		obs := &Observer{}
		if err := h.Shard.Enqueue(p, confirm("p")); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := h.Shard.Enqueue(p, batch("p", obs)); err != nil {
				t.Fatal(err)
			}
		}
		// Queue is [confirm batch batch]. Shedding for a new batch must
		// pop the confirmation, re-enqueue it, and discard a batch
		// instead.
		if err := h.Shard.Enqueue(p, batch("p", obs)); err != nil {
			t.Fatalf("enqueue = %v, want nil", err)
		}
		if got := obs.Sheds.Load(); got != 1 {
			t.Fatalf("sheds = %d, want 1", got)
		}
		confirms, batches := 0, 0
		for {
			j, ok := h.Drain()
			if !ok {
				break
			}
			if j.Confirm {
				confirms++
			} else {
				batches++
			}
		}
		if confirms != 1 || batches != 2 {
			t.Fatalf("queue drained to %d confirms / %d batches, want 1/2", confirms, batches)
		}
	})

	t.Run("ShedOldestRefusesRatherThanShedLoneConfirm", func(t *testing.T) {
		h := mk(t, 1)
		p := serve.ShedOldest()
		if err := h.Shard.Enqueue(p, confirm("p")); err != nil {
			t.Fatal(err)
		}
		// The only slot holds a confirmation; a batch cannot displace it.
		if err := h.Shard.Enqueue(p, batch("p", nil)); err != serve.ErrBackpressure {
			t.Fatalf("enqueue over a lone confirm = %v, want ErrBackpressure", err)
		}
		j, ok := h.Drain()
		if !ok || !j.Confirm {
			t.Fatal("confirmation no longer in the queue")
		}
	})
}
