package servetest

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// goroutineAllowlist marks background goroutines that legitimately
// outlive a test: runtime and testing internals, and long-lived
// machinery the process shares across tests. A stack containing any of
// these substrings is never reported as a leak.
var goroutineAllowlist = []string{
	"created by runtime.",
	"created by testing.",
	"runtime.ReadTrace",
	"os/signal.loop",
	"runtime/pprof.",
}

// CheckGoroutines guards a test against goroutine leaks: it snapshots
// the live goroutine set now and registers a cleanup that fails the
// test if goroutines born during the test are still alive after every
// later-registered cleanup has run. Orderly teardown is asynchronous
// (closed servers join their workers, routers their manage loops), so
// the check polls for up to settle time before declaring a leak, and
// allow-listed stacks (runtime, testing, plus any extra substrings
// given) are ignored.
//
// Call it FIRST in the test, before constructing the system under
// test: t.Cleanup runs last-registered-first, so the guard observes
// the world after the harness has torn everything down.
func CheckGoroutines(t testing.TB, allow ...string) {
	t.Helper()
	before := goroutineIDs()
	t.Cleanup(func() {
		const settle = 5 * time.Second
		deadline := time.Now().Add(settle)
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, stack := range goroutineStacks() {
				if before[id] || allowed(stack, allow) {
					continue
				}
				leaked = append(leaked, stack)
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d goroutines born during the test still alive %v after teardown:\n%s",
			len(leaked), settle, strings.Join(leaked, "\n"))
	})
}

func allowed(stack string, extra []string) bool {
	for _, s := range goroutineAllowlist {
		if strings.Contains(stack, s) {
			return true
		}
	}
	for _, s := range extra {
		if s != "" && strings.Contains(stack, s) {
			return true
		}
	}
	return false
}

// goroutineStacks parses runtime.Stack(all=true) into id → stack text.
// The two-line header of each record ("goroutine N [state]:") carries
// the ID; records are separated by blank lines.
func goroutineStacks() map[int64]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	stacks := make(map[int64]string)
	for _, rec := range strings.Split(string(buf), "\n\n") {
		var id int64
		if _, err := fmt.Sscanf(rec, "goroutine %d ", &id); err != nil {
			continue
		}
		stacks[id] = rec
	}
	return stacks
}

func goroutineIDs() map[int64]bool {
	ids := make(map[int64]bool)
	for id := range goroutineStacks() {
		ids[id] = true
	}
	return ids
}
