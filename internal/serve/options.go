package serve

// Option configures a Server beyond the capacity knobs in Config:
// pluggable policy objects live here so Config stays a plain,
// serializable sizing struct.
type Option func(*serverOptions)

type serverOptions struct {
	store       ModelStore
	admission   AdmissionPolicy
	prefilter   Prefilter
	eventBuffer int
	sink        func(Event)
}

func defaultServerOptions() serverOptions {
	return serverOptions{
		admission:   DropOnFull(),
		eventBuffer: 256,
	}
}

// WithModelStore installs the persistence layer behind the model cache.
// Without one, trained models live only in the bounded LRU
// (Config.ModelCacheSize caps model memory; eviction loses the model).
// NewMemoryStore keeps every trained patient's model for the life of
// the process — note that is unbounded across patient churn — and
// NewFileStore survives restarts.
func WithModelStore(st ModelStore) Option {
	return func(o *serverOptions) {
		if st != nil {
			o.store = st
		}
	}
}

// WithAdmission sets the server-wide admission policy applied when a
// shard queue is full. Default: DropOnFull(). Streams may override it
// per handle with WithStreamAdmission.
func WithAdmission(p AdmissionPolicy) Option {
	return func(o *serverOptions) {
		if p != nil {
			o.admission = p
		}
	}
}

// WithPrefilter installs a quality-aware admission stage: every batch
// is inspected on its shard worker before feature extraction, and a
// refused batch is dropped without burning classifier time — counted in
// Stats.QualityRejected and announced as an EventQualityReject. Without
// one, every accepted batch is processed (the previous behavior).
// QualityPrefilter builds the standard signal-quality implementation.
func WithPrefilter(p Prefilter) Option {
	return func(o *serverOptions) { o.prefilter = p }
}

// WithEventBuffer sizes the Events subscriber channel (default 256). A
// subscriber that lags this far behind loses events, counted in
// Stats.EventsDropped.
func WithEventBuffer(n int) Option {
	return func(o *serverOptions) {
		if n > 0 {
			o.eventBuffer = n
		}
	}
}

// WithEventSink registers a synchronous callback invoked for every
// event, in emission order per shard. It runs on serving goroutines:
// it must be fast and must never block, or it stalls the hot path.
// Unlike the Events channel, a sink never drops events.
func WithEventSink(fn func(Event)) Option {
	return func(o *serverOptions) { o.sink = fn }
}

// StreamOption configures one Open handle.
type StreamOption func(*streamOptions)

type streamOptions struct {
	admission AdmissionPolicy
}

// WithStreamAdmission overrides the server's admission policy for this
// stream alone — e.g. a bedside monitor opens with BlockWithDeadline
// while bulk replay streams keep DropOnFull. The policy governs how
// THIS stream's pushes contend for the shared shard queue; a
// per-stream ShedOldest still sheds other streams' queued batches (see
// ShedOldest).
func WithStreamAdmission(p AdmissionPolicy) StreamOption {
	return func(o *streamOptions) {
		if p != nil {
			o.admission = p
		}
	}
}
