package serve

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrStreamClosed is returned by Push and Confirm on a closed Stream.
var ErrStreamClosed = errors.New("serve: stream closed")

// Stream is a per-patient session handle returned by Server.Open. The
// patient's shard is resolved once at Open — through the server's
// ShardTransport, so the handle never touches a worker directly — and
// the per-batch path is hash-free; the handle also carries per-stream
// counters and the stream's admission policy. A Stream's methods are
// safe for concurrent use, but batches Pushed concurrently race for
// queue order — a wearable gateway should Push each patient's stream
// from one goroutine.
//
// Multiple handles may be open for the same patient (e.g. a hospital
// gateway and a home gateway across a transfer); they share the
// server-side session, and each handle's stats count only its own traffic.
type Stream struct {
	srv     *Server
	patient string
	shard   Shard
	adm     AdmissionPolicy
	closed  atomic.Bool

	batches  atomic.Uint64
	dropped  atomic.Uint64
	shed     atomic.Uint64
	rejected atomic.Uint64
	confirms atomic.Uint64
	windows  atomic.Uint64
	alarms   atomic.Uint64
}

// StreamStats is a point-in-time snapshot of one handle's counters.
type StreamStats struct {
	// Patient is the stream's patient ID.
	Patient string
	// Batches counts accepted Pushes; BatchesDropped counts Pushes
	// rejected with ErrBackpressure; BatchesShed counts batches accepted
	// but later discarded by a ShedOldest admission elsewhere on the shard.
	Batches        uint64
	BatchesDropped uint64
	BatchesShed    uint64
	// QualityRejected counts accepted batches the server's quality
	// prefilter refused before feature extraction.
	QualityRejected uint64
	// Confirms counts accepted confirmations.
	Confirms uint64
	// Windows and Alarms count feature windows classified and alarms
	// raised from this handle's batches.
	Windows uint64
	Alarms  uint64
}

// Open returns a handle for streaming patientID's samples. The shard is
// resolved here, once; Push and Confirm are then queue operations only.
// Open never creates the server-side session — that happens lazily on
// the first batch — so an Open/Close pair with no traffic costs nothing
// on the workers.
func (s *Server) Open(patientID string, opts ...StreamOption) (*Stream, error) {
	if patientID == "" {
		return nil, errors.New("serve: empty patient ID")
	}
	// Options are applied before the lock: they are caller-supplied
	// callbacks, and nothing they configure reads server state.
	so := streamOptions{admission: s.admission}
	for _, opt := range opts {
		opt(&so)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	sh, err := s.transport.Shard(patientID)
	if err != nil {
		return nil, err
	}
	s.streamsOpen.Add(1)
	return &Stream{srv: s, patient: patientID, shard: sh, adm: so.admission}, nil
}

// Patient returns the stream's patient ID.
func (st *Stream) Patient() string { return st.patient }

// NoteShed, NoteWindows and NoteAlarms implement StreamObserver: the
// shard side of the transport attributes outcomes back to this handle.
func (st *Stream) NoteShed() { st.shed.Add(1) }

// NoteWindows implements StreamObserver.
func (st *Stream) NoteWindows(n int) { st.windows.Add(uint64(n)) }

// NoteRejected implements StreamObserver.
func (st *Stream) NoteRejected() { st.rejected.Add(1) }

// NoteAlarms implements StreamObserver.
func (st *Stream) NoteAlarms(n int) { st.alarms.Add(uint64(n)) }

// Push enqueues one batch of synchronized two-channel samples. It
// returns ErrBackpressure when the stream's admission policy gives up
// on a full shard queue (the caller owns the retry), and ErrClosed /
// ErrStreamClosed after the server or this handle closed. The server
// takes ownership of the slices.
func (st *Stream) Push(c0, c1 []float64) error {
	if st.closed.Load() {
		return ErrStreamClosed
	}
	if len(c0) != len(c1) {
		return fmt.Errorf("serve: channel length mismatch %d vs %d", len(c0), len(c1))
	}
	if len(c0) == 0 {
		return nil
	}
	// Cheap overload path: policies that would certainly refuse a full
	// queue get to say so before the lock is taken and the job built.
	// The closed check comes first so a closed server keeps returning
	// ErrClosed (not ErrBackpressure) while its shard queues drain.
	if st.srv.closedFast.Load() {
		return ErrClosed
	}
	if st.shard.Congested(st.adm) {
		st.srv.batchesDropped.Add(1)
		st.dropped.Add(1)
		return ErrBackpressure
	}
	err := st.srv.enqueue(st.shard, st.adm, Job{Patient: st.patient, Stream: st, C0: c0, C1: c1})
	switch err {
	case nil:
		st.batches.Add(1)
	case ErrBackpressure:
		st.dropped.Add(1)
	}
	return err
}

// DeclarePrefilter announces the stream's client-side stage-1
// prefilter to the shard, arming the shard-side audit (mirror gate,
// digest checks, stage-2 replay of audit samples). Call it once after
// Open, before the first Push; a re-declaration resets the audit state.
func (st *Stream) DeclarePrefilter(cfg PrefilterConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if st.closed.Load() {
		return ErrStreamClosed
	}
	c := cfg
	return st.srv.enqueue(st.shard, st.adm, Job{Patient: st.patient, Stream: st, Declare: &c})
}

// PushDigest reports a span of suppressed windows (a
// PrefilterClient.Decide Flush) to the shard's audit. Empty digests are
// accepted and ignored so callers can forward Flush unconditionally.
func (st *Stream) PushDigest(d Digest) error {
	if d.Windows == 0 {
		return nil
	}
	if st.closed.Load() {
		return ErrStreamClosed
	}
	if st.srv.closedFast.Load() {
		return ErrClosed
	}
	dd := d
	err := st.srv.enqueue(st.shard, st.adm, Job{Patient: st.patient, Stream: st, Digest: &dd})
	if err == nil {
		st.batches.Add(1)
	}
	return err
}

// PushAudit ships one suppressed window's full samples for shard-side
// stage-2 audit replay. The batch does not enter the patient's feature
// stream — the window stays suppressed; the shard only checks whether
// stage 2 agrees it was safe to drop. The server takes ownership of the
// slices.
func (st *Stream) PushAudit(c0, c1 []float64) error {
	if st.closed.Load() {
		return ErrStreamClosed
	}
	if len(c0) != len(c1) {
		return fmt.Errorf("serve: channel length mismatch %d vs %d", len(c0), len(c1))
	}
	if len(c0) == 0 {
		return nil
	}
	if st.srv.closedFast.Load() {
		return ErrClosed
	}
	err := st.srv.enqueue(st.shard, st.adm, Job{Patient: st.patient, Stream: st, C0: c0, C1: c1, Audit: true})
	if err == nil {
		st.batches.Add(1)
	}
	return err
}

// Confirm reports the patient's seizure confirmation (the paper's
// button press): the session's buffered feature history is scheduled
// for a-posteriori labeling and detector retraining in the background.
func (st *Stream) Confirm() error {
	if st.closed.Load() {
		return ErrStreamClosed
	}
	err := st.srv.enqueue(st.shard, st.adm, Job{Patient: st.patient, Stream: st, Confirm: true})
	if err == nil {
		st.confirms.Add(1)
	}
	return err
}

// Stats snapshots this handle's counters. Windows and Alarms lag Push
// by queue latency: they advance when the shard worker processes the
// batch, not when Push accepts it.
func (st *Stream) Stats() StreamStats {
	return StreamStats{
		Patient:         st.patient,
		Batches:         st.batches.Load(),
		BatchesDropped:  st.dropped.Load(),
		BatchesShed:     st.shed.Load(),
		QualityRejected: st.rejected.Load(),
		Confirms:        st.confirms.Load(),
		Windows:         st.windows.Load(),
		Alarms:          st.alarms.Load(),
	}
}

// Close invalidates the handle: subsequent Push and Confirm return
// ErrStreamClosed. The server-side session, its model, and any queued
// batches are unaffected — a patient who reconnects Opens a new handle
// and resumes warm. Close is idempotent.
func (st *Stream) Close() {
	if !st.closed.Swap(true) {
		st.srv.streamsOpen.Add(-1)
	}
}
