package serve

import (
	"sync"
	"sync/atomic"

	"selflearn/internal/features"
	"selflearn/internal/ml/forest"
	"selflearn/internal/rt"
)

// session is the server-side state of one patient's streaming loop: the
// sample-by-sample feature extractor, the hot-swappable window
// classifier, the alarm layer, and the rolling feature history the
// a-posteriori labeler consumes when the patient confirms a seizure.
// All fields except model are confined to the owning worker goroutine;
// model is an atomic pointer because the background learner installs
// retrained forests into live sessions.
type session struct {
	id       string
	streamer *features.Streamer
	alarm    *rt.Detector
	model    atomic.Pointer[forest.Forest]

	// history is a ring of the most recent feature rows (one per hop,
	// i.e. one per second in the paper's configuration), the streaming
	// equivalent of the wearable's "buffered last hour".
	history [][]float64
	histPos int
	histLen int

	// retrainSeq counts confirmations dispatched to the learner; it
	// seeds forest training so retrains stay deterministic per patient.
	retrainSeq int64

	// installMu makes the learner's gate-and-publish atomic per session;
	// installedSeq (written only under installMu) is the highest
	// retrainSeq whose model has been installed. Together they keep a
	// slow older retrain from overwriting a newer one when the learner
	// pool completes jobs out of order.
	installMu    sync.Mutex
	installedSeq atomic.Int64
}

// nopClassifier satisfies rt.Classifier for detector construction; the
// worker always feeds precomputed batch predictions through
// PushPrediction, so it is never consulted.
type nopClassifier struct{}

func (nopClassifier) Predict([]float64) bool { return false }

func newSession(id string, historyRows int, cfg Config) (*session, error) {
	st, err := features.NewStreamer(cfg.SampleRate, cfg.FeatureCfg)
	if err != nil {
		return nil, err
	}
	det, err := rt.NewDetector(nopClassifier{}, cfg.AlarmCfg)
	if err != nil {
		return nil, err
	}
	return &session{
		id:       id,
		streamer: st,
		alarm:    det,
		history:  make([][]float64, historyRows),
	}, nil
}

// ingest pushes one batch of synchronized samples through the feature
// extractor and returns the feature rows completed by this batch. Rows
// are also appended to the rolling history.
func (s *session) ingest(c0, c1 []float64) ([][]float64, error) {
	var rows [][]float64
	for i := range c0 {
		row, ready, err := s.streamer.Push(c0[i], c1[i])
		if err != nil {
			return rows, err
		}
		if ready {
			rows = append(rows, row)
			s.remember(row)
		}
	}
	return rows, nil
}

// remember appends one feature row to the rolling history ring.
func (s *session) remember(row []float64) {
	if len(s.history) == 0 {
		return
	}
	s.history[s.histPos] = row
	s.histPos = (s.histPos + 1) % len(s.history)
	if s.histLen < len(s.history) {
		s.histLen++
	}
}

// historySnapshot linearizes the history ring oldest-first into a fresh
// slice; the row slices themselves are shared (immutable once emitted).
func (s *session) historySnapshot() [][]float64 {
	out := make([][]float64, 0, s.histLen)
	start := s.histPos - s.histLen
	for i := 0; i < s.histLen; i++ {
		out = append(out, s.history[((start+i)%len(s.history)+len(s.history))%len(s.history)])
	}
	return out
}

// classify scores the batch's feature rows with the current model (all
// negative while untrained) and feeds them through the alarm layer,
// returning how many alarms fired.
func (s *session) classify(rows [][]float64) int {
	if len(rows) == 0 {
		return 0
	}
	var preds []bool
	if f := s.model.Load(); f != nil {
		preds = f.PredictBatch(rows)
	} else {
		preds = make([]bool, len(rows))
	}
	fired := 0
	for _, p := range preds {
		if s.alarm.PushPrediction(p) {
			fired++
		}
	}
	return fired
}
