package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"selflearn/internal/features"
	"selflearn/internal/ml/forest"
	"selflearn/internal/rt"
)

// session is the server-side state of one patient's streaming loop: the
// sample-by-sample feature extractor, the hot-swappable window
// classifier, the alarm layer, and the rolling feature history the
// a-posteriori labeler consumes when the patient confirms a seizure.
// All fields except model are confined to the owning worker goroutine;
// model is an atomic pointer because the background learner installs
// retrained forests into live sessions.
//
// The steady-state batch path (ingest → classify) allocates nothing:
// the streamer reuses its emission buffer, emitted rows are copied into
// one flat preallocated history backing, and classification runs the
// flat forest into a reused prediction buffer.
type session struct {
	id       string
	streamer *features.Streamer
	alarm    *rt.Detector
	model    atomic.Pointer[forest.FlatForest]

	// history is a ring of the most recent feature rows (one per hop,
	// i.e. one per second in the paper's configuration), the streaming
	// equivalent of the wearable's "buffered last hour". Each slot is a
	// fixed view into histBuf; rows are copied in on emission, so the
	// ring owns its data and the streamer's buffer can be reused.
	history [][]float64
	histPos int
	histLen int

	// rowsScratch collects the slot views of the rows a batch completed;
	// predScratch is the matching classification buffer; alarmScratch
	// collects the stream times of alarms a batch fired. All are reused
	// across batches.
	rowsScratch  [][]float64
	predScratch  []bool
	alarmScratch []float64
	codeScratch  []int16 // quantized row codes arena (quant classify path)

	// audit is the shard half of a declared client-side prefilter
	// (nil until a Declare job arrives). Worker-confined like the
	// session's streaming state.
	audit *prefilterAudit

	// retrainSeq counts confirmations dispatched to the learner; it
	// seeds forest training so retrains stay deterministic per patient.
	retrainSeq int64

	// installMu makes the learner's gate-and-publish atomic per session;
	// installedSeq (written only under installMu) is the highest
	// retrainSeq whose model has been installed. Together they keep a
	// slow older retrain from overwriting a newer one when the learner
	// pool completes jobs out of order.
	installMu    sync.Mutex
	installedSeq atomic.Int64
}

// nopClassifier satisfies rt.Classifier for detector construction; the
// worker always feeds precomputed batch predictions through
// PushPrediction, so it is never consulted.
type nopClassifier struct{}

func (nopClassifier) Predict([]float64) bool { return false }

func newSession(id string, historyRows int, cfg Config) (*session, error) {
	if historyRows < 1 {
		// Server.New validates this from Config.History; guard here too
		// because remember() indexes the ring unconditionally.
		return nil, fmt.Errorf("serve: session needs at least one history row, got %d", historyRows)
	}
	st, err := features.NewStreamer(cfg.SampleRate, cfg.FeatureCfg)
	if err != nil {
		return nil, err
	}
	det, err := rt.NewDetector(nopClassifier{}, cfg.AlarmCfg)
	if err != nil {
		return nil, err
	}
	nf := st.NumFeatures()
	histBuf := make([]float64, historyRows*nf)
	history := make([][]float64, historyRows)
	for i := range history {
		history[i] = histBuf[i*nf : (i+1)*nf : (i+1)*nf]
	}
	return &session{
		id:       id,
		streamer: st,
		alarm:    det,
		history:  history,
	}, nil
}

// ingest pushes one batch of synchronized samples through the feature
// extractor and returns the feature rows completed by this batch, as
// their stable history-ring views. The returned slice is the session's
// reusable scratch: it is valid until the next ingest call.
//
//selflearn:hotpath
func (s *session) ingest(c0, c1 []float64) ([][]float64, error) {
	rows := s.rowsScratch[:0]
	for i := range c0 {
		row, ready, err := s.streamer.Push(c0[i], c1[i])
		if err != nil {
			s.rowsScratch = rows
			return rows, err
		}
		if ready {
			// Copy immediately: the streamer reuses its emission buffer,
			// so the row must land in its ring slot before the next Push.
			if len(row) != len(s.history[s.histPos]) {
				// Slot width is derived from the streamer at construction;
				// a mismatch means the extractor changed shape mid-stream —
				// fail loudly rather than silently truncate the history
				// the learner trains on.
				s.rowsScratch = rows
				return rows, fmt.Errorf("serve: feature row width %d does not match history slot width %d",
					len(row), len(s.history[s.histPos]))
			}
			if n := len(s.history); len(rows) >= n {
				// A batch longer than the whole history ring: remember is
				// about to recycle the slot handed out n rows ago, so give
				// that row its own copy first. Pathological (one Push
				// spanning more than the History duration) — the common
				// path stays allocation-free.
				k := len(rows) - n
				rows[k] = append([]float64(nil), rows[k]...) //selflearn:alloc-ok pathological ring-wrap copy, documented above
			}
			rows = append(rows, s.remember(row))
		}
	}
	s.rowsScratch = rows
	return rows, nil
}

// remember copies one feature row into the rolling history ring and
// returns the slot view, which stays valid until the ring wraps past it
// (History duration later — far beyond the enclosing batch).
func (s *session) remember(row []float64) []float64 {
	slot := s.history[s.histPos]
	copy(slot, row)
	s.histPos = (s.histPos + 1) % len(s.history)
	if s.histLen < len(s.history) {
		s.histLen++
	}
	return slot
}

// historySnapshot linearizes the history ring oldest-first into freshly
// allocated rows. The copy is deliberate: the snapshot crosses to the
// learner goroutine while the worker keeps overwriting ring slots.
func (s *session) historySnapshot() [][]float64 {
	out := make([][]float64, 0, s.histLen)
	start := s.histPos - s.histLen
	for i := 0; i < s.histLen; i++ {
		slot := s.history[((start+i)%len(s.history)+len(s.history))%len(s.history)]
		out = append(out, append([]float64(nil), slot...))
	}
	return out
}

// classify scores the batch's feature rows with the current model (all
// negative while untrained) and feeds them through the alarm layer,
// returning the stream times of the alarms that fired. The returned
// slice is the session's reusable scratch, valid until the next
// classify call; the common (alarm-free) path stays allocation-free.
//
//selflearn:hotpath
func (s *session) classify(rows [][]float64) []float64 {
	if len(rows) == 0 {
		fired := s.alarmScratch[:0]
		s.alarmScratch = fired
		return fired
	}
	if cap(s.predScratch) < len(rows) {
		s.predScratch = make([]bool, len(rows))
	}
	preds := s.predScratch[:len(rows)]
	s.predictInto(preds, rows)
	return s.pushAlarms(preds)
}

// predictInto scores rows with the current model into preds (all
// negative while untrained), preferring the int16-quantized walk when
// the model carries one. The two halves of classify are split so the
// coalescing drain (dispatch.go) can score many sessions' rows in one
// arena pass and still feed each session's alarm layer separately.
//
//selflearn:hotpath
func (s *session) predictInto(preds []bool, rows [][]float64) {
	f := s.model.Load()
	if f == nil {
		for i := range preds {
			preds[i] = false
		}
		return
	}
	if qf := f.Quant(); qf != nil {
		// Quantize once per row into the reusable arena, then walk the
		// half-width int16 node tables. Decisions are exactly the float
		// forest's (rank codes are order-exact; the learner verified
		// parity before publishing).
		nf := qf.NumFeatures()
		if cap(s.codeScratch) < len(rows)*nf {
			s.codeScratch = make([]int16, len(rows)*nf)
		}
		codes := s.codeScratch[:len(rows)*nf]
		for i, row := range rows {
			qf.QuantizeRowInto(codes[i*nf:(i+1)*nf], row)
		}
		qf.PredictBatchInto(preds, codes, len(rows))
	} else {
		f.PredictBatchInto(preds, rows)
	}
}

// pushAlarms feeds a batch of window predictions through the alarm
// layer in stream order, returning the stream times of the alarms that
// fired. The returned slice is the session's reusable scratch, valid
// until the next call; the common (alarm-free) path stays
// allocation-free.
//
//selflearn:hotpath
func (s *session) pushAlarms(preds []bool) []float64 {
	fired := s.alarmScratch[:0]
	for _, p := range preds {
		if s.alarm.PushPrediction(p) {
			fired = append(fired, s.alarm.LastAlarmTime())
		}
	}
	s.alarmScratch = fired
	return fired
}
