package serve

import (
	"fmt"
	"hash/fnv"
	"sync"

	"selflearn/internal/core"
	"selflearn/internal/features"
	"selflearn/internal/ml/forest"
)

// retrainJob carries one confirmed-seizure history to the learner pool.
type retrainJob struct {
	sess *session
	rows [][]float64
	seq  int64
}

// learner is the background self-learning pool: it runs the
// a-posteriori labeling algorithm on confirmed buffers and retrains
// per-patient forests off the real-time path.
type learner struct {
	srv  *Server
	jobs chan retrainJob
	wg   sync.WaitGroup
}

func newLearner(s *Server, workers, queue int) *learner {
	l := &learner{srv: s, jobs: make(chan retrainJob, queue)}
	l.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer l.wg.Done()
			for j := range l.jobs {
				err := l.retrain(j)
				if err != nil {
					s.retrainErrors.Add(1)
				} else {
					s.retrains.Add(1)
				}
				s.hub.emit(Event{Kind: EventRetrain, Patient: j.sess.id, Err: err})
			}
		}()
	}
	return l
}

// schedule hands a job to the pool without blocking; false means the
// learner queue is full and the confirmation was dropped.
func (l *learner) schedule(j retrainJob) bool {
	select {
	case l.jobs <- j:
		return true
	default:
		return false
	}
}

func (l *learner) close() {
	close(l.jobs)
	l.wg.Wait()
}

// retrain labels the buffered history with Algorithm 1 and retrains the
// patient's detector on the self-labeled windows, installing the new
// model into both the live session and the shared cache.
func (l *learner) retrain(j retrainJob) error {
	cfg := l.srv.cfg
	m := &features.Matrix{
		Names:      features.PaperFeatureNames(),
		Rows:       j.rows,
		Window:     cfg.FeatureCfg.Window,
		SampleRate: cfg.SampleRate,
	}
	_, res, err := core.LabelMatrix(m, cfg.AvgSeizureDuration)
	if err != nil {
		return err
	}
	X, y := selfLabeledSet(j.rows, res.Index, res.Window)
	if len(X) == 0 {
		return fmt.Errorf("serve: empty self-labeled training set")
	}
	fcfg := cfg.ForestCfg
	h := fnv.New64a()
	h.Write([]byte(j.sess.id))
	fcfg.Seed = int64(h.Sum64()) ^ j.seq
	f, err := forest.Train(X, y, fcfg)
	if err != nil {
		return err
	}
	// Flatten once at train time: everything downstream — the live
	// session's classify path, the model cache, and checkpoints — works
	// on the inference-optimized representation. Flatten also builds the
	// int16-quantized companion; verify it reproduces the float vote
	// count on every training row and drop it on any disagreement, so a
	// quantized model can never serve a decision the float model wouldn't.
	flat := f.Flatten()
	if !flat.QuantParity(X) {
		flat.DropQuant()
	}
	// Two learners can finish the same patient's retrains out of order;
	// only the highest sequence may install. The check and the publish
	// must be one critical section: a bare CAS gate would let a
	// descheduled older retrain publish after a newer one already did.
	j.sess.installMu.Lock()
	if j.seq <= j.sess.installedSeq.Load() {
		j.sess.installMu.Unlock()
		return nil
	}
	j.sess.installedSeq.Store(j.seq)
	// Publish to the shared cache before the captured session pointer:
	// if the session was LRU-evicted and recreated while training ran,
	// the live replacement reconciles from the cache (dispatch.go), so
	// the cache must never lag the session. Publish is the explicit
	// checkpoint step of the model lifecycle: it allocates the next
	// monotonic per-patient version, writes the versioned checkpoint
	// through to the store, and the EventModelUpdated announcement below
	// is what the cluster layer keys replication and warm failover off.
	version := l.srv.cache.Publish(j.sess.id, flat) //selflearn:locked-ok installMu IS the check-then-publish critical section
	j.sess.model.Store(flat)
	j.sess.installMu.Unlock()
	// Announce after installMu is released: the event path runs arbitrary
	// sink code and a channel send, and nothing downstream needs the
	// lock — cluster routers max-merge announced versions and the
	// replicator re-reads the latest checkpoint per push, so announcement
	// order across racing retrains is immaterial.
	l.srv.hub.emit(Event{Kind: EventModelUpdated, Patient: j.sess.id, Version: version})
	return nil
}

// selfLabeledSet builds a balanced window training set from the labeled
// interval [pos, pos+w): every in-window row is a positive; negatives
// are subsampled from the rest of the buffer at a stride that yields
// roughly three negatives per positive (the buffered hour is almost
// entirely interictal — training on all of it would drown the seizure
// class).
func selfLabeledSet(rows [][]float64, pos, w int) (X [][]float64, y []bool) {
	for i := pos; i < pos+w && i < len(rows); i++ {
		X = append(X, rows[i])
		y = append(y, true)
	}
	nNeg := len(rows) - w
	stride := 1
	if want := 3 * w; want > 0 && nNeg > want {
		stride = nNeg / want
	}
	for i := 0; i < len(rows); i += stride {
		if i >= pos && i < pos+w {
			continue
		}
		X = append(X, rows[i])
		y = append(y, false)
	}
	return X, y
}
