package serve

import (
	"sync"
	"testing"
	"time"
)

// TestHandleChurn hammers Open/Close on one patient while the patient's
// real handle keeps streaming and confirming — the gateway-reconnect
// storm a flaky mobile link produces. The session must be created
// exactly once and survive the churn, no handle may leak, and the two
// confirm rounds must publish exactly model versions 1 and 2: a
// double-publish or a lost confirm is a regression in the learner
// hand-off. Run under -race this also shakes out handle lifecycle
// races.
func TestHandleChurn(t *testing.T) {
	const patient = "churn01"
	var mu sync.Mutex
	var versions []uint64
	srv, err := New(Config{
		Workers:            2,
		SampleRate:         testRate,
		History:            8 * time.Minute,
		AvgSeizureDuration: 20 * time.Second,
	},
		WithAdmission(BlockWithDeadline(0)),
		WithEventSink(func(ev Event) {
			if ev.Kind == EventModelUpdated && ev.Patient == patient {
				mu.Lock()
				versions = append(versions, ev.Version)
				mu.Unlock()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var churners sync.WaitGroup
	for g := 0; g < 4; g++ {
		churners.Add(1)
		go func() {
			defer churners.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h, err := srv.Open(patient)
				if err != nil {
					t.Error(err)
					return
				}
				h.Close()
			}
		}()
	}

	h := open(t, srv, patient)
	for round := int64(1); round <= 2; round++ {
		stream(t, h, testRecording(t, round, 180, 90, 24))
		for {
			err := h.Confirm()
			if err == nil {
				break
			}
			if err != ErrBackpressure {
				t.Fatalf("Confirm: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
		awaitRetrains(t, srv, uint64(round))
	}
	close(stop)
	churners.Wait()
	h.Close()

	st := srv.Snapshot()
	if st.StreamsOpen != 0 {
		t.Errorf("%d handles leaked", st.StreamsOpen)
	}
	if st.SessionsCreated != 1 {
		t.Errorf("session created %d times, want 1: churn evicted live state", st.SessionsCreated)
	}
	if st.Retrains != 2 || st.RetrainErrors != 0 || st.ConfirmsDropped != 0 {
		t.Errorf("retrain accounting off: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(versions) != 2 || versions[0] != 1 || versions[1] != 2 {
		t.Errorf("model versions published %v, want [1 2]", versions)
	}
}
