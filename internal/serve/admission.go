package serve

import "time"

// AdmissionPolicy decides what happens when a shard queue is full. The
// zero-configuration default is DropOnFull — the wearable gateway owns
// the retry. Policies are picked per server (WithAdmission), per stream
// (WithStreamAdmission), or per cluster client; the set is closed over
// this package's Queue internals, so every transport — the in-process
// worker pool and the cluster client's per-shard senders — shares one
// admission implementation.
type AdmissionPolicy interface {
	// admit places j on q or returns ErrBackpressure. On the local
	// transport it runs under the server's read lock, so it may block
	// only briefly (blocking delays Close by at most the policy's
	// deadline).
	admit(q *Queue, j Job) error
	// fastReject reports whether a batch push may be refused before the
	// job is even built — the cheap overload path. Only policies whose
	// admit would certainly refuse a full queue return true; the check
	// is racy (the queue may drain concurrently), which a caller of such
	// a policy must tolerate anyway. It runs outside any lock and must
	// not block.
	fastReject(q *Queue) bool
}

// DropOnFull rejects immediately when the shard queue is full — the
// original non-blocking behavior. Lowest latency jitter: the caller
// sees ErrBackpressure and owns buffering.
func DropOnFull() AdmissionPolicy { return dropOnFull{} }

type dropOnFull struct{}

func (dropOnFull) admit(q *Queue, j Job) error {
	select {
	case q.jobs <- j:
		return nil
	default:
		return ErrBackpressure
	}
}

// fastReject short-circuits a full queue: under sustained overload the
// retry loop of every gateway hammers Push, and rejecting before the
// lock and the job copy keeps that spin from stealing the very worker
// time that would drain the queue.
func (dropOnFull) fastReject(q *Queue) bool {
	return len(q.jobs) == cap(q.jobs)
}

// BlockWithDeadline waits up to d for queue space before giving up with
// ErrBackpressure — smoothing short bursts without unbounded blocking.
// A non-positive d blocks until space frees (use with care: it also
// delays Close by the same wait).
func BlockWithDeadline(d time.Duration) AdmissionPolicy { return blockWithDeadline{d: d} }

type blockWithDeadline struct{ d time.Duration }

// fastReject never triggers: a full queue is exactly when this policy
// wants to block.
func (blockWithDeadline) fastReject(*Queue) bool { return false }

func (p blockWithDeadline) admit(q *Queue, j Job) error {
	select {
	case q.jobs <- j:
		return nil
	default:
	}
	if p.d <= 0 {
		q.jobs <- j
		return nil
	}
	t := time.NewTimer(p.d)
	defer t.Stop()
	select {
	case q.jobs <- j:
		return nil
	case <-t.C:
		return ErrBackpressure
	}
}

// ShedOldest makes room for the new batch by discarding the oldest
// queued batches on the shard — freshest-data-wins, the right policy
// when stale EEG seconds are worthless once newer ones arrived. The
// shard queue is shared by every patient hashed to it, so shedding
// discards the oldest batches regardless of which stream pushed them:
// an already-accepted Push can vanish with no error to its caller,
// surfacing in Stats.BatchesShed, the victim stream's
// StreamStats.BatchesShed, and an EventShed on the event stream.
// Per-stream use (WithStreamAdmission) still sheds shard-wide — mix it
// with other policies deliberately. Confirmations are never shed: any
// encountered while clearing space are re-enqueued behind the new batch.
func ShedOldest() AdmissionPolicy { return shedOldest{} }

type shedOldest struct{}

// fastReject never triggers: a full queue is exactly when this policy
// sheds to make room.
func (shedOldest) fastReject(*Queue) bool { return false }

func (shedOldest) admit(q *Queue, j Job) error {
	// pending holds jobs awaiting (re-)placement, oldest first: popped
	// confirmations are prepended so they re-enter the queue ahead of
	// the new job — a confirmation may drift a few batches later than
	// it arrived (harmless: retraining snapshots history at processing
	// time), but it is never discarded. The new job stays last.
	pending := []Job{j}
	// pops bounds queue-clearing work so concurrent shedders cannot
	// livelock each other; sends are not bounded — each one strictly
	// shrinks pending.
	pops := 0
	for len(pending) > 0 {
		select {
		case q.jobs <- pending[0]:
			pending = pending[1:]
			continue
		default:
		}
		if pops > cap(q.jobs)+2 {
			break
		}
		pops++
		select {
		case old := <-q.jobs:
			if old.Confirm {
				pending = append([]Job{old}, pending...)
			} else {
				q.noteShed(old)
			}
		default:
			// The consumer drained the queue between probes; retry the send.
		}
	}
	if len(pending) == 0 {
		return nil
	}
	// Pop budget exhausted (a queue saturated with confirmations, or
	// heavy contention): the new job — always pending's last element —
	// is refused; any confirmation still unplaced gets one last
	// best-effort re-enqueue before being counted as lost.
	for _, c := range pending[:len(pending)-1] {
		select {
		case q.jobs <- c:
		default:
			q.noteConfirmLost(c)
		}
	}
	return ErrBackpressure
}
