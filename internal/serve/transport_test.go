package serve_test

import (
	"testing"

	"selflearn/internal/serve"
	"selflearn/internal/serve/servetest"
)

// TestLocalTransportAdmissionSuite runs the shared admission suite
// against the local transport's queue machinery — the exact Queue a
// worker shard fronts, wrapped as a Shard the way Stream.Push reaches
// it. internal/cluster runs the same suite against its TCP shard
// connections, so both transports are pinned to one behavioral
// contract.
func TestLocalTransportAdmissionSuite(t *testing.T) {
	servetest.RunAdmissionSuite(t, func(t *testing.T, depth int) servetest.Harness {
		q := serve.NewQueue(depth, serve.QueueHooks{})
		return servetest.Harness{
			Shard: serve.QueueShard(q),
			Drain: q.TryRecv,
		}
	})
}

// TestQueueHooksObserveShedding pins the hook contract remote
// transports rely on: shed batches reach the Shed hook (with the job),
// confirmations squeezed out by a confirm-saturated queue reach
// ConfirmLost, and per-stream attribution happens independently of the
// hooks.
func TestQueueHooksObserveShedding(t *testing.T) {
	var shed, lost []string
	q := serve.NewQueue(1, serve.QueueHooks{
		Shed:        func(j serve.Job) { shed = append(shed, j.Patient) },
		ConfirmLost: func(j serve.Job) { lost = append(lost, j.Patient) },
	})
	sh := serve.QueueShard(q)
	p := serve.ShedOldest()
	if err := sh.Enqueue(p, serve.Job{Patient: "a", C0: []float64{0}, C1: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	if err := sh.Enqueue(p, serve.Job{Patient: "b", C0: []float64{0}, C1: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	if len(shed) != 1 || shed[0] != "a" {
		t.Fatalf("Shed hook saw %v, want [a]", shed)
	}
	if len(lost) != 0 {
		t.Fatalf("ConfirmLost hook saw %v, want none", lost)
	}
}
