package serve

import (
	"fmt"
	"testing"
	"time"

	"selflearn/internal/rt"
)

// drainWorker builds a worker whose goroutine never runs, so tests can
// drive the admit → score → settle drain phases synchronously. The
// alarm config is strict enough that background EEG never fires, as in
// benchSession.
func drainWorker(t *testing.T) (*worker, *Server) {
	t.Helper()
	srv, err := New(Config{
		Workers:    1,
		SampleRate: testRate,
		History:    time.Minute,
		AlarmCfg: rt.Config{
			VoteWindow:   12,
			VotesToRaise: 12,
			Refractory:   5 * time.Minute,
			Hop:          time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	w := &worker{
		srv:      srv,
		queue:    NewQueue(8, QueueHooks{}),
		sessions: newLRU[*session](64, func(string, *session) {}),
	}
	return w, srv
}

// TestDrainZeroAlloc pins the coalescing drain at zero allocations per
// batch in steady state across the three model groups it can mix in one
// pass: a shared quantized model, a float-only model (quant dropped),
// and untrained sessions.
func TestDrainZeroAlloc(t *testing.T) {
	w, _ := drainWorker(t)
	const historyRows = 256
	quantModel := trainOnRecording(t)
	if quantModel.Quant() == nil {
		t.Fatal("trained model failed to quantize")
	}
	floatModel := trainOnRecording(t)
	floatModel.DropQuant()

	rec := testRecording(t, 9, 60, -1, 0)
	c0, c1 := rec.Data[0], rec.Data[1]
	batch := int(testRate)

	patients := []string{"quant-a", "quant-b", "float-c", "cold-d"}
	for _, p := range patients {
		sess, err := w.session(p, historyRows)
		if err != nil {
			t.Fatal(err)
		}
		switch p {
		case "quant-a", "quant-b":
			sess.model.Store(quantModel)
		case "float-c":
			sess.model.Store(floatModel)
		}
	}
	d := &drain{}
	pos := 0
	drainOnce := func() {
		d.reset()
		for _, p := range patients {
			w.admit(d, Job{Patient: p, C0: c0[pos : pos+batch], C1: c1[pos : pos+batch]}, historyRows)
		}
		w.score(d)
		w.settle(d)
		pos += batch
		if pos+batch > len(c0) {
			pos = 8 * batch
		}
	}
	for i := 0; i < 10; i++ {
		drainOnce()
	}
	if allocs := testing.AllocsPerRun(30, drainOnce); allocs != 0 {
		t.Fatalf("coalesced drain allocates %.1f objects per 4-patient round, want 0", allocs)
	}
}

// TestDrainGroupsByModel checks the scoring groups: jobs sharing a
// model pointer are scored in one arena pass whose decisions match the
// per-session path exactly.
func TestDrainGroupsByModel(t *testing.T) {
	w, _ := drainWorker(t)
	const historyRows = 256
	model := trainOnRecording(t)
	rec := testRecording(t, 11, 60, 30, 20)
	c0, c1 := rec.Data[0], rec.Data[1]
	batch := int(testRate)

	// Reference: an identical session classifying alone.
	ref, _ := benchSession(t, historyRows)
	ref.model.Store(model)

	patients := []string{"p0", "p1", "p2"}
	for _, p := range patients {
		sess, err := w.session(p, historyRows)
		if err != nil {
			t.Fatal(err)
		}
		sess.model.Store(model)
	}
	d := &drain{}
	for pos := 0; pos+batch <= len(c0) && pos < 30*batch; pos += batch {
		refRows, err := ref.ingest(c0[pos:pos+batch], c1[pos:pos+batch])
		if err != nil {
			t.Fatal(err)
		}
		want := make([]bool, len(refRows))
		ref.predictInto(want, refRows)
		d.reset()
		for _, p := range patients {
			w.admit(d, Job{Patient: p, C0: c0[pos : pos+batch], C1: c1[pos : pos+batch]}, historyRows)
		}
		w.score(d)
		for i := range d.jobs {
			ji := &d.jobs[i]
			got := d.preds[ji.lo:ji.hi]
			if len(got) != len(want) {
				t.Fatalf("pos %d patient %s: %d preds, reference has %d", pos, ji.j.Patient, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("pos %d patient %s row %d: coalesced decision %v, solo decision %v",
						pos, ji.j.Patient, k, got[k], want[k])
				}
			}
		}
		w.settle(d)
	}
}

// TestDrainConflictDetection pins the invariant that keeps ring views
// safe: a second row-bearing job for the same patient must not join a
// drain, while confirms and other patients may.
func TestDrainConflictDetection(t *testing.T) {
	w, _ := drainWorker(t)
	const historyRows = 256
	rec := testRecording(t, 7, 10, -1, 0)
	sec := int(testRate)
	d := &drain{}
	d.reset()
	// Prime so the 8th second emits a row.
	for i := 0; i < 7; i++ {
		if _, err := w.session("pA", historyRows); err != nil {
			t.Fatal(err)
		}
		sess, _ := w.sessions.Get("pA")
		if _, err := sess.ingest(rec.Data[0][i*sec:(i+1)*sec], rec.Data[1][i*sec:(i+1)*sec]); err != nil {
			t.Fatal(err)
		}
	}
	w.admit(d, Job{Patient: "pA", C0: rec.Data[0][7*sec : 8*sec], C1: rec.Data[1][7*sec : 8*sec]}, historyRows)
	if len(d.jobs) != 1 || d.jobs[0].hi == d.jobs[0].lo {
		t.Fatalf("priming failed: %d jobs in drain", len(d.jobs))
	}
	if !w.conflicts(d, "pA") {
		t.Fatal("second batch for pA must conflict with its queued rows")
	}
	if w.conflicts(d, "pB") {
		t.Fatal("a different patient must not conflict")
	}
}

// TestCoalescedServerMatchesSerial replays the same multi-patient load
// through a coalescing server and a Coalesce=1 (disabled) server and
// demands identical window and alarm accounting — coalescing is a
// scheduling change, never a semantic one.
func TestCoalescedServerMatchesSerial(t *testing.T) {
	rec := testRecording(t, 3, 40, 20, 15)
	c0, c1 := rec.Data[0], rec.Data[1]
	batch := int(testRate)
	run := func(coalesce int) (uint64, uint64, map[string]uint64) {
		srv, err := New(Config{
			Workers:    2,
			Coalesce:   coalesce,
			SampleRate: testRate,
			History:    time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		streams := make([]*Stream, 6)
		for p := range streams {
			h, err := srv.Open(fmt.Sprintf("pt-%d", p))
			if err != nil {
				t.Fatal(err)
			}
			streams[p] = h
		}
		for pos := 0; pos+batch <= len(c0); pos += batch {
			for _, h := range streams {
				for h.Push(c0[pos:pos+batch], c1[pos:pos+batch]) == ErrBackpressure {
					time.Sleep(time.Millisecond)
				}
			}
		}
		perStream := map[string]uint64{}
		srv.Close()
		st := srv.Snapshot()
		for p, h := range streams {
			s := h.Stats()
			perStream[fmt.Sprintf("pt-%d", p)] = s.Windows
		}
		return st.Windows, st.Alarms, perStream
	}
	wSerial, aSerial, perSerial := run(1)
	wCoal, aCoal, perCoal := run(16)
	if wSerial != wCoal {
		t.Fatalf("window count diverged: serial %d, coalesced %d", wSerial, wCoal)
	}
	if aSerial != aCoal {
		t.Fatalf("alarm count diverged: serial %d, coalesced %d", aSerial, aCoal)
	}
	if wSerial == 0 {
		t.Fatal("no windows processed")
	}
	for p, n := range perSerial {
		if perCoal[p] != n {
			t.Fatalf("patient %s: serial %d windows, coalesced %d", p, n, perCoal[p])
		}
	}
}
