package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"selflearn/internal/ml/forest"
)

// benchSnapshot and pipelineSnapshot accumulate BenchmarkServe and
// BenchmarkPipeline results; TestMain writes them to BENCH_serve.json
// and BENCH_pipeline.json (override with BENCH_SERVE_OUT /
// BENCH_PIPELINE_OUT) so the repo's perf trajectory has a
// machine-readable sample per run.
var benchSnapshot = struct {
	mu sync.Mutex
	m  map[string]float64
}{m: map[string]float64{}}

var pipelineSnapshot = struct {
	mu sync.Mutex
	m  map[string]float64
}{m: map[string]float64{}}

func TestMain(m *testing.M) {
	code := m.Run()
	writeSnapshot("BenchmarkServe", "BENCH_SERVE_OUT", "BENCH_serve.json", &benchSnapshot.mu, benchSnapshot.m)
	writeSnapshot("BenchmarkPipeline", "BENCH_PIPELINE_OUT", "BENCH_pipeline.json", &pipelineSnapshot.mu, pipelineSnapshot.m)
	os.Exit(code)
}

func writeSnapshot(name, env, def string, mu *sync.Mutex, m map[string]float64) {
	mu.Lock()
	defer mu.Unlock()
	if len(m) == 0 {
		return
	}
	out := os.Getenv(env)
	if out == "" {
		out = def
	}
	data, err := json.MarshalIndent(struct {
		Benchmark     string             `json:"benchmark"`
		GOMAXPROCS    int                `json:"gomaxprocs"`
		WindowsPerSec map[string]float64 `json:"windows_per_sec"`
	}{
		Benchmark:     name,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		WindowsPerSec: m,
	}, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench snapshot: %v\n", err)
		return
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench snapshot: %v\n", err)
	}
}

// BenchmarkServe measures steady-state classification throughput as the
// worker count grows. Four producer goroutines each own a disjoint
// subset of 32 patients' streams and push one-second batches round-robin,
// sleeping briefly on backpressure — so the shard queues stay saturated,
// the workers' coalescing drains engage, and the measured rate is the
// server's processing capacity rather than the wakeup latency of a
// single producer (which a lone pushing goroutine ends up measuring:
// one park/unpark handshake per window). ns/op is the wall time per
// streamed patient-second and should fall as workers are added until
// the core count is exhausted. Shards are resolved once at Open, so the
// loop body is hash-free — the remaining per-push hash cost is isolated
// in BenchmarkShard.
func BenchmarkServe(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchServe(b, workers, 32)
		})
	}
}

func benchServe(b *testing.B, workers, patients int) {
	srv, err := New(Config{
		Workers:    workers,
		QueueDepth: 64,
		SampleRate: testRate,
		History:    time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	rec := testRecording(b, 42, 2, -1, 0)
	// One shared one-second batch: workers only read sample slices, and
	// per-session ring buffers make the content reuse harmless.
	c0, c1 := rec.Data[0][:testRate], rec.Data[1][:testRate]
	streams := make([]*Stream, patients)
	for p := range streams {
		h, err := srv.Open(fmt.Sprintf("bench-%03d", p))
		if err != nil {
			b.Fatal(err)
		}
		streams[p] = h
	}
	// Prime every session (first window costs 4 s of fill). Retries
	// yield: a busy spin would steal the very CPU time the workers need
	// to drain the queue and the benchmark would measure its own
	// spinning instead of the processing rate.
	for _, h := range streams {
		for i := 0; i < 4; i++ {
			for h.Push(c0, c1) == ErrBackpressure {
				runtime.Gosched()
			}
		}
	}
	const producers = 4
	b.ResetTimer()
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		n := b.N / producers
		if pr < b.N%producers {
			n++
		}
		wg.Add(1)
		go func(pr, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				// Producer pr owns patients ≡ pr (mod producers): streams
				// stay single-pusher and the load is round-robin overall.
				h := streams[(pr+producers*i)%patients]
				for h.Push(c0, c1) == ErrBackpressure {
					// Sleep, don't spin: a busy retry would steal the very
					// CPU the workers need to drain the queue.
					time.Sleep(20 * time.Microsecond)
				}
			}
		}(pr, n)
	}
	wg.Wait()
	b.StopTimer()
	srv.Close()
	st := srv.Snapshot()
	b.ReportMetric(st.WindowsPerSec, "windows/s")
	benchSnapshot.mu.Lock()
	benchSnapshot.m[fmt.Sprintf("workers=%d", workers)] = st.WindowsPerSec
	benchSnapshot.mu.Unlock()
}

// BenchmarkPipeline measures the full samples-in → alarm-out window
// pipeline on one session with no queue hops: Streamer.Push through
// the feature workspace, history ring copy, FlatForest classification,
// and alarm smoothing. One iteration is one one-second batch, i.e. one
// classified window in steady state, so windows/s here is the
// single-core ceiling the sharded server fans out. allocs/op is the
// pipeline's allocation budget and must stay 0 (enforced by
// TestSessionBatchPathZeroAlloc).
func BenchmarkPipeline(b *testing.B) {
	model := trainOnRecording(b)
	// The float ablation trains an identical forest (same seeds) and
	// drops its int16 companion, so trained vs trained-float isolates
	// exactly the quantized-descent win inside the full pipeline.
	floatModel := trainOnRecording(b)
	floatModel.DropQuant()
	for _, tc := range []struct {
		name  string
		model *forest.FlatForest
	}{{"untrained", nil}, {"trained", model}, {"trained-float", floatModel}} {
		b.Run(tc.name, func(b *testing.B) {
			sess, _ := benchSession(b, 3600)
			if tc.model != nil {
				sess.model.Store(tc.model)
			}
			rec := testRecording(b, 21, 60, -1, 0)
			c0, c1 := rec.Data[0], rec.Data[1]
			batch := int(testRate)
			pos := 0
			push := func() {
				rows, err := sess.ingest(c0[pos:pos+batch], c1[pos:pos+batch])
				if err != nil {
					b.Fatal(err)
				}
				sess.classify(rows)
				pos += batch
				if pos+batch > len(c0) {
					pos = 8 * batch
				}
			}
			for i := 0; i < 8; i++ {
				push() // fill the first window and size all buffers
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				push()
			}
			b.StopTimer()
			wps := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(wps, "windows/s")
			pipelineSnapshot.mu.Lock()
			pipelineSnapshot.m[tc.name] = wps
			pipelineSnapshot.mu.Unlock()
		})
	}
}

// BenchmarkShard isolates the shard-hash fix: the stdlib path pays the
// hasher construction, []byte conversion and hash.Hash32 interface
// dispatch on every call (~4× the inline FNV-1a loop here — and a heap
// allocation wherever the hasher escapes, as it did in the old
// per-Submit shard()).
func BenchmarkShard(b *testing.B) {
	const id = "patient-0042"
	b.Run("fnv-stdlib", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint32
		for i := 0; i < b.N; i++ {
			h := fnv.New32a()
			h.Write([]byte(id))
			sink += h.Sum32()
		}
		_ = sink
	})
	b.Run("inline", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint32
		for i := 0; i < b.N; i++ {
			sink += shardHash(id)
		}
		_ = sink
	})
}
