package serve

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkServe measures steady-state classification throughput as the
// worker count grows. Each iteration submits one one-second batch for
// one of 32 patients round-robin (retrying on backpressure, so the
// measured rate is the processing rate, not the enqueue rate); ns/op is
// therefore the wall time per streamed patient-second, and it should
// fall as workers are added until the core count is exhausted.
func BenchmarkServe(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchServe(b, workers, 32)
		})
	}
}

func benchServe(b *testing.B, workers, patients int) {
	srv, err := New(Config{
		Workers:    workers,
		QueueDepth: 64,
		SampleRate: testRate,
		History:    time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	rec := testRecording(b, 42, 2, -1, 0)
	// One shared one-second batch: workers only read sample slices, and
	// per-session ring buffers make the content reuse harmless.
	c0, c1 := rec.Data[0][:testRate], rec.Data[1][:testRate]
	ids := make([]string, patients)
	for p := range ids {
		ids[p] = fmt.Sprintf("bench-%03d", p)
	}
	// Prime every session (first window costs 4 s of fill).
	for _, id := range ids {
		for i := 0; i < 4; i++ {
			for srv.Submit(id, c0, c1) == ErrBackpressure {
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for srv.Submit(ids[i%patients], c0, c1) == ErrBackpressure {
		}
	}
	b.StopTimer()
	srv.Close()
	st := srv.Snapshot()
	b.ReportMetric(st.WindowsPerSec, "windows/s")
}
