package serve

import (
	"fmt"

	"selflearn/internal/features"
	"selflearn/internal/ml/forest"
	"selflearn/internal/rt"
)

// This file is the edge/cloud two-stage split: a client-side stage-1
// amplitude gate (rt.AmplitudeGate — the exact gate TwoStage runs
// in-process) suppresses uplink traffic during the overwhelmingly
// seizure-free hours, shipping compact digests instead of full-rate
// samples, while the shard audits the suppression so sensitivity never
// silently degrades. Two halves live here:
//
//   - PrefilterClient runs "on device": per one-second batch it decides
//     ship / suppress, folds suppressed seconds into a pending Digest,
//     and samples every AuditEvery-th suppressed window at full rate so
//     the shard periodically sees what stage 1 drops.
//   - prefilterAudit runs on the shard, attached to the patient's
//     session: it mirrors the declared gate over the amplitudes it can
//     observe (full batches, digest stats), flags suppressed spans the
//     declared gate should have shipped, replays audit-sampled windows
//     through stage 2, and raises EventPrefilterDrift when
//     disagreements cross the stream's declared threshold.

// DefaultAuditEvery is the proactive audit sampling period (in
// suppressed windows) when a PrefilterConfig leaves AuditEvery 0 yet
// wants sampling; DefaultDriftThreshold the disagreement count that
// fires EventPrefilterDrift.
const (
	DefaultAuditEvery     = 32
	DefaultDriftThreshold = 3
)

// digestSpanMax bounds how many suppressed windows fold into one
// pending Digest before it is flushed even without a shipped window, so
// the shard's mirror never lags a quiet stream by more than ~a minute.
const digestSpanMax = 64

// auditRequestInterval is how many unaudited suppressed windows the
// shard tolerates from a stream that declared no proactive sampling
// (AuditEvery 0) before it emits an EventAuditRequest.
const auditRequestInterval = 64

// driftSlack is the tolerance multiple on the audit mirror's trigger
// threshold. The mirror reconstructs the client's baseline from digest
// span means rather than exact per-window amplitudes, so its median can
// sit a hair off the client's; 5 % absorbs that without masking a
// genuinely mis-tuned gate (which is off by the ratio of factors, not
// percent).
const driftSlack = 1.05

// PrefilterConfig declares a client-side stage-1 prefilter: the
// amplitude gate parameters plus the audit contract between client and
// shard. It crosses the wire in a PrefilterDecl frame at stream open.
type PrefilterConfig struct {
	// Gate parameterizes the stage-1 amplitude gate (rt.AmplitudeGate).
	Gate rt.GateConfig `json:"gate"`
	// AuditEvery makes the client ship every Nth suppressed window at
	// full rate for shard-side auditing. 0 means no proactive sampling:
	// the shard then requests samples (EventAuditRequest / AuditRequest
	// frames) when suppression runs unaudited too long.
	AuditEvery int `json:"audit_every"`
	// DriftThreshold is how many audit disagreements (digest amplitudes
	// above the declared trigger level, or audited windows stage 2
	// classifies positive) the shard tolerates before emitting
	// EventPrefilterDrift for the stream. 0 = DefaultDriftThreshold.
	DriftThreshold int `json:"drift_threshold"`
}

// Validate checks the declaration.
func (c PrefilterConfig) Validate() error {
	if err := c.Gate.Validate(); err != nil {
		return err
	}
	if c.AuditEvery < 0 {
		return fmt.Errorf("serve: negative audit period %d", c.AuditEvery)
	}
	if c.DriftThreshold < 0 {
		return fmt.Errorf("serve: negative drift threshold %d", c.DriftThreshold)
	}
	return nil
}

// driftThreshold resolves the declared threshold's zero default.
func (c PrefilterConfig) driftThreshold() uint64 {
	if c.DriftThreshold <= 0 {
		return DefaultDriftThreshold
	}
	return uint64(c.DriftThreshold)
}

// Digest summarizes a span of contiguous suppressed windows: how many,
// and their mean-absolute-amplitude statistics. ~40 bytes on the wire
// regardless of span length — the compact substitute for up to
// digestSpanMax full-rate seconds.
type Digest struct {
	// Windows is the number of suppressed windows in the span.
	Windows uint32
	// SumAmp, MinAmp and MaxAmp aggregate the windows' mean absolute
	// amplitudes (the stage-1 statistic). SumAmp/Windows is the span
	// mean the shard's mirror feeds its baseline with; MaxAmp is what
	// the audit checks against the declared trigger level.
	SumAmp float64
	MinAmp float64
	MaxAmp float64
}

// add folds one suppressed window's amplitude into the digest.
func (d *Digest) add(amp float64) {
	if d.Windows == 0 || amp < d.MinAmp {
		d.MinAmp = amp
	}
	if d.Windows == 0 || amp > d.MaxAmp {
		d.MaxAmp = amp
	}
	d.Windows++
	d.SumAmp += amp
}

// PrefilterAction is PrefilterClient.Decide's verdict for one batch.
// Order matters on the uplink: send Flush (if any) first, then the
// batch as a full Push (Ship) or an audit sample (Audit) — the shard's
// mirror consumes amplitudes in stream order.
type PrefilterAction struct {
	// Ship: the gate triggered; send the batch at full rate.
	Ship bool
	// Audit: the batch was suppressed but sampled for auditing; send it
	// at full rate marked as an audit sample (it still counts as
	// suppressed — the digest that precedes it covers it).
	Audit bool
	// Flush, when Flush.Windows > 0, is a completed suppressed-span
	// digest that must be sent before the batch.
	Flush Digest
}

// PrefilterClient is the device half of the split. Not safe for
// concurrent use — one per stream, driven by the goroutine that pushes
// the stream's batches. The per-batch path is allocation-free.
type PrefilterClient struct {
	decl    PrefilterConfig
	gate    *rt.AmplitudeGate
	pending Digest
	// suppressed counts all suppressed windows; samples counts those
	// shipped as audit samples.
	suppressed uint64
	samples    uint64
	// auditASAP makes the next suppressed window ship as an audit
	// sample regardless of the proactive schedule — set by a shard's
	// audit request.
	auditASAP bool
}

// NewPrefilterClient builds the client gate from its declaration.
func NewPrefilterClient(decl PrefilterConfig) (*PrefilterClient, error) {
	return NewMistunedPrefilterClient(decl, decl.Gate)
}

// NewMistunedPrefilterClient builds a client that declares decl to the
// shard but actually gates with actual — the negative-control harness
// for the audit path (a buggy or stale device whose real gate drifted
// from what it announced). Production clients use NewPrefilterClient,
// where actual == decl.Gate.
func NewMistunedPrefilterClient(decl PrefilterConfig, actual rt.GateConfig) (*PrefilterClient, error) {
	if err := decl.Validate(); err != nil {
		return nil, err
	}
	g, err := rt.NewAmplitudeGate(actual)
	if err != nil {
		return nil, err
	}
	return &PrefilterClient{decl: decl, gate: g}, nil
}

// Declared returns the configuration the stream announces to its shard.
func (p *PrefilterClient) Declared() PrefilterConfig { return p.decl }

// Suppressed returns the number of windows suppressed so far; Samples
// how many of those shipped as audit samples.
func (p *PrefilterClient) Suppressed() uint64 { return p.suppressed }

// Samples returns the number of audit samples shipped.
func (p *PrefilterClient) Samples() uint64 { return p.samples }

// RequestAudit makes the next suppressed window ship as an audit sample
// — how a shard's AuditRequest frame reaches the gate.
func (p *PrefilterClient) RequestAudit() { p.auditASAP = true }

// Decide runs the stage-1 gate over one batch and returns what to send.
//
//selflearn:hotpath
func (p *PrefilterClient) Decide(c0, c1 []float64) PrefilterAction {
	amp := rt.BatchAmplitude(c0, c1)
	if p.gate.Admit(amp) {
		a := PrefilterAction{Ship: true, Flush: p.pending}
		p.pending = Digest{}
		return a
	}
	p.suppressed++
	p.pending.add(amp)
	audit := p.auditASAP
	if every := p.decl.AuditEvery; every > 0 && p.suppressed%uint64(every) == 0 {
		audit = true
	}
	var a PrefilterAction
	if audit {
		// The digest flushes first so the shard's mirror sees this
		// window's amplitude (it is part of the span) before the full
		// samples arrive for stage-2 replay.
		p.auditASAP = false
		p.samples++
		a = PrefilterAction{Audit: true, Flush: p.pending}
		p.pending = Digest{}
		return a
	}
	if p.pending.Windows >= digestSpanMax {
		a.Flush = p.pending
		p.pending = Digest{}
	}
	return a
}

// Final returns the pending digest (possibly empty) for the caller to
// send at stream end, and clears it.
func (p *PrefilterClient) Final() Digest {
	d := p.pending
	p.pending = Digest{}
	return d
}

// prefilterAudit is the shard half of the split, owned by the patient's
// session (worker-confined like the rest of session state). The mirror
// gate re-runs the declared stage-1 decision procedure over the
// amplitudes the shard can observe: full batches feed it exactly;
// suppressed spans feed it their digest mean, once per window — an
// approximation driftSlack absorbs.
type prefilterAudit struct {
	cfg    PrefilterConfig
	mirror *rt.AmplitudeGate
	// streamer rebuilds feature windows from audit-sampled seconds so
	// stage 2 can score what stage 1 dropped. Sampled seconds are
	// treated as contiguous — a deterministic surrogate stream; a
	// mis-tuned gate suppressing a real seizure yields consecutive
	// ictal samples here, which is exactly what stage 2 flags.
	streamer *features.Streamer
	rowView  [1][]float64
	predView [1]bool

	disagreements uint64
	driftFired    bool
	// sinceAudit counts suppressed windows since the last audit sample;
	// requested dedups EventAuditRequest emissions.
	sinceAudit int
	requested  bool
}

// newPrefilterAudit builds the audit state for one declared stream.
func newPrefilterAudit(cfg PrefilterConfig, serverCfg Config) (*prefilterAudit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mirror, err := rt.NewAmplitudeGate(cfg.Gate)
	if err != nil {
		return nil, err
	}
	st, err := features.NewStreamer(serverCfg.SampleRate, serverCfg.FeatureCfg)
	if err != nil {
		return nil, err
	}
	return &prefilterAudit{cfg: cfg, mirror: mirror, streamer: st}, nil
}

// observeShipped feeds the mirror one shipped batch's amplitude,
// keeping its cold-start baseline in lockstep with the client's (which
// fed these windows while cold, and triggered on them when warm).
//
//selflearn:hotpath
func (a *prefilterAudit) observeShipped(c0, c1 []float64) {
	a.mirror.Admit(rt.BatchAmplitude(c0, c1))
}

// observeDigest audits one suppressed-span digest: counts the span,
// checks its hottest window against the declared gate's current trigger
// level, feeds the mirror baseline, and nudges the shard to request an
// audit sample when a no-proactive-sampling stream runs unaudited too
// long. Returns the number of new disagreements and whether an audit
// sample should be requested from the client.
func (a *prefilterAudit) observeDigest(d Digest) (disagreed uint64, requestAudit bool) {
	if d.Windows == 0 {
		return 0, false
	}
	if thr, warm := a.mirror.Threshold(); warm && d.MaxAmp >= thr*driftSlack {
		// The declared gate, at the baseline the shard reconstructs,
		// would have shipped the span's hottest window — stage 1 is
		// suppressing windows it promised to ship.
		disagreed = 1
	}
	mean := d.SumAmp / float64(d.Windows)
	for i := uint32(0); i < d.Windows; i++ {
		a.mirror.Admit(mean)
	}
	a.sinceAudit += int(d.Windows)
	if a.cfg.AuditEvery == 0 && a.sinceAudit >= auditRequestInterval && !a.requested {
		a.requested = true
		a.sinceAudit = 0
		requestAudit = true
	}
	return disagreed, requestAudit
}

// observeSample replays one audit-sampled suppressed second through
// stage 2 with the session's current model, returning the number of
// disagreements (feature windows the classifier scored positive — since
// the client suppressed the second as interictal-looking).
func (a *prefilterAudit) observeSample(c0, c1 []float64, model *forest.FlatForest) uint64 {
	a.sinceAudit = 0
	a.requested = false
	var disagreed uint64
	for i := range c0 {
		row, ready, err := a.streamer.Push(c0[i], c1[i])
		if err != nil {
			return disagreed
		}
		if !ready || model == nil {
			continue
		}
		a.rowView[0] = row
		model.PredictBatchInto(a.predView[:], a.rowView[:])
		if a.predView[0] {
			disagreed++
		}
	}
	return disagreed
}

// noteDisagreements accumulates audit disagreements and reports whether
// this call crossed the stream's drift threshold (the caller then emits
// EventPrefilterDrift exactly once per declaration).
func (a *prefilterAudit) noteDisagreements(n uint64) (drift bool) {
	if n == 0 {
		return false
	}
	a.disagreements += n
	if !a.driftFired && a.disagreements >= a.cfg.driftThreshold() {
		a.driftFired = true
		return true
	}
	return false
}
