// Package serve multiplexes many patients' self-learning seizure
// detection loops over a bounded worker pool — the serving layer that
// turns the paper's single-patient wearable pipeline into a
// multi-tenant backend.
//
// Each patient gets a session owning the streaming feature extractor
// (internal/features.Streamer), the current random-forest window
// classifier (internal/ml/forest) and the alarm layer (internal/rt).
// Sample batches enter through Submit; a dispatcher shards patients
// across workers by ID hash so one patient's stream is always processed
// in order by a single goroutine, window classifications are batched
// per submission, and per-patient models are cached with LRU eviction
// so an evicted session resumes warm. When a patient confirms a seizure
// (Confirm — the paper's button press), the session's buffered feature
// history is handed to a background learner pool that runs the
// a-posteriori labeling algorithm (internal/core) and retrains the
// forest without stalling the real-time path.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"selflearn/internal/features"
	"selflearn/internal/ml/forest"
	"selflearn/internal/rt"
	"selflearn/internal/signal"
)

// ErrBackpressure is returned by Submit and Confirm when the target
// worker's queue is full. The caller owns the retry policy: a wearable
// gateway would buffer locally and resubmit, a replay harness may drop.
var ErrBackpressure = errors.New("serve: worker queue full")

// ErrClosed is returned by Submit and Confirm after Close.
var ErrClosed = errors.New("serve: server closed")

// Config sizes the serving subsystem. The zero value of every field
// selects a sensible default.
type Config struct {
	// Workers is the number of shard workers; patients are assigned to
	// workers by ID hash. 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds each worker's job queue; a full queue surfaces
	// as ErrBackpressure rather than unbounded memory growth. 0 = 256.
	QueueDepth int
	// MaxSessions caps live sessions per worker; beyond it the least
	// recently used session is evicted (its model survives in the
	// shared cache). 0 = 1024.
	MaxSessions int
	// ModelCacheSize caps the shared per-patient model cache. 0 = 4096.
	ModelCacheSize int
	// Learners is the size of the background retraining pool. 0 = 2.
	Learners int
	// LearnerQueue bounds pending retrain jobs. 0 = 64.
	LearnerQueue int
	// SampleRate of submitted batches in Hz. 0 = signal.DefaultSampleRate.
	SampleRate float64
	// History is how much feature history each session buffers for
	// a-posteriori labeling (the paper buffers one hour). 0 = 1 h.
	History time.Duration
	// AvgSeizureDuration is W, the expert-provided average seizure
	// length used by the labeling algorithm. 0 = 30 s.
	AvgSeizureDuration time.Duration
	// FeatureCfg configures the streaming 10-feature extractor. Zero
	// value = features.DefaultConfig().
	FeatureCfg features.Config
	// AlarmCfg configures k-of-n alarm smoothing. Zero value =
	// rt.DefaultConfig().
	AlarmCfg rt.Config
	// ForestCfg configures retraining. Zero value = forest.DefaultConfig().
	ForestCfg forest.Config
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.ModelCacheSize <= 0 {
		c.ModelCacheSize = 4096
	}
	if c.Learners <= 0 {
		c.Learners = 2
	}
	if c.LearnerQueue <= 0 {
		c.LearnerQueue = 64
	}
	if c.SampleRate == 0 {
		c.SampleRate = signal.DefaultSampleRate
	}
	if c.History <= 0 {
		c.History = time.Hour
	}
	if c.AvgSeizureDuration <= 0 {
		c.AvgSeizureDuration = 30 * time.Second
	}
	// Default the feature config only when it is entirely unset; a
	// partially-built config (e.g. a custom Window with Level left 0)
	// must fail loudly in Validate rather than be silently replaced.
	if c.FeatureCfg.Level == 0 && c.FeatureCfg.Window == (signal.WindowSpec{}) {
		c.FeatureCfg = features.DefaultConfig()
	}
	if c.AlarmCfg == (rt.Config{}) {
		c.AlarmCfg = rt.DefaultConfig()
	}
	if c.ForestCfg == (forest.Config{}) {
		c.ForestCfg = forest.DefaultConfig()
	}
	return c
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// Sessions is the number of live streaming sessions.
	Sessions int
	// SessionsCreated and SessionsEvicted count session table churn.
	SessionsCreated uint64
	SessionsEvicted uint64
	// Batches and BatchesDropped count Submit calls accepted and
	// rejected with ErrBackpressure.
	Batches        uint64
	BatchesDropped uint64
	// Windows is the number of feature windows classified.
	Windows uint64
	// WindowsPerSec is the lifetime classification rate.
	WindowsPerSec float64
	// Alarms is the number of alarms raised across all patients.
	Alarms uint64
	// Confirms counts accepted confirmations; ConfirmsRejected counts
	// Confirm calls refused with ErrBackpressure (the caller saw the
	// error and owns the retry); ConfirmsDropped counts confirmations
	// accepted but then lost to a full learner queue — the only kind
	// invisible to the caller.
	Confirms         uint64
	ConfirmsRejected uint64
	ConfirmsDropped  uint64
	// Retrains and RetrainErrors count background learner outcomes.
	Retrains      uint64
	RetrainErrors uint64
	// StreamErrors counts sample batches whose feature extraction or
	// session construction failed; nonzero values indicate a
	// configuration problem the pre-flight in New did not cover.
	StreamErrors uint64
	// ModelsCached is the shared model-cache occupancy.
	ModelsCached int
	// QueueDepth is the total number of jobs waiting across workers.
	QueueDepth int
	// Uptime since New.
	Uptime time.Duration
}

// Server is the concurrent multi-patient serving subsystem.
type Server struct {
	cfg     Config
	workers []*worker
	learner *learner
	cache   *modelCache
	start   time.Time

	mu     sync.RWMutex // guards closed against in-flight Submit/Confirm
	closed bool

	sessions         atomic.Int64
	sessionsCreated  atomic.Uint64
	sessionsEvicted  atomic.Uint64
	batches          atomic.Uint64
	batchesDropped   atomic.Uint64
	windows          atomic.Uint64
	alarms           atomic.Uint64
	confirms         atomic.Uint64
	confirmsRejected atomic.Uint64
	confirmsDropped  atomic.Uint64
	retrains         atomic.Uint64
	retrainErrors    atomic.Uint64
	streamErrors     atomic.Uint64
}

// New starts a server with cfg's workers and learners running.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.FeatureCfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.AlarmCfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("serve: invalid sample rate %g", cfg.SampleRate)
	}
	hop := cfg.FeatureCfg.Window.Hop().Seconds()
	historyRows := int(cfg.History.Seconds() / hop)
	if historyRows < 1 {
		return nil, fmt.Errorf("serve: history %v shorter than one hop", cfg.History)
	}
	if err := preflight(cfg); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, cache: newModelCache(cfg.ModelCacheSize), start: time.Now()}
	s.learner = newLearner(s, cfg.Learners, cfg.LearnerQueue)
	s.workers = make([]*worker, cfg.Workers)
	for i := range s.workers {
		s.workers[i] = newWorker(s, i, historyRows)
	}
	return s, nil
}

// preflight extracts one feature window through a throwaway streamer so
// configurations whose failure only surfaces at window boundaries (e.g.
// a sample rate too low for the level-7 DWT) are rejected at
// construction instead of silently erroring on every live batch.
func preflight(cfg Config) error {
	st, err := features.NewStreamer(cfg.SampleRate, cfg.FeatureCfg)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	win := cfg.FeatureCfg.Window.SamplesPerWindow(cfg.SampleRate)
	for i := 0; i <= win; i++ {
		v := math.Sin(2 * math.Pi * 7 * float64(i) / cfg.SampleRate)
		if _, _, err := st.Push(v, v); err != nil {
			return fmt.Errorf("serve: feature pipeline rejects this configuration: %w", err)
		}
	}
	return nil
}

// shard maps a patient ID to its worker; a patient's jobs always land
// on the same worker, which preserves per-stream ordering without locks.
func (s *Server) shard(patientID string) *worker {
	h := fnv.New32a()
	h.Write([]byte(patientID))
	return s.workers[h.Sum32()%uint32(len(s.workers))]
}

// Submit enqueues one batch of synchronized two-channel samples for the
// patient. It never blocks: a full worker queue returns
// ErrBackpressure. The server takes ownership of the slices.
func (s *Server) Submit(patientID string, c0, c1 []float64) error {
	if len(c0) != len(c1) {
		return fmt.Errorf("serve: channel length mismatch %d vs %d", len(c0), len(c1))
	}
	if len(c0) == 0 {
		return nil
	}
	return s.enqueue(job{patient: patientID, c0: c0, c1: c1})
}

// Confirm reports the patient's seizure confirmation (the paper's
// button press): the session's buffered feature history is scheduled
// for a-posteriori labeling and detector retraining in the background.
func (s *Server) Confirm(patientID string) error {
	return s.enqueue(job{patient: patientID, confirm: true})
}

func (s *Server) enqueue(j job) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	w := s.shard(j.patient)
	select {
	case w.jobs <- j:
		if j.confirm {
			s.confirms.Add(1)
		} else {
			s.batches.Add(1)
		}
		return nil
	default:
		if j.confirm {
			s.confirmsRejected.Add(1)
		} else {
			s.batchesDropped.Add(1)
		}
		return ErrBackpressure
	}
}

// Snapshot returns current serving statistics.
func (s *Server) Snapshot() Stats {
	depth := 0
	for _, w := range s.workers {
		depth += len(w.jobs)
	}
	up := time.Since(s.start)
	st := Stats{
		Sessions:         int(s.sessions.Load()),
		SessionsCreated:  s.sessionsCreated.Load(),
		SessionsEvicted:  s.sessionsEvicted.Load(),
		Batches:          s.batches.Load(),
		BatchesDropped:   s.batchesDropped.Load(),
		Windows:          s.windows.Load(),
		Alarms:           s.alarms.Load(),
		Confirms:         s.confirms.Load(),
		ConfirmsRejected: s.confirmsRejected.Load(),
		ConfirmsDropped:  s.confirmsDropped.Load(),
		Retrains:         s.retrains.Load(),
		RetrainErrors:    s.retrainErrors.Load(),
		StreamErrors:     s.streamErrors.Load(),
		ModelsCached:     s.cache.Len(),
		QueueDepth:       depth,
		Uptime:           up,
	}
	if secs := up.Seconds(); secs > 0 {
		st.WindowsPerSec = float64(st.Windows) / secs
	}
	return st
}

// Model returns the patient's current trained detector from the shared
// cache, or nil while untrained.
func (s *Server) Model(patientID string) *forest.Forest {
	return s.cache.Get(patientID)
}

// Close drains the worker queues, waits for in-flight retraining to
// finish, and releases all sessions. Submit and Confirm fail with
// ErrClosed afterwards. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, w := range s.workers {
		close(w.jobs)
	}
	for _, w := range s.workers {
		<-w.done
	}
	s.learner.close()
}
