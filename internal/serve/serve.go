// Package serve multiplexes many patients' self-learning seizure
// detection loops over a bounded worker pool — the serving layer that
// turns the paper's single-patient wearable pipeline into a
// multi-tenant backend.
//
// Each patient gets a session owning the streaming feature extractor
// (internal/features.Streamer), the current random-forest window
// classifier (internal/ml/forest) and the alarm layer (internal/rt).
// Callers interact through per-patient Stream handles: Server.Open
// resolves the patient's shard once, and the handle's Push enqueues
// sample batches to that shard, where one goroutine processes the
// stream strictly in order. What happens when a shard queue fills is a
// pluggable AdmissionPolicy (drop, block-with-deadline, or shed-oldest);
// per-patient models sit in a bounded LRU in front of a pluggable
// ModelStore, so trained detectors survive eviction — and, with a
// FileStore, survive restarts. When a patient confirms a seizure
// (Stream.Confirm — the paper's button press), the session's buffered
// feature history is handed to a background learner pool that runs the
// a-posteriori labeling algorithm (internal/core) and retrains the
// forest without stalling the real-time path. Alarms, retrain outcomes
// and session evictions are observable through Events — the paper's
// "alarm to caregivers" as an actual delivery path.
package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"selflearn/internal/features"
	"selflearn/internal/ml/forest"
	"selflearn/internal/rt"
	"selflearn/internal/signal"
)

// ErrBackpressure is returned by Push and Confirm when the stream's
// admission policy gives up on a full shard queue. The caller owns the
// retry policy: a wearable gateway would buffer locally and resubmit, a
// replay harness may drop.
var ErrBackpressure = errors.New("serve: worker queue full")

// ErrClosed is returned by Open, Push and Confirm after Server.Close.
var ErrClosed = errors.New("serve: server closed")

// Config sizes the serving subsystem. The zero value of every field
// selects a sensible default. Policy objects (model store, admission,
// event delivery) are configured separately via Options to New.
type Config struct {
	// Workers is the number of shard workers; patients are assigned to
	// workers by ID hash. 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds each worker's job queue; what happens beyond it
	// is the admission policy's call (default: ErrBackpressure). 0 = 256.
	QueueDepth int
	// MaxSessions caps live sessions per worker; beyond it the least
	// recently used session is evicted (its model survives in the
	// model cache/store). 0 = 1024.
	MaxSessions int
	// Coalesce caps how many ready jobs a worker drains per queue
	// wakeup. Drained jobs from different patients are classified as one
	// cross-patient batch through a shared arena (see dispatch.go);
	// per-patient ordering and attribution are preserved, and windows of
	// the same patient never share a drain. 1 disables coalescing.
	// 0 = 16.
	Coalesce int
	// ModelCacheSize caps the in-memory LRU in front of the model
	// store. 0 = 4096.
	ModelCacheSize int
	// Learners is the size of the background retraining pool. 0 = 2.
	Learners int
	// LearnerQueue bounds pending retrain jobs. 0 = 64.
	LearnerQueue int
	// SampleRate of submitted batches in Hz. 0 = signal.DefaultSampleRate.
	SampleRate float64
	// History is how much feature history each session buffers for
	// a-posteriori labeling (the paper buffers one hour). 0 = 1 h.
	History time.Duration
	// AvgSeizureDuration is W, the expert-provided average seizure
	// length used by the labeling algorithm. 0 = 30 s.
	AvgSeizureDuration time.Duration
	// FeatureCfg configures the streaming 10-feature extractor. Zero
	// value = features.DefaultConfig().
	FeatureCfg features.Config
	// AlarmCfg configures k-of-n alarm smoothing. Zero value =
	// rt.DefaultConfig().
	AlarmCfg rt.Config
	// ForestCfg configures retraining. Zero value = forest.DefaultConfig().
	ForestCfg forest.Config
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.Coalesce <= 0 {
		c.Coalesce = 16
	}
	if c.ModelCacheSize <= 0 {
		c.ModelCacheSize = 4096
	}
	if c.Learners <= 0 {
		c.Learners = 2
	}
	if c.LearnerQueue <= 0 {
		c.LearnerQueue = 64
	}
	if c.SampleRate == 0 {
		c.SampleRate = signal.DefaultSampleRate
	}
	if c.History <= 0 {
		c.History = time.Hour
	}
	if c.AvgSeizureDuration <= 0 {
		c.AvgSeizureDuration = 30 * time.Second
	}
	// Default the feature config only when it is entirely unset; a
	// partially-built config (e.g. a custom Window with Level left 0)
	// must fail loudly in Validate rather than be silently replaced.
	if c.FeatureCfg.Level == 0 && c.FeatureCfg.Window == (signal.WindowSpec{}) {
		c.FeatureCfg = features.DefaultConfig()
	}
	if c.AlarmCfg == (rt.Config{}) {
		c.AlarmCfg = rt.DefaultConfig()
	}
	if c.ForestCfg == (forest.Config{}) {
		c.ForestCfg = forest.DefaultConfig()
	}
	return c
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// Sessions is the number of live streaming sessions; StreamsOpen is
	// the number of un-Closed handles returned by Open.
	Sessions    int
	StreamsOpen int
	// SessionsCreated and SessionsEvicted count session table churn.
	SessionsCreated uint64
	SessionsEvicted uint64
	// Batches and BatchesDropped count Pushes accepted and rejected
	// with ErrBackpressure; BatchesShed counts batches accepted but
	// later discarded by a ShedOldest admission to make room.
	Batches        uint64
	BatchesDropped uint64
	BatchesShed    uint64
	// QualityRejected counts accepted batches the quality prefilter
	// refused before feature extraction (WithPrefilter) — garbage
	// seconds that never burned classifier time. Always 0 without a
	// prefilter.
	QualityRejected uint64
	// Windows is the number of feature windows classified.
	Windows uint64
	// WindowsPerSec is the classification rate over the interval since
	// the previous Snapshot call (the first call measures since start).
	// Unlike a lifetime average it does not go stale on long-running
	// servers; each Snapshot resets the interval.
	WindowsPerSec float64
	// Alarms is the number of alarms raised across all patients.
	Alarms uint64
	// Confirms counts accepted confirmations; ConfirmsRejected counts
	// Confirm calls refused with ErrBackpressure (the caller saw the
	// error and owns the retry); ConfirmsDropped counts confirmations
	// accepted but then lost inside the server — to a full learner
	// queue, or under ShedOldest to a failed re-enqueue on a saturated
	// shard — the only kind invisible to the caller.
	Confirms         uint64
	ConfirmsRejected uint64
	ConfirmsDropped  uint64
	// Retrains and RetrainErrors count background learner outcomes.
	Retrains      uint64
	RetrainErrors uint64
	// StreamErrors counts sample batches whose feature extraction or
	// session construction failed; nonzero values indicate a
	// configuration problem the pre-flight in New did not cover.
	StreamErrors uint64
	// ModelsCached is the in-memory model LRU occupancy; StoreErrors
	// counts ModelStore load/save failures (treated as cache misses).
	ModelsCached int
	StoreErrors  uint64
	// WindowsSuppressed counts windows a client-side prefilter reported
	// suppressing (via digests) instead of shipping — the uplink seconds
	// the edge/cloud split saved. AuditSamples counts suppressed windows
	// the client shipped at full rate for auditing; AuditDisagreements
	// counts audit checks where the shard disagreed with the client's
	// suppression (a digest amplitude above the declared gate's trigger
	// level, or an audited window stage 2 classified positive);
	// PrefilterDrift counts EventPrefilterDrift emissions (disagreements
	// crossing a stream's declared threshold). All 0 without a declared
	// prefilter.
	WindowsSuppressed  uint64
	AuditSamples       uint64
	AuditDisagreements uint64
	PrefilterDrift     uint64
	// EventsDropped counts events lost to a lagging Events subscriber.
	EventsDropped uint64
	// QueueDepth is the total number of jobs waiting across workers.
	QueueDepth int
	// Uptime since New.
	Uptime time.Duration
}

// Server is the concurrent multi-patient serving subsystem. Its
// streams reach their shards through the local ShardTransport (the
// in-process worker pool); internal/cluster serves the same workload
// shape across shardd processes behind the same interface.
type Server struct {
	cfg       Config
	admission AdmissionPolicy
	prefilter Prefilter
	transport *localTransport
	learner   *learner
	cache     *modelCache
	hub       *eventHub
	start     time.Time

	mu     sync.RWMutex // guards closed against in-flight Open/Push/Confirm
	closed bool
	// closedFast mirrors closed for lock-free reads on the Push fast
	// paths (set in Close before the workers drain); the mutex remains
	// the authority for the channel-close handshake.
	closedFast atomic.Bool

	// snapMu guards the rate-sampling state behind Stats.WindowsPerSec.
	snapMu      sync.Mutex
	lastSnap    time.Time
	lastWindows uint64
	lastRate    float64

	sessions         atomic.Int64
	streamsOpen      atomic.Int64
	sessionsCreated  atomic.Uint64
	sessionsEvicted  atomic.Uint64
	batches          atomic.Uint64
	batchesDropped   atomic.Uint64
	batchesShed      atomic.Uint64
	qualityRejected  atomic.Uint64
	windows          atomic.Uint64
	alarms           atomic.Uint64
	confirms         atomic.Uint64
	confirmsRejected atomic.Uint64
	confirmsDropped  atomic.Uint64
	retrains         atomic.Uint64
	retrainErrors    atomic.Uint64
	streamErrors     atomic.Uint64
	storeErrors      atomic.Uint64

	windowsSuppressed  atomic.Uint64
	auditSamples       atomic.Uint64
	auditDisagreements atomic.Uint64
	prefilterDrift     atomic.Uint64
}

// New starts a server with cfg's workers and learners running. Options
// plug in the model store, the admission policy, and event delivery.
func New(cfg Config, opts ...Option) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.FeatureCfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.AlarmCfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("serve: invalid sample rate %g", cfg.SampleRate)
	}
	hop := cfg.FeatureCfg.Window.Hop().Seconds()
	historyRows := int(cfg.History.Seconds() / hop)
	if historyRows < 1 {
		return nil, fmt.Errorf("serve: history %v shorter than one hop", cfg.History)
	}
	if err := preflight(cfg); err != nil {
		return nil, err
	}
	so := defaultServerOptions()
	for _, opt := range opts {
		opt(&so)
	}
	s := &Server{cfg: cfg, admission: so.admission, prefilter: so.prefilter, start: time.Now()}
	s.lastSnap = s.start
	s.hub = newEventHub(so.eventBuffer, so.sink)
	s.cache = newModelCache(cfg.ModelCacheSize, so.store, func(error) { s.storeErrors.Add(1) })
	s.learner = newLearner(s, cfg.Learners, cfg.LearnerQueue)
	s.transport = newLocalTransport(s, historyRows)
	return s, nil
}

// preflight extracts one feature window through a throwaway streamer so
// configurations whose failure only surfaces at window boundaries (e.g.
// a sample rate too low for the level-7 DWT) are rejected at
// construction instead of silently erroring on every live batch.
func preflight(cfg Config) error {
	st, err := features.NewStreamer(cfg.SampleRate, cfg.FeatureCfg)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	win := cfg.FeatureCfg.Window.SamplesPerWindow(cfg.SampleRate)
	for i := 0; i <= win; i++ {
		v := math.Sin(2 * math.Pi * 7 * float64(i) / cfg.SampleRate)
		if _, _, err := st.Push(v, v); err != nil {
			return fmt.Errorf("serve: feature pipeline rejects this configuration: %w", err)
		}
	}
	return nil
}

// shardHash is FNV-1a inlined: the stdlib hash/fnv constructor
// allocates a hasher object per call, which is pure garbage on a path
// that hashes a short string once.
func shardHash(patientID string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(patientID); i++ {
		h ^= uint32(patientID[i])
		h *= 16777619
	}
	return h
}

// enqueue runs one job through the admission policy against the
// stream's shard, maintaining the server-wide accept/reject counters.
// The read lock is the closed handshake: Close takes the write lock
// before closing the shard queues, so no admit is in flight when they
// close.
func (s *Server) enqueue(sh Shard, adm AdmissionPolicy, j Job) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	err := sh.Enqueue(adm, j) //selflearn:locked-ok the read lock is the closed handshake documented above
	switch {
	case err == nil && j.Confirm:
		s.confirms.Add(1)
	case err == nil:
		s.batches.Add(1)
	case j.Confirm:
		s.confirmsRejected.Add(1)
	default:
		s.batchesDropped.Add(1)
	}
	return err
}

// Snapshot returns current serving statistics. Snapshot is also the
// rate sampling point: WindowsPerSec covers the interval since the
// previous Snapshot call, so a periodic stats loop sees the current
// rate rather than a lifetime average diluted by hours of history.
func (s *Server) Snapshot() Stats {
	now := time.Now()
	st := Stats{
		Sessions:           int(s.sessions.Load()),
		StreamsOpen:        int(s.streamsOpen.Load()),
		SessionsCreated:    s.sessionsCreated.Load(),
		SessionsEvicted:    s.sessionsEvicted.Load(),
		Batches:            s.batches.Load(),
		BatchesDropped:     s.batchesDropped.Load(),
		BatchesShed:        s.batchesShed.Load(),
		QualityRejected:    s.qualityRejected.Load(),
		Windows:            s.windows.Load(),
		Alarms:             s.alarms.Load(),
		Confirms:           s.confirms.Load(),
		ConfirmsRejected:   s.confirmsRejected.Load(),
		ConfirmsDropped:    s.confirmsDropped.Load(),
		Retrains:           s.retrains.Load(),
		RetrainErrors:      s.retrainErrors.Load(),
		StreamErrors:       s.streamErrors.Load(),
		ModelsCached:       s.cache.Len(),
		StoreErrors:        s.storeErrors.Load(),
		WindowsSuppressed:  s.windowsSuppressed.Load(),
		AuditSamples:       s.auditSamples.Load(),
		AuditDisagreements: s.auditDisagreements.Load(),
		PrefilterDrift:     s.prefilterDrift.Load(),
		EventsDropped:      s.hub.dropped.Load(),
		QueueDepth:         s.transport.Depth(),
		Uptime:             now.Sub(s.start),
	}
	st.WindowsPerSec = s.sampleWindowRate(now)
	return st
}

// sampleWindowRate advances the WindowsPerSec interval sampler to now
// and returns the current rate. The counter is re-sampled under snapMu:
// a sample loaded outside the lock would race with other Snapshot
// callers, and a stale sample underflows the uint64 delta into an
// absurd rate. Under the lock the monotonic counter can only have
// advanced past lastWindows. A non-positive dt — two Snapshots within
// the same clock tick, or clock reads reordered across callers — skips
// the resample and returns the last completed interval's rate, so the
// result is always finite: never the Inf/NaN a naive delta/dt would
// produce, and 0 before any interval has completed.
func (s *Server) sampleWindowRate(now time.Time) float64 {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if dt := now.Sub(s.lastSnap).Seconds(); dt > 0 {
		windows := s.windows.Load()
		s.lastRate = float64(windows-s.lastWindows) / dt
		s.lastSnap = now
		s.lastWindows = windows
	}
	return s.lastRate
}

// Events returns the server's event stream: every alarm, retrain
// outcome and session eviction, in emission order per shard. The
// channel is closed by Server.Close after all pending work drained, so
// a subscriber can simply range over it. Delivery never blocks serving:
// a subscriber more than the event buffer behind loses events, counted
// in Stats.EventsDropped. All callers share one channel — each event is
// delivered to exactly one receiver.
func (s *Server) Events() <-chan Event {
	return s.hub.events()
}

// Model returns the patient's current trained detector from the model
// cache (reading through to the store), or nil while untrained.
func (s *Server) Model(patientID string) *forest.FlatForest {
	return s.cache.Get(patientID)
}

// ModelVersioned returns the patient's current trained detector and
// its monotonic model version from the model cache (reading through to
// the store), or (nil, 0) while untrained. A checkpoint predating
// versioning reports version 0.
func (s *Server) ModelVersioned(patientID string) (*forest.FlatForest, uint64) {
	return s.cache.GetVersioned(patientID)
}

// InstallModel installs an externally-produced model version for a
// patient — a replica pushed by a peer shard, or a checkpoint a router
// transferred during failover. Only a version strictly newer than
// everything this server has seen installs (so replays and replica
// ping-pong are harmless); an install is checkpointed to the store,
// announced via EventModelUpdated, and picked up by any live session on
// its next batch through the per-batch cache reconcile. Returns whether
// the install took effect.
func (s *Server) InstallModel(patientID string, f *forest.FlatForest, version uint64) bool {
	if patientID == "" || f == nil || version == 0 {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	if !s.cache.Install(patientID, f, version) { //selflearn:locked-ok the read lock is the closed handshake; Close's write lock waits installs out
		return false
	}
	s.hub.emit(Event{Kind: EventModelUpdated, Patient: patientID, Version: version}) //selflearn:locked-ok the read lock guarantees no emit after Close's hub.close

	return true
}

// Close drains the worker queues, waits for in-flight retraining to
// finish, closes the Events channel, and releases all sessions. Open,
// Push and Confirm fail with ErrClosed afterwards. A blocking admission
// in flight (BlockWithDeadline) delays Close by at most its deadline.
// Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.closedFast.Store(true)
	s.mu.Unlock()
	s.transport.Close()
	s.learner.close()
	s.hub.close()
}
