package serve

// This file is the transport seam of the serving layer: the pieces a
// session handle uses to reach its shard without knowing whether that
// shard is a goroutine in this process (localTransport, dispatch.go) or
// a shardd process across the network (internal/cluster.Router). The
// contract is deliberately narrow — resolve a patient to a Shard once,
// then push admission-governed Jobs at it — so the zero-alloc local hot
// path and the TCP path share one admission layer and one behavioral
// test suite (internal/serve/servetest).

// Job is one unit of shard input crossing a transport: a sample batch
// (C0/C1), a seizure confirmation, or one of the prefilter kinds — a
// gate declaration, a suppressed-span digest, or an audit-sampled
// window (C0/C1 with Audit set). All kinds flow through the same queue
// so a patient's frames are processed strictly in submission order.
// The shard takes ownership of the slices.
type Job struct {
	Patient string
	C0, C1  []float64
	Confirm bool
	// Declare announces the stream's client-side prefilter to the
	// shard-side audit; Digest reports a span of suppressed windows;
	// Audit marks C0/C1 as a full-rate sample of a suppressed window
	// (stage-2 audit replay, not session ingest).
	Declare *PrefilterConfig
	Digest  *Digest
	Audit   bool
	// Stream observes per-stream outcomes for the handle that produced
	// the job (shed counts on discard; windows/alarms on local
	// processing). Nil for jobs without an attached handle.
	Stream StreamObserver
}

// StreamObserver receives per-stream attribution from the shard side of
// a transport. *Stream implements it for local handles; the cluster
// client's handles implement it for jobs queued toward a remote shard.
type StreamObserver interface {
	// NoteShed records one of the stream's accepted batches being
	// discarded (ShedOldest admission, or a cluster transport dropping
	// in-flight jobs when its connection died).
	NoteShed()
	// NoteWindows and NoteAlarms record feature windows classified and
	// alarms raised from the stream's batches. Only the local transport
	// calls these; remote attribution arrives as events instead.
	NoteWindows(n int)
	NoteAlarms(n int)
	// NoteRejected records one of the stream's accepted batches refused
	// by the quality prefilter before feature extraction. Only the
	// local transport calls it; remote rejections arrive as
	// EventQualityReject events.
	NoteRejected()
}

// QueueHooks observe queue-level outcomes that bypass the caller: jobs
// accepted earlier and then discarded to make room.
type QueueHooks struct {
	// Shed is called for each admitted batch discarded by a ShedOldest
	// admission (per-stream attribution via Job.Stream happens
	// separately).
	Shed func(Job)
	// ConfirmLost is called when a confirmation could not be preserved
	// while shedding — the only loss invisible to the confirming caller.
	ConfirmLost func(Job)
}

// Queue is a bounded shard-input queue governed by an AdmissionPolicy —
// the unit both transports share. The local worker drains its queue
// into sessions; the cluster client drains its per-shard queue into a
// TCP connection. Admission semantics (drop, block, shed) are identical
// on both sides of that split because they act on the Queue, not on
// what consumes it.
type Queue struct {
	jobs  chan Job
	hooks QueueHooks
}

// NewQueue returns a queue holding at most depth jobs (0 = 256).
func NewQueue(depth int, hooks QueueHooks) *Queue {
	if depth <= 0 {
		depth = 256
	}
	return &Queue{jobs: make(chan Job, depth), hooks: hooks}
}

// Offer runs one job through p against this queue: nil when the job was
// placed (possibly after blocking or shedding, per the policy),
// ErrBackpressure when the policy gave up.
func (q *Queue) Offer(p AdmissionPolicy, j Job) error { return p.admit(q, j) }

// FastReject reports whether p would certainly refuse a job right now —
// the cheap overload path, checked before a job is even built. Racy by
// design (the queue may drain concurrently).
func (q *Queue) FastReject(p AdmissionPolicy) bool { return p.fastReject(q) }

// C returns the consumer side of the queue. It is closed by Close.
func (q *Queue) C() <-chan Job { return q.jobs }

// TryRecv pops one queued job without blocking.
func (q *Queue) TryRecv() (Job, bool) {
	select {
	case j, ok := <-q.jobs:
		return j, ok
	default:
		return Job{}, false
	}
}

// Depth returns the number of queued jobs; Cap the queue's bound.
func (q *Queue) Depth() int { return len(q.jobs) }

// Cap returns the queue's capacity.
func (q *Queue) Cap() int { return cap(q.jobs) }

// Close closes the consumer channel. No Offer may be in flight or
// follow — owners serialize Close against producers (Server does it
// under its closed-handshake lock).
func (q *Queue) Close() { close(q.jobs) }

// noteShed records an admitted batch discarded to make room: per-stream
// attribution first, then the owner's hook (server counters + event).
func (q *Queue) noteShed(j Job) {
	if j.Stream != nil {
		j.Stream.NoteShed()
	}
	if q.hooks.Shed != nil {
		q.hooks.Shed(j)
	}
}

// noteConfirmLost records a confirmation lost while shedding.
func (q *Queue) noteConfirmLost(j Job) {
	if q.hooks.ConfirmLost != nil {
		q.hooks.ConfirmLost(j)
	}
}

// Shard is one shard's job intake as seen from a session handle. A
// handle resolves its Shard once at Open and then only enqueues.
type Shard interface {
	// Enqueue runs j through p against this shard's queue.
	Enqueue(p AdmissionPolicy, j Job) error
	// Congested reports whether p would certainly refuse a job now —
	// the pre-lock fast path of Stream.Push.
	Congested(p AdmissionPolicy) bool
	// Depth returns the number of jobs waiting on this shard.
	Depth() int
}

// ShardTransport routes patients to shards. The local implementation
// hashes over in-process workers (dispatch.go); the cluster
// implementation (internal/cluster.Router) rendezvous-hashes over
// healthy shardd TCP connections with reconnect and failover.
type ShardTransport interface {
	// Shard resolves a patient to their shard. Resolution happens once
	// per Open so the per-batch path is routing-free; it fails only
	// when no shard can currently accept the patient (a cluster with
	// every backend down).
	Shard(patientID string) (Shard, error)
	// Depth returns the total number of jobs waiting across shards.
	Depth() int
	// Close releases the transport's shards. For the local transport
	// this drains and stops the worker pool.
	Close()
}

// QueueShard adapts a bare Queue into a Shard — the building block
// remote transports wrap around their outbound queues, and the harness
// the shared admission suite runs against.
func QueueShard(q *Queue) Shard { return queueShard{q} }

type queueShard struct{ q *Queue }

func (s queueShard) Enqueue(p AdmissionPolicy, j Job) error { return s.q.Offer(p, j) }
func (s queueShard) Congested(p AdmissionPolicy) bool       { return s.q.FastReject(p) }
func (s queueShard) Depth() int                             { return s.q.Depth() }
