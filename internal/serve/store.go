package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sync"

	"selflearn/internal/ml/forest"
)

// ModelStore is the persistence layer behind the in-process model
// cache: trained per-patient detectors outlive LRU eviction — and, with
// a durable implementation, the process itself. The serving layer works
// entirely on the inference-optimized forest.FlatForest; the on-disk
// interchange format is unchanged (see FileStore). Implementations must
// be safe for concurrent use.
type ModelStore interface {
	// Load returns the patient's checkpointed detector, or (nil, nil)
	// when none is stored.
	Load(patientID string) (*forest.FlatForest, error)
	// Save checkpoints the patient's detector, replacing any previous one.
	Save(patientID string, f *forest.FlatForest) error
}

// VersionedStore extends ModelStore with monotonic per-patient model
// versions — the identity the replication and warm-failover paths key
// on. Version 0 means "pre-versioning checkpoint": LoadVersion must
// accept checkpoints written before versions existed and report them as
// version 0, so a fleet can be upgraded in place. The caller (the model
// cache) owns version allocation; stores only persist what they are
// told.
type VersionedStore interface {
	ModelStore
	// LoadVersion returns the patient's checkpointed detector and its
	// version, or (nil, 0, nil) when none is stored. A checkpoint
	// predating versioning loads with version 0.
	LoadVersion(patientID string) (*forest.FlatForest, uint64, error)
	// SaveVersion checkpoints the patient's detector stamped with
	// version. Version 0 writes an unversioned (pre-versioning format)
	// checkpoint.
	SaveVersion(patientID string, f *forest.FlatForest, version uint64) error
}

// AsVersioned adapts any ModelStore to the VersionedStore contract. A
// store that is already versioned is returned as is; other stores are
// wrapped with an in-process version table, so versions work (within
// one process lifetime) even for stores that cannot persist them.
func AsVersioned(st ModelStore) VersionedStore {
	if st == nil {
		return nil
	}
	if vs, ok := st.(VersionedStore); ok {
		return vs
	}
	return &versionShim{inner: st, versions: make(map[string]uint64)}
}

// versionShim bolts an in-memory version table onto an unversioned
// store. Versions reset with the process — exactly the durability of
// the wrapped store's own data cannot exceed anyway.
type versionShim struct {
	inner    ModelStore
	mu       sync.Mutex
	versions map[string]uint64
}

func (s *versionShim) Load(patientID string) (*forest.FlatForest, error) {
	return s.inner.Load(patientID)
}

func (s *versionShim) Save(patientID string, f *forest.FlatForest) error {
	return s.inner.Save(patientID, f)
}

func (s *versionShim) LoadVersion(patientID string) (*forest.FlatForest, uint64, error) {
	f, err := s.inner.Load(patientID)
	if f == nil || err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	v := s.versions[patientID]
	s.mu.Unlock()
	return f, v, nil
}

func (s *versionShim) SaveVersion(patientID string, f *forest.FlatForest, version uint64) error {
	if err := s.inner.Save(patientID, f); err != nil {
		return err
	}
	s.mu.Lock()
	if version > s.versions[patientID] {
		s.versions[patientID] = version
	}
	s.mu.Unlock()
	return nil
}

// memEntry is one MemoryStore checkpoint: the detector plus its version.
type memEntry struct {
	f       *forest.FlatForest
	version uint64
}

// MemoryStore keeps checkpoints in an in-process map: models evicted
// from the bounded LRU cache remain reloadable for the life of the
// process, but do not survive a restart. The map never evicts — across
// unbounded patient churn, prefer a FileStore or no store at all
// (Config.ModelCacheSize then caps model memory).
type MemoryStore struct {
	mu sync.RWMutex
	m  map[string]memEntry
}

// NewMemoryStore returns an empty in-memory model store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{m: make(map[string]memEntry)}
}

// Load implements ModelStore.
func (s *MemoryStore) Load(patientID string) (*forest.FlatForest, error) {
	f, _, err := s.LoadVersion(patientID)
	return f, err
}

// LoadVersion implements VersionedStore.
func (s *MemoryStore) LoadVersion(patientID string) (*forest.FlatForest, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e := s.m[patientID]
	return e.f, e.version, nil
}

// Save implements ModelStore.
func (s *MemoryStore) Save(patientID string, f *forest.FlatForest) error {
	return s.SaveVersion(patientID, f, 0)
}

// SaveVersion implements VersionedStore.
func (s *MemoryStore) SaveVersion(patientID string, f *forest.FlatForest, version uint64) error {
	if f == nil {
		return fmt.Errorf("serve: nil model for %q", patientID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[patientID] = memEntry{f: f, version: version}
	return nil
}

// Len returns the number of stored checkpoints.
func (s *MemoryStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// FileStore persists one JSON forest checkpoint per patient under a
// directory, using the ml/forest serialization format shared with
// cmd/deploy (FlatForest.Save writes it and forest.LoadFlat reads it,
// so checkpoints interoperate with pointer-forest tools in both
// directions). A server restarted against the same directory serves
// previously-trained patients warm. Writes are atomic (temp file +
// rename), so a crash mid-checkpoint leaves the previous one intact.
//
// Versioned checkpoints carry the model version as an extra
// "model_version" field in the JSON header, alongside the forest
// fields. Forest loaders ignore unknown fields, so a versioned
// checkpoint still loads in every pointer-forest tool; a pre-versioning
// checkpoint (no header field) loads here as version 0.
type FileStore struct {
	dir string
}

// NewFileStore creates dir if needed and returns a store rooted there.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: model store: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the checkpoint directory.
func (s *FileStore) Dir() string { return s.dir }

// path maps a patient ID to its checkpoint file; IDs are URL-escaped so
// arbitrary strings ("ward-3/bed 12") stay within one flat directory.
func (s *FileStore) path(patientID string) string {
	return filepath.Join(s.dir, url.PathEscape(patientID)+".forest.json")
}

// PathFor exposes the patient's checkpoint file path — the seam tooling
// (fault injection's torn-write store, operational scripts) uses to
// reach a checkpoint on disk without re-deriving the escaping rules.
func (s *FileStore) PathFor(patientID string) string { return s.path(patientID) }

// quarantine moves a corrupt checkpoint aside under a name no future
// corruption will reuse, so back-to-back failures never overwrite the
// forensic evidence of an earlier one: the first lands at
// <checkpoint>.corrupt, later ones at <checkpoint>.corrupt.1, .2, …
func (s *FileStore) quarantine(path string) {
	for i := 0; i < 10000; i++ {
		dest := path + ".corrupt"
		if i > 0 {
			dest = fmt.Sprintf("%s.corrupt.%d", path, i)
		}
		if _, err := os.Stat(dest); err == nil {
			continue // already holds an earlier corpse; keep it
		}
		if os.Rename(path, dest) == nil {
			return
		}
	}
	// Quarantine failed (e.g. a read-only directory): remove the bad
	// file as a last resort so the patient is not wedged on a
	// permanently unreadable checkpoint.
	os.Remove(path)
}

// Load implements ModelStore; a missing checkpoint is (nil, nil). A
// checkpoint that fails to parse — truncated by a crash predating
// atomic writes, or corrupted on disk — is quarantined (renamed to a
// unique <checkpoint>.corrupt* name) rather than left to fail every
// future load: the first Load reports the error once (surfacing in
// Stats.StoreErrors, with the serving path treating it as a miss so
// the patient streams untrained instead of failing), subsequent Loads
// see a clean miss, and the next retrain checkpoints normally. The
// quarantined bytes are kept for forensics.
func (s *FileStore) Load(patientID string) (*forest.FlatForest, error) {
	f, _, err := s.LoadVersion(patientID)
	return f, err
}

// checkpointHeader is the version envelope read off a checkpoint before
// the forest itself is parsed. Absent on pre-versioning checkpoints.
type checkpointHeader struct {
	Version uint64 `json:"model_version"`
}

// LoadVersion implements VersionedStore with Load's quarantine
// semantics. A corrupt checkpoint still reports any version salvaged
// from its header prefix alongside the error: the caller keeps the
// monotonic sequence even though the model is lost, so the next
// publish does not regress to version 1 — which every replica holder
// would refuse as stale, and which a later failover transfer would
// then overwrite with an older detector.
func (s *FileStore) LoadVersion(patientID string) (*forest.FlatForest, uint64, error) {
	path := s.path(patientID)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("serve: model store: %w", err)
	}
	f, err := forest.LoadFlat(bytes.NewReader(data))
	if err != nil {
		s.quarantine(path)
		return nil, salvageVersion(data), fmt.Errorf("serve: model store: corrupt checkpoint for %q (quarantined): %w", patientID, err)
	}
	var hdr checkpointHeader
	// A checkpoint the forest loader accepted is well-formed JSON; a
	// missing model_version field simply leaves the version at 0
	// (pre-versioning checkpoint).
	_ = json.Unmarshal(data, &hdr)
	return f, hdr.Version, nil
}

// salvageVersion recovers the model version from a checkpoint too
// corrupt to parse as JSON. SaveVersion writes the header field first
// for exactly this reason: truncation — the common corruption, a crash
// mid-write predating atomic renames — keeps the prefix intact, so a
// bounded byte scan still reads the version.
func salvageVersion(data []byte) uint64 {
	const prefix = `{"model_version":`
	if !bytes.HasPrefix(data, []byte(prefix)) {
		return 0
	}
	var v uint64
	for _, c := range data[len(prefix):] {
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + uint64(c-'0')
	}
	return v
}

// Save implements ModelStore, writing an unversioned checkpoint.
func (s *FileStore) Save(patientID string, f *forest.FlatForest) error {
	return s.SaveVersion(patientID, f, 0)
}

// SaveVersion implements VersionedStore: the version is stamped into
// the checkpoint's JSON header, so it survives restarts and crosses to
// any peer the file is replicated to.
func (s *FileStore) SaveVersion(patientID string, f *forest.FlatForest, version uint64) error {
	if f == nil {
		return fmt.Errorf("serve: nil model for %q", patientID)
	}
	data, err := f.MarshalJSON()
	if err != nil {
		return fmt.Errorf("serve: model store: %w", err)
	}
	if version > 0 {
		data = stampVersion(data, version)
	}
	tmp, err := os.CreateTemp(s.dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("serve: model store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: model store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: model store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(patientID)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: model store: %w", err)
	}
	return nil
}

// stampVersion splices a model_version field into the front of a
// marshaled forest object. The forest marshaler always emits a JSON
// object, so the first byte is '{'; writing the field first keeps the
// header readable with a bounded prefix read.
func stampVersion(forestJSON []byte, version uint64) []byte {
	out := make([]byte, 0, len(forestJSON)+32)
	out = append(out, fmt.Sprintf(`{"model_version":%d,`, version)...)
	return append(out, forestJSON[1:]...)
}
