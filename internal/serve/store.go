package serve

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sync"

	"selflearn/internal/ml/forest"
)

// ModelStore is the persistence layer behind the in-process model
// cache: trained per-patient detectors outlive LRU eviction — and, with
// a durable implementation, the process itself. The serving layer works
// entirely on the inference-optimized forest.FlatForest; the on-disk
// interchange format is unchanged (see FileStore). Implementations must
// be safe for concurrent use.
type ModelStore interface {
	// Load returns the patient's checkpointed detector, or (nil, nil)
	// when none is stored.
	Load(patientID string) (*forest.FlatForest, error)
	// Save checkpoints the patient's detector, replacing any previous one.
	Save(patientID string, f *forest.FlatForest) error
}

// MemoryStore keeps checkpoints in an in-process map: models evicted
// from the bounded LRU cache remain reloadable for the life of the
// process, but do not survive a restart. The map never evicts — across
// unbounded patient churn, prefer a FileStore or no store at all
// (Config.ModelCacheSize then caps model memory).
type MemoryStore struct {
	mu sync.RWMutex
	m  map[string]*forest.FlatForest
}

// NewMemoryStore returns an empty in-memory model store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{m: make(map[string]*forest.FlatForest)}
}

// Load implements ModelStore.
func (s *MemoryStore) Load(patientID string) (*forest.FlatForest, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[patientID], nil
}

// Save implements ModelStore.
func (s *MemoryStore) Save(patientID string, f *forest.FlatForest) error {
	if f == nil {
		return fmt.Errorf("serve: nil model for %q", patientID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[patientID] = f
	return nil
}

// Len returns the number of stored checkpoints.
func (s *MemoryStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// FileStore persists one JSON forest checkpoint per patient under a
// directory, using the ml/forest serialization format shared with
// cmd/deploy (FlatForest.Save writes it and forest.LoadFlat reads it,
// so checkpoints interoperate with pointer-forest tools in both
// directions). A server restarted against the same directory serves
// previously-trained patients warm. Writes are atomic (temp file +
// rename), so a crash mid-checkpoint leaves the previous one intact.
type FileStore struct {
	dir string
}

// NewFileStore creates dir if needed and returns a store rooted there.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: model store: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the checkpoint directory.
func (s *FileStore) Dir() string { return s.dir }

// path maps a patient ID to its checkpoint file; IDs are URL-escaped so
// arbitrary strings ("ward-3/bed 12") stay within one flat directory.
func (s *FileStore) path(patientID string) string {
	return filepath.Join(s.dir, url.PathEscape(patientID)+".forest.json")
}

// Load implements ModelStore; a missing checkpoint is (nil, nil). A
// checkpoint that fails to parse — truncated by a crash predating
// atomic writes, or corrupted on disk — is quarantined (renamed to
// <checkpoint>.corrupt) rather than left to fail every future load:
// the first Load reports the error once (surfacing in
// Stats.StoreErrors, with the serving path treating it as a miss so
// the patient streams untrained instead of failing), subsequent Loads
// see a clean miss, and the next retrain checkpoints normally. The
// quarantined bytes are kept for forensics.
func (s *FileStore) Load(patientID string) (*forest.FlatForest, error) {
	path := s.path(patientID)
	r, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: model store: %w", err)
	}
	defer r.Close()
	f, err := forest.LoadFlat(r)
	if err != nil {
		if qerr := os.Rename(path, path+".corrupt"); qerr != nil {
			// Quarantine failed (e.g. a read-only directory): remove the
			// bad file as a last resort so the patient is not wedged on
			// a permanently unreadable checkpoint.
			os.Remove(path)
		}
		return nil, fmt.Errorf("serve: model store: corrupt checkpoint for %q (quarantined): %w", patientID, err)
	}
	return f, nil
}

// Save implements ModelStore.
func (s *FileStore) Save(patientID string, f *forest.FlatForest) error {
	if f == nil {
		return fmt.Errorf("serve: nil model for %q", patientID)
	}
	tmp, err := os.CreateTemp(s.dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("serve: model store: %w", err)
	}
	if err := f.Save(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: model store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: model store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(patientID)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: model store: %w", err)
	}
	return nil
}
