package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"selflearn/internal/ml/forest"
)

// tinyForest trains a trivially separable two-feature detector and
// flattens it to the serving representation.
func tinyForest(t testing.TB, seed int64) *forest.FlatForest {
	t.Helper()
	X := [][]float64{{0, 0}, {1, 1}, {0, 0.1}, {1, 0.9}, {0.1, 0}, {0.9, 1}}
	y := []bool{false, true, false, true, false, true}
	f, err := forest.Train(X, y, forest.Config{NumTrees: 5, MinLeaf: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f.Flatten()
}

func TestFileStoreRoundTrip(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if f, err := fs.Load("absent"); err != nil || f != nil {
		t.Fatalf("Load(absent) = %v, %v; want nil, nil", f, err)
	}
	// An ID with path-hostile characters must stay one flat file.
	const id = "ward-3/bed 12"
	f := tinyForest(t, 1)
	if err := fs.Save(id, f); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{0, 0}, {1, 1}, {0.05, 0.05}, {0.95, 0.95}} {
		if got.Predict(x) != f.Predict(x) {
			t.Fatalf("reloaded forest disagrees on %v", x)
		}
	}
	// Overwrite replaces the checkpoint rather than accumulating files.
	if err := fs.Save(id, tinyForest(t, 2)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(fs.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir holds %d files, want 1", len(entries))
	}
	if err := fs.Save(id, nil); err == nil {
		t.Fatal("Save(nil) accepted")
	}
}

// TestFileStoreFlatCheckpointInterop proves checkpoints cross the
// representation boundary in both directions: a pointer-forest
// checkpoint (as cmd/deploy writes) loads into the serving FlatForest,
// and a FlatForest checkpoint loads back as a pointer forest, with
// identical predictions throughout.
func TestFileStoreFlatCheckpointInterop(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	X := [][]float64{{0, 0}, {1, 1}, {0, 0.1}, {1, 0.9}, {0.1, 0}, {0.9, 1}}
	y := []bool{false, true, false, true, false, true}
	pointer, err := forest.Train(X, y, forest.Config{NumTrees: 7, MinLeaf: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	probe := [][]float64{{0, 0}, {1, 1}, {0.05, 0.02}, {0.97, 0.95}, {0.5, 0.5}}

	// Pointer checkpoint on disk → flat serving load.
	f, err := os.Create(fs.path("legacy"))
	if err != nil {
		t.Fatal(err)
	}
	if err := pointer.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	flat, err := fs.Load("legacy")
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range probe {
		if flat.Predict(x) != pointer.Predict(x) {
			t.Fatalf("flat load of pointer checkpoint diverges on %v", x)
		}
	}

	// Flat checkpoint on disk → pointer tooling load.
	if err := fs.Save("flat", pointer.Flatten()); err != nil {
		t.Fatal(err)
	}
	r, err := os.Open(fs.path("flat"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	back, err := forest.Load(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range probe {
		if back.Predict(x) != pointer.Predict(x) {
			t.Fatalf("pointer load of flat checkpoint diverges on %v", x)
		}
	}
}

// TestFileStoreCorruptCheckpointRecovery: a checkpoint that fails to
// parse is reported once and quarantined, so the patient recovers —
// subsequent loads are clean misses and the next save checkpoints
// normally — instead of erroring on every load forever. Truncation (a
// crash mid-write predating atomic renames) and byte corruption both
// take this path.
func TestFileStoreCorruptCheckpointRecovery(t *testing.T) {
	for _, tc := range []struct {
		name  string
		bytes []byte
	}{
		{"garbage", []byte("{not json")},
		{"truncated", nil}, // zero-length file: crash at the worst moment
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs, err := NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(fs.Dir(), "p.forest.json")
			if err := os.WriteFile(path, tc.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
			// First load reports the corruption (it becomes a
			// Stats.StoreErrors tick through the cache)...
			if _, err := fs.Load("p"); err == nil {
				t.Fatal("corrupt checkpoint loaded without error")
			}
			// ...and quarantines the file rather than deleting evidence.
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt checkpoint still at %s (stat err %v)", path, err)
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Fatalf("quarantine file missing: %v", err)
			}
			// Second load is a clean miss, not a repeated error.
			if f, err := fs.Load("p"); err != nil || f != nil {
				t.Fatalf("Load after quarantine = %v, %v; want nil, nil", f, err)
			}
			// The patient's next retrain checkpoints and reloads normally.
			want := tinyForest(t, 1)
			if err := fs.Save("p", want); err != nil {
				t.Fatal(err)
			}
			got, err := fs.Load("p")
			if err != nil || got == nil {
				t.Fatalf("Load after re-save = %v, %v", got, err)
			}
			for _, x := range [][]float64{{0, 0}, {1, 1}} {
				if got.Predict(x) != want.Predict(x) {
					t.Fatalf("re-saved forest disagrees on %v", x)
				}
			}
			// Atomic writes leave no temp droppings behind.
			entries, err := os.ReadDir(fs.Dir())
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if e.Name() != "p.forest.json" && e.Name() != "p.forest.json.corrupt" {
					t.Fatalf("unexpected file in store dir: %s", e.Name())
				}
			}
		})
	}
}

// TestFileStoreQuarantineKeepsForensics: back-to-back corruption must
// not overwrite the evidence of the first failure — each quarantined
// checkpoint gets a unique name, so an operator investigating repeated
// corruption still has every corpse.
func TestFileStoreQuarantineKeepsForensics(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path := fs.path("p")
	corpses := [][]byte{[]byte("{first corruption"), []byte("{second corruption"), []byte("{third corruption")}
	for i, body := range corpses {
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Load("p"); err == nil {
			t.Fatalf("corruption %d loaded without error", i)
		}
	}
	for name, want := range map[string][]byte{
		path + ".corrupt":   corpses[0],
		path + ".corrupt.1": corpses[1],
		path + ".corrupt.2": corpses[2],
	} {
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("quarantine file %s missing: %v", name, err)
		}
		if string(got) != string(want) {
			t.Fatalf("quarantine file %s holds %q, want %q — forensics overwritten", name, got, want)
		}
	}
	// The patient still recovers: a clean miss, then a normal save.
	if f, err := fs.Load("p"); err != nil || f != nil {
		t.Fatalf("Load after quarantines = %v, %v; want nil, nil", f, err)
	}
	if err := fs.Save("p", tinyForest(t, 1)); err != nil {
		t.Fatal(err)
	}
	if f, err := fs.Load("p"); err != nil || f == nil {
		t.Fatalf("Load after re-save = %v, %v", f, err)
	}
}

// TestStoreVersionRoundTrip pins the VersionedStore contract for both
// implementations: SaveVersion/LoadVersion round-trip the version with
// the model, plain Save writes a version-0 (pre-versioning format)
// checkpoint, and — for the FileStore — a checkpoint written by the
// pre-versioning format (a bare forest JSON, as every existing
// deployment has on disk) loads cleanly as version 0.
func TestStoreVersionRoundTrip(t *testing.T) {
	f := tinyForest(t, 1)
	probe := [][]float64{{0, 0}, {1, 1}, {0.05, 0.05}, {0.95, 0.95}}
	check := func(t *testing.T, st VersionedStore) {
		t.Helper()
		if got, v, err := st.LoadVersion("absent"); err != nil || got != nil || v != 0 {
			t.Fatalf("LoadVersion(absent) = %v, %d, %v; want nil, 0, nil", got, v, err)
		}
		if err := st.SaveVersion("p", f, 7); err != nil {
			t.Fatal(err)
		}
		got, v, err := st.LoadVersion("p")
		if err != nil || v != 7 {
			t.Fatalf("LoadVersion = version %d, err %v; want 7, nil", v, err)
		}
		for _, x := range probe {
			if got.Predict(x) != f.Predict(x) {
				t.Fatalf("versioned reload disagrees on %v", x)
			}
		}
		// Saving a newer version replaces the old one.
		if err := st.SaveVersion("p", f, 8); err != nil {
			t.Fatal(err)
		}
		if _, v, _ := st.LoadVersion("p"); v != 8 {
			t.Fatalf("version after re-save = %d, want 8", v)
		}
		// Plain Save is the pre-versioning write: version reads as 0.
		if err := st.Save("p0", f); err != nil {
			t.Fatal(err)
		}
		if got, v, err := st.LoadVersion("p0"); err != nil || got == nil || v != 0 {
			t.Fatalf("LoadVersion of unversioned save = %v, %d, %v; want model, 0, nil", got, v, err)
		}
	}
	t.Run("memory", func(t *testing.T) { check(t, NewMemoryStore()) })
	t.Run("file", func(t *testing.T) {
		fs, err := NewFileStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		check(t, fs)

		// A pre-versioning checkpoint — the exact bytes the current
		// pointer-forest tools write — loads as version 0.
		pointer, err := forest.Train([][]float64{{0, 0}, {1, 1}, {0, 0.1}, {1, 0.9}},
			[]bool{false, true, false, true}, forest.Config{NumTrees: 3, MinLeaf: 1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		w, err := os.Create(fs.path("legacy"))
		if err != nil {
			t.Fatal(err)
		}
		if err := pointer.Save(w); err != nil {
			t.Fatal(err)
		}
		w.Close()
		got, v, err := fs.LoadVersion("legacy")
		if err != nil || got == nil || v != 0 {
			t.Fatalf("pre-versioning checkpoint = %v, %d, %v; want model, 0, nil", got, v, err)
		}

		// And a versioned checkpoint still loads in pre-versioning tools:
		// the version rides an extra JSON field their loaders ignore.
		r, err := os.Open(fs.path("p"))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		back, err := forest.Load(r)
		if err != nil {
			t.Fatalf("pointer tooling rejects a versioned checkpoint: %v", err)
		}
		for _, x := range probe {
			if back.Predict(x) != f.Predict(x) {
				t.Fatalf("pointer load of versioned checkpoint diverges on %v", x)
			}
		}
	})
}

// TestPublishContinuesPersistedVersions: the version sequence must
// survive both LRU eviction and a process restart — a publish that
// regressed the version would make every replica holder refuse the
// newer model as stale.
func TestPublishContinuesPersistedVersions(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mc := newModelCache(1, fs, func(err error) { t.Fatalf("store error: %v", err) })
	f := tinyForest(t, 1)
	if v := mc.Publish("p1", f); v != 1 {
		t.Fatalf("first publish = v%d, want 1", v)
	}
	if v := mc.Publish("p1", f); v != 2 {
		t.Fatalf("second publish = v%d, want 2", v)
	}
	// Evict p1 from the one-slot LRU, then publish again: the sequence
	// continues from the store, not from scratch.
	mc.Publish("p2", tinyForest(t, 2))
	if v := mc.Publish("p1", f); v != 3 {
		t.Fatalf("publish after eviction = v%d, want 3", v)
	}
	// "Restart": a fresh cache over the same directory.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mc2 := newModelCache(4, fs2, func(err error) { t.Fatalf("store error: %v", err) })
	if _, v := mc2.GetVersioned("p1"); v != 3 {
		t.Fatalf("version after restart = %d, want 3", v)
	}
	if v := mc2.Publish("p1", f); v != 4 {
		t.Fatalf("publish after restart = v%d, want 4", v)
	}
}

// TestCorruptCheckpointKeepsVersionSequence: losing a checkpoint to
// corruption must not regress the patient's version sequence — the
// header is written first precisely so truncation leaves the version
// salvageable, and the next publish continues past it. A regression to
// v1 would be refused as stale by every replica holder, and a later
// failover transfer would then overwrite the fresh retrain with the
// old replicated detector.
func TestCorruptCheckpointKeepsVersionSequence(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveVersion("p", tinyForest(t, 1), 5); err != nil {
		t.Fatal(err)
	}
	// Truncate the checkpoint mid-body: the JSON no longer parses, but
	// the version header survives in the prefix.
	data, err := os.ReadFile(fs.path("p"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fs.path("p"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// The cache's first sight of the checkpoint is the corrupt load: it
	// must salvage the version while quarantining the model, so the next
	// publish continues the sequence.
	var storeErrs int
	mc := newModelCache(4, fs, func(error) { storeErrs++ })
	if got := mc.Publish("p", tinyForest(t, 2)); got != 6 {
		t.Fatalf("publish after corruption = v%d, want 6 (sequence must not regress)", got)
	}
	if storeErrs != 1 {
		t.Fatalf("store errors = %d, want exactly 1", storeErrs)
	}
	// And the raw store surface reports the salvaged version alongside
	// the load error.
	if err := fs.SaveVersion("q", tinyForest(t, 1), 9); err != nil {
		t.Fatal(err)
	}
	qdata, err := os.ReadFile(fs.path("q"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fs.path("q"), qdata[:len(qdata)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	f, v, err := fs.LoadVersion("q")
	if err == nil || f != nil {
		t.Fatalf("truncated checkpoint loaded: %v, %v", f, err)
	}
	if v != 9 {
		t.Fatalf("salvaged version = %d, want 9", v)
	}
}

// TestServerServesPatientDespiteCorruptCheckpoint: end to end, a
// corrupt on-disk model must cost the patient their warm start, not
// their service — the session comes up untrained, batches stream, and
// the failure surfaces exactly once in Stats.StoreErrors.
func TestServerServesPatientDespiteCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fs.path("chb01"), []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Workers: 1, SampleRate: testRate, History: time.Minute}, WithModelStore(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := open(t, srv, "chb01")
	stream(t, h, testRecording(t, 8, 10, -1, 0))
	srv.Close()
	st := srv.Snapshot()
	if st.Windows == 0 || st.StreamErrors != 0 {
		t.Fatalf("patient did not stream past the corrupt checkpoint: %+v", st)
	}
	if st.StoreErrors != 1 {
		t.Fatalf("StoreErrors = %d, want exactly 1 (quarantine must stop repeats)", st.StoreErrors)
	}
}

func TestMemoryStoreBehindCacheSurvivesEviction(t *testing.T) {
	mc := newModelCache(1, NewMemoryStore(), func(err error) { t.Fatalf("store error: %v", err) })
	f1, f2 := tinyForest(t, 1), tinyForest(t, 2)
	mc.Publish("p1", f1)
	mc.Publish("p2", f2) // evicts p1 from the one-slot LRU
	if mc.cached("p1") != nil {
		t.Fatal("p1 still in LRU after eviction")
	}
	// Read-through brings the evicted model back from the store.
	if got := mc.Get("p1"); got != f1 {
		t.Fatalf("Get(p1) = %v, want the stored model", got)
	}
	if mc.cached("p1") != f1 {
		t.Fatal("read-through did not repopulate the LRU")
	}
}

// TestServerRestartWarmFromFileStore is the PR's acceptance scenario: a
// server trains a patient, dies, and a new server against the same
// checkpoint directory serves that patient warm — the very first
// batch's predictions come from the persisted model, proven by alarms
// firing with no confirmation ever issued to the second server.
func TestServerRestartWarmFromFileStore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers:            2,
		SampleRate:         testRate,
		History:            4 * time.Minute,
		AvgSeizureDuration: 20 * time.Second,
	}

	fs1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := New(cfg, WithModelStore(fs1))
	if err != nil {
		t.Fatal(err)
	}
	const patient = "chb01"
	h := open(t, srv1, patient)
	stream(t, h, testRecording(t, 1, 180, 90, 24))
	if err := h.Confirm(); err != nil {
		t.Fatalf("Confirm: %v", err)
	}
	if st := awaitRetrains(t, srv1, 1); st.Retrains != 1 {
		t.Fatalf("retrain failed: %+v", st)
	}
	srv1.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store dir holds %d checkpoints after training, want 1", len(entries))
	}

	// "Restart": a brand-new server, fresh store handle, same directory.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(cfg, WithModelStore(fs2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if srv2.Model(patient) == nil {
		t.Fatal("restarted server has no model for the trained patient")
	}
	h2 := open(t, srv2, patient)
	stream(t, h2, testRecording(t, 2, 180, 100, 24))
	srv2.Close()

	st := srv2.Snapshot()
	if st.Retrains != 0 || st.Confirms != 0 {
		t.Fatalf("restart test retrained (%d) or confirmed (%d); warmness would be meaningless", st.Retrains, st.Confirms)
	}
	if st.Alarms == 0 {
		t.Fatal("restarted server raised no alarms: session did not warm start from the FileStore")
	}
	if st.StoreErrors != 0 {
		t.Fatalf("StoreErrors = %d, want 0", st.StoreErrors)
	}
}
