package serve

import (
	"testing"
	"time"

	"selflearn/internal/ml/forest"
	"selflearn/internal/rt"
)

// benchSession builds a worker-confined session the way a shard does,
// with an alarm config strict enough that background EEG never fires
// (an alarm appends to the detector's alarm log, which is the one
// legitimate allocation on the path).
func benchSession(tb testing.TB, historyRows int) (*session, Config) {
	tb.Helper()
	cfg := Config{
		Workers:    1,
		SampleRate: testRate,
		History:    time.Minute,
		AlarmCfg: rt.Config{
			VoteWindow:   12,
			VotesToRaise: 12,
			Refractory:   5 * time.Minute,
			Hop:          time.Second,
		},
	}.withDefaults()
	sess, err := newSession("alloc-guard", historyRows, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return sess, cfg
}

// trainOnRecording extracts a session's worth of rows from a synthetic
// recording and fits a small forest, giving the classify path a real
// model to walk.
func trainOnRecording(tb testing.TB) *forest.FlatForest {
	tb.Helper()
	sess, _ := benchSession(tb, 256)
	rec := testRecording(tb, 5, 120, 40, 20)
	rows, err := sess.ingest(rec.Data[0], rec.Data[1])
	if err != nil {
		tb.Fatal(err)
	}
	if len(rows) < 20 {
		tb.Fatalf("only %d rows extracted", len(rows))
	}
	X := make([][]float64, 0, len(rows))
	y := make([]bool, 0, len(rows))
	for i, r := range rows {
		X = append(X, append([]float64(nil), r...))
		sec := float64(i) // one row per second after the first window
		y = append(y, sec >= 36 && sec < 56)
	}
	f, err := forest.Train(X, y, forest.Config{NumTrees: 20, MaxDepth: 8, MinLeaf: 2, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	return f.Flatten()
}

// TestSessionBatchPathZeroAlloc is the end-to-end allocation guard for
// the serving hot path: one-second sample batches through
// Streamer.Push → history ring → FlatForest classification → alarm
// smoothing, with zero allocations per batch in steady state.
func TestSessionBatchPathZeroAlloc(t *testing.T) {
	sess, _ := benchSession(t, 256)
	sess.model.Store(trainOnRecording(t))
	rec := testRecording(t, 9, 60, -1, 0)
	c0, c1 := rec.Data[0], rec.Data[1]
	batch := int(testRate)
	// Warm-up: size every buffer (first windows, scratch, prediction).
	pos := 0
	push := func() {
		rows, err := sess.ingest(c0[pos:pos+batch], c1[pos:pos+batch])
		if err != nil {
			t.Fatal(err)
		}
		sess.classify(rows)
		pos += batch
		if pos+batch > len(c0) {
			pos = 8 * batch
		}
	}
	for i := 0; i < 10; i++ {
		push()
	}
	if allocs := testing.AllocsPerRun(30, push); allocs != 0 {
		t.Fatalf("ingest+classify allocates %.1f objects per one-second batch, want 0", allocs)
	}
}

// TestSessionBatchLongerThanHistoryRing pins the wraparound escape
// hatch: a single batch that emits more rows than the ring has slots
// must still hand classify distinct, correct rows — the recycled
// entries get private copies.
func TestSessionBatchLongerThanHistoryRing(t *testing.T) {
	cfg := Config{Workers: 1, SampleRate: testRate, History: 6 * time.Second}.withDefaults()
	sess, err := newSession("wrap", 6, cfg) // 6-slot ring
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecording(t, 13, 30, -1, 0) // one 30 s batch → ~27 rows
	rows, err := sess.ingest(rec.Data[0], rec.Data[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) <= 6 {
		t.Fatalf("want more rows than ring slots, got %d", len(rows))
	}
	// Reference: the same recording through a fresh streamer.
	ref, err := newSession("ref", len(rows), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ingest(rec.Data[0], rec.Data[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(rows) {
		t.Fatalf("reference emitted %d rows vs %d", len(want), len(rows))
	}
	for i := range want {
		for f := range want[i] {
			if rows[i][f] != want[i][f] {
				t.Fatalf("row %d feature %d corrupted by ring wraparound: %g vs %g",
					i, f, rows[i][f], want[i][f])
			}
		}
	}
}

// TestSessionHistorySurvivesStreamerReuse pins the row-copy semantics:
// rows handed to the history ring must not alias the streamer's reused
// emission buffer, so later batches cannot corrupt the buffered hour
// the learner trains on.
func TestSessionHistorySurvivesStreamerReuse(t *testing.T) {
	sess, _ := benchSession(t, 64)
	rec := testRecording(t, 11, 30, -1, 0)
	rows, err := sess.ingest(rec.Data[0], rec.Data[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("want several rows, got %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if &rows[i][0] == &rows[0][0] {
			t.Fatal("distinct rows alias the same backing buffer")
		}
	}
	first := append([]float64(nil), rows[0]...)
	snap := sess.historySnapshot()
	// Stream another batch: must not mutate the earlier snapshot or the
	// remembered row.
	if _, err := sess.ingest(rec.Data[0], rec.Data[1]); err != nil {
		t.Fatal(err)
	}
	for f, v := range first {
		if snap[0][f] != v {
			t.Fatalf("history snapshot row 0 feature %d changed under streaming", f)
		}
	}
}
