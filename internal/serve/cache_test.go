package serve

import (
	"testing"

	"selflearn/internal/ml/forest"
)

func TestLRUEvictionOrder(t *testing.T) {
	var evicted []string
	c := newLRU[int](2, func(k string, _ int) { evicted = append(evicted, k) })
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3) // evicts a
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted %v, want [a]", evicted)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a still present after eviction")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) = %d, %v", v, ok)
	}
	// b is now most recent; inserting d must evict c.
	c.Put("d", 4)
	if len(evicted) != 2 || evicted[1] != "c" {
		t.Fatalf("evicted %v, want [a c]", evicted)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := newLRU[int](2, nil)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert
	c.Put("c", 3)  // must evict b, the oldest untouched entry
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived, want it evicted")
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("a = %d, want refreshed 10", v)
	}
}

func TestLRUZeroCapacityNeverEvicts(t *testing.T) {
	c := newLRU[int](0, func(string, int) { t.Fatal("unexpected eviction") })
	for i := 0; i < 100; i++ {
		c.Put(string(rune('a'+i%26))+string(rune('0'+i/26)), i)
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
}

func TestModelCacheRoundTrip(t *testing.T) {
	// Store-less cache: pure LRU semantics (store behavior is covered in
	// store_test.go).
	mc := newModelCache(4, nil, nil)
	if got := mc.Get("p1"); got != nil {
		t.Fatalf("Get on empty cache = %v, want nil", got)
	}
	X := [][]float64{{0, 0}, {1, 1}, {0, 0.1}, {1, 0.9}}
	y := []bool{false, true, false, true}
	pf, err := forest.Train(X, y, forest.Config{NumTrees: 3, MinLeaf: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := pf.Flatten()
	if v := mc.Publish("p1", f); v != 1 {
		t.Fatalf("first publish version = %d, want 1", v)
	}
	if v := mc.Publish("p1", f); v != 2 { // refresh must not double-count
		t.Fatalf("second publish version = %d, want 2", v)
	}
	if mc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", mc.Len())
	}
	if mc.Get("p1") != f {
		t.Fatal("cached model lost")
	}
	if _, v := mc.GetVersioned("p1"); v != 2 {
		t.Fatalf("cached version = %d, want 2", v)
	}
	if v := mc.Publish("p2", nil); v != 0 { // nil models are ignored
		t.Fatalf("nil publish version = %d, want 0", v)
	}
	if mc.Len() != 1 {
		t.Fatalf("Len after nil publish = %d, want 1", mc.Len())
	}
	// Install only accepts strictly newer versions.
	if mc.Install("p1", f, 2) {
		t.Fatal("Install accepted a stale (equal) version")
	}
	if !mc.Install("p1", f, 7) {
		t.Fatal("Install refused a newer version")
	}
	if v := mc.Publish("p1", f); v != 8 {
		t.Fatalf("publish after install version = %d, want 8", v)
	}
}
