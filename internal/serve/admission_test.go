package serve

import (
	"testing"
	"time"
)

// The deterministic, queue-level admission semantics (drop rejects,
// block expires, shed discards oldest and preserves confirms) live in
// the shared behavioral suite in servetest, which transport_test.go
// runs against the local Queue machinery and internal/cluster runs
// against its TCP shard connections. The tests here exercise the same
// policies end to end through a live Server under load.

// saturate opens a depth-1 single-worker server and jams its shard: the
// worker chews on a two-minute batch while one more batch waits in the
// queue, so every subsequent admission faces a full queue.
func saturate(t *testing.T, opts ...Option) (*Server, *Stream) {
	t.Helper()
	srv, err := New(Config{
		Workers:    1,
		QueueDepth: 1,
		SampleRate: testRate,
		History:    time.Minute,
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	h := open(t, srv, "p")
	rec := testRecording(t, 11, 120, -1, 0)
	if err := h.Push(rec.Data[0], rec.Data[1]); err != nil {
		t.Fatal(err)
	}
	// Fill the queue slot behind the in-flight batch. Under DropOnFull
	// the fill is complete when a push bounces; under other policies one
	// extra accepted batch is enough (the queue holds at most one).
	small0, small1 := make([]float64, testRate), make([]float64, testRate)
	for i := 0; i < 100000; i++ {
		if err := h.Push(small0, small1); err != nil {
			break
		}
	}
	return srv, h
}

func TestAdmissionDropOnFull(t *testing.T) {
	srv, h := saturate(t) // DropOnFull is the default
	small0, small1 := make([]float64, testRate), make([]float64, testRate)
	start := time.Now()
	sawBackpressure := false
	for i := 0; i < 1000 && !sawBackpressure; i++ {
		sawBackpressure = h.Push(small0, small1) == ErrBackpressure
	}
	if !sawBackpressure {
		t.Fatal("never saw ErrBackpressure with a full depth-1 queue")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drop-on-full took %v; must reject immediately", elapsed)
	}
	st := srv.Snapshot()
	if st.BatchesDropped == 0 {
		t.Fatalf("BatchesDropped = 0 after backpressure: %+v", st)
	}
	if hs := h.Stats(); hs.BatchesDropped == 0 {
		t.Fatalf("stream BatchesDropped = 0 after backpressure: %+v", hs)
	}
}

func TestAdmissionBlockRidesOutBurst(t *testing.T) {
	// A short in-flight batch frees the queue well within the generous
	// deadline, so blocked pushes must all eventually succeed — zero
	// drops where DropOnFull would bounce constantly.
	srv, err := New(Config{
		Workers:    1,
		QueueDepth: 1,
		SampleRate: testRate,
		History:    time.Minute,
	}, WithAdmission(BlockWithDeadline(30*time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := open(t, srv, "p")
	rec := testRecording(t, 12, 10, -1, 0)
	for off := 0; off < len(rec.Data[0]); off += testRate {
		end := off + testRate
		if end > len(rec.Data[0]) {
			end = len(rec.Data[0])
		}
		if err := h.Push(rec.Data[0][off:end], rec.Data[1][off:end]); err != nil {
			t.Fatalf("blocking push failed: %v", err)
		}
	}
	if st := srv.Snapshot(); st.BatchesDropped != 0 {
		t.Fatalf("BatchesDropped = %d under blocking admission, want 0", st.BatchesDropped)
	}
}

func TestAdmissionShedOldestUnderLoad(t *testing.T) {
	srv, h := saturate(t, WithAdmission(ShedOldest()))
	small0, small1 := make([]float64, testRate), make([]float64, testRate)
	// Every push is admitted: shed-oldest makes room by discarding the
	// stale queued batch instead of refusing the fresh one.
	for i := 0; i < 200; i++ {
		if err := h.Push(small0, small1); err != nil {
			t.Fatalf("push %d under shed-oldest = %v, want nil", i, err)
		}
	}
	st := srv.Snapshot()
	if st.BatchesShed == 0 {
		t.Fatalf("BatchesShed = 0 after shedding pushes: %+v", st)
	}
	if st.BatchesDropped != 0 {
		t.Fatalf("BatchesDropped = %d under shed-oldest, want 0 (nothing was refused)", st.BatchesDropped)
	}
	if hs := h.Stats(); hs.BatchesShed == 0 {
		t.Fatalf("stream BatchesShed = 0: %+v", hs)
	}
}
