package serve

import (
	"testing"
	"time"
)

// saturate opens a depth-1 single-worker server and jams its shard: the
// worker chews on a two-minute batch while one more batch waits in the
// queue, so every subsequent admission faces a full queue.
func saturate(t *testing.T, opts ...Option) (*Server, *Stream) {
	t.Helper()
	srv, err := New(Config{
		Workers:    1,
		QueueDepth: 1,
		SampleRate: testRate,
		History:    time.Minute,
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	h := open(t, srv, "p")
	rec := testRecording(t, 11, 120, -1, 0)
	if err := h.Push(rec.Data[0], rec.Data[1]); err != nil {
		t.Fatal(err)
	}
	// Fill the queue slot behind the in-flight batch. Under DropOnFull
	// the fill is complete when a push bounces; under other policies one
	// extra accepted batch is enough (the queue holds at most one).
	small0, small1 := make([]float64, testRate), make([]float64, testRate)
	for i := 0; i < 100000; i++ {
		if err := h.Push(small0, small1); err != nil {
			break
		}
	}
	return srv, h
}

func TestAdmissionDropOnFull(t *testing.T) {
	srv, h := saturate(t) // DropOnFull is the default
	small0, small1 := make([]float64, testRate), make([]float64, testRate)
	start := time.Now()
	sawBackpressure := false
	for i := 0; i < 1000 && !sawBackpressure; i++ {
		sawBackpressure = h.Push(small0, small1) == ErrBackpressure
	}
	if !sawBackpressure {
		t.Fatal("never saw ErrBackpressure with a full depth-1 queue")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drop-on-full took %v; must reject immediately", elapsed)
	}
	st := srv.Snapshot()
	if st.BatchesDropped == 0 {
		t.Fatalf("BatchesDropped = 0 after backpressure: %+v", st)
	}
	if hs := h.Stats(); hs.BatchesDropped == 0 {
		t.Fatalf("stream BatchesDropped = 0 after backpressure: %+v", hs)
	}
}

func TestAdmissionBlockWithDeadline(t *testing.T) {
	// An idle shard (no consumer) keeps the queue full forever, so the
	// wait must expire — deterministically, unlike racing a real worker.
	const deadline = 60 * time.Millisecond
	s, w := idleShard(1)
	p := BlockWithDeadline(deadline)
	if err := p.admit(s, w, job{patient: "p"}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := p.admit(s, w, job{patient: "p"})
	elapsed := time.Since(start)
	if err != ErrBackpressure {
		t.Fatalf("admit on a stuck full queue = %v, want ErrBackpressure", err)
	}
	if elapsed < deadline {
		t.Fatalf("gave up after %v, before the %v deadline", elapsed, deadline)
	}
	// Space freeing mid-wait lets the blocked admit through.
	done := make(chan error, 1)
	go func() { done <- p.admit(s, w, job{patient: "p"}) }()
	time.Sleep(10 * time.Millisecond)
	<-w.jobs
	if err := <-done; err != nil {
		t.Fatalf("admit after space freed = %v, want nil", err)
	}
}

func TestAdmissionBlockRidesOutBurst(t *testing.T) {
	// A short in-flight batch frees the queue well within the generous
	// deadline, so blocked pushes must all eventually succeed — zero
	// drops where DropOnFull would bounce constantly.
	srv, err := New(Config{
		Workers:    1,
		QueueDepth: 1,
		SampleRate: testRate,
		History:    time.Minute,
	}, WithAdmission(BlockWithDeadline(30*time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := open(t, srv, "p")
	rec := testRecording(t, 12, 10, -1, 0)
	for off := 0; off < len(rec.Data[0]); off += testRate {
		end := off + testRate
		if end > len(rec.Data[0]) {
			end = len(rec.Data[0])
		}
		if err := h.Push(rec.Data[0][off:end], rec.Data[1][off:end]); err != nil {
			t.Fatalf("blocking push failed: %v", err)
		}
	}
	if st := srv.Snapshot(); st.BatchesDropped != 0 {
		t.Fatalf("BatchesDropped = %d under blocking admission, want 0", st.BatchesDropped)
	}
}

// idleShard fabricates a queue with no consuming worker, so shed
// mechanics can be asserted deterministically, job by job.
func idleShard(depth int) (*Server, *worker) {
	return &Server{}, &worker{jobs: make(chan job, depth)}
}

func TestShedOldestDiscardsStaleBatches(t *testing.T) {
	s, w := idleShard(2)
	p := ShedOldest()
	for i := 0; i < 2; i++ {
		if err := p.admit(s, w, job{patient: "old"}); err != nil {
			t.Fatal(err)
		}
	}
	// Full queue: the fresh batch must displace the oldest one.
	if err := p.admit(s, w, job{patient: "fresh"}); err != nil {
		t.Fatalf("admit on full queue = %v, want nil", err)
	}
	if got := s.batchesShed.Load(); got != 1 {
		t.Fatalf("batchesShed = %d, want 1", got)
	}
	got := []string{(<-w.jobs).patient, (<-w.jobs).patient}
	if got[0] != "old" || got[1] != "fresh" {
		t.Fatalf("queue order = %v, want [old fresh]", got)
	}
}

func TestShedOldestNeverShedsConfirms(t *testing.T) {
	s, w := idleShard(3)
	p := ShedOldest()
	if err := p.admit(s, w, job{patient: "p", confirm: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.admit(s, w, job{patient: "p"}); err != nil {
			t.Fatal(err)
		}
	}
	// Queue is [confirm batch batch]. Shedding for a new batch must pop
	// the confirmation, re-enqueue it, and discard a batch instead.
	if err := p.admit(s, w, job{patient: "p"}); err != nil {
		t.Fatalf("admit = %v, want nil", err)
	}
	if got := s.batchesShed.Load(); got != 1 {
		t.Fatalf("batchesShed = %d, want 1", got)
	}
	if got := s.confirmsDropped.Load(); got != 0 {
		t.Fatalf("confirmsDropped = %d, want 0", got)
	}
	confirms, batches := 0, 0
	for len(w.jobs) > 0 {
		if (<-w.jobs).confirm {
			confirms++
		} else {
			batches++
		}
	}
	if confirms != 1 || batches != 2 {
		t.Fatalf("queue drained to %d confirms / %d batches, want 1/2", confirms, batches)
	}
}

func TestShedOldestRefusesRatherThanShedLoneConfirm(t *testing.T) {
	s, w := idleShard(1)
	p := ShedOldest()
	if err := p.admit(s, w, job{patient: "p", confirm: true}); err != nil {
		t.Fatal(err)
	}
	// The only slot holds a confirmation; a batch cannot displace it.
	if err := p.admit(s, w, job{patient: "p"}); err != ErrBackpressure {
		t.Fatalf("admit over a lone confirm = %v, want ErrBackpressure", err)
	}
	if got := s.confirmsDropped.Load(); got != 0 {
		t.Fatalf("confirmsDropped = %d, want 0", got)
	}
	if j := <-w.jobs; !j.confirm {
		t.Fatal("confirmation no longer in the queue")
	}
}

func TestAdmissionShedOldestUnderLoad(t *testing.T) {
	srv, h := saturate(t, WithAdmission(ShedOldest()))
	small0, small1 := make([]float64, testRate), make([]float64, testRate)
	// Every push is admitted: shed-oldest makes room by discarding the
	// stale queued batch instead of refusing the fresh one.
	for i := 0; i < 200; i++ {
		if err := h.Push(small0, small1); err != nil {
			t.Fatalf("push %d under shed-oldest = %v, want nil", i, err)
		}
	}
	st := srv.Snapshot()
	if st.BatchesShed == 0 {
		t.Fatalf("BatchesShed = 0 after shedding pushes: %+v", st)
	}
	if st.BatchesDropped != 0 {
		t.Fatalf("BatchesDropped = %d under shed-oldest, want 0 (nothing was refused)", st.BatchesDropped)
	}
	if hs := h.Stats(); hs.BatchesShed == 0 {
		t.Fatalf("stream BatchesShed = 0: %+v", hs)
	}
}
