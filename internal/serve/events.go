package serve

import (
	"sync/atomic"
	"time"
)

// EventKind discriminates the server's delivery-path events.
type EventKind int

const (
	// EventAlarm is one raised seizure alarm — the paper's "alarm to
	// caregivers", finally observable by a caller.
	EventAlarm EventKind = iota
	// EventRetrain reports a completed background retrain; Err is
	// non-nil when labeling or training failed.
	EventRetrain
	// EventEviction reports a session LRU-evicted under load. The
	// patient's trained model survives in the model cache/store.
	EventEviction
	// EventShed reports an accepted batch discarded to make room — a
	// ShedOldest admission clearing a full shard queue, or a cluster
	// transport dropping in-flight jobs when a shard connection died.
	// The victim stream saw no error (its Push had already succeeded),
	// so this event is how operators observe shedding.
	EventShed
	// EventModelUpdated reports a new model version entering the
	// patient's serving path — a learner publish after retraining, or a
	// replica installed from a peer shard. Event.Version carries the
	// monotonic per-patient model version; the cluster layer keys
	// checkpoint replication and warm failover off this event.
	EventModelUpdated
	// EventQualityReject reports an accepted batch refused by the
	// quality prefilter (WithPrefilter) before feature extraction —
	// electrode dropout or a saturating artifact made the second
	// unusable. The pushing caller saw no error (its Push had already
	// succeeded); this event and Stats.QualityRejected are how garbage
	// input is observed.
	EventQualityReject
	// EventPrefilterDrift reports that a stream's client-side prefilter
	// (a declared stage-1 amplitude gate suppressing uplink windows) has
	// disagreed with the shard's audit beyond the stream's declared
	// threshold: digests carried amplitudes the declared gate should
	// have shipped, or audited full-rate samples that stage 2 classified
	// positive. It means stage-1 suppression may be costing sensitivity
	// — the condition the edge/cloud split promises never to hide.
	EventPrefilterDrift
	// EventAuditRequest asks a prefiltering client that declared no
	// proactive sampling (AuditEvery 0) to ship its next suppressed
	// window at full rate so the shard can audit what stage 1 drops.
	// Carried over the wire as a dedicated AuditRequest frame rather
	// than a generic event.
	EventAuditRequest
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case EventAlarm:
		return "alarm"
	case EventRetrain:
		return "retrain"
	case EventEviction:
		return "eviction"
	case EventShed:
		return "shed"
	case EventModelUpdated:
		return "model-updated"
	case EventQualityReject:
		return "quality-reject"
	case EventPrefilterDrift:
		return "prefilter-drift"
	case EventAuditRequest:
		return "audit-request"
	default:
		return "unknown"
	}
}

// Event is one delivery-path occurrence: an alarm raised for a patient,
// a background retrain finishing, or a session eviction.
type Event struct {
	Kind    EventKind
	Patient string
	// Time is when the event was emitted (server clock).
	Time time.Time
	// Seq orders events across the whole server.
	Seq uint64
	// Version carries the monotonic per-patient model version of an
	// EventModelUpdated; 0 otherwise.
	Version uint64
	// StreamTime is the patient's stream time in seconds at which an
	// EventAlarm fired — the alarm window's index times the hop, the
	// same clock rt.Alarm.Time runs on. Unlike the wall-clock Time it
	// is deterministic for a deterministic input stream, which is what
	// lets a replay harness score detections against ground-truth
	// seizure intervals. 0 for other kinds.
	StreamTime float64
	// Err carries the failure of an EventRetrain; nil otherwise.
	Err error
}

// eventHub fans events out to the subscriber channel and the optional
// synchronous sink. Delivery never blocks the serving path: when the
// subscriber lags behind the buffer, events are dropped and counted.
type eventHub struct {
	ch         chan Event
	sink       func(Event)
	subscribed atomic.Bool
	seq        atomic.Uint64
	dropped    atomic.Uint64
}

func newEventHub(buffer int, sink func(Event)) *eventHub {
	return &eventHub{ch: make(chan Event, buffer), sink: sink}
}

// emit stamps and delivers ev. The channel only receives events once a
// subscriber exists (Events was called); before that, events reach the
// sink alone rather than silently filling the buffer.
func (h *eventHub) emit(ev Event) {
	ev.Seq = h.seq.Add(1)
	ev.Time = time.Now()
	if h.sink != nil {
		h.sink(ev)
	}
	if !h.subscribed.Load() {
		return
	}
	select {
	case h.ch <- ev:
	default:
		h.dropped.Add(1)
	}
}

// events returns the subscriber channel, activating channel delivery.
func (h *eventHub) events() <-chan Event {
	h.subscribed.Store(true)
	return h.ch
}

// close ends the subscriber channel; emit must not be called after.
func (h *eventHub) close() { close(h.ch) }
