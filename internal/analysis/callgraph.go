package analysis

import (
	"go/ast"
	"go/types"
)

// A FuncInfo pairs a function declaration with its types object.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Obj  *types.Func
}

// PackageFuncs returns every function/method declared with a body in
// the pass's non-test files.
func (p *Pass) PackageFuncs() []FuncInfo {
	var out []FuncInfo
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, FuncInfo{Decl: fd, Obj: obj})
		}
	}
	return out
}

// StaticCallee resolves call to the *types.Func it statically invokes:
// a package function, a method on a concrete receiver, or a method
// expression. It returns nil for builtins, type conversions, calls of
// func-typed values, and interface method calls.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	// A method reached through an interface is a dynamic call.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if types.IsInterface(recv.Type()) {
			return nil
		}
	}
	return fn
}

// FuncName renders fn as it appears in package facts: "F" for a
// function, "T.F" for a method (pointer receivers normalized to T).
func FuncName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// HotClosure returns every function reachable from a //selflearn:hotpath
// annotated declaration through same-package static calls, mapped to
// its declaration. Cross-package edges are not followed here: callees
// in other module packages must themselves be annotated (hotpathalloc
// enforces this via package facts), which re-roots the walk there.
func (p *Pass) HotClosure(m *Markers) map[*types.Func]*ast.FuncDecl {
	funcs := p.PackageFuncs()
	decls := make(map[*types.Func]*ast.FuncDecl, len(funcs))
	var work []*types.Func
	for _, fi := range funcs {
		decls[fi.Obj] = fi.Decl
		if m.FuncHas(fi.Decl, "hotpath") {
			work = append(work, fi.Obj)
		}
	}
	hot := make(map[*types.Func]*ast.FuncDecl)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		decl, ok := decls[fn]
		if !ok || hot[fn] != nil {
			continue
		}
		hot[fn] = decl
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := StaticCallee(p.TypesInfo, call); callee != nil && callee.Pkg() == p.Pkg {
				work = append(work, callee)
			}
			return true
		})
	}
	return hot
}

// WalkStack traverses root depth-first, calling fn with each node and
// the stack of its ancestors (outermost first, not including n). If fn
// returns false the node's children are skipped.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// No push: Inspect skips both the children and the nil pop
			// when the callback returns false.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
