// Package analysistest runs selflearnvet analyzers over fixture
// packages under an analyzer's testdata/src directory and matches the
// diagnostics against // want "regexp" comments, mirroring the x/tools
// package of the same name.
//
// Fixture packages live below testdata so `go build ./...` and wildcard
// vet runs never see their seeded violations, but `go list` still loads
// them when addressed by explicit relative path. Because the module is
// loaded in module mode (not a synthetic GOPATH), fixtures that import
// sibling fixtures use their full module import path.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"selflearn/internal/analysis"
	"selflearn/internal/analysis/checker"
	"selflearn/internal/analysis/load"
)

// expectation is one parsed want comment term.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the fixture dirs (relative to the calling test's package
// directory, e.g. "./testdata/src/a"), applies the analyzers, and
// reports any mismatch between diagnostics and // want comments as
// test errors. Dependencies of the fixtures are analyzed for facts but
// only the named fixtures' diagnostics are matched.
func Run(t *testing.T, analyzers []*analysis.Analyzer, dirs ...string) {
	t.Helper()
	res, err := load.Load(".", dirs...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := checker.Run(res, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	var wants []*expectation
	for _, pkg := range res.Pkgs {
		if pkg.DepOnly {
			continue
		}
		for _, f := range pkg.Files {
			wants = append(wants, collectWants(t, res.Fset, f)...)
		}
	}

	for _, f := range findings {
		if f.DepOnly {
			continue
		}
		ok := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// collectWants parses every `// want "re" "re2"` comment in f. Each
// quoted term (Go-quoted or backquoted) is one expected diagnostic on
// the comment's line.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Slash)
			terms, err := splitQuoted(m[1])
			if err != nil {
				t.Fatalf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
			}
			for _, term := range terms {
				re, err := regexp.Compile(term)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, term, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

func splitQuoted(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			term, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, term)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
	}
}
