// Package wirebounds machine-checks the wire codec's safety story:
// no []byte decode-buffer access without a dominating length check, no
// frame kind that encodes but doesn't decode (or vice versa), and no
// serve.Stats field that crosses in only one direction.
package wirebounds

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"selflearn/internal/analysis"
)

// Analyzer is the wirebounds pass.
var Analyzer = &analysis.Analyzer{
	Name: "wirebounds",
	Doc: `check bounds discipline and encode/decode parity in package wire

Applies to any package named "wire". Three checks: (1) every index or
slice of a []byte buffer must be preceded, in the same function, by an
if condition mentioning len(buf) or cap(buf) — the codebase's cursor
idiom ("if r.off+n > len(r.b) { fail }"); the check is deliberately
function-coarse, aimed at the "forgot the check entirely" class the
fuzzer only finds after a crash ships. (2) Every exported Kind constant
must appear as a call argument on the encode side (begin(KindX)) and as
a case in every switch over Kind, and every Kind switch must carry a
default clause for unknown input. (3) If the package has an
(Encoder).Stats method and a decodeStats function, every exported field
of the stats struct they carry must be referenced in both — catching
"added a field to Stats but not to the codec" at vet time. Escapes:
//selflearn:bounds-ok <reason> on the access line, //selflearn:partial-ok
on a deliberately non-exhaustive switch line.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() != "wire" {
		return nil, nil
	}
	markers := analysis.CollectMarkers(pass)
	for _, fi := range pass.PackageFuncs() {
		checkBufferAccess(pass, markers, fi.Decl)
	}
	checkKindParity(pass, markers)
	checkStatsParity(pass)
	return nil, nil
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// constZero reports whether e is absent or the integer constant 0.
func constZero(pass *analysis.Pass, e ast.Expr) bool {
	if e == nil {
		return true
	}
	tv := pass.TypesInfo.Types[e]
	return tv.Value != nil && tv.Value.Kind() == constant.Int && constant.Sign(tv.Value) == 0
}

// checkBufferAccess walks decl in source order, accumulating buffers
// mentioned in len()/cap() guard conditions, and flags any []byte
// index/slice whose base was never guarded earlier in the function.
func checkBufferAccess(pass *analysis.Pass, markers *analysis.Markers, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	guarded := make(map[string]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt, *ast.ForStmt:
			var cond ast.Expr
			if ifs, ok := n.(*ast.IfStmt); ok {
				cond = ifs.Cond
			} else {
				cond = n.(*ast.ForStmt).Cond
			}
			if cond != nil {
				ast.Inspect(cond, func(c ast.Node) bool {
					call, ok := c.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") && len(call.Args) == 1 {
						if t := info.TypeOf(call.Args[0]); t != nil && isByteSlice(t) {
							guarded[types.ExprString(call.Args[0])] = true
						}
					}
					return true
				})
			}

		case *ast.IndexExpr:
			if t := info.TypeOf(n.X); t != nil && isByteSlice(t) {
				base := types.ExprString(n.X)
				if !guarded[base] && !markers.EscapedAt(n.Pos(), "bounds-ok") {
					pass.Reportf(n.Pos(), "index of decode buffer %s is not dominated by a len(%s) check", base, base)
				}
			}

		case *ast.SliceExpr:
			if t := info.TypeOf(n.X); t != nil && isByteSlice(t) {
				if constZero(pass, n.Low) && constZero(pass, n.High) && n.Max == nil {
					return true // b[:], b[:0], b[0:] cannot overrun
				}
				base := types.ExprString(n.X)
				if !guarded[base] && !markers.EscapedAt(n.Pos(), "bounds-ok") {
					pass.Reportf(n.Pos(), "slice of decode buffer %s is not dominated by a len(%s) or cap(%s) check", base, base, base)
				}
			}
		}
		return true
	})
}

// checkKindParity cross-references exported Kind constants against
// encode-side call arguments and every switch over Kind.
func checkKindParity(pass *analysis.Pass, markers *analysis.Markers) {
	tn, ok := pass.Pkg.Scope().Lookup("Kind").(*types.TypeName)
	if !ok {
		return
	}
	kindType := tn.Type()
	info := pass.TypesInfo

	// Exported Kind constants, in declaration order.
	type kindConst struct {
		name string
		pos  token.Pos
	}
	var kinds []kindConst
	for _, name := range pass.Pkg.Scope().Names() {
		c, ok := pass.Pkg.Scope().Lookup(name).(*types.Const)
		if ok && c.Exported() && types.Identical(c.Type(), kindType) {
			kinds = append(kinds, kindConst{name: name, pos: c.Pos()})
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].pos < kinds[j].pos })

	encoded := make(map[string]bool)
	type kindSwitch struct {
		pos        token.Pos
		cases      map[string]bool
		hasDefault bool
	}
	var switches []kindSwitch

	kindConstName := func(e ast.Expr) string {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
				id = sel.Sel
			}
		}
		if id == nil {
			return ""
		}
		if c, ok := info.Uses[id].(*types.Const); ok && types.Identical(c.Type(), kindType) {
			return c.Name()
		}
		return ""
	}

	for _, fi := range pass.PackageFuncs() {
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if name := kindConstName(arg); name != "" {
						encoded[name] = true
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				if t := info.TypeOf(n.Tag); t == nil || !types.Identical(t, kindType) {
					return true
				}
				ks := kindSwitch{pos: n.Pos(), cases: make(map[string]bool)}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					if cc.List == nil {
						ks.hasDefault = true
					}
					for _, e := range cc.List {
						if name := kindConstName(e); name != "" {
							ks.cases[name] = true
						}
					}
				}
				switches = append(switches, ks)
			}
			return true
		})
	}

	for _, k := range kinds {
		if !encoded[k.name] {
			pass.Reportf(k.pos, "frame kind %s is never encoded (no call passes it, e.g. begin(%s))", k.name, k.name)
		}
	}
	for _, sw := range switches {
		if markers.EscapedAt(sw.pos, "partial-ok") {
			continue
		}
		var missing []string
		for _, k := range kinds {
			if !sw.cases[k.name] {
				missing = append(missing, k.name)
			}
		}
		if len(missing) > 0 {
			pass.Reportf(sw.pos, "switch on Kind is missing cases: %s", strings.Join(missing, ", "))
		}
		if !sw.hasDefault {
			pass.Reportf(sw.pos, "switch on Kind has no default clause for unknown input")
		}
	}
}

// checkStatsParity verifies that the struct carried by (Encoder).Stats
// and returned by decodeStats has every exported field referenced on
// both sides.
func checkStatsParity(pass *analysis.Pass) {
	var encodeFn, decodeFn *ast.FuncDecl
	for _, fi := range pass.PackageFuncs() {
		switch {
		case fi.Decl.Name.Name == "Stats" && fi.Decl.Recv != nil:
			encodeFn = fi.Decl
		case fi.Decl.Name.Name == "decodeStats":
			decodeFn = fi.Decl
		}
	}
	if encodeFn == nil || decodeFn == nil {
		return
	}

	structOf := func(t types.Type) (*types.Named, *types.Struct) {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			if s, ok := n.Underlying().(*types.Struct); ok {
				return n, s
			}
		}
		return nil, nil
	}

	info := pass.TypesInfo
	var named *types.Named
	var st *types.Struct
	for _, f := range encodeFn.Type.Params.List {
		if n, s := structOf(info.TypeOf(f.Type)); s != nil && s.NumFields() > 1 {
			named, st = n, s
		}
	}
	if st == nil {
		return
	}
	if decodeFn.Type.Results == nil || len(decodeFn.Type.Results.List) == 0 {
		return
	}
	if n, s := structOf(info.TypeOf(decodeFn.Type.Results.List[0].Type)); s == nil || n.Obj() != named.Obj() {
		return
	}

	referenced := func(decl *ast.FuncDecl) map[string]bool {
		out := make(map[string]bool)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == s.Obj() {
					out[s.Obj().Name()] = true
				}
			}
			return true
		})
		return out
	}

	enc, dec := referenced(encodeFn), referenced(decodeFn)
	tname := types.TypeString(named, types.RelativeTo(pass.Pkg))
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		if !enc[f.Name()] {
			pass.Reportf(encodeFn.Pos(), "%s field %s is not encoded by the Stats method", tname, f.Name())
		}
		if !dec[f.Name()] {
			pass.Reportf(decodeFn.Pos(), "%s field %s is not decoded by decodeStats", tname, f.Name())
		}
	}
}
