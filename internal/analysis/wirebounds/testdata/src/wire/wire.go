// Package wire is a miniature codec fixture seeding wirebounds
// violations: an unguarded buffer access, a kind that never encodes,
// non-exhaustive and default-less Kind switches, and a Stats field that
// crosses the wire in only one direction.
package wire

// Kind tags a frame.
type Kind uint8

// Frame kinds. KindC is deliberately never encoded.
const (
	kindInvalid Kind = iota
	KindA
	KindB
	KindC // want `frame kind KindC is never encoded \(no call passes it, e.g. begin\(KindC\)\)`
)

func begin(k Kind) { _ = k }

// EncodeA and EncodeB pass their kinds to begin; nothing passes KindC.
func EncodeA() { begin(KindA) }

// EncodeB encodes KindB.
func EncodeB() { begin(KindB) }

// Name decodes a kind for display but forgot KindC.
func Name(k Kind) string {
	switch k { // want `switch on Kind is missing cases: KindC`
	case KindA:
		return "a"
	case KindB:
		return "b"
	default:
		return "unknown"
	}
}

// Arity covers every kind but has no default for unknown input.
func Arity(k Kind) int {
	switch k { // want `switch on Kind has no default clause for unknown input`
	case KindA, KindB, KindC:
		return 1
	}
	return 0
}

// IsControl deliberately matches a subset and says so.
func IsControl(k Kind) bool {
	switch k { //selflearn:partial-ok fixture: deliberate subset
	case KindA:
		return true
	default:
		return false
	}
}

// ReadU16 is the cursor idiom: the access is dominated by a length check.
func ReadU16(b []byte) uint16 {
	if len(b) < 2 {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

// ReadUnchecked forgot the length check entirely.
func ReadUnchecked(b []byte) byte {
	return b[4] // want `index of decode buffer b is not dominated by a len\(b\) check`
}

// SliceUnchecked slices without a guard.
func SliceUnchecked(b []byte) []byte {
	return b[2:6] // want `slice of decode buffer b is not dominated by a len\(b\) or cap\(b\) check`
}

// Reslice cannot overrun: b\[:\] and b\[:0\] are always in bounds.
func Reslice(b []byte) []byte {
	b = b[:0]
	return b[:]
}

// ReadEscaped documents why the access is safe without a local guard.
func ReadEscaped(b []byte) byte {
	return b[0] //selflearn:bounds-ok fixture: caller guarantees one byte
}

// Stats crosses the wire in both directions.
type Stats struct {
	Batches uint64
	Alarms  uint64
	Dropped uint64
}

// Encoder is the encode half of the fixture codec.
type Encoder struct{ n int }

// Stats encodes st — but forgot Dropped.
func (e *Encoder) Stats(token uint64, st Stats) error { // want `Stats field Dropped is not encoded by the Stats method`
	e.n++
	_ = token
	_ = st.Batches
	_ = st.Alarms
	return nil
}

// decodeStats decodes a stats frame — but forgot Alarms.
func decodeStats(b []byte) Stats { // want `Stats field Alarms is not decoded by decodeStats`
	var st Stats
	if len(b) < 2 {
		return st
	}
	st.Batches = uint64(b[0])
	st.Dropped = uint64(b[1])
	return st
}
