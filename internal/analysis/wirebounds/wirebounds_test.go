package wirebounds_test

import (
	"testing"

	"selflearn/internal/analysis"
	"selflearn/internal/analysis/analysistest"
	"selflearn/internal/analysis/wirebounds"
)

func TestWireBounds(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{wirebounds.Analyzer}, "./testdata/src/wire")
}
