// Package load turns `go list -export -deps -json` output into
// type-checked packages for the selflearnvet analyzers.
//
// Module-internal packages are parsed and type-checked from source (so
// analyzers see comments and bodies); everything else — the standard
// library and any future external deps — is imported from the compiler
// export data `go list -export` leaves in the build cache. Packages
// come back in dependency order so analyzer facts flow dep-first, the
// same contract `go vet` provides via .vetx files.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one module-internal package, type-checked from source.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// DepOnly marks packages pulled in only as dependencies of the
	// requested patterns; drivers usually skip reporting for them.
	DepOnly bool
}

// A Result is the loaded, ordered package set.
type Result struct {
	Fset       *token.FileSet
	ModulePath string
	// Pkgs holds the module-internal packages in dependency order.
	Pkgs []*Package
}

// listPkg mirrors the subset of `go list -json` output we consume.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load runs `go list -export -deps -json` in dir over patterns and
// type-checks every module-internal package in the closure.
func Load(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}

	byPath := make(map[string]*listPkg)
	var order []*listPkg // go list -deps emits dependencies first
	dec := json.NewDecoder(&out)
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		byPath[lp.ImportPath] = lp
		order = append(order, lp)
	}

	modulePath := ""
	for _, lp := range order {
		if !lp.DepOnly && lp.Module != nil {
			modulePath = lp.Module.Path
			break
		}
	}

	res := &Result{Fset: token.NewFileSet(), ModulePath: modulePath}
	srcPkgs := make(map[string]*types.Package)
	exports := make(map[string]string)
	for _, lp := range order {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	gc := importer.ForCompiler(res.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	for _, lp := range order {
		inModule := lp.Module != nil && modulePath != "" && lp.Module.Path == modulePath
		if !inModule || lp.Standard {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		pkg, err := check(res.Fset, lp, srcPkgs, gc)
		if err != nil {
			return nil, err
		}
		srcPkgs[lp.ImportPath] = pkg.Types
		res.Pkgs = append(res.Pkgs, pkg)
	}
	return res, nil
}

// moduleImporter resolves module-internal imports to the source-checked
// packages and everything else through gc export data, applying one
// package's ImportMap (vendor/test renaming) first.
type moduleImporter struct {
	srcPkgs   map[string]*types.Package
	gc        types.Importer
	importMap map[string]string
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if r, ok := m.importMap[path]; ok {
		path = r
	}
	if p, ok := m.srcPkgs[path]; ok {
		return p, nil
	}
	return m.gc.Import(path)
}

func check(fset *token.FileSet, lp *listPkg, srcPkgs map[string]*types.Package, gc types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := &types.Config{
		Importer: &moduleImporter{srcPkgs: srcPkgs, gc: gc, importMap: lp.ImportMap},
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("%s: typecheck: %v", lp.ImportPath, firstErr)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		DepOnly:    lp.DepOnly,
	}, nil
}
