// Package analysis is a small, dependency-free re-creation of the
// golang.org/x/tools/go/analysis core: an Analyzer is a named check
// that runs over one type-checked package and reports diagnostics.
//
// The x/tools module is deliberately not vendored — the serving repo
// has zero external dependencies and keeps it that way — so this
// package defines just the surface the selflearnvet analyzers need:
//
//   - Analyzer / Pass / Diagnostic (the x/tools shapes, trimmed),
//   - package-level facts serialized as JSON so results flow between
//     packages both in-process (internal/analysis/checker) and across
//     `go vet -vettool` invocations (internal/analysis/unitchecker),
//   - //selflearn:* source-marker scanning shared by all analyzers
//     (see markers.go).
//
// Drivers: cmd/selflearnvet is the multichecker binary; it runs either
// standalone over `go list` packages or as a `go vet -vettool`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name is the analyzer's command-line name (lowercase, no spaces).
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run analyzes one package. It reports findings via pass.Report and
	// may return a package fact: any JSON-marshalable value made
	// available to later passes over importing packages through
	// Pass.ImportFact. A nil fact is fine.
	Run func(pass *Pass) (fact any, err error)
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ModulePath is the module under analysis ("selflearn" here); empty
	// when vetting a package outside any module.
	ModulePath string

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// ImportFact decodes the fact exported by this same analyzer for a
	// previously analyzed package into out (a pointer), returning false
	// if no fact is recorded for that package.
	ImportFact func(pkgPath string, out any) bool
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InModule reports whether pkgPath is inside the module under analysis.
func (p *Pass) InModule(pkgPath string) bool {
	if p.ModulePath == "" {
		return false
	}
	return pkgPath == p.ModulePath || strings.HasPrefix(pkgPath, p.ModulePath+"/")
}

// IsTestFile reports whether f was parsed from a _test.go file. All
// selflearnvet analyzers skip test files: the invariants they enforce
// are production hot-path/lock/wire discipline, and tests legitimately
// allocate, read wall clocks, and poke buffers unguarded.
func (p *Pass) IsTestFile(f *ast.File) bool {
	tf := p.Fset.File(f.Pos())
	return tf != nil && strings.HasSuffix(tf.Name(), "_test.go")
}
