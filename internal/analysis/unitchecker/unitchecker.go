// Package unitchecker implements the `go vet -vettool` protocol: cmd/go
// invokes the tool once per package with a JSON config file describing
// the compiled package (sources, import map, export data, dependency
// facts), and the tool writes its own facts for importers and reports
// diagnostics on stderr with a nonzero exit.
//
// This mirrors golang.org/x/tools/go/analysis/unitchecker against the
// vetConfig structure in cmd/go/internal/work, using only the standard
// library: export data is read with go/importer's gc lookup mode, and
// facts are the JSON package facts of internal/analysis.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"selflearn/internal/analysis"
)

// Config mirrors the JSON emitted by cmd/go for each vetted package.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run executes the protocol for one config file and returns the
// process exit code: 0 clean, 1 driver failure, 2 diagnostics found.
func Run(cfgPath string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selflearnvet: %v\n", err)
		return 1
	}

	// Packages outside a module — the standard library when go vet
	// computes dependency facts — carry no selflearn annotations; write
	// empty facts without typechecking them.
	facts := make(map[string]json.RawMessage)
	exit := 0
	if cfg.ModulePath != "" {
		exit = analyze(cfg, analyzers, facts)
	}
	if cfg.VetxOutput != "" {
		raw, err := json.Marshal(facts)
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, raw, 0o666)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "selflearnvet: writing facts: %v\n", err)
			return 1
		}
	}
	return exit
}

func readConfig(path string) (*Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(raw, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return cfg, nil
}

func analyze(cfg *Config, analyzers []*analysis.Analyzer, facts map[string]json.RawMessage) int {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "selflearnvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if r, ok := cfg.ImportMap[path]; ok {
			path = r
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := &types.Config{
		Importer: resolver{imp: imp, importMap: cfg.ImportMap},
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if firstErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "selflearnvet: %s: %v\n", cfg.ImportPath, firstErr)
		return 1
	}

	depFacts := newDepFacts(cfg)
	found := false
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        tpkg,
			TypesInfo:  info,
			ModulePath: cfg.ModulePath,
			Report: func(d analysis.Diagnostic) {
				found = true
				if !cfg.VetxOnly {
					fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, a.Name)
				}
			},
			ImportFact: func(pkgPath string, out any) bool {
				return depFacts.load(a.Name, pkgPath, out)
			},
		}
		fact, err := a.Run(pass)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selflearnvet: %s: %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
		if fact != nil {
			raw, err := json.Marshal(fact)
			if err != nil {
				fmt.Fprintf(os.Stderr, "selflearnvet: %s: marshaling fact: %v\n", a.Name, err)
				return 1
			}
			facts[a.Name] = raw
		}
	}
	if found && !cfg.VetxOnly {
		return 2
	}
	return 0
}

// resolver applies the package's ImportMap before delegating to the
// export-data importer.
type resolver struct {
	imp       types.Importer
	importMap map[string]string
}

func (r resolver) Import(path string) (*types.Package, error) {
	if m, ok := r.importMap[path]; ok {
		path = m
	}
	return r.imp.Import(path)
}

// depFacts lazily reads dependencies' .vetx files (JSON maps of
// analyzer name to fact) as analyzers ask for them.
type depFacts struct {
	cfg    *Config
	loaded map[string]map[string]json.RawMessage // pkgPath -> analyzer -> fact
}

func newDepFacts(cfg *Config) *depFacts {
	return &depFacts{cfg: cfg, loaded: make(map[string]map[string]json.RawMessage)}
}

func (d *depFacts) load(analyzer, pkgPath string, out any) bool {
	byAnalyzer, ok := d.loaded[pkgPath]
	if !ok {
		byAnalyzer = d.read(pkgPath)
		d.loaded[pkgPath] = byAnalyzer
	}
	raw, ok := byAnalyzer[analyzer]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

func (d *depFacts) read(pkgPath string) map[string]json.RawMessage {
	file, ok := d.cfg.PackageVetx[pkgPath]
	if !ok {
		// Test variants key facts under "path [path.test]" IDs.
		for k, v := range d.cfg.PackageVetx {
			if base, _, found := strings.Cut(k, " ["); found && base == pkgPath {
				file, ok = v, true
				break
			}
		}
	}
	if !ok {
		return nil
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		return nil
	}
	var m map[string]json.RawMessage
	if json.Unmarshal(raw, &m) != nil {
		return nil
	}
	return m
}
