package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// MarkerPrefix introduces every selflearnvet source annotation.
//
// The conventions (documented in DESIGN.md, "Correctness tooling"):
//
//	//selflearn:hotpath              on a func decl: alloc-free root
//	//selflearn:deterministic        in a package doc: nowallclock applies
//	//selflearn:alloc-ok <reason>    same-line or decl escape, hotpathalloc
//	//selflearn:wallclock-ok <why>   same-line escape, nowallclock
//	//selflearn:locked-ok <reason>   same-line escape, unlockedsend
//	//selflearn:bounds-ok <reason>   same-line escape, wirebounds
//
// Escapes are same-line only (trailing comments) so that a marker can
// never silently cover an adjacent statement; decl-level markers go in
// the function's doc comment and cover its whole body.
const MarkerPrefix = "//selflearn:"

// A Marker is one parsed //selflearn:name arg... comment.
type Marker struct {
	Name string // e.g. "hotpath", "alloc-ok"
	Arg  string // rest of the line, trimmed; the escape reason
}

// Markers indexes every //selflearn: comment in a package by file and
// line so analyzers can answer "is this construct escaped?" and "is
// this function annotated?" in O(1).
type Markers struct {
	fset   *token.FileSet
	byLine map[string]map[int][]Marker // filename -> line -> markers
	pkg    map[string]bool             // marker names in package doc comments
}

func parseMarker(text string) (Marker, bool) {
	if !strings.HasPrefix(text, MarkerPrefix) {
		return Marker{}, false
	}
	rest := strings.TrimPrefix(text, MarkerPrefix)
	name, arg, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Marker{}, false
	}
	return Marker{Name: name, Arg: strings.TrimSpace(arg)}, true
}

// CollectMarkers scans all comments in the pass's files.
func CollectMarkers(pass *Pass) *Markers {
	m := &Markers{
		fset:   pass.Fset,
		byLine: make(map[string]map[int][]Marker),
		pkg:    make(map[string]bool),
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				mk, ok := parseMarker(c.Text)
				if !ok {
					continue
				}
				p := m.fset.Position(c.Slash)
				lines := m.byLine[p.Filename]
				if lines == nil {
					lines = make(map[int][]Marker)
					m.byLine[p.Filename] = lines
				}
				lines[p.Line] = append(lines[p.Line], mk)
			}
		}
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				if mk, ok := parseMarker(c.Text); ok {
					m.pkg[mk.Name] = true
				}
			}
		}
	}
	return m
}

// PackageHas reports whether any file's package doc carries the marker.
func (m *Markers) PackageHas(name string) bool { return m.pkg[name] }

// EscapedAt reports whether the line holding pos carries the named
// marker (a trailing //selflearn:<name> comment).
func (m *Markers) EscapedAt(pos token.Pos, name string) bool {
	p := m.fset.Position(pos)
	for _, mk := range m.byLine[p.Filename][p.Line] {
		if mk.Name == name {
			return true
		}
	}
	return false
}

// FuncHas reports whether decl's doc comment (or the decl line itself)
// carries the named marker.
func (m *Markers) FuncHas(decl *ast.FuncDecl, name string) bool {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if mk, ok := parseMarker(c.Text); ok && mk.Name == name {
				return true
			}
		}
	}
	return m.EscapedAt(decl.Pos(), name)
}
