package hotpathalloc_test

import (
	"testing"

	"selflearn/internal/analysis"
	"selflearn/internal/analysis/analysistest"
	"selflearn/internal/analysis/hotpathalloc"
)

func TestHotpathAlloc(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{hotpathalloc.Analyzer}, "./testdata/src/a")
}
