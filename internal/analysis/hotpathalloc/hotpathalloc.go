// Package hotpathalloc flags allocating constructs in functions
// reachable from a //selflearn:hotpath annotation, turning the runtime
// 0 allocs/op guard benchmarks into a compile-time gate with precise
// source positions.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"selflearn/internal/analysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: `flag allocating constructs on //selflearn:hotpath routes

Functions annotated //selflearn:hotpath — and everything they reach
through same-package static calls — must not allocate per call in
steady state. The analyzer flags map/slice literals, &T{} literals,
closures, new, string concatenation and string<->[]byte conversions,
implicit interface conversions at call boundaries, fmt.* calls, calls
into non-allowlisted packages, go statements, un-guarded make, and
appends that leave their buffer's lineage. Recognized alloc-free idioms
pass without annotation: grow-once make under a cap/len/nil guard,
x = append(x, ...) buffer reuse, and return append(dst, ...) where dst
is a parameter. Calls into other module packages must target functions
that are themselves annotated (checked via package facts). Escapes:
//selflearn:alloc-ok <reason> on the construct's line, or in a function
doc comment to exempt the whole body. Cold error branches (an if block
that returns, in a function with an error result) are skipped.`,
	Run: run,
}

// Fact lists a package's //selflearn:hotpath-annotated functions, so
// cross-package hot calls can be validated without re-walking.
type Fact struct {
	Hotpath []string
}

// allowedPkgs are stdlib packages whose functions are trusted not to
// allocate on the paths this codebase uses (math kernels, atomics,
// in-place sorts, binary encoding into caller buffers).
var allowedPkgs = map[string]bool{
	"math":            true,
	"math/bits":       true,
	"math/cmplx":      true,
	"cmp":             true,
	"slices":          true,
	"sort":            true,
	"sync":            true,
	"sync/atomic":     true,
	"encoding/binary": true,
	"runtime":         true,
	"unsafe":          true,
	"time":            true, // Duration arithmetic; clock use is nowallclock's job
	"bufio":           true, // steady-state writes into a pre-grown buffer
	"errors":          true, // sentinel comparisons; errors.New in cold branches
	"io":              true,
}

const escape = "alloc-ok"

func run(pass *analysis.Pass) (any, error) {
	markers := analysis.CollectMarkers(pass)
	hot := pass.HotClosure(markers)

	var fact Fact
	for _, fi := range pass.PackageFuncs() {
		if markers.FuncHas(fi.Decl, "hotpath") {
			fact.Hotpath = append(fact.Hotpath, analysis.FuncName(fi.Obj))
		}
	}
	sort.Strings(fact.Hotpath)

	c := &checkerState{pass: pass, markers: markers, depFacts: make(map[string]*Fact)}
	// Deterministic order: by declaration position.
	fns := make([]*types.Func, 0, len(hot))
	for fn := range hot {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return hot[fns[i]].Pos() < hot[fns[j]].Pos() })
	for _, fn := range fns {
		decl := hot[fn]
		if markers.FuncHas(decl, escape) {
			continue
		}
		c.checkFunc(decl)
	}
	return fact, nil
}

type checkerState struct {
	pass     *analysis.Pass
	markers  *analysis.Markers
	depFacts map[string]*Fact
}

func (c *checkerState) annotatedIn(pkgPath, name string) bool {
	f, ok := c.depFacts[pkgPath]
	if !ok {
		f = new(Fact)
		if !c.pass.ImportFact(pkgPath, f) {
			f = &Fact{}
		}
		c.depFacts[pkgPath] = f
	}
	for _, n := range f.Hotpath {
		if n == name {
			return true
		}
	}
	return false
}

func (c *checkerState) report(pos token.Pos, format string, args ...any) {
	if c.markers.EscapedAt(pos, escape) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// blockTerminates reports whether the block's last statement is a
// return or a panic — the shape of a cold error branch.
func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func hasErrorResult(decl *ast.FuncDecl, info *types.Info) bool {
	if decl.Type.Results == nil {
		return false
	}
	for _, f := range decl.Type.Results.List {
		if t := info.TypeOf(f.Type); t != nil && types.Identical(t, types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

func (c *checkerState) checkFunc(decl *ast.FuncDecl) {
	info := c.pass.TypesInfo
	coldOK := hasErrorResult(decl, info)

	params := make(map[string]bool)
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			for _, n := range f.Names {
				params[n.Name] = true
			}
		}
	}
	for _, f := range decl.Type.Params.List {
		for _, n := range f.Names {
			params[n.Name] = true
		}
	}

	skip := make(map[ast.Node]bool)
	analysis.WalkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		if skip[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			if coldOK {
				if blockTerminates(n.Body) {
					skip[n.Body] = true
				}
				if b, ok := n.Else.(*ast.BlockStmt); ok && blockTerminates(b) {
					skip[b] = true
				}
			}

		case *ast.FuncLit:
			c.report(n.Pos(), "closure allocates on the hot path")
			return false

		case *ast.GoStmt:
			c.report(n.Pos(), "go statement on the hot path spawns a goroutine (allocates)")

		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				c.report(n.Pos(), "map literal allocates on the hot path")
				return false
			case *types.Slice:
				c.report(n.Pos(), "slice literal allocates on the hot path")
				return false
			}

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(n.Pos(), "&composite literal allocates on the hot path")
					return false
				}
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				tv := info.Types[n]
				if tv.Value == nil && isString(tv.Type) {
					c.report(n.Pos(), "string concatenation allocates on the hot path")
				}
			}

		case *ast.CallExpr:
			c.checkCall(n, stack, params)
		}
		return true
	})
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func (c *checkerState) checkCall(call *ast.CallExpr, stack []ast.Node, params map[string]bool) {
	info := c.pass.TypesInfo

	// Type conversion T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type, stack)
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make":
				c.checkMake(call, stack)
			case "new":
				c.report(call.Pos(), "new allocates on the hot path")
			case "append":
				c.checkAppend(call, stack, params)
			}
			return
		}
	}

	flagged := false
	if fn := analysis.StaticCallee(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg() != c.pass.Pkg {
		path := fn.Pkg().Path()
		switch {
		case c.pass.InModule(path):
			if name := analysis.FuncName(fn); !c.annotatedIn(path, name) {
				c.report(call.Pos(), "hot path calls %s.%s, which is not annotated //selflearn:hotpath", path, name)
				flagged = true
			}
		case path == "fmt":
			c.report(call.Pos(), "fmt.%s allocates on the hot path", fn.Name())
			flagged = true
		case !allowedPkgs[path]:
			c.report(call.Pos(), "hot path calls %s.%s, which may allocate", path, fn.Name())
			flagged = true
		}
	}
	if !flagged {
		c.checkBoxing(call)
	}
}

// checkBoxing flags concrete arguments passed to interface parameters.
func (c *checkerState) checkBoxing(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through, no boxing
			}
			pt = sig.Params().At(np - 1).Type().Underlying().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		atv := info.Types[arg]
		if atv.IsNil() || atv.Type == nil || types.IsInterface(atv.Type) {
			continue
		}
		c.report(arg.Pos(), "passing %s to interface parameter boxes it (allocates) on the hot path", types.TypeString(atv.Type, types.RelativeTo(c.pass.Pkg)))
	}
}

func (c *checkerState) checkConversion(call *ast.CallExpr, target types.Type, stack []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	info := c.pass.TypesInfo
	arg := call.Args[0]
	atv := info.Types[arg]
	if atv.IsNil() || atv.Type == nil {
		return
	}
	if _, isTP := target.(*types.TypeParam); !isTP && types.IsInterface(target) && !types.IsInterface(atv.Type) {
		c.report(call.Pos(), "conversion to interface %s boxes the value (allocates) on the hot path", types.TypeString(target, types.RelativeTo(c.pass.Pkg)))
		return
	}
	s2b := isString(target) && isByteOrRuneSlice(atv.Type)
	b2s := isByteOrRuneSlice(target) && isString(atv.Type)
	if s2b || b2s {
		// m[string(b)] lookups are compiler-optimized and do not allocate.
		if len(stack) > 0 {
			if idx, ok := stack[len(stack)-1].(*ast.IndexExpr); ok && ast.Unparen(idx.Index) == call {
				if _, isMap := info.TypeOf(idx.X).Underlying().(*types.Map); isMap {
					return
				}
			}
		}
		c.report(call.Pos(), "string<->[]byte conversion copies (allocates) on the hot path")
	}
}

// checkMake accepts the grow-once idiom and flags everything else. Two
// shapes qualify: a make assigned to x inside an if whose condition
// tests cap(x), len(x), or x == nil; and a make dominated by an
// insufficient-capacity test — cap(anything) compared with < or <= —
// which covers grow helpers (return make under if cap(buf) < n) and
// copy-and-swap grows (details := make(...) under if cap(d.Details) <
// level). Capacity tests only: a len() branch is a batch-size split,
// not a grow guard, and stays flagged.
func (c *checkerState) checkMake(call *ast.CallExpr, stack []ast.Node) {
	lhs := ""
	for i := len(stack) - 1; i >= 0; i-- {
		if as, ok := stack[i].(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for j, r := range as.Rhs {
				if containsNode(r, call) {
					lhs = types.ExprString(as.Lhs[j])
				}
			}
			break
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if lhs != "" && condGuardsGrow(ifs.Cond, lhs) {
			return
		}
		if condTestsCapacity(ifs.Cond) {
			return
		}
	}
	c.report(call.Pos(), "make allocates on the hot path (no grow-once guard on %q)", lhs)
}

// condTestsCapacity reports whether cond contains an
// insufficient-capacity comparison: cap(e) < x, cap(e) <= x, or the
// mirrored x > cap(e), x >= cap(e).
func condTestsCapacity(cond ast.Expr) bool {
	isCap := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "cap"
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.LSS, token.LEQ:
				found = found || isCap(b.X)
			case token.GTR, token.GEQ:
				found = found || isCap(b.Y)
			}
		}
		return true
	})
	return found
}

// condGuardsGrow reports whether cond mentions cap(lhs), len(lhs), or
// lhs == nil anywhere (|| / && compositions included).
func condGuardsGrow(cond ast.Expr, lhs string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				if len(n.Args) == 1 && types.ExprString(n.Args[0]) == lhs {
					found = true
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				x, y := types.ExprString(n.X), types.ExprString(n.Y)
				if (x == lhs && y == "nil") || (y == lhs && x == "nil") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// rootOf strips slicing/indexing/parens down to the base identifier or
// selector, the "lineage" of a buffer: rootOf(rows[k][:0]) == "rows".
func rootOf(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			return types.ExprString(x)
		default:
			return ""
		}
	}
}

func containsNode(root ast.Expr, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// checkAppend accepts appends that stay in their buffer's lineage
// (x = append(x, ...), including sliced/indexed forms on either side)
// and the Into idiom (return append(dst, ...) with dst a parameter);
// everything else allocates a fresh or growing buffer per call.
func (c *checkerState) checkAppend(call *ast.CallExpr, stack []ast.Node, params map[string]bool) {
	if len(call.Args) == 0 {
		return
	}
	root := rootOf(ast.Unparen(call.Args[0]))
	if root == "" {
		c.report(call.Pos(), "append to a fresh buffer allocates on the hot path")
		return
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch st := stack[i].(type) {
		case *ast.AssignStmt:
			for j, r := range st.Rhs {
				if j < len(st.Lhs) && containsNode(r, call) {
					if rootOf(st.Lhs[j]) == root {
						return // x = append(x, ...): reused buffer
					}
				}
			}
			c.report(call.Pos(), "append result leaves %q's lineage (allocates a second buffer) on the hot path", root)
			return
		case *ast.ReturnStmt:
			if params[root] {
				return // return append(dst, ...): caller-owned buffer
			}
			c.report(call.Pos(), "returned append does not extend a caller-provided buffer on the hot path")
			return
		case *ast.CallExpr, *ast.CompositeLit:
			c.report(call.Pos(), "append result is consumed by another expression (allocates) on the hot path")
			return
		}
	}
	c.report(call.Pos(), "append result is discarded or leaves its lineage on the hot path")
}
