// Package a seeds hotpathalloc violations (and clean idioms) for the
// analysistest harness.
package a

import (
	"fmt"
	"strconv"

	"selflearn/internal/analysis/hotpathalloc/testdata/src/hotdep"
)

type point struct{ x, y int }

func emit(x any) { _ = x }

//selflearn:hotpath
func grows(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n) // grow-once: guarded by cap(buf)
	}
	buf = buf[:n]
	fresh := make([]float64, n) // want `make allocates on the hot path \(no grow-once guard on "fresh"\)`
	_ = fresh
	return growHelper(buf, n)
}

// growHelper is hot transitively (same-package static call from grows).
func growHelper(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n) // grow helper: dominated by a capacity test
	}
	return buf[:n]
}

// arena mirrors the wire encoder's scratch-body shape: append-style
// grow that must preserve existing contents.
type arena struct{ buf []byte }

//selflearn:hotpath
func (a *arena) grow(n int) []byte {
	if cap(a.buf) < len(a.buf)+n {
		grown := make([]byte, len(a.buf), 2*len(a.buf)+n) // copy-and-swap grow: dominated by a capacity test
		copy(grown, a.buf)
		a.buf = grown
	}
	b := a.buf[len(a.buf) : len(a.buf)+n]
	a.buf = a.buf[:len(a.buf)+n]
	return b
}

//selflearn:hotpath
func (a *arena) growUnguarded(n int) []byte {
	grown := make([]byte, len(a.buf)+n) // want `make allocates on the hot path \(no grow-once guard on "grown"\)`
	copy(grown, a.buf)
	a.buf = grown
	return a.buf
}

// spill mirrors the batch predictors: a stack buffer for the common
// case, an escaped heap spill above it.
//
//selflearn:hotpath
func spill(nRows int) []int32 {
	var stack [64]int32
	if nRows <= 64 {
		return stack[:nRows]
	}
	return make([]int32, nRows) //selflearn:alloc-ok fixture: large-batch spill, amortized
}

//selflearn:hotpath
func lits(n int) *point {
	_ = []int{n}        // want `slice literal allocates on the hot path`
	_ = map[int]int{}   // want `map literal allocates on the hot path`
	_ = new(int)        // want `new allocates on the hot path`
	return &point{n, n} // want `&composite literal allocates on the hot path`
}

//selflearn:hotpath
func spawn(done chan struct{}) {
	go func() { // want `go statement on the hot path spawns a goroutine` `closure allocates on the hot path`
		close(done)
	}()
}

//selflearn:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation allocates on the hot path`
}

//selflearn:hotpath
func conversions(m map[string]int, key []byte, n int) int {
	v := m[string(key)] // m[string(b)] lookups are compiler-optimized
	s := string(key)    // want `string<->\[\]byte conversion copies \(allocates\) on the hot path`
	_ = s
	emit(n) // want `passing int to interface parameter boxes it \(allocates\) on the hot path`
	return v
}

//selflearn:hotpath
func callees(n int) string {
	fmt.Println(n)         // want `fmt.Println allocates on the hot path`
	hotdep.Annotated(n)    // annotated cross-package callee: fine
	hotdep.Plain(n)        // want `hot path calls selflearn/internal/analysis/hotpathalloc/testdata/src/hotdep.Plain, which is not annotated`
	return strconv.Itoa(n) // want `hot path calls strconv.Itoa, which may allocate`
}

//selflearn:hotpath
func appends(dst []int, n int) []int {
	dst = append(dst, n) // same lineage: reused buffer
	var other []int
	other = append(dst, n) // want `append result leaves "dst"'s lineage \(allocates a second buffer\) on the hot path`
	_ = other
	return append(dst, n) // Into idiom: caller-owned buffer
}

//selflearn:hotpath
func cold(n int) error {
	if n < 0 {
		return fmt.Errorf("a: bad n %d", n) // cold error branch: skipped
	}
	return nil
}

//selflearn:hotpath
func escaped(n int) []int {
	return make([]int, n) //selflearn:alloc-ok fixture: deliberate per-call buffer
}

// wholeFuncEscape is hot but escaped at declaration level.
//
//selflearn:alloc-ok fixture: measured, amortized by the caller
//selflearn:hotpath
func wholeFuncEscape(n int) []int {
	return make([]int, n)
}
