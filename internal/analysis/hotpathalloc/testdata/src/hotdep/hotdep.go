// Package hotdep is a dependency fixture: Annotated exports the
// hotpath fact, Plain does not.
package hotdep

//selflearn:hotpath
func Annotated(n int) int { return n * 2 }

func Plain(n int) int { return n + 1 }
