// Package lockdep is a dependency fixture: Notify transitively performs
// a channel send (exported via the package fact), Pure does not.
package lockdep

// Notify sends v on ch.
func Notify(ch chan int, v int) {
	ch <- v
}

// Pure is lock-safe.
func Pure(v int) int { return v }
