// Package lock seeds unlockedsend violations: sends, callbacks, and
// module-interface calls made while a mutex is held.
package lock

import (
	"sync"

	"selflearn/internal/analysis/unlockedsend/testdata/src/lockdep"
)

// Sink is a module interface; calls through it under a lock are flagged.
type Sink interface {
	Emit(v int)
}

// Hub mixes a mutex with an event channel, a hook, and a sink.
type Hub struct {
	mu   sync.Mutex
	ch   chan int
	hook func(int)
	sink Sink
}

// SendLocked blocks on ch with mu pinned.
func (h *Hub) SendLocked(v int) {
	h.mu.Lock()
	h.ch <- v // want `channel send while holding h\.mu \(a blocked receiver pins the lock\)`
	h.mu.Unlock()
}

// SendUnlocked releases first; the send is clean.
func (h *Hub) SendUnlocked(v int) {
	h.mu.Lock()
	h.mu.Unlock()
	h.ch <- v
}

// DeferSend holds the lock to function end via defer.
func (h *Hub) DeferSend(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ch <- v // want `channel send while holding h\.mu`
}

// Callback invokes a func-typed field under the lock.
func (h *Hub) Callback(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hook(v) // want `calls a func-typed value \(callback\) while holding h\.mu`
}

// Interface calls through a module interface under the lock.
func (h *Hub) Interface(v int) {
	h.mu.Lock()
	h.sink.Emit(v) // want `calls Sink.Emit through a module interface while holding h\.mu`
	h.mu.Unlock()
}

// Transitive reaches the send through a same-package helper.
func (h *Hub) Transitive(v int) {
	h.mu.Lock()
	h.emit(v) // want `call to Hub.emit, which performs a channel send while holding h\.mu`
	h.mu.Unlock()
}

func (h *Hub) emit(v int) {
	h.ch <- v
}

// CrossPkg reaches the send through an exported dependency fact.
func (h *Hub) CrossPkg(v int) {
	h.mu.Lock()
	lockdep.Notify(h.ch, v) // want `call to lockdep.Notify, which performs a channel send while holding h\.mu`
	_ = lockdep.Pure(v)     // pure dependency call: fine under the lock
	h.mu.Unlock()
}

// NonBlocking is the close-handshake idiom: a select with a default
// cannot pin the lock, and says so.
func (h *Hub) NonBlocking(v int) {
	h.mu.Lock()
	select {
	case h.ch <- v: //selflearn:locked-ok fixture: non-blocking send, default below
	default:
	}
	h.mu.Unlock()
}

// BranchUnlock releases inside the branch before sending.
func (h *Hub) BranchUnlock(v int, fast bool) {
	h.mu.Lock()
	if fast {
		h.mu.Unlock()
		h.ch <- v
		return
	}
	h.mu.Unlock()
}

// Reg exercises the read side of an RWMutex.
type Reg struct {
	mu sync.RWMutex
	ch chan int
}

// ReadSend sends under RLock; readers pin writers all the same.
func (r *Reg) ReadSend(v int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.ch <- v // want `channel send while holding r\.mu`
}
