package unlockedsend_test

import (
	"testing"

	"selflearn/internal/analysis"
	"selflearn/internal/analysis/analysistest"
	"selflearn/internal/analysis/unlockedsend"
)

func TestUnlockedSend(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{unlockedsend.Analyzer}, "./testdata/src/lock")
}
