// Package unlockedsend flags channel sends, func-value callbacks, and
// module-interface calls (ShardTransport, Shard, event sinks, stores)
// made while a sync.Mutex or sync.RWMutex is held — the event-hub and
// model-cache deadlock class: a callback that re-enters the locking
// component, or a send that blocks with the lock pinned, wedges every
// other goroutine contending for it.
package unlockedsend

import (
	"go/ast"
	"go/types"
	"sort"

	"selflearn/internal/analysis"
)

// Analyzer is the unlockedsend pass.
var Analyzer = &analysis.Analyzer{
	Name: "unlockedsend",
	Doc: `no channel send, callback, or module-interface call under a held mutex

Tracks mu.Lock()/mu.RLock() ... mu.Unlock() regions (including the
defer Unlock idiom) through straight-line and branching code, and flags
inside them: channel send statements, calls of func-typed values
(onEvict, sinks, hooks), and method calls through interfaces declared
in this module (ShardTransport, Shard, ModelStore, ...). Calls to
functions that transitively perform one of those operations are flagged
too — same-package via a fixpoint over function summaries, cross-package
via exported package facts. Deliberate patterns (a non-blocking select
send used as a close-handshake, a serialization mutex whose entire
point is guarding the callee) are escaped with
//selflearn:locked-ok <reason> on the flagged line.`,
	Run: run,
}

// Fact records which exported functions of a package perform a send,
// callback, or module-interface call (directly or transitively), so
// callers in other packages can check calls made under their own locks.
type Fact struct {
	Sends map[string]string // FuncName -> short description of what it does
}

const escape = "locked-ok"

func run(pass *analysis.Pass) (any, error) {
	markers := analysis.CollectMarkers(pass)
	funcs := pass.PackageFuncs()

	c := &checkerState{
		pass:     pass,
		markers:  markers,
		decls:    make(map[*types.Func]*ast.FuncDecl, len(funcs)),
		summary:  make(map[*types.Func]string),
		depFacts: make(map[string]*Fact),
	}
	for _, fi := range funcs {
		c.decls[fi.Obj] = fi.Decl
	}

	// Fixpoint over same-package call edges: a function "sends" if its
	// body sends directly or calls a sender.
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if c.summary[fi.Obj] != "" {
				continue
			}
			if why := c.bodySends(fi.Decl); why != "" {
				c.summary[fi.Obj] = why
				changed = true
			}
		}
	}

	for _, fi := range funcs {
		c.checkFunc(fi.Decl)
	}

	fact := Fact{Sends: make(map[string]string)}
	for fn, why := range c.summary {
		if fn.Exported() {
			fact.Sends[analysis.FuncName(fn)] = why
		}
	}
	return fact, nil
}

type checkerState struct {
	pass     *analysis.Pass
	markers  *analysis.Markers
	decls    map[*types.Func]*ast.FuncDecl
	summary  map[*types.Func]string // non-empty: why this function "sends"
	depFacts map[string]*Fact
}

func (c *checkerState) depSends(pkgPath, name string) string {
	f, ok := c.depFacts[pkgPath]
	if !ok {
		f = new(Fact)
		if !c.pass.ImportFact(pkgPath, f) {
			f = &Fact{}
		}
		c.depFacts[pkgPath] = f
	}
	return f.Sends[name]
}

// classifyCall describes what call does if it is one of the flagged
// operations: a func-value callback, a module-interface method call, or
// a (possibly cross-package) call to a function that transitively sends.
func (c *checkerState) classifyCall(call *ast.CallExpr) string {
	info := c.pass.TypesInfo

	if fn := analysis.StaticCallee(info, call); fn != nil {
		if fn.Pkg() == c.pass.Pkg {
			if why := c.summary[fn]; why != "" {
				return "call to " + analysis.FuncName(fn) + ", which " + why
			}
			return ""
		}
		if fn.Pkg() != nil && c.pass.InModule(fn.Pkg().Path()) {
			if why := c.depSends(fn.Pkg().Path(), analysis.FuncName(fn)); why != "" {
				return "call to " + fn.Pkg().Name() + "." + fn.Name() + ", which " + why
			}
		}
		return ""
	}

	// Not a static call: conversion, builtin, func value, or interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return ""
	}
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return ""
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recv := s.Recv()
			if types.IsInterface(recv) {
				if n, ok := recv.(*types.Named); ok {
					if pkg := n.Obj().Pkg(); pkg != nil && c.pass.InModule(pkg.Path()) {
						return "calls " + n.Obj().Name() + "." + sel.Sel.Name + " through a module interface"
					}
				}
				return "" // stdlib interface (io.Writer, error, ...)
			}
		}
	}
	if t := info.TypeOf(call.Fun); t != nil {
		if _, ok := t.Underlying().(*types.Signature); ok {
			return "calls a func-typed value (callback)"
		}
	}
	return ""
}

// bodySends scans a whole body (ignoring lock state) for the first
// flagged operation, for the transitive summary.
func (c *checkerState) bodySends(decl *ast.FuncDecl) string {
	why := ""
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			why = "performs a channel send"
			return false
		case *ast.CallExpr:
			if w := c.classifyCall(n); w != "" {
				why = w
				return false
			}
		}
		return true
	})
	return why
}

// mutexMethod resolves call as a sync.Mutex/RWMutex method invocation,
// returning the method name and the receiver expression's text.
func (c *checkerState) mutexMethod(call *ast.CallExpr) (name, recv string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		return fn.Name(), types.ExprString(sel.X)
	}
	return "", ""
}

func (c *checkerState) checkFunc(decl *ast.FuncDecl) {
	c.walkStmts(decl.Body.List, make(map[string]bool))
}

func (c *checkerState) heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// walkStmts runs the statement list in order, mutating held as locks
// are taken and released; branches recurse on a copy so a conditional
// unlock cannot leak out of its branch.
func (c *checkerState) walkStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				switch name, recv := c.mutexMethod(call); name {
				case "Lock", "RLock":
					c.checkExpr(s.X, held) // args evaluated before the lock
					held[recv] = true
					continue
				case "Unlock", "RUnlock":
					delete(held, recv)
					continue
				}
			}
			c.checkExpr(s.X, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the region open to function end;
			// any other deferred call runs after the region, unchecked.
			if name, _ := c.mutexMethod(s.Call); name == "" {
				c.checkExpr(s.Call, held)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				c.walkStmts([]ast.Stmt{s.Init}, held)
			}
			c.checkExpr(s.Cond, held)
			c.walkStmts(s.Body.List, copyHeld(held))
			if s.Else != nil {
				c.walkStmts([]ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.BlockStmt:
			c.walkStmts(s.List, copyHeld(held))
		case *ast.ForStmt:
			if s.Init != nil {
				c.walkStmts([]ast.Stmt{s.Init}, held)
			}
			if s.Cond != nil {
				c.checkExpr(s.Cond, held)
			}
			inner := copyHeld(held)
			c.walkStmts(s.Body.List, inner)
			if s.Post != nil {
				c.walkStmts([]ast.Stmt{s.Post}, inner)
			}
		case *ast.RangeStmt:
			c.checkExpr(s.X, held)
			c.walkStmts(s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if s.Init != nil {
				c.walkStmts([]ast.Stmt{s.Init}, held)
			}
			if s.Tag != nil {
				c.checkExpr(s.Tag, held)
			}
			for _, cc := range s.Body.List {
				if clause, ok := cc.(*ast.CaseClause); ok {
					c.walkStmts(clause.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				if clause, ok := cc.(*ast.CaseClause); ok {
					c.walkStmts(clause.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if clause, ok := cc.(*ast.CommClause); ok {
					if clause.Comm != nil {
						c.walkStmts([]ast.Stmt{clause.Comm}, copyHeld(held))
					}
					c.walkStmts(clause.Body, copyHeld(held))
				}
			}
		case *ast.SendStmt:
			c.flagSend(s, held)
			c.checkExpr(s.Value, held)
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				c.checkExpr(r, held)
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				c.checkExpr(r, held)
			}
		case *ast.GoStmt:
			// The spawned goroutine runs without the caller's locks; the
			// spawn itself doesn't block.
		case *ast.LabeledStmt:
			c.walkStmts([]ast.Stmt{s.Stmt}, held)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							c.checkExpr(v, held)
						}
					}
				}
			}
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (c *checkerState) flagSend(s *ast.SendStmt, held map[string]bool) {
	if len(held) == 0 || c.markers.EscapedAt(s.Pos(), escape) {
		return
	}
	c.pass.Reportf(s.Pos(), "channel send while holding %s (a blocked receiver pins the lock)", c.heldNames(held))
}

// checkExpr flags offending calls in an expression evaluated under the
// current lock set. Function literals are skipped: their bodies run
// when invoked, and the invocation is what gets flagged.
func (c *checkerState) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if why := c.classifyCall(n); why != "" && !c.markers.EscapedAt(n.Pos(), escape) {
				c.pass.Reportf(n.Pos(), "%s while holding %s", why, c.heldNames(held))
			}
		}
		return true
	})
}
