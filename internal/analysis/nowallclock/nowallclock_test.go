package nowallclock_test

import (
	"testing"

	"selflearn/internal/analysis"
	"selflearn/internal/analysis/analysistest"
	"selflearn/internal/analysis/nowallclock"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{nowallclock.Analyzer},
		"./testdata/src/det", "./testdata/src/hot")
}
