// Package det is a replay-deterministic fixture: the whole package is
// covered via the package marker below.
//
//selflearn:deterministic
package det

import (
	"math/rand"
	"time"
)

func Tick() time.Time {
	return time.Now() // want `time.Now reads the wall clock in a deterministic package`
}

func Age(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock in a deterministic package`
}

func Jitter() float64 {
	return rand.Float64() // want `global math/rand.Float64 is unseeded per-process state`
}

func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // New* constructors are fine
	return r.Float64()                  // methods on a seeded *rand.Rand are fine
}

func Deadline(d time.Duration) time.Time {
	return time.Now().Add(d) //selflearn:wallclock-ok fixture: operational deadline
}
