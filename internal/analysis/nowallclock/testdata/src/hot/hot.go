// Package hot exercises nowallclock's hot-path mode: the package is not
// deterministic, but functions reachable from a //selflearn:hotpath
// annotation are still denied the wall clock.
package hot

import "time"

//selflearn:hotpath
func Stamp() int64 {
	return now()
}

// now is hot transitively, via the static call from Stamp.
func now() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock in a hot path`
}

// Cold is not on any hot path; the clock is fine here.
func Cold() time.Time {
	return time.Now()
}
