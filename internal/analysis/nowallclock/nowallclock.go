// Package nowallclock denies wall-clock reads and global RNG use in
// deterministic packages and on annotated hot paths: alarms must be
// bit-identical across process boundaries and replays, so replay state
// may only advance on stream time and seeded generators.
package nowallclock

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"selflearn/internal/analysis"
)

// Analyzer is the nowallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc: `deny time.Now/Since/Until and global math/rand in deterministic code

Applies to the repo's deterministic packages (internal/rt,
internal/eval, internal/scenario), to any package whose package doc
carries //selflearn:deterministic, and to every function reachable from
a //selflearn:hotpath annotation anywhere. Seeded generators are fine:
rand.New(rand.NewSource(seed)) and methods on a *rand.Rand pass;
the package-level convenience functions (rand.Intn, rand.Float64, ...)
draw from the process-global source and are denied. Genuinely
operational call sites — health-check deadlines, drain timeouts — are
escaped with //selflearn:wallclock-ok <reason> on the same line.`,
	Run: run,
}

// deterministicDirs are module-relative package paths (and subtrees)
// that must stay replayable without a wall clock.
var deterministicDirs = []string{
	"internal/rt",
	"internal/eval",
	"internal/scenario",
}

const escape = "wallclock-ok"

func run(pass *analysis.Pass) (any, error) {
	markers := analysis.CollectMarkers(pass)

	wholePkg := markers.PackageHas("deterministic")
	if !wholePkg && pass.ModulePath != "" {
		rel := strings.TrimPrefix(pass.Pkg.Path(), pass.ModulePath+"/")
		for _, d := range deterministicDirs {
			if rel == d || strings.HasPrefix(rel, d+"/") {
				wholePkg = true
				break
			}
		}
	}

	var decls []*ast.FuncDecl
	if wholePkg {
		for _, fi := range pass.PackageFuncs() {
			decls = append(decls, fi.Decl)
		}
	} else {
		hot := pass.HotClosure(markers)
		for _, decl := range hot {
			decls = append(decls, decl)
		}
		sort.Slice(decls, func(i, j int) bool { return decls[i].Pos() < decls[j].Pos() })
	}

	for _, decl := range decls {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.StaticCallee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if markers.EscapedAt(call.Pos(), escape) {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Type().(*types.Signature).Recv() == nil {
					switch fn.Name() {
					case "Now", "Since", "Until":
						c := "deterministic package"
						if !wholePkg {
							c = "hot path"
						}
						pass.Reportf(call.Pos(), "time.%s reads the wall clock in a %s; advance on stream time or escape with //selflearn:wallclock-ok <reason>", fn.Name(), c)
					}
				}
			case "math/rand", "math/rand/v2":
				// Package-level funcs draw from the global source; the
				// New* constructors and *Rand methods are seeded and fine.
				if fn.Type().(*types.Signature).Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(call.Pos(), "global %s.%s is unseeded per-process state; use a seeded *rand.Rand", fn.Pkg().Path(), fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
