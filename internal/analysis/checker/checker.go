// Package checker runs selflearnvet analyzers over packages loaded by
// internal/analysis/load, threading JSON package facts dep-first. It is
// the in-process driver behind `selflearnvet ./...` and analysistest;
// `go vet -vettool` mode lives in internal/analysis/unitchecker.
package checker

import (
	"encoding/json"
	"fmt"
	"go/token"
	"sort"

	"selflearn/internal/analysis"
	"selflearn/internal/analysis/load"
)

// A Finding is one diagnostic, resolved to a file position.
type Finding struct {
	Pos      token.Position
	PkgPath  string
	DepOnly  bool
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Run applies every analyzer to every module-internal package in res,
// in dependency order, and returns the findings sorted by position.
func Run(res *load.Result, analyzers []*analysis.Analyzer) ([]Finding, error) {
	// facts[analyzer][pkgPath] is the analyzer's exported package fact.
	facts := make(map[string]map[string]json.RawMessage, len(analyzers))
	for _, a := range analyzers {
		facts[a.Name] = make(map[string]json.RawMessage)
	}
	var findings []Finding
	for _, pkg := range res.Pkgs {
		for _, a := range analyzers {
			a := a
			pkg := pkg
			pass := &analysis.Pass{
				Analyzer:   a,
				Fset:       res.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				ModulePath: res.ModulePath,
				Report: func(d analysis.Diagnostic) {
					findings = append(findings, Finding{
						Pos:      res.Fset.Position(d.Pos),
						PkgPath:  pkg.ImportPath,
						DepOnly:  pkg.DepOnly,
						Analyzer: a.Name,
						Message:  d.Message,
					})
				},
				ImportFact: func(pkgPath string, out any) bool {
					raw, ok := facts[a.Name][pkgPath]
					if !ok {
						return false
					}
					return json.Unmarshal(raw, out) == nil
				},
			}
			fact, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
			if fact != nil {
				raw, err := json.Marshal(fact)
				if err != nil {
					return nil, fmt.Errorf("%s: %s: marshaling fact: %v", a.Name, pkg.ImportPath, err)
				}
				facts[a.Name][pkg.ImportPath] = raw
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
