package pipeline

import (
	"fmt"
	"math/rand"

	"selflearn/internal/chbmit"
	"selflearn/internal/features"
	"selflearn/internal/ml/forest"
	"selflearn/internal/ml/metrics"
	"selflearn/internal/signal"
	"selflearn/internal/stats"
)

// GenericResult compares personalized training (same-patient seizures,
// the paper's protocol) against generic training (other patients'
// seizures) at equal training-set size. Section I motivates the whole
// methodology with the observation that "the variability of the brain
// signals across patients significantly degrades the classification
// performance between generic and personalized approaches"; this
// experiment quantifies that claim on the synthetic corpus.
type GenericResult struct {
	PerPatient []GenericPatientResult
	// PersonalizedGeoMean / GenericGeoMean aggregate across patients.
	PersonalizedGeoMean, GenericGeoMean float64
}

// GenericPatientResult is one patient's comparison.
type GenericPatientResult struct {
	PatientID    string
	Ordinal      int
	TrainCount   int
	Personalized metrics.Confusion
	Generic      metrics.Confusion
}

// Gap returns the personalized-minus-generic geometric-mean gap in
// percentage points.
func (g *GenericResult) Gap() float64 {
	return 100 * (g.PersonalizedGeoMean - g.GenericGeoMean)
}

// ValidateGeneric runs the generic-vs-personalized experiment. For every
// patient, the last seizure record is held out for testing. The
// personalized arm trains on up to MaxTrainSeizures of the patient's
// other seizures; the generic arm trains on the *same number* of
// seizures drawn one per other patient, so the only variable is whose
// EEG the training data comes from. Both training sets are balanced at
// the window level and labeled with expert annotations (best case for
// both arms).
func ValidateGeneric(opts Options) (*GenericResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	patients := opts.Patients
	if patients == nil {
		patients = chbmit.Patients()
	}
	if len(patients) < 2 {
		return nil, fmt.Errorf("pipeline: generic experiment needs >=2 patients, got %d", len(patients))
	}
	// Lazy per-(patient, seizure) extraction cache.
	cache := map[[2]int]*seizureData{}
	prepare := func(pi, seizureIdx int) (*seizureData, error) {
		key := [2]int{pi, seizureIdx}
		if d, ok := cache[key]; ok {
			return d, nil
		}
		d, err := prepareSeizure(patients[pi], seizureIdx, opts)
		if err != nil {
			return nil, fmt.Errorf("pipeline: patient %s seizure %d: %w", patients[pi].ID, seizureIdx, err)
		}
		cache[key] = d
		return d, nil
	}

	res := &GenericResult{}
	var geoPers, geoGen []float64
	for i, p := range patients {
		testIdx := len(p.Seizures)
		test, err := prepare(i, testIdx)
		if err != nil {
			return nil, err
		}
		testLabels := features.Labels(test.m54, []signal.Interval{test.truth})

		// Personalized arm: own seizures, excluding the test one.
		nOwn := len(p.Seizures) - 1
		if nOwn > opts.MaxTrainSeizures {
			nOwn = opts.MaxTrainSeizures
		}
		if nOwn > len(patients)-1 {
			nOwn = len(patients) - 1 // keep both arms the same size
		}
		if nOwn < 1 {
			return nil, fmt.Errorf("pipeline: patient %s has no training seizures", p.ID)
		}
		var own []*seizureData
		for s := 1; len(own) < nOwn && s < testIdx; s++ {
			d, err := prepare(i, s)
			if err != nil {
				return nil, err
			}
			own = append(own, d)
		}
		// Generic arm: the same count, one seizure per other patient
		// (preferring each patient's second seizure — the first is an
		// artifact outlier for two catalogue patients).
		var foreign []*seizureData
		for j := range patients {
			if j == i || len(foreign) == len(own) {
				continue
			}
			idx := 2
			if len(patients[j].Seizures) < 2 {
				idx = 1
			}
			d, err := prepare(j, idx)
			if err != nil {
				return nil, err
			}
			foreign = append(foreign, d)
		}
		if len(foreign) != len(own) {
			return nil, fmt.Errorf("pipeline: cannot balance arms for %s (%d own, %d foreign)",
				p.ID, len(own), len(foreign))
		}

		rng := rand.New(rand.NewSource(opts.Seed ^ int64(1000+p.Ordinal)))
		score := func(train []*seizureData) (metrics.Confusion, error) {
			X, y, err := trainingSet(train, ExpertLabels, rng)
			if err != nil {
				return metrics.Confusion{}, err
			}
			cfg := opts.ForestCfg
			cfg.Seed = opts.Seed ^ int64(p.Ordinal*7)
			f, err := forest.Train(X, y, cfg)
			if err != nil {
				return metrics.Confusion{}, err
			}
			var c metrics.Confusion
			preds := f.PredictBatch(test.m54.Rows)
			for j := range preds {
				c.Count(preds[j], testLabels[j])
			}
			return c, nil
		}
		pers, err := score(own)
		if err != nil {
			return nil, err
		}
		gen, err := score(foreign)
		if err != nil {
			return nil, err
		}
		res.PerPatient = append(res.PerPatient, GenericPatientResult{
			PatientID:    p.ID,
			Ordinal:      p.Ordinal,
			TrainCount:   len(own),
			Personalized: pers,
			Generic:      gen,
		})
		geoPers = append(geoPers, clamp01(pers.GeometricMean()))
		geoGen = append(geoGen, clamp01(gen.GeometricMean()))
	}
	res.PersonalizedGeoMean = stats.GeometricMean(geoPers)
	res.GenericGeoMean = stats.GeometricMean(geoGen)
	return res, nil
}
