package pipeline

import (
	"testing"

	"selflearn/internal/chbmit"
)

func TestEventLevelStudySmall(t *testing.T) {
	p, err := chbmit.PatientByID("chb09") // 7 seizures: 2 train, 5 test
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOptions()
	res, err := EventLevelStudy([]chbmit.Patient{p}, opts, 2, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerPatient) != 1 {
		t.Fatalf("patients = %d", len(res.PerPatient))
	}
	pl := res.PerPatient[0]
	if pl.Events != 5 {
		t.Errorf("held-out events = %d, want 5", pl.Events)
	}
	if res.EventSensitivity < 0.8 {
		t.Errorf("event sensitivity %.2f, want >= 0.8", res.EventSensitivity)
	}
	if res.FalseAlarmsPerHour > 6 {
		t.Errorf("false alarms/hour %.1f too high", res.FalseAlarmsPerHour)
	}
	if res.MedianLatency < 0 || res.MedianLatency > 60 {
		t.Errorf("median latency %.1f s implausible", res.MedianLatency)
	}
}

func TestEventLevelStudyErrors(t *testing.T) {
	p, _ := chbmit.PatientByID("chb02") // 3 seizures
	opts := fastOptions()
	if _, err := EventLevelStudy([]chbmit.Patient{p}, opts, 3, 600); err == nil {
		t.Error("no held-out seizures should fail")
	}
	if _, err := EventLevelStudy([]chbmit.Patient{p}, opts, 0, 600); err == nil {
		t.Error("0 training events should fail")
	}
	if _, err := EventLevelStudy([]chbmit.Patient{p}, opts, 1, 10); err == nil {
		t.Error("tiny background should fail")
	}
	bad := fastOptions()
	bad.MaxTrainSeizures = 0
	if _, err := EventLevelStudy([]chbmit.Patient{p}, bad, 1, 600); err == nil {
		t.Error("invalid options should fail")
	}
}

func TestMedianHelper(t *testing.T) {
	if median(nil) != 0 {
		t.Error("empty median should be 0")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
}
