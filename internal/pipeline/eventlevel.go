package pipeline

import (
	"fmt"

	"selflearn/internal/chbmit"
	"selflearn/internal/rt"
)

// EventLevelResult reports deployment-style metrics: per-seizure *event*
// detection (did an alarm fire during the event?) and false alarms per
// hour on seizure-free EEG — the numbers clinicians and caregivers care
// about, complementing the window-level Fig. 4 metrics.
type EventLevelResult struct {
	PerPatient []EventLevelPatient
	// EventSensitivity is detected events / total events across
	// patients.
	EventSensitivity float64
	// FalseAlarmsPerHour is the pooled false-alarm rate on seizure-free
	// background.
	FalseAlarmsPerHour float64
	// MedianLatency is the median alarm latency in seconds relative to
	// the annotated onset (alarms up to 10 s early count as latency 0;
	// windows straddling the onset already contain ictal data).
	MedianLatency float64
}

// EventLevelPatient is one patient's event-level outcome.
type EventLevelPatient struct {
	PatientID   string
	Events      int
	Detected    int
	FalseAlarms int
	// BackgroundHours of seizure-free EEG scored for false alarms.
	BackgroundHours float64
	// Latencies holds per-detected-event alarm latency in seconds.
	Latencies []float64
}

// EventLevelStudy trains a self-learning session per patient on its
// first trainEvents seizures (algorithm labels, artifact-augmented
// negatives) and scores the remaining seizures at event level plus
// bgSeconds of artifact-free background per patient, using the rt alarm
// layer with its default 3-of-5 voting.
func EventLevelStudy(patients []chbmit.Patient, opts Options, trainEvents int, bgSeconds float64) (*EventLevelResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if trainEvents < 1 {
		return nil, fmt.Errorf("pipeline: invalid training event count %d", trainEvents)
	}
	if bgSeconds < 60 {
		return nil, fmt.Errorf("pipeline: background of %g s too short", bgSeconds)
	}
	if len(patients) == 0 {
		patients = chbmit.Patients()
	}
	res := &EventLevelResult{}
	var totalEvents, totalDetected, totalFalse int
	var totalBgHours float64
	var allLatencies []float64
	for _, p := range patients {
		if len(p.Seizures) <= trainEvents {
			return nil, fmt.Errorf("pipeline: patient %s has no held-out seizures after %d training events",
				p.ID, trainEvents)
		}
		sessionOpts := opts
		sessionOpts.AugmentArtifacts = true
		session, err := NewSession(p, sessionOpts)
		if err != nil {
			return nil, err
		}
		for ev := 1; ev <= trainEvents; ev++ {
			rec, err := p.SeizureRecord(ev, 0)
			if err != nil {
				return nil, err
			}
			truth := rec.Seizures[0]
			lo := truth.Start - opts.CropDuration/2
			if lo < 0 {
				lo = 0
			}
			buf, err := rec.Slice(lo, lo+opts.CropDuration)
			if err != nil {
				return nil, err
			}
			if _, err := session.ReportMissedSeizure(buf); err != nil {
				return nil, err
			}
		}
		pl := EventLevelPatient{PatientID: p.ID}
		// Held-out seizures at event level.
		for ev := trainEvents + 1; ev <= len(p.Seizures); ev++ {
			rec, err := p.SeizureRecord(ev, 0)
			if err != nil {
				return nil, err
			}
			truth := rec.Seizures[0]
			crop, err := rec.Slice(truth.Start-200, truth.Start+200)
			if err != nil {
				return nil, err
			}
			preds, _, err := session.Detect(crop)
			if err != nil {
				return nil, err
			}
			det, err := rt.NewDetector(noopClf{}, rt.DefaultConfig())
			if err != nil {
				return nil, err
			}
			for _, pr := range preds {
				det.PushPrediction(pr)
			}
			t := crop.Seizures[0]
			m := rt.ScoreEvents(det.Alarms(), [][2]float64{{t.Start, t.End}}, 10)
			pl.Events++
			if m.Detected == 1 {
				pl.Detected++
				lat := rt.Latency(det.Alarms(), t.Start-10)
				if lat >= 0 {
					if lat > 10 {
						lat -= 10 // re-base to the annotated onset
					} else {
						lat = 0
					}
					pl.Latencies = append(pl.Latencies, lat)
				}
			}
			pl.FalseAlarms += m.FalseAlarms
		}
		// Seizure-free background false alarms.
		bg, err := p.NonSeizureRecord(bgSeconds, 21_000_000)
		if err != nil {
			return nil, err
		}
		preds, _, err := session.Detect(bg)
		if err != nil {
			return nil, err
		}
		det, err := rt.NewDetector(noopClf{}, rt.DefaultConfig())
		if err != nil {
			return nil, err
		}
		for _, pr := range preds {
			det.PushPrediction(pr)
		}
		pl.FalseAlarms += len(det.Alarms())
		pl.BackgroundHours = bgSeconds / 3600

		totalEvents += pl.Events
		totalDetected += pl.Detected
		totalFalse += pl.FalseAlarms
		totalBgHours += pl.BackgroundHours
		allLatencies = append(allLatencies, pl.Latencies...)
		res.PerPatient = append(res.PerPatient, pl)
	}
	if totalEvents > 0 {
		res.EventSensitivity = float64(totalDetected) / float64(totalEvents)
	}
	if totalBgHours > 0 {
		res.FalseAlarmsPerHour = float64(totalFalse) / totalBgHours
	}
	res.MedianLatency = median(allLatencies)
	return res, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	if len(sorted)%2 == 1 {
		return sorted[len(sorted)/2]
	}
	return (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
}
