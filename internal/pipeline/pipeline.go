// Package pipeline assembles the complete self-learning methodology
// (Fig. 1): a supervised real-time detector that is (re)trained from data
// labeled on-device by the a-posteriori algorithm whenever the patient
// reports a missed seizure, plus the doctor-versus-algorithm training-arm
// comparison of Section VI-B / Fig. 4.
package pipeline

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"selflearn/internal/chbmit"
	"selflearn/internal/core"
	"selflearn/internal/eval"
	"selflearn/internal/features"
	"selflearn/internal/ml/forest"
	"selflearn/internal/ml/metrics"
	"selflearn/internal/signal"
	"selflearn/internal/stats"
	"selflearn/internal/synth"
)

// Arm selects who provides the training labels.
type Arm int

const (
	// ExpertLabels trains on the annotated ground truth (the "doctor"
	// arm of Fig. 4).
	ExpertLabels Arm = iota
	// AlgorithmLabels trains on intervals produced by the a-posteriori
	// labeling algorithm (the self-learning arm).
	AlgorithmLabels
)

// String names the arm.
func (a Arm) String() string {
	if a == ExpertLabels {
		return "doctor"
	}
	return "algorithm"
}

// Options configures the validation experiment.
type Options struct {
	// Patients to evaluate; nil means the full catalog.
	Patients []chbmit.Patient
	// MaxTrainSeizures caps the per-fold training seizures (the paper
	// uses 2 to 5).
	MaxTrainSeizures int
	// CropDuration is the length in seconds of the record slice taken
	// around each seizure (the paper draws 30–60 minute signals; the
	// default here is the midpoint).
	CropDuration float64
	// Seed drives balanced non-seizure sampling.
	Seed int64
	// FeatureCfg configures the 54-feature extraction.
	FeatureCfg features.Config
	// ForestCfg configures the random-forest detector.
	ForestCfg forest.Config
	// QualityGate, when enabled, rejects missed-seizure buffers whose
	// signal quality fails signal.AssessRecording — a flatlined or
	// rail-clipped hour would otherwise poison the training set with a
	// garbage label.
	QualityGate bool
	// QualityCfg holds the gate thresholds (zero value = defaults).
	QualityCfg signal.QualityConfig
	// AugmentArtifacts, when enabled, adds artifact-rich seizure-free
	// windows (eye blinks, chewing EMG) to the negative class on every
	// missed-seizure report. Without it a detector trained only on
	// clean negatives mistakes routine artifacts for ictal activity —
	// the classic false-alarm failure of wearable detectors.
	AugmentArtifacts bool
}

// DefaultOptions mirrors the paper's protocol at laptop-friendly scale.
func DefaultOptions() Options {
	return Options{
		MaxTrainSeizures: 5,
		CropDuration:     2700,
		Seed:             1,
		FeatureCfg:       features.DefaultConfig(),
		ForestCfg:        forest.DefaultConfig(),
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.MaxTrainSeizures < 1 {
		return fmt.Errorf("pipeline: invalid MaxTrainSeizures %d", o.MaxTrainSeizures)
	}
	if o.CropDuration < 300 || o.CropDuration > chbmit.RecordDuration {
		return fmt.Errorf("pipeline: crop duration %g outside [300, %g]", o.CropDuration, chbmit.RecordDuration)
	}
	return o.FeatureCfg.Validate()
}

// seizureData bundles one seizure's extracted materials, shared across
// folds.
type seizureData struct {
	index int
	// m54 is the 54-feature matrix of the crop; m10 the labeling-feature
	// matrix.
	m54, m10 *features.Matrix
	// truth is the expert interval, algo the a-posteriori interval, both
	// relative to the crop.
	truth, algo signal.Interval
	// cropLen is the crop duration in seconds.
	cropLen float64
	// labelDelta is δ between algo and truth (diagnostics).
	labelDelta float64
}

// prepareSeizure renders, crops and extracts one seizure record.
func prepareSeizure(p chbmit.Patient, seizureIdx int, opts Options) (*seizureData, error) {
	rec, err := p.SeizureRecord(seizureIdx, 0)
	if err != nil {
		return nil, err
	}
	truth := rec.Seizures[0]
	// Center the crop on the seizure, clamped to the record.
	lo := truth.Start + truth.Duration()/2 - opts.CropDuration/2
	if lo < 0 {
		lo = 0
	}
	if lo+opts.CropDuration > rec.Duration() {
		lo = rec.Duration() - opts.CropDuration
	}
	crop, err := rec.Slice(lo, lo+opts.CropDuration)
	if err != nil {
		return nil, err
	}
	m54, err := features.Extract54(crop, opts.FeatureCfg)
	if err != nil {
		return nil, err
	}
	m10, err := features.Extract10(crop, opts.FeatureCfg)
	if err != nil {
		return nil, err
	}
	avg := time.Duration(p.AvgSeizureDuration * float64(time.Second))
	algo, _, err := core.LabelMatrix(m10, avg)
	if err != nil {
		return nil, err
	}
	cropTruth := crop.Seizures[0]
	return &seizureData{
		index:      seizureIdx,
		m54:        m54,
		m10:        m10,
		truth:      cropTruth,
		algo:       algo,
		cropLen:    opts.CropDuration,
		labelDelta: eval.Delta(cropTruth, algo),
	}, nil
}

// trainingSet builds a balanced window-level training set from the given
// seizures using the labels of the chosen arm: all seizure windows plus
// an equal number of randomly drawn non-seizure windows.
func trainingSet(datas []*seizureData, arm Arm, rng *rand.Rand) (X [][]float64, y []bool, err error) {
	for _, d := range datas {
		iv := d.truth
		if arm == AlgorithmLabels {
			iv = d.algo
		}
		labels := features.Labels(d.m54, []signal.Interval{iv})
		var posIdx, negIdx []int
		for i, l := range labels {
			if l {
				posIdx = append(posIdx, i)
			} else {
				negIdx = append(negIdx, i)
			}
		}
		if len(posIdx) == 0 {
			return nil, nil, fmt.Errorf("pipeline: seizure %d produced no positive windows", d.index)
		}
		// Balanced draw of negatives.
		rng.Shuffle(len(negIdx), func(a, b int) { negIdx[a], negIdx[b] = negIdx[b], negIdx[a] })
		if len(negIdx) > len(posIdx) {
			negIdx = negIdx[:len(posIdx)]
		}
		for _, i := range posIdx {
			X = append(X, d.m54.Rows[i])
			y = append(y, true)
		}
		for _, i := range negIdx {
			X = append(X, d.m54.Rows[i])
			y = append(y, false)
		}
	}
	return X, y, nil
}

// PatientValidation is one patient's Fig. 4 data point.
type PatientValidation struct {
	PatientID string
	Ordinal   int
	// Expert and Algorithm are the pooled confusion matrices of the two
	// training arms over all leave-one-seizure-out folds.
	Expert, Algorithm metrics.Confusion
	// LabelDeltas are the per-training-seizure δ between algorithm and
	// expert labels (diagnostics).
	LabelDeltas []float64
}

// ValidationResult is the full Fig. 4 experiment.
type ValidationResult struct {
	PerPatient []PatientValidation
	// ExpertGeoMean / AlgorithmGeoMean are geometric means across
	// patients of the per-patient √(se·sp) (the paper's 94.95 % vs
	// 92.60 %).
	ExpertGeoMean, AlgorithmGeoMean float64
	// Sensitivity/specificity averages across patients per arm.
	ExpertSensitivity, AlgorithmSensitivity float64
	ExpertSpecificity, AlgorithmSpecificity float64
}

// Degradation returns the geometric-mean drop from expert- to
// algorithm-labeled training in percentage points.
func (v *ValidationResult) Degradation() float64 {
	return 100 * (v.ExpertGeoMean - v.AlgorithmGeoMean)
}

// Validate runs the Section VI-B experiment: for every patient, every
// seizure serves once as the test record in a leave-one-seizure-out fold
// while up to MaxTrainSeizures of the remaining seizures form the
// balanced training set, labeled either by the expert annotations or by
// the a-posteriori algorithm. Window-level predictions on the held-out
// record (always scored against expert labels) are pooled per patient.
func Validate(opts Options) (*ValidationResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	patients := opts.Patients
	if patients == nil {
		patients = chbmit.Patients()
	}
	res := &ValidationResult{}
	var geoExp, geoAlg, seExp, seAlg, spExp, spAlg []float64
	for _, p := range patients {
		pv, err := validatePatient(p, opts)
		if err != nil {
			return nil, fmt.Errorf("pipeline: patient %s: %w", p.ID, err)
		}
		res.PerPatient = append(res.PerPatient, *pv)
		geoExp = append(geoExp, clamp01(pv.Expert.GeometricMean()))
		geoAlg = append(geoAlg, clamp01(pv.Algorithm.GeometricMean()))
		seExp = append(seExp, pv.Expert.Sensitivity())
		seAlg = append(seAlg, pv.Algorithm.Sensitivity())
		spExp = append(spExp, pv.Expert.Specificity())
		spAlg = append(spAlg, pv.Algorithm.Specificity())
	}
	res.ExpertGeoMean = stats.GeometricMean(geoExp)
	res.AlgorithmGeoMean = stats.GeometricMean(geoAlg)
	res.ExpertSensitivity = stats.Mean(seExp)
	res.AlgorithmSensitivity = stats.Mean(seAlg)
	res.ExpertSpecificity = stats.Mean(spExp)
	res.AlgorithmSpecificity = stats.Mean(spAlg)
	return res, nil
}

func clamp01(v float64) float64 {
	if v <= 0 {
		return 1e-6
	}
	if v > 1 {
		return 1
	}
	return v
}

func validatePatient(p chbmit.Patient, opts Options) (*PatientValidation, error) {
	if len(p.Seizures) < 2 {
		return nil, errors.New("needs at least two seizures")
	}
	// Extract every seizure once; folds reuse the cached matrices.
	datas := make([]*seizureData, len(p.Seizures))
	for i, sz := range p.Seizures {
		d, err := prepareSeizure(p, sz.Index, opts)
		if err != nil {
			return nil, err
		}
		datas[i] = d
	}
	pv := &PatientValidation{PatientID: p.ID, Ordinal: p.Ordinal}
	for _, d := range datas {
		pv.LabelDeltas = append(pv.LabelDeltas, d.labelDelta)
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ int64(p.Ordinal)))
	for testIdx := range datas {
		var train []*seizureData
		for i, d := range datas {
			if i != testIdx {
				train = append(train, d)
			}
		}
		if len(train) > opts.MaxTrainSeizures {
			train = train[:opts.MaxTrainSeizures]
		}
		test := datas[testIdx]
		testLabels := features.Labels(test.m54, []signal.Interval{test.truth})
		for _, arm := range []Arm{ExpertLabels, AlgorithmLabels} {
			X, y, err := trainingSet(train, arm, rng)
			if err != nil {
				return nil, err
			}
			cfg := opts.ForestCfg
			cfg.Seed = opts.Seed ^ int64(p.Ordinal*100+testIdx)
			f, err := forest.Train(X, y, cfg)
			if err != nil {
				return nil, err
			}
			preds := f.PredictBatch(test.m54.Rows)
			target := &pv.Expert
			if arm == AlgorithmLabels {
				target = &pv.Algorithm
			}
			for i := range preds {
				target.Count(preds[i], testLabels[i])
			}
		}
	}
	return pv, nil
}

// Session is the on-device self-learning loop of Fig. 1: it accumulates
// personalized training data with every reported missed seizure and
// retrains the real-time detector.
type Session struct {
	patient chbmit.Patient
	opts    Options
	rng     *rand.Rand
	trainX  [][]float64
	trainY  []bool
	det     *forest.Forest
	events  int
}

// NewSession starts an empty self-learning session for the patient.
func NewSession(p chbmit.Patient, opts Options) (*Session, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Session{
		patient: p,
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed ^ int64(p.Ordinal)<<16)),
	}, nil
}

// Trained reports whether the detector has been trained yet.
func (s *Session) Trained() bool { return s.det != nil }

// Detector returns the current trained detector (nil before the first
// missed-seizure report).
func (s *Session) Detector() *forest.Forest { return s.det }

// Events returns the number of missed seizures reported so far.
func (s *Session) Events() int { return s.events }

// ReportMissedSeizure is the patient's button press: rec is the buffered
// last hour (or less) of EEG known to contain exactly one seizure. The
// a-posteriori algorithm labels it, the balanced window data is added to
// the training set, and the detector is retrained. It returns the label
// the algorithm produced.
func (s *Session) ReportMissedSeizure(rec *signal.Recording) (signal.Interval, error) {
	if err := rec.Validate(); err != nil {
		return signal.Interval{}, err
	}
	if s.opts.QualityGate {
		cfg := s.opts.QualityCfg
		if cfg == (signal.QualityConfig{}) {
			cfg = signal.DefaultQuality()
		}
		reports, ok, err := signal.AssessRecording(rec, cfg)
		if err != nil {
			return signal.Interval{}, err
		}
		if !ok {
			return signal.Interval{}, fmt.Errorf("pipeline: buffer failed the quality gate (%v)", reports)
		}
	}
	m10, err := features.Extract10(rec, s.opts.FeatureCfg)
	if err != nil {
		return signal.Interval{}, err
	}
	avg := time.Duration(s.patient.AvgSeizureDuration * float64(time.Second))
	iv, _, err := core.LabelMatrix(m10, avg)
	if err != nil {
		return signal.Interval{}, err
	}
	m54, err := features.Extract54(rec, s.opts.FeatureCfg)
	if err != nil {
		return signal.Interval{}, err
	}
	d := &seizureData{m54: m54, algo: iv}
	X, y, err := trainingSet([]*seizureData{d}, AlgorithmLabels, s.rng)
	if err != nil {
		return signal.Interval{}, err
	}
	s.trainX = append(s.trainX, X...)
	s.trainY = append(s.trainY, y...)
	if s.opts.AugmentArtifacts {
		nPos := 0
		for _, l := range y {
			if l {
				nPos++
			}
		}
		if err := s.augmentNegatives(nPos); err != nil {
			return signal.Interval{}, err
		}
	}
	cfg := s.opts.ForestCfg
	cfg.Seed = s.opts.Seed ^ int64(s.events+1)
	f, err := forest.Train(s.trainX, s.trainY, cfg)
	if err != nil {
		return signal.Interval{}, err
	}
	s.det = f
	s.events++
	return iv, nil
}

// augmentNegatives synthesizes an artifact-rich seizure-free stretch for
// this patient and appends up to n of its windows as negatives.
func (s *Session) augmentNegatives(n int) error {
	if n < 1 {
		return nil
	}
	// Enough background for n windows at the 1 s hop plus one window.
	durSeconds := float64(n) + s.opts.FeatureCfg.Window.Length.Seconds() + 60
	bg, err := s.patient.NonSeizureRecord(durSeconds, int64(s.events)+7_000_000)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(s.opts.Seed ^ int64(s.events)<<8))
	fs := bg.SampleRate
	for c := range bg.Data {
		if err := synth.AddBlinks(rng, bg.Data[c], 0, bg.Samples(), fs, synth.DefaultBlink()); err != nil {
			return err
		}
		chewLen := bg.Samples() / 3
		if err := synth.AddChewing(rng, bg.Data[c], bg.Samples()/3, chewLen, fs, synth.DefaultChew()); err != nil {
			return err
		}
	}
	m54, err := features.Extract54(bg, s.opts.FeatureCfg)
	if err != nil {
		return err
	}
	idx := rng.Perm(m54.NumRows())
	if len(idx) > n {
		idx = idx[:n]
	}
	for _, i := range idx {
		s.trainX = append(s.trainX, m54.Rows[i])
		s.trainY = append(s.trainY, false)
	}
	return nil
}

// Detect runs the current real-time detector over a recording and
// returns per-window predictions alongside the feature matrix used.
func (s *Session) Detect(rec *signal.Recording) ([]bool, *features.Matrix, error) {
	if s.det == nil {
		return nil, nil, errors.New("pipeline: detector not trained yet")
	}
	m54, err := features.Extract54(rec, s.opts.FeatureCfg)
	if err != nil {
		return nil, nil, err
	}
	return s.det.PredictBatch(m54.Rows), m54, nil
}

// SaveDetector checkpoints the trained detector (e.g. to flash between
// battery charges). It fails when no detector has been trained yet.
func (s *Session) SaveDetector(w io.Writer) error {
	if s.det == nil {
		return errors.New("pipeline: detector not trained yet")
	}
	return s.det.Save(w)
}

// LoadDetector restores a checkpointed detector into the session. The
// accumulated training set is not part of the checkpoint; subsequent
// missed-seizure reports extend from whatever data the session has
// gathered since.
func (s *Session) LoadDetector(r io.Reader) error {
	f, err := forest.Load(r)
	if err != nil {
		return err
	}
	s.det = f
	return nil
}
