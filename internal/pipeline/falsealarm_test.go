package pipeline

import (
	"testing"

	"selflearn/internal/chbmit"
)

func TestFalseAlarmStudy(t *testing.T) {
	p, err := chbmit.PatientByID("chb09")
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOptions()
	res, err := FalseAlarmStudy(p, opts, 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.BackgroundHours <= 0 {
		t.Fatal("background hours")
	}
	// Augmented training must not raise more false alarms than plain,
	// and must keep detecting the held-out seizure.
	if res.FalseAlarmsPerHourAugmented > res.FalseAlarmsPerHourPlain {
		t.Errorf("augmentation increased false alarms: %g vs %g per hour",
			res.FalseAlarmsPerHourAugmented, res.FalseAlarmsPerHourPlain)
	}
	if !res.SeizureDetectedAugmented {
		t.Error("augmented detector missed the held-out seizure")
	}
	t.Logf("false alarms/h: plain %.1f vs augmented %.1f; detected: plain %v, augmented %v",
		res.FalseAlarmsPerHourPlain, res.FalseAlarmsPerHourAugmented,
		res.SeizureDetectedPlain, res.SeizureDetectedAugmented)
}

func TestFalseAlarmStudyErrors(t *testing.T) {
	p, _ := chbmit.PatientByID("chb02")
	opts := fastOptions()
	if _, err := FalseAlarmStudy(p, opts, 10, 1); err == nil {
		t.Error("tiny background should fail")
	}
	if _, err := FalseAlarmStudy(p, opts, 600, 0); err == nil {
		t.Error("0 events should fail")
	}
	if _, err := FalseAlarmStudy(p, opts, 600, 3); err == nil {
		t.Error("no held-out seizure left should fail")
	}
	bad := fastOptions()
	bad.MaxTrainSeizures = 0
	if _, err := FalseAlarmStudy(p, bad, 600, 1); err == nil {
		t.Error("invalid options should fail")
	}
}
