package pipeline

import (
	"fmt"
	"math/rand"

	"selflearn/internal/chbmit"
	"selflearn/internal/rt"
	"selflearn/internal/synth"
)

// FalseAlarmResult quantifies artifact robustness: alarms raised per hour
// on artifact-rich seizure-free EEG, with and without artifact-augmented
// negative training, plus the sensitivity check that augmentation does
// not cost seizure detection.
type FalseAlarmResult struct {
	// FalseAlarmsPerHourPlain / Augmented are the false-alarm rates of
	// the two training regimes on the same artifact-rich background.
	FalseAlarmsPerHourPlain     float64
	FalseAlarmsPerHourAugmented float64
	// SeizureDetectedPlain / Augmented report whether the held-out
	// seizure still raises an alarm.
	SeizureDetectedPlain     bool
	SeizureDetectedAugmented bool
	// BackgroundHours is the amount of artifact-rich background scored.
	BackgroundHours float64
}

// FalseAlarmStudy trains two self-learning sessions for the patient —
// one plain, one with AugmentArtifacts — on the same missed-seizure
// events, then scores both on an artifact-rich seizure-free background
// and on a held-out seizure record.
func FalseAlarmStudy(p chbmit.Patient, opts Options, backgroundSeconds float64, events int) (*FalseAlarmResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if backgroundSeconds < 60 {
		return nil, fmt.Errorf("pipeline: background of %g s too short", backgroundSeconds)
	}
	if events < 1 || events+1 > len(p.Seizures) {
		return nil, fmt.Errorf("pipeline: %d events invalid for patient %s with %d seizures",
			events, p.ID, len(p.Seizures))
	}
	plainOpts := opts
	plainOpts.AugmentArtifacts = false
	augOpts := opts
	augOpts.AugmentArtifacts = true

	train := func(o Options) (*Session, error) {
		s, err := NewSession(p, o)
		if err != nil {
			return nil, err
		}
		for ev := 1; ev <= events; ev++ {
			rec, err := p.SeizureRecord(ev, 0)
			if err != nil {
				return nil, err
			}
			truth := rec.Seizures[0]
			lo := truth.Start - o.CropDuration/2
			if lo < 0 {
				lo = 0
			}
			buf, err := rec.Slice(lo, lo+o.CropDuration)
			if err != nil {
				return nil, err
			}
			if _, err := s.ReportMissedSeizure(buf); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	plain, err := train(plainOpts)
	if err != nil {
		return nil, err
	}
	augmented, err := train(augOpts)
	if err != nil {
		return nil, err
	}

	// Artifact-rich seizure-free background (a different variant from
	// anything augmentation generated).
	bg, err := p.NonSeizureRecord(backgroundSeconds, 13_000_000)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0xFA15E))
	fs := bg.SampleRate
	for c := range bg.Data {
		if err := synth.AddBlinks(rng, bg.Data[c], 0, bg.Samples(), fs, synth.DefaultBlink()); err != nil {
			return nil, err
		}
		if err := synth.AddChewing(rng, bg.Data[c], bg.Samples()/4, bg.Samples()/4, fs, synth.DefaultChew()); err != nil {
			return nil, err
		}
	}
	res := &FalseAlarmResult{BackgroundHours: backgroundSeconds / 3600}
	countAlarms := func(s *Session) (int, error) {
		preds, _, err := s.Detect(bg)
		if err != nil {
			return 0, err
		}
		det, err := rt.NewDetector(noopClf{}, rt.DefaultConfig())
		if err != nil {
			return 0, err
		}
		for _, pr := range preds {
			det.PushPrediction(pr)
		}
		return len(det.Alarms()), nil
	}
	nPlain, err := countAlarms(plain)
	if err != nil {
		return nil, err
	}
	nAug, err := countAlarms(augmented)
	if err != nil {
		return nil, err
	}
	res.FalseAlarmsPerHourPlain = float64(nPlain) / res.BackgroundHours
	res.FalseAlarmsPerHourAugmented = float64(nAug) / res.BackgroundHours

	// Sensitivity on a held-out seizure.
	test, err := p.SeizureRecord(events+1, 0)
	if err != nil {
		return nil, err
	}
	truth := test.Seizures[0]
	crop, err := test.Slice(truth.Start-200, truth.Start+200)
	if err != nil {
		return nil, err
	}
	detects := func(s *Session) (bool, error) {
		preds, _, err := s.Detect(crop)
		if err != nil {
			return false, err
		}
		det, err := rt.NewDetector(noopClf{}, rt.DefaultConfig())
		if err != nil {
			return false, err
		}
		for _, pr := range preds {
			det.PushPrediction(pr)
		}
		t := crop.Seizures[0]
		m := rt.ScoreEvents(det.Alarms(), [][2]float64{{t.Start, t.End}}, 10)
		return m.Detected == 1, nil
	}
	if res.SeizureDetectedPlain, err = detects(plain); err != nil {
		return nil, err
	}
	if res.SeizureDetectedAugmented, err = detects(augmented); err != nil {
		return nil, err
	}
	return res, nil
}

// noopClf satisfies rt.Classifier for pre-computed prediction streams.
type noopClf struct{}

func (noopClf) Predict([]float64) bool { return false }
