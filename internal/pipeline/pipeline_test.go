package pipeline

import (
	"bytes"
	"math"
	"testing"

	"selflearn/internal/chbmit"
	"selflearn/internal/signal"
)

// fastOptions keeps test runtime manageable: short crops, small forests.
func fastOptions() Options {
	o := DefaultOptions()
	o.CropDuration = 600
	o.ForestCfg.NumTrees = 15
	return o
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.MaxTrainSeizures = 0
	if bad.Validate() == nil {
		t.Error("MaxTrainSeizures 0 should fail")
	}
	bad = DefaultOptions()
	bad.CropDuration = 10
	if bad.Validate() == nil {
		t.Error("tiny crop should fail")
	}
	bad = DefaultOptions()
	bad.CropDuration = 1e9
	if bad.Validate() == nil {
		t.Error("oversized crop should fail")
	}
}

func TestArmString(t *testing.T) {
	if ExpertLabels.String() != "doctor" || AlgorithmLabels.String() != "algorithm" {
		t.Error("arm names wrong")
	}
}

func TestValidateSinglePatient(t *testing.T) {
	p, err := chbmit.PatientByID("chb02") // 3 seizures -> 3 folds, fast
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOptions()
	opts.Patients = []chbmit.Patient{p}
	res, err := Validate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerPatient) != 1 {
		t.Fatalf("patients = %d", len(res.PerPatient))
	}
	pv := res.PerPatient[0]
	if pv.Expert.Total() == 0 || pv.Algorithm.Total() == 0 {
		t.Fatal("confusion matrices empty")
	}
	// Both arms should classify strongly on synthetic data.
	if g := pv.Expert.GeometricMean(); g < 0.7 {
		t.Errorf("expert-arm gmean = %g, want high", g)
	}
	if g := pv.Algorithm.GeometricMean(); g < 0.6 {
		t.Errorf("algorithm-arm gmean = %g, want high", g)
	}
	if len(pv.LabelDeltas) != 3 {
		t.Errorf("label deltas = %d, want one per seizure", len(pv.LabelDeltas))
	}
	if math.IsNaN(res.ExpertGeoMean) || math.IsNaN(res.AlgorithmGeoMean) {
		t.Error("overall geomeans NaN")
	}
	// Degradation should be bounded (the paper reports 2.35 points).
	if d := res.Degradation(); math.Abs(d) > 25 {
		t.Errorf("degradation %g points implausible", d)
	}
}

func TestValidateDeterministic(t *testing.T) {
	p, _ := chbmit.PatientByID("chb06") // 3 seizures
	opts := fastOptions()
	opts.Patients = []chbmit.Patient{p}
	a, err := Validate(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Validate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExpertGeoMean != b.ExpertGeoMean || a.AlgorithmGeoMean != b.AlgorithmGeoMean {
		t.Error("validation must be deterministic in the seed")
	}
}

func TestValidateRejectsBadOptions(t *testing.T) {
	opts := fastOptions()
	opts.MaxTrainSeizures = 0
	if _, err := Validate(opts); err == nil {
		t.Error("invalid options should fail")
	}
}

func TestSessionLifecycle(t *testing.T) {
	p, err := chbmit.PatientByID("chb05")
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOptions()
	s, err := NewSession(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Trained() {
		t.Error("fresh session should be untrained")
	}
	rec, err := p.SeizureRecord(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Detect(rec); err == nil {
		t.Error("Detect before training should fail")
	}
	// Patient reports the missed seizure with ~10 minutes of buffer.
	truth := rec.Seizures[0]
	buf, err := rec.Slice(truth.Start-300, truth.Start+300)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := s.ReportMissedSeizure(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Trained() || s.Events() != 1 {
		t.Error("session should be trained after one event")
	}
	// The produced label should sit near the true seizure (re-based).
	bufTruth := buf.Seizures[0]
	delta := (math.Abs(iv.Start-bufTruth.Start) + math.Abs(iv.End-bufTruth.End)) / 2
	if delta > 60 {
		t.Errorf("on-device label δ = %g s", delta)
	}
	// Detection on a fresh record of the same patient finds the seizure
	// region.
	rec2, err := p.SeizureRecord(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	t2 := rec2.Seizures[0]
	crop, err := rec2.Slice(t2.Start-200, t2.Start+200)
	if err != nil {
		t.Fatal(err)
	}
	preds, m, err := s.Detect(crop)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != m.NumRows() {
		t.Fatal("prediction length mismatch")
	}
	// At least a third of the true seizure windows should alert.
	cropTruth := crop.Seizures[0]
	var pos, tot int
	for i := range preds {
		start := m.TimeOf(i)
		if cropTruth.Contains(start + 2) {
			tot++
			if preds[i] {
				pos++
			}
		}
	}
	if tot == 0 {
		t.Fatal("no seizure windows in crop")
	}
	if float64(pos)/float64(tot) < 0.33 {
		t.Errorf("detector found %d/%d seizure windows after one self-learning event", pos, tot)
	}
}

func TestSessionCheckpoint(t *testing.T) {
	p, err := chbmit.PatientByID("chb03")
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOptions()
	s, err := NewSession(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveDetector(&buf); err == nil {
		t.Error("saving an untrained detector should fail")
	}
	rec, err := p.SeizureRecord(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth := rec.Seizures[0]
	crop, err := rec.Slice(truth.Start-250, truth.Start+350)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReportMissedSeizure(crop); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveDetector(&buf); err != nil {
		t.Fatal(err)
	}
	// Fresh session restores the checkpoint and detects immediately.
	s2, err := NewSession(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.LoadDetector(&buf); err != nil {
		t.Fatal(err)
	}
	if !s2.Trained() {
		t.Fatal("restored session should be trained")
	}
	preds1, _, err := s.Detect(crop)
	if err != nil {
		t.Fatal(err)
	}
	preds2, _, err := s2.Detect(crop)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds1 {
		if preds1[i] != preds2[i] {
			t.Fatal("restored detector must predict identically")
		}
	}
	if err := s2.LoadDetector(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("corrupt checkpoint should fail")
	}
}

func TestSessionRejectsInvalidRecording(t *testing.T) {
	p, _ := chbmit.PatientByID("chb01")
	s, err := NewSession(p, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReportMissedSeizure(&signal.Recording{SampleRate: 256}); err == nil {
		t.Error("invalid recording should fail")
	}
}

func TestSessionQualityGate(t *testing.T) {
	p, _ := chbmit.PatientByID("chb07")
	opts := fastOptions()
	opts.QualityGate = true
	s, err := NewSession(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.SeizureRecord(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth := rec.Seizures[0]
	buf, err := rec.Slice(truth.Start-250, truth.Start+350)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy buffer passes the gate.
	if _, err := s.ReportMissedSeizure(buf); err != nil {
		t.Fatalf("healthy buffer rejected: %v", err)
	}
	// A flatlined copy is rejected and does not increment the event
	// count.
	events := s.Events()
	dead := &signal.Recording{
		PatientID:  buf.PatientID,
		RecordID:   "dead",
		SampleRate: buf.SampleRate,
		Channels:   append([]string(nil), buf.Channels...),
		Seizures:   append([]signal.Interval(nil), buf.Seizures...),
	}
	for range buf.Data {
		dead.Data = append(dead.Data, make([]float64, buf.Samples()))
	}
	if _, err := s.ReportMissedSeizure(dead); err == nil {
		t.Error("flatlined buffer should be rejected by the quality gate")
	}
	if s.Events() != events {
		t.Error("rejected buffer must not count as an event")
	}
}

func TestNewSessionRejectsBadOptions(t *testing.T) {
	p, _ := chbmit.PatientByID("chb01")
	opts := fastOptions()
	opts.CropDuration = 1
	if _, err := NewSession(p, opts); err == nil {
		t.Error("bad options should fail")
	}
}
