package pipeline

import (
	"math"
	"testing"

	"selflearn/internal/chbmit"
)

func TestValidateGenericSmall(t *testing.T) {
	// Three patients keep the runtime manageable; the structural claim —
	// personalized >= generic on average — must hold even at this scale.
	var ps []chbmit.Patient
	for _, id := range []string{"chb01", "chb05", "chb09"} {
		p, err := chbmit.PatientByID(id)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	opts := fastOptions()
	opts.Patients = ps
	res, err := ValidateGeneric(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerPatient) != 3 {
		t.Fatalf("per-patient results = %d", len(res.PerPatient))
	}
	for _, pr := range res.PerPatient {
		if pr.Personalized.Total() == 0 || pr.Generic.Total() == 0 {
			t.Fatalf("%s: empty confusion", pr.PatientID)
		}
	}
	if math.IsNaN(res.PersonalizedGeoMean) || math.IsNaN(res.GenericGeoMean) {
		t.Fatal("NaN geomeans")
	}
	// The paper's motivation: personalization should not lose to generic
	// training (and typically wins).
	if res.Gap() < -10 {
		t.Errorf("personalized %.3f vs generic %.3f: personalization should not be dominated",
			res.PersonalizedGeoMean, res.GenericGeoMean)
	}
	t.Logf("personalized %.2f %% vs generic %.2f %% (gap %.2f points)",
		100*res.PersonalizedGeoMean, 100*res.GenericGeoMean, res.Gap())
}

func TestValidateGenericErrors(t *testing.T) {
	p, _ := chbmit.PatientByID("chb01")
	opts := fastOptions()
	opts.Patients = []chbmit.Patient{p}
	if _, err := ValidateGeneric(opts); err == nil {
		t.Error("single patient should fail")
	}
	opts = fastOptions()
	opts.MaxTrainSeizures = 0
	if _, err := ValidateGeneric(opts); err == nil {
		t.Error("invalid options should fail")
	}
}
