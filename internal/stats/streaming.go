package stats

import "math"

// Running accumulates streaming mean and variance with Welford's
// algorithm — the numerically stable way for an edge device to normalize
// features on the fly without buffering a full column.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Push adds one observation.
func (r *Running) Push(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (NaN when empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the running population variance (NaN when empty).
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.m2 / float64(r.n)
}

// SampleVariance returns the unbiased variance (NaN below two
// observations).
func (r *Running) SampleVariance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Reset clears the accumulator.
func (r *Running) Reset() { *r = Running{} }

// Merge combines another accumulator into r (Chan et al. parallel
// variance), enabling per-chunk accumulation across streaming windows.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	mean := r.mean + d*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.n, r.mean, r.m2 = n, mean, m2
}
