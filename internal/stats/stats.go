// Package stats provides the descriptive statistics used throughout the
// self-learning seizure-detection pipeline: moments, quantiles, z-score
// normalization and the Fleming–Wallace geometric mean used by the paper to
// average normalized metrics.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs. Sum of an empty slice is 0.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, matching
// the normalization step of Algorithm 1). It returns NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (dividing by n-1).
// It returns NaN for inputs with fewer than two elements.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
//
//selflearn:hotpath
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// RMS returns the root mean square of xs. It returns NaN for empty input.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var ss float64
	for _, x := range xs {
		ss += x * x
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Skewness returns the population skewness (third standardized moment).
// It returns 0 when the variance is 0 and NaN for empty input.
func Skewness(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		d := (x - m) / sd
		s += d * d * d
	}
	return s / float64(len(xs))
}

// Kurtosis returns the population excess kurtosis (fourth standardized
// moment minus 3). It returns 0 when the variance is 0 and NaN for empty
// input.
func Kurtosis(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		d := (x - m) / sd
		s += d * d * d * d
	}
	return s/float64(len(xs)) - 3
}

// Min returns the minimum of xs. It returns NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It returns NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the first maximum of xs, or -1 for empty
// input.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Median returns the median of xs without modifying it. It returns NaN for
// empty input.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. The input is not modified.
// It returns NaN for empty input or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// GeometricMean returns the geometric mean of xs. Following Fleming and
// Wallace ("How not to lie with statistics"), it is the only correct way to
// average normalized values, and is what the paper uses for δ_norm and for
// the sensitivity/specificity trade-off. All inputs must be positive;
// otherwise NaN is returned. Empty input returns NaN.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// ZScore returns (xs - mean)/std computed in place on a copy. When the
// standard deviation is zero the centered values are returned undivided, so
// constant features normalize to all-zero rather than NaN (Algorithm 1,
// Line 1 relies on this).
func ZScore(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	m := Mean(xs)
	sd := StdDev(xs)
	for i, x := range xs {
		if sd == 0 {
			out[i] = x - m
		} else {
			out[i] = (x - m) / sd
		}
	}
	return out
}

// ZScoreInPlace normalizes xs in place with the same convention as ZScore.
func ZScoreInPlace(xs []float64) {
	if len(xs) == 0 {
		return
	}
	m := Mean(xs)
	sd := StdDev(xs)
	for i, x := range xs {
		if sd == 0 {
			xs[i] = x - m
		} else {
			xs[i] = (x - m) / sd
		}
	}
}

// Correlation returns the Pearson correlation coefficient between xs and
// ys. It returns NaN when lengths differ, inputs are empty, or either
// input has zero variance.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram counts xs into nbins equal-width bins spanning [min, max].
// Values equal to max land in the last bin. It returns nil when xs is
// empty or nbins <= 0. A degenerate range (min == max) puts everything in
// bin 0.
func Histogram(xs []float64, nbins int) []int {
	if len(xs) == 0 || nbins <= 0 {
		return nil
	}
	return HistogramInto(make([]int, nbins), xs)
}

// HistogramInto counts xs into the caller-provided bins, zeroing them
// first — the allocation-free form of Histogram with nbins = len(dst).
// It returns dst (nil in the cases Histogram returns nil).
//
//selflearn:hotpath
func HistogramInto(dst []int, xs []float64) []int {
	nbins := len(dst)
	if len(xs) == 0 || nbins <= 0 {
		return nil
	}
	lo, hi := Min(xs), Max(xs)
	counts := dst
	for i := range counts {
		counts[i] = 0
	}
	if hi == lo {
		counts[0] = len(xs)
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts
}

// Probabilities converts histogram counts to a probability distribution,
// dropping empty bins. It returns nil for empty or all-zero input.
func Probabilities(counts []int) []float64 {
	var total int
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil
	}
	var ps []float64
	for _, c := range counts {
		if c > 0 {
			ps = append(ps, float64(c)/float64(total))
		}
	}
	return ps
}
