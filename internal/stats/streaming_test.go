package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*7 + 3
		r.Push(xs[i])
	}
	if r.N() != 1000 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-Mean(xs)) > 1e-12 {
		t.Errorf("mean %g vs %g", r.Mean(), Mean(xs))
	}
	if math.Abs(r.Variance()-Variance(xs)) > 1e-9 {
		t.Errorf("variance %g vs %g", r.Variance(), Variance(xs))
	}
	if math.Abs(r.SampleVariance()-SampleVariance(xs)) > 1e-9 {
		t.Errorf("sample variance %g vs %g", r.SampleVariance(), SampleVariance(xs))
	}
	if math.Abs(r.StdDev()-StdDev(xs)) > 1e-9 {
		t.Errorf("stddev %g vs %g", r.StdDev(), StdDev(xs))
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) {
		t.Error("empty accumulator should report NaN")
	}
	r.Push(5)
	if !math.IsNaN(r.SampleVariance()) {
		t.Error("sample variance of one observation should be NaN")
	}
	if r.Variance() != 0 {
		t.Error("population variance of one observation should be 0")
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Push(1)
	r.Push(2)
	r.Reset()
	if r.N() != 0 || !math.IsNaN(r.Mean()) {
		t.Error("reset should clear state")
	}
}

func TestRunningNumericalStability(t *testing.T) {
	// Large offset: naive sum-of-squares would lose all precision.
	var r Running
	const offset = 1e9
	vals := []float64{4, 7, 13, 16}
	for _, v := range vals {
		r.Push(offset + v)
	}
	if math.Abs(r.Variance()-22.5) > 1e-6 {
		t.Errorf("variance %g, want 22.5 despite 1e9 offset", r.Variance())
	}
}

func TestMergeProperty(t *testing.T) {
	f := func(seed int64, split uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + int(split)%50
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 3
		}
		cut := int(split) % n
		var a, b, whole Running
		for i, x := range xs {
			whole.Push(x)
			if i < cut {
				a.Push(x)
			} else {
				b.Push(x)
			}
		}
		a.Merge(b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, b Running
	b.Push(3)
	b.Push(5)
	a.Merge(b) // empty <- filled
	if a.N() != 2 || math.Abs(a.Mean()-4) > 1e-12 {
		t.Error("merge into empty failed")
	}
	var c Running
	a.Merge(c) // filled <- empty
	if a.N() != 2 {
		t.Error("merging empty should be a no-op")
	}
}
