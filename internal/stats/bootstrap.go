package stats

import (
	"fmt"
	"math/rand"
	"sort"
)

// BootstrapCI estimates a percentile-bootstrap confidence interval for
// an arbitrary statistic of xs (e.g. Median for the paper's headline
// δ = 10.1 s), resampling with replacement. confidence is the two-sided
// level, e.g. 0.95.
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, confidence float64, seed int64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: empty sample")
	}
	if stat == nil {
		return 0, 0, fmt.Errorf("stats: nil statistic")
	}
	if resamples < 10 {
		return 0, 0, fmt.Errorf("stats: too few resamples %d", resamples)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence %g outside (0, 1)", confidence)
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		vals[r] = stat(buf)
	}
	sort.Float64s(vals)
	alpha := (1 - confidence) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return vals[loIdx], vals[hiIdx], nil
}
