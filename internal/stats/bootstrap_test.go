package stats

import (
	"math/rand"
	"testing"
)

func TestBootstrapCICoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	lo, hi, err := BootstrapCI(xs, Mean, 500, 0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 10 || hi < 10 {
		t.Errorf("95%% CI [%g, %g] should cover the true mean 10", lo, hi)
	}
	if hi <= lo {
		t.Errorf("degenerate CI [%g, %g]", lo, hi)
	}
	// The CI half-width should be in the right ballpark for n=500,
	// σ=1: ≈1.96/√500 ≈ 0.09.
	if hi-lo > 0.3 {
		t.Errorf("CI width %g too wide", hi-lo)
	}
}

func TestBootstrapCIMedian(t *testing.T) {
	// Skewed data with three huge outliers (the Table II situation):
	// the median CI must stay near the bulk.
	xs := []float64{3, 4, 5, 2, 6, 3, 4, 5, 3, 4, 440, 480, 430}
	lo, hi, err := BootstrapCI(xs, Median, 1000, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 2 || hi > 10 {
		t.Errorf("median CI [%g, %g] should stay within the bulk", lo, hi)
	}
}

func TestBootstrapCINarrowsWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small := make([]float64, 30)
	big := make([]float64, 3000)
	for i := range big {
		v := rng.NormFloat64()
		if i < len(small) {
			small[i] = v
		}
		big[i] = v
	}
	lo1, hi1, err := BootstrapCI(small, Mean, 400, 0.95, 5)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapCI(big, Mean, 400, 0.95, 5)
	if err != nil {
		t.Fatal(err)
	}
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("CI should narrow with n: width %g (n=30) vs %g (n=3000)", hi1-lo1, hi2-lo2)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	a1, b1, _ := BootstrapCI(xs, Mean, 100, 0.9, 9)
	a2, b2, _ := BootstrapCI(xs, Mean, 100, 0.9, 9)
	if a1 != a2 || b1 != b2 {
		t.Error("same seed must reproduce the interval")
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	if _, _, err := BootstrapCI(nil, Mean, 100, 0.95, 1); err == nil {
		t.Error("empty sample should fail")
	}
	if _, _, err := BootstrapCI([]float64{1}, nil, 100, 0.95, 1); err == nil {
		t.Error("nil statistic should fail")
	}
	if _, _, err := BootstrapCI([]float64{1}, Mean, 5, 0.95, 1); err == nil {
		t.Error("too few resamples should fail")
	}
	if _, _, err := BootstrapCI([]float64{1}, Mean, 100, 1.5, 1); err == nil {
		t.Error("confidence > 1 should fail")
	}
}
