package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestSumMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	approx(t, Sum(xs), 10, 1e-12, "Sum")
	approx(t, Mean(xs), 2.5, 1e-12, "Mean")
}

func TestMeanEmptyNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance(nil)) {
		t.Error("Variance(nil) should be NaN")
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Error("GeometricMean(nil) should be NaN")
	}
	if !math.IsNaN(RMS(nil)) {
		t.Error("RMS(nil) should be NaN")
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Variance(xs), 4, 1e-12, "Variance")
	approx(t, StdDev(xs), 2, 1e-12, "StdDev")
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{1, 2, 3}
	approx(t, SampleVariance(xs), 1, 1e-12, "SampleVariance")
	if !math.IsNaN(SampleVariance([]float64{1})) {
		t.Error("SampleVariance of 1 element should be NaN")
	}
}

func TestRMS(t *testing.T) {
	approx(t, RMS([]float64{3, 4}), math.Sqrt(12.5), 1e-12, "RMS")
	approx(t, RMS([]float64{-2, 2}), 2, 1e-12, "RMS symmetric")
}

func TestSkewnessSymmetric(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2}
	approx(t, Skewness(xs), 0, 1e-12, "Skewness")
}

func TestSkewnessRightTail(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 10}
	if Skewness(xs) <= 0 {
		t.Errorf("right-tailed data should have positive skewness, got %g", Skewness(xs))
	}
}

func TestSkewnessConstant(t *testing.T) {
	approx(t, Skewness([]float64{5, 5, 5}), 0, 0, "Skewness constant")
	approx(t, Kurtosis([]float64{5, 5, 5}), 0, 0, "Kurtosis constant")
}

func TestKurtosisGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	approx(t, Kurtosis(xs), 0, 0.1, "Kurtosis of Gaussian")
	approx(t, Skewness(xs), 0, 0.05, "Skewness of Gaussian")
}

func TestMinMaxArgMax(t *testing.T) {
	xs := []float64{3, -1, 7, 7, 2}
	approx(t, Min(xs), -1, 0, "Min")
	approx(t, Max(xs), 7, 0, "Max")
	if got := ArgMax(xs); got != 2 {
		t.Errorf("ArgMax = %d, want 2 (first maximum)", got)
	}
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) should be -1")
	}
}

func TestMedian(t *testing.T) {
	approx(t, Median([]float64{3, 1, 2}), 2, 1e-12, "odd median")
	approx(t, Median([]float64{4, 1, 3, 2}), 2.5, 1e-12, "even median")
	approx(t, Median([]float64{42}), 42, 0, "single median")
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, Quantile(xs, 0), 1, 0, "q0")
	approx(t, Quantile(xs, 1), 5, 0, "q1")
	approx(t, Quantile(xs, 0.25), 2, 1e-12, "q25")
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("out-of-range quantile should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestGeometricMean(t *testing.T) {
	approx(t, GeometricMean([]float64{1, 4}), 2, 1e-12, "GeometricMean")
	approx(t, GeometricMean([]float64{2, 2, 2}), 2, 1e-12, "constant geomean")
	if !math.IsNaN(GeometricMean([]float64{1, 0})) {
		t.Error("geomean with zero should be NaN")
	}
	if !math.IsNaN(GeometricMean([]float64{1, -2})) {
		t.Error("geomean with negative should be NaN")
	}
}

func TestGeometricLEArithmetic(t *testing.T) {
	// AM-GM inequality as a property test.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			v := math.Abs(r)
			if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) || v > 1e100 {
				v = 1
			}
			xs = append(xs, v)
		}
		return GeometricMean(xs) <= Mean(xs)*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZScore(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z := ZScore(xs)
	approx(t, Mean(z), 0, 1e-12, "z mean")
	approx(t, StdDev(z), 1, 1e-12, "z std")
	// input untouched
	if xs[0] != 1 {
		t.Error("ZScore mutated input")
	}
}

func TestZScoreConstant(t *testing.T) {
	z := ZScore([]float64{7, 7, 7})
	for _, v := range z {
		if v != 0 {
			t.Errorf("constant feature should z-score to 0, got %v", z)
			break
		}
	}
}

func TestZScoreInPlaceMatchesZScore(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2.6}
	want := ZScore(xs)
	got := append([]float64(nil), xs...)
	ZScoreInPlace(got)
	for i := range want {
		approx(t, got[i], want[i], 1e-12, "ZScoreInPlace")
	}
	ZScoreInPlace(nil) // must not panic
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	approx(t, Correlation(xs, ys), 1, 1e-12, "perfect positive")
	neg := []float64{8, 6, 4, 2}
	approx(t, Correlation(xs, neg), -1, 1e-12, "perfect negative")
	if !math.IsNaN(Correlation(xs, []float64{1, 1, 1, 1})) {
		t.Error("zero-variance correlation should be NaN")
	}
	if !math.IsNaN(Correlation(xs, ys[:2])) {
		t.Error("length mismatch should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.5, 0.9, 1.0}
	h := Histogram(xs, 2)
	if len(h) != 2 {
		t.Fatalf("want 2 bins, got %d", len(h))
	}
	// Bins are [0, 0.5) and [0.5, 1]: 0 and 0.1 fall low; 0.5, 0.9, 1.0 high.
	if h[0] != 2 || h[1] != 3 {
		t.Errorf("Histogram = %v, want [2 3]", h)
	}
	if Histogram(nil, 3) != nil {
		t.Error("Histogram(nil) should be nil")
	}
	if Histogram(xs, 0) != nil {
		t.Error("Histogram with 0 bins should be nil")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := Histogram([]float64{2, 2, 2}, 4)
	if h[0] != 3 {
		t.Errorf("degenerate histogram should pile into bin 0, got %v", h)
	}
}

func TestHistogramTotalPreserved(t *testing.T) {
	f := func(raw []float64, nbins uint8) bool {
		n := int(nbins%16) + 1
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				continue
			}
			xs = append(xs, r)
		}
		h := Histogram(xs, n)
		total := 0
		for _, c := range h {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbabilities(t *testing.T) {
	ps := Probabilities([]int{2, 0, 2})
	if len(ps) != 2 {
		t.Fatalf("empty bins should be dropped, got %v", ps)
	}
	approx(t, ps[0]+ps[1], 1, 1e-12, "probability sum")
	if Probabilities([]int{0, 0}) != nil {
		t.Error("all-zero counts should return nil")
	}
}
