// Package eval implements the paper's evaluation protocol for the
// a-posteriori labeling algorithm (Section V-C and VI-A):
//
//   - the deviation metric δ (Eq. 1) and its normalized form δ_norm
//     (Eq. 2, Fig. 3);
//   - the test-sample builder: for every catalogued seizure, a number of
//     random 30–60 minute crops containing the seizure (the paper draws
//     100 per seizure, 4500 in total);
//   - the aggregation chain: per seizure, the arithmetic mean of δ and
//     the geometric mean of δ_norm across samples (Fleming–Wallace);
//     per patient, the median across its seizures; overall, the median
//     across all seizures.
package eval

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"selflearn/internal/chbmit"
	"selflearn/internal/core"
	"selflearn/internal/features"
	"selflearn/internal/signal"
	"selflearn/internal/stats"
)

// Delta computes the deviation metric δ of Eq. 1 in seconds: the average
// of the absolute start and end deviations between the detected interval
// and the ground truth.
func Delta(truth, detected signal.Interval) float64 {
	return (math.Abs(truth.Start-detected.Start) + math.Abs(truth.End-detected.End)) / 2
}

// DeltaNorm computes the normalized metric of Eq. 2 in [0, 1]:
//
//	δ_norm = 1 − (|Δstart| + |Δend|) / (2N),
//
// where N = max(L − (y_start+y_end)/2, (y_start+y_end)/2) is the maximum
// attainable error for a signal of length signalLen seconds with ground
// truth y.
func DeltaNorm(truth, detected signal.Interval, signalLen float64) (float64, error) {
	if signalLen <= 0 {
		return 0, fmt.Errorf("eval: invalid signal length %g", signalLen)
	}
	mid := (truth.Start + truth.End) / 2
	n := math.Max(signalLen-mid, mid)
	if n <= 0 {
		return 0, fmt.Errorf("eval: degenerate normalizer for truth %v in %g s", truth, signalLen)
	}
	v := 1 - (math.Abs(truth.Start-detected.Start)+math.Abs(truth.End-detected.End))/(2*n)
	// Guard against slight negative values when the detection protrudes
	// past the signal ends.
	if v < 0 {
		v = 0
	}
	return v, nil
}

// Options configures a corpus evaluation run.
type Options struct {
	// Patients to evaluate; nil means the full nine-patient catalog.
	Patients []chbmit.Patient
	// SamplesPerSeizure is the number of random crops per seizure (the
	// paper uses 100).
	SamplesPerSeizure int
	// CropMin/CropMax bound the random sample duration in seconds (the
	// paper draws 30–60 minutes).
	CropMin, CropMax float64
	// EdgeMargin keeps the seizure at least this many seconds away from
	// the crop boundaries.
	EdgeMargin float64
	// Seed drives crop randomization.
	Seed int64
	// Variants is the number of independent renderings of each seizure
	// record to spread the samples over (1 in the paper's protocol,
	// which crops a single recording; >1 additionally averages over
	// background noise realizations).
	Variants int
	// FeatureCfg is the extraction configuration.
	FeatureCfg features.Config
	// NumFeatures optionally truncates the 10-feature set to its first n
	// features (ablation A2). 0 keeps all.
	NumFeatures int
	// WScale multiplies the expert-provided average seizure duration
	// before it is used as Algorithm 1's window length (ablation A7:
	// robustness to a misestimated W). 0 means 1 (no scaling).
	WScale float64
	// Parallel fans the per-seizure evaluations across CPU cores. The
	// result is byte-identical to the serial run (each seizure's RNG is
	// independently seeded).
	Parallel bool
}

// DefaultOptions mirrors the paper's protocol.
func DefaultOptions() Options {
	return Options{
		SamplesPerSeizure: 100,
		CropMin:           1800,
		CropMax:           3600,
		EdgeMargin:        60,
		Seed:              1,
		FeatureCfg:        features.DefaultConfig(),
	}
}

// Validate checks option sanity.
func (o Options) Validate() error {
	if o.SamplesPerSeizure < 1 {
		return fmt.Errorf("eval: samples per seizure %d < 1", o.SamplesPerSeizure)
	}
	if o.CropMin <= 0 || o.CropMax < o.CropMin {
		return fmt.Errorf("eval: invalid crop range [%g, %g]", o.CropMin, o.CropMax)
	}
	if o.CropMax > chbmit.RecordDuration {
		return fmt.Errorf("eval: crop max %g exceeds record duration %g", o.CropMax, chbmit.RecordDuration)
	}
	if o.EdgeMargin < 0 {
		return errors.New("eval: negative edge margin")
	}
	if o.NumFeatures < 0 || o.NumFeatures > len(features.PaperFeatureNames()) {
		return fmt.Errorf("eval: invalid feature count %d", o.NumFeatures)
	}
	if o.Variants < 0 {
		return fmt.Errorf("eval: negative variant count %d", o.Variants)
	}
	if o.WScale < 0 || o.WScale > 10 {
		return fmt.Errorf("eval: implausible W scale %g", o.WScale)
	}
	return o.FeatureCfg.Validate()
}

// SeizureResult aggregates one seizure's samples.
type SeizureResult struct {
	PatientID string
	Ordinal   int // patient ordinal (1..9)
	Index     int // seizure index within the patient (1-based)
	Outlier   bool
	// MeanDelta is the arithmetic mean of δ across samples (Table II).
	MeanDelta float64
	// GeoDeltaNorm is the geometric mean of δ_norm across samples.
	GeoDeltaNorm float64
	// Deltas holds the per-sample δ values.
	Deltas []float64
}

// PatientResult aggregates one patient (Table I row).
type PatientResult struct {
	PatientID string
	Ordinal   int
	// MedianDelta is the median across the patient's seizures of the
	// per-seizure mean δ (Table I, row "δ (s)").
	MedianDelta float64
	// MedianDeltaNorm is the median across seizures of the per-seizure
	// geometric-mean δ_norm (Table I, row "δ_norm (%)" divided by 100).
	MedianDeltaNorm float64
	Seizures        []SeizureResult
}

// CorpusResult is a full evaluation.
type CorpusResult struct {
	Patients []PatientResult
	// OverallDelta and OverallDeltaNorm are medians across all seizures
	// (the paper's δ = 10.1 s, δ_norm = 0.9935 headline).
	OverallDelta     float64
	OverallDeltaNorm float64
}

// AllSeizures flattens the per-seizure results.
func (c *CorpusResult) AllSeizures() []SeizureResult {
	var out []SeizureResult
	for _, p := range c.Patients {
		out = append(out, p.Seizures...)
	}
	return out
}

// WithinSeconds returns the fraction of seizures whose mean δ is at most
// t seconds (Section VI-A quotes 73.3 % ≤ 15 s, 86.7 % ≤ 30 s, 93.3 % ≤
// 60 s).
func (c *CorpusResult) WithinSeconds(t float64) float64 {
	all := c.AllSeizures()
	if len(all) == 0 {
		return math.NaN()
	}
	n := 0
	for _, s := range all {
		if s.MeanDelta <= t {
			n++
		}
	}
	return float64(n) / float64(len(all))
}

// EvaluateCorpus runs the full Table I / Table II evaluation.
func EvaluateCorpus(opts Options) (*CorpusResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	patients := opts.Patients
	if patients == nil {
		patients = chbmit.Patients()
	}
	// Evaluate every (patient, seizure) pair, optionally in parallel;
	// each pair derives its own RNG from the seed, so ordering does not
	// affect results.
	type job struct {
		patientIdx, seizureIdx int
	}
	var jobs []job
	for pi, p := range patients {
		for _, sz := range p.Seizures {
			jobs = append(jobs, job{pi, sz.Index})
		}
	}
	results := make([]*SeizureResult, len(jobs))
	errs := make([]error, len(jobs))
	if opts.Parallel {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(jobs) {
			workers = len(jobs)
		}
		var wg sync.WaitGroup
		ch := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ji := range ch {
					results[ji], errs[ji] = EvaluateSeizure(patients[jobs[ji].patientIdx], jobs[ji].seizureIdx, opts)
				}
			}()
		}
		for ji := range jobs {
			ch <- ji
		}
		close(ch)
		wg.Wait()
	} else {
		for ji := range jobs {
			results[ji], errs[ji] = EvaluateSeizure(patients[jobs[ji].patientIdx], jobs[ji].seizureIdx, opts)
		}
	}
	for ji, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("eval: patient %s seizure %d: %w",
				patients[jobs[ji].patientIdx].ID, jobs[ji].seizureIdx, err)
		}
	}
	res := &CorpusResult{}
	var allDelta, allNorm []float64
	ji := 0
	for _, p := range patients {
		pr := PatientResult{PatientID: p.ID, Ordinal: p.Ordinal}
		var patientDeltas, patientNorms []float64
		for range p.Seizures {
			sr := results[ji]
			ji++
			pr.Seizures = append(pr.Seizures, *sr)
			patientDeltas = append(patientDeltas, sr.MeanDelta)
			patientNorms = append(patientNorms, sr.GeoDeltaNorm)
		}
		pr.MedianDelta = stats.Median(patientDeltas)
		pr.MedianDeltaNorm = stats.Median(patientNorms)
		allDelta = append(allDelta, patientDeltas...)
		allNorm = append(allNorm, patientNorms...)
		res.Patients = append(res.Patients, pr)
	}
	res.OverallDelta = stats.Median(allDelta)
	res.OverallDeltaNorm = stats.Median(allNorm)
	return res, nil
}

// EvaluateSeizure evaluates one catalogued seizure: the base record is
// rendered once, its features extracted once, and every sample reuses a
// row-slice of the feature matrix (crops are aligned to the 1 s hop, so
// slicing the matrix is equivalent to extracting the cropped signal; the
// z-score normalization of Algorithm 1 is per-crop either way).
func EvaluateSeizure(p chbmit.Patient, seizureIdx int, opts Options) (*SeizureResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if seizureIdx < 1 || seizureIdx > len(p.Seizures) {
		return nil, fmt.Errorf("eval: patient %s has no seizure %d", p.ID, seizureIdx)
	}
	variants := opts.Variants
	if variants < 1 {
		variants = 1
	}
	type rendered struct {
		m     *features.Matrix
		truth signal.Interval
		dur   float64
	}
	renders := make([]rendered, variants)
	for v := 0; v < variants; v++ {
		rec, err := p.SeizureRecord(seizureIdx, int64(v))
		if err != nil {
			return nil, err
		}
		m, err := features.Extract10(rec, opts.FeatureCfg)
		if err != nil {
			return nil, err
		}
		if opts.NumFeatures > 0 {
			cols := make([]int, opts.NumFeatures)
			for i := range cols {
				cols[i] = i
			}
			if m, err = m.Select(cols); err != nil {
				return nil, err
			}
		}
		renders[v] = rendered{m: m, truth: rec.Seizures[0], dur: rec.Duration()}
	}
	wScale := opts.WScale
	if wScale == 0 {
		wScale = 1
	}
	avg := time.Duration(p.AvgSeizureDuration * wScale * float64(time.Second))
	rng := rand.New(rand.NewSource(opts.Seed ^ int64(p.Ordinal*1000+seizureIdx)))

	sr := &SeizureResult{
		PatientID: p.ID,
		Ordinal:   p.Ordinal,
		Index:     seizureIdx,
		Outlier:   p.Seizures[seizureIdx-1].Outlier,
	}
	var norms []float64
	for s := 0; s < opts.SamplesPerSeizure; s++ {
		r := renders[s%variants]
		m, truth := r.m, r.truth
		lo, hi, err := sampleCrop(rng, r.dur, truth, opts)
		if err != nil {
			return nil, err
		}
		// Crop rows: windows starting in [lo, hi - windowLen].
		winLen := opts.FeatureCfg.Window.Length.Seconds()
		rowLo := int(lo)
		rowHi := int(hi - winLen + 1)
		if rowHi > m.NumRows() {
			rowHi = m.NumRows()
		}
		sub, err := m.SliceRows(rowLo, rowHi)
		if err != nil {
			return nil, err
		}
		iv, _, err := core.LabelMatrix(sub, avg)
		if err != nil {
			return nil, err
		}
		// Re-base to the crop: ground truth relative to crop start.
		cropTruth := signal.Interval{Start: truth.Start - lo, End: truth.End - lo}
		detected := iv
		d := Delta(cropTruth, detected)
		dn, err := DeltaNorm(cropTruth, detected, hi-lo)
		if err != nil {
			return nil, err
		}
		sr.Deltas = append(sr.Deltas, d)
		norms = append(norms, clampPositive(dn))
	}
	sr.MeanDelta = stats.Mean(sr.Deltas)
	sr.GeoDeltaNorm = stats.GeometricMean(norms)
	return sr, nil
}

// clampPositive keeps δ_norm strictly positive so the geometric mean
// stays defined even for a catastrophically misplaced label.
func clampPositive(v float64) float64 {
	if v < 1e-6 {
		return 1e-6
	}
	return v
}

// sampleCrop draws a crop [lo, hi) of random duration within the record
// that fully contains the seizure with the configured margin. Boundaries
// are aligned to whole seconds (the feature hop).
func sampleCrop(rng *rand.Rand, recDur float64, truth signal.Interval, opts Options) (lo, hi float64, err error) {
	dur := opts.CropMin + rng.Float64()*(opts.CropMax-opts.CropMin)
	dur = math.Floor(dur)
	if dur > recDur {
		dur = math.Floor(recDur)
	}
	margin := opts.EdgeMargin
	// Valid crop starts keep [truth.Start-margin, truth.End+margin]
	// inside [lo, lo+dur].
	minLo := truth.End + margin - dur
	maxLo := truth.Start - margin
	if minLo < 0 {
		minLo = 0
	}
	if maxLo > recDur-dur {
		maxLo = recDur - dur
	}
	if maxLo < minLo {
		return 0, 0, fmt.Errorf("eval: crop of %g s cannot contain seizure %v with margin %g", dur, truth, margin)
	}
	lo = math.Floor(minLo + rng.Float64()*(maxLo-minLo))
	return lo, lo + dur, nil
}
