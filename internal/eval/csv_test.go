package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleResult() *CorpusResult {
	return &CorpusResult{
		Patients: []PatientResult{
			{
				PatientID: "chb01", Ordinal: 1,
				Seizures: []SeizureResult{
					{PatientID: "chb01", Ordinal: 1, Index: 1, MeanDelta: 4.25, GeoDeltaNorm: 0.998, Deltas: []float64{4, 4.5}},
					{PatientID: "chb01", Ordinal: 1, Index: 2, Outlier: true, MeanDelta: 432.5, GeoDeltaNorm: 0.75, Deltas: []float64{432.5}},
				},
			},
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	if rows[0].PatientID != "chb01" || rows[0].Index != 1 {
		t.Errorf("row 0 identity: %+v", rows[0])
	}
	if math.Abs(rows[0].MeanDelta-4.25) > 1e-9 {
		t.Errorf("mean δ %g", rows[0].MeanDelta)
	}
	if len(rows[0].Deltas) != 2 || math.Abs(rows[0].Deltas[1]-4.5) > 1e-9 {
		t.Errorf("sample deltas %v", rows[0].Deltas)
	}
	if !rows[1].Outlier {
		t.Error("outlier flag lost")
	}
}

func TestWriteCSVNil(t *testing.T) {
	if err := WriteCSV(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil result should fail")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header\n1,2\n",
		"patient,ordinal,seizure,outlier,mean_delta_s,geo_delta_norm,sample_deltas_s\nchb01,x,1,false,1,1,\n",
		"patient,ordinal,seizure,outlier,mean_delta_s,geo_delta_norm,sample_deltas_s\nchb01,1,1,notabool,1,1,\n",
		"patient,ordinal,seizure,outlier,mean_delta_s,geo_delta_norm,sample_deltas_s\nchb01,1,1,false,xx,1,\n",
		"patient,ordinal,seizure,outlier,mean_delta_s,geo_delta_norm,sample_deltas_s\nchb01,1,1,false,1,1,3;bad\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestCSVHeaderStable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	want := "patient,ordinal,seizure,outlier,mean_delta_s,geo_delta_norm,sample_deltas_s"
	if first != want {
		t.Errorf("header = %q", first)
	}
}
