package eval_test

import (
	"fmt"

	"selflearn/internal/eval"
	"selflearn/internal/signal"
)

// ExampleDelta computes the paper's deviation metric (Eq. 1, Fig. 3) for
// a detection shifted 10 s late against a 60 s ground-truth seizure.
func ExampleDelta() {
	truth := signal.Interval{Start: 100, End: 160}
	detected := signal.Interval{Start: 110, End: 170}
	fmt.Printf("δ = %.1f s\n", eval.Delta(truth, detected))
	// Output:
	// δ = 10.0 s
}

// ExampleDeltaNorm normalizes the same deviation by the worst attainable
// error in a 30-minute signal (Eq. 2).
func ExampleDeltaNorm() {
	truth := signal.Interval{Start: 100, End: 160}
	detected := signal.Interval{Start: 110, End: 170}
	dn, err := eval.DeltaNorm(truth, detected, 1800)
	if err != nil {
		panic(err)
	}
	fmt.Printf("δ_norm = %.4f\n", dn)
	// Output:
	// δ_norm = 0.9940
}
