package eval

import (
	"math"
	"testing"

	"selflearn/internal/chbmit"
	"selflearn/internal/signal"
)

func TestDelta(t *testing.T) {
	truth := signal.Interval{Start: 100, End: 160}
	cases := []struct {
		det  signal.Interval
		want float64
	}{
		{signal.Interval{Start: 100, End: 160}, 0},
		{signal.Interval{Start: 110, End: 170}, 10},
		{signal.Interval{Start: 90, End: 150}, 10},
		{signal.Interval{Start: 95, End: 175}, 10},
		{signal.Interval{Start: 400, End: 460}, 300},
	}
	for _, c := range cases {
		if got := Delta(truth, c.det); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Delta(%v) = %g, want %g", c.det, got, c.want)
		}
	}
	// Symmetry in the roles is not required, but shift invariance is.
	a := Delta(truth, signal.Interval{Start: 130, End: 190})
	b := Delta(signal.Interval{Start: 0, End: 60}, signal.Interval{Start: 30, End: 90})
	if math.Abs(a-b) > 1e-12 {
		t.Error("Delta should be shift invariant")
	}
}

func TestDeltaNorm(t *testing.T) {
	truth := signal.Interval{Start: 100, End: 160}
	// Perfect detection -> 1.
	dn, err := DeltaNorm(truth, truth, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if dn != 1 {
		t.Errorf("perfect δ_norm = %g", dn)
	}
	// Mid-seizure at 130; N = max(1800-130, 130) = 1670.
	det := signal.Interval{Start: 110, End: 170}
	dn, err = DeltaNorm(truth, det, 1800)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 20.0/(2*1670)
	if math.Abs(dn-want) > 1e-12 {
		t.Errorf("δ_norm = %g, want %g", dn, want)
	}
	if _, err := DeltaNorm(truth, det, 0); err == nil {
		t.Error("zero signal length should fail")
	}
}

func TestDeltaNormClampsAtZero(t *testing.T) {
	// A detection beyond the worst case must clamp at 0, not go negative.
	truth := signal.Interval{Start: 10, End: 20}
	det := signal.Interval{Start: 1e6, End: 1e6 + 10}
	dn, err := DeltaNorm(truth, det, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if dn != 0 {
		t.Errorf("δ_norm = %g, want clamp at 0", dn)
	}
}

func TestOptionsValidate(t *testing.T) {
	good := DefaultOptions()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.SamplesPerSeizure = 0
	if bad.Validate() == nil {
		t.Error("0 samples should fail")
	}
	bad = DefaultOptions()
	bad.CropMin = 0
	if bad.Validate() == nil {
		t.Error("0 crop min should fail")
	}
	bad = DefaultOptions()
	bad.CropMax = bad.CropMin - 1
	if bad.Validate() == nil {
		t.Error("inverted crop range should fail")
	}
	bad = DefaultOptions()
	bad.CropMax = 1e9
	if bad.Validate() == nil {
		t.Error("crop beyond record should fail")
	}
	bad = DefaultOptions()
	bad.EdgeMargin = -5
	if bad.Validate() == nil {
		t.Error("negative margin should fail")
	}
	bad = DefaultOptions()
	bad.NumFeatures = 99
	if bad.Validate() == nil {
		t.Error("excessive feature count should fail")
	}
}

func TestEvaluateSeizureCleanCase(t *testing.T) {
	// A clean (non-outlier) seizure should label within tens of seconds.
	p, err := chbmit.PatientByID("chb01")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.SamplesPerSeizure = 3
	sr, err := EvaluateSeizure(p, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Deltas) != 3 {
		t.Fatalf("want 3 samples, got %d", len(sr.Deltas))
	}
	if sr.MeanDelta > 45 {
		t.Errorf("clean seizure mean δ = %g s, want small", sr.MeanDelta)
	}
	if sr.GeoDeltaNorm < 0.95 {
		t.Errorf("clean seizure δ_norm = %g, want > 0.95", sr.GeoDeltaNorm)
	}
	if sr.Outlier {
		t.Error("chb01 seizure 1 is not an outlier")
	}
}

func TestEvaluateSeizureOutlierCase(t *testing.T) {
	// The artifact-contaminated seizure should be hijacked by the burst
	// and produce a large δ (hundreds of seconds), as in Table II.
	p, err := chbmit.PatientByID("chb03")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.SamplesPerSeizure = 3
	sr, err := EvaluateSeizure(p, 1, opts) // patient 3, seizure 1 = outlier
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Outlier {
		t.Fatal("chb03 seizure 1 should be flagged outlier")
	}
	if sr.MeanDelta < 120 {
		t.Errorf("outlier seizure mean δ = %g s, want hundreds (artifact hijack)", sr.MeanDelta)
	}
}

func TestEvaluateSeizureErrors(t *testing.T) {
	p, _ := chbmit.PatientByID("chb01")
	opts := DefaultOptions()
	opts.SamplesPerSeizure = 1
	if _, err := EvaluateSeizure(p, 0, opts); err == nil {
		t.Error("seizure 0 should fail")
	}
	if _, err := EvaluateSeizure(p, 99, opts); err == nil {
		t.Error("unknown seizure should fail")
	}
	bad := opts
	bad.SamplesPerSeizure = 0
	if _, err := EvaluateSeizure(p, 1, bad); err == nil {
		t.Error("invalid options should fail")
	}
}

func TestEvaluateCorpusSmall(t *testing.T) {
	// One patient, few samples: exercises the aggregation chain.
	p, err := chbmit.PatientByID("chb09")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Patients = []chbmit.Patient{p}
	opts.SamplesPerSeizure = 2
	res, err := EvaluateCorpus(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patients) != 1 {
		t.Fatalf("patients = %d", len(res.Patients))
	}
	pr := res.Patients[0]
	if len(pr.Seizures) != 7 {
		t.Fatalf("chb09 should have 7 seizures, got %d", len(pr.Seizures))
	}
	if math.IsNaN(pr.MedianDelta) || pr.MedianDelta < 0 {
		t.Errorf("median δ = %g", pr.MedianDelta)
	}
	if pr.MedianDeltaNorm <= 0 || pr.MedianDeltaNorm > 1 {
		t.Errorf("median δ_norm = %g", pr.MedianDeltaNorm)
	}
	if res.OverallDelta != pr.MedianDelta {
		t.Error("single-patient overall should equal the patient median")
	}
	if got := len(res.AllSeizures()); got != 7 {
		t.Errorf("AllSeizures = %d", got)
	}
	w := res.WithinSeconds(1e9)
	if w != 1 {
		t.Errorf("WithinSeconds(inf) = %g", w)
	}
	if res.WithinSeconds(-1) != 0 {
		t.Error("WithinSeconds(-1) should be 0")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	p, _ := chbmit.PatientByID("chb06")
	opts := DefaultOptions()
	opts.Patients = []chbmit.Patient{p}
	opts.SamplesPerSeizure = 2
	serial, err := EvaluateCorpus(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = true
	parallel, err := EvaluateCorpus(opts)
	if err != nil {
		t.Fatal(err)
	}
	if serial.OverallDelta != parallel.OverallDelta ||
		serial.OverallDeltaNorm != parallel.OverallDeltaNorm {
		t.Errorf("parallel evaluation diverged: %g/%g vs %g/%g",
			parallel.OverallDelta, parallel.OverallDeltaNorm,
			serial.OverallDelta, serial.OverallDeltaNorm)
	}
	for i := range serial.Patients {
		for j := range serial.Patients[i].Seizures {
			a := serial.Patients[i].Seizures[j]
			b := parallel.Patients[i].Seizures[j]
			if a.MeanDelta != b.MeanDelta {
				t.Fatalf("seizure %d/%d diverged", i, j)
			}
		}
	}
}

func TestWithinSecondsEmpty(t *testing.T) {
	var res CorpusResult
	if !math.IsNaN(res.WithinSeconds(10)) {
		t.Error("empty corpus should give NaN")
	}
}

func TestDeterministicSeeding(t *testing.T) {
	p, _ := chbmit.PatientByID("chb05")
	opts := DefaultOptions()
	opts.SamplesPerSeizure = 2
	a, err := EvaluateSeizure(p, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateSeizure(p, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Deltas {
		if a.Deltas[i] != b.Deltas[i] {
			t.Fatal("same seed must reproduce sample deltas")
		}
	}
	opts.Seed = 999
	c, err := EvaluateSeizure(p, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Deltas {
		if a.Deltas[i] != c.Deltas[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should draw different crops")
	}
}

func TestVariantsSpreadSamples(t *testing.T) {
	p, _ := chbmit.PatientByID("chb06")
	opts := DefaultOptions()
	opts.SamplesPerSeizure = 4
	opts.Variants = 2
	sr, err := EvaluateSeizure(p, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Deltas) != 4 {
		t.Fatalf("want 4 samples across 2 variants, got %d", len(sr.Deltas))
	}
	if sr.MeanDelta > 60 {
		t.Errorf("cross-variant mean δ = %g s", sr.MeanDelta)
	}
	bad := DefaultOptions()
	bad.Variants = -1
	if bad.Validate() == nil {
		t.Error("negative variants should fail")
	}
}

func TestWScaleRobustness(t *testing.T) {
	// Algorithm 1's only clinical parameter is the expert-provided
	// average seizure duration. A ±50 % misestimate should degrade δ
	// gracefully, not break detection: the argmax still lands on the
	// seizure, and δ grows roughly with the induced end-point error.
	p, _ := chbmit.PatientByID("chb08")
	base := DefaultOptions()
	base.SamplesPerSeizure = 2
	exact, err := EvaluateSeizure(p, 2, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []float64{0.5, 1.5} {
		opts := base
		opts.WScale = scale
		sr, err := EvaluateSeizure(p, 2, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Expected extra δ from the window-length mismatch alone:
		// |W·scale − true duration|/2 contributes to the end error.
		mismatch := p.AvgSeizureDuration * math.Abs(scale-1) / 2
		if sr.MeanDelta > exact.MeanDelta+mismatch+30 {
			t.Errorf("scale %g: δ %g vs exact %g (+mismatch %g): detection broke",
				scale, sr.MeanDelta, exact.MeanDelta, mismatch)
		}
		if sr.MeanDelta > 300 {
			t.Errorf("scale %g hijacked the argmax: δ = %g", scale, sr.MeanDelta)
		}
	}
	bad := base
	bad.WScale = -1
	if bad.Validate() == nil {
		t.Error("negative WScale should fail")
	}
	bad.WScale = 50
	if bad.Validate() == nil {
		t.Error("absurd WScale should fail")
	}
}

func TestNumFeaturesAblationPath(t *testing.T) {
	p, _ := chbmit.PatientByID("chb01")
	opts := DefaultOptions()
	opts.SamplesPerSeizure = 1
	opts.NumFeatures = 3 // only the F7T3 band powers
	sr, err := EvaluateSeizure(p, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Deltas) != 1 {
		t.Fatal("sample count mismatch")
	}
}
