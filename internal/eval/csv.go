package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the corpus result as CSV with one row per seizure:
// patient, ordinal, seizure index, outlier flag, mean δ, geometric-mean
// δ_norm, and every per-sample δ in a trailing column list — the format
// downstream plotting scripts consume to regenerate Table II / Fig. 4
// style figures.
func WriteCSV(w io.Writer, res *CorpusResult) error {
	if res == nil {
		return fmt.Errorf("eval: nil result")
	}
	cw := csv.NewWriter(w)
	header := []string{"patient", "ordinal", "seizure", "outlier", "mean_delta_s", "geo_delta_norm", "sample_deltas_s"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range res.Patients {
		for _, s := range p.Seizures {
			samples := ""
			for i, d := range s.Deltas {
				if i > 0 {
					samples += ";"
				}
				samples += strconv.FormatFloat(d, 'f', 3, 64)
			}
			row := []string{
				s.PatientID,
				strconv.Itoa(s.Ordinal),
				strconv.Itoa(s.Index),
				strconv.FormatBool(s.Outlier),
				strconv.FormatFloat(s.MeanDelta, 'f', 3, 64),
				strconv.FormatFloat(s.GeoDeltaNorm, 'f', 6, 64),
				samples,
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a stream produced by WriteCSV back into per-seizure
// results (the aggregation fields of the patients are recomputed).
func ReadCSV(r io.Reader) ([]SeizureResult, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("eval: empty CSV")
	}
	if len(records[0]) != 7 || records[0][0] != "patient" {
		return nil, fmt.Errorf("eval: unexpected CSV header %v", records[0])
	}
	var out []SeizureResult
	for i, rec := range records[1:] {
		if len(rec) != 7 {
			return nil, fmt.Errorf("eval: row %d has %d fields", i+1, len(rec))
		}
		ordinal, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("eval: row %d ordinal: %w", i+1, err)
		}
		index, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("eval: row %d seizure: %w", i+1, err)
		}
		outlier, err := strconv.ParseBool(rec[3])
		if err != nil {
			return nil, fmt.Errorf("eval: row %d outlier: %w", i+1, err)
		}
		mean, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("eval: row %d mean δ: %w", i+1, err)
		}
		norm, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("eval: row %d δ_norm: %w", i+1, err)
		}
		sr := SeizureResult{
			PatientID:    rec[0],
			Ordinal:      ordinal,
			Index:        index,
			Outlier:      outlier,
			MeanDelta:    mean,
			GeoDeltaNorm: norm,
		}
		if rec[6] != "" {
			for _, f := range splitSemis(rec[6]) {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("eval: row %d sample δ %q: %w", i+1, f, err)
				}
				sr.Deltas = append(sr.Deltas, v)
			}
		}
		out = append(out, sr)
	}
	return out, nil
}

func splitSemis(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ';' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
