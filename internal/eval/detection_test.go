package eval

import (
	"math"
	"testing"

	"selflearn/internal/signal"
)

func assertFinite(t *testing.T, m DetectionMetrics) {
	t.Helper()
	for name, v := range map[string]float64{
		"sensitivity": m.Sensitivity,
		"fa/h":        m.FalseAlarmsPerHour,
		"hours":       m.Hours,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %g, want finite", name, v)
		}
	}
}

func TestScoreDetections(t *testing.T) {
	events := []signal.Interval{{Start: 100, End: 120}, {Start: 300, End: 320}}
	// 95 lands in the first event's tolerance window; 500 matches nothing.
	m := ScoreDetections([]float64{500, 95}, events, 30, 3600)
	if m.Events != 2 || m.Detected != 1 || m.FalseAlarms != 1 {
		t.Fatalf("got %+v, want 1/2 detected with 1 false alarm", m)
	}
	if m.Sensitivity != 0.5 || m.FalseAlarmsPerHour != 1 || m.Hours != 1 {
		t.Fatalf("rates %+v, want sensitivity 0.5, 1 FA/h over 1 h", m)
	}

	// Each event consumes at most one alarm: the second in-window alarm
	// counts as false.
	m = ScoreDetections([]float64{105, 110}, events[:1], 30, 3600)
	if m.Detected != 1 || m.FalseAlarms != 1 {
		t.Fatalf("double-counted alarms: %+v", m)
	}
}

// TestScoreDetectionsDegenerate: empty alarm lists, zero events and
// zero or negative durations must never produce NaN or Inf — degenerate
// rows still have to serialize and compare.
func TestScoreDetectionsDegenerate(t *testing.T) {
	cases := []struct {
		name     string
		alarms   []float64
		events   []signal.Interval
		duration float64
		wantSens float64
		wantFAH  float64
	}{
		{"all-empty", nil, nil, 0, 1, 0},
		{"no-events-with-alarms", []float64{10, 20}, nil, 3600, 1, 2},
		{"zero-duration", []float64{10}, []signal.Interval{{Start: 5, End: 15}}, 0, 1, 0},
		{"negative-duration", []float64{999}, nil, -60, 1, 0},
		{"missed-everything", nil, []signal.Interval{{Start: 5, End: 15}}, 3600, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := ScoreDetections(tc.alarms, tc.events, 30, tc.duration)
			assertFinite(t, m)
			if m.Sensitivity != tc.wantSens {
				t.Errorf("sensitivity = %g, want %g", m.Sensitivity, tc.wantSens)
			}
			if m.FalseAlarmsPerHour != tc.wantFAH {
				t.Errorf("FA/h = %g, want %g", m.FalseAlarmsPerHour, tc.wantFAH)
			}
		})
	}
}

func TestMerge(t *testing.T) {
	a := ScoreDetections([]float64{95}, []signal.Interval{{Start: 100, End: 120}}, 30, 1800)
	b := ScoreDetections([]float64{999}, []signal.Interval{{Start: 100, End: 120}}, 30, 1800)
	m := Merge(a, b)
	if m.Events != 2 || m.Detected != 1 || m.FalseAlarms != 1 || m.Hours != 1 {
		t.Fatalf("pooled counts wrong: %+v", m)
	}
	// Rates recomputed over the pool, not averaged.
	if m.Sensitivity != 0.5 || m.FalseAlarmsPerHour != 1 {
		t.Fatalf("pooled rates wrong: %+v", m)
	}

	// Degenerate merges stay finite.
	assertFinite(t, Merge())
	empty := Merge(DetectionMetrics{}, DetectionMetrics{})
	assertFinite(t, empty)
	if empty.Sensitivity != 1 || empty.FalseAlarmsPerHour != 0 {
		t.Fatalf("empty merge: %+v", empty)
	}
}
