package eval

import (
	"sort"

	"selflearn/internal/signal"
)

// DetectionMetrics summarises event-level detection over one or more
// streams: the operating-point numbers a serving deployment is judged
// by (did the alarms catch the seizures, and how often did they cry
// wolf), as opposed to the labeling metrics δ/δ_norm above.
type DetectionMetrics struct {
	// Events is the number of ground-truth seizure events scored.
	Events int
	// Detected is how many of them an alarm matched (at most one alarm
	// is consumed per event).
	Detected int
	// FalseAlarms is the number of alarms that matched no event.
	FalseAlarms int
	// Sensitivity is Detected/Events. With zero events there is nothing
	// to miss, so it is 1 (vacuously perfect), never NaN.
	Sensitivity float64
	// FalseAlarmsPerHour is FalseAlarms normalized by the scored stream
	// duration. A zero or negative duration yields 0, never Inf or NaN —
	// degenerate inputs must stay comparable and serializable.
	FalseAlarmsPerHour float64
	// Hours is the scored stream duration in hours.
	Hours float64
}

// ScoreDetections scores a stream of alarm times (seconds) against
// ground-truth seizure intervals. An alarm counts as detecting an event
// when it falls within [start−tolerance, end+tolerance] — the same
// matching rule as rt.ScoreEvents — and each event consumes at most one
// alarm, greedily in time order. duration is the scored stream length
// in seconds.
func ScoreDetections(alarms []float64, events []signal.Interval, tolerance, duration float64) DetectionMetrics {
	m := DetectionMetrics{Events: len(events)}
	sorted := append([]float64(nil), alarms...)
	sort.Float64s(sorted)
	used := make([]bool, len(sorted))
	for _, ev := range events {
		for i, a := range sorted {
			if used[i] {
				continue
			}
			if a >= ev.Start-tolerance && a <= ev.End+tolerance {
				m.Detected++
				used[i] = true
				break
			}
		}
	}
	for i := range sorted {
		if !used[i] {
			m.FalseAlarms++
		}
	}
	m.Sensitivity = 1
	if m.Events > 0 {
		m.Sensitivity = float64(m.Detected) / float64(m.Events)
	}
	if duration > 0 {
		m.Hours = duration / 3600
		m.FalseAlarmsPerHour = float64(m.FalseAlarms) / m.Hours
	}
	return m
}

// Merge combines per-stream metrics into one operating point: counts
// add, and the rates are recomputed over the pooled totals.
func Merge(parts ...DetectionMetrics) DetectionMetrics {
	var m DetectionMetrics
	for _, p := range parts {
		m.Events += p.Events
		m.Detected += p.Detected
		m.FalseAlarms += p.FalseAlarms
		m.Hours += p.Hours
	}
	m.Sensitivity = 1
	if m.Events > 0 {
		m.Sensitivity = float64(m.Detected) / float64(m.Events)
	}
	if m.Hours > 0 {
		m.FalseAlarmsPerHour = float64(m.FalseAlarms) / m.Hours
	}
	return m
}
