// Package report renders aligned text tables for the reproduction
// binaries: fixed-width columns, right-aligned numerics, and a
// paper-vs-measured comparison layout shared by cmd/reproduce.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-aligned text table.
type Table struct {
	headers []string
	rows    [][]string
	// rightAlign[i] marks column i as right-aligned (numeric).
	rightAlign []bool
}

// New creates a table with the given column headers.
func New(headers ...string) *Table {
	return &Table{headers: headers, rightAlign: make([]bool, len(headers))}
}

// RightAlign marks the given column indices as right-aligned.
func (t *Table) RightAlign(cols ...int) *Table {
	for _, c := range cols {
		if c >= 0 && c < len(t.rightAlign) {
			t.rightAlign[c] = true
		}
	}
	return t
}

// AddRow appends a row; the cell count must match the header count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.headers) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.headers))
	}
	t.rows = append(t.rows, cells)
	return nil
}

// MustAddRow appends a row and panics on arity mismatch; for literal
// rows in command code.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - utf8.RuneCountInString(c)
			if t.rightAlign[i] {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				if i != len(cells)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	total := 0
	for i, wd := range widths {
		if i > 0 {
			total += 2
		}
		total += wd
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Float formats a float with the given precision, trimming to a compact
// cell value.
func Float(v float64, prec int) string {
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// Percent formats a fraction as a percentage cell.
func Percent(v float64, prec int) string {
	return strconv.FormatFloat(100*v, 'f', prec, 64) + " %"
}

// Comparison builds the paper-vs-measured verdict table used by
// cmd/reproduce.
type Comparison struct {
	t *Table
}

// NewComparison creates an empty comparison table.
func NewComparison() *Comparison {
	return &Comparison{t: New("experiment", "paper", "measured", "verdict").RightAlign(1, 2)}
}

// Add appends one experiment line. ok selects the verdict marker.
func (c *Comparison) Add(name, paper, measured string, ok bool) {
	verdict := "OK"
	if !ok {
		verdict = "DEVIATES"
	}
	c.t.MustAddRow(name, paper, measured, verdict)
}

// Render writes the comparison to w.
func (c *Comparison) Render(w io.Writer) error { return c.t.Render(w) }

// AllOK reports whether every added line carried an OK verdict.
func (c *Comparison) AllOK() bool {
	for _, row := range c.t.rows {
		if row[3] != "OK" {
			return false
		}
	}
	return true
}
