package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("name", "value").RightAlign(1)
	if err := tb.AddRow("alpha", "1.5"); err != nil {
		t.Fatal(err)
	}
	tb.MustAddRow("beta-long-name", "22.75")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d: %q", len(lines), out)
	}
	// Right-aligned numeric column: values end at the same offset.
	if !strings.HasSuffix(lines[2], "  1.5") {
		t.Errorf("row 1 = %q", lines[2])
	}
	if !strings.HasSuffix(lines[3], "22.75") {
		t.Errorf("row 2 = %q", lines[3])
	}
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("aligned rows should have equal width: %q vs %q", lines[2], lines[3])
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestAddRowArity(t *testing.T) {
	tb := New("a", "b")
	if err := tb.AddRow("only-one"); err == nil {
		t.Error("arity mismatch should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow should panic on arity mismatch")
		}
	}()
	tb.MustAddRow("x", "y", "z")
}

func TestFormatters(t *testing.T) {
	if Float(3.14159, 2) != "3.14" {
		t.Errorf("Float = %q", Float(3.14159, 2))
	}
	if Percent(0.925, 1) != "92.5 %" {
		t.Errorf("Percent = %q", Percent(0.925, 1))
	}
}

func TestComparison(t *testing.T) {
	c := NewComparison()
	c.Add("Table III lifetime", "2.59 d", "2.59 d", true)
	c.Add("median δ", "10.1 s", "3.3 s", true)
	if !c.AllOK() {
		t.Error("all OK expected")
	}
	c.Add("something", "1", "99", false)
	if c.AllOK() {
		t.Error("deviation should flip AllOK")
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "DEVIATES") || !strings.Contains(out, "OK") {
		t.Errorf("comparison output missing verdicts: %q", out)
	}
}

func TestUnicodeWidths(t *testing.T) {
	tb := New("metric", "v").RightAlign(1)
	tb.MustAddRow("δ_norm", "0.99")
	tb.MustAddRow("xx", "1")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// Both data rows must render to the same rune width.
	if w1, w2 := len([]rune(lines[2])), len([]rune(lines[3])); w1 != w2 {
		t.Errorf("unicode alignment broken: %d vs %d (%q, %q)", w1, w2, lines[2], lines[3])
	}
}
