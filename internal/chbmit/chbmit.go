// Package chbmit defines the synthetic stand-in for the PhysioNet CHB-MIT
// Scalp EEG corpus used by the paper: nine patients following the standard
// acquisition protocol with 45 epileptic seizures in total, sampled at
// 256 Hz on the two wearable electrode pairs F7T3 and F8T4.
//
// The catalog is deterministic: every (patient, seizure, variant) triple
// maps to a fixed random seed, so experiments are exactly reproducible.
// Three seizures — one each in patients 2, 3 and 4, as in Table II of the
// paper — carry a large artifact burst near the seizure, which is what the
// paper identifies as the cause of its three mislabeled seizures.
package chbmit

import (
	"fmt"
	"strings"

	"selflearn/internal/signal"
	"selflearn/internal/synth"
)

// RecordDuration is the length in seconds of each generated base record.
// Evaluation crops 30–60 min samples out of it, so it is slightly longer
// than one hour.
const RecordDuration = 4200.0

// Seizure describes one catalogued seizure.
type Seizure struct {
	// Index is the 1-based seizure number within the patient.
	Index int
	// Duration is the true ictal duration in seconds.
	Duration float64
	// Outlier marks the seizures accompanied by a large artifact burst
	// (the paper's three mislabeled cases).
	Outlier bool
}

// Patient describes one catalogued subject.
type Patient struct {
	// ID is the subject identifier ("chb01" … "chb09").
	ID string
	// Ordinal is the 1-based patient number matching Table I/II.
	Ordinal int
	// AvgSeizureDuration is the patient's mean seizure duration in
	// seconds. It is the "average length of the epileptic seizures …
	// provided by a medical expert" that parameterises Algorithm 1 (the
	// window length W).
	AvgSeizureDuration float64
	// Seizures lists the patient's seizures.
	Seizures []Seizure
	// SeizureAmp is the ictal discharge amplitude in µV for this
	// subject.
	SeizureAmp float64
	// NoiseRMS is the subject's background noise floor in µV.
	NoiseRMS float64
	// StartFreq/EndFreq bound the subject's ictal chirp in Hz; ictal
	// morphology is strongly patient-specific, which is what makes
	// generic (cross-patient) detectors degrade relative to personalized
	// ones (Section I).
	StartFreq, EndFreq float64
	// SpikeSharpness controls the subject's spike-wave morphology.
	SpikeSharpness float64
	// AlphaFreq is the subject's resting alpha rhythm in Hz.
	AlphaFreq float64
}

// durationFactors spreads per-seizure durations around the patient mean;
// the values average to ≈1 so AvgSeizureDuration stays honest.
var durationFactors = []float64{0.85, 1.1, 0.95, 1.2, 0.9, 1.05, 0.95}

// catalog enumerates the nine synthetic patients. Seizure counts per
// patient ({7,3,7,4,5,3,5,4,7}, 45 total) mirror Table II.
var catalog = []Patient{
	{ID: "chb01", Ordinal: 1, AvgSeizureDuration: 60, SeizureAmp: 110, NoiseRMS: 12, StartFreq: 5.5, EndFreq: 3.2, SpikeSharpness: 18, AlphaFreq: 10},
	{ID: "chb02", Ordinal: 2, AvgSeizureDuration: 90, SeizureAmp: 95, NoiseRMS: 16, StartFreq: 4.4, EndFreq: 2.6, SpikeSharpness: 10, AlphaFreq: 9.2},
	{ID: "chb03", Ordinal: 3, AvgSeizureDuration: 45, SeizureAmp: 130, NoiseRMS: 11, StartFreq: 6.5, EndFreq: 4.1, SpikeSharpness: 24, AlphaFreq: 10.8},
	{ID: "chb04", Ordinal: 4, AvgSeizureDuration: 70, SeizureAmp: 105, NoiseRMS: 14, StartFreq: 5.0, EndFreq: 2.9, SpikeSharpness: 14, AlphaFreq: 9.6},
	{ID: "chb05", Ordinal: 5, AvgSeizureDuration: 55, SeizureAmp: 125, NoiseRMS: 12, StartFreq: 7.0, EndFreq: 4.4, SpikeSharpness: 20, AlphaFreq: 11.2},
	{ID: "chb06", Ordinal: 6, AvgSeizureDuration: 80, SeizureAmp: 115, NoiseRMS: 13, StartFreq: 4.0, EndFreq: 2.4, SpikeSharpness: 12, AlphaFreq: 9.0},
	{ID: "chb07", Ordinal: 7, AvgSeizureDuration: 50, SeizureAmp: 100, NoiseRMS: 15, StartFreq: 6.0, EndFreq: 3.6, SpikeSharpness: 22, AlphaFreq: 10.4},
	{ID: "chb08", Ordinal: 8, AvgSeizureDuration: 65, SeizureAmp: 135, NoiseRMS: 11, StartFreq: 5.7, EndFreq: 3.0, SpikeSharpness: 16, AlphaFreq: 11.0},
	{ID: "chb09", Ordinal: 9, AvgSeizureDuration: 40, SeizureAmp: 120, NoiseRMS: 12, StartFreq: 6.8, EndFreq: 4.0, SpikeSharpness: 26, AlphaFreq: 10.1},
}

var seizureCounts = []int{7, 3, 7, 4, 5, 3, 5, 4, 7}

// outliers maps patient ordinal -> 1-based seizure index of the
// artifact-contaminated seizure (Table II: patient 2 seizure 2, patient 3
// seizure 1, patient 4 seizure 1).
var outliers = map[int]int{2: 2, 3: 1, 4: 1}

func init() {
	for i := range catalog {
		p := &catalog[i]
		count := seizureCounts[i]
		for s := 1; s <= count; s++ {
			dur := p.AvgSeizureDuration * durationFactors[(s-1)%len(durationFactors)]
			p.Seizures = append(p.Seizures, Seizure{
				Index:    s,
				Duration: dur,
				Outlier:  outliers[p.Ordinal] == s,
			})
		}
	}
}

// Patients returns the full nine-patient catalog. The returned slice is a
// copy; the catalog itself is immutable.
func Patients() []Patient {
	out := make([]Patient, len(catalog))
	copy(out, catalog)
	for i := range out {
		out[i].Seizures = append([]Seizure(nil), catalog[i].Seizures...)
	}
	return out
}

// PatientByID returns the patient with the given identifier.
func PatientByID(id string) (Patient, error) {
	for _, p := range Patients() {
		if p.ID == id {
			return p, nil
		}
	}
	return Patient{}, fmt.Errorf("chbmit: unknown patient %q", id)
}

// TotalSeizures returns the corpus-wide seizure count (45).
func TotalSeizures() int {
	n := 0
	for _, c := range seizureCounts {
		n += c
	}
	return n
}

// Summary renders a human-readable catalog listing mirroring the corpus
// description in Section V-A.
func Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Synthetic CHB-MIT-like corpus: %d patients, %d seizures, %g Hz, channels F7T3/F8T4\n",
		len(catalog), TotalSeizures(), 256.0)
	for _, p := range Patients() {
		outliers := 0
		for _, s := range p.Seizures {
			if s.Outlier {
				outliers++
			}
		}
		fmt.Fprintf(&b, "  %s: %d seizures, avg %g s, ictal %.1f→%.1f Hz, amp %g µV",
			p.ID, len(p.Seizures), p.AvgSeizureDuration, p.StartFreq, p.EndFreq, p.SeizureAmp)
		if outliers > 0 {
			fmt.Fprintf(&b, " (%d artifact outlier)", outliers)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// seed derives a deterministic RNG seed for a (patient, seizure, variant)
// triple.
func seed(ordinal, seizureIdx int, variant int64) int64 {
	return int64(ordinal)*1_000_003 + int64(seizureIdx)*10_007 + variant*97 + 12345
}

// background returns this patient's background configuration.
func (p Patient) background() synth.BackgroundConfig {
	bg := synth.DefaultBackground()
	bg.NoiseRMS = p.NoiseRMS
	if p.AlphaFreq > 0 {
		bg.AlphaFreq = p.AlphaFreq
	}
	return bg
}

// seizureConfig returns this patient's ictal discharge configuration.
func (p Patient) seizureConfig() synth.SeizureConfig {
	cfg := synth.DefaultSeizure()
	cfg.Amp = p.SeizureAmp
	if p.StartFreq > 0 {
		cfg.StartFreq = p.StartFreq
	}
	if p.EndFreq > 0 {
		cfg.EndFreq = p.EndFreq
	}
	if p.SpikeSharpness > 0 {
		cfg.SpikeSharpness = p.SpikeSharpness
	}
	return cfg
}

// SeizureRecord generates the base recording containing seizure
// seizureIdx (1-based). The record is RecordDuration seconds long with
// the seizure placed mid-record; variant selects among statistically
// independent renderings of the same catalogue entry.
//
// For outlier seizures a large artifact burst is injected a few minutes
// before the seizure, reproducing the failure mode behind the paper's
// Table II outliers.
func (p Patient) SeizureRecord(seizureIdx int, variant int64) (*signal.Recording, error) {
	if seizureIdx < 1 || seizureIdx > len(p.Seizures) {
		return nil, fmt.Errorf("chbmit: patient %s has no seizure %d", p.ID, seizureIdx)
	}
	sz := p.Seizures[seizureIdx-1]
	// Deterministic pseudo-random seizure placement in the middle half of
	// the record, derived from the variant so crops differ.
	pos := 0.35 + 0.3*fract(float64(seed(p.Ordinal, seizureIdx, variant))*0.6180339887498949)
	start := pos * RecordDuration
	cfg := synth.RecordConfig{
		PatientID:  p.ID,
		RecordID:   fmt.Sprintf("%s_sz%02d_v%d", p.ID, seizureIdx, variant),
		Seed:       seed(p.Ordinal, seizureIdx, variant),
		Duration:   RecordDuration,
		Background: p.background(),
		Seizures: []synth.SeizureEvent{
			{Start: start, Duration: sz.Duration, Config: p.seizureConfig()},
		},
	}
	if sz.Outlier {
		// A large burst of noise 5–7 minutes before the seizure, strong
		// enough to hijack the distance argmax of Algorithm 1 (the paper
		// attributes its three Table II outliers to exactly this). The
		// burst combines an electrode-pop slow swing with broadband EMG
		// so that both the band-power and the entropy features deviate.
		gap := 300 + 120*fract(float64(seed(p.Ordinal, seizureIdx, variant))*0.7548776662466927)
		swing := synth.ArtifactConfig{Amp: p.SeizureAmp * 20, Duration: sz.Duration * 1.1, HighFreq: false}
		emg := synth.ArtifactConfig{Amp: p.SeizureAmp * 8, Duration: sz.Duration * 1.1, HighFreq: true}
		artStart := start - gap - swing.Duration
		if artStart < 0 {
			artStart = start + sz.Duration + gap
		}
		cfg.Artifacts = append(cfg.Artifacts,
			synth.ArtifactEvent{Start: artStart, Config: swing},
			synth.ArtifactEvent{Start: artStart, Config: emg},
		)
	}
	return synth.Generate(cfg)
}

// NonSeizureRecord generates a seizure-free recording of the given
// duration in seconds, used for the balanced non-seizure half of training
// sets.
func (p Patient) NonSeizureRecord(duration float64, variant int64) (*signal.Recording, error) {
	return synth.Generate(synth.RecordConfig{
		PatientID:  p.ID,
		RecordID:   fmt.Sprintf("%s_bg_v%d", p.ID, variant),
		Seed:       seed(p.Ordinal, 0, variant) ^ 0x5f5f5f,
		Duration:   duration,
		Background: p.background(),
	})
}

func fract(x float64) float64 {
	f := x - float64(int64(x))
	if f < 0 {
		f += 1
	}
	return f
}
