package chbmit

import (
	"math"
	"strings"
	"testing"
)

func TestCatalogShape(t *testing.T) {
	ps := Patients()
	if len(ps) != 9 {
		t.Fatalf("want 9 patients, got %d", len(ps))
	}
	wantCounts := []int{7, 3, 7, 4, 5, 3, 5, 4, 7}
	total := 0
	for i, p := range ps {
		if p.Ordinal != i+1 {
			t.Errorf("patient %d ordinal = %d", i, p.Ordinal)
		}
		if len(p.Seizures) != wantCounts[i] {
			t.Errorf("%s: %d seizures, want %d", p.ID, len(p.Seizures), wantCounts[i])
		}
		total += len(p.Seizures)
		for j, s := range p.Seizures {
			if s.Index != j+1 {
				t.Errorf("%s seizure %d has index %d", p.ID, j, s.Index)
			}
			if s.Duration <= 0 {
				t.Errorf("%s seizure %d duration %g", p.ID, j, s.Duration)
			}
		}
	}
	if total != 45 || TotalSeizures() != 45 {
		t.Errorf("total seizures = %d, want 45 (as in the paper)", total)
	}
}

func TestOutliersMatchTableII(t *testing.T) {
	ps := Patients()
	outlierSet := map[[2]int]bool{}
	for _, p := range ps {
		for _, s := range p.Seizures {
			if s.Outlier {
				outlierSet[[2]int{p.Ordinal, s.Index}] = true
			}
		}
	}
	want := map[[2]int]bool{{2, 2}: true, {3, 1}: true, {4, 1}: true}
	if len(outlierSet) != len(want) {
		t.Fatalf("outliers = %v, want %v", outlierSet, want)
	}
	for k := range want {
		if !outlierSet[k] {
			t.Errorf("missing outlier patient %d seizure %d", k[0], k[1])
		}
	}
}

func TestAvgDurationIsHonest(t *testing.T) {
	for _, p := range Patients() {
		var sum float64
		for _, s := range p.Seizures {
			sum += s.Duration
		}
		avg := sum / float64(len(p.Seizures))
		if math.Abs(avg-p.AvgSeizureDuration)/p.AvgSeizureDuration > 0.15 {
			t.Errorf("%s: actual mean duration %g vs declared %g", p.ID, avg, p.AvgSeizureDuration)
		}
	}
}

func TestPatientByID(t *testing.T) {
	p, err := PatientByID("chb03")
	if err != nil {
		t.Fatal(err)
	}
	if p.Ordinal != 3 {
		t.Errorf("ordinal = %d", p.Ordinal)
	}
	if _, err := PatientByID("chb99"); err == nil {
		t.Error("unknown patient should error")
	}
}

func TestPatientsReturnsCopy(t *testing.T) {
	a := Patients()
	a[0].Seizures[0].Duration = 1
	a[0].ID = "mutated"
	b := Patients()
	if b[0].ID == "mutated" || b[0].Seizures[0].Duration == 1 {
		t.Error("catalog must be immutable through Patients()")
	}
}

func TestSeizureRecord(t *testing.T) {
	p, err := PatientByID("chb01")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.SeizureRecord(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	if rec.Duration() != RecordDuration {
		t.Errorf("duration %g, want %g", rec.Duration(), RecordDuration)
	}
	if len(rec.Seizures) != 1 {
		t.Fatalf("want 1 seizure, got %d", len(rec.Seizures))
	}
	sz := rec.Seizures[0]
	wantDur := p.Seizures[0].Duration
	if math.Abs(sz.Duration()-wantDur) > 0.01 {
		t.Errorf("seizure duration %g, want %g", sz.Duration(), wantDur)
	}
	// Mid-record placement.
	if sz.Start < 0.3*RecordDuration || sz.Start > 0.7*RecordDuration {
		t.Errorf("seizure at %g s should be mid-record", sz.Start)
	}
}

func TestSeizureRecordVariants(t *testing.T) {
	p, _ := PatientByID("chb05")
	a, err := p.SeizureRecord(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SeizureRecord(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seizures[0] == b.Seizures[0] && a.Data[0][1000] == b.Data[0][1000] {
		t.Error("variants should differ")
	}
	a2, err := p.SeizureRecord(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seizures[0] != a2.Seizures[0] || a.Data[0][1000] != a2.Data[0][1000] {
		t.Error("same variant must be reproducible")
	}
}

func TestSeizureRecordErrors(t *testing.T) {
	p, _ := PatientByID("chb02")
	if _, err := p.SeizureRecord(0, 0); err == nil {
		t.Error("seizure 0 should fail")
	}
	if _, err := p.SeizureRecord(4, 0); err == nil {
		t.Error("chb02 has only 3 seizures")
	}
}

func TestSummary(t *testing.T) {
	s := Summary()
	for _, want := range []string{"9 patients", "45 seizures", "chb01", "chb09", "artifact outlier"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if strings.Count(s, "artifact outlier") != 3 {
		t.Errorf("want 3 outlier annotations:\n%s", s)
	}
}

func TestNonSeizureRecord(t *testing.T) {
	p, _ := PatientByID("chb07")
	rec, err := p.NonSeizureRecord(600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Seizures) != 0 {
		t.Error("non-seizure record must have no annotations")
	}
	if rec.Duration() != 600 {
		t.Errorf("duration %g", rec.Duration())
	}
}
