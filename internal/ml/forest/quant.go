package forest

import (
	"sort"

	"selflearn/internal/fixedpoint"
	"selflearn/internal/ml/tree"
)

// QuantForest is the int16-quantized companion of a FlatForest: the
// same preorder node tables at half the node width (8-byte
// tree.QuantNode vs 16-byte tree.FlatNode), descended with the same
// branch-free child select and 4-way lock-step walk. Thresholds are
// stored as ranks in per-feature cut grids (fixedpoint.Bins) and rows
// are quantized to int16 rank codes once per window, so every split
// comparison — and every decision — is exactly the float forest's (see
// Bins.Code for the order-preservation argument; TestQuantParity and
// FuzzQuantParity pin it empirically, and the learner additionally
// verifies every trained model against its training rows before
// publishing). A QuantForest is immutable after construction and safe
// for concurrent use.
type QuantForest struct {
	nodes     []tree.QuantNode
	roots     []int32
	cuts      []fixedpoint.Bins // per-feature threshold grids
	nFeatures int
}

// quantizeForest builds the int16 companion of ff, or returns nil when
// the forest does not fit the int16 code space (more than
// tree.MaxQuantCuts distinct thresholds on one feature, or feature
// indices beyond int16 range) — callers then simply keep using the
// float path for that model.
func quantizeForest(ff *FlatForest) *QuantForest {
	if ff == nil || len(ff.roots) == 0 || ff.nFeatures > 1<<15-1 {
		return nil
	}
	cuts := make([]fixedpoint.Bins, ff.nFeatures)
	for _, n := range ff.nodes {
		if n.Feature >= 0 {
			cuts[n.Feature] = append(cuts[n.Feature], n.Value)
		}
	}
	for f, c := range cuts {
		sort.Float64s(c)
		uniq := c[:0]
		for i, v := range c {
			if i == 0 || v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		if len(uniq) > tree.MaxQuantCuts {
			return nil
		}
		cuts[f] = uniq
	}
	qf := &QuantForest{
		nodes:     make([]tree.QuantNode, len(ff.nodes)),
		roots:     ff.roots,
		cuts:      cuts,
		nFeatures: ff.nFeatures,
	}
	for i, n := range ff.nodes {
		if n.Feature < 0 {
			qf.nodes[i] = tree.QuantNode{Feature: tree.QuantLeafFeature, Cut: int16(n.Right)}
			continue
		}
		grid := cuts[n.Feature]
		rank := sort.SearchFloat64s(grid, n.Value)
		// The grid was built from these exact values; a miss would mean a
		// NaN threshold (sort.SearchFloat64s cannot locate NaN). Refuse to
		// quantize rather than mis-route such a degenerate split.
		if rank >= len(grid) || grid[rank] != n.Value {
			return nil
		}
		qf.nodes[i] = tree.QuantNode{
			Feature: int16(n.Feature),
			Cut:     int16(rank),
			Right:   n.Right,
		}
	}
	return qf
}

// NumTrees returns the ensemble size.
func (qf *QuantForest) NumTrees() int { return len(qf.roots) }

// NumNodes returns the total node count across all trees.
func (qf *QuantForest) NumNodes() int { return len(qf.nodes) }

// NumFeatures returns the feature dimensionality the forest was trained on.
//
//selflearn:hotpath
func (qf *QuantForest) NumFeatures() int { return qf.nFeatures }

// NodeBytes returns the size of the packed node table in bytes — half
// of the float forest's, the footprint win the EXPERIMENTS tables track.
func (qf *QuantForest) NodeBytes() int { return 8 * len(qf.nodes) }

// QuantizeRowInto writes the int16 rank codes of feature row x into
// dst, which must have capacity for NumFeatures codes, and returns
// dst[:NumFeatures]. len(x) must be at least NumFeatures. It allocates
// nothing; one call quantizes a row for every tree in the forest.
//
//selflearn:hotpath
func (qf *QuantForest) QuantizeRowInto(dst []int16, x []float64) []int16 {
	dst = dst[:qf.nFeatures]
	for f := range dst {
		dst[f] = int16(qf.cuts[f].Code(x[f]))
	}
	return dst
}

// qstep advances one descent cursor by a single level — the int16 twin
// of step(): the child select is the same SETcc arithmetic, and
// codes[f] <= Cut holds exactly when the float comparison x <= threshold
// does (Bins.Code is order-exact, NaN codes above every cut).
//
//selflearn:hotpath
func qstep(codes []int16, n tree.QuantNode, i int32) int32 {
	var b int32
	if codes[n.Feature] <= n.Cut {
		b = 1
	}
	return n.Right + (i+1-n.Right)*b
}

// votes counts the trees classifying the coded row positive, walking
// four trees in lock-step exactly as FlatForest.votes does.
//
//selflearn:hotpath
func (qf *QuantForest) votes(codes []int16) int {
	nodes := qf.nodes
	roots := qf.roots
	votes := int32(0)
	t := 0
	for ; t+4 <= len(roots); t += 4 {
		i0, i1, i2, i3 := roots[t], roots[t+1], roots[t+2], roots[t+3]
		n0, n1, n2, n3 := nodes[i0], nodes[i1], nodes[i2], nodes[i3]
		for n0.Feature >= 0 || n1.Feature >= 0 || n2.Feature >= 0 || n3.Feature >= 0 {
			if n0.Feature >= 0 {
				i0 = qstep(codes, n0, i0)
				n0 = nodes[i0]
			}
			if n1.Feature >= 0 {
				i1 = qstep(codes, n1, i1)
				n1 = nodes[i1]
			}
			if n2.Feature >= 0 {
				i2 = qstep(codes, n2, i2)
				n2 = nodes[i2]
			}
			if n3.Feature >= 0 {
				i3 = qstep(codes, n3, i3)
				n3 = nodes[i3]
			}
		}
		votes += int32(n0.Cut) + int32(n1.Cut) + int32(n2.Cut) + int32(n3.Cut)
	}
	for ; t < len(roots); t++ {
		i := roots[t]
		n := nodes[i]
		for n.Feature >= 0 {
			i = qstep(codes, n, i)
			n = nodes[i]
		}
		votes += int32(n.Cut)
	}
	return int(votes)
}

// Votes returns the positive vote count for a coded row (exported for
// parity checking; serving uses Predict/PredictBatchInto).
func (qf *QuantForest) Votes(codes []int16) int { return qf.votes(codes) }

// Predict returns the majority-vote class for a coded row. It
// allocates nothing.
//
//selflearn:hotpath
func (qf *QuantForest) Predict(codes []int16) bool {
	return 2*qf.votes(codes) >= len(qf.roots)
}

// Prob returns the fraction of trees voting positive for a coded row.
//
//selflearn:hotpath
func (qf *QuantForest) Prob(codes []int16) float64 {
	return float64(qf.votes(codes)) / float64(len(qf.roots))
}

// PredictBatchInto classifies nRows coded rows laid out contiguously in
// the codes arena (row r at codes[r*NumFeatures : (r+1)*NumFeatures])
// into dst and returns dst[:nRows]. The walk is tree-major with the
// same 4-row lock-step as FlatForest.treeVotes; the arena layout is
// what lets the coalescing drain score many patients' windows in one
// pass without per-row slice headers. Batches up to 64 rows allocate
// nothing.
//
//selflearn:hotpath
func (qf *QuantForest) PredictBatchInto(dst []bool, codes []int16, nRows int) []bool {
	dst = dst[:nRows]
	if nRows == 0 {
		return dst
	}
	var stack [smallBatch]int32
	var votes []int32
	if nRows <= smallBatch {
		votes = stack[:nRows]
		for i := range votes {
			votes[i] = 0
		}
	} else {
		votes = make([]int32, nRows) //selflearn:alloc-ok large-batch spill, mirroring FlatForest.PredictBatchInto
	}
	nf := qf.nFeatures
	nodes := qf.nodes
	for t := range qf.roots {
		root := qf.roots[t]
		r := 0
		for ; r+4 <= nRows; r += 4 {
			x0 := codes[r*nf : r*nf+nf : r*nf+nf]
			x1 := codes[(r+1)*nf : (r+1)*nf+nf : (r+1)*nf+nf]
			x2 := codes[(r+2)*nf : (r+2)*nf+nf : (r+2)*nf+nf]
			x3 := codes[(r+3)*nf : (r+3)*nf+nf : (r+3)*nf+nf]
			i0, i1, i2, i3 := root, root, root, root
			n0, n1, n2, n3 := nodes[i0], nodes[i1], nodes[i2], nodes[i3]
			for n0.Feature >= 0 || n1.Feature >= 0 || n2.Feature >= 0 || n3.Feature >= 0 {
				if n0.Feature >= 0 {
					i0 = qstep(x0, n0, i0)
					n0 = nodes[i0]
				}
				if n1.Feature >= 0 {
					i1 = qstep(x1, n1, i1)
					n1 = nodes[i1]
				}
				if n2.Feature >= 0 {
					i2 = qstep(x2, n2, i2)
					n2 = nodes[i2]
				}
				if n3.Feature >= 0 {
					i3 = qstep(x3, n3, i3)
					n3 = nodes[i3]
				}
			}
			votes[r] += int32(n0.Cut)
			votes[r+1] += int32(n1.Cut)
			votes[r+2] += int32(n2.Cut)
			votes[r+3] += int32(n3.Cut)
		}
		for ; r < nRows; r++ {
			x := codes[r*nf : r*nf+nf : r*nf+nf]
			i := root
			n := nodes[i]
			for n.Feature >= 0 {
				i = qstep(x, n, i)
				n = nodes[i]
			}
			votes[r] += int32(n.Cut)
		}
	}
	nTrees := int32(len(qf.roots))
	for i, v := range votes {
		dst[i] = 2*v >= nTrees
	}
	return dst
}
