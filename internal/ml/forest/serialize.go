package forest

import (
	"encoding/json"
	"errors"
	"io"
	"math"

	"selflearn/internal/ml/tree"
)

type forestDTO struct {
	Trees    []*tree.Tree `json:"trees"`
	OOBError float64      `json:"oob_error"`
}

// MarshalJSON encodes the forest (trees plus the out-of-bag estimate) for
// deployment to the wearable or for checkpointing a self-learning
// session between charges.
func (f *Forest) MarshalJSON() ([]byte, error) {
	if len(f.trees) == 0 {
		return nil, errors.New("forest: empty forest")
	}
	oob := f.oob
	if math.IsNaN(oob) {
		oob = -1
	}
	return json.Marshal(forestDTO{Trees: f.trees, OOBError: oob})
}

// UnmarshalJSON decodes a forest produced by MarshalJSON.
func (f *Forest) UnmarshalJSON(data []byte) error {
	var dto forestDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return err
	}
	if len(dto.Trees) == 0 {
		return errors.New("forest: no trees")
	}
	f.trees = dto.Trees
	f.oob = dto.OOBError
	if f.oob < 0 {
		f.oob = math.NaN()
	}
	return nil
}

// Save writes the forest as JSON to w.
func (f *Forest) Save(w io.Writer) error {
	data, err := f.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Load reads a forest saved with Save.
func Load(r io.Reader) (*Forest, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	f := &Forest{}
	if err := f.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return f, nil
}
