package forest

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestForestSaveLoadRoundTrip(t *testing.T) {
	X, y := blobs(300, 4, 21)
	cfg := DefaultConfig()
	cfg.NumTrees = 12
	orig, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTrees() != orig.NumTrees() {
		t.Errorf("tree count %d vs %d", back.NumTrees(), orig.NumTrees())
	}
	if math.Abs(back.OOBError()-orig.OOBError()) > 1e-12 {
		t.Errorf("OOB %g vs %g", back.OOBError(), orig.OOBError())
	}
	for i := range X {
		if orig.Predict(X[i]) != back.Predict(X[i]) {
			t.Fatalf("prediction mismatch at %d", i)
		}
		if orig.Prob(X[i]) != back.Prob(X[i]) {
			t.Fatalf("probability mismatch at %d", i)
		}
	}
}

func TestForestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"trees":[]}`)); err == nil {
		t.Error("empty forest should fail")
	}
	if _, err := Load(strings.NewReader(`garbage`)); err == nil {
		t.Error("garbage should fail")
	}
}

func TestEmptyForestSaveFails(t *testing.T) {
	var f Forest
	if err := f.Save(&bytes.Buffer{}); err == nil {
		t.Error("saving an untrained forest should fail")
	}
}

func TestNaNOOBSurvivesRoundTrip(t *testing.T) {
	// A 1-tree forest on a tiny set can have no OOB samples -> NaN.
	X := [][]float64{{0, 0, 0}}
	y := []bool{true}
	cfg := DefaultConfig()
	cfg.NumTrees = 1
	f, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(f.OOBError()) {
		t.Skip("OOB happened to be defined")
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.OOBError()) {
		t.Error("NaN OOB should round-trip as NaN")
	}
}
