package forest

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randomSet draws a training set whose labels depend on a noisy linear
// rule, producing trees of realistic depth.
func randomSet(rng *rand.Rand, n, nf int) ([][]float64, []bool) {
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		row := make([]float64, nf)
		var s float64
		for j := range row {
			row[j] = rng.NormFloat64()
			s += row[j] * float64(j%3)
		}
		X[i] = row
		y[i] = s+0.5*rng.NormFloat64() > 0
	}
	return X, y
}

func trainedPair(t testing.TB, seed int64, n, nf, trees int) (*Forest, *FlatForest, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	X, y := randomSet(rng, n, nf)
	f, err := Train(X, y, Config{NumTrees: trees, MaxDepth: 10, MinLeaf: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	probe, _ := randomSet(rng, 512, nf)
	return f, f.Flatten(), probe
}

func TestFlattenEquivalence(t *testing.T) {
	for _, tc := range []struct{ n, nf, trees int }{
		{60, 4, 3},
		{200, 10, 25},
		{300, 17, 50},
	} {
		t.Run(fmt.Sprintf("n=%d_nf=%d_trees=%d", tc.n, tc.nf, tc.trees), func(t *testing.T) {
			f, ff, probe := trainedPair(t, int64(tc.n), tc.n, tc.nf, tc.trees)
			if ff.NumTrees() != f.NumTrees() {
				t.Fatalf("NumTrees %d vs %d", ff.NumTrees(), f.NumTrees())
			}
			if ff.NumFeatures() != tc.nf {
				t.Fatalf("NumFeatures = %d, want %d", ff.NumFeatures(), tc.nf)
			}
			if ff.OOBError() != f.OOBError() {
				t.Fatalf("OOBError %g vs %g", ff.OOBError(), f.OOBError())
			}
			for i, x := range probe {
				if ff.Predict(x) != f.Predict(x) {
					t.Fatalf("row %d: flat Predict diverges", i)
				}
				if ff.Prob(x) != f.Prob(x) {
					t.Fatalf("row %d: flat Prob %g vs %g", i, ff.Prob(x), f.Prob(x))
				}
			}
			want := f.PredictBatch(probe)
			got := ff.PredictBatch(probe)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("PredictBatch row %d diverges", i)
				}
			}
		})
	}
}

// TestFlatPredictBatchParallel drives a batch large enough to cross the
// goroutine fan-out threshold and checks it against per-row Predict.
func TestFlatPredictBatchParallel(t *testing.T) {
	f, ff, _ := trainedPair(t, 7, 400, 12, 64)
	rng := rand.New(rand.NewSource(99))
	probe, _ := randomSet(rng, 4096, 12)
	if len(probe)*ff.NumTrees() < parallelWork {
		t.Fatalf("batch too small to exercise the parallel path")
	}
	got := ff.PredictBatch(probe)
	for i, x := range probe {
		if got[i] != f.Predict(x) {
			t.Fatalf("parallel batch row %d diverges", i)
		}
	}
}

// TestFlatSerializationRoundTrip proves the flat and pointer
// representations interoperate through the shared JSON checkpoint
// format in every direction.
func TestFlatSerializationRoundTrip(t *testing.T) {
	f, ff, probe := trainedPair(t, 3, 150, 8, 20)

	agree := func(name string, predict func(x []float64) bool) {
		t.Helper()
		for i, x := range probe {
			if predict(x) != f.Predict(x) {
				t.Fatalf("%s: row %d diverges from the original forest", name, i)
			}
		}
	}

	// Flat → JSON → flat.
	var buf bytes.Buffer
	if err := ff.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ff2, err := LoadFlat(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	agree("flat->flat", ff2.Predict)
	if ff2.OOBError() != ff.OOBError() {
		t.Fatalf("OOBError lost in round trip: %g vs %g", ff2.OOBError(), ff.OOBError())
	}

	// Pointer → JSON → flat.
	buf.Reset()
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ff3, err := LoadFlat(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	agree("pointer->flat", ff3.Predict)

	// Flat → JSON → pointer.
	buf.Reset()
	if err := ff.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fp, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	agree("flat->pointer", fp.Predict)
}

func TestFlatPredictAllocs(t *testing.T) {
	_, ff, probe := trainedPair(t, 11, 200, 10, 30)
	x := probe[0]
	if allocs := testing.AllocsPerRun(200, func() { ff.Predict(x) }); allocs != 0 {
		t.Fatalf("FlatForest.Predict allocates %.1f objects/op, want 0", allocs)
	}
	dst := make([]bool, smallBatch)
	batch := probe[:smallBatch]
	if allocs := testing.AllocsPerRun(100, func() { ff.PredictBatchInto(dst, batch) }); allocs != 0 {
		t.Fatalf("PredictBatchInto allocates %.1f objects/op on a small batch, want 0", allocs)
	}
}

// BenchmarkPredict contrasts the pointer forest against its flat form
// on the single-window path the serving loop runs per hop. The training
// set is sized like a serving retrain (the learner fits on up to an
// hour of buffered rows), so tree size — and therefore memory layout —
// matches what production inference walks.
func BenchmarkPredict(b *testing.B) {
	f, ff, probe := trainedPair(b, 42, 3600, 20, 50)
	b.Run("pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Predict(probe[i%len(probe)])
		}
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ff.Predict(probe[i%len(probe)])
		}
	})
}

// BenchmarkPredictBatch measures the tree-major batch path at a size
// that stays sequential and one that fans out across goroutines.
func BenchmarkPredictBatch(b *testing.B) {
	f, ff, _ := trainedPair(b, 42, 400, 20, 50)
	rng := rand.New(rand.NewSource(1))
	for _, rows := range []int{64, 4096} {
		probe, _ := randomSet(rng, rows, 20)
		dst := make([]bool, rows)
		b.Run(fmt.Sprintf("pointer/rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.PredictBatch(probe)
			}
		})
		b.Run(fmt.Sprintf("flat/rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ff.PredictBatchInto(dst, probe)
			}
		})
	}
}
