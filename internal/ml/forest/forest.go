// Package forest implements the bootstrap-aggregated random forest used
// as the supervised real-time seizure detector (after Sopic et al.'s
// e-Glass, the paper's reference [7], which feeds 54 features per
// electrode pair into a random forest).
package forest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"selflearn/internal/ml/tree"
)

// Config controls forest training.
type Config struct {
	// NumTrees is the ensemble size.
	NumTrees int
	// MaxDepth bounds each tree (<=0 unbounded).
	MaxDepth int
	// MinLeaf is the per-tree minimum leaf size.
	MinLeaf int
	// FeatureSubset per split; 0 selects the √F default.
	FeatureSubset int
	// Seed makes training deterministic.
	Seed int64
}

// DefaultConfig returns a forest configuration suited to the window
// classification task.
func DefaultConfig() Config {
	return Config{NumTrees: 50, MaxDepth: 10, MinLeaf: 2, Seed: 1}
}

// Forest is a trained random forest.
type Forest struct {
	trees []*tree.Tree
	oob   float64
}

// Train fits a random forest on X and binary labels y.
func Train(X [][]float64, y []bool, cfg Config) (*Forest, error) {
	if len(X) == 0 {
		return nil, errors.New("forest: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("forest: %d samples but %d labels", len(X), len(y))
	}
	if cfg.NumTrees < 1 {
		return nil, fmt.Errorf("forest: invalid ensemble size %d", cfg.NumTrees)
	}
	nf := len(X[0])
	sub := cfg.FeatureSubset
	if sub <= 0 {
		sub = int(math.Sqrt(float64(nf)))
		if sub < 1 {
			sub = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{}
	// Out-of-bag vote tally per sample.
	oobVotes := make([]int, len(X))
	oobCount := make([]int, len(X))
	for t := 0; t < cfg.NumTrees; t++ {
		// Bootstrap sample.
		bootX := make([][]float64, len(X))
		bootY := make([]bool, len(X))
		inBag := make([]bool, len(X))
		for i := range bootX {
			j := rng.Intn(len(X))
			bootX[i] = X[j]
			bootY[i] = y[j]
			inBag[j] = true
		}
		tr, err := tree.Train(bootX, bootY, tree.Config{
			MaxDepth:      cfg.MaxDepth,
			MinLeaf:       cfg.MinLeaf,
			FeatureSubset: sub,
			Rng:           rng,
		})
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, tr)
		for i := range X {
			if inBag[i] {
				continue
			}
			oobCount[i]++
			if tr.Predict(X[i]) {
				oobVotes[i]++
			}
		}
	}
	// Out-of-bag error estimate.
	var wrong, counted int
	for i := range X {
		if oobCount[i] == 0 {
			continue
		}
		counted++
		pred := 2*oobVotes[i] >= oobCount[i]
		if pred != y[i] {
			wrong++
		}
	}
	if counted > 0 {
		f.oob = float64(wrong) / float64(counted)
	} else {
		f.oob = math.NaN()
	}
	return f, nil
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// OOBError returns the out-of-bag misclassification estimate (NaN when
// no sample was ever out of bag).
func (f *Forest) OOBError() float64 { return f.oob }

// Prob returns the fraction of trees voting positive for x.
func (f *Forest) Prob(x []float64) float64 {
	votes := 0
	for _, t := range f.trees {
		if t.Predict(x) {
			votes++
		}
	}
	return float64(votes) / float64(len(f.trees))
}

// Predict returns the majority-vote class for x.
func (f *Forest) Predict(x []float64) bool { return f.Prob(x) >= 0.5 }

// PredictBatch classifies every row of X.
func (f *Forest) PredictBatch(X [][]float64) []bool {
	out := make([]bool, len(X))
	for i, x := range X {
		out[i] = f.Predict(x)
	}
	return out
}

// Importances returns per-feature mean-decrease-in-impurity scores
// averaged over the ensemble and normalized to sum to 1 (all zeros when
// the trees carry no importances, e.g. after deserialization).
func (f *Forest) Importances() []float64 {
	if len(f.trees) == 0 {
		return nil
	}
	nf := f.trees[0].NumFeatures()
	acc := make([]float64, nf)
	for _, t := range f.trees {
		for i, v := range t.Importances() {
			acc[i] += v
		}
	}
	var total float64
	for _, v := range acc {
		total += v
	}
	if total > 0 {
		for i := range acc {
			acc[i] /= total
		}
	}
	return acc
}
