package forest

import (
	"math"
	"math/rand"
	"testing"
)

func blobs(n int, sep float64, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		y[i] = i%2 == 0
		base := 0.0
		if y[i] {
			base = sep
		}
		X[i] = []float64{
			base + rng.NormFloat64(),
			base + rng.NormFloat64(),
			rng.NormFloat64(), // noise feature
		}
	}
	return X, y
}

func accuracy(f *Forest, X [][]float64, y []bool) float64 {
	preds := f.PredictBatch(X)
	ok := 0
	for i := range preds {
		if preds[i] == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(y))
}

func TestTrainAndPredict(t *testing.T) {
	X, y := blobs(600, 4, 1)
	f, err := Train(X[:400], y[:400], DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 50 {
		t.Errorf("NumTrees = %d", f.NumTrees())
	}
	if acc := accuracy(f, X[400:], y[400:]); acc < 0.92 {
		t.Errorf("held-out accuracy %g", acc)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	X, y := blobs(200, 3, 2)
	cfg := DefaultConfig()
	a, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same seed should give identical forests")
		}
	}
}

func TestOOBErrorReasonable(t *testing.T) {
	X, y := blobs(500, 4, 3)
	f, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	oob := f.OOBError()
	if math.IsNaN(oob) || oob > 0.15 {
		t.Errorf("OOB error %g too high for well-separated blobs", oob)
	}
}

func TestProbRange(t *testing.T) {
	X, y := blobs(300, 4, 4)
	f, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pPos := f.Prob([]float64{4, 4, 0})
	pNeg := f.Prob([]float64{0, 0, 0})
	if pPos <= pNeg {
		t.Errorf("Prob ordering wrong: %g vs %g", pPos, pNeg)
	}
	if pPos < 0 || pPos > 1 {
		t.Errorf("Prob out of range: %g", pPos)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, nil, DefaultConfig()); err == nil {
		t.Error("empty set should fail")
	}
	X, y := blobs(10, 2, 5)
	if _, err := Train(X, y[:5], DefaultConfig()); err == nil {
		t.Error("label mismatch should fail")
	}
	bad := DefaultConfig()
	bad.NumTrees = 0
	if _, err := Train(X, y, bad); err == nil {
		t.Error("zero trees should fail")
	}
}

func TestSingleTreeForest(t *testing.T) {
	X, y := blobs(200, 5, 6)
	cfg := DefaultConfig()
	cfg.NumTrees = 1
	f, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 1 {
		t.Error("should have exactly one tree")
	}
	if acc := accuracy(f, X, y); acc < 0.85 {
		t.Errorf("single-tree accuracy %g", acc)
	}
}

func TestImportancesIdentifyInformativeFeatures(t *testing.T) {
	// Features 0 and 1 carry the class; feature 2 is noise.
	X, y := blobs(500, 4, 31)
	f, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	imp := f.Importances()
	if len(imp) != 3 {
		t.Fatalf("importances length %d", len(imp))
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Errorf("negative importance %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %g, want 1", sum)
	}
	if imp[2] > imp[0] || imp[2] > imp[1] {
		t.Errorf("noise feature ranked above informative ones: %v", imp)
	}
	if imp[0]+imp[1] < 0.8 {
		t.Errorf("informative features should dominate: %v", imp)
	}
}

func TestImbalancedData(t *testing.T) {
	// 10% positives: forest must still find the minority class region.
	rng := rand.New(rand.NewSource(7))
	var X [][]float64
	var y []bool
	for i := 0; i < 500; i++ {
		pos := i%10 == 0
		base := 0.0
		if pos {
			base = 5
		}
		X = append(X, []float64{base + rng.NormFloat64(), base + rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, pos)
	}
	f, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !f.Predict([]float64{5, 5, 0}) {
		t.Error("forest should detect the minority-class region")
	}
	if f.Predict([]float64{0, 0, 0}) {
		t.Error("majority region misclassified")
	}
}
