package forest

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"unsafe"

	"selflearn/internal/ml/tree"
)

func TestQuantNodeSize(t *testing.T) {
	if s := unsafe.Sizeof(tree.QuantNode{}); s != 8 {
		t.Fatalf("QuantNode is %d bytes, want 8", s)
	}
}

// quantProbe widens a random probe set with the inputs quantization is
// most likely to get wrong: exact node thresholds (the x == t boundary
// must still go left), their neighboring floats, NaN and ±Inf.
func quantProbe(rng *rand.Rand, ff *FlatForest, base [][]float64) [][]float64 {
	probe := append([][]float64(nil), base...)
	nf := ff.NumFeatures()
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0}
	for _, n := range ff.nodes {
		if n.Feature < 0 {
			continue
		}
		for _, v := range []float64{n.Value, math.Nextafter(n.Value, math.Inf(1)), math.Nextafter(n.Value, math.Inf(-1))} {
			row := make([]float64, nf)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			row[n.Feature] = v
			probe = append(probe, row)
		}
		if len(probe) > 4000 {
			break
		}
	}
	for _, sp := range specials {
		row := make([]float64, nf)
		for j := range row {
			row[j] = sp
		}
		probe = append(probe, row)
	}
	return probe
}

func TestQuantParityExhaustive(t *testing.T) {
	for _, tc := range []struct{ n, nf, trees int }{
		{60, 4, 3},
		{200, 10, 25},
		{300, 17, 50},
		{120, 6, 5}, // odd tree count exercises the lock-step tail
	} {
		t.Run(fmt.Sprintf("n=%d_nf=%d_trees=%d", tc.n, tc.nf, tc.trees), func(t *testing.T) {
			_, ff, base := trainedPair(t, int64(tc.n)+7, tc.n, tc.nf, tc.trees)
			qf := ff.Quant()
			if qf == nil {
				t.Fatal("trained forest failed to quantize")
			}
			if qf.NumTrees() != ff.NumTrees() || qf.NumNodes() != ff.NumNodes() || qf.NumFeatures() != ff.NumFeatures() {
				t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
					qf.NumTrees(), qf.NumNodes(), qf.NumFeatures(),
					ff.NumTrees(), ff.NumNodes(), ff.NumFeatures())
			}
			if qf.NodeBytes() != 8*ff.NumNodes() {
				t.Fatalf("NodeBytes = %d, want %d", qf.NodeBytes(), 8*ff.NumNodes())
			}
			rng := rand.New(rand.NewSource(99))
			probe := quantProbe(rng, ff, base)
			codes := make([]int16, qf.NumFeatures())
			for i, x := range probe {
				qf.QuantizeRowInto(codes, x)
				if got, want := qf.Votes(codes), ff.votes(x); got != want {
					t.Fatalf("row %d: quant votes %d, float votes %d", i, got, want)
				}
				if qf.Predict(codes) != ff.Predict(x) {
					t.Fatalf("row %d: Predict diverges", i)
				}
				if qf.Prob(codes) != ff.Prob(x) {
					t.Fatalf("row %d: Prob diverges", i)
				}
			}
			if !ff.QuantParity(probe) {
				t.Fatal("QuantParity reports disagreement on parity-clean probe")
			}
		})
	}
}

func TestQuantPredictBatchMatchesFloat(t *testing.T) {
	_, ff, base := trainedPair(t, 41, 250, 10, 25)
	qf := ff.Quant()
	if qf == nil {
		t.Fatal("forest failed to quantize")
	}
	rng := rand.New(rand.NewSource(5))
	probe := quantProbe(rng, ff, base)
	// Cover the 4-row lock-step remainder and the stack/heap vote split.
	for _, nRows := range []int{1, 2, 3, 4, 5, 63, 64, 65, len(probe)} {
		rows := probe[:nRows]
		nf := qf.NumFeatures()
		codes := make([]int16, nRows*nf)
		for i, x := range rows {
			qf.QuantizeRowInto(codes[i*nf:(i+1)*nf], x)
		}
		got := qf.PredictBatchInto(make([]bool, nRows), codes, nRows)
		want := ff.PredictBatchInto(make([]bool, nRows), rows)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("nRows=%d row %d: batch decision diverges", nRows, i)
			}
		}
	}
}

func TestQuantSurvivesCheckpointRoundTrip(t *testing.T) {
	_, ff, probe := trainedPair(t, 17, 200, 10, 25)
	if ff.Quant() == nil {
		t.Fatal("forest failed to quantize")
	}
	data, err := ff.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFlat(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	qf := loaded.Quant()
	if qf == nil {
		t.Fatal("checkpoint round-trip lost the quantized companion")
	}
	codes := make([]int16, qf.NumFeatures())
	for i, x := range probe {
		qf.QuantizeRowInto(codes, x)
		if qf.Predict(codes) != ff.Predict(x) {
			t.Fatalf("row %d: reloaded quant decision diverges", i)
		}
	}
}

func TestQuantOverflowFallsBack(t *testing.T) {
	// A degenerate single-feature "forest" with more distinct thresholds
	// than the int16 code space: one long right-spine tree per chunk.
	const cutCount = tree.MaxQuantCuts + 1
	ff := &FlatForest{nFeatures: 1}
	for c := 0; c < cutCount; {
		ff.roots = append(ff.roots, int32(len(ff.nodes)))
		for d := 0; d < 1024 && c < cutCount; d++ {
			right := int32(len(ff.nodes)) + 2
			ff.nodes = append(ff.nodes,
				tree.FlatNode{Feature: 0, Right: right, Value: float64(c)},
				tree.FlatNode{Feature: tree.LeafFeature, Right: 0, Value: 0})
			c++
		}
		ff.nodes = append(ff.nodes, tree.FlatNode{Feature: tree.LeafFeature, Right: 1, Value: 1})
	}
	if qf := quantizeForest(ff); qf != nil {
		t.Fatalf("quantized a forest with %d cuts on one feature", cutCount)
	}
	if !ff.QuantParity([][]float64{{0.5}}) {
		t.Fatal("QuantParity must be vacuously true without a companion")
	}
}

func TestQuantNaNThresholdRefused(t *testing.T) {
	ff := &FlatForest{
		nFeatures: 1,
		roots:     []int32{0},
		nodes: []tree.FlatNode{
			{Feature: 0, Right: 2, Value: math.NaN()},
			{Feature: tree.LeafFeature, Right: 1, Value: 1},
			{Feature: tree.LeafFeature, Right: 0, Value: 0},
		},
	}
	if quantizeForest(ff) != nil {
		t.Fatal("quantized a forest with a NaN threshold")
	}
}

// FuzzQuantParity drives arbitrary feature values (including NaN, ±Inf,
// subnormals — anything the fuzzer invents) through both walks of a
// trained forest and demands identical vote counts.
func FuzzQuantParity(f *testing.F) {
	_, ff, probe := trainedPair(f, 23, 200, 6, 15)
	qf := ff.Quant()
	if qf == nil {
		f.Fatal("forest failed to quantize")
	}
	for _, x := range probe[:8] {
		f.Add(x[0], x[1], x[2], x[3], x[4], x[5])
	}
	for _, n := range ff.nodes[:min(len(ff.nodes), 32)] {
		if n.Feature >= 0 {
			f.Add(n.Value, n.Value, n.Value, n.Value, n.Value, n.Value)
		}
	}
	f.Add(math.NaN(), math.Inf(1), math.Inf(-1), 0.0, math.SmallestNonzeroFloat64, -math.MaxFloat64)
	codes := make([]int16, qf.NumFeatures())
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g float64) {
		x := []float64{a, b, c, d, e, g}
		qf.QuantizeRowInto(codes, x)
		if got, want := qf.Votes(codes), ff.votes(x); got != want {
			t.Fatalf("quant votes %d, float votes %d on %v", got, want, x)
		}
	})
}

func BenchmarkQuantPredictBatch(b *testing.B) {
	_, ff, probe := trainedPair(b, 77, 400, 10, 50)
	qf := ff.Quant()
	if qf == nil {
		b.Fatal("forest failed to quantize")
	}
	const nRows = 32
	nf := qf.NumFeatures()
	codes := make([]int16, nRows*nf)
	for i, x := range probe[:nRows] {
		qf.QuantizeRowInto(codes[i*nf:(i+1)*nf], x)
	}
	dst := make([]bool, nRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qf.PredictBatchInto(dst, codes, nRows)
	}
}

func BenchmarkFlatPredictBatch(b *testing.B) {
	_, ff, probe := trainedPair(b, 77, 400, 10, 50)
	rows := probe[:32]
	dst := make([]bool, len(rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ff.PredictBatchInto(dst, rows)
	}
}
