package forest

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"runtime"
	"sync"

	"selflearn/internal/ml/tree"
)

// FlatForest is the inference-optimized form of a trained forest: every
// tree packed into one contiguous node table (see tree.FlatNode — 16
// bytes per node, left child implicit in preorder layout), no pointers
// to chase and nothing allocated per prediction. It produces bit-identical
// predictions and probabilities to the pointer Forest it was flattened
// from, and is immutable after construction, so one instance may be
// shared by any number of goroutines. This is the representation the
// serving hot path classifies with; the pointer Forest remains the
// training-side structure.
type FlatForest struct {
	nodes     []tree.FlatNode
	roots     []int32
	nFeatures int
	oob       float64

	// quant is the int16-quantized companion (see quant.go), built once
	// at Flatten/LoadFlat time and nil when the forest does not fit the
	// int16 code space. It is set only before the forest is shared (or
	// cleared by DropQuant under the learner's install lock), so readers
	// need no synchronization.
	quant *QuantForest
}

// Flatten packs the forest into a FlatForest.
func (f *Forest) Flatten() *FlatForest {
	if len(f.trees) == 0 {
		return nil
	}
	nodes := 0
	for _, t := range f.trees {
		nodes += t.NumNodes()
	}
	ff := &FlatForest{
		nodes:     make([]tree.FlatNode, 0, nodes),
		roots:     make([]int32, 0, len(f.trees)),
		nFeatures: f.trees[0].NumFeatures(),
		oob:       f.oob,
	}
	for _, t := range f.trees {
		ff.roots = append(ff.roots, int32(len(ff.nodes)))
		ff.nodes = t.AppendFlat(ff.nodes)
	}
	ff.quant = quantizeForest(ff)
	return ff
}

// Quant returns the int16-quantized companion forest, or nil when the
// model did not quantize (code-space overflow, or the learner dropped
// it after a parity failure) — callers fall back to the float walk.
//
//selflearn:hotpath
func (ff *FlatForest) Quant() *QuantForest { return ff.quant }

// DropQuant discards the quantized companion, pinning this model to the
// float path. Only valid before the forest is shared across goroutines
// (the learner calls it under its install critical section, pre-publish).
func (ff *FlatForest) DropQuant() { ff.quant = nil }

// QuantParity reports whether the quantized companion reproduces the
// float forest's exact vote count on every row of X (vacuously true
// when there is no companion). The learner runs this over each model's
// training rows before publishing and drops the companion on any
// disagreement, so quantization can never change a served decision even
// if a future representation change broke the order-exactness argument.
func (ff *FlatForest) QuantParity(X [][]float64) bool {
	qf := ff.quant
	if qf == nil {
		return true
	}
	codes := make([]int16, qf.nFeatures)
	for _, x := range X {
		qf.QuantizeRowInto(codes, x)
		if qf.votes(codes) != ff.votes(x) {
			return false
		}
	}
	return true
}

// NumTrees returns the ensemble size.
func (ff *FlatForest) NumTrees() int { return len(ff.roots) }

// NumNodes returns the total node count across all trees.
func (ff *FlatForest) NumNodes() int { return len(ff.nodes) }

// NumFeatures returns the feature dimensionality the forest was trained on.
func (ff *FlatForest) NumFeatures() int { return ff.nFeatures }

// OOBError returns the out-of-bag misclassification estimate carried
// over from the pointer forest (NaN when unavailable).
func (ff *FlatForest) OOBError() float64 { return ff.oob }

// step advances one descent cursor by a single level. The child select
// is arithmetic — b materializes as a SETcc, so the near-random split
// outcome never reaches the branch predictor (a compare-and-jump here
// would mispredict roughly half the time). b = 1 exactly when
// x <= threshold, so NaN features fall right, matching the pointer
// tree's else-branch semantics.
//
//selflearn:hotpath
func step(x []float64, n tree.FlatNode, i int32) int32 {
	var b int32
	if x[n.Feature] <= n.Value {
		b = 1
	}
	return n.Right + (i+1-n.Right)*b
}

// votes counts the trees classifying x positive. len(x) must be at
// least NumFeatures, as with Forest.Predict.
//
// Two micro-optimizations carry the speedup over the pointer forest:
// the branch-free child select (see step), and walking four trees in
// lock-step — each tree's descent is a serial load→compare→load chain,
// but the four chains are independent, so their node loads overlap
// instead of serializing. At the leaf, Right is the precomputed 0/1
// vote and a finished cursor simply stops advancing.
//
//selflearn:hotpath
func (ff *FlatForest) votes(x []float64) int {
	nodes := ff.nodes
	roots := ff.roots
	votes := int32(0)
	t := 0
	for ; t+4 <= len(roots); t += 4 {
		i0, i1, i2, i3 := roots[t], roots[t+1], roots[t+2], roots[t+3]
		n0, n1, n2, n3 := nodes[i0], nodes[i1], nodes[i2], nodes[i3]
		for n0.Feature >= 0 || n1.Feature >= 0 || n2.Feature >= 0 || n3.Feature >= 0 {
			if n0.Feature >= 0 {
				i0 = step(x, n0, i0)
				n0 = nodes[i0]
			}
			if n1.Feature >= 0 {
				i1 = step(x, n1, i1)
				n1 = nodes[i1]
			}
			if n2.Feature >= 0 {
				i2 = step(x, n2, i2)
				n2 = nodes[i2]
			}
			if n3.Feature >= 0 {
				i3 = step(x, n3, i3)
				n3 = nodes[i3]
			}
		}
		votes += n0.Right + n1.Right + n2.Right + n3.Right
	}
	for ; t < len(roots); t++ {
		i := roots[t]
		n := nodes[i]
		for n.Feature >= 0 {
			i = step(x, n, i)
			n = nodes[i]
		}
		votes += n.Right
	}
	return int(votes)
}

// Prob returns the fraction of trees voting positive for x.
//
//selflearn:hotpath
func (ff *FlatForest) Prob(x []float64) float64 {
	return float64(ff.votes(x)) / float64(len(ff.roots))
}

// Predict returns the majority-vote class for x. It allocates nothing.
//
//selflearn:hotpath
func (ff *FlatForest) Predict(x []float64) bool {
	return 2*ff.votes(x) >= len(ff.roots)
}

// smallBatch is the batch size up to which PredictBatchInto keeps its
// vote tally on the stack; the serving path classifies one window at a
// time and must stay allocation-free.
const smallBatch = 64

// parallelWork is the rows×trees product beyond which PredictBatchInto
// fans the tree loop out across GOMAXPROCS goroutines.
const parallelWork = 1 << 15

// PredictBatchInto classifies every row of X into dst, which must be at
// least len(X) long, and returns dst[:len(X)]. The walk is tree-major —
// each tree's contiguous node block stays cache-resident while it scores
// the whole batch — and large batches are parallelized across trees.
// Small batches (up to 64 rows) allocate nothing.
//
//selflearn:hotpath
func (ff *FlatForest) PredictBatchInto(dst []bool, X [][]float64) []bool {
	dst = dst[:len(X)]
	if len(X) == 0 {
		return dst
	}
	var stack [smallBatch]int32
	var votes []int32
	if len(X) <= smallBatch {
		votes = stack[:len(X)]
		for i := range votes {
			votes[i] = 0
		}
	} else {
		votes = make([]int32, len(X)) //selflearn:alloc-ok large-batch spill; batches up to smallBatch use the stack, per the doc comment
	}
	if procs := runtime.GOMAXPROCS(0); procs > 1 && len(X)*len(ff.roots) >= parallelWork {
		ff.parallelVotes(votes, X, procs)
	} else {
		ff.treeVotes(votes, X, 0, len(ff.roots))
	}
	nTrees := int32(len(ff.roots))
	for i, v := range votes {
		dst[i] = 2*v >= nTrees
	}
	return dst
}

// treeVotes accumulates votes for trees [lo, hi) over every row of X,
// tree-major so each tree's node block stays cache-resident across the
// whole batch.
//
//selflearn:hotpath
func (ff *FlatForest) treeVotes(votes []int32, X [][]float64, lo, hi int) {
	nodes := ff.nodes
	for t := lo; t < hi; t++ {
		root := ff.roots[t]
		r := 0
		// Four rows descend the tree in lock-step: independent chains,
		// overlapping node loads — the row-wise analog of votes().
		for ; r+4 <= len(X); r += 4 {
			x0, x1, x2, x3 := X[r], X[r+1], X[r+2], X[r+3]
			i0, i1, i2, i3 := root, root, root, root
			n0, n1, n2, n3 := nodes[i0], nodes[i1], nodes[i2], nodes[i3]
			for n0.Feature >= 0 || n1.Feature >= 0 || n2.Feature >= 0 || n3.Feature >= 0 {
				if n0.Feature >= 0 {
					i0 = step(x0, n0, i0)
					n0 = nodes[i0]
				}
				if n1.Feature >= 0 {
					i1 = step(x1, n1, i1)
					n1 = nodes[i1]
				}
				if n2.Feature >= 0 {
					i2 = step(x2, n2, i2)
					n2 = nodes[i2]
				}
				if n3.Feature >= 0 {
					i3 = step(x3, n3, i3)
					n3 = nodes[i3]
				}
			}
			votes[r] += n0.Right
			votes[r+1] += n1.Right
			votes[r+2] += n2.Right
			votes[r+3] += n3.Right
		}
		for ; r < len(X); r++ {
			x := X[r]
			i := root
			n := nodes[i]
			for n.Feature >= 0 {
				i = step(x, n, i)
				n = nodes[i]
			}
			votes[r] += n.Right
		}
	}
}

// parallelVotes splits the tree range across workers, each tallying into
// its own slice, then reduces. Vote counts are integers, so the merge
// order cannot perturb results.
//
//selflearn:alloc-ok fan-out only engages past parallelWork rows×trees, where goroutine and partial-slice cost is amortized
func (ff *FlatForest) parallelVotes(votes []int32, X [][]float64, procs int) {
	nTrees := len(ff.roots)
	if procs > nTrees {
		procs = nTrees
	}
	partials := make([][]int32, procs)
	var wg sync.WaitGroup
	wg.Add(procs)
	for w := 0; w < procs; w++ {
		lo := w * nTrees / procs
		hi := (w + 1) * nTrees / procs
		part := make([]int32, len(X))
		partials[w] = part
		go func(part []int32, lo, hi int) {
			defer wg.Done()
			ff.treeVotes(part, X, lo, hi)
		}(part, lo, hi)
	}
	wg.Wait()
	for _, part := range partials {
		for i, v := range part {
			votes[i] += v
		}
	}
}

// PredictBatch classifies every row of X into a fresh slice.
func (ff *FlatForest) PredictBatch(X [][]float64) []bool {
	return ff.PredictBatchInto(make([]bool, len(X)), X)
}

// MarshalJSON encodes the flat forest in the exact interchange format of
// Forest.MarshalJSON (preorder node arrays per tree), so checkpoints
// written from either representation load into either.
func (ff *FlatForest) MarshalJSON() ([]byte, error) {
	if len(ff.roots) == 0 {
		return nil, errors.New("forest: empty forest")
	}
	type nodeDTO struct {
		Leaf      bool    `json:"leaf"`
		Positive  bool    `json:"positive,omitempty"`
		Prob      float64 `json:"prob,omitempty"`
		Feature   int     `json:"feature,omitempty"`
		Threshold float64 `json:"threshold,omitempty"`
		Left      int     `json:"left,omitempty"`
		Right     int     `json:"right,omitempty"`
	}
	type treeDTO struct {
		NumFeatures int       `json:"num_features"`
		Nodes       []nodeDTO `json:"nodes"`
	}
	oob := ff.oob
	if math.IsNaN(oob) {
		oob = -1
	}
	dto := struct {
		Trees    []treeDTO `json:"trees"`
		OOBError float64   `json:"oob_error"`
	}{OOBError: oob}
	for t := range ff.roots {
		base := int(ff.roots[t])
		end := len(ff.nodes)
		if t+1 < len(ff.roots) {
			end = int(ff.roots[t+1])
		}
		td := treeDTO{NumFeatures: ff.nFeatures, Nodes: make([]nodeDTO, 0, end-base)}
		for i := base; i < end; i++ {
			n := ff.nodes[i]
			if n.Feature < 0 {
				td.Nodes = append(td.Nodes, nodeDTO{
					Leaf: true, Positive: n.Value >= 0.5, Prob: n.Value,
				})
				continue
			}
			td.Nodes = append(td.Nodes, nodeDTO{
				Feature:   int(n.Feature),
				Threshold: n.Value,
				Left:      i - base + 1,
				Right:     int(n.Right) - base,
			})
		}
		dto.Trees = append(dto.Trees, td)
	}
	return json.Marshal(dto)
}

// Save writes the flat forest as JSON to w, in the same format as
// Forest.Save.
func (ff *FlatForest) Save(w io.Writer) error {
	data, err := ff.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// LoadFlat reads a forest checkpoint (written by either Forest.Save or
// FlatForest.Save) directly into the flat representation, reusing the
// pointer loader's link validation.
func LoadFlat(r io.Reader) (*FlatForest, error) {
	f, err := Load(r)
	if err != nil {
		return nil, err
	}
	return f.Flatten(), nil
}
