package tree

// FlatNode is one node of a pointer-free tree representation, 16 bytes
// wide so four nodes share a cache line. Internal nodes: Feature >= 0,
// Value is the split threshold, the left child is implicitly the next
// node (preorder layout) and Right indexes the right child. Leaves:
// Feature == -1, Value is the leaf's positive-class probability, and
// Right holds the majority vote as 0/1 so the descent loop can
// accumulate votes without a data-dependent branch.
type FlatNode struct {
	Feature int32
	Right   int32
	Value   float64
}

// LeafFeature marks a leaf in FlatNode.Feature.
const LeafFeature int32 = -1

// AppendFlat appends the tree's nodes to dst in preorder (node, left
// subtree, right subtree) and returns the extended slice. Right-child
// indices are absolute positions in dst, so multiple trees can be packed
// into one contiguous table; the caller records len(dst) before the call
// as the tree's root index.
func (t *Tree) AppendFlat(dst []FlatNode) []FlatNode {
	var walk func(n *node)
	walk = func(n *node) {
		idx := len(dst)
		if n.leaf {
			// The vote mirrors Predict's prob >= 0.5 rule (not the stored
			// positive flag, which deserialized trees also ignore).
			var vote int32
			if n.prob >= 0.5 {
				vote = 1
			}
			dst = append(dst, FlatNode{Feature: LeafFeature, Right: vote, Value: n.prob})
			return
		}
		dst = append(dst, FlatNode{Feature: int32(n.feature), Value: n.threshold})
		walk(n.left) // lands at idx+1: the implicit left child
		dst[idx].Right = int32(len(dst))
		walk(n.right)
	}
	walk(t.root)
	return dst
}
