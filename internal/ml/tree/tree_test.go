package tree

import (
	"math/rand"
	"testing"
)

// gaussianBlobs builds a two-blob binary dataset.
func gaussianBlobs(n int, sep float64, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		y[i] = i%2 == 0
		base := 0.0
		if y[i] {
			base = sep
		}
		X[i] = []float64{base + rng.NormFloat64(), base + rng.NormFloat64()}
	}
	return X, y
}

func accuracy(t *Tree, X [][]float64, y []bool) float64 {
	ok := 0
	for i := range X {
		if t.Predict(X[i]) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}

func TestTrainSeparable(t *testing.T) {
	X, y := gaussianBlobs(400, 6, 1)
	tr, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tr, X, y); acc < 0.98 {
		t.Errorf("training accuracy %g on separable blobs", acc)
	}
}

func TestGeneralization(t *testing.T) {
	X, y := gaussianBlobs(600, 4, 2)
	tr, err := Train(X[:400], y[:400], Config{MaxDepth: 6, MinLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tr, X[400:], y[400:]); acc < 0.9 {
		t.Errorf("test accuracy %g", acc)
	}
}

func TestPureLeafShortCircuit(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []bool{true, true, true}
	tr, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 {
		t.Errorf("pure training set should produce a single leaf, got %d nodes", tr.NumNodes())
	}
	if !tr.Predict([]float64{99}) {
		t.Error("leaf should predict the pure class")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	X, y := gaussianBlobs(500, 1, 3) // overlapping blobs force deep growth
	tr, err := Train(X, y, Config{MaxDepth: 3, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 3 {
		t.Errorf("depth %d exceeds MaxDepth 3", d)
	}
}

func TestMinLeafRespected(t *testing.T) {
	X, y := gaussianBlobs(100, 2, 4)
	tr, err := Train(X, y, Config{MaxDepth: 0, MinLeaf: 20})
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf 20 on 100 samples the tree stays small.
	if tr.NumNodes() > 11 {
		t.Errorf("MinLeaf not limiting growth: %d nodes", tr.NumNodes())
	}
}

func TestConstantFeatures(t *testing.T) {
	// Unsplittable data must yield a majority-vote leaf, not loop.
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []bool{true, true, false, true}
	tr, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 || !tr.Predict([]float64{1, 1}) {
		t.Error("constant features should produce a majority leaf")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, nil, DefaultConfig()); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := Train([][]float64{{1}}, []bool{true, false}, DefaultConfig()); err == nil {
		t.Error("label mismatch should fail")
	}
	if _, err := Train([][]float64{{}}, []bool{true}, DefaultConfig()); err == nil {
		t.Error("zero features should fail")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []bool{true, false}, DefaultConfig()); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, err := Train([][]float64{{1}, {2}}, []bool{true, false},
		Config{FeatureSubset: 1}); err == nil {
		t.Error("FeatureSubset without Rng should fail")
	}
}

func TestFeatureSubsetTraining(t *testing.T) {
	X, y := gaussianBlobs(300, 5, 5)
	tr, err := Train(X, y, Config{
		MaxDepth: 8, MinLeaf: 2, FeatureSubset: 1,
		Rng: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tr, X, y); acc < 0.9 {
		t.Errorf("accuracy with feature subsetting %g", acc)
	}
}

func TestProbMonotonicWithClass(t *testing.T) {
	X, y := gaussianBlobs(400, 5, 6)
	tr, err := Train(X, y, Config{MaxDepth: 4, MinLeaf: 10})
	if err != nil {
		t.Fatal(err)
	}
	pPos := tr.Prob([]float64{5, 5})
	pNeg := tr.Prob([]float64{0, 0})
	if pPos <= pNeg {
		t.Errorf("Prob(positive region)=%g should exceed Prob(negative region)=%g", pPos, pNeg)
	}
	if pPos < 0 || pPos > 1 || pNeg < 0 || pNeg > 1 {
		t.Error("probabilities out of range")
	}
}

func TestNumFeatures(t *testing.T) {
	X, y := gaussianBlobs(50, 3, 8)
	tr, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumFeatures() != 2 {
		t.Errorf("NumFeatures = %d", tr.NumFeatures())
	}
}
