package tree

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestTreeJSONRoundTrip(t *testing.T) {
	X, y := gaussianBlobs(300, 4, 11)
	orig, err := Train(X, y, Config{MaxDepth: 8, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumFeatures() != orig.NumFeatures() || back.NumNodes() != orig.NumNodes() {
		t.Errorf("shape changed: %d/%d vs %d/%d",
			back.NumFeatures(), back.NumNodes(), orig.NumFeatures(), orig.NumNodes())
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		x := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		if orig.Predict(x) != back.Predict(x) {
			t.Fatalf("prediction mismatch at trial %d", i)
		}
		if orig.Prob(x) != back.Prob(x) {
			t.Fatalf("probability mismatch at trial %d", i)
		}
	}
}

func TestTreeUnmarshalRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{"num_features":2,"nodes":[]}`,
		`{"num_features":0,"nodes":[{"leaf":true}]}`,
		`{"num_features":2,"nodes":[{"feature":0,"threshold":1,"left":0,"right":0}]}`,               // self-link
		`{"num_features":2,"nodes":[{"feature":0,"threshold":1,"left":5,"right":6}]}`,               // dangling
		`{"num_features":2,"nodes":[{"feature":7,"threshold":1,"left":1,"right":1},{"leaf":true}]}`, // bad feature
		`not json`,
	}
	for i, c := range cases {
		var tr Tree
		if err := json.Unmarshal([]byte(c), &tr); err == nil {
			t.Errorf("case %d should fail: %s", i, c)
		}
	}
}

func TestEmptyTreeMarshalFails(t *testing.T) {
	var tr Tree
	if _, err := json.Marshal(&tr); err == nil {
		t.Error("marshaling an untrained tree should fail")
	}
}
