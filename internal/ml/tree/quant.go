package tree

// QuantNode is one node of the int16-quantized tree representation,
// 8 bytes wide — half of FlatNode — so twice as many nodes share a
// cache line and a whole serving-size tree fits in L1. Internal nodes:
// Feature >= 0, Cut is the rank of the split threshold in the forest's
// per-feature cut grid (fixedpoint.Bins), the left child is implicitly
// the next node (preorder layout, as in FlatNode) and Right indexes the
// right child. Leaves: Feature == QuantLeafFeature and Cut holds the
// majority vote as 0/1 for branchless accumulation; Right is unused.
//
// The descent compares int16 feature codes against Cut with the same
// branch-free select as the float walk; because codes are threshold
// ranks (not affine-rounded values), every comparison — and therefore
// every decision — is exactly the float tree's.
type QuantNode struct {
	Feature int16
	Cut     int16
	Right   int32
}

// QuantLeafFeature marks a leaf in QuantNode.Feature.
const QuantLeafFeature int16 = -1

// MaxQuantCuts is the largest per-feature cut-grid size the int16 code
// space supports: codes run 0..len(cuts) inclusive (the top value is
// the NaN/above-all rank), so the grid itself may hold at most 2^15−1
// cuts. Forests exceeding this on any feature stay un-quantized.
const MaxQuantCuts = 1<<15 - 1
