// Package tree implements CART binary decision trees with Gini impurity,
// the base learner of the random-forest real-time detector.
package tree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config controls tree induction.
type Config struct {
	// MaxDepth bounds the tree depth (root = depth 0). <=0 means
	// unbounded.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (>=1).
	MinLeaf int
	// FeatureSubset, when positive, examines only that many random
	// features at each split (the random-forest trick). 0 examines all.
	FeatureSubset int
	// Rng drives feature subsetting; may be nil when FeatureSubset is 0.
	Rng *rand.Rand
}

// DefaultConfig returns a conservative single-tree configuration.
func DefaultConfig() Config {
	return Config{MaxDepth: 12, MinLeaf: 2}
}

type node struct {
	// Leaf payload.
	leaf     bool
	positive bool
	prob     float64 // fraction of positive training samples in the leaf
	// Split payload.
	feature   int
	threshold float64
	left      *node // feature value <= threshold
	right     *node // feature value > threshold
}

// Tree is a trained decision tree.
type Tree struct {
	root      *node
	nFeatures int
	nodes     int
	// importances accumulates per-feature Gini impurity decrease,
	// weighted by node size, normalized by the training-set size.
	importances []float64
	total       int
}

// Importances returns the per-feature mean-decrease-in-impurity scores
// (zero slice for a deserialized tree, which does not carry them).
func (t *Tree) Importances() []float64 {
	out := make([]float64, t.nFeatures)
	copy(out, t.importances)
	return out
}

// NumNodes returns the number of nodes in the tree.
func (t *Tree) NumNodes() int { return t.nodes }

// NumFeatures returns the feature dimensionality the tree was trained on.
func (t *Tree) NumFeatures() int { return t.nFeatures }

// Train grows a tree on X (rows = samples) and binary labels y.
func Train(X [][]float64, y []bool, cfg Config) (*Tree, error) {
	if len(X) == 0 {
		return nil, errors.New("tree: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("tree: %d samples but %d labels", len(X), len(y))
	}
	nf := len(X[0])
	if nf == 0 {
		return nil, errors.New("tree: samples have no features")
	}
	for i, r := range X {
		if len(r) != nf {
			return nil, fmt.Errorf("tree: ragged row %d", i)
		}
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	if cfg.FeatureSubset > 0 && cfg.Rng == nil {
		return nil, errors.New("tree: FeatureSubset requires an Rng")
	}
	if cfg.FeatureSubset > nf {
		cfg.FeatureSubset = nf
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{nFeatures: nf, importances: make([]float64, nf)}
	t.total = len(X)
	t.root = t.grow(X, y, idx, 0, cfg)
	return t, nil
}

func countPositives(y []bool, idx []int) int {
	n := 0
	for _, i := range idx {
		if y[i] {
			n++
		}
	}
	return n
}

func gini(pos, total int) float64 {
	if total == 0 {
		return 0
	}
	p := float64(pos) / float64(total)
	return 2 * p * (1 - p)
}

func (t *Tree) grow(X [][]float64, y []bool, idx []int, depth int, cfg Config) *node {
	t.nodes++
	pos := countPositives(y, idx)
	makeLeaf := func() *node {
		return &node{
			leaf:     true,
			positive: 2*pos >= len(idx),
			prob:     float64(pos) / float64(len(idx)),
		}
	}
	if pos == 0 || pos == len(idx) ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) ||
		len(idx) < 2*cfg.MinLeaf {
		return makeLeaf()
	}
	feats := t.candidateFeatures(cfg)
	bestFeat, bestThr, bestScore := -1, 0.0, math.Inf(1)
	parentGini := gini(pos, len(idx))
	vals := make([]struct {
		v float64
		y bool
	}, len(idx))
	for _, f := range feats {
		for j, i := range idx {
			vals[j].v = X[i][f]
			vals[j].y = y[i]
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		// Sweep split positions; maintain left-class counts.
		leftPos, leftN := 0, 0
		for j := 0; j < len(vals)-1; j++ {
			if vals[j].y {
				leftPos++
			}
			leftN++
			if vals[j].v == vals[j+1].v {
				continue // cannot split between equal values
			}
			rightN := len(vals) - leftN
			if leftN < cfg.MinLeaf || rightN < cfg.MinLeaf {
				continue
			}
			rightPos := pos - leftPos
			score := (float64(leftN)*gini(leftPos, leftN) +
				float64(rightN)*gini(rightPos, rightN)) / float64(len(vals))
			if score < bestScore {
				bestScore = score
				bestFeat = f
				bestThr = (vals[j].v + vals[j+1].v) / 2
			}
		}
	}
	if bestFeat < 0 || bestScore >= parentGini-1e-12 {
		return makeLeaf()
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return makeLeaf()
	}
	// Record the impurity decrease this split achieves, weighted by the
	// fraction of training samples reaching the node.
	if t.importances != nil && t.total > 0 {
		leftPos := countPositives(y, leftIdx)
		decrease := parentGini -
			(float64(len(leftIdx))*gini(leftPos, len(leftIdx))+
				float64(len(rightIdx))*gini(pos-leftPos, len(rightIdx)))/float64(len(idx))
		t.importances[bestFeat] += decrease * float64(len(idx)) / float64(t.total)
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThr,
		left:      t.grow(X, y, leftIdx, depth+1, cfg),
		right:     t.grow(X, y, rightIdx, depth+1, cfg),
	}
}

func (t *Tree) candidateFeatures(cfg Config) []int {
	if cfg.FeatureSubset <= 0 || cfg.FeatureSubset >= t.nFeatures {
		all := make([]int, t.nFeatures)
		for i := range all {
			all[i] = i
		}
		return all
	}
	// Partial Fisher–Yates draw of FeatureSubset distinct features.
	perm := make([]int, t.nFeatures)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < cfg.FeatureSubset; i++ {
		j := i + cfg.Rng.Intn(t.nFeatures-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:cfg.FeatureSubset]
}

// Predict returns the class of x.
func (t *Tree) Predict(x []float64) bool {
	return t.Prob(x) >= 0.5
}

// Prob returns the positive-class probability estimate for x (the
// positive fraction of the training samples in x's leaf).
func (t *Tree) Prob(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.prob
}

// Depth returns the maximum depth of the tree.
func (t *Tree) Depth() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n.leaf {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}
