package tree

import (
	"encoding/json"
	"errors"
	"fmt"
)

// nodeDTO is the JSON shape of a tree node (array-encoded tree for
// compactness: children refer to indices).
type nodeDTO struct {
	Leaf      bool    `json:"leaf"`
	Positive  bool    `json:"positive,omitempty"`
	Prob      float64 `json:"prob,omitempty"`
	Feature   int     `json:"feature,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Left      int     `json:"left,omitempty"`
	Right     int     `json:"right,omitempty"`
}

type treeDTO struct {
	NumFeatures int       `json:"num_features"`
	Nodes       []nodeDTO `json:"nodes"`
}

// MarshalJSON encodes the tree as an index-linked node array, a compact
// format suitable for flashing onto the wearable.
func (t *Tree) MarshalJSON() ([]byte, error) {
	if t.root == nil {
		return nil, errors.New("tree: empty tree")
	}
	dto := treeDTO{NumFeatures: t.nFeatures}
	var walk func(n *node) int
	walk = func(n *node) int {
		idx := len(dto.Nodes)
		dto.Nodes = append(dto.Nodes, nodeDTO{})
		if n.leaf {
			dto.Nodes[idx] = nodeDTO{Leaf: true, Positive: n.positive, Prob: n.prob}
			return idx
		}
		d := nodeDTO{Feature: n.feature, Threshold: n.threshold}
		d.Left = walk(n.left)
		d.Right = walk(n.right)
		dto.Nodes[idx] = d
		return idx
	}
	walk(t.root)
	return json.Marshal(dto)
}

// UnmarshalJSON decodes a tree produced by MarshalJSON, validating the
// node links.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var dto treeDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return err
	}
	if len(dto.Nodes) == 0 {
		return errors.New("tree: no nodes")
	}
	if dto.NumFeatures < 1 {
		return fmt.Errorf("tree: invalid feature count %d", dto.NumFeatures)
	}
	nodes := make([]*node, len(dto.Nodes))
	for i := range nodes {
		nodes[i] = &node{}
	}
	for i, d := range dto.Nodes {
		if d.Leaf {
			nodes[i].leaf = true
			nodes[i].positive = d.Positive
			nodes[i].prob = d.Prob
			continue
		}
		if d.Left <= i || d.Right <= i || d.Left >= len(nodes) || d.Right >= len(nodes) {
			return fmt.Errorf("tree: node %d has invalid child links %d/%d", i, d.Left, d.Right)
		}
		if d.Feature < 0 || d.Feature >= dto.NumFeatures {
			return fmt.Errorf("tree: node %d splits on invalid feature %d", i, d.Feature)
		}
		nodes[i].feature = d.Feature
		nodes[i].threshold = d.Threshold
		nodes[i].left = nodes[d.Left]
		nodes[i].right = nodes[d.Right]
	}
	t.root = nodes[0]
	t.nFeatures = dto.NumFeatures
	t.nodes = len(nodes)
	return nil
}
