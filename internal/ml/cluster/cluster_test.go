package cluster

import (
	"math/rand"
	"testing"
)

func twoBlobs(n int, sep float64, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	truth := make([]bool, n)
	for i := range X {
		truth[i] = i%4 == 0 // 25% minority
		base := 0.0
		if truth[i] {
			base = sep
		}
		X[i] = []float64{base + rng.NormFloat64()*0.5, base + rng.NormFloat64()*0.5}
	}
	return X, truth
}

func agreement(assign []int, truth []bool) float64 {
	// Best-of-two-mapping accuracy.
	match := 0
	for i := range assign {
		if (assign[i] == 1) == truth[i] {
			match++
		}
	}
	acc := float64(match) / float64(len(truth))
	if acc < 0.5 {
		acc = 1 - acc
	}
	return acc
}

func TestKMeansRecoversBlobs(t *testing.T) {
	X, truth := twoBlobs(400, 6, 1)
	res, err := KMeans(X, 2, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc := agreement(res.Assignments, truth); acc < 0.98 {
		t.Errorf("k-means blob recovery %g", acc)
	}
	if len(res.Centers) != 2 || res.Iterations < 1 {
		t.Errorf("result malformed: %d centers, %d iterations", len(res.Centers), res.Iterations)
	}
	if res.Inertia <= 0 {
		t.Errorf("inertia = %g", res.Inertia)
	}
}

func TestKMedoidsRecoversBlobs(t *testing.T) {
	X, truth := twoBlobs(300, 6, 2)
	res, err := KMedoids(X, 2, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if acc := agreement(res.Assignments, truth); acc < 0.97 {
		t.Errorf("k-medoids blob recovery %g", acc)
	}
	// Medoids are actual data rows.
	for _, c := range res.Centers {
		found := false
		for _, x := range X {
			if x[0] == c[0] && x[1] == c[1] {
				found = true
				break
			}
		}
		if !found {
			t.Error("medoid is not a data row")
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	X, _ := twoBlobs(200, 4, 3)
	a, err := KMeans(X, 2, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(X, 2, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed must reproduce the clustering")
		}
	}
}

func TestValidationErrors(t *testing.T) {
	X, _ := twoBlobs(10, 2, 4)
	if _, err := KMeans(nil, 2, 10, 1); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := KMeans(X, 0, 10, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KMeans(X, 11, 10, 1); err == nil {
		t.Error("k>n should fail")
	}
	if _, err := KMeans(X, 2, 0, 1); err == nil {
		t.Error("maxIter=0 should fail")
	}
	if _, err := KMedoids(X, 0, 10, 1); err == nil {
		t.Error("k-medoids k=0 should fail")
	}
	if _, err := KMedoids(X, 2, 0, 1); err == nil {
		t.Error("k-medoids maxIter=0 should fail")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 5, 1); err == nil {
		t.Error("ragged input should fail")
	}
}

func TestKEqualsN(t *testing.T) {
	X := [][]float64{{0, 0}, {5, 5}, {10, 10}}
	res, err := KMeans(X, 3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Errorf("k=n should give zero inertia, got %g", res.Inertia)
	}
}

func TestDuplicatePoints(t *testing.T) {
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(X, 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 4 {
		t.Error("all points must be assigned")
	}
}

func TestBinaryFromClusters(t *testing.T) {
	X, truth := twoBlobs(400, 6, 5)
	res, err := KMeans(X, 2, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := BinaryFromClusters(res)
	if err != nil {
		t.Fatal(err)
	}
	// The minority cluster is the seizure class; it should mostly match
	// the 25% minority truth.
	match := 0
	for i := range labels {
		if labels[i] == truth[i] {
			match++
		}
	}
	if float64(match)/float64(len(labels)) < 0.95 {
		t.Errorf("minority mapping agreement %d/%d", match, len(labels))
	}
	if _, err := BinaryFromClusters(nil); err == nil {
		t.Error("nil result should fail")
	}
	three, err := KMeans(X, 3, 50, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BinaryFromClusters(three); err == nil {
		t.Error("3-clustering should fail")
	}
}
