// Package cluster implements k-means and k-medoids, the unsupervised
// seizure-detection baselines the paper cites (Smart & Chen, reference
// [17], report k-means and k-medoids as the best unsupervised methods).
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Result holds a clustering of the input rows.
type Result struct {
	// Assignments[i] is the cluster of row i.
	Assignments []int
	// Centers[c] is the centroid (k-means) or medoid row value
	// (k-medoids) of cluster c.
	Centers [][]float64
	// Inertia is the summed squared distance of rows to their centers.
	Inertia float64
	// Iterations actually performed.
	Iterations int
}

func validate(X [][]float64, k int) error {
	if len(X) == 0 {
		return errors.New("cluster: empty input")
	}
	if k < 1 || k > len(X) {
		return fmt.Errorf("cluster: invalid k %d for %d rows", k, len(X))
	}
	nf := len(X[0])
	for i, r := range X {
		if len(r) != nf {
			return fmt.Errorf("cluster: ragged row %d", i)
		}
	}
	return nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans clusters X into k groups with Lloyd's algorithm and k-means++
// seeding. maxIter bounds the Lloyd iterations.
func KMeans(X [][]float64, k, maxIter int, seed int64) (*Result, error) {
	if err := validate(X, k); err != nil {
		return nil, err
	}
	if maxIter < 1 {
		return nil, fmt.Errorf("cluster: invalid maxIter %d", maxIter)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := seedPlusPlus(X, k, rng)
	assign := make([]int, len(X))
	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, x := range X {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := sqDist(x, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		nf := len(X[0])
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, nf)
		}
		for i, x := range X {
			c := assign[i]
			counts[c]++
			for f, v := range x {
				sums[c][f] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random row.
				centers[c] = append([]float64(nil), X[rng.Intn(len(X))]...)
				continue
			}
			for f := range sums[c] {
				sums[c][f] /= float64(counts[c])
			}
			centers[c] = sums[c]
		}
		res.Iterations = iter + 1
		if !changed && iter > 0 {
			break
		}
	}
	res.Assignments = assign
	res.Centers = centers
	for i, x := range X {
		res.Inertia += sqDist(x, centers[assign[i]])
	}
	return res, nil
}

// seedPlusPlus picks k initial centers with the k-means++ distribution.
func seedPlusPlus(X [][]float64, k int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, 0, k)
	centers = append(centers, append([]float64(nil), X[rng.Intn(len(X))]...))
	d2 := make([]float64, len(X))
	for len(centers) < k {
		var total float64
		for i, x := range X {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(x, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with existing centers; duplicate one.
			centers = append(centers, append([]float64(nil), X[rng.Intn(len(X))]...))
			continue
		}
		target := rng.Float64() * total
		var cum float64
		pick := len(X) - 1
		for i, d := range d2 {
			cum += d
			if cum >= target {
				pick = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), X[pick]...))
	}
	return centers
}

// KMedoids clusters X into k groups with the PAM-style alternating
// algorithm: assign to nearest medoid, then for each cluster choose the
// row minimizing total in-cluster distance.
func KMedoids(X [][]float64, k, maxIter int, seed int64) (*Result, error) {
	if err := validate(X, k); err != nil {
		return nil, err
	}
	if maxIter < 1 {
		return nil, fmt.Errorf("cluster: invalid maxIter %d", maxIter)
	}
	rng := rand.New(rand.NewSource(seed))
	medoids := rng.Perm(len(X))[:k]
	assign := make([]int, len(X))
	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		for i, x := range X {
			best, bestD := 0, math.Inf(1)
			for c, mi := range medoids {
				if d := sqDist(x, X[mi]); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
		changed := false
		for c := range medoids {
			var members []int
			for i := range X {
				if assign[i] == c {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			bestM, bestCost := medoids[c], math.Inf(1)
			for _, cand := range members {
				var cost float64
				for _, m := range members {
					cost += math.Sqrt(sqDist(X[cand], X[m]))
				}
				if cost < bestCost {
					bestCost, bestM = cost, cand
				}
			}
			if bestM != medoids[c] {
				medoids[c] = bestM
				changed = true
			}
		}
		res.Iterations = iter + 1
		if !changed {
			break
		}
	}
	// Final assignment against the settled medoids.
	for i, x := range X {
		best, bestD := 0, math.Inf(1)
		for c, mi := range medoids {
			if d := sqDist(x, X[mi]); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
	res.Assignments = assign
	for _, mi := range medoids {
		res.Centers = append(res.Centers, append([]float64(nil), X[mi]...))
	}
	for i, x := range X {
		res.Inertia += sqDist(x, res.Centers[assign[i]])
	}
	return res, nil
}

// BinaryFromClusters converts a 2-clustering into binary labels by
// calling the smaller cluster positive (seizures are rare events). It
// errors unless the result has exactly two clusters.
func BinaryFromClusters(res *Result) ([]bool, error) {
	if res == nil || len(res.Centers) != 2 {
		return nil, errors.New("cluster: need a 2-clustering")
	}
	count := [2]int{}
	for _, a := range res.Assignments {
		if a < 0 || a > 1 {
			return nil, fmt.Errorf("cluster: assignment %d out of range", a)
		}
		count[a]++
	}
	minor := 0
	if count[1] < count[0] {
		minor = 1
	}
	out := make([]bool, len(res.Assignments))
	for i, a := range res.Assignments {
		out[i] = a == minor
	}
	return out, nil
}
