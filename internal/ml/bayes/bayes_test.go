package bayes

import (
	"math"
	"math/rand"
	"testing"
)

func blobs(n int, sep float64, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		y[i] = i%2 == 0
		base := 0.0
		if y[i] {
			base = sep
		}
		X[i] = []float64{base + rng.NormFloat64(), base + rng.NormFloat64()}
	}
	return X, y
}

func TestAccuracy(t *testing.T) {
	X, y := blobs(600, 4, 1)
	m, err := Train(X[:400], y[:400])
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i := 400; i < 600; i++ {
		if m.Predict(X[i]) == y[i] {
			ok++
		}
	}
	if ok < 190 {
		t.Errorf("held-out accuracy %d/200", ok)
	}
}

func TestLogOddsSign(t *testing.T) {
	X, y := blobs(400, 4, 2)
	m, err := Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.LogOdds([]float64{4, 4}) <= 0 {
		t.Error("positive region should have positive log-odds")
	}
	if m.LogOdds([]float64{0, 0}) >= 0 {
		t.Error("negative region should have negative log-odds")
	}
}

func TestVarianceFloor(t *testing.T) {
	// A constant feature in one class must not blow up the likelihood.
	X := [][]float64{{1, 5}, {1, 6}, {2, 5}, {3, 0}, {4, 1}, {5, 0}}
	y := []bool{true, true, true, false, false, false}
	m, err := Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	lo := m.LogOdds([]float64{1, 5})
	if math.IsNaN(lo) || math.IsInf(lo, 0) {
		t.Errorf("LogOdds = %g", lo)
	}
	if !m.Predict([]float64{1.5, 5.5}) {
		t.Error("clear positive misclassified")
	}
}

func TestPriorInfluence(t *testing.T) {
	// Strongly imbalanced classes shift the decision threshold.
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []bool
	for i := 0; i < 1000; i++ {
		pos := i%20 == 0 // 5% positives
		base := 0.0
		if pos {
			base = 2
		}
		X = append(X, []float64{base + rng.NormFloat64()})
		y = append(y, pos)
	}
	m, err := Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	// The midpoint (1.0) belongs to the majority class under these priors.
	if m.Predict([]float64{1.0}) {
		t.Error("prior should pull the midpoint toward the majority class")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, nil); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := Train([][]float64{{1}}, []bool{true, false}); err == nil {
		t.Error("label mismatch should fail")
	}
	if _, err := Train([][]float64{{1}, {2}}, []bool{true, true}); err == nil {
		t.Error("single-class training should fail")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []bool{true, false}); err == nil {
		t.Error("ragged matrix should fail")
	}
}
