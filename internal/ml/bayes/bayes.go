// Package bayes implements a Gaussian naive-Bayes classifier baseline.
package bayes

import (
	"errors"
	"fmt"
	"math"

	"selflearn/internal/stats"
)

// NB is a trained Gaussian naive-Bayes model.
type NB struct {
	priorPos            float64
	meanPos, meanNeg    []float64
	varPos, varNeg      []float64
	logPrior, logPrior0 float64
}

// Train fits per-class Gaussian feature models.
func Train(X [][]float64, y []bool) (*NB, error) {
	if len(X) == 0 {
		return nil, errors.New("bayes: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("bayes: %d samples but %d labels", len(X), len(y))
	}
	nf := len(X[0])
	var pos, neg [][]float64
	for i, r := range X {
		if len(r) != nf {
			return nil, fmt.Errorf("bayes: ragged row %d", i)
		}
		if y[i] {
			pos = append(pos, r)
		} else {
			neg = append(neg, r)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return nil, errors.New("bayes: need both classes in the training set")
	}
	m := &NB{
		priorPos: float64(len(pos)) / float64(len(X)),
		meanPos:  make([]float64, nf), meanNeg: make([]float64, nf),
		varPos: make([]float64, nf), varNeg: make([]float64, nf),
	}
	m.logPrior = math.Log(m.priorPos)
	m.logPrior0 = math.Log(1 - m.priorPos)
	fill := func(rows [][]float64, mean, vr []float64) {
		col := make([]float64, len(rows))
		for f := 0; f < nf; f++ {
			for i, r := range rows {
				col[i] = r[f]
			}
			mean[f] = stats.Mean(col)
			v := stats.Variance(col)
			if v < 1e-9 {
				v = 1e-9 // variance floor keeps the likelihood finite
			}
			vr[f] = v
		}
	}
	fill(pos, m.meanPos, m.varPos)
	fill(neg, m.meanNeg, m.varNeg)
	return m, nil
}

// LogOdds returns log P(pos|x) − log P(neg|x).
func (m *NB) LogOdds(x []float64) float64 {
	ll := m.logPrior - m.logPrior0
	for f := range x {
		ll += logGauss(x[f], m.meanPos[f], m.varPos[f]) - logGauss(x[f], m.meanNeg[f], m.varNeg[f])
	}
	return ll
}

func logGauss(x, mean, variance float64) float64 {
	d := x - mean
	return -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
}

// Predict returns the MAP class of x.
func (m *NB) Predict(x []float64) bool { return m.LogOdds(x) >= 0 }
