package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCountAndRates(t *testing.T) {
	var c Confusion
	// 3 TP, 1 FP, 4 TN, 2 FN
	for i := 0; i < 3; i++ {
		c.Count(true, true)
	}
	c.Count(true, false)
	for i := 0; i < 4; i++ {
		c.Count(false, false)
	}
	for i := 0; i < 2; i++ {
		c.Count(false, true)
	}
	if c.Total() != 10 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.Sensitivity(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Sensitivity = %g, want 0.6", got)
	}
	if got := c.Specificity(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Specificity = %g, want 0.8", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Accuracy = %g, want 0.7", got)
	}
	if got := c.Precision(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Precision = %g, want 0.75", got)
	}
	if got := c.GeometricMean(); math.Abs(got-math.Sqrt(0.48)) > 1e-12 {
		t.Errorf("GeometricMean = %g, want √0.48", got)
	}
	wantF1 := 2 * 0.75 * 0.6 / (0.75 + 0.6)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %g, want %g", got, wantF1)
	}
}

func TestDegenerateNaN(t *testing.T) {
	var c Confusion
	c.Count(false, false) // only negatives
	if !math.IsNaN(c.Sensitivity()) {
		t.Error("sensitivity without positives should be NaN")
	}
	if !math.IsNaN(c.GeometricMean()) {
		t.Error("gmean without positives should be NaN")
	}
	var p Confusion
	p.Count(false, true) // only positives, none predicted
	if !math.IsNaN(p.Specificity()) {
		t.Error("specificity without negatives should be NaN")
	}
	if !math.IsNaN(p.Precision()) {
		t.Error("precision without positive predictions should be NaN")
	}
	var empty Confusion
	if !math.IsNaN(empty.Accuracy()) {
		t.Error("empty accuracy should be NaN")
	}
}

func TestFromSlices(t *testing.T) {
	pred := []bool{true, false, true, false}
	act := []bool{true, false, false, true}
	c, err := FromSlices(pred, act)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 1 || c.TN != 1 || c.FP != 1 || c.FN != 1 {
		t.Errorf("confusion = %+v", c)
	}
	if _, err := FromSlices(pred, act[:2]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FromSlices(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
}

func TestPerfectClassifier(t *testing.T) {
	c, err := FromSlices([]bool{true, false, true}, []bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if c.GeometricMean() != 1 || c.Accuracy() != 1 || c.F1() != 1 {
		t.Errorf("perfect classifier metrics: %v", c)
	}
}

func TestString(t *testing.T) {
	var c Confusion
	c.Count(true, true)
	c.Count(false, false)
	s := c.String()
	if !strings.Contains(s, "TP=1") || !strings.Contains(s, "gmean=1.0000") {
		t.Errorf("String() = %q", s)
	}
}
