// Package metrics provides the binary-classification metrics the paper
// evaluates with: sensitivity, specificity and their geometric mean.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// Confusion is a binary confusion matrix; the positive class is
// "seizure".
type Confusion struct {
	TP, FP, TN, FN int
}

// Count updates the matrix with one (predicted, actual) pair.
func (c *Confusion) Count(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// FromSlices builds a confusion matrix from parallel prediction/label
// slices.
func FromSlices(predicted, actual []bool) (Confusion, error) {
	if len(predicted) != len(actual) {
		return Confusion{}, fmt.Errorf("metrics: %d predictions but %d labels", len(predicted), len(actual))
	}
	if len(predicted) == 0 {
		return Confusion{}, errors.New("metrics: empty inputs")
	}
	var c Confusion
	for i := range predicted {
		c.Count(predicted[i], actual[i])
	}
	return c, nil
}

// Total returns the number of counted samples.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Sensitivity (true positive rate, recall): TP/(TP+FN). NaN when the
// positive class is absent.
func (c Confusion) Sensitivity() float64 {
	den := c.TP + c.FN
	if den == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(den)
}

// Specificity (true negative rate): TN/(TN+FP). NaN when the negative
// class is absent.
func (c Confusion) Specificity() float64 {
	den := c.TN + c.FP
	if den == 0 {
		return math.NaN()
	}
	return float64(c.TN) / float64(den)
}

// Accuracy: (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return math.NaN()
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Precision: TP/(TP+FP). NaN when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	den := c.TP + c.FP
	if den == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(den)
}

// F1 is the harmonic mean of precision and sensitivity.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Sensitivity()
	if math.IsNaN(p) || math.IsNaN(r) || p+r == 0 {
		return math.NaN()
	}
	return 2 * p * r / (p + r)
}

// GeometricMean returns √(sensitivity·specificity), the paper's headline
// metric for the real-time detector (Fig. 4).
func (c Confusion) GeometricMean() float64 {
	se, sp := c.Sensitivity(), c.Specificity()
	if math.IsNaN(se) || math.IsNaN(sp) {
		return math.NaN()
	}
	return math.Sqrt(se * sp)
}

// String formats the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d se=%.4f sp=%.4f gmean=%.4f",
		c.TP, c.FP, c.TN, c.FN, c.Sensitivity(), c.Specificity(), c.GeometricMean())
}
