package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestROCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-1) > 1e-12 {
		t.Errorf("perfect AUC = %g", auc)
	}
	pts, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].FPR != 0 || pts[0].TPR != 0 {
		t.Error("curve should start at (0,0)")
	}
	last := pts[len(pts)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Error("curve should end at (1,1)")
	}
}

func TestROCAntiPerfect(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0) > 1e-12 {
		t.Errorf("inverted AUC = %g, want 0", auc)
	}
}

func TestROCRandomScoresHalfAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2) == 0
	}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.02 {
		t.Errorf("random AUC = %g, want ≈0.5", auc)
	}
}

func TestROCTiesHandled(t *testing.T) {
	// All scores identical: a single diagonal step, AUC = 0.5.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied-score AUC = %g, want 0.5", auc)
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := ROC(nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := ROC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("single class should fail")
	}
}

func TestROCMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	scores := make([]float64, 500)
	labels := make([]bool, 500)
	for i := range scores {
		labels[i] = i%3 == 0
		scores[i] = rng.Float64()
		if labels[i] {
			scores[i] += 0.3
		}
	}
	pts, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FPR < pts[i-1].FPR || pts[i].TPR < pts[i-1].TPR {
			t.Fatal("ROC curve must be monotone")
		}
	}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.6 {
		t.Errorf("shifted scores should beat chance, AUC = %g", auc)
	}
}
