package metrics

import (
	"errors"
	"fmt"
	"sort"
)

// ROCPoint is one operating point of a receiver operating characteristic
// curve.
type ROCPoint struct {
	Threshold float64
	// FPR is the false positive rate (1 − specificity).
	FPR float64
	// TPR is the true positive rate (sensitivity).
	TPR float64
}

// ROC computes the ROC curve from probability scores and binary labels.
// The returned points run from the most conservative operating point
// (0, 0) to the most permissive (1, 1) in FPR order.
func ROC(scores []float64, labels []bool) ([]ROCPoint, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("metrics: %d scores but %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return nil, errors.New("metrics: empty inputs")
	}
	var pos, neg int
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, errors.New("metrics: ROC needs both classes")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	points := []ROCPoint{{Threshold: scores[idx[0]] + 1, FPR: 0, TPR: 0}}
	tp, fp := 0, 0
	for i := 0; i < len(idx); {
		// Process ties together so the curve is well-defined.
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			if labels[idx[j]] {
				tp++
			} else {
				fp++
			}
			j++
		}
		points = append(points, ROCPoint{
			Threshold: scores[idx[i]],
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
		})
		i = j
	}
	return points, nil
}

// AUC returns the area under the ROC curve by trapezoidal integration.
func AUC(scores []float64, labels []bool) (float64, error) {
	pts, err := ROC(scores, labels)
	if err != nil {
		return 0, err
	}
	var area float64
	for i := 1; i < len(pts); i++ {
		area += (pts[i].FPR - pts[i-1].FPR) * (pts[i].TPR + pts[i-1].TPR) / 2
	}
	return area, nil
}
