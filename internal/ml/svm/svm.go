// Package svm implements a linear support-vector machine trained with the
// Pegasos stochastic sub-gradient algorithm. It is one of the supervised
// baselines the related-work section positions the methodology against.
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"selflearn/internal/stats"
)

// Config controls Pegasos training.
type Config struct {
	// Lambda is the L2 regularization strength.
	Lambda float64
	// Epochs is the number of passes over the training set.
	Epochs int
	// Seed drives the sampling order.
	Seed int64
}

// DefaultConfig returns a reasonable configuration for feature-window
// classification.
func DefaultConfig() Config {
	return Config{Lambda: 1e-4, Epochs: 20, Seed: 1}
}

// SVM is a trained linear classifier with z-score input normalization.
type SVM struct {
	w     []float64
	bias  float64
	mean  []float64
	scale []float64
}

// Train fits the SVM on X and binary labels y.
func Train(X [][]float64, y []bool, cfg Config) (*SVM, error) {
	if len(X) == 0 {
		return nil, errors.New("svm: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("svm: %d samples but %d labels", len(X), len(y))
	}
	if cfg.Lambda <= 0 {
		return nil, fmt.Errorf("svm: invalid lambda %g", cfg.Lambda)
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("svm: invalid epochs %d", cfg.Epochs)
	}
	nf := len(X[0])
	for i, r := range X {
		if len(r) != nf {
			return nil, fmt.Errorf("svm: ragged row %d", i)
		}
	}
	m := &SVM{
		w:     make([]float64, nf),
		mean:  make([]float64, nf),
		scale: make([]float64, nf),
	}
	// Standardize features for SGD conditioning.
	col := make([]float64, len(X))
	for f := 0; f < nf; f++ {
		for i := range X {
			col[i] = X[i][f]
		}
		m.mean[f] = stats.Mean(col)
		sd := stats.StdDev(col)
		if sd == 0 {
			sd = 1
		}
		m.scale[f] = sd
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := 0
	buf := make([]float64, nf)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for range X {
			t++
			i := rng.Intn(len(X))
			m.standardize(X[i], buf)
			label := -1.0
			if y[i] {
				label = 1.0
			}
			eta := 1 / (cfg.Lambda * float64(t))
			margin := label * (dot(m.w, buf) + m.bias)
			// w <- (1 - eta*lambda) w [+ eta*label*x when margin < 1]
			decay := 1 - eta*cfg.Lambda
			for f := range m.w {
				m.w[f] *= decay
			}
			if margin < 1 {
				for f := range m.w {
					m.w[f] += eta * label * buf[f]
				}
				m.bias += eta * label
			}
		}
	}
	return m, nil
}

func (m *SVM) standardize(x, out []float64) {
	for f := range out {
		out[f] = (x[f] - m.mean[f]) / m.scale[f]
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Score returns the signed decision value for x (positive = seizure).
func (m *SVM) Score(x []float64) float64 {
	buf := make([]float64, len(m.w))
	m.standardize(x, buf)
	return dot(m.w, buf) + m.bias
}

// Predict returns the class of x.
func (m *SVM) Predict(x []float64) bool { return m.Score(x) >= 0 }

// Margin returns 2/‖w‖, the geometric margin width (infinite for a zero
// weight vector).
func (m *SVM) Margin() float64 {
	n := math.Sqrt(dot(m.w, m.w))
	if n == 0 {
		return math.Inf(1)
	}
	return 2 / n
}
