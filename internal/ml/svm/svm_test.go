package svm

import (
	"math"
	"math/rand"
	"testing"
)

func blobs(n int, sep float64, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		y[i] = i%2 == 0
		base := 0.0
		if y[i] {
			base = sep
		}
		X[i] = []float64{base + rng.NormFloat64(), base + rng.NormFloat64()}
	}
	return X, y
}

func accuracy(m *SVM, X [][]float64, y []bool) float64 {
	ok := 0
	for i := range X {
		if m.Predict(X[i]) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(y))
}

func TestSeparableAccuracy(t *testing.T) {
	X, y := blobs(600, 5, 1)
	m, err := Train(X[:400], y[:400], DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, X[400:], y[400:]); acc < 0.95 {
		t.Errorf("held-out accuracy %g", acc)
	}
}

func TestScoreSign(t *testing.T) {
	X, y := blobs(400, 5, 2)
	m, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Score([]float64{5, 5}) <= m.Score([]float64{0, 0}) {
		t.Error("positive-region score should exceed negative-region score")
	}
}

func TestMargin(t *testing.T) {
	X, y := blobs(400, 6, 3)
	m, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mar := m.Margin()
	if math.IsNaN(mar) || mar <= 0 {
		t.Errorf("margin = %g", mar)
	}
	zero := &SVM{w: []float64{0, 0}}
	if !math.IsInf(zero.Margin(), 1) {
		t.Error("zero weights should give infinite margin")
	}
}

func TestScaleRobustness(t *testing.T) {
	// Internal standardization should handle widely-scaled features.
	X, y := blobs(400, 5, 4)
	for i := range X {
		X[i][0] *= 1e6
		X[i][1] *= 1e-3
	}
	m, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, X, y); acc < 0.9 {
		t.Errorf("accuracy with scaled features %g", acc)
	}
}

func TestDeterminism(t *testing.T) {
	X, y := blobs(200, 4, 5)
	a, _ := Train(X, y, DefaultConfig())
	b, _ := Train(X, y, DefaultConfig())
	for i := range a.w {
		if a.w[i] != b.w[i] {
			t.Fatal("same seed must give identical weights")
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, nil, DefaultConfig()); err == nil {
		t.Error("empty set should fail")
	}
	X, y := blobs(10, 2, 6)
	if _, err := Train(X, y[:4], DefaultConfig()); err == nil {
		t.Error("label mismatch should fail")
	}
	bad := DefaultConfig()
	bad.Lambda = 0
	if _, err := Train(X, y, bad); err == nil {
		t.Error("zero lambda should fail")
	}
	bad = DefaultConfig()
	bad.Epochs = 0
	if _, err := Train(X, y, bad); err == nil {
		t.Error("zero epochs should fail")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []bool{true, false}, DefaultConfig()); err == nil {
		t.Error("ragged matrix should fail")
	}
}

func TestConstantFeatureNoNaN(t *testing.T) {
	X, y := blobs(100, 4, 7)
	for i := range X {
		X[i] = append(X[i], 3.0) // constant column
	}
	m, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := m.Score(X[0])
	if math.IsNaN(s) || math.IsInf(s, 0) {
		t.Errorf("score = %g with constant feature", s)
	}
}
