// Package knn implements a k-nearest-neighbour classifier baseline with
// z-scored Euclidean distance.
package knn

import (
	"errors"
	"fmt"
	"sort"

	"selflearn/internal/stats"
)

// KNN is a lazy k-nearest-neighbour classifier.
type KNN struct {
	k     int
	X     [][]float64
	y     []bool
	mean  []float64
	scale []float64
}

// Train stores the (standardized) training set.
func Train(X [][]float64, y []bool, k int) (*KNN, error) {
	if len(X) == 0 {
		return nil, errors.New("knn: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("knn: %d samples but %d labels", len(X), len(y))
	}
	if k < 1 || k > len(X) {
		return nil, fmt.Errorf("knn: invalid k %d for %d samples", k, len(X))
	}
	nf := len(X[0])
	m := &KNN{k: k, y: append([]bool(nil), y...), mean: make([]float64, nf), scale: make([]float64, nf)}
	col := make([]float64, len(X))
	for f := 0; f < nf; f++ {
		for i := range X {
			col[i] = X[i][f]
		}
		m.mean[f] = stats.Mean(col)
		sd := stats.StdDev(col)
		if sd == 0 {
			sd = 1
		}
		m.scale[f] = sd
	}
	for _, r := range X {
		if len(r) != nf {
			return nil, errors.New("knn: ragged training matrix")
		}
		z := make([]float64, nf)
		for f := range z {
			z[f] = (r[f] - m.mean[f]) / m.scale[f]
		}
		m.X = append(m.X, z)
	}
	return m, nil
}

// Prob returns the positive fraction among the k nearest neighbours.
func (m *KNN) Prob(x []float64) float64 {
	z := make([]float64, len(m.mean))
	for f := range z {
		z[f] = (x[f] - m.mean[f]) / m.scale[f]
	}
	type nd struct {
		d   float64
		pos bool
	}
	ds := make([]nd, len(m.X))
	for i, t := range m.X {
		var s float64
		for f := range t {
			d := t[f] - z[f]
			s += d * d
		}
		ds[i] = nd{s, m.y[i]}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	pos := 0
	for _, n := range ds[:m.k] {
		if n.pos {
			pos++
		}
	}
	return float64(pos) / float64(m.k)
}

// Predict returns the majority class among the k nearest neighbours.
func (m *KNN) Predict(x []float64) bool { return m.Prob(x) >= 0.5 }
