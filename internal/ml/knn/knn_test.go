package knn

import (
	"math/rand"
	"testing"
)

func blobs(n int, sep float64, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		y[i] = i%2 == 0
		base := 0.0
		if y[i] {
			base = sep
		}
		X[i] = []float64{base + rng.NormFloat64(), base + rng.NormFloat64()}
	}
	return X, y
}

func TestAccuracy(t *testing.T) {
	X, y := blobs(400, 4, 1)
	m, err := Train(X[:300], y[:300], 5)
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i := 300; i < 400; i++ {
		if m.Predict(X[i]) == y[i] {
			ok++
		}
	}
	if ok < 95 {
		t.Errorf("held-out accuracy %d/100", ok)
	}
}

func TestK1MemorizesTraining(t *testing.T) {
	X, y := blobs(100, 2, 2)
	m, err := Train(X, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if m.Predict(X[i]) != y[i] {
			t.Fatal("1-NN must memorize its training points")
		}
	}
}

func TestProbRange(t *testing.T) {
	X, y := blobs(200, 3, 3)
	m, err := Train(X, y, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Prob([]float64{1.5, 1.5})
	if p < 0 || p > 1 {
		t.Errorf("Prob = %g", p)
	}
	if m.Prob([]float64{3, 3}) <= m.Prob([]float64{0, 0}) {
		t.Error("Prob should be higher in the positive region")
	}
}

func TestScaleInvariance(t *testing.T) {
	X, y := blobs(300, 4, 4)
	scaled := make([][]float64, len(X))
	for i := range X {
		scaled[i] = []float64{X[i][0] * 1e5, X[i][1] * 1e-4}
	}
	a, err := Train(X, y, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(scaled, y, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if a.Predict(X[i]) != b.Predict(scaled[i]) {
			t.Fatal("z-scored kNN should be scale invariant")
		}
	}
}

func TestErrors(t *testing.T) {
	X, y := blobs(10, 2, 5)
	if _, err := Train(nil, nil, 3); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := Train(X, y[:5], 3); err == nil {
		t.Error("label mismatch should fail")
	}
	if _, err := Train(X, y, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Train(X, y, 11); err == nil {
		t.Error("k>n should fail")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []bool{true, false}, 1); err == nil {
		t.Error("ragged matrix should fail")
	}
}
