package signal

import (
	"fmt"
	"math"
)

// QualityConfig sets the thresholds for signal-quality assessment.
type QualityConfig struct {
	// FlatlineStd is the per-segment standard deviation (µV) below
	// which a one-second segment counts as flatlined (electrode off /
	// lead break).
	FlatlineStd float64
	// ClipLevel is the absolute amplitude (µV) at or above which a
	// sample counts as clipped/saturated at the front end.
	ClipLevel float64
	// MaxFlatline and MaxClipped are the acceptable fractions of
	// flatlined segments and clipped samples.
	MaxFlatline float64
	MaxClipped  float64
}

// DefaultQuality returns thresholds appropriate for a 24-bit EEG front
// end with µV-scale signals.
func DefaultQuality() QualityConfig {
	return QualityConfig{FlatlineStd: 0.5, ClipLevel: 3000, MaxFlatline: 0.1, MaxClipped: 0.02}
}

// Validate checks the configuration.
func (c QualityConfig) Validate() error {
	if c.FlatlineStd < 0 || c.ClipLevel <= 0 {
		return fmt.Errorf("signal: invalid quality thresholds %+v", c)
	}
	if c.MaxFlatline < 0 || c.MaxFlatline > 1 || c.MaxClipped < 0 || c.MaxClipped > 1 {
		return fmt.Errorf("signal: invalid quality fractions %+v", c)
	}
	return nil
}

// QualityReport summarizes the usability of one channel.
type QualityReport struct {
	// FlatlineFraction is the fraction of one-second segments whose
	// standard deviation falls below the flatline threshold.
	FlatlineFraction float64
	// ClippedFraction is the fraction of samples at or beyond the clip
	// level.
	ClippedFraction float64
	// RMS is the overall root mean square in µV.
	RMS float64
	// OK reports whether the channel passes the configured thresholds.
	OK bool
}

// AssessChannel computes a quality report for one channel at rate fs.
func AssessChannel(xs []float64, fs float64, cfg QualityConfig) (QualityReport, error) {
	if err := cfg.Validate(); err != nil {
		return QualityReport{}, err
	}
	if len(xs) == 0 {
		return QualityReport{}, fmt.Errorf("signal: empty channel")
	}
	if fs <= 0 {
		return QualityReport{}, fmt.Errorf("signal: invalid sampling rate %g", fs)
	}
	seg := int(fs)
	if seg < 2 {
		// A segment under two samples has no variance, so flatline
		// segmentation would reject any signal; at such degenerate rates
		// assess the whole input as one segment instead.
		seg = len(xs)
	}
	var flat, segments int
	for start := 0; start+seg <= len(xs); start += seg {
		segments++
		if segStd(xs[start:start+seg]) < cfg.FlatlineStd {
			flat++
		}
	}
	if segments == 0 {
		segments = 1
		if segStd(xs) < cfg.FlatlineStd {
			flat = 1
		}
	}
	var clipped int
	var ss float64
	for _, v := range xs {
		if math.Abs(v) >= cfg.ClipLevel {
			clipped++
		}
		ss += v * v
	}
	r := QualityReport{
		FlatlineFraction: float64(flat) / float64(segments),
		ClippedFraction:  float64(clipped) / float64(len(xs)),
		RMS:              math.Sqrt(ss / float64(len(xs))),
	}
	r.OK = r.FlatlineFraction <= cfg.MaxFlatline && r.ClippedFraction <= cfg.MaxClipped
	return r, nil
}

func segStd(xs []float64) float64 {
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// AssessRecording runs AssessChannel over every channel and returns the
// per-channel reports; the recording passes only if every channel does.
func AssessRecording(rec *Recording, cfg QualityConfig) (map[string]QualityReport, bool, error) {
	if err := rec.Validate(); err != nil {
		return nil, false, err
	}
	out := make(map[string]QualityReport, len(rec.Channels))
	ok := true
	for i, name := range rec.Channels {
		r, err := AssessChannel(rec.Data[i], rec.SampleRate, cfg)
		if err != nil {
			return nil, false, err
		}
		out[name] = r
		ok = ok && r.OK
	}
	return out, ok, nil
}
