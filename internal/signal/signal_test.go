package signal

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func testRecording(nSeconds int) *Recording {
	n := nSeconds * 256
	r := &Recording{
		PatientID:  "chb01",
		RecordID:   "rec1",
		SampleRate: 256,
		Channels:   []string{ChannelF7T3, ChannelF8T4},
		Data:       [][]float64{make([]float64, n), make([]float64, n)},
	}
	for i := 0; i < n; i++ {
		r.Data[0][i] = math.Sin(float64(i) / 10)
		r.Data[1][i] = math.Cos(float64(i) / 10)
	}
	return r
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{10, 40}
	if iv.Duration() != 30 {
		t.Errorf("Duration = %g", iv.Duration())
	}
	if !iv.Contains(10) || iv.Contains(40) || iv.Contains(9.99) {
		t.Error("Contains should be half-open [Start, End)")
	}
	if !iv.Valid() {
		t.Error("should be valid")
	}
	if (Interval{5, 5}).Valid() || (Interval{-1, 3}).Valid() {
		t.Error("degenerate/negative intervals should be invalid")
	}
}

func TestIntervalOverlap(t *testing.T) {
	a := Interval{0, 10}
	cases := []struct {
		b    Interval
		want float64
	}{
		{Interval{5, 15}, 5},
		{Interval{10, 20}, 0},
		{Interval{-5, 0}, 0},
		{Interval{2, 8}, 6},
		{Interval{-5, 25}, 10},
	}
	for _, c := range cases {
		if got := a.Overlap(c.b); got != c.want {
			t.Errorf("Overlap(%v) = %g, want %g", c.b, got, c.want)
		}
		if got := c.b.Overlap(a); got != c.want {
			t.Errorf("Overlap should be symmetric for %v", c.b)
		}
	}
}

func TestMergeIntervals(t *testing.T) {
	ivs := []Interval{{10, 20}, {15, 30}, {40, 50}, {30, 35}, {60, 70}}
	merged := MergeIntervals(ivs)
	want := []Interval{{10, 35}, {40, 50}, {60, 70}}
	if len(merged) != len(want) {
		t.Fatalf("merged = %v, want %v", merged, want)
	}
	for i := range want {
		if merged[i] != want[i] {
			t.Errorf("merged[%d] = %v, want %v", i, merged[i], want[i])
		}
	}
	if MergeIntervals(nil) != nil {
		t.Error("empty merge should be nil")
	}
	// Touching intervals fuse.
	touch := MergeIntervals([]Interval{{0, 10}, {10, 20}})
	if len(touch) != 1 || touch[0] != (Interval{0, 20}) {
		t.Errorf("touching intervals should fuse: %v", touch)
	}
	// Input not mutated.
	if ivs[0] != (Interval{10, 20}) {
		t.Error("MergeIntervals mutated its input")
	}
}

func TestTotalDuration(t *testing.T) {
	ivs := []Interval{{0, 10}, {5, 15}, {20, 25}}
	if got := TotalDuration(ivs); got != 20 {
		t.Errorf("TotalDuration = %g, want 20 (overlap merged)", got)
	}
	if TotalDuration(nil) != 0 {
		t.Error("empty burden should be 0")
	}
}

func TestRecordingValidate(t *testing.T) {
	r := testRecording(60)
	r.Seizures = []Interval{{10, 40}}
	if err := r.Validate(); err != nil {
		t.Fatalf("valid recording rejected: %v", err)
	}
	bad := testRecording(60)
	bad.SampleRate = 0
	if bad.Validate() == nil {
		t.Error("zero sample rate should fail")
	}
	bad = testRecording(60)
	bad.Data[1] = bad.Data[1][:100]
	if bad.Validate() == nil {
		t.Error("ragged channels should fail")
	}
	bad = testRecording(60)
	bad.Channels = bad.Channels[:1]
	if bad.Validate() == nil {
		t.Error("name/data mismatch should fail")
	}
	bad = testRecording(60)
	bad.Seizures = []Interval{{50, 70}}
	if bad.Validate() == nil {
		t.Error("seizure beyond end should fail")
	}
	bad = testRecording(60)
	bad.Seizures = []Interval{{40, 10}}
	if bad.Validate() == nil {
		t.Error("inverted seizure should fail")
	}
	empty := &Recording{SampleRate: 256}
	if empty.Validate() == nil {
		t.Error("no channels should fail")
	}
}

func TestRecordingAccessors(t *testing.T) {
	r := testRecording(30)
	if r.Samples() != 30*256 {
		t.Errorf("Samples = %d", r.Samples())
	}
	if r.Duration() != 30 {
		t.Errorf("Duration = %g", r.Duration())
	}
	if r.Channel(ChannelF8T4) == nil || r.Channel("nope") != nil {
		t.Error("Channel lookup broken")
	}
	var emptyR Recording
	if emptyR.Samples() != 0 || emptyR.Duration() != 0 {
		t.Error("empty recording accessors should be 0")
	}
}

func TestSlice(t *testing.T) {
	r := testRecording(100)
	r.Seizures = []Interval{{30, 50}}
	s, err := r.Slice(20, 60)
	if err != nil {
		t.Fatal(err)
	}
	if s.Duration() != 40 {
		t.Errorf("slice duration = %g, want 40", s.Duration())
	}
	if len(s.Seizures) != 1 || s.Seizures[0] != (Interval{10, 30}) {
		t.Errorf("seizure not re-based: %v", s.Seizures)
	}
	// Data is shared.
	if &s.Data[0][0] != &r.Data[0][20*256] {
		t.Error("slice should share backing data")
	}
}

func TestSliceClipsPartialSeizure(t *testing.T) {
	r := testRecording(100)
	r.Seizures = []Interval{{30, 50}}
	s, err := r.Slice(40, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Seizures) != 1 || s.Seizures[0] != (Interval{0, 10}) {
		t.Errorf("clipped seizure = %v, want [0, 10)", s.Seizures)
	}
	s2, err := r.Slice(60, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Seizures) != 0 {
		t.Error("seizure outside slice should be dropped")
	}
}

func TestSliceErrors(t *testing.T) {
	r := testRecording(10)
	for _, c := range []struct{ a, b float64 }{{-1, 5}, {5, 5}, {8, 12}, {3, 2}} {
		if _, err := r.Slice(c.a, c.b); err == nil {
			t.Errorf("Slice(%g, %g) should fail", c.a, c.b)
		}
	}
}

func TestIsSeizureAt(t *testing.T) {
	r := testRecording(100)
	r.Seizures = []Interval{{30, 50}, {70, 80}}
	cases := map[float64]bool{0: false, 30: true, 49.9: true, 50: false, 75: true, 99: false}
	for tt, want := range cases {
		if got := r.IsSeizureAt(tt); got != want {
			t.Errorf("IsSeizureAt(%g) = %v, want %v", tt, got, want)
		}
	}
}

func TestDefaultWindow(t *testing.T) {
	w := DefaultWindow()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Hop() != time.Second {
		t.Errorf("hop = %v, want 1 s (75%% overlap of 4 s)", w.Hop())
	}
	if w.SamplesPerWindow(256) != 1024 {
		t.Errorf("window samples = %d, want 1024", w.SamplesPerWindow(256))
	}
	if w.HopSamples(256) != 256 {
		t.Errorf("hop samples = %d, want 256", w.HopSamples(256))
	}
}

func TestWindowSpecValidate(t *testing.T) {
	if (WindowSpec{Length: 0, Overlap: 0.5}).Validate() == nil {
		t.Error("zero length should fail")
	}
	if (WindowSpec{Length: time.Second, Overlap: 1}).Validate() == nil {
		t.Error("overlap 1 should fail")
	}
	if (WindowSpec{Length: time.Second, Overlap: -0.1}).Validate() == nil {
		t.Error("negative overlap should fail")
	}
}

func TestNumWindows(t *testing.T) {
	w := DefaultWindow()
	// One hour at 256 Hz: (3600-4)/1 + 1 = 3597 windows.
	if got := w.NumWindows(3600*256, 256); got != 3597 {
		t.Errorf("NumWindows(1h) = %d, want 3597", got)
	}
	if w.NumWindows(1000, 256) != 0 {
		t.Error("data shorter than a window should give 0")
	}
	if w.NumWindows(1024, 256) != 1 {
		t.Error("exactly one window should fit")
	}
}

func TestWindowExtraction(t *testing.T) {
	w := DefaultWindow()
	r := testRecording(10)
	data := r.Data[0]
	win, err := w.Window(data, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(win) != 1024 || &win[0] != &data[0] {
		t.Error("window 0 should alias the first 1024 samples")
	}
	win6, err := w.Window(data, 6, 256)
	if err != nil {
		t.Fatal(err)
	}
	if &win6[0] != &data[6*256] {
		t.Error("window 6 should start at sample 1536")
	}
	if _, err := w.Window(data, 7, 256); err == nil {
		t.Error("window past the end should fail")
	}
	if _, err := w.Window(data, -1, 256); err == nil {
		t.Error("negative index should fail")
	}
	if got := w.WindowStart(6, 256); got != 6 {
		t.Errorf("WindowStart(6) = %g, want 6 s", got)
	}
}

func TestWindowCountConsistencyProperty(t *testing.T) {
	f := func(secs uint8) bool {
		n := int(secs)*256 + 1024
		w := DefaultWindow()
		k := w.NumWindows(n, 256)
		if k <= 0 {
			return false
		}
		// Last window must fit; one more must not.
		data := make([]float64, n)
		if _, err := w.Window(data, k-1, 256); err != nil {
			return false
		}
		if _, err := w.Window(data, k, 256); err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResampleIdentity(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	out, err := Resample(xs, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if out[i] != xs[i] {
			t.Fatal("identity resample mismatch")
		}
	}
	out[0] = 99
	if xs[0] == 99 {
		t.Error("identity resample must copy")
	}
}

func TestResampleDownUp(t *testing.T) {
	// A slow sine survives 256 -> 128 -> 256 resampling.
	n := 1024
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * 2 * float64(i) / 256)
	}
	down, err := Resample(xs, 256, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(down) != n/2 {
		t.Errorf("downsampled length = %d, want %d", len(down), n/2)
	}
	up, err := Resample(down, 128, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < len(up)-10 && i < len(xs)-10; i++ {
		if math.Abs(up[i]-xs[i]) > 0.02 {
			t.Fatalf("round-trip error %g at %d", up[i]-xs[i], i)
		}
	}
}

func TestResampleErrors(t *testing.T) {
	if _, err := Resample([]float64{1}, 0, 256); err == nil {
		t.Error("fsIn=0 should fail")
	}
	if _, err := Resample([]float64{1}, 256, -1); err == nil {
		t.Error("fsOut<0 should fail")
	}
	out, err := Resample(nil, 256, 128)
	if err != nil || out != nil {
		t.Error("empty input should return nil, nil")
	}
}
