package signal

import (
	"math"
	"math/rand"
	"testing"
)

func noisy(n int, amp float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = amp * rng.NormFloat64()
	}
	return xs
}

func TestAssessChannelGoodSignal(t *testing.T) {
	xs := noisy(60*256, 15, 1)
	r, err := AssessChannel(xs, 256, DefaultQuality())
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Errorf("healthy EEG flagged bad: %+v", r)
	}
	if r.FlatlineFraction != 0 || r.ClippedFraction != 0 {
		t.Errorf("clean signal reports %+v", r)
	}
	if math.Abs(r.RMS-15) > 2 {
		t.Errorf("RMS = %g, want ≈15", r.RMS)
	}
}

func TestAssessChannelFlatline(t *testing.T) {
	xs := noisy(60*256, 15, 2)
	// Electrode falls off for 20 of 60 seconds.
	for i := 20 * 256; i < 40*256; i++ {
		xs[i] = 0.01
	}
	r, err := AssessChannel(xs, 256, DefaultQuality())
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Error("33% flatline should fail")
	}
	if r.FlatlineFraction < 0.3 || r.FlatlineFraction > 0.4 {
		t.Errorf("flatline fraction %g, want ≈1/3", r.FlatlineFraction)
	}
}

func TestAssessChannelClipping(t *testing.T) {
	xs := noisy(30*256, 15, 3)
	for i := 0; i < len(xs); i += 10 { // 10% of samples pinned at rail
		xs[i] = 3500
	}
	r, err := AssessChannel(xs, 256, DefaultQuality())
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Error("10% clipping should fail")
	}
	if math.Abs(r.ClippedFraction-0.1) > 0.01 {
		t.Errorf("clipped fraction %g, want ≈0.1", r.ClippedFraction)
	}
}

func TestAssessChannelErrors(t *testing.T) {
	if _, err := AssessChannel(nil, 256, DefaultQuality()); err == nil {
		t.Error("empty channel should fail")
	}
	if _, err := AssessChannel([]float64{1}, 0, DefaultQuality()); err == nil {
		t.Error("fs=0 should fail")
	}
	bad := DefaultQuality()
	bad.ClipLevel = 0
	if _, err := AssessChannel([]float64{1}, 256, bad); err == nil {
		t.Error("bad config should fail")
	}
	bad = DefaultQuality()
	bad.MaxFlatline = 2
	if bad.Validate() == nil {
		t.Error("fraction > 1 should fail")
	}
}

func TestAssessChannelShorterThanSegment(t *testing.T) {
	// Sub-second input still produces a report.
	r, err := AssessChannel(noisy(100, 10, 4), 256, DefaultQuality())
	if err != nil {
		t.Fatal(err)
	}
	if r.FlatlineFraction != 0 {
		t.Errorf("noisy sub-second input flatline = %g", r.FlatlineFraction)
	}
}

// TestAssessChannelEdgeCases pins behavior on the degenerate inputs an
// adversarial stream can produce: fully dead or saturated channels,
// inputs at or below one segment, and fractional sampling rates. Every
// report must stay finite — these values feed stats counters and JSON
// rows.
func TestAssessChannelEdgeCases(t *testing.T) {
	fs := 256.0
	flat := make([]float64, 10*int(fs)) // all zeros: total flatline
	dc := make([]float64, 10*int(fs))   // flat at a DC offset: still dead
	for i := range dc {
		dc[i] = 500
	}
	clipped := make([]float64, 10*int(fs)) // every sample at a rail
	for i := range clipped {
		clipped[i] = 4000
		if i%2 == 0 {
			clipped[i] = -4000
		}
	}
	cases := []struct {
		name               string
		xs                 []float64
		rate               float64
		wantOK             bool
		wantFlat, wantClip float64
	}{
		{"all-flatline", flat, fs, false, 1, 0},
		{"dc-flatline", dc, fs, false, 1, 0},
		// Alternating rails have huge variance: clipped, not flatlined.
		{"all-clipped", clipped, fs, false, 0, 1},
		{"single-segment", noisy(int(fs), 10, 10), fs, true, 0, 0},
		// Below one segment the fallback assesses the whole input.
		{"sub-segment", noisy(int(fs)-1, 10, 11), fs, true, 0, 0},
		// A single sample is a constant, and a constant is a flatline.
		{"one-sample", []float64{42}, fs, false, 1, 0},
		// Sub-1 Hz rates clamp the segment to one sample.
		{"fractional-rate", noisy(10, 10, 12), 0.5, true, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := AssessChannel(tc.xs, tc.rate, DefaultQuality())
			if err != nil {
				t.Fatal(err)
			}
			for name, v := range map[string]float64{
				"flatline": r.FlatlineFraction, "clipped": r.ClippedFraction, "rms": r.RMS,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %g, want finite", name, v)
				}
			}
			if r.OK != tc.wantOK {
				t.Errorf("OK = %v, want %v (%+v)", r.OK, tc.wantOK, r)
			}
			if r.FlatlineFraction != tc.wantFlat {
				t.Errorf("flatline fraction = %g, want %g", r.FlatlineFraction, tc.wantFlat)
			}
			if r.ClippedFraction != tc.wantClip {
				t.Errorf("clipped fraction = %g, want %g", r.ClippedFraction, tc.wantClip)
			}
		})
	}
	// Zero-length input is an error, never a garbage report.
	if _, err := AssessChannel([]float64{}, fs, DefaultQuality()); err == nil {
		t.Error("zero-length channel should fail")
	}
}

func TestAssessRecording(t *testing.T) {
	rec := testRecording(30)
	// Scale the sinusoids to plausible EEG amplitude.
	for c := range rec.Data {
		for i := range rec.Data[c] {
			rec.Data[c][i] *= 20
		}
	}
	reports, ok, err := AssessRecording(rec, DefaultQuality())
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(reports) != 2 {
		t.Errorf("healthy recording: ok=%v reports=%d", ok, len(reports))
	}
	// Kill one channel.
	for i := range rec.Data[1] {
		rec.Data[1][i] = 0
	}
	_, ok, err = AssessRecording(rec, DefaultQuality())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("dead channel should fail the recording")
	}
	bad := &Recording{SampleRate: 256}
	if _, _, err := AssessRecording(bad, DefaultQuality()); err == nil {
		t.Error("invalid recording should fail")
	}
}
