package signal

import (
	"math"
	"math/rand"
	"testing"
)

func noisy(n int, amp float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = amp * rng.NormFloat64()
	}
	return xs
}

func TestAssessChannelGoodSignal(t *testing.T) {
	xs := noisy(60*256, 15, 1)
	r, err := AssessChannel(xs, 256, DefaultQuality())
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Errorf("healthy EEG flagged bad: %+v", r)
	}
	if r.FlatlineFraction != 0 || r.ClippedFraction != 0 {
		t.Errorf("clean signal reports %+v", r)
	}
	if math.Abs(r.RMS-15) > 2 {
		t.Errorf("RMS = %g, want ≈15", r.RMS)
	}
}

func TestAssessChannelFlatline(t *testing.T) {
	xs := noisy(60*256, 15, 2)
	// Electrode falls off for 20 of 60 seconds.
	for i := 20 * 256; i < 40*256; i++ {
		xs[i] = 0.01
	}
	r, err := AssessChannel(xs, 256, DefaultQuality())
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Error("33% flatline should fail")
	}
	if r.FlatlineFraction < 0.3 || r.FlatlineFraction > 0.4 {
		t.Errorf("flatline fraction %g, want ≈1/3", r.FlatlineFraction)
	}
}

func TestAssessChannelClipping(t *testing.T) {
	xs := noisy(30*256, 15, 3)
	for i := 0; i < len(xs); i += 10 { // 10% of samples pinned at rail
		xs[i] = 3500
	}
	r, err := AssessChannel(xs, 256, DefaultQuality())
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Error("10% clipping should fail")
	}
	if math.Abs(r.ClippedFraction-0.1) > 0.01 {
		t.Errorf("clipped fraction %g, want ≈0.1", r.ClippedFraction)
	}
}

func TestAssessChannelErrors(t *testing.T) {
	if _, err := AssessChannel(nil, 256, DefaultQuality()); err == nil {
		t.Error("empty channel should fail")
	}
	if _, err := AssessChannel([]float64{1}, 0, DefaultQuality()); err == nil {
		t.Error("fs=0 should fail")
	}
	bad := DefaultQuality()
	bad.ClipLevel = 0
	if _, err := AssessChannel([]float64{1}, 256, bad); err == nil {
		t.Error("bad config should fail")
	}
	bad = DefaultQuality()
	bad.MaxFlatline = 2
	if bad.Validate() == nil {
		t.Error("fraction > 1 should fail")
	}
}

func TestAssessChannelShorterThanSegment(t *testing.T) {
	// Sub-second input still produces a report.
	r, err := AssessChannel(noisy(100, 10, 4), 256, DefaultQuality())
	if err != nil {
		t.Fatal(err)
	}
	if r.FlatlineFraction != 0 {
		t.Errorf("noisy sub-second input flatline = %g", r.FlatlineFraction)
	}
}

func TestAssessRecording(t *testing.T) {
	rec := testRecording(30)
	// Scale the sinusoids to plausible EEG amplitude.
	for c := range rec.Data {
		for i := range rec.Data[c] {
			rec.Data[c][i] *= 20
		}
	}
	reports, ok, err := AssessRecording(rec, DefaultQuality())
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(reports) != 2 {
		t.Errorf("healthy recording: ok=%v reports=%d", ok, len(reports))
	}
	// Kill one channel.
	for i := range rec.Data[1] {
		rec.Data[1][i] = 0
	}
	_, ok, err = AssessRecording(rec, DefaultQuality())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("dead channel should fail the recording")
	}
	bad := &Recording{SampleRate: 256}
	if _, _, err := AssessRecording(bad, DefaultQuality()); err == nil {
		t.Error("invalid recording should fail")
	}
}
