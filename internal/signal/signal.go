// Package signal defines the multichannel EEG recording model shared by
// every stage of the pipeline: acquisition (synthetic or EDF), feature
// extraction windowing (4 s windows, 75 % overlap), annotation with
// seizure intervals, and slicing into evaluation samples.
package signal

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Standard electrode-pair channel names used by the target wearables
// (glasses / behind-the-ear platforms) and by the paper.
const (
	ChannelF7T3 = "F7T3"
	ChannelF8T4 = "F8T4"
)

// DefaultSampleRate is the CHB-MIT sampling frequency in Hz.
const DefaultSampleRate = 256.0

// Interval is a half-open time range [Start, End) expressed in seconds
// from the beginning of a recording.
type Interval struct {
	Start float64 // seconds
	End   float64 // seconds
}

// Duration returns the interval length in seconds.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// Contains reports whether t (seconds) lies inside the interval.
func (iv Interval) Contains(t float64) bool { return t >= iv.Start && t < iv.End }

// Overlap returns the length in seconds of the overlap between iv and
// other (0 when disjoint).
func (iv Interval) Overlap(other Interval) float64 {
	lo := math.Max(iv.Start, other.Start)
	hi := math.Min(iv.End, other.End)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Valid reports whether the interval is well-formed.
func (iv Interval) Valid() bool { return iv.End > iv.Start && iv.Start >= 0 }

// MergeIntervals unions overlapping or touching intervals, returning a
// sorted minimal set. Annotation tooling uses it to normalize seizure
// lists coming from multiple readers.
func MergeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]Interval(nil), ivs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Start < sorted[b].Start })
	out := []Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// TotalDuration sums the durations of the (merged) intervals — the
// patient's total seizure burden in a recording.
func TotalDuration(ivs []Interval) float64 {
	var total float64
	for _, iv := range MergeIntervals(ivs) {
		total += iv.Duration()
	}
	return total
}

// Recording is a multichannel EEG recording with optional seizure
// annotations (the ground truth in evaluation).
type Recording struct {
	// PatientID identifies the subject the recording belongs to.
	PatientID string
	// RecordID identifies the recording within the patient.
	RecordID string
	// SampleRate is the sampling frequency in Hz, identical across
	// channels.
	SampleRate float64
	// Channels holds the channel names in data order.
	Channels []string
	// Data[c][i] is sample i of channel c, in microvolts.
	Data [][]float64
	// Seizures are the annotated seizure intervals (ground truth).
	Seizures []Interval
}

// Validate checks structural invariants: at least one channel, equal
// channel lengths, positive sampling rate, well-formed in-range seizure
// annotations.
func (r *Recording) Validate() error {
	if r.SampleRate <= 0 {
		return fmt.Errorf("signal: invalid sample rate %g", r.SampleRate)
	}
	if len(r.Channels) == 0 || len(r.Data) == 0 {
		return errors.New("signal: recording has no channels")
	}
	if len(r.Channels) != len(r.Data) {
		return fmt.Errorf("signal: %d channel names but %d data channels", len(r.Channels), len(r.Data))
	}
	n := len(r.Data[0])
	for c, d := range r.Data {
		if len(d) != n {
			return fmt.Errorf("signal: channel %q has %d samples, want %d", r.Channels[c], len(d), n)
		}
	}
	dur := r.Duration()
	for i, s := range r.Seizures {
		if !s.Valid() {
			return fmt.Errorf("signal: seizure %d has invalid interval [%g, %g)", i, s.Start, s.End)
		}
		if s.End > dur+1e-9 {
			return fmt.Errorf("signal: seizure %d ends at %g s beyond recording end %g s", i, s.End, dur)
		}
	}
	return nil
}

// Samples returns the per-channel sample count (0 for an empty
// recording).
func (r *Recording) Samples() int {
	if len(r.Data) == 0 {
		return 0
	}
	return len(r.Data[0])
}

// Duration returns the recording length in seconds.
func (r *Recording) Duration() float64 {
	if r.SampleRate <= 0 {
		return 0
	}
	return float64(r.Samples()) / r.SampleRate
}

// Channel returns the data of the named channel, or nil when absent.
func (r *Recording) Channel(name string) []float64 {
	for i, c := range r.Channels {
		if c == name {
			return r.Data[i]
		}
	}
	return nil
}

// Slice returns a new Recording covering [start, end) seconds, with
// seizure annotations clipped and re-based. The underlying sample data is
// shared, not copied.
func (r *Recording) Slice(start, end float64) (*Recording, error) {
	if start < 0 || end <= start || end > r.Duration()+1e-9 {
		return nil, fmt.Errorf("signal: slice [%g, %g) outside recording of %g s", start, end, r.Duration())
	}
	i0 := int(math.Round(start * r.SampleRate))
	i1 := int(math.Round(end * r.SampleRate))
	if i1 > r.Samples() {
		i1 = r.Samples()
	}
	out := &Recording{
		PatientID:  r.PatientID,
		RecordID:   fmt.Sprintf("%s[%g:%g]", r.RecordID, start, end),
		SampleRate: r.SampleRate,
		Channels:   append([]string(nil), r.Channels...),
	}
	for _, d := range r.Data {
		out.Data = append(out.Data, d[i0:i1])
	}
	for _, s := range r.Seizures {
		clipped := Interval{math.Max(s.Start, start) - start, math.Min(s.End, end) - start}
		if clipped.End > clipped.Start {
			out.Seizures = append(out.Seizures, clipped)
		}
	}
	return out, nil
}

// IsSeizureAt reports whether time t (seconds) falls inside any annotated
// seizure.
func (r *Recording) IsSeizureAt(t float64) bool {
	for _, s := range r.Seizures {
		if s.Contains(t) {
			return true
		}
	}
	return false
}

// WindowSpec describes the sliding analysis window of the feature
// extractor. The paper uses 4 s windows with 75 % overlap, i.e. a 1 s
// hop.
type WindowSpec struct {
	Length  time.Duration // window length
	Overlap float64       // fraction in [0, 1)
}

// DefaultWindow is the paper's 4 s / 75 % configuration.
func DefaultWindow() WindowSpec {
	return WindowSpec{Length: 4 * time.Second, Overlap: 0.75}
}

// Validate checks the window specification.
func (w WindowSpec) Validate() error {
	if w.Length <= 0 {
		return fmt.Errorf("signal: invalid window length %v", w.Length)
	}
	if w.Overlap < 0 || w.Overlap >= 1 {
		return fmt.Errorf("signal: overlap %g outside [0, 1)", w.Overlap)
	}
	return nil
}

// Hop returns the hop duration between consecutive windows.
func (w WindowSpec) Hop() time.Duration {
	return time.Duration(float64(w.Length) * (1 - w.Overlap))
}

// SamplesPerWindow returns the window length in samples at rate fs.
func (w WindowSpec) SamplesPerWindow(fs float64) int {
	return int(math.Round(w.Length.Seconds() * fs))
}

// HopSamples returns the hop in samples at rate fs (at least 1).
func (w WindowSpec) HopSamples(fs float64) int {
	h := int(math.Round(w.Hop().Seconds() * fs))
	if h < 1 {
		h = 1
	}
	return h
}

// NumWindows returns how many complete windows fit in n samples at rate
// fs.
func (w WindowSpec) NumWindows(n int, fs float64) int {
	win := w.SamplesPerWindow(fs)
	hop := w.HopSamples(fs)
	if n < win || win <= 0 {
		return 0
	}
	return (n-win)/hop + 1
}

// WindowStart returns the start time (seconds) of window index i.
func (w WindowSpec) WindowStart(i int, fs float64) float64 {
	return float64(i*w.HopSamples(fs)) / fs
}

// Window extracts window i of channel data (shared backing array).
func (w WindowSpec) Window(data []float64, i int, fs float64) ([]float64, error) {
	win := w.SamplesPerWindow(fs)
	hop := w.HopSamples(fs)
	start := i * hop
	if i < 0 || start+win > len(data) {
		return nil, fmt.Errorf("signal: window %d outside data of %d samples", i, len(data))
	}
	return data[start : start+win], nil
}

// Resample converts xs from rate fsIn to fsOut using linear
// interpolation. It covers the wearable platform's 125 Hz – 16 kHz
// acquisition range.
func Resample(xs []float64, fsIn, fsOut float64) ([]float64, error) {
	if fsIn <= 0 || fsOut <= 0 {
		return nil, fmt.Errorf("signal: invalid rates %g -> %g", fsIn, fsOut)
	}
	if len(xs) == 0 {
		return nil, nil
	}
	if fsIn == fsOut {
		return append([]float64(nil), xs...), nil
	}
	nOut := int(math.Round(float64(len(xs)) * fsOut / fsIn))
	if nOut < 1 {
		nOut = 1
	}
	out := make([]float64, nOut)
	scale := fsIn / fsOut
	for i := range out {
		pos := float64(i) * scale
		lo := int(pos)
		if lo >= len(xs)-1 {
			out[i] = xs[len(xs)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = xs[lo]*(1-frac) + xs[lo+1]*frac
	}
	return out, nil
}
