package fault

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// pollInterval is how often a blocked operation re-checks its gate.
// Fault windows in tests are hundreds of milliseconds, so 1 ms keeps
// window edges sharp without measurable spin.
const pollInterval = time.Millisecond

// ErrReset is returned by operations on a connection a KindReset
// window killed.
var ErrReset = errors.New("fault: connection reset by injected fault")

// ErrTorn is returned by the Write a KindShortWrite window tore; the
// peer is left holding a partial frame and the connection is dead.
var ErrTorn = errors.New("fault: torn write (injected short write)")

// errTimeout is the net.Error a gated operation returns when its
// deadline fires while the fault holds it.
type errTimeout struct{}

func (errTimeout) Error() string   { return "fault: i/o deadline exceeded during injected fault" }
func (errTimeout) Timeout() bool   { return true }
func (errTimeout) Temporary() bool { return true }

// Conn wraps a net.Conn under an Injector. All fault gating happens at
// operation entry/exit; the wrapper mirrors deadlines so gated
// operations still honor SetDeadline with a proper net.Error timeout,
// which is what lets the cluster's write deadlines convert partition
// losses into counted errors instead of silent drops.
type Conn struct {
	net.Conn
	inj  *Injector
	peer string

	bytesRead atomic.Int64 // drives drop-after thresholds

	dlMu sync.Mutex
	rdl  time.Time
	wdl  time.Time

	closed  atomic.Bool
	dropped atomic.Bool // half-open: tripped drop-after is permanent
	reset   atomic.Bool
}

// WrapConn puts conn under the injector's plan with the given peer
// label (rules match on it). A nil injector returns conn unchanged.
func WrapConn(conn net.Conn, inj *Injector, peer string) net.Conn {
	if inj == nil {
		return conn
	}
	return &Conn{Conn: conn, inj: inj, peer: peer}
}

// Peer returns the label rules match this connection on.
func (c *Conn) Peer() string { return c.peer }

func (c *Conn) Close() error {
	c.closed.Store(true)
	return c.Conn.Close()
}

func (c *Conn) SetDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.rdl, c.wdl = t, t
	c.dlMu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.rdl = t
	c.dlMu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.wdl = t
	c.dlMu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *Conn) deadline(read bool) time.Time {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	if read {
		return c.rdl
	}
	return c.wdl
}

// gate blocks while the operation's direction is faulted, honoring the
// mirrored deadline and connection death. It also trips the terminal
// states: reset windows kill the connection, drop-after windows flip
// it half-open once enough bytes have been read.
func (c *Conn) gate(read bool) error {
	for {
		if c.closed.Load() {
			return net.ErrClosed
		}
		if c.reset.Load() {
			return ErrReset
		}
		if _, ok := c.inj.Active(c.peer, KindReset); ok {
			c.reset.Store(true)
			c.Conn.Close()
			return ErrReset
		}
		if !c.dropped.Load() {
			if w, ok := c.inj.Active(c.peer, KindDropAfter); ok && c.bytesRead.Load() >= w.AfterBytes {
				c.dropped.Store(true)
			}
		}
		blocked := c.inj.blocked(c.peer, read)
		if c.dropped.Load() {
			if !read {
				return nil // writes black-hole; Write returns success
			}
			blocked = true // reads never complete again
		}
		if !blocked {
			return nil
		}
		if dl := c.deadline(read); !dl.IsZero() && time.Now().After(dl) {
			return errTimeout{}
		}
		time.Sleep(pollInterval)
	}
}

// pause sleeps d in small slices, aborting early if the connection
// dies — so latency windows never pin a torn-down connection's loops.
func (c *Conn) pause(d time.Duration) {
	const slice = 5 * time.Millisecond
	for d > 0 {
		if c.closed.Load() || c.reset.Load() {
			return
		}
		s := min(d, slice)
		time.Sleep(s)
		d -= s
	}
}

func (c *Conn) Read(b []byte) (int, error) {
	if err := c.gate(true); err != nil {
		return 0, err
	}
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.bytesRead.Add(int64(n))
		if w, ok := c.inj.Active(c.peer, KindLatency); ok {
			c.pause(w.Latency)
		}
		if w, ok := c.inj.Active(c.peer, KindThrottle); ok && w.KBps > 0 {
			c.pause(time.Duration(float64(n) / (w.KBps * 1024) * float64(time.Second)))
		}
	}
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	if err := c.gate(false); err != nil {
		return 0, err
	}
	if c.dropped.Load() {
		return len(b), nil // half-open black hole: the bytes go nowhere
	}
	if w, ok := c.inj.Active(c.peer, KindShortWrite); ok && len(b) > 1 {
		k := int(float64(len(b)) * w.Fraction)
		k = max(1, min(k, len(b)-1))
		n, _ := c.Conn.Write(b[:k])
		c.Conn.Close() // the tear kills the conn: peer holds a partial frame
		return n, ErrTorn
	}
	if w, ok := c.inj.Active(c.peer, KindLatency); ok {
		c.pause(w.Latency)
	}
	if w, ok := c.inj.Active(c.peer, KindThrottle); ok && w.KBps > 0 {
		c.pause(time.Duration(float64(len(b)) / (w.KBps * 1024) * float64(time.Second)))
	}
	return c.Conn.Write(b)
}
