package fault

import (
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeClock is the injectable plan clock: tests step it explicitly, so
// window-edge behavior is exact instead of raced against real sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// armed builds an injector on a fake clock, armed at clock zero.
func armed(t *testing.T, plan *Plan) (*Injector, *fakeClock) {
	t.Helper()
	inj, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	inj.SetClock(clk.now)
	inj.Arm()
	return inj, clk
}

// TestScheduleDeterministic pins the determinism contract: the same
// plan (same seed) expands to the byte-identical schedule, across
// repeated expansions and across a JSON round trip — and the seed is
// load-bearing where jitter is in play.
func TestScheduleDeterministic(t *testing.T) {
	plan := &Plan{Seed: 42, Rules: []Rule{
		{Peer: "a", Kind: KindPartition, Start: 1, Duration: 2, Repeat: 3, Period: 5, Jitter: 1.5},
		{Peer: "b", Kind: KindLatency, Start: 0.5, Duration: 10, LatencyMs: 20, Jitter: 0.3},
		{Kind: KindTornWrite, Start: 2, Duration: 1},
	}}
	ws1, err := plan.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	ws2, err := plan.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if FormatSchedule(ws1) != FormatSchedule(ws2) {
		t.Fatalf("same plan, different schedules:\n%s\nvs\n%s", FormatSchedule(ws1), FormatSchedule(ws2))
	}

	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	ws3, err := loaded.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if FormatSchedule(ws1) != FormatSchedule(ws3) {
		t.Fatal("schedule changed across a JSON round trip")
	}

	other := &Plan{Seed: 43, Rules: plan.Rules}
	ws4, err := other.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if FormatSchedule(ws1) == FormatSchedule(ws4) {
		t.Fatal("different seeds produced identical jittered schedules")
	}

	// The unjittered fraction default resolves at expansion.
	for _, w := range ws1 {
		if w.Kind == KindTornWrite && w.Fraction != 0.5 {
			t.Fatalf("torn-write fraction = %v, want the 0.5 default", w.Fraction)
		}
	}
}

func TestPlanValidateRejects(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Kind: "explode", Start: 0, Duration: 1}}},                        // unknown kind
		{Rules: []Rule{{Kind: KindPartition, Start: -1, Duration: 1}}},                   // negative start
		{Rules: []Rule{{Kind: KindPartition, Start: 0, Duration: 0}}},                    // no duration
		{Rules: []Rule{{Kind: KindPartition, Start: 0, Duration: 1, Repeat: 2}}},         // repeat without period
		{Rules: []Rule{{Kind: KindLatency, Start: 0, Duration: 1}}},                      // latency without latency_ms
		{Rules: []Rule{{Kind: KindThrottle, Start: 0, Duration: 1}}},                     // throttle without kbps
		{Rules: []Rule{{Kind: KindDropAfter, Start: 0, Duration: 1, AfterBytes: -1}}},    // negative threshold
		{Rules: []Rule{{Kind: KindShortWrite, Start: 0, Duration: 1, Fraction: 1}}},      // fraction out of range
		{Rules: []Rule{{Kind: KindPartition, Start: 0, Duration: 1, Jitter: -0.1}}},      // negative jitter
		{Rules: []Rule{{Kind: KindTornWrite, Start: 0, Duration: 1, Fraction: -0.0001}}}, // negative fraction
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated: %+v", i, p.Rules[0])
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	if _, err := LoadPlan([]byte(`{"seed": 1, "rules": [{"kind": "partition", "start_s": 0, "duration_s": 1, "sturt_s": 3}]}`)); err == nil {
		t.Fatal("LoadPlan accepted an unknown field; typos would silently run a clean baseline")
	}
}

func TestInjectorUnarmedInert(t *testing.T) {
	inj, err := New(&Plan{Seed: 1, Rules: []Rule{{Kind: KindPartition, Start: 0, Duration: 1000}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := inj.Active("any", KindPartition); ok {
		t.Fatal("unarmed injector reported an active window")
	}
	if inj.Armed() || inj.Elapsed() != 0 {
		t.Fatal("unarmed injector is keeping time")
	}
}

func TestInjectorWindowsAndPeers(t *testing.T) {
	inj, clk := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Peer: "a", Kind: KindPartition, Start: 1, Duration: 1},
		{Peer: "*", Kind: KindReset, Start: 5, Duration: 1},
	}})
	if _, ok := inj.Active("a", KindPartition); ok {
		t.Fatal("window active before its start")
	}
	clk.advance(1500 * time.Millisecond)
	if _, ok := inj.Active("a", KindPartition); !ok {
		t.Fatal("window not active mid-span")
	}
	if _, ok := inj.Active("b", KindPartition); ok {
		t.Fatal("peer filter leaked to another peer")
	}
	clk.advance(time.Second) // 2.5 s: past the end
	if _, ok := inj.Active("a", KindPartition); ok {
		t.Fatal("window still active past its end")
	}
	clk.advance(3 * time.Second) // 5.5 s: inside the wildcard window
	for _, peer := range []string{"a", "b", "anything"} {
		if _, ok := inj.Active(peer, KindReset); !ok {
			t.Fatalf("wildcard window missed peer %q", peer)
		}
	}
	// Arm is idempotent: re-arming must not reset plan time.
	inj.Arm()
	if got := inj.Elapsed(); got != 5500*time.Millisecond {
		t.Fatalf("Elapsed after re-arm = %v, want 5.5s", got)
	}
}

// pipePair wraps one end of a net.Pipe under the injector; the raw
// other end plays the remote peer.
func pipePair(inj *Injector, peer string) (wrapped, remote net.Conn) {
	a, b := net.Pipe()
	return WrapConn(a, inj, peer), b
}

func TestConnPartitionHonorsDeadline(t *testing.T) {
	inj, _ := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Peer: "p", Kind: KindPartition, Start: 0, Duration: 1000},
	}})
	c, remote := pipePair(inj, "p")
	defer c.Close()
	defer remote.Close()

	c.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	_, err := c.Write([]byte("x"))
	var ne net.Error
	if !asNetError(err, &ne) || !ne.Timeout() {
		t.Fatalf("partitioned write = %v, want a net.Error timeout", err)
	}
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	_, err = c.Read(make([]byte, 1))
	if !asNetError(err, &ne) || !ne.Timeout() {
		t.Fatalf("partitioned read = %v, want a net.Error timeout", err)
	}
}

func asNetError(err error, ne *net.Error) bool {
	if e, ok := err.(net.Error); ok {
		*ne = e
		return true
	}
	return false
}

func TestConnPartitionHeals(t *testing.T) {
	inj, clk := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Peer: "p", Kind: KindPartition, Start: 0, Duration: 1},
	}})
	c, remote := pipePair(inj, "p")
	defer c.Close()
	defer remote.Close()

	got := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("x"))
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("write completed during the partition: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	clk.advance(2 * time.Second) // heal
	buf := make([]byte, 1)
	if _, err := remote.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("healed write = %v, want nil — partitions must not lose bytes", err)
	}
}

func TestConnOneWayPartition(t *testing.T) {
	inj, _ := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Peer: "p", Kind: KindPartitionIn, Start: 0, Duration: 1000},
	}})
	c, remote := pipePair(inj, "p")
	defer c.Close()
	defer remote.Close()

	// Outbound unaffected...
	go remote.Read(make([]byte, 1))
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write under partition-in = %v", err)
	}
	// ...inbound stalls.
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	var ne net.Error
	if _, err := c.Read(make([]byte, 1)); !asNetError(err, &ne) || !ne.Timeout() {
		t.Fatalf("read under partition-in = %v, want timeout", err)
	}
}

func TestConnReset(t *testing.T) {
	inj, _ := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Peer: "p", Kind: KindReset, Start: 0, Duration: 1},
	}})
	c, remote := pipePair(inj, "p")
	defer remote.Close()

	if _, err := c.Write([]byte("x")); err != ErrReset {
		t.Fatalf("write in a reset window = %v, want ErrReset", err)
	}
	// The reset is terminal: the conn stays dead after the window.
	if _, err := c.Read(make([]byte, 1)); err != ErrReset {
		t.Fatalf("read after reset = %v, want ErrReset", err)
	}
	// The peer sees the close.
	if _, err := remote.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
}

func TestConnDropAfterGoesHalfOpen(t *testing.T) {
	inj, clk := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Peer: "p", Kind: KindDropAfter, Start: 0, Duration: 1, AfterBytes: 4},
	}})
	c, remote := pipePair(inj, "p")
	defer c.Close()
	defer remote.Close()

	// Under the threshold the conn behaves.
	go remote.Write([]byte("abcd"))
	buf := make([]byte, 4)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	// Threshold reached: writes black-hole (report success, deliver
	// nothing), reads hang forever — the silent half-open failure mode.
	if n, err := c.Write([]byte("lost")); n != 4 || err != nil {
		t.Fatalf("half-open write = (%d, %v), want silent (4, nil)", n, err)
	}
	remote.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := remote.Read(buf); err == nil {
		t.Fatal("black-holed bytes reached the peer")
	}
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	var ne net.Error
	if _, err := c.Read(buf); !asNetError(err, &ne) || !ne.Timeout() {
		t.Fatalf("half-open read = %v, want timeout", err)
	}
	// Half-open is permanent: the window closing does not resurrect the
	// conn (the real peer's host is gone; only a reap helps).
	clk.advance(time.Minute)
	if n, err := c.Write([]byte("still")); n != 5 || err != nil {
		t.Fatalf("write after window closed = (%d, %v), want (5, nil)", n, err)
	}
}

func TestConnShortWrite(t *testing.T) {
	inj, _ := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Peer: "p", Kind: KindShortWrite, Start: 0, Duration: 1, Fraction: 0.5},
	}})
	c, remote := pipePair(inj, "p")
	defer remote.Close()

	read := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := remote.Read(buf)
		read <- buf[:n]
	}()
	n, err := c.Write([]byte("0123456789"))
	if err != ErrTorn {
		t.Fatalf("short write error = %v, want ErrTorn", err)
	}
	if n != 5 {
		t.Fatalf("short write wrote %d bytes, want 5 (fraction 0.5)", n)
	}
	if got := <-read; string(got) != "01234" {
		t.Fatalf("peer holds %q, want the torn prefix \"01234\"", got)
	}
	// The tear kills the conn: the peer's next read sees it die.
	if _, err := remote.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived a torn write")
	}
}

func TestConnLatency(t *testing.T) {
	inj, _ := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Peer: "p", Kind: KindLatency, Start: 0, Duration: 1000, LatencyMs: 40},
	}})
	c, remote := pipePair(inj, "p")
	defer c.Close()
	defer remote.Close()

	go remote.Read(make([]byte, 1))
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("latency window delayed the write only %v, want ≥ ~40ms", elapsed)
	}
}

func TestConnUnarmedPassthrough(t *testing.T) {
	inj, err := New(&Plan{Seed: 1, Rules: []Rule{
		{Kind: KindPartition, Start: 0, Duration: 1000},
		{Kind: KindReset, Start: 0, Duration: 1000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c, remote := pipePair(inj, "p")
	defer c.Close()
	defer remote.Close()
	go remote.Read(make([]byte, 1))
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write through an unarmed injector = %v", err)
	}
	if WrapConn(nil, nil, "p") != nil {
		t.Fatal("nil injector must wrap to the conn itself")
	}
}

func TestListenerAcceptStall(t *testing.T) {
	inj, err := New(&Plan{Seed: 1, Rules: []Rule{
		{Peer: "ln", Kind: KindAcceptStall, Start: 0, Duration: 0.15},
	}})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewListener(raw, inj, "ln")
	defer ln.Close()
	inj.Arm()

	dial, err := net.Dial("tcp", raw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer dial.Close()
	start := time.Now()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("accept returned after %v, want the ~150ms stall window", elapsed)
	}
	if _, ok := conn.(*Conn); !ok {
		t.Fatalf("accepted conn is %T, want a fault-wrapped *Conn", conn)
	}
}

func TestDialBlockedByPartition(t *testing.T) {
	inj, _ := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Kind: KindPartition, Start: 0, Duration: 1000},
	}})
	start := time.Now()
	_, err := inj.Dial("127.0.0.1:1", 50*time.Millisecond)
	var ne net.Error
	if !asNetError(err, &ne) || !ne.Timeout() {
		t.Fatalf("partitioned dial = %v, want a net.Error timeout", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("dial gave up after %v, before its timeout", elapsed)
	}
}
