package fault

import (
	"net"
	"sync/atomic"
	"time"
)

// Listener wraps a net.Listener so every accepted connection runs
// under the injector's plan (peer label = the listener's label), and
// KindAcceptStall windows hold accepted connections back until the
// window closes — dialers see their handshakes time out, exactly like
// a listening host too wedged to serve its backlog.
type Listener struct {
	net.Listener
	inj    *Injector
	label  string
	closed atomic.Bool
}

// NewListener wraps ln under inj; rules match accepted connections on
// label. A nil injector returns ln unchanged.
func NewListener(ln net.Listener, inj *Injector, label string) net.Listener {
	if inj == nil {
		return ln
	}
	return &Listener{Listener: ln, inj: inj, label: label}
}

func (l *Listener) Close() error {
	l.closed.Store(true)
	return l.Listener.Close()
}

func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	// Stall inside Accept, not on the accepted socket: the dialer's
	// handshake deadline — not its dial timeout — is what expires, the
	// same failure shape as a wedged accept queue. Listener close
	// interrupts the stall so server teardown never waits out a window.
	for {
		if l.closed.Load() {
			conn.Close()
			return nil, net.ErrClosed
		}
		if _, ok := l.inj.Active(l.label, KindAcceptStall); !ok {
			break
		}
		time.Sleep(pollInterval)
	}
	return WrapConn(conn, l.inj, l.label), nil
}
