package fault

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Rule is one declarative fault: a kind, a peer filter, a timed window
// (seconds from Injector.Arm), and optional repetition. Fields not
// meaningful for the kind are ignored.
type Rule struct {
	// Peer filters which connections/stores the rule hits: the dial
	// address for client-side conns, the listener label server-side,
	// the store label for store faults. "" or "*" matches everything.
	Peer string `json:"peer,omitempty"`
	Kind Kind   `json:"kind"`
	// Start and Duration place the first window, in seconds from Arm.
	Start    float64 `json:"start_s"`
	Duration float64 `json:"duration_s"`
	// Repeat adds that many further windows (total Repeat+1), spaced
	// Period seconds start-to-start. Jitter shifts each occurrence by a
	// seeded uniform draw in [0, Jitter) seconds — drawn at schedule
	// expansion, so the same Plan seed always yields the same shifts.
	Repeat int     `json:"repeat,omitempty"`
	Period float64 `json:"period_s,omitempty"`
	Jitter float64 `json:"jitter_s,omitempty"`
	// Kind parameters.
	LatencyMs  float64 `json:"latency_ms,omitempty"`  // latency, store-latency, accept-stall grace
	KBps       float64 `json:"kbps,omitempty"`        // throttle
	AfterBytes int64   `json:"after_bytes,omitempty"` // drop-after
	Fraction   float64 `json:"fraction,omitempty"`    // short-write, torn-write (default 0.5)
}

// Plan is a replayable chaos schedule: a seed plus rules. Expansion
// (Schedule) is the only place randomness enters, so Plan + seed fully
// determine every fault the run will see.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Validate rejects rules the scheduler cannot expand deterministically
// or whose kind parameters are missing.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, r := range p.Rules {
		where := fmt.Sprintf("fault: rule %d (%s)", i, r.Kind)
		if !r.Kind.valid() {
			return fmt.Errorf("fault: rule %d: unknown kind %q", i, r.Kind)
		}
		if r.Start < 0 {
			return fmt.Errorf("%s: negative start %v", where, r.Start)
		}
		if r.Duration <= 0 {
			return fmt.Errorf("%s: duration must be positive, got %v", where, r.Duration)
		}
		if r.Repeat < 0 {
			return fmt.Errorf("%s: negative repeat %d", where, r.Repeat)
		}
		if r.Repeat > 0 && r.Period <= 0 {
			return fmt.Errorf("%s: repeat %d needs a positive period_s", where, r.Repeat)
		}
		if r.Jitter < 0 {
			return fmt.Errorf("%s: negative jitter %v", where, r.Jitter)
		}
		switch r.Kind {
		case KindLatency, KindStoreLatency:
			if r.LatencyMs <= 0 {
				return fmt.Errorf("%s: latency_ms must be positive", where)
			}
		case KindThrottle:
			if r.KBps <= 0 {
				return fmt.Errorf("%s: kbps must be positive", where)
			}
		case KindDropAfter:
			if r.AfterBytes < 0 {
				return fmt.Errorf("%s: negative after_bytes", where)
			}
		case KindShortWrite, KindTornWrite:
			// Fraction 0 selects the 0.5 default at expansion.
			if r.Fraction < 0 || r.Fraction >= 1 {
				return fmt.Errorf("%s: fraction must be in [0,1), got %v", where, r.Fraction)
			}
		}
	}
	return nil
}

// Window is one expanded fault occurrence with resolved parameters;
// times are offsets from Injector.Arm.
type Window struct {
	Peer       string
	Kind       Kind
	Start, End time.Duration
	Latency    time.Duration
	KBps       float64
	AfterBytes int64
	Fraction   float64
}

func (w Window) matches(peer string) bool {
	return w.Peer == "" || w.Peer == "*" || w.Peer == peer
}

// Schedule expands the plan into its window list — the sole source of
// randomness, seeded by Plan.Seed, so repeated calls (and repeated
// runs) produce the byte-identical schedule. Windows sort by start
// time, then peer, then kind.
func (p *Plan) Schedule() ([]Window, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var ws []Window
	for _, r := range p.Rules {
		frac := r.Fraction
		if frac == 0 {
			frac = 0.5
		}
		for occ := 0; occ <= r.Repeat; occ++ {
			start := r.Start + float64(occ)*r.Period
			if r.Jitter > 0 {
				start += rng.Float64() * r.Jitter
			}
			ws = append(ws, Window{
				Peer:       r.Peer,
				Kind:       r.Kind,
				Start:      time.Duration(start * float64(time.Second)),
				End:        time.Duration((start + r.Duration) * float64(time.Second)),
				Latency:    time.Duration(r.LatencyMs * float64(time.Millisecond)),
				KBps:       r.KBps,
				AfterBytes: r.AfterBytes,
				Fraction:   frac,
			})
		}
	}
	sort.SliceStable(ws, func(i, j int) bool {
		if ws[i].Start != ws[j].Start {
			return ws[i].Start < ws[j].Start
		}
		if ws[i].Peer != ws[j].Peer {
			return ws[i].Peer < ws[j].Peer
		}
		return ws[i].Kind < ws[j].Kind
	})
	return ws, nil
}

// FormatSchedule renders a window list one line per window — the
// byte-identity witness the determinism tests pin.
func FormatSchedule(ws []Window) string {
	var b strings.Builder
	for _, w := range ws {
		fmt.Fprintf(&b, "%s %s %d %d %d %g %d %g\n",
			w.Kind, w.Peer, int64(w.Start), int64(w.End),
			int64(w.Latency), w.KBps, w.AfterBytes, w.Fraction)
	}
	return b.String()
}

// LoadPlan parses a JSON plan, rejecting unknown fields and invalid
// rules — a typo in a chaos plan must fail loudly, not silently run a
// clean baseline.
func LoadPlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
