// Package fault is the seeded, deterministic fault-injection layer for
// the cluster tier: net.Conn / net.Listener wrappers that impose
// latency, bandwidth throttling, one-way and full partitions,
// drop-after-N-bytes half-open connections, short (torn) writes,
// connection resets, and accept stalls — plus a serve.ModelStore
// wrapper that injects save/load errors, store latency, and torn
// checkpoint files.
//
// Everything is driven by a declarative Plan: a seed plus a list of
// Rules, expanded once (at Injector construction) into a sorted
// schedule of timed Windows. All randomness — occurrence jitter, torn
// file fractions — is drawn during that expansion from
// rand.New(rand.NewSource(seed)), so the same Plan always produces the
// byte-identical schedule and a chaos run replays exactly. At runtime
// the Injector only compares an injected clock against precomputed
// window bounds; no wall-clock randomness remains.
//
// Faults gate at operation boundaries: a Read or Write entering the
// wrapper observes the windows active at that instant. A window
// opening while the underlying call is already blocked takes effect on
// the next operation — window onset is sharp to within one frame,
// which is the granularity the cluster protocol works in anyway.
//
// Injection seams: cluster.Options.Dialer accepts Injector.Dial on the
// client side; fault.NewListener wraps a shardd's listener on the
// server side; fault.NewStore wraps its model store. scenario.Spec
// carries a Plan in its Faults section, and cmd/loadgen / cmd/shardd
// load one from -faults plan.json.
package fault

import (
	"net"
	"time"
)

// Kind names one fault class. Conn kinds act on wrapped connections,
// Listener kinds on accept, Store kinds on the model store.
type Kind string

const (
	// KindLatency adds Rule.LatencyMs to every read delivery and write
	// submission on matching connections.
	KindLatency Kind = "latency"
	// KindThrottle caps matching connections to Rule.KBps kilobytes per
	// second in each direction.
	KindThrottle Kind = "throttle"
	// KindPartition blocks reads and writes on matching connections for
	// the window — TCP-retransmit semantics: bytes are neither lost nor
	// delivered, callers block until their deadline fires or the window
	// heals. Writers therefore always observe their losses as deadline
	// errors; nothing is silently dropped.
	KindPartition Kind = "partition"
	// KindPartitionIn blocks only reads (inbound data stalls).
	KindPartitionIn Kind = "partition-in"
	// KindPartitionOut blocks only writes (outbound data stalls).
	KindPartitionOut Kind = "partition-out"
	// KindDropAfter turns the connection half-open once Rule.AfterBytes
	// have been read during the window: reads block forever (no FIN
	// ever arrives) and writes succeed into a black hole, exactly like
	// a peer whose host vanished mid-conversation. This is the fault
	// class read deadlines and ping probes exist to reap; unlike
	// partitions it does lose written bytes silently, so tests keep
	// accounting-critical traffic outside drop windows.
	KindDropAfter Kind = "drop-after"
	// KindShortWrite tears one write per matching connection per
	// window: Rule.Fraction of the buffer reaches the wire, then the
	// connection dies — the peer is left holding a partial frame.
	KindShortWrite Kind = "short-write"
	// KindReset closes matching connections with an error on the next
	// operation, like a peer sending RST.
	KindReset Kind = "reset"
	// KindAcceptStall delays accepted connections on matching listeners
	// until the window closes (handshakes time out dialer-side).
	KindAcceptStall Kind = "accept-stall"
	// KindStoreSaveErr fails matching stores' Save/SaveVersion.
	KindStoreSaveErr Kind = "store-save-err"
	// KindStoreLoadErr fails matching stores' Load/LoadVersion.
	KindStoreLoadErr Kind = "store-load-err"
	// KindStoreLatency adds Rule.LatencyMs to every store operation.
	KindStoreLatency Kind = "store-latency"
	// KindTornWrite lets SaveVersion write the checkpoint file, then
	// truncates it to Rule.Fraction of its length — a crash mid-write.
	// Requires the wrapped store to be a serve.FileStore; other stores
	// degrade to a save error.
	KindTornWrite Kind = "torn-write"
)

// valid reports whether k names a known fault class.
func (k Kind) valid() bool {
	switch k {
	case KindLatency, KindThrottle, KindPartition, KindPartitionIn,
		KindPartitionOut, KindDropAfter, KindShortWrite, KindReset,
		KindAcceptStall, KindStoreSaveErr, KindStoreLoadErr,
		KindStoreLatency, KindTornWrite:
		return true
	}
	return false
}

// Dialer is the function shape cluster.Options.Dialer expects;
// Injector.Dial satisfies it.
type Dialer func(addr string, timeout time.Duration) (net.Conn, error)
