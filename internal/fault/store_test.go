package fault

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"selflearn/internal/ml/forest"
	"selflearn/internal/serve"
)

// tinyFlat trains a trivially separable detector — enough bytes on disk
// for a torn write to leave an unparsable prefix.
func tinyFlat(t *testing.T) *forest.FlatForest {
	t.Helper()
	X := [][]float64{{0, 0}, {1, 1}, {0, 0.1}, {1, 0.9}, {0.1, 0}, {0.9, 1}}
	y := []bool{false, true, false, true, false, true}
	f, err := forest.Train(X, y, forest.Config{NumTrees: 5, MinLeaf: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return f.Flatten()
}

// TestStoreTornWriteQuarantined is the end-to-end torn-checkpoint
// story: a save inside a torn-write window lands truncated and is
// reported as a store error; the FileStore refuses to parse the stump,
// quarantines it, and a later clean save recovers the patient.
func TestStoreTornWriteQuarantined(t *testing.T) {
	dir := t.TempDir()
	fs, err := serve.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj, clk := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Peer: "store", Kind: KindTornWrite, Start: 0, Duration: 1, Fraction: 0.5},
	}})
	st := NewStore(fs, inj, "store")

	f := tinyFlat(t)
	if err := st.SaveVersion("p1", f, 1); !errors.Is(err, ErrStoreFault) {
		t.Fatalf("torn save = %v, want ErrStoreFault (the caller must count it)", err)
	}
	// The file on disk is a truncated stump: loading must fail and move
	// it aside, never hand a half-parsed detector to the serving path.
	if _, _, err := fs.LoadVersion("p1"); err == nil {
		t.Fatal("torn checkpoint loaded without error")
	}
	quarantined, err := filepath.Glob(filepath.Join(dir, "*.corrupt*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 1 {
		t.Fatalf("quarantined files = %v, want exactly one", quarantined)
	}
	// A load after quarantine is a clean miss, not a repeated error.
	if m, v, err := fs.LoadVersion("p1"); err != nil || m != nil || v != 0 {
		t.Fatalf("post-quarantine load = (%v, %d, %v), want a clean miss", m, v, err)
	}

	// Past the window the store behaves, and the patient recovers.
	clk.advance(2 * time.Second)
	if err := st.SaveVersion("p1", f, 2); err != nil {
		t.Fatalf("clean save after the window = %v", err)
	}
	m, v, err := st.LoadVersion("p1")
	if err != nil || m == nil || v != 2 {
		t.Fatalf("reload = (%v, %d, %v), want the v2 checkpoint", m, v, err)
	}
}

func TestStoreSaveLoadErrWindows(t *testing.T) {
	fs, err := serve.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj, clk := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Peer: "store", Kind: KindStoreSaveErr, Start: 0, Duration: 1},
		{Peer: "store", Kind: KindStoreLoadErr, Start: 0, Duration: 1},
	}})
	st := NewStore(fs, inj, "store")
	f := tinyFlat(t)

	if err := st.Save("p1", f); !errors.Is(err, ErrStoreFault) {
		t.Fatalf("save in an error window = %v, want ErrStoreFault", err)
	}
	if _, err := st.Load("p1"); !errors.Is(err, ErrStoreFault) {
		t.Fatalf("load in an error window = %v, want ErrStoreFault", err)
	}
	// A different label is untouched by the windows.
	other := NewStore(fs, inj, "other-store")
	if err := other.Save("p2", f); err != nil {
		t.Fatalf("save through an unmatched label = %v", err)
	}

	clk.advance(2 * time.Second)
	if err := st.Save("p1", f); err != nil {
		t.Fatalf("save after the window = %v", err)
	}
	if m, err := st.Load("p1"); err != nil || m == nil {
		t.Fatalf("load after the window = (%v, %v)", m, err)
	}
}

// memStore is a minimal unversioned store: torn writes have no file to
// tear, so the fault must degrade to a save error, not pass silently.
type memStore struct{ m map[string]*forest.FlatForest }

func (s *memStore) Load(id string) (*forest.FlatForest, error) { return s.m[id], nil }
func (s *memStore) Save(id string, f *forest.FlatForest) error {
	s.m[id] = f
	return nil
}

func TestStoreTornWriteDegradesWithoutFile(t *testing.T) {
	inj, _ := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Peer: "store", Kind: KindTornWrite, Start: 0, Duration: 1},
	}})
	st := NewStore(&memStore{m: map[string]*forest.FlatForest{}}, inj, "store")
	if err := st.SaveVersion("p1", tinyFlat(t), 1); !errors.Is(err, ErrStoreFault) {
		t.Fatalf("torn save on a fileless store = %v, want ErrStoreFault", err)
	}
}

func TestStoreLatency(t *testing.T) {
	fs, err := serve.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj, _ := armed(t, &Plan{Seed: 1, Rules: []Rule{
		{Peer: "store", Kind: KindStoreLatency, Start: 0, Duration: 1000, LatencyMs: 40},
	}})
	st := NewStore(fs, inj, "store")
	start := time.Now()
	if _, err := st.Load("p1"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("latency window delayed the load only %v, want ≥ ~40ms", elapsed)
	}
}
