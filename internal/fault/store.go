package fault

import (
	"errors"
	"fmt"
	"os"
	"time"

	"selflearn/internal/ml/forest"
	"selflearn/internal/serve"
)

// ErrStoreFault is the base error injected store failures wrap.
var ErrStoreFault = errors.New("fault: injected store error")

// Store wraps a serve.ModelStore under an Injector: save/load windows
// fail the matching operation, latency windows delay it, and
// torn-write windows let a SaveVersion reach disk and then truncate
// the checkpoint file mid-body — the crash-during-write case the
// FileStore's quarantine path exists for. Rules match on the store's
// label.
type Store struct {
	inner serve.VersionedStore
	file  *serve.FileStore // non-nil when inner is a FileStore (torn writes possible)
	inj   *Injector
	label string
}

var _ serve.VersionedStore = (*Store)(nil)

// NewStore wraps inner under inj; rules match on label. The wrapper is
// versioned regardless of inner (via serve.AsVersioned).
func NewStore(inner serve.ModelStore, inj *Injector, label string) *Store {
	s := &Store{inner: serve.AsVersioned(inner), inj: inj, label: label}
	if fs, ok := inner.(*serve.FileStore); ok {
		s.file = fs
	}
	return s
}

func (s *Store) delay() {
	if w, ok := s.inj.Active(s.label, KindStoreLatency); ok {
		time.Sleep(w.Latency)
	}
}

func (s *Store) Load(patientID string) (*forest.FlatForest, error) {
	s.delay()
	if _, ok := s.inj.Active(s.label, KindStoreLoadErr); ok {
		return nil, fmt.Errorf("%w: load %s", ErrStoreFault, patientID)
	}
	return s.inner.Load(patientID)
}

func (s *Store) LoadVersion(patientID string) (*forest.FlatForest, uint64, error) {
	s.delay()
	if _, ok := s.inj.Active(s.label, KindStoreLoadErr); ok {
		return nil, 0, fmt.Errorf("%w: load %s", ErrStoreFault, patientID)
	}
	return s.inner.LoadVersion(patientID)
}

func (s *Store) Save(patientID string, f *forest.FlatForest) error {
	return s.SaveVersion(patientID, f, 0)
}

func (s *Store) SaveVersion(patientID string, f *forest.FlatForest, version uint64) error {
	s.delay()
	if _, ok := s.inj.Active(s.label, KindStoreSaveErr); ok {
		return fmt.Errorf("%w: save %s v%d", ErrStoreFault, patientID, version)
	}
	if w, ok := s.inj.Active(s.label, KindTornWrite); ok {
		return s.tornWrite(patientID, f, version, w.Fraction)
	}
	return s.inner.SaveVersion(patientID, f, version)
}

// tornWrite models a crash mid-checkpoint: the save lands, then the
// file is truncated to fraction of its length, leaving bytes that no
// longer parse. Only a FileStore has a file to tear; other stores
// degrade to a save error (their save is atomic by construction).
// The truncation is reported as an error so the caller's accounting
// (StoreErrors) sees the failed checkpoint either way.
func (s *Store) tornWrite(patientID string, f *forest.FlatForest, version uint64, fraction float64) error {
	if s.file == nil {
		return fmt.Errorf("%w: torn write %s v%d (store has no file to tear)", ErrStoreFault, patientID, version)
	}
	if err := s.inner.SaveVersion(patientID, f, version); err != nil {
		return err
	}
	path := s.file.PathFor(patientID)
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("%w: torn write %s v%d: %v", ErrStoreFault, patientID, version, err)
	}
	// Keep at least one byte so the tear is a corrupt file, not a
	// missing one — FileStore treats empty/absent as "no checkpoint".
	n := int64(float64(st.Size()) * fraction)
	n = max(1, min(n, st.Size()-1))
	if err := os.Truncate(path, n); err != nil {
		return fmt.Errorf("%w: torn write %s v%d: %v", ErrStoreFault, patientID, version, err)
	}
	return fmt.Errorf("%w: torn write %s v%d (%d of %d bytes on disk)", ErrStoreFault, patientID, version, n, st.Size())
}
