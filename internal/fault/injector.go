package fault

import (
	"net"
	"sync"
	"time"
)

// Injector evaluates a Plan's expanded schedule against a clock. It is
// the shared state behind every wrapped connection, listener, and
// store of one chaos run: construction expands the schedule (all
// randomness happens there), Arm starts plan time, and Active answers
// "is this fault on for this peer right now" by pure comparison — so
// two runs with the same plan, clock, and traffic see identical
// faults.
//
// The clock is injectable (SetClock) for schedule-evaluation tests;
// production and the chaos matrix run on time.Now. The injector itself
// never draws randomness after construction.
type Injector struct {
	windows []Window
	plan    Plan

	mu    sync.Mutex
	now   func() time.Time
	epoch time.Time // zero until Arm
}

// New expands the plan and returns an unarmed injector. A nil plan
// yields an injector that never fires (all wrappers pass through).
func New(plan *Plan) (*Injector, error) {
	in := &Injector{now: time.Now}
	if plan == nil {
		return in, nil
	}
	ws, err := plan.Schedule()
	if err != nil {
		return nil, err
	}
	in.plan = *plan
	in.windows = ws
	return in, nil
}

// MustNew is New for plans already validated (tests, trusted callers).
func MustNew(plan *Plan) *Injector {
	in, err := New(plan)
	if err != nil {
		panic(err)
	}
	return in
}

// SetClock replaces the injector's clock; call before Arm. Tests use
// it to step plan time without sleeping.
func (in *Injector) SetClock(now func() time.Time) {
	in.mu.Lock()
	in.now = now
	in.mu.Unlock()
}

// Arm starts plan time: window offsets count from the first Arm.
// Idempotent — later calls keep the original epoch, so a process can
// arm at boot and again defensively before a run.
func (in *Injector) Arm() {
	in.mu.Lock()
	if in.epoch.IsZero() {
		in.epoch = in.now() //selflearn:locked-ok the clock is a leaf (time.Now or a test fake); it never re-enters the injector
	}
	in.mu.Unlock()
}

// Armed reports whether plan time is running.
func (in *Injector) Armed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return !in.epoch.IsZero()
}

// Elapsed is the current plan time; zero before Arm.
func (in *Injector) Elapsed() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.epoch.IsZero() {
		return 0
	}
	return in.now().Sub(in.epoch) //selflearn:locked-ok the clock is a leaf (time.Now or a test fake); it never re-enters the injector
}

// Windows returns a copy of the expanded schedule.
func (in *Injector) Windows() []Window {
	out := make([]Window, len(in.windows))
	copy(out, in.windows)
	return out
}

// Active reports whether a kind window covering peer is open at the
// current plan time, returning the first such window. Always false
// before Arm — wrappers built ahead of the run are inert until it
// starts.
func (in *Injector) Active(peer string, kind Kind) (Window, bool) {
	in.mu.Lock()
	epoch, now := in.epoch, in.now
	in.mu.Unlock()
	if epoch.IsZero() || len(in.windows) == 0 {
		return Window{}, false
	}
	elapsed := now().Sub(epoch)
	for _, w := range in.windows {
		if w.Kind == kind && w.matches(peer) && elapsed >= w.Start && elapsed < w.End {
			return w, true
		}
	}
	return Window{}, false
}

// blocked reports whether an operation direction is currently gated for
// peer: full partitions block both, one-way partitions their own side.
func (in *Injector) blocked(peer string, read bool) bool {
	if _, ok := in.Active(peer, KindPartition); ok {
		return true
	}
	if read {
		_, ok := in.Active(peer, KindPartitionIn)
		return ok
	}
	_, ok := in.Active(peer, KindPartitionOut)
	return ok
}

// Dial is a cluster.Options.Dialer under this injector's plan: a dial
// toward a partitioned peer blocks like a dropped SYN until the window
// heals or the timeout elapses, and the returned connection is wrapped
// so the remaining conn faults apply. Peer label = dial address.
func (in *Injector) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for in.blocked(addr, false) || in.blocked(addr, true) {
		if time.Now().After(deadline) {
			return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errTimeout{}}
		}
		time.Sleep(pollInterval)
	}
	conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
	if err != nil {
		return nil, err
	}
	return WrapConn(conn, in, addr), nil
}
