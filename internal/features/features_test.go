package features

import (
	"math"
	"testing"

	"selflearn/internal/chbmit"
	"selflearn/internal/signal"
	"selflearn/internal/stats"
	"selflearn/internal/synth"
)

func seizureRecording(t *testing.T) *signal.Recording {
	t.Helper()
	rec, err := synth.Generate(synth.RecordConfig{
		PatientID:  "chb01",
		RecordID:   "r1",
		Seed:       5,
		Duration:   300,
		Background: synth.DefaultBackground(),
		Seizures: []synth.SeizureEvent{
			{Start: 120, Duration: 60, Config: synth.DefaultSeizure()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Level = 0
	if bad.Validate() == nil {
		t.Error("level 0 should fail")
	}
	bad = DefaultConfig()
	bad.RenyiAlpha = -1
	if bad.Validate() == nil {
		t.Error("negative alpha should fail")
	}
	bad = DefaultConfig()
	bad.RenyiBins = 0
	if bad.Validate() == nil {
		t.Error("zero bins should fail")
	}
	bad = DefaultConfig()
	bad.SampleM = 0
	if bad.Validate() == nil {
		t.Error("zero m should fail")
	}
	bad = DefaultConfig()
	bad.Window.Overlap = 1.5
	if bad.Validate() == nil {
		t.Error("bad window should fail")
	}
}

func TestExtract10Shape(t *testing.T) {
	rec := seizureRecording(t)
	m, err := Extract10(rec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFeatures() != 10 {
		t.Fatalf("features = %d, want 10", m.NumFeatures())
	}
	// 300 s at 1 s hop with 4 s windows: 297 rows.
	if m.NumRows() != 297 {
		t.Errorf("rows = %d, want 297", m.NumRows())
	}
	if len(m.Names) != 10 || m.Names[0] != "F7T3/theta_power" {
		t.Errorf("names = %v", m.Names)
	}
	if m.TimeOf(10) != 10 {
		t.Errorf("TimeOf(10) = %g, want 10 s", m.TimeOf(10))
	}
	if m.RowsPerSecond() != 1 {
		t.Errorf("RowsPerSecond = %g, want 1", m.RowsPerSecond())
	}
	for i, row := range m.Rows {
		for f, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("row %d feature %d (%s) is %g", i, f, m.Names[f], v)
			}
		}
	}
}

func TestExtract10SeparatesSeizure(t *testing.T) {
	rec := seizureRecording(t)
	m, err := Extract10(rec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Mean theta power inside the seizure (rows 130..170) must exceed the
	// background mean (rows 0..100) by a large factor.
	thetaIn := colMeanRange(m, 0, 130, 170)
	thetaOut := colMeanRange(m, 0, 0, 100)
	if thetaIn < 5*thetaOut {
		t.Errorf("ictal theta power %g vs background %g: separation too weak", thetaIn, thetaOut)
	}
	relIn := colMeanRange(m, 3, 130, 170)
	relOut := colMeanRange(m, 3, 0, 100)
	if relIn <= relOut {
		t.Error("relative theta on F8T4 should rise during seizure")
	}
}

func colMeanRange(m *Matrix, col, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += m.Rows[i][col]
	}
	return s / float64(hi-lo)
}

func TestExtract10Errors(t *testing.T) {
	rec := seizureRecording(t)
	bad := *rec
	bad.Channels = []string{"X", "Y"}
	if _, err := Extract10(&bad, DefaultConfig()); err == nil {
		t.Error("missing electrode pairs should fail")
	}
	short, err := rec.Slice(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extract10(short, DefaultConfig()); err == nil {
		t.Error("recording shorter than a window should fail")
	}
	cfg := DefaultConfig()
	cfg.Level = 0
	if _, err := Extract10(rec, cfg); err == nil {
		t.Error("invalid config should fail")
	}
	cfg = DefaultConfig()
	cfg.Level = 12 // 1024-sample window cannot reach level 12
	if _, err := Extract10(rec, cfg); err == nil {
		t.Error("excessive level should fail")
	}
}

func TestEGlassFeatureNames54(t *testing.T) {
	names := EGlassFeatureNames()
	if len(names) != 54 {
		t.Fatalf("bank has %d features, want 54 (per electrode pair, as in [7])", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestExtract54Shape(t *testing.T) {
	rec := seizureRecording(t)
	sub, err := rec.Slice(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Extract54(sub, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFeatures() != 108 {
		t.Fatalf("features = %d, want 108 (54 per electrode pair)", m.NumFeatures())
	}
	if m.NumRows() != 97 {
		t.Errorf("rows = %d, want 97", m.NumRows())
	}
	for i, row := range m.Rows {
		if len(row) != 108 {
			t.Fatalf("row %d has %d values", i, len(row))
		}
		for f, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("row %d feature %s = %g", i, m.Names[f], v)
			}
		}
	}
	if m.Names[0] != "F7T3/mean" || m.Names[54] != "F8T4/mean" {
		t.Errorf("channel prefixes wrong: %q %q", m.Names[0], m.Names[54])
	}
}

func TestExtract54SeizureSeparation(t *testing.T) {
	rec := seizureRecording(t)
	m, err := Extract54(rec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// line length (col 8) should be elevated during seizure.
	llIn := colMeanRange(m, 8, 130, 170)
	llOut := colMeanRange(m, 8, 0, 100)
	if llIn <= llOut {
		t.Errorf("ictal line length %g should exceed background %g", llIn, llOut)
	}
}

func TestColumnAndSelect(t *testing.T) {
	rec := seizureRecording(t)
	sub, _ := rec.Slice(0, 60)
	m, err := Extract10(sub, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	col := m.Column(2)
	if len(col) != m.NumRows() {
		t.Fatal("column length mismatch")
	}
	sel, err := m.Select([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumFeatures() != 2 || sel.Names[0] != m.Names[2] {
		t.Error("Select mis-ordered")
	}
	for i := range sel.Rows {
		if sel.Rows[i][0] != m.Rows[i][2] || sel.Rows[i][1] != m.Rows[i][0] {
			t.Fatal("Select copied wrong values")
		}
	}
	if _, err := m.Select([]int{99}); err == nil {
		t.Error("out-of-range select should fail")
	}
}

func TestSliceRows(t *testing.T) {
	rec := seizureRecording(t)
	sub, _ := rec.Slice(0, 60)
	m, err := Extract10(sub, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.SliceRows(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 15 {
		t.Errorf("rows = %d", s.NumRows())
	}
	if &s.Rows[0][0] != &m.Rows[5][0] {
		t.Error("SliceRows should share backing rows")
	}
	if _, err := m.SliceRows(-1, 5); err == nil {
		t.Error("negative lo should fail")
	}
	if _, err := m.SliceRows(5, 5); err == nil {
		t.Error("empty slice should fail")
	}
	if _, err := m.SliceRows(0, 1000); err == nil {
		t.Error("hi beyond rows should fail")
	}
}

func TestLabels(t *testing.T) {
	rec := seizureRecording(t)
	m, err := Extract10(rec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	labels := Labels(m, rec.Seizures)
	if len(labels) != m.NumRows() {
		t.Fatal("label length mismatch")
	}
	// Seizure spans [120, 180): window starting at 140 is fully inside.
	if !labels[140] {
		t.Error("window 140 should be labeled seizure")
	}
	if labels[50] || labels[250] {
		t.Error("background windows should not be labeled seizure")
	}
	// Boundary: window starting 118 overlaps [120,122) = 2 s of 4 s -> labeled.
	if !labels[118] {
		t.Error("half-overlapping window should be labeled seizure")
	}
	if labels[115] {
		t.Error("window with 1 s overlap should not be labeled")
	}
	count := 0
	for _, l := range labels {
		if l {
			count++
		}
	}
	if count < 55 || count > 62 {
		t.Errorf("%d seizure windows for a 60 s seizure, want ≈58", count)
	}
}

func TestExtractionOnCatalogRecord(t *testing.T) {
	// End-to-end sanity: the chb02 outlier record extracts cleanly and the
	// artifact region carries extreme feature values.
	p, err := chbmit.PatientByID("chb02")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.SeizureRecord(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	sz := rec.Seizures[0]
	lo := math.Max(0, sz.Start-900)
	hi := math.Min(rec.Duration(), sz.End+300)
	sub, err := rec.Slice(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Extract10(sub, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() < 1000 {
		t.Errorf("rows = %d", m.NumRows())
	}
	// Delta power column should have strong positive outliers relative to
	// its median somewhere (seizure or artifact).
	col := m.Column(2)
	med := stats.Median(col)
	if stats.Max(col) < 10*math.Max(med, 1e-12) {
		t.Error("expected extreme delta-power excursions in an outlier record")
	}
}
