package features

import (
	"math"
	"testing"

	"selflearn/internal/synth"
)

func TestStreamerMatchesBatchExactly(t *testing.T) {
	rec, err := synth.Generate(synth.RecordConfig{
		PatientID:  "chb01",
		RecordID:   "stream",
		Seed:       77,
		Duration:   60,
		Background: synth.DefaultBackground(),
		Seizures: []synth.SeizureEvent{
			{Start: 20, Duration: 15, Config: synth.DefaultSeizure()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Extract10(rec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := StreamRecording(rec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if streamed.NumRows() != batch.NumRows() {
		t.Fatalf("streamed %d rows vs batch %d", streamed.NumRows(), batch.NumRows())
	}
	for i := range batch.Rows {
		for f := range batch.Rows[i] {
			if batch.Rows[i][f] != streamed.Rows[i][f] {
				t.Fatalf("row %d feature %d: stream %g vs batch %g",
					i, f, streamed.Rows[i][f], batch.Rows[i][f])
			}
		}
	}
}

func TestStreamerEmissionTiming(t *testing.T) {
	st, err := NewStreamer(256, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	for i := 0; i < 10*256; i++ {
		_, ready, err := st.Push(math.Sin(float64(i)/5), math.Cos(float64(i)/5))
		if err != nil {
			t.Fatal(err)
		}
		if ready {
			emitted++
			// First emission after exactly one full window (1024
			// samples), then every 256 samples.
			wantAt := 1024 + (emitted-1)*256
			if i+1 != wantAt {
				t.Fatalf("emission %d at sample %d, want %d", emitted, i+1, wantAt)
			}
		}
	}
	if emitted != 7 { // (2560-1024)/256+1
		t.Errorf("emitted %d rows in 10 s, want 7", emitted)
	}
	if st.RowsEmitted() != emitted {
		t.Error("RowsEmitted out of sync")
	}
}

func TestStreamerReset(t *testing.T) {
	st, err := NewStreamer(256, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		if _, _, err := st.Push(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	st.Reset()
	if st.RowsEmitted() != 0 {
		t.Error("reset should clear the row count")
	}
	// After reset, needs a full window again before emitting.
	count := 0
	for i := 0; i < 1023; i++ {
		_, ready, err := st.Push(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ready {
			count++
		}
	}
	if count != 0 {
		t.Error("no row should emit before a full window after reset")
	}
}

func TestNewStreamerErrors(t *testing.T) {
	if _, err := NewStreamer(0, DefaultConfig()); err == nil {
		t.Error("fs=0 should fail")
	}
	bad := DefaultConfig()
	bad.Level = 0
	if _, err := NewStreamer(256, bad); err == nil {
		t.Error("bad config should fail")
	}
}

func TestStreamRecordingErrors(t *testing.T) {
	rec, err := synth.Generate(synth.RecordConfig{
		PatientID: "p", RecordID: "r", Seed: 1, Duration: 2,
		Background: synth.DefaultBackground(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StreamRecording(rec, DefaultConfig()); err == nil {
		t.Error("2 s recording (shorter than a window) should fail")
	}
}
