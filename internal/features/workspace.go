package features

import (
	"fmt"
	"math"

	"selflearn/internal/dsp/spectrum"
	"selflearn/internal/dsp/wavelet"
	"selflearn/internal/dsp/window"
	"selflearn/internal/entropy"
	"selflearn/internal/stats"
)

// Workspace owns every buffer the per-window feature extractors need:
// the periodogram workspace (memoized Hann table + FFT buffer), the
// wavelet workspace (analysis filters + ping-pong decomposition
// buffers, including the PadPow2 copy), reusable decompositions, and
// the entropy scratch (ordinal tally, histogram, sorted-template
// index). After the first window it allocates nothing — the Go
// equivalent of the wearable firmware's fixed preallocated memory map —
// which is what keeps the serving hot path (features.Streamer →
// forest.FlatForest) allocation-free in steady state.
//
// A Workspace is bound to one sampling rate and window length and is
// not safe for concurrent use; give each stream its own.
type Workspace struct {
	fs  float64
	cfg Config
	win int

	spec       *spectrum.Workspace
	psd0, psd1 spectrum.PSD

	wl      *wavelet.Workspace
	dec     wavelet.Decomposition // level cfg.Level subband decomposition
	dec3    wavelet.Decomposition // separate level-3 pass when cfg.Level < 3
	approx3 []float64             // level-3 approximation for the 54-bank

	ent entropy.Workspace

	d1, d2 []float64 // Hjorth derivative scratch
}

// NewWorkspace builds a feature-extraction workspace for sampling rate
// fs. Buffers are sized on first use and reused for the workspace's
// lifetime.
func NewWorkspace(fs float64, cfg Config) (*Workspace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fs <= 0 {
		return nil, fmt.Errorf("features: invalid sampling rate %g", fs)
	}
	win := cfg.Window.SamplesPerWindow(fs)
	if win <= 0 {
		return nil, fmt.Errorf("features: degenerate window of %d samples at %g Hz", win, fs)
	}
	spec, err := spectrum.NewWorkspace(win, fs, window.Hann)
	if err != nil {
		return nil, err
	}
	return &Workspace{
		fs:   fs,
		cfg:  cfg,
		win:  win,
		spec: spec,
		wl:   cfg.Wavelet.NewWorkspace(),
	}, nil
}

// decompose pads w to a power of two and decomposes it to level into d,
// reusing d's buffers (the workspace form of the batch extractors'
// per-window decomposition).
func (ws *Workspace) decompose(d *wavelet.Decomposition, w []float64, level int) error {
	padded := ws.wl.PadPow2(w)
	if max := wavelet.MaxLevel(len(padded)); level > max {
		return fmt.Errorf("features: window of %d samples cannot reach DWT level %d", len(padded), level)
	}
	return ws.wl.DecomposeInto(d, padded, level)
}

// Features10Into appends the paper's 10 features for one aligned pair
// of channel windows to dst and returns the extended slice. With
// cap(dst) >= len(dst)+10 it allocates nothing.
func (ws *Workspace) Features10Into(dst []float64, w0, w1 []float64) ([]float64, error) {
	cfg := ws.cfg
	if err := ws.spec.PeriodogramInto(&ws.psd0, w0); err != nil {
		return nil, err
	}
	if err := ws.spec.PeriodogramInto(&ws.psd1, w1); err != nil {
		return nil, err
	}
	if err := ws.decompose(&ws.dec, w1, cfg.Level); err != nil {
		return nil, err
	}
	pe5L7, err := ws.ent.Permutation(ws.dec.Detail(cfg.Level), 5)
	if err != nil {
		return nil, err
	}
	pe7L7, err := ws.ent.Permutation(ws.dec.Detail(cfg.Level), 7)
	if err != nil {
		return nil, err
	}
	pe7L6, err := ws.ent.Permutation(ws.dec.Detail(cfg.Level-1), 7)
	if err != nil {
		return nil, err
	}
	renyiL3, err := ws.ent.RenyiSignal(ws.dec.Detail(3), cfg.RenyiAlpha, cfg.RenyiBins)
	if err != nil {
		return nil, err
	}
	se02, err := ws.ent.SampleK(ws.dec.Detail(cfg.Level-1), cfg.SampleM, 0.2)
	if err != nil {
		return nil, err
	}
	se035, err := ws.ent.SampleK(ws.dec.Detail(cfg.Level-1), cfg.SampleM, 0.35)
	if err != nil {
		return nil, err
	}
	return append(dst,
		ws.psd0.BandPower(spectrum.Theta),
		ws.psd0.RelativeBandPower(spectrum.Theta),
		ws.psd0.BandPower(spectrum.Delta),
		ws.psd1.RelativeBandPower(spectrum.Theta),
		pe5L7,
		pe7L7,
		pe7L6,
		renyiL3,
		se02,
		se035,
	), nil
}

// Features54Into appends the 54-feature e-Glass bank of one channel
// window to dst and returns the extended slice. With cap(dst) >=
// len(dst)+54 it allocates nothing.
func (ws *Workspace) Features54Into(dst []float64, w []float64) ([]float64, error) {
	cfg := ws.cfg
	base := len(dst)
	out := dst

	// Time-domain statistics.
	mean := stats.Mean(w)
	variance := stats.Variance(w)
	out = append(out, mean, variance, stats.RMS(w), stats.Skewness(w), stats.Kurtosis(w))
	mn, mx := stats.Min(w), stats.Max(w)
	out = append(out, mn, mx, mx-mn, lineLength(w), float64(zeroCrossings(w)))

	// Hjorth parameters.
	act, mob, cpx := ws.hjorth(w)
	out = append(out, act, mob, cpx)

	// Spectral features.
	if err := ws.spec.PeriodogramInto(&ws.psd0, w); err != nil {
		return nil, err
	}
	psd := &ws.psd0
	for _, b := range clinicalBands {
		out = append(out, psd.BandPower(b))
	}
	for _, b := range clinicalBands {
		out = append(out, psd.RelativeBandPower(b))
	}
	out = append(out,
		psd.TotalPower(),
		spectrum.SpectralEdgeFrequency(psd, 0.95),
		spectrum.PeakFrequency(psd, 0.5),
		spectralEntropy(psd),
	)

	// DWT: when the target depth passes level 3, pause there to capture
	// the level-3 approximation (the coarse signal the sample-entropy
	// feature runs on) and extend the same decomposition — levels 1–3
	// would otherwise be recomputed by a second pass.
	if cfg.Level >= 3 {
		if err := ws.decompose(&ws.dec, w, 3); err != nil {
			return nil, err
		}
		ws.approx3 = append(ws.approx3[:0], ws.dec.Approx...)
		if err := ws.wl.ExtendInto(&ws.dec, cfg.Level); err != nil {
			return nil, err
		}
	} else {
		if err := ws.decompose(&ws.dec, w, cfg.Level); err != nil {
			return nil, err
		}
		if err := ws.decompose(&ws.dec3, w, 3); err != nil {
			return nil, err
		}
		ws.approx3 = append(ws.approx3[:0], ws.dec3.Approx...)
	}

	// Subband energies: absolute (canonical ordering lives in
	// AppendSubbandEnergies: details in level order, then the
	// approximation), then the same normalized — all zeros stay zeros,
	// matching RelativeSubbandEnergies.
	eBase := len(out)
	out = ws.dec.AppendSubbandEnergies(out)
	var eTot float64
	for _, e := range out[eBase:] {
		eTot += e
	}
	for i := eBase; i < eBase+cfg.Level+1; i++ {
		if eTot == 0 {
			out = append(out, out[i])
		} else {
			out = append(out, out[i]/eTot)
		}
	}

	// Nonlinear features.
	pe3, err := ws.ent.Permutation(w, 3)
	if err != nil {
		return nil, err
	}
	pe5, err := ws.ent.Permutation(w, 5)
	if err != nil {
		return nil, err
	}
	// Sample entropy on a coarse approximation (level-3) keeps the cost
	// quadratic in 128 rather than 1024 samples.
	seA3, err := ws.ent.SampleK(ws.approx3, cfg.SampleM, 0.2)
	if err != nil {
		return nil, err
	}
	renyi, err := ws.ent.RenyiSignal(w, cfg.RenyiAlpha, cfg.RenyiBins)
	if err != nil {
		return nil, err
	}
	shannon, err := ws.ent.ShannonSignal(w, cfg.RenyiBins)
	if err != nil {
		return nil, err
	}
	peL6, err := ws.ent.Permutation(ws.dec.Detail(minInt(6, cfg.Level)), 5)
	if err != nil {
		return nil, err
	}
	peL7, err := ws.ent.Permutation(ws.dec.Detail(cfg.Level), 7)
	if err != nil {
		return nil, err
	}
	renyiL3, err := ws.ent.RenyiSignal(ws.dec.Detail(3), cfg.RenyiAlpha, cfg.RenyiBins)
	if err != nil {
		return nil, err
	}
	seL602, err := ws.ent.SampleK(ws.dec.Detail(minInt(6, cfg.Level)), cfg.SampleM, 0.2)
	if err != nil {
		return nil, err
	}
	seL6035, err := ws.ent.SampleK(ws.dec.Detail(minInt(6, cfg.Level)), cfg.SampleM, 0.35)
	if err != nil {
		return nil, err
	}
	out = append(out, pe3, pe5, seA3, renyi, shannon,
		peL6, peL7, renyiL3, seL602, seL6035, teagerEnergy(w))

	if len(out)-base != 54 {
		return nil, fmt.Errorf("features: internal error, %d features instead of 54", len(out)-base)
	}
	return out, nil
}

// clinicalBands is evaluated once: spectrum.ClinicalBands returns a
// fresh slice per call, which the per-window loop must not pay for.
var clinicalBands = spectrum.ClinicalBands()

// hjorth returns the Hjorth activity, mobility and complexity
// parameters, reusing the workspace derivative buffers.
func (ws *Workspace) hjorth(w []float64) (activity, mobility, complexity float64) {
	activity = stats.Variance(w)
	if len(w) < 3 || activity == 0 {
		return activity, 0, 0
	}
	ws.d1 = diffInto(ws.d1, w)
	ws.d2 = diffInto(ws.d2, ws.d1)
	v1 := stats.Variance(ws.d1)
	v2 := stats.Variance(ws.d2)
	mobility = math.Sqrt(v1 / activity)
	if v1 == 0 {
		return activity, mobility, 0
	}
	complexity = math.Sqrt(v2/v1) / mobility
	return activity, mobility, complexity
}

func diffInto(dst, w []float64) []float64 {
	n := len(w) - 1
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := 1; i < len(w); i++ {
		dst[i-1] = w[i] - w[i-1]
	}
	return dst
}
