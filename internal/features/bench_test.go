package features

import (
	"testing"

	"selflearn/internal/signal"
	"selflearn/internal/synth"
)

// benchRecording synthesizes one minute of two-channel EEG with a
// seizure, the workload every per-window benchmark below extracts from.
func benchRecording(tb testing.TB) *signal.Recording {
	tb.Helper()
	rec, err := synth.Generate(synth.RecordConfig{
		PatientID:  "chb01",
		RecordID:   "bench",
		Seed:       7,
		Duration:   60,
		Background: synth.DefaultBackground(),
		Seizures: []synth.SeizureEvent{
			{Start: 20, Duration: 15, Config: synth.DefaultSeizure()},
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return rec
}

// TestStreamerPushZeroAlloc is the allocation-budget guard for the
// serving hot path's front half: once the first window has sized every
// workspace buffer, pushing samples — including the pushes that emit a
// feature row — must not allocate at all.
func TestStreamerPushZeroAlloc(t *testing.T) {
	rec := benchRecording(t)
	c0 := rec.Channel(signal.ChannelF7T3)
	c1 := rec.Channel(signal.ChannelF8T4)
	st, err := NewStreamer(rec.SampleRate, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: several windows size and stabilize all scratch buffers.
	pos := 0
	for emitted := 0; emitted < 8; {
		if _, ready, err := st.Push(c0[pos], c1[pos]); err != nil {
			t.Fatal(err)
		} else if ready {
			emitted++
		}
		pos++
	}
	hop := DefaultConfig().Window.HopSamples(rec.SampleRate)
	allocs := testing.AllocsPerRun(20, func() {
		// One full hop: exactly one emitted row per run.
		for i := 0; i < hop; i++ {
			if _, _, err := st.Push(c0[pos], c1[pos]); err != nil {
				t.Fatal(err)
			}
			pos++
			if pos == len(c0) {
				pos = len(c0) / 2 // stay inside the recording
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Streamer.Push steady state allocates %.1f objects per window, want 0", allocs)
	}
}

// TestExtract10AllocBudget pins the batch extractor's per-window cost
// to its unavoidable output: the returned feature row. Everything else
// runs out of the workspace.
func TestExtract10AllocBudget(t *testing.T) {
	rec := benchRecording(t)
	cfg := DefaultConfig()
	nWin := cfg.Window.NumWindows(rec.Samples(), rec.SampleRate)
	// One matrix + workspace warm-up run, then measure.
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Extract10(rec, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: one allocation per emitted row, plus a fixed workspace +
	// matrix overhead independent of the window count.
	budget := float64(nWin) + 64
	if allocs > budget {
		t.Fatalf("Extract10 allocates %.0f objects for %d windows (budget %.0f): the per-window path is allocating", allocs, nWin, budget)
	}
}

func BenchmarkStreamerPush(b *testing.B) {
	rec := benchRecording(b)
	c0 := rec.Channel(signal.ChannelF7T3)
	c1 := rec.Channel(signal.ChannelF8T4)
	st, err := NewStreamer(rec.SampleRate, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2048; i++ { // prime past the first window
		if _, _, err := st.Push(c0[i], c1[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	pos := 2048
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Push(c0[pos], c1[pos]); err != nil {
			b.Fatal(err)
		}
		pos++
		if pos == len(c0) {
			pos = len(c0) / 2
		}
	}
}

func BenchmarkExtract10(b *testing.B) {
	rec := benchRecording(b)
	cfg := DefaultConfig()
	nWin := cfg.Window.NumWindows(rec.Samples(), rec.SampleRate)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract10(rec, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(nWin), "windows/op")
}

func BenchmarkExtract54(b *testing.B) {
	rec := benchRecording(b)
	cfg := DefaultConfig()
	nWin := cfg.Window.NumWindows(rec.Samples(), rec.SampleRate)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract54(rec, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(nWin), "windows/op")
}
