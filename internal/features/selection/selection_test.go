package selection

import (
	"math/rand"
	"testing"
)

// syntheticData builds rows where feature 0 separates the classes
// strongly, feature 1 weakly, and the rest are noise.
func syntheticData(n, nf int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	labels := make([]bool, n)
	for i := range X {
		labels[i] = i%2 == 0
		row := make([]float64, nf)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		if labels[i] {
			row[0] += 6 // strong separation
			if nf > 1 {
				row[1] += 1.5 // weak separation
			}
		}
		X[i] = row
	}
	return X, labels
}

func TestFisherScoreSeparation(t *testing.T) {
	X, labels := syntheticData(400, 3, 1)
	col := func(f int) []float64 {
		out := make([]float64, len(X))
		for i := range X {
			out[i] = X[i][f]
		}
		return out
	}
	s0, err := FisherScore(col(0), labels)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := FisherScore(col(2), labels)
	if err != nil {
		t.Fatal(err)
	}
	if s0 < 10*s2 {
		t.Errorf("strong feature score %g should dwarf noise %g", s0, s2)
	}
}

func TestFisherScoreErrors(t *testing.T) {
	if _, err := FisherScore([]float64{1, 2}, []bool{true}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FisherScore([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("single-class labels should fail")
	}
}

func TestFisherScoreDegenerate(t *testing.T) {
	s, err := FisherScore([]float64{3, 3, 3, 3}, []bool{true, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("constant feature should score 0, got %g", s)
	}
}

func TestBackwardEliminationRanksInformativeFirst(t *testing.T) {
	X, labels := syntheticData(600, 6, 2)
	rank, err := BackwardElimination(X, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) != 6 {
		t.Fatalf("rank length %d", len(rank))
	}
	if rank[0] != 0 {
		t.Errorf("most relevant should be feature 0, got %d (rank %v)", rank[0], rank)
	}
	if rank[1] != 1 {
		t.Errorf("second most relevant should be feature 1, got %d (rank %v)", rank[1], rank)
	}
	seen := map[int]bool{}
	for _, f := range rank {
		if seen[f] {
			t.Fatalf("rank %v contains duplicates", rank)
		}
		seen[f] = true
	}
}

func TestBackwardEliminationErrors(t *testing.T) {
	if _, err := BackwardElimination(nil, nil); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := BackwardElimination([][]float64{{1}}, []bool{true, false}); err == nil {
		t.Error("row/label mismatch should fail")
	}
	if _, err := BackwardElimination([][]float64{{1, 2}, {1}}, []bool{true, false}); err == nil {
		t.Error("ragged matrix should fail")
	}
}

func TestTopK(t *testing.T) {
	X, labels := syntheticData(400, 8, 3)
	top, err := TopK(X, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0] != 0 {
		t.Errorf("TopK = %v", top)
	}
	all, err := TopK(X, labels, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Errorf("oversized k should clamp to %d, got %d", 8, len(all))
	}
	if _, err := TopK(X, labels, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestRedundantCopyEliminatedEarly(t *testing.T) {
	// Feature 2 is a near-copy of the informative feature 0; the
	// relevance-minus-redundancy criterion should rank the duplicate
	// below the weaker-but-complementary feature 1.
	rng := rand.New(rand.NewSource(7))
	n := 600
	X := make([][]float64, n)
	labels := make([]bool, n)
	for i := range X {
		labels[i] = i%2 == 0
		f0 := rng.NormFloat64()
		f1 := rng.NormFloat64()
		if labels[i] {
			f0 += 5
			f1 += 2.5
		}
		dup := f0 + 0.01*rng.NormFloat64()
		noise := rng.NormFloat64()
		X[i] = []float64{f0, f1, dup, noise}
	}
	rank, err := BackwardElimination(X, labels)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, f := range rank {
		pos[f] = i
	}
	// One of the twins {0, 2} must top the ranking; the other must fall
	// below the complementary feature 1.
	lo, hi := pos[0], pos[2]
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo != 0 {
		t.Errorf("one duplicate should rank first, got rank %v", rank)
	}
	if hi < pos[1] {
		t.Errorf("the redundant twin (rank position %d) should fall below feature 1 (position %d): %v",
			hi, pos[1], rank)
	}
}

func TestSingleFeature(t *testing.T) {
	X := [][]float64{{1}, {5}, {1.2}, {5.2}}
	labels := []bool{false, true, false, true}
	rank, err := BackwardElimination(X, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) != 1 || rank[0] != 0 {
		t.Errorf("rank = %v", rank)
	}
}
