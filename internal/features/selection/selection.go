// Package selection implements the backward-elimination feature ranking
// the paper uses (Section III-A, citing Devijver & Kittler) to sort
// features by relevance and keep the ten most relevant ones.
package selection

import (
	"errors"
	"fmt"
	"math"

	"selflearn/internal/stats"
)

// FisherScore returns the per-feature Fisher discriminant score
// (between-class separation over within-class scatter) of feature column
// f: (μ₁-μ₀)² / (σ₀²+σ₁²). Degenerate features score 0.
func FisherScore(col []float64, labels []bool) (float64, error) {
	if len(col) != len(labels) {
		return 0, fmt.Errorf("selection: %d values but %d labels", len(col), len(labels))
	}
	var pos, neg []float64
	for i, v := range col {
		if labels[i] {
			pos = append(pos, v)
		} else {
			neg = append(neg, v)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return 0, errors.New("selection: need both classes present")
	}
	den := stats.Variance(pos) + stats.Variance(neg)
	num := stats.Mean(pos) - stats.Mean(neg)
	if den == 0 {
		return 0, nil
	}
	return num * num / den, nil
}

// subsetCriterion scores a feature subset with a redundancy-discounted
// class-separability criterion (in the spirit of Devijver & Kittler):
// every feature contributes its Fisher score discounted by its strongest
// absolute correlation with another member of the subset,
//
//	J(S) = Σ_{f∈S} fisher(f) · (1 − max_{g∈S, g≠f} |corr_w(f, g)|),
//
// where corr_w is the pooled *within-class* correlation (class means
// removed), so that two features are only "redundant" when they share
// noise, not merely because both respond to the class label. A near-copy
// of an informative feature contributes almost nothing while its twin is
// present, so backward elimination drops duplicates before genuinely
// complementary features.
func subsetCriterion(fisher []float64, corr [][]float64, subset []int) float64 {
	var total float64
	for i, f := range subset {
		maxCorr := 0.0
		for j, g := range subset {
			if i == j {
				continue
			}
			if c := corr[f][g]; c > maxCorr {
				maxCorr = c
			}
		}
		total += fisher[f] * (1 - maxCorr)
	}
	return total
}

// BackwardElimination ranks the features of the matrix X (rows =
// observations, columns = features) by relevance to the binary labels.
// It repeatedly removes the feature whose removal costs the least
// criterion value; the removal order, reversed, is the relevance ranking
// (most relevant first).
func BackwardElimination(X [][]float64, labels []bool) ([]int, error) {
	if len(X) == 0 {
		return nil, errors.New("selection: empty matrix")
	}
	if len(X) != len(labels) {
		return nil, fmt.Errorf("selection: %d rows but %d labels", len(X), len(labels))
	}
	nf := len(X[0])
	for i, r := range X {
		if len(r) != nf {
			return nil, fmt.Errorf("selection: ragged row %d", i)
		}
	}
	// Column-major copy, z-scored so scale differences don't bias the
	// criterion.
	cols := make([][]float64, nf)
	for f := 0; f < nf; f++ {
		col := make([]float64, len(X))
		for i := range X {
			col[i] = X[i][f]
		}
		stats.ZScoreInPlace(col)
		cols[f] = col
	}
	// Precompute per-feature Fisher scores and the pairwise |correlation|
	// matrix once; backward elimination then only recombines them.
	fisher := make([]float64, nf)
	for f := range cols {
		s, err := FisherScore(cols[f], labels)
		if err != nil {
			return nil, err
		}
		fisher[f] = s
	}
	// Within-class residuals: subtract the per-class mean from every
	// column so the correlation below measures shared noise rather than
	// shared response to the label.
	resid := make([][]float64, nf)
	for f := range cols {
		r := append([]float64(nil), cols[f]...)
		var mPos, mNeg float64
		var nPos, nNeg int
		for i, v := range r {
			if labels[i] {
				mPos += v
				nPos++
			} else {
				mNeg += v
				nNeg++
			}
		}
		if nPos > 0 {
			mPos /= float64(nPos)
		}
		if nNeg > 0 {
			mNeg /= float64(nNeg)
		}
		for i := range r {
			if labels[i] {
				r[i] -= mPos
			} else {
				r[i] -= mNeg
			}
		}
		resid[f] = r
	}
	corr := make([][]float64, nf)
	for i := range corr {
		corr[i] = make([]float64, nf)
	}
	for i := 0; i < nf; i++ {
		for j := i + 1; j < nf; j++ {
			c := math.Abs(stats.Correlation(resid[i], resid[j]))
			if math.IsNaN(c) {
				c = 0
			}
			corr[i][j], corr[j][i] = c, c
		}
	}
	remaining := make([]int, nf)
	for i := range remaining {
		remaining[i] = i
	}
	var removed []int
	for len(remaining) > 1 {
		bestIdx, bestScore := -1, math.Inf(-1)
		for i := range remaining {
			subset := make([]int, 0, len(remaining)-1)
			subset = append(subset, remaining[:i]...)
			subset = append(subset, remaining[i+1:]...)
			score := subsetCriterion(fisher, corr, subset)
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		removed = append(removed, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	removed = append(removed, remaining[0])
	// Reverse: last removed = most relevant.
	rank := make([]int, len(removed))
	for i, f := range removed {
		rank[len(removed)-1-i] = f
	}
	return rank, nil
}

// TopK runs BackwardElimination and returns the k most relevant feature
// indices in relevance order.
func TopK(X [][]float64, labels []bool, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("selection: invalid k %d", k)
	}
	rank, err := BackwardElimination(X, labels)
	if err != nil {
		return nil, err
	}
	if k > len(rank) {
		k = len(rank)
	}
	return rank[:k], nil
}
