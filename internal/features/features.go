// Package features extracts the paper's feature sets from EEG recordings.
//
// Two banks are provided:
//
//   - The 10-feature set of Section III-A, used by the a-posteriori
//     labeling algorithm: frequency-band powers from electrode pair F7T3
//     and relative theta power plus DWT-subband entropies from electrode
//     pair F8T4, all computed over 4 s windows with 75 % overlap.
//
//   - A 54-features-per-electrode-pair bank in the style of the e-Glass
//     real-time detector (Sopic et al., reference [7]), used to train the
//     supervised random-forest classifier.
package features

import (
	"errors"
	"fmt"
	"math"

	"selflearn/internal/dsp/spectrum"
	"selflearn/internal/dsp/wavelet"
	"selflearn/internal/signal"
	"selflearn/internal/stats"
)

// Matrix is a time-ordered feature matrix: Rows[i][f] is feature f of
// analysis window i. Windows are spaced by Window.Hop().
type Matrix struct {
	Names      []string
	Rows       [][]float64
	Window     signal.WindowSpec
	SampleRate float64
}

// NumRows returns the number of analysis windows.
func (m *Matrix) NumRows() int { return len(m.Rows) }

// NumFeatures returns the number of features per window.
func (m *Matrix) NumFeatures() int { return len(m.Names) }

// TimeOf returns the start time in seconds of window row i.
func (m *Matrix) TimeOf(i int) float64 {
	return m.Window.WindowStart(i, m.SampleRate)
}

// RowsPerSecond returns how many rows cover one second (the inverse hop).
func (m *Matrix) RowsPerSecond() float64 {
	return 1 / m.Window.Hop().Seconds()
}

// Column extracts feature column f as a fresh slice.
func (m *Matrix) Column(f int) []float64 {
	out := make([]float64, len(m.Rows))
	for i, r := range m.Rows {
		out[i] = r[f]
	}
	return out
}

// Select returns a new Matrix keeping only the given feature columns.
func (m *Matrix) Select(cols []int) (*Matrix, error) {
	out := &Matrix{Window: m.Window, SampleRate: m.SampleRate}
	for _, c := range cols {
		if c < 0 || c >= m.NumFeatures() {
			return nil, fmt.Errorf("features: column %d out of range", c)
		}
		out.Names = append(out.Names, m.Names[c])
	}
	for _, r := range m.Rows {
		nr := make([]float64, len(cols))
		for j, c := range cols {
			nr[j] = r[c]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// SliceRows returns a view Matrix of rows [lo, hi).
func (m *Matrix) SliceRows(lo, hi int) (*Matrix, error) {
	if lo < 0 || hi > len(m.Rows) || lo >= hi {
		return nil, fmt.Errorf("features: row slice [%d, %d) outside %d rows", lo, hi, len(m.Rows))
	}
	return &Matrix{
		Names:      m.Names,
		Rows:       m.Rows[lo:hi],
		Window:     m.Window,
		SampleRate: m.SampleRate,
	}, nil
}

// PaperFeatureNames lists the 10 features retained by the paper's
// backward elimination, in extraction order.
func PaperFeatureNames() []string {
	return []string{
		"F7T3/theta_power",            // total theta band power
		"F7T3/theta_rel_power",        // relative theta band power
		"F7T3/delta_power",            // total delta band power
		"F8T4/theta_rel_power",        // relative theta band power
		"F8T4/perm_entropy_L7_n5",     // level-7 permutation entropy, n=5
		"F8T4/perm_entropy_L7_n7",     // level-7 permutation entropy, n=7
		"F8T4/perm_entropy_L6_n7",     // level-6 permutation entropy, n=7
		"F8T4/renyi_entropy_L3",       // level-3 Rényi entropy
		"F8T4/sample_entropy_L6_k020", // level-6 sample entropy, k=0.2
		"F8T4/sample_entropy_L6_k035", // level-6 sample entropy, k=0.35
	}
}

// Config controls extraction.
type Config struct {
	Window signal.WindowSpec
	// Wavelet used for subband entropies (db4 in the paper).
	Wavelet wavelet.Wavelet
	// Level of the DWT decomposition (7 in the paper).
	Level int
	// RenyiAlpha is the Rényi entropy order (2 = collision entropy).
	RenyiAlpha float64
	// RenyiBins is the histogram resolution for Rényi/Shannon entropy.
	RenyiBins int
	// SampleM is the sample-entropy template length.
	SampleM int
}

// DefaultConfig returns the paper's configuration: 4 s windows, 75 %
// overlap, db4 DWT to level 7.
func DefaultConfig() Config {
	return Config{
		Window:     signal.DefaultWindow(),
		Wavelet:    wavelet.DB4,
		Level:      7,
		RenyiAlpha: 2,
		RenyiBins:  16,
		SampleM:    2,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Window.Validate(); err != nil {
		return err
	}
	if c.Level < 1 {
		return fmt.Errorf("features: invalid DWT level %d", c.Level)
	}
	if c.RenyiAlpha <= 0 {
		return fmt.Errorf("features: invalid Rényi order %g", c.RenyiAlpha)
	}
	if c.RenyiBins <= 0 {
		return fmt.Errorf("features: invalid Rényi bins %d", c.RenyiBins)
	}
	if c.SampleM < 1 {
		return fmt.Errorf("features: invalid sample-entropy m %d", c.SampleM)
	}
	return nil
}

func requireTwoChannels(rec *signal.Recording) ([]float64, []float64, error) {
	if err := rec.Validate(); err != nil {
		return nil, nil, err
	}
	c0 := rec.Channel(signal.ChannelF7T3)
	c1 := rec.Channel(signal.ChannelF8T4)
	if c0 == nil || c1 == nil {
		return nil, nil, errors.New("features: recording must contain channels F7T3 and F8T4")
	}
	return c0, c1, nil
}

// Extract10 computes the paper's 10-feature matrix for rec.
func Extract10(rec *signal.Recording, cfg Config) (*Matrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c0, c1, err := requireTwoChannels(rec)
	if err != nil {
		return nil, err
	}
	fs := rec.SampleRate
	nWin := cfg.Window.NumWindows(rec.Samples(), fs)
	if nWin == 0 {
		return nil, fmt.Errorf("features: recording of %g s shorter than one window", rec.Duration())
	}
	m := &Matrix{
		Names:      PaperFeatureNames(),
		Window:     cfg.Window,
		SampleRate: fs,
		Rows:       make([][]float64, 0, nWin),
	}
	ws, err := NewWorkspace(fs, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nWin; i++ {
		w0, err := cfg.Window.Window(c0, i, fs)
		if err != nil {
			return nil, err
		}
		w1, err := cfg.Window.Window(c1, i, fs)
		if err != nil {
			return nil, err
		}
		row, err := ws.Features10Into(make([]float64, 0, 10), w0, w1)
		if err != nil {
			return nil, err
		}
		m.Rows = append(m.Rows, row)
	}
	return m, nil
}

// EGlassFeatureNames lists the 54 per-channel features of the extended
// bank, without channel prefix.
func EGlassFeatureNames() []string {
	names := []string{
		"mean", "variance", "rms", "skewness", "kurtosis",
		"min", "max", "peak_to_peak", "line_length", "zero_crossings",
		"hjorth_activity", "hjorth_mobility", "hjorth_complexity",
	}
	for _, b := range spectrum.ClinicalBands() {
		names = append(names, b.Name+"_power")
	}
	for _, b := range spectrum.ClinicalBands() {
		names = append(names, b.Name+"_rel_power")
	}
	names = append(names,
		"total_power", "sef95", "peak_freq", "spectral_entropy",
	)
	for l := 1; l <= 7; l++ {
		names = append(names, fmt.Sprintf("dwt_energy_L%d", l))
	}
	names = append(names, "dwt_energy_approx")
	for l := 1; l <= 7; l++ {
		names = append(names, fmt.Sprintf("dwt_rel_energy_L%d", l))
	}
	names = append(names, "dwt_rel_energy_approx",
		"perm_entropy_n3", "perm_entropy_n5",
		"sample_entropy_A3_k020", "renyi_entropy", "shannon_entropy",
		"perm_entropy_L6_n5", "perm_entropy_L7_n7", "renyi_entropy_L3",
		"sample_entropy_L6_k020", "sample_entropy_L6_k035",
		"teager_energy",
	)
	return names
}

// Extract54 computes the extended 54-features-per-channel matrix (108
// columns for the two electrode pairs), used to train the supervised
// real-time detector.
func Extract54(rec *signal.Recording, cfg Config) (*Matrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c0, c1, err := requireTwoChannels(rec)
	if err != nil {
		return nil, err
	}
	fs := rec.SampleRate
	nWin := cfg.Window.NumWindows(rec.Samples(), fs)
	if nWin == 0 {
		return nil, fmt.Errorf("features: recording of %g s shorter than one window", rec.Duration())
	}
	base := EGlassFeatureNames()
	m := &Matrix{Window: cfg.Window, SampleRate: fs, Rows: make([][]float64, 0, nWin)}
	for _, ch := range []string{signal.ChannelF7T3, signal.ChannelF8T4} {
		for _, n := range base {
			m.Names = append(m.Names, ch+"/"+n)
		}
	}
	ws, err := NewWorkspace(fs, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nWin; i++ {
		w0, err := cfg.Window.Window(c0, i, fs)
		if err != nil {
			return nil, err
		}
		w1, err := cfg.Window.Window(c1, i, fs)
		if err != nil {
			return nil, err
		}
		row, err := ws.Features54Into(make([]float64, 0, 108), w0)
		if err != nil {
			return nil, err
		}
		row, err = ws.Features54Into(row, w1)
		if err != nil {
			return nil, err
		}
		m.Rows = append(m.Rows, row)
	}
	return m, nil
}

// lineLength is the summed absolute first difference, a classic seizure
// feature.
func lineLength(w []float64) float64 {
	var s float64
	for i := 1; i < len(w); i++ {
		s += math.Abs(w[i] - w[i-1])
	}
	return s
}

// zeroCrossings counts sign changes around the window mean.
func zeroCrossings(w []float64) int {
	if len(w) == 0 {
		return 0
	}
	m := stats.Mean(w)
	count := 0
	prev := w[0] - m
	for _, v := range w[1:] {
		cur := v - m
		if (prev < 0 && cur >= 0) || (prev >= 0 && cur < 0) {
			count++
		}
		prev = cur
	}
	return count
}

// spectralEntropy is the Shannon entropy of the normalized PSD.
func spectralEntropy(p *spectrum.PSD) float64 {
	var tot float64
	for _, v := range p.Power {
		tot += v
	}
	if tot == 0 {
		return 0
	}
	var h float64
	for _, v := range p.Power {
		if v > 0 {
			q := v / tot
			h -= q * math.Log(q)
		}
	}
	return h
}

// teagerEnergy is the mean Teager–Kaiser nonlinear energy.
func teagerEnergy(w []float64) float64 {
	if len(w) < 3 {
		return 0
	}
	var s float64
	for i := 1; i < len(w)-1; i++ {
		s += w[i]*w[i] - w[i-1]*w[i+1]
	}
	return s / float64(len(w)-2)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Labels assigns a binary label to every row of m given the annotated
// seizure intervals: a window is labeled seizure (true) when at least
// half of it overlaps a seizure.
func Labels(m *Matrix, seizures []signal.Interval) []bool {
	out := make([]bool, m.NumRows())
	winLen := m.Window.Length.Seconds()
	for i := range out {
		start := m.TimeOf(i)
		w := signal.Interval{Start: start, End: start + winLen}
		var overlap float64
		for _, s := range seizures {
			overlap += w.Overlap(s)
		}
		out[i] = overlap >= winLen/2
	}
	return out
}
