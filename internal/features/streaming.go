package features

import (
	"errors"
	"fmt"

	"selflearn/internal/signal"
)

// Streamer computes the paper's 10-feature rows sample by sample, the
// way the wearable's firmware does: two synchronized channel streams
// feed ring buffers of one analysis window (4 s); every hop (1 s) a
// feature row is emitted. Feeding an entire recording through a Streamer
// yields exactly the matrix Extract10 computes in batch.
type Streamer struct {
	cfg        Config
	fs         float64
	winSamples int
	hopSamples int
	buf0, buf1 []float64 // ring buffers, winSamples long
	pos        int       // next write slot
	filled     int       // samples buffered so far (caps at winSamples)
	sinceEmit  int       // samples since the last emitted row
	rows       int       // rows emitted
	scratch0   []float64
	scratch1   []float64
	ws         *Workspace
	row        []float64 // reused emission buffer, 10 wide
}

// NewStreamer builds a streaming extractor for sampling rate fs.
func NewStreamer(fs float64, cfg Config) (*Streamer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fs <= 0 {
		return nil, fmt.Errorf("features: invalid sampling rate %g", fs)
	}
	win := cfg.Window.SamplesPerWindow(fs)
	hop := cfg.Window.HopSamples(fs)
	if win <= 0 || hop <= 0 {
		return nil, fmt.Errorf("features: degenerate window %d/%d at %g Hz", win, hop, fs)
	}
	ws, err := NewWorkspace(fs, cfg)
	if err != nil {
		return nil, err
	}
	return &Streamer{
		cfg:        cfg,
		fs:         fs,
		winSamples: win,
		hopSamples: hop,
		buf0:       make([]float64, win),
		buf1:       make([]float64, win),
		scratch0:   make([]float64, win),
		scratch1:   make([]float64, win),
		ws:         ws,
		row:        make([]float64, 0, 10),
	}, nil
}

// RowsEmitted returns how many feature rows have been produced.
func (s *Streamer) RowsEmitted() int { return s.rows }

// NumFeatures returns the width of every emitted feature row, so
// consumers sizing storage for rows derive it rather than assume it.
func (s *Streamer) NumFeatures() int { return len(PaperFeatureNames()) }

// Push feeds one synchronized sample pair (F7T3, F8T4). When a full
// window boundary is reached it returns the freshly computed feature row
// and ready = true; otherwise row is nil.
//
// The returned row is the Streamer's reusable emission buffer: it is
// valid until the next emitted row, and callers that retain rows must
// copy them. Together with the Workspace underneath, this keeps the
// steady-state push path completely allocation-free.
//
//selflearn:hotpath
func (s *Streamer) Push(v0, v1 float64) (row []float64, ready bool, err error) {
	s.buf0[s.pos] = v0
	s.buf1[s.pos] = v1
	s.pos = (s.pos + 1) % s.winSamples
	if s.filled < s.winSamples {
		s.filled++
		if s.filled == s.winSamples {
			// First complete window.
			return s.emit()
		}
		return nil, false, nil
	}
	s.sinceEmit++
	if s.sinceEmit == s.hopSamples {
		return s.emit()
	}
	return nil, false, nil
}

// emit linearizes the rings into scratch buffers and computes the row
// into the reusable emission buffer.
func (s *Streamer) emit() ([]float64, bool, error) {
	// Oldest sample sits at s.pos.
	n := copy(s.scratch0, s.buf0[s.pos:])
	copy(s.scratch0[n:], s.buf0[:s.pos])
	n = copy(s.scratch1, s.buf1[s.pos:])
	copy(s.scratch1[n:], s.buf1[:s.pos])
	row, err := s.ws.Features10Into(s.row[:0], s.scratch0, s.scratch1)
	if err != nil {
		return nil, false, err
	}
	s.row = row
	s.sinceEmit = 0
	s.rows++
	return row, true, nil
}

// Reset clears the stream state.
func (s *Streamer) Reset() {
	s.pos, s.filled, s.sinceEmit, s.rows = 0, 0, 0, 0
}

// StreamRecording pushes an entire recording through a fresh Streamer and
// collects the emitted rows into a Matrix; it is the streaming
// counterpart of Extract10 and produces an identical result.
func StreamRecording(rec *signal.Recording, cfg Config) (*Matrix, error) {
	c0, c1, err := requireTwoChannels(rec)
	if err != nil {
		return nil, err
	}
	st, err := NewStreamer(rec.SampleRate, cfg)
	if err != nil {
		return nil, err
	}
	if len(c0) < st.winSamples {
		return nil, errors.New("features: recording shorter than one window")
	}
	m := &Matrix{
		Names:      PaperFeatureNames(),
		Window:     cfg.Window,
		SampleRate: rec.SampleRate,
	}
	for i := range c0 {
		row, ready, err := st.Push(c0[i], c1[i])
		if err != nil {
			return nil, err
		}
		if ready {
			// Push reuses its emission buffer; retained rows are copied.
			m.Rows = append(m.Rows, append([]float64(nil), row...))
		}
	}
	return m, nil
}
