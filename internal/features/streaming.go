package features

import (
	"errors"
	"fmt"

	"selflearn/internal/signal"
)

// Streamer computes the paper's 10-feature rows sample by sample, the
// way the wearable's firmware does: two synchronized channel streams
// feed ring buffers of one analysis window (4 s); every hop (1 s) a
// feature row is emitted. Feeding an entire recording through a Streamer
// yields exactly the matrix Extract10 computes in batch.
type Streamer struct {
	cfg        Config
	fs         float64
	winSamples int
	hopSamples int
	buf0, buf1 []float64 // ring buffers, winSamples long
	pos        int       // next write slot
	filled     int       // samples buffered so far (caps at winSamples)
	sinceEmit  int       // samples since the last emitted row
	rows       int       // rows emitted
	scratch0   []float64
	scratch1   []float64
}

// NewStreamer builds a streaming extractor for sampling rate fs.
func NewStreamer(fs float64, cfg Config) (*Streamer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fs <= 0 {
		return nil, fmt.Errorf("features: invalid sampling rate %g", fs)
	}
	win := cfg.Window.SamplesPerWindow(fs)
	hop := cfg.Window.HopSamples(fs)
	if win <= 0 || hop <= 0 {
		return nil, fmt.Errorf("features: degenerate window %d/%d at %g Hz", win, hop, fs)
	}
	return &Streamer{
		cfg:        cfg,
		fs:         fs,
		winSamples: win,
		hopSamples: hop,
		buf0:       make([]float64, win),
		buf1:       make([]float64, win),
		scratch0:   make([]float64, win),
		scratch1:   make([]float64, win),
	}, nil
}

// RowsEmitted returns how many feature rows have been produced.
func (s *Streamer) RowsEmitted() int { return s.rows }

// Push feeds one synchronized sample pair (F7T3, F8T4). When a full
// window boundary is reached it returns the freshly computed feature row
// and ready = true; otherwise row is nil.
func (s *Streamer) Push(v0, v1 float64) (row []float64, ready bool, err error) {
	s.buf0[s.pos] = v0
	s.buf1[s.pos] = v1
	s.pos = (s.pos + 1) % s.winSamples
	if s.filled < s.winSamples {
		s.filled++
		if s.filled == s.winSamples {
			// First complete window.
			return s.emit()
		}
		return nil, false, nil
	}
	s.sinceEmit++
	if s.sinceEmit == s.hopSamples {
		return s.emit()
	}
	return nil, false, nil
}

// emit linearizes the rings into scratch buffers and computes the row.
func (s *Streamer) emit() ([]float64, bool, error) {
	// Oldest sample sits at s.pos.
	n := copy(s.scratch0, s.buf0[s.pos:])
	copy(s.scratch0[n:], s.buf0[:s.pos])
	n = copy(s.scratch1, s.buf1[s.pos:])
	copy(s.scratch1[n:], s.buf1[:s.pos])
	row, err := windowFeatures10(s.scratch0, s.scratch1, s.fs, s.cfg)
	if err != nil {
		return nil, false, err
	}
	s.sinceEmit = 0
	s.rows++
	return row, true, nil
}

// Reset clears the stream state.
func (s *Streamer) Reset() {
	s.pos, s.filled, s.sinceEmit, s.rows = 0, 0, 0, 0
}

// StreamRecording pushes an entire recording through a fresh Streamer and
// collects the emitted rows into a Matrix; it is the streaming
// counterpart of Extract10 and produces an identical result.
func StreamRecording(rec *signal.Recording, cfg Config) (*Matrix, error) {
	c0, c1, err := requireTwoChannels(rec)
	if err != nil {
		return nil, err
	}
	st, err := NewStreamer(rec.SampleRate, cfg)
	if err != nil {
		return nil, err
	}
	if len(c0) < st.winSamples {
		return nil, errors.New("features: recording shorter than one window")
	}
	m := &Matrix{
		Names:      PaperFeatureNames(),
		Window:     cfg.Window,
		SampleRate: rec.SampleRate,
	}
	for i := range c0 {
		row, ready, err := st.Push(c0[i], c1[i])
		if err != nil {
			return nil, err
		}
		if ready {
			m.Rows = append(m.Rows, row)
		}
	}
	return m, nil
}
