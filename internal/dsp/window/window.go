// Package window provides the taper functions applied before spectral
// estimation (periodogram / Welch) in the feature-extraction front end.
package window

import "math"

// Func identifies a window (taper) function.
type Func int

// Supported window functions.
const (
	Rectangular Func = iota
	Hann
	Hamming
	Blackman
)

// String returns the conventional name of the window function.
func (f Func) String() string {
	switch f {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients for f. It returns nil
// when n <= 0. For n == 1 all windows degenerate to [1].
func Coefficients(f Func, n int) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	den := float64(n - 1)
	for i := range w {
		x := float64(i) / den
		switch f {
		case Hann:
			w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*x)
		case Hamming:
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*x)
		case Blackman:
			w[i] = 0.42 - 0.5*math.Cos(2*math.Pi*x) + 0.08*math.Cos(4*math.Pi*x)
		default:
			w[i] = 1
		}
	}
	return w
}

// Apply multiplies xs element-wise by window f and returns a new slice.
func Apply(f Func, xs []float64) []float64 {
	w := Coefficients(f, len(xs))
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * w[i]
	}
	return out
}

// Power returns the mean squared coefficient of window f at length n,
// used to correct PSD estimates for the power lost to tapering.
func Power(f Func, n int) float64 {
	w := Coefficients(f, n)
	if w == nil {
		return 0
	}
	var s float64
	for _, v := range w {
		s += v * v
	}
	return s / float64(n)
}
