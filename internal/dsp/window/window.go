// Package window provides the taper functions applied before spectral
// estimation (periodogram / Welch) in the feature-extraction front end.
package window

import (
	"math"
	"sync"
)

// Func identifies a window (taper) function.
type Func int

// Supported window functions.
const (
	Rectangular Func = iota
	Hann
	Hamming
	Blackman
)

// String returns the conventional name of the window function.
func (f Func) String() string {
	switch f {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients for f. It returns nil
// when n <= 0. For n == 1 all windows degenerate to [1].
func Coefficients(f Func, n int) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	den := float64(n - 1)
	for i := range w {
		x := float64(i) / den
		switch f {
		case Hann:
			w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*x)
		case Hamming:
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*x)
		case Blackman:
			w[i] = 0.42 - 0.5*math.Cos(2*math.Pi*x) + 0.08*math.Cos(4*math.Pi*x)
		default:
			w[i] = 1
		}
	}
	return w
}

// cached holds one memoized coefficient table and its mean squared
// coefficient. The feature extractor evaluates the same taper at the
// same window length for every analysis window, so the cosine table is
// computed once per (function, length) for the life of the process.
type cached struct {
	coeffs []float64
	power  float64
}

var coeffCache sync.Map // cacheKey -> *cached

type cacheKey struct {
	f Func
	n int
}

func lookup(f Func, n int) *cached {
	key := cacheKey{f, n}
	if c, ok := coeffCache.Load(key); ok {
		return c.(*cached)
	}
	w := Coefficients(f, n)
	c := &cached{coeffs: w}
	if w != nil {
		var s float64
		for _, v := range w {
			s += v * v
		}
		c.power = s / float64(n)
	}
	actual, _ := coeffCache.LoadOrStore(key, c)
	return actual.(*cached)
}

// Cached returns the memoized coefficient table for window f at length
// n. The slice is shared across callers and must not be modified; use
// Coefficients for a private copy.
func Cached(f Func, n int) []float64 {
	return lookup(f, n).coeffs
}

// Apply multiplies xs element-wise by window f and returns a new slice.
func Apply(f Func, xs []float64) []float64 {
	w := Cached(f, len(xs))
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * w[i]
	}
	return out
}

// Power returns the mean squared coefficient of window f at length n,
// used to correct PSD estimates for the power lost to tapering.
func Power(f Func, n int) float64 {
	return lookup(f, n).power
}
