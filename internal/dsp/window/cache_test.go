package window

import (
	"sync"
	"testing"
)

// TestCachedMatchesCoefficients checks the memoized table against a
// fresh computation for every window function at several lengths.
func TestCachedMatchesCoefficients(t *testing.T) {
	for _, f := range []Func{Rectangular, Hann, Hamming, Blackman} {
		for _, n := range []int{1, 2, 64, 512, 1024} {
			want := Coefficients(f, n)
			got := Cached(f, n)
			if len(got) != len(want) {
				t.Fatalf("%v n=%d: len %d vs %d", f, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v n=%d [%d]: %g vs %g", f, n, i, got[i], want[i])
				}
			}
			// The memo must be stable across calls (same backing array).
			again := Cached(f, n)
			if len(again) > 0 && &again[0] != &got[0] {
				t.Fatalf("%v n=%d: cache returned a different table on the second call", f, n)
			}
			// Power must agree with the direct definition.
			var s float64
			for _, v := range want {
				s += v * v
			}
			if p := Power(f, n); p != s/float64(n) {
				t.Fatalf("%v n=%d: Power %g, want %g", f, n, p, s/float64(n))
			}
		}
	}
	if Cached(Hann, 0) != nil {
		t.Fatal("Cached(n=0) should be nil")
	}
	if Power(Hann, 0) != 0 {
		t.Fatal("Power(n=0) should be 0")
	}
}

// TestCachedConcurrent hammers the memo from many goroutines; run with
// -race this pins the sync.Map publication safety.
func TestCachedConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				n := 100 + (g+i)%7
				w := Cached(Hann, n)
				if len(w) != n {
					t.Errorf("len = %d, want %d", len(w), n)
					return
				}
				_ = Power(Blackman, n)
			}
		}(g)
	}
	wg.Wait()
}
