package window

import (
	"math"
	"testing"
)

func TestApplyLengthAndScaling(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 1}
	out := Apply(Hann, xs)
	if len(out) != len(xs) {
		t.Fatal("length change")
	}
	if math.Abs(out[0]) > 1e-12 || math.Abs(out[4]) > 1e-12 {
		t.Error("hann endpoints should zero the signal")
	}
	if math.Abs(out[2]-1) > 1e-12 {
		t.Error("hann midpoint should pass the signal")
	}
}

func TestRectangularIsIdentity(t *testing.T) {
	xs := []float64{3, -1, 4}
	out := Apply(Rectangular, xs)
	for i := range xs {
		if out[i] != xs[i] {
			t.Fatal("rectangular window must not alter samples")
		}
	}
}

func TestPower(t *testing.T) {
	if p := Power(Rectangular, 16); math.Abs(p-1) > 1e-12 {
		t.Errorf("rectangular power = %g, want 1", p)
	}
	// Hann mean square tends to 3/8 for large n.
	if p := Power(Hann, 4096); math.Abs(p-0.375) > 1e-3 {
		t.Errorf("hann power = %g, want ≈0.375", p)
	}
	if Power(Hann, 0) != 0 {
		t.Error("n=0 power should be 0")
	}
}

func TestCoefficientsEdgeCases(t *testing.T) {
	if Coefficients(Hamming, -1) != nil {
		t.Error("negative n should be nil")
	}
	w := Coefficients(Func(42), 4)
	for _, v := range w {
		if v != 1 {
			t.Error("unknown func should fall back to rectangular")
		}
	}
}

func TestAllWindowsPeakNearUnity(t *testing.T) {
	for _, f := range []Func{Rectangular, Hann, Hamming, Blackman} {
		w := Coefficients(f, 65)
		max := 0.0
		for _, v := range w {
			if v > max {
				max = v
			}
		}
		if max < 0.99 || max > 1.01 {
			t.Errorf("%v peak = %g, want ≈1", f, max)
		}
	}
}
