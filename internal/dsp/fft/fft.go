// Package fft implements an iterative radix-2 fast Fourier transform used
// by the spectral feature extractors. Only power-of-two lengths are
// supported; callers zero-pad (see NextPow2) when needed.
package fft

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrNotPow2 is returned when the input length is not a power of two.
var ErrNotPow2 = errors.New("fft: length must be a power of two")

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Forward computes the in-place forward DFT of x:
//
//	X[k] = Σ_n x[n]·exp(-2πi·kn/N)
//
// The length of x must be a power of two.
//
//selflearn:hotpath
func Forward(x []complex128) error {
	return transform(x, false)
}

// Inverse computes the in-place inverse DFT of x, including the 1/N
// scaling, so Inverse(Forward(x)) == x up to rounding.
func Inverse(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPow2(n) {
		return ErrNotPow2
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := cmplx.Rect(1, ang)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return nil
}

// ForwardReal computes the DFT of a real signal, zero-padding to the next
// power of two. It returns the full complex spectrum of the padded length.
func ForwardReal(xs []float64) ([]complex128, error) {
	n := NextPow2(len(xs))
	buf := make([]complex128, n)
	for i, v := range xs {
		buf[i] = complex(v, 0)
	}
	if err := Forward(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Magnitudes returns |X[k]| for the first n/2+1 bins (the one-sided
// spectrum of a real signal).
func Magnitudes(spec []complex128) []float64 {
	if len(spec) == 0 {
		return nil
	}
	half := len(spec)/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		out[i] = cmplx.Abs(spec[i])
	}
	return out
}
