package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naive DFT for cross-validation.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Rect(1, ang)
		}
		out[k] = s
	}
	return out
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestForwardRejectsNonPow2(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err != ErrNotPow2 {
		t.Errorf("want ErrNotPow2, got %v", err)
	}
}

func TestForwardEmptyOK(t *testing.T) {
	if err := Forward(nil); err != nil {
		t.Errorf("empty input should be a no-op, got %v", err)
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := dftNaive(x)
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := append([]complex128(nil), x...)
	if err := Forward(y); err != nil {
		t.Fatal(err)
	}
	if err := Inverse(y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-10 {
			t.Fatalf("round-trip mismatch at %d: %v vs %v", i, y[i], x[i])
		}
	}
}

func TestSingleToneBin(t *testing.T) {
	const n = 128
	const bin = 10
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*bin*float64(i)/n), 0)
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	// Energy concentrated in bins +bin and n-bin, each of magnitude n/2.
	if math.Abs(cmplx.Abs(x[bin])-n/2) > 1e-9 {
		t.Errorf("|X[%d]| = %g, want %g", bin, cmplx.Abs(x[bin]), float64(n)/2)
	}
	for k := 0; k < n; k++ {
		if k == bin || k == n-bin {
			continue
		}
		if cmplx.Abs(x[k]) > 1e-8 {
			t.Fatalf("leakage at bin %d: %g", k, cmplx.Abs(x[k]))
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (uint(rng.Intn(6)) + 1)
		x := make([]complex128, n)
		var timeE float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			timeE += real(x[i]) * real(x[i])
		}
		if err := Forward(x); err != nil {
			return false
		}
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(timeE-freqE/float64(n)) < 1e-6*math.Max(1, timeE)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 32
		a, b := make([]complex128, n), make([]complex128, n)
		sum := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			sum[i] = a[i] + b[i]
		}
		Forward(a)
		Forward(b)
		Forward(sum)
		for i := range sum {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForwardReal(t *testing.T) {
	spec, err := ForwardReal([]float64{1, 0, 0}) // pads to 4
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 4 {
		t.Fatalf("padded length = %d, want 4", len(spec))
	}
	// Impulse has flat spectrum.
	for k, v := range spec {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse spectrum bin %d = %v, want 1", k, v)
		}
	}
}

func TestMagnitudes(t *testing.T) {
	spec := []complex128{3 + 4i, 0, 1, 0}
	m := Magnitudes(spec)
	if len(m) != 3 {
		t.Fatalf("one-sided length = %d, want 3", len(m))
	}
	if math.Abs(m[0]-5) > 1e-12 {
		t.Errorf("m[0] = %g, want 5", m[0])
	}
	if Magnitudes(nil) != nil {
		t.Error("Magnitudes(nil) should be nil")
	}
}

func TestHermitianSymmetryOfRealSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	spec, err := ForwardReal(xs)
	if err != nil {
		t.Fatal(err)
	}
	n := len(spec)
	for k := 1; k < n/2; k++ {
		if cmplx.Abs(spec[k]-cmplx.Conj(spec[n-k])) > 1e-9 {
			t.Fatalf("Hermitian symmetry violated at bin %d", k)
		}
	}
}
