package fft

import (
	"math"
	"math/rand"
	"testing"
)

func TestPlanMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 4, 8, 64, 256, 1024} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		if p.Len() != n {
			t.Fatalf("Len() = %d, want %d", p.Len(), n)
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := append([]complex128(nil), x...)
		if err := Forward(want); err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), x...)
		if err := p.Forward(got); err != nil {
			t.Fatal(err)
		}
		for k := range got {
			if d := cAbs(got[k] - want[k]); d > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: plan %v vs Forward %v (|Δ|=%g)", n, k, got[k], want[k], d)
			}
		}
	}
}

func TestPlanRejectsBadLength(t *testing.T) {
	if _, err := NewPlan(12); err == nil {
		t.Fatal("NewPlan(12) should fail")
	}
	p, err := NewPlan(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Forward(make([]complex128, 4)); err == nil {
		t.Fatal("Forward with wrong length should fail")
	}
}

func TestRealPlanPowerSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 8, 128, 512, 1024} {
		rp, err := NewRealPlan(n)
		if err != nil {
			t.Fatalf("NewRealPlan(%d): %v", n, err)
		}
		if rp.Len() != n || rp.NumBins() != n/2+1 {
			t.Fatalf("n=%d: Len=%d NumBins=%d", n, rp.Len(), rp.NumBins())
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		full := make([]complex128, n)
		for i, v := range xs {
			full[i] = complex(v, 0)
		}
		if err := Forward(full); err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, n/2+1)
		got, err := rp.PowerSpectrumInto(dst, xs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n/2+1 {
			t.Fatalf("n=%d: got %d bins", n, len(got))
		}
		for k := 0; k <= n/2; k++ {
			want := real(full[k])*real(full[k]) + imag(full[k])*imag(full[k])
			if d := math.Abs(got[k] - want); d > 1e-8*(1+want)*float64(n) {
				t.Fatalf("n=%d bin %d: got %g want %g", n, k, got[k], want)
			}
		}
	}
}

func TestRealPlanRejectsBadLength(t *testing.T) {
	if _, err := NewRealPlan(6); err == nil {
		t.Fatal("NewRealPlan(6) should fail")
	}
	if _, err := NewRealPlan(1); err == nil {
		t.Fatal("NewRealPlan(1) should fail")
	}
	rp, err := NewRealPlan(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.PowerSpectrumInto(make([]float64, 5), make([]float64, 4)); err == nil {
		t.Fatal("PowerSpectrumInto with wrong length should fail")
	}
}

func cAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

func BenchmarkPlanForward1024(b *testing.B) {
	p, _ := NewPlan(1024)
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%17), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Forward(x)
	}
}

func BenchmarkRealPlanPower1024(b *testing.B) {
	rp, _ := NewRealPlan(1024)
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = float64(i % 17)
	}
	dst := make([]float64, rp.NumBins())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = rp.PowerSpectrumInto(dst, xs)
	}
}
