package fft

import (
	"fmt"
	"math/cmplx"
)

// Plan owns the precomputed tables of a fixed-size transform: the
// bit-reversal permutation and one twiddle factor per butterfly stage
// position. The generic Forward recomputes every twiddle with a serial
// complex multiplication (w *= wStep), which chains a 6-flop dependency
// through every butterfly; table lookups break that chain and halve the
// multiply count, which is where the streaming feature extractor spends
// most of its FFT time. A Plan is immutable after construction and safe
// for concurrent use.
type Plan struct {
	n   int
	rev []int32      // bit-reversal permutation
	tw  []complex128 // stage twiddles: size 2, 4, ..., n concatenated
}

// NewPlan builds transform tables for length n (a power of two).
func NewPlan(n int) (*Plan, error) {
	if !IsPow2(n) {
		return nil, ErrNotPow2
	}
	p := &Plan{n: n, rev: make([]int32, n)}
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		p.rev[i] = int32(j)
	}
	p.tw = make([]complex128, 0, n-1)
	for size := 2; size <= n; size <<= 1 {
		ang := -2 * pi / float64(size)
		for k := 0; k < size/2; k++ {
			p.tw = append(p.tw, cmplx.Rect(1, ang*float64(k)))
		}
	}
	return p, nil
}

// Len returns the transform length the plan was built for.
func (p *Plan) Len() int { return p.n }

// Forward computes the in-place forward DFT of x, which must be exactly
// the planned length. It allocates nothing.
//
//selflearn:hotpath
func (p *Plan) Forward(x []complex128) error {
	n := p.n
	if len(x) != n {
		return fmt.Errorf("fft: plan sized for %d points, got %d", n, len(x))
	}
	rev := p.rev
	for i := 1; i < n; i++ {
		j := int(rev[i])
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	p.butterflies(x)
	return nil
}

// butterflies runs the stage loop over already bit-reversed data. The
// first two stages use only the trivial twiddles 1 and −i, so they are
// folded into one radix-4-style pass with no multiplies; later stages
// special-case k = 0 (twiddle exactly 1) and read the rest from the
// table.
//
//selflearn:hotpath
func (p *Plan) butterflies(x []complex128) {
	n := p.n
	if n >= 4 {
		for s := 0; s+4 <= n; s += 4 {
			q := x[s : s+4 : s+4]
			a, b, c, d := q[0], q[1], q[2], q[3]
			s0, d0 := a+b, a-b
			s1, d1 := c+d, c-d
			// twiddle −i on the odd lane of the size-4 stage
			t1 := complex(imag(d1), -real(d1))
			q[0] = s0 + s1
			q[2] = s0 - s1
			q[1] = d0 + t1
			q[3] = d0 - t1
		}
	} else if n == 2 {
		a, b := x[0], x[1]
		x[0], x[1] = a+b, a-b
	}
	tw := p.tw
	off := 3 // skip the size-2 and size-4 twiddle rows (1 + 2 entries)
	for size := 8; size <= n; size <<= 1 {
		half := size >> 1
		stage := tw[off : off+half]
		for start := 0; start < n; start += size {
			a := x[start : start+half : start+half]
			b := x[start+half : start+size : start+size]
			// k = 0: twiddle is exactly 1
			t := b[0]
			u := a[0]
			a[0] = u + t
			b[0] = u - t
			for k := 1; k < half; k++ {
				t := b[k] * stage[k]
				u := a[k]
				a[k] = u + t
				b[k] = u - t
			}
		}
		off += half
	}
}

const pi = 3.141592653589793

// RealPlan computes one-sided power spectra of real signals of a fixed
// power-of-two length n: the n-point real input is packed into an
// n/2-point complex transform and unpacked with one twiddle rotation per
// bin — a little over twice as fast as running the full complex
// transform on zero imaginary parts, which is what the periodogram
// workspace used to do. A RealPlan owns a scratch buffer and is NOT safe
// for concurrent use; give each workspace its own.
type RealPlan struct {
	n    int
	half *Plan
	w    []complex128 // e^{-2πik/n}, k = 0..n/4
	z    []complex128 // packed half-length buffer
}

// NewRealPlan builds a real-input plan for length n (a power of two,
// at least 2).
func NewRealPlan(n int) (*RealPlan, error) {
	if !IsPow2(n) || n < 2 {
		return nil, ErrNotPow2
	}
	half, err := NewPlan(n / 2)
	if err != nil {
		return nil, err
	}
	p := &RealPlan{n: n, half: half, z: make([]complex128, n/2)}
	p.w = make([]complex128, n/4+1)
	ang := -2 * pi / float64(n)
	for k := range p.w {
		p.w[k] = cmplx.Rect(1, ang*float64(k))
	}
	return p, nil
}

// Len returns the real signal length the plan was built for.
func (p *RealPlan) Len() int { return p.n }

// NumBins returns the number of one-sided spectrum bins (n/2 + 1).
func (p *RealPlan) NumBins() int { return p.n/2 + 1 }

// PowerSpectrumInto writes the squared DFT magnitudes |X[k]|² of the
// real signal xs into dst for k = 0..n/2 and returns dst[:n/2+1].
// len(xs) must equal the planned length and cap(dst) must be at least
// n/2+1. It allocates nothing.
//
//selflearn:hotpath
func (p *RealPlan) PowerSpectrumInto(dst []float64, xs []float64) ([]float64, error) {
	n := p.n
	if len(xs) != n {
		return nil, fmt.Errorf("fft: real plan sized for %d points, got %d", n, len(xs))
	}
	m := n / 2
	z := p.z
	// Pack adjacent sample pairs straight into bit-reversed positions,
	// so the transform skips its permutation pass entirely.
	rev := p.half.rev
	z[0] = complex(xs[0], xs[1])
	for i := 1; i < m; i++ {
		z[rev[i]] = complex(xs[2*i], xs[2*i+1])
	}
	p.half.butterflies(z)
	dst = dst[:m+1]
	// DC and Nyquist bins are real-valued combinations of Z[0].
	re0, im0 := real(z[0]), imag(z[0])
	dc := re0 + im0
	ny := re0 - im0
	dst[0] = dc * dc
	dst[m] = ny * ny
	// Unpack X[k] = E[k] + w[k]·O[k] with E[k] = (Z[k]+conj(Z[m−k]))/2,
	// O[k] = (Z[k]−conj(Z[m−k]))/(2i). The twiddle table covers k ≤ n/4;
	// the mirror bin m−k reuses w[k] via the conjugate-symmetry of the
	// unpack, so each loop iteration finishes two bins.
	for k := 1; k <= m/2; k++ {
		zk, zmk := z[k], z[m-k]
		erE := 0.5 * (real(zk) + real(zmk))
		eiE := 0.5 * (imag(zk) - imag(zmk))
		orE := 0.5 * (imag(zk) + imag(zmk))
		oiE := 0.5 * (real(zmk) - real(zk))
		wr, wi := real(p.w[k]), imag(p.w[k])
		// X[k] = E + w·O
		tr := wr*orE - wi*oiE
		ti := wr*oiE + wi*orE
		xr := erE + tr
		xi := eiE + ti
		dst[k] = xr*xr + xi*xi
		if k != m-k {
			// X[m−k] = conj(E) − conj(w·O)… derived directly: with
			// E' = (Z[m−k]+conj(Z[k]))/2 = conj(E) and
			// O' = (Z[m−k]−conj(Z[k]))/(2i) = −conj(O), and
			// w[m−k] = −conj(w[k]):  X[m−k] = conj(E) − conj(w)·conj(O)
			// = conj(E + w·O − 2i·Im(w·O))… simplest exact form below.
			yr := erE - tr
			yi := -eiE + ti
			dst[m-k] = yr*yr + yi*yi
		}
	}
	return dst, nil
}
