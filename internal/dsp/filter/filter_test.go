package filter

import (
	"math"
	"testing"
)

func sine(freq, fs float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * freq * float64(i) / fs)
	}
	return xs
}

// steady-state RMS of the second half of a filtered signal.
func tailRMS(xs []float64) float64 {
	tail := xs[len(xs)/2:]
	var s float64
	for _, x := range tail {
		s += x * x
	}
	return math.Sqrt(s / float64(len(tail)))
}

func TestLowpassAttenuatesHighFrequency(t *testing.T) {
	const fs = 256.0
	lp, err := NewLowpass(fs, 10)
	if err != nil {
		t.Fatal(err)
	}
	pass := tailRMS(lp.Process(sine(2, fs, 2048)))
	lp.Reset()
	stop := tailRMS(lp.Process(sine(80, fs, 2048)))
	if pass < 0.5 {
		t.Errorf("passband RMS %g too low", pass)
	}
	if stop > 0.05*pass {
		t.Errorf("stopband RMS %g not attenuated relative to passband %g", stop, pass)
	}
}

func TestHighpassAttenuatesDrift(t *testing.T) {
	const fs = 256.0
	hp, err := NewHighpass(fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// DC input should decay to ~0.
	dc := make([]float64, 2048)
	for i := range dc {
		dc[i] = 5
	}
	out := hp.Process(dc)
	if r := tailRMS(out); r > 0.05 {
		t.Errorf("DC tail RMS %g, want ~0", r)
	}
	hp.Reset()
	if r := tailRMS(hp.Process(sine(20, fs, 2048))); r < 0.5 {
		t.Errorf("20 Hz should pass a 1 Hz highpass, RMS %g", r)
	}
}

func TestBandpassSelectsBand(t *testing.T) {
	const fs = 256.0
	bp, err := NewBandpass(fs, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := tailRMS(bp.Process(sine(6, fs, 4096)))
	bp.Reset()
	out := tailRMS(bp.Process(sine(60, fs, 4096)))
	if out >= in/3 {
		t.Errorf("60 Hz RMS %g should be well below 6 Hz RMS %g", out, in)
	}
}

func TestNotchRemovesPowerLine(t *testing.T) {
	const fs = 256.0
	notch, err := NewNotch(fs, 50, 30)
	if err != nil {
		t.Fatal(err)
	}
	line := tailRMS(notch.Process(sine(50, fs, 8192)))
	notch.Reset()
	eeg := tailRMS(notch.Process(sine(6, fs, 8192)))
	if line > 0.05 {
		t.Errorf("50 Hz after notch RMS %g, want ~0", line)
	}
	if eeg < 0.65 { // unit sine has RMS 1/√2 ≈ 0.707
		t.Errorf("6 Hz through 50 Hz notch RMS %g, want ≈0.707", eeg)
	}
}

func TestDesignErrors(t *testing.T) {
	if _, err := NewLowpass(0, 10); err == nil {
		t.Error("fs=0 should error")
	}
	if _, err := NewLowpass(256, 0); err == nil {
		t.Error("fc=0 should error")
	}
	if _, err := NewLowpass(256, 128); err == nil {
		t.Error("fc at Nyquist should error")
	}
	if _, err := NewBandpass(256, 10, 0); err == nil {
		t.Error("Q=0 should error")
	}
	if _, err := NewNotch(256, 50, -1); err == nil {
		t.Error("negative Q should error")
	}
	if _, err := NewBandLimiter(256, 30, 10); err == nil {
		t.Error("inverted band should error")
	}
	if _, err := NewBandLimiter(0, 1, 30); err == nil {
		t.Error("bad fs should error")
	}
}

func TestResponseMatchesMeasuredGain(t *testing.T) {
	const fs = 256.0
	lp, err := NewLowpass(fs, 15)
	if err != nil {
		t.Fatal(err)
	}
	c := Chain{lp}
	for _, f := range []float64{3, 15, 60} {
		lp.Reset()
		measured := tailRMS(c.Process(sine(f, fs, 8192))) * math.Sqrt2
		predicted := c.Response(fs, f)
		if math.Abs(measured-predicted) > 0.02 {
			t.Errorf("f=%g: measured gain %g, response %g", f, measured, predicted)
		}
	}
}

func TestButterworthHalfPowerAtCutoff(t *testing.T) {
	lp, err := NewLowpass(256, 20)
	if err != nil {
		t.Fatal(err)
	}
	g := Chain{lp}.Response(256, 20)
	if math.Abs(g-1/math.Sqrt2) > 0.01 {
		t.Errorf("gain at cutoff = %g, want 1/√2", g)
	}
	hp, err := NewHighpass(256, 20)
	if err != nil {
		t.Fatal(err)
	}
	g = Chain{hp}.Response(256, 20)
	if math.Abs(g-1/math.Sqrt2) > 0.01 {
		t.Errorf("highpass gain at cutoff = %g, want 1/√2", g)
	}
}

func TestChainProcessAndReset(t *testing.T) {
	c, err := NewBandLimiter(256, 0.5, 40)
	if err != nil {
		t.Fatal(err)
	}
	x := sine(6, 256, 1024)
	y1 := c.Process(x)
	c.Reset()
	y2 := c.Process(x)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("Reset should make Process deterministic")
		}
	}
}

func TestFiltFiltZeroPhase(t *testing.T) {
	const fs = 256.0
	c, err := NewBandLimiter(fs, 0.5, 30)
	if err != nil {
		t.Fatal(err)
	}
	x := sine(6, fs, 4096)
	y := FiltFilt(c, x)
	if len(y) != len(x) {
		t.Fatal("length change")
	}
	// Zero-phase: peak positions of the filtered passband tone align with
	// the input (compare in the middle to avoid edge transients).
	mid := len(x) / 2
	bestIn, bestOut := mid, mid
	for i := mid - 20; i < mid+20; i++ {
		if x[i] > x[bestIn] {
			bestIn = i
		}
		if y[i] > y[bestOut] {
			bestOut = i
		}
	}
	if d := bestIn - bestOut; d < -1 || d > 1 {
		t.Errorf("filtfilt phase shift of %d samples, want ~0", d)
	}
}

func TestFIRLowpass(t *testing.T) {
	const fs = 256.0
	fir, err := NewLowpassFIR(fs, 10, 65)
	if err != nil {
		t.Fatal(err)
	}
	pass := tailRMS(fir.Process(sine(2, fs, 2048)))
	fir.Reset()
	stop := tailRMS(fir.Process(sine(80, fs, 2048)))
	if stop > 0.02*pass {
		t.Errorf("FIR stopband %g vs passband %g", stop, pass)
	}
}

func TestFIRUnityDCGain(t *testing.T) {
	fir, err := NewLowpassFIR(256, 10, 33)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tap := range fir.Taps {
		sum += tap
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("tap sum = %g, want 1", sum)
	}
}

func TestFIREvenTapsPromoted(t *testing.T) {
	fir, err := NewLowpassFIR(256, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(fir.Taps)%2 != 1 {
		t.Errorf("tap count %d should be odd", len(fir.Taps))
	}
	if fir.GroupDelay() != len(fir.Taps)/2 {
		t.Error("group delay should be (taps-1)/2")
	}
}

func TestFIRErrors(t *testing.T) {
	if _, err := NewLowpassFIR(256, 10, 2); err == nil {
		t.Error("too few taps should error")
	}
	if _, err := NewLowpassFIR(256, 300, 33); err == nil {
		t.Error("cutoff above Nyquist should error")
	}
}

func TestFIRLinearPhaseSymmetry(t *testing.T) {
	fir, err := NewLowpassFIR(256, 25, 41)
	if err != nil {
		t.Fatal(err)
	}
	n := len(fir.Taps)
	for i := 0; i < n/2; i++ {
		if math.Abs(fir.Taps[i]-fir.Taps[n-1-i]) > 1e-12 {
			t.Fatalf("taps not symmetric at %d", i)
		}
	}
}

func TestButterworthCascadeOrder(t *testing.T) {
	const fs = 256.0
	lp4, err := NewButterworthLowpass(4, fs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp4) != 2 {
		t.Fatalf("order 4 should yield 2 sections, got %d", len(lp4))
	}
	// Butterworth property: -3 dB at the cutoff regardless of order.
	if g := lp4.Response(fs, 20); math.Abs(g-1/math.Sqrt2) > 0.01 {
		t.Errorf("4th-order gain at cutoff %g, want 1/√2", g)
	}
	// Roll-off steeper than 2nd order: at 2·fc, |H| ≈ (1/√(1+(2)^(2n))).
	lp2, err := NewButterworthLowpass(2, fs, 20)
	if err != nil {
		t.Fatal(err)
	}
	g2 := lp2.Response(fs, 40)
	g4 := lp4.Response(fs, 40)
	if g4 >= g2/2 {
		t.Errorf("4th order at 2fc (%g) should be far below 2nd order (%g)", g4, g2)
	}
	// Passband flatness.
	if g := lp4.Response(fs, 2); g < 0.99 {
		t.Errorf("passband gain %g", g)
	}
}

func TestButterworthHighpassCascade(t *testing.T) {
	const fs = 256.0
	hp4, err := NewButterworthHighpass(4, fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g := hp4.Response(fs, 1); math.Abs(g-1/math.Sqrt2) > 0.01 {
		t.Errorf("gain at cutoff %g, want 1/√2", g)
	}
	if g := hp4.Response(fs, 0.1); g > 0.01 {
		t.Errorf("deep stopband gain %g", g)
	}
	if g := hp4.Response(fs, 30); g < 0.99 {
		t.Errorf("passband gain %g", g)
	}
}

func TestButterworthOrderValidation(t *testing.T) {
	if _, err := NewButterworthLowpass(3, 256, 10); err == nil {
		t.Error("odd order should fail")
	}
	if _, err := NewButterworthLowpass(0, 256, 10); err == nil {
		t.Error("order 0 should fail")
	}
	if _, err := NewButterworthHighpass(5, 256, 10); err == nil {
		t.Error("odd order highpass should fail")
	}
	if _, err := NewButterworthLowpass(4, 256, 200); err == nil {
		t.Error("cutoff beyond Nyquist should fail")
	}
}

func TestBiquadStreamingEquivalence(t *testing.T) {
	// Chunked processing must equal one-shot processing (state carries).
	lp, err := NewLowpass(256, 12)
	if err != nil {
		t.Fatal(err)
	}
	x := sine(8, 256, 1000)
	oneShot := lp.Process(x)
	lp.Reset()
	var chunked []float64
	for i := 0; i < len(x); i += 97 {
		end := i + 97
		if end > len(x) {
			end = len(x)
		}
		chunked = append(chunked, lp.Process(x[i:end])...)
	}
	for i := range oneShot {
		if math.Abs(oneShot[i]-chunked[i]) > 1e-12 {
			t.Fatalf("streaming mismatch at %d", i)
		}
	}
}
