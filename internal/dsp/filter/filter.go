// Package filter provides IIR (Butterworth biquad) and FIR filters used to
// condition raw EEG: band-limiting before feature extraction, power-line
// notch removal, and zero-phase offline filtering for the a-posteriori
// analysis.
package filter

import (
	"errors"
	"fmt"
	"math"
)

// Biquad is a second-order IIR section in direct form II transposed:
//
//	y[n] = b0·x[n] + b1·x[n-1] + b2·x[n-2] - a1·y[n-1] - a2·y[n-2]
//
// with a0 normalized to 1.
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64
	z1, z2     float64
}

// Reset clears the filter state.
func (f *Biquad) Reset() { f.z1, f.z2 = 0, 0 }

// ProcessSample advances the filter by one input sample.
func (f *Biquad) ProcessSample(x float64) float64 {
	y := f.B0*x + f.z1
	f.z1 = f.B1*x - f.A1*y + f.z2
	f.z2 = f.B2*x - f.A2*y
	return y
}

// Process filters xs into a new slice, leaving the filter state updated so
// streaming callers can continue across chunk boundaries.
func (f *Biquad) Process(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = f.ProcessSample(x)
	}
	return out
}

func checkFreq(fs, fc float64) error {
	if fs <= 0 {
		return fmt.Errorf("filter: invalid sampling rate %g", fs)
	}
	if fc <= 0 || fc >= fs/2 {
		return fmt.Errorf("filter: cutoff %g Hz outside (0, %g)", fc, fs/2)
	}
	return nil
}

// NewLowpass designs a second-order Butterworth lowpass biquad with cutoff
// fc at sampling rate fs (RBJ audio-EQ cookbook bilinear design with
// Q = 1/√2).
func NewLowpass(fs, fc float64) (*Biquad, error) {
	if err := checkFreq(fs, fc); err != nil {
		return nil, err
	}
	w0 := 2 * math.Pi * fc / fs
	alpha := math.Sin(w0) / math.Sqrt2
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		B0: (1 - cosw) / 2 / a0,
		B1: (1 - cosw) / a0,
		B2: (1 - cosw) / 2 / a0,
		A1: -2 * cosw / a0,
		A2: (1 - alpha) / a0,
	}, nil
}

// NewHighpass designs a second-order Butterworth highpass biquad.
func NewHighpass(fs, fc float64) (*Biquad, error) {
	if err := checkFreq(fs, fc); err != nil {
		return nil, err
	}
	w0 := 2 * math.Pi * fc / fs
	alpha := math.Sin(w0) / math.Sqrt2
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		B0: (1 + cosw) / 2 / a0,
		B1: -(1 + cosw) / a0,
		B2: (1 + cosw) / 2 / a0,
		A1: -2 * cosw / a0,
		A2: (1 - alpha) / a0,
	}, nil
}

// NewBandpass designs a constant-peak-gain bandpass biquad centered at fc
// with quality factor q.
func NewBandpass(fs, fc, q float64) (*Biquad, error) {
	if err := checkFreq(fs, fc); err != nil {
		return nil, err
	}
	if q <= 0 {
		return nil, fmt.Errorf("filter: invalid Q %g", q)
	}
	w0 := 2 * math.Pi * fc / fs
	alpha := math.Sin(w0) / (2 * q)
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		B0: alpha / a0,
		B1: 0,
		B2: -alpha / a0,
		A1: -2 * cosw / a0,
		A2: (1 - alpha) / a0,
	}, nil
}

// NewNotch designs a notch biquad at fc (e.g. 50/60 Hz power-line
// interference) with quality factor q.
func NewNotch(fs, fc, q float64) (*Biquad, error) {
	if err := checkFreq(fs, fc); err != nil {
		return nil, err
	}
	if q <= 0 {
		return nil, fmt.Errorf("filter: invalid Q %g", q)
	}
	w0 := 2 * math.Pi * fc / fs
	alpha := math.Sin(w0) / (2 * q)
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		B0: 1 / a0,
		B1: -2 * cosw / a0,
		B2: 1 / a0,
		A1: -2 * cosw / a0,
		A2: (1 - alpha) / a0,
	}, nil
}

// Chain is a cascade of biquad sections applied in order.
type Chain []*Biquad

// Reset clears the state of every section.
func (c Chain) Reset() {
	for _, f := range c {
		f.Reset()
	}
}

// Process runs xs through every section in sequence.
func (c Chain) Process(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	for _, f := range c {
		out = f.Process(out)
	}
	return out
}

// NewBandLimiter builds the standard EEG conditioning chain: a highpass at
// low Hz to remove drift and a lowpass at high Hz to remove EMG/noise.
func NewBandLimiter(fs, low, high float64) (Chain, error) {
	if low >= high {
		return nil, fmt.Errorf("filter: band [%g, %g] is empty", low, high)
	}
	hp, err := NewHighpass(fs, low)
	if err != nil {
		return nil, err
	}
	lp, err := NewLowpass(fs, high)
	if err != nil {
		return nil, err
	}
	return Chain{hp, lp}, nil
}

// NewButterworthLowpass designs an order-n Butterworth lowpass as a
// cascade of second-order sections with the classic pole-pair Q values
// (Q_k = 1/(2·cos θ_k), θ_k the Butterworth pole angles). Order must be
// even (each biquad realizes one conjugate pole pair).
func NewButterworthLowpass(order int, fs, fc float64) (Chain, error) {
	if order < 2 || order%2 != 0 {
		return nil, fmt.Errorf("filter: order %d must be a positive even number", order)
	}
	if err := checkFreq(fs, fc); err != nil {
		return nil, err
	}
	var chain Chain
	n := order
	for k := 0; k < n/2; k++ {
		theta := math.Pi * float64(2*k+1) / float64(2*n)
		q := 1 / (2 * math.Cos(theta))
		w0 := 2 * math.Pi * fc / fs
		alpha := math.Sin(w0) / (2 * q)
		cosw := math.Cos(w0)
		a0 := 1 + alpha
		chain = append(chain, &Biquad{
			B0: (1 - cosw) / 2 / a0,
			B1: (1 - cosw) / a0,
			B2: (1 - cosw) / 2 / a0,
			A1: -2 * cosw / a0,
			A2: (1 - alpha) / a0,
		})
	}
	return chain, nil
}

// NewButterworthHighpass is the highpass counterpart of
// NewButterworthLowpass.
func NewButterworthHighpass(order int, fs, fc float64) (Chain, error) {
	if order < 2 || order%2 != 0 {
		return nil, fmt.Errorf("filter: order %d must be a positive even number", order)
	}
	if err := checkFreq(fs, fc); err != nil {
		return nil, err
	}
	var chain Chain
	n := order
	for k := 0; k < n/2; k++ {
		theta := math.Pi * float64(2*k+1) / float64(2*n)
		q := 1 / (2 * math.Cos(theta))
		w0 := 2 * math.Pi * fc / fs
		alpha := math.Sin(w0) / (2 * q)
		cosw := math.Cos(w0)
		a0 := 1 + alpha
		chain = append(chain, &Biquad{
			B0: (1 + cosw) / 2 / a0,
			B1: -(1 + cosw) / a0,
			B2: (1 + cosw) / 2 / a0,
			A1: -2 * cosw / a0,
			A2: (1 - alpha) / a0,
		})
	}
	return chain, nil
}

// FiltFilt applies the chain forward and backward for zero phase
// distortion. It is the offline filter used before a-posteriori labeling;
// state is reset before each pass.
func FiltFilt(c Chain, xs []float64) []float64 {
	c.Reset()
	fwd := c.Process(xs)
	reverse(fwd)
	c.Reset()
	back := c.Process(fwd)
	reverse(back)
	c.Reset()
	return back
}

func reverse(xs []float64) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Response returns the magnitude response of the chain at frequency f Hz
// for sampling rate fs.
func (c Chain) Response(fs, f float64) float64 {
	w := 2 * math.Pi * f / fs
	re, im := 1.0, 0.0
	for _, s := range c {
		// H(e^{jw}) = (b0 + b1 e^{-jw} + b2 e^{-2jw}) / (1 + a1 e^{-jw} + a2 e^{-2jw})
		c1, s1 := math.Cos(w), math.Sin(w)
		c2, s2 := math.Cos(2*w), math.Sin(2*w)
		numRe := s.B0 + s.B1*c1 + s.B2*c2
		numIm := -s.B1*s1 - s.B2*s2
		denRe := 1 + s.A1*c1 + s.A2*c2
		denIm := -s.A1*s1 - s.A2*s2
		den := denRe*denRe + denIm*denIm
		hRe := (numRe*denRe + numIm*denIm) / den
		hIm := (numIm*denRe - numRe*denIm) / den
		re, im = re*hRe-im*hIm, re*hIm+im*hRe
	}
	return math.Hypot(re, im)
}

// FIR is a finite impulse response filter defined by its tap vector.
type FIR struct {
	Taps []float64
	hist []float64
	pos  int
}

// NewLowpassFIR designs a windowed-sinc (Hamming) lowpass FIR with the
// given number of taps (made odd if even) and cutoff fc.
func NewLowpassFIR(fs, fc float64, taps int) (*FIR, error) {
	if err := checkFreq(fs, fc); err != nil {
		return nil, err
	}
	if taps < 3 {
		return nil, errors.New("filter: FIR needs at least 3 taps")
	}
	if taps%2 == 0 {
		taps++
	}
	h := make([]float64, taps)
	mid := taps / 2
	fcNorm := fc / fs
	var sum float64
	for i := range h {
		m := float64(i - mid)
		var v float64
		if m == 0 {
			v = 2 * fcNorm
		} else {
			v = math.Sin(2*math.Pi*fcNorm*m) / (math.Pi * m)
		}
		// Hamming taper.
		v *= 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = v
		sum += v
	}
	// Normalize to unity DC gain.
	for i := range h {
		h[i] /= sum
	}
	return &FIR{Taps: h, hist: make([]float64, taps)}, nil
}

// Reset clears the FIR delay line.
func (f *FIR) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
	f.pos = 0
}

// ProcessSample advances the FIR by one sample.
func (f *FIR) ProcessSample(x float64) float64 {
	f.hist[f.pos] = x
	var y float64
	idx := f.pos
	for _, t := range f.Taps {
		y += t * f.hist[idx]
		idx--
		if idx < 0 {
			idx = len(f.hist) - 1
		}
	}
	f.pos++
	if f.pos == len(f.hist) {
		f.pos = 0
	}
	return y
}

// Process filters xs into a new slice.
func (f *FIR) Process(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = f.ProcessSample(x)
	}
	return out
}

// GroupDelay returns the constant group delay of the (linear-phase) FIR in
// samples.
func (f *FIR) GroupDelay() int { return len(f.Taps) / 2 }
