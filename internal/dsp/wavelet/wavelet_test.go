package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allWavelets() []Wavelet { return []Wavelet{Haar, DB2, DB3, DB4, Sym4} }

func randomSignal(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func TestByName(t *testing.T) {
	for _, name := range []string{"haar", "db2", "db3", "db4", "sym4"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if w.Name() != name {
			t.Errorf("Name() = %q, want %q", w.Name(), name)
		}
	}
	if _, err := ByName("sym9"); err == nil {
		t.Error("unknown wavelet should error")
	}
}

func TestFilterCoefficientsSumToSqrt2(t *testing.T) {
	for _, w := range allWavelets() {
		var s float64
		for _, c := range w.scaling {
			s += c
		}
		if math.Abs(s-math.Sqrt2) > 1e-10 {
			t.Errorf("%s scaling filter sums to %.15f, want √2", w.Name(), s)
		}
	}
}

func TestOrthonormality(t *testing.T) {
	for _, w := range allWavelets() {
		if e := w.OrthonormalityError(); e > 1e-12 {
			t.Errorf("%s orthonormality error %g", w.Name(), e)
		}
	}
}

func TestForwardRejectsBadInput(t *testing.T) {
	if _, _, err := DB4.Forward(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, _, err := DB4.Forward(make([]float64, 7)); err != ErrOddLength {
		t.Error("odd input should return ErrOddLength")
	}
}

func TestSingleLevelRoundTrip(t *testing.T) {
	for _, w := range allWavelets() {
		for _, n := range []int{2, 4, 8, 64, 1024} {
			x := randomSignal(int64(n), n)
			a, d, err := w.Forward(x)
			if err != nil {
				t.Fatalf("%s n=%d: %v", w.Name(), n, err)
			}
			if len(a) != n/2 || len(d) != n/2 {
				t.Fatalf("%s n=%d: coefficient lengths %d/%d", w.Name(), n, len(a), len(d))
			}
			back, err := w.Inverse(a, d)
			if err != nil {
				t.Fatal(err)
			}
			for i := range x {
				if math.Abs(back[i]-x[i]) > 1e-10 {
					t.Fatalf("%s n=%d: round-trip mismatch at %d: %g vs %g",
						w.Name(), n, i, back[i], x[i])
				}
			}
		}
	}
}

func TestInverseErrors(t *testing.T) {
	if _, err := DB4.Inverse([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := DB4.Inverse(nil, nil); err == nil {
		t.Error("empty coefficients should error")
	}
}

func TestEnergyPreservation(t *testing.T) {
	// Orthonormal transform must preserve energy (Parseval).
	for _, w := range allWavelets() {
		x := randomSignal(99, 512)
		var eIn float64
		for _, v := range x {
			eIn += v * v
		}
		d, err := w.Decompose(x, 7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.TotalEnergy()-eIn) > 1e-8*eIn {
			t.Errorf("%s: subband energy %g, time energy %g", w.Name(), d.TotalEnergy(), eIn)
		}
	}
}

func TestMaxLevel(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 6: 1, 8: 3, 1024: 10, 1000: 3}
	for n, want := range cases {
		if got := MaxLevel(n); got != want {
			t.Errorf("MaxLevel(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDecomposeLevel7Shape(t *testing.T) {
	// The paper's configuration: a 4 s window at 256 Hz = 1024 samples,
	// decomposed to level 7 with db4.
	x := randomSignal(1, 1024)
	d, err := DB4.Decompose(x, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Levels() != 7 {
		t.Fatalf("Levels = %d, want 7", d.Levels())
	}
	wantLens := []int{512, 256, 128, 64, 32, 16, 8}
	for l := 1; l <= 7; l++ {
		if got := len(d.Detail(l)); got != wantLens[l-1] {
			t.Errorf("level %d detail length = %d, want %d", l, got, wantLens[l-1])
		}
	}
	if len(d.Approx) != 8 {
		t.Errorf("approx length = %d, want 8", len(d.Approx))
	}
	if d.Detail(0) != nil || d.Detail(8) != nil {
		t.Error("out-of-range Detail should return nil")
	}
}

func TestDecomposeErrors(t *testing.T) {
	x := randomSignal(2, 100) // 100 = 4·25, max level 2
	if _, err := DB4.Decompose(x, 0); err == nil {
		t.Error("level 0 should error")
	}
	if _, err := DB4.Decompose(x, 3); err == nil {
		t.Error("level beyond MaxLevel should error")
	}
	if _, err := DB4.Decompose(x, 2); err != nil {
		t.Errorf("level 2 on length 100 should work: %v", err)
	}
}

func TestMultilevelRoundTrip(t *testing.T) {
	for _, w := range allWavelets() {
		x := randomSignal(3, 256)
		d, err := w.Decompose(x, 5)
		if err != nil {
			t.Fatal(err)
		}
		back, err := w.Reconstruct(d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("%s: multilevel round-trip mismatch at %d", w.Name(), i)
			}
		}
	}
}

func TestReconstructErrors(t *testing.T) {
	if _, err := DB4.Reconstruct(nil); err == nil {
		t.Error("nil decomposition should error")
	}
	if _, err := DB4.Reconstruct(&Decomposition{}); err == nil {
		t.Error("empty decomposition should error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (uint(rng.Intn(5)) + 3) // 8..128
		level := 1 + rng.Intn(3)
		x := randomSignal(seed+1, n)
		d, err := DB4.Decompose(x, level)
		if err != nil {
			return false
		}
		back, err := DB4.Reconstruct(d)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstantSignalHasNoDetail(t *testing.T) {
	// All Daubechies wavelets have at least one vanishing moment, so a
	// constant signal produces zero detail coefficients.
	x := make([]float64, 64)
	for i := range x {
		x[i] = 3.25
	}
	for _, w := range allWavelets() {
		_, d, err := w.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range d {
			if math.Abs(v) > 1e-10 {
				t.Errorf("%s: detail[%d] = %g for constant input", w.Name(), i, v)
				break
			}
		}
	}
}

func TestLinearRampHasNoDetailForDB2Plus(t *testing.T) {
	// db2+ have two vanishing moments: linear signals vanish in the
	// detail band (away from the periodic wrap).
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5 * float64(i)
	}
	_, d, err := DB2.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	// Skip coefficients affected by the periodic boundary (last taps).
	for i := 1; i < len(d)-2; i++ {
		if math.Abs(d[i]) > 1e-9 {
			t.Errorf("db2 detail[%d] = %g for linear ramp", i, d[i])
			break
		}
	}
}

func TestSubbandEnergies(t *testing.T) {
	x := randomSignal(17, 256)
	d, err := DB4.Decompose(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	es := d.SubbandEnergies()
	if len(es) != 5 { // 4 detail levels + approx
		t.Fatalf("want 5 subband energies, got %d", len(es))
	}
	rel := d.RelativeSubbandEnergies()
	var sum float64
	for _, r := range rel {
		if r < 0 {
			t.Error("negative relative energy")
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("relative energies sum to %g, want 1", sum)
	}
}

func TestRelativeSubbandEnergiesZeroSignal(t *testing.T) {
	d, err := DB4.Decompose(make([]float64, 64), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range d.RelativeSubbandEnergies() {
		if r != 0 {
			t.Error("zero signal should give all-zero relative energies")
		}
	}
}

func TestHighFrequencyEnergyInFineDetail(t *testing.T) {
	// A Nyquist-rate alternation should put nearly all energy in the
	// level-1 detail band.
	n := 256
	x := make([]float64, n)
	for i := range x {
		if i%2 == 0 {
			x[i] = 1
		} else {
			x[i] = -1
		}
	}
	d, err := DB4.Decompose(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	rel := d.RelativeSubbandEnergies()
	if rel[0] < 0.9 {
		t.Errorf("level-1 detail should capture a Nyquist tone, got share %g", rel[0])
	}
}

func TestPadPow2(t *testing.T) {
	if got := PadPow2(nil); len(got) != 0 {
		t.Error("empty input unchanged")
	}
	in := []float64{1, 2, 3}
	out := PadPow2(in)
	if len(out) != 4 || out[3] != 3 {
		t.Errorf("PadPow2([1 2 3]) = %v, want [1 2 3 3]", out)
	}
	same := []float64{1, 2, 3, 4}
	if &PadPow2(same)[0] != &same[0] {
		t.Error("power-of-two input should be returned as-is")
	}
}
