package wavelet

import "fmt"

// Workspace owns the reusable state of multilevel decomposition: the
// analysis filters (derived once instead of per Forward call), two
// ping-pong approximation buffers, and a padding buffer. DecomposeInto
// then runs a full DWT with zero steady-state allocations, producing
// coefficients bit-identical to Decompose. A Workspace is not safe for
// concurrent use; give each streaming extractor its own.
type Workspace struct {
	w      Wavelet
	lo, hi []float64
	bufA   []float64
	bufB   []float64
	padded []float64
}

// NewWorkspace builds a decomposition workspace for the wavelet. Buffers
// grow on first use and are reused afterwards.
func (w Wavelet) NewWorkspace() *Workspace {
	return &Workspace{w: w, lo: w.decLo(), hi: w.decHi()}
}

// Wavelet returns the basis the workspace decomposes with.
func (ws *Workspace) Wavelet() Wavelet { return ws.w }

// PadPow2 right-pads xs with its final value up to the next power of
// two into the workspace's padding buffer, returning xs unchanged when
// it already is one. The returned slice is valid until the next PadPow2
// call.
//
//selflearn:hotpath
func (ws *Workspace) PadPow2(xs []float64) []float64 {
	n := len(xs)
	if n == 0 {
		return xs
	}
	p := 1
	for p < n {
		p <<= 1
	}
	if p == n {
		return xs
	}
	if cap(ws.padded) < p {
		ws.padded = make([]float64, p)
	}
	out := ws.padded[:p]
	copy(out, xs)
	last := xs[n-1]
	for i := n; i < p; i++ {
		out[i] = last
	}
	return out
}

// forwardInto is one analysis step into caller-owned buffers, the
// allocation-free core of Forward. The bulk of the outputs never wrap
// (base+m-1 < n), so the wrap check is hoisted out of the main loop;
// accumulation order is identical either way, keeping coefficients
// bit-identical to Forward.
func (ws *Workspace) forwardInto(approx, detail, x []float64) {
	h, g := ws.lo, ws.hi
	m := len(h)
	n := len(x)
	half := n / 2
	straight := (n - m) / 2 // largest count of outputs with base+m-1 <= n-1
	if straight < 0 {
		straight = 0
	}
	if straight > half {
		straight = half
	}
	if m == 8 {
		// Eight-tap analysis (db4/sym4, the serving configuration) with
		// the filter held in registers and the window load hoisted. The
		// accumulation order is exactly the generic loop's
		// (a += h[j]*v, ascending j), so coefficients stay bit-identical.
		h0, h1, h2, h3, h4, h5, h6, h7 := h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]
		g0, g1, g2, g3, g4, g5, g6, g7 := g[0], g[1], g[2], g[3], g[4], g[5], g[6], g[7]
		for i := 0; i < straight; i++ {
			win := x[2*i : 2*i+8 : 2*i+8]
			v0, v1, v2, v3 := win[0], win[1], win[2], win[3]
			v4, v5, v6, v7 := win[4], win[5], win[6], win[7]
			a := h0 * v0
			a += h1 * v1
			a += h2 * v2
			a += h3 * v3
			a += h4 * v4
			a += h5 * v5
			a += h6 * v6
			a += h7 * v7
			d := g0 * v0
			d += g1 * v1
			d += g2 * v2
			d += g3 * v3
			d += g4 * v4
			d += g5 * v5
			d += g6 * v6
			d += g7 * v7
			approx[i] = a
			detail[i] = d
		}
	} else {
		for i := 0; i < straight; i++ {
			var a, d float64
			win := x[2*i : 2*i+m]
			for j, v := range win {
				a += h[j] * v
				d += g[j] * v
			}
			approx[i] = a
			detail[i] = d
		}
	}
	for i := straight; i < half; i++ {
		var a, d float64
		base := 2 * i
		for j := 0; j < m; j++ {
			idx := base + j
			for idx >= n {
				idx -= n // periodic wrap
			}
			a += h[j] * x[idx]
			d += g[j] * x[idx]
		}
		approx[i] = a
		detail[i] = d
	}
}

func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// DecomposeInto performs a level-deep multilevel DWT of x into d,
// reusing d's coefficient slices when already sized. x is read-only.
// The result is bit-identical to Decompose. It seeds d with x as the
// level-0 approximation and delegates the descent to ExtendInto, so
// the analysis loop exists exactly once.
//
//selflearn:hotpath
func (ws *Workspace) DecomposeInto(d *Decomposition, x []float64, level int) error {
	if level < 1 {
		return fmt.Errorf("wavelet: invalid level %d", level)
	}
	if MaxLevel(len(x)) < level {
		return fmt.Errorf("wavelet: signal length %d does not support %d levels (max %d)",
			len(x), level, MaxLevel(len(x)))
	}
	d.Details = d.Details[:0]
	d.Approx = grow(d.Approx, len(x))
	copy(d.Approx, x)
	d.Wavelet = ws.w
	return ws.ExtendInto(d, level)
}

// ExtendInto deepens an existing decomposition in place from its
// current depth to level, reusing d's buffers. The appended detail
// levels and final approximation are bit-identical to a single
// DecomposeInto(d, x, level) — multilevel analysis always proceeds
// approximation-by-approximation — so a caller that needs an
// intermediate approximation can stop there, copy it, and extend.
func (ws *Workspace) ExtendInto(d *Decomposition, level int) error {
	have := len(d.Details)
	if level <= have {
		return nil
	}
	if MaxLevel(len(d.Approx)) < level-have {
		return fmt.Errorf("wavelet: approximation length %d does not support %d more levels (max %d)",
			len(d.Approx), level-have, MaxLevel(len(d.Approx)))
	}
	n := len(d.Approx)
	ws.bufA = grow(ws.bufA, n)
	ws.bufB = grow(ws.bufB, n/2)
	cur := ws.bufA[:n]
	copy(cur, d.Approx)
	next := ws.bufB
	if cap(d.Details) < level {
		details := make([][]float64, level)
		copy(details, d.Details)
		d.Details = details
	}
	d.Details = d.Details[:level]
	for l := have; l < level; l++ {
		half := len(cur) / 2
		d.Details[l] = grow(d.Details[l], half)
		ws.forwardInto(next[:half], d.Details[l], cur)
		cur, next = next[:half], cur
	}
	d.Approx = grow(d.Approx, len(cur))
	copy(d.Approx, cur)
	return nil
}
