// Package wavelet implements the orthogonal discrete wavelet transform
// (DWT) with periodic boundary handling. The paper decomposes each
// four-second EEG window to level seven with the Daubechies-4 (db4) basis
// and computes entropies on the resulting subbands.
package wavelet

import (
	"errors"
	"fmt"
	"math"
)

// Wavelet is an orthonormal wavelet defined by its scaling (lowpass
// reconstruction) filter.
type Wavelet struct {
	name    string
	scaling []float64
}

// Predefined Daubechies wavelets. The coefficient vectors are the
// orthonormal scaling filters (they sum to √2).
var (
	Haar = Wavelet{"haar", []float64{
		0.7071067811865476, 0.7071067811865476,
	}}
	DB2 = Wavelet{"db2", []float64{
		0.48296291314453414, 0.8365163037378077,
		0.2241438680420134, -0.1294095225512603,
	}}
	DB3 = Wavelet{"db3", []float64{
		0.3326705529500826, 0.8068915093110925, 0.4598775021184915,
		-0.1350110200102546, -0.0854412738820267, 0.0352262918857095,
	}}
	// DB4 is the basis the paper uses ("Daubechies 4 (db4)").
	DB4 = Wavelet{"db4", []float64{
		0.2303778133088964, 0.7148465705529156, 0.6308807679298589,
		-0.0279837694168599, -0.1870348117190931, 0.0308413818355607,
		0.0328830116668852, -0.0105974017850690,
	}}
	// Sym4 is the least-asymmetric 4-vanishing-moment Daubechies
	// variant, a common alternative basis in EEG work.
	Sym4 = Wavelet{"sym4", []float64{
		0.0322231006040427, -0.0126039672620378, -0.0992195435768472,
		0.2978577956052774, 0.8037387518059161, 0.4976186676320155,
		-0.0296355276459985, -0.0757657147892733,
	}}
)

// ByName returns the wavelet with the given name ("haar", "db2", "db3",
// "db4", "sym4").
func ByName(name string) (Wavelet, error) {
	for _, w := range []Wavelet{Haar, DB2, DB3, DB4, Sym4} {
		if w.name == name {
			return w, nil
		}
	}
	return Wavelet{}, fmt.Errorf("wavelet: unknown wavelet %q", name)
}

// Name returns the conventional name of the wavelet.
func (w Wavelet) Name() string { return w.name }

// FilterLength returns the number of filter taps.
func (w Wavelet) FilterLength() int { return len(w.scaling) }

// decLo returns the analysis lowpass filter (time-reversed scaling
// filter).
func (w Wavelet) decLo() []float64 {
	m := len(w.scaling)
	h := make([]float64, m)
	for i := range h {
		h[i] = w.scaling[m-1-i]
	}
	return h
}

// decHi returns the analysis highpass filter via the alternating-sign
// quadrature-mirror construction.
func (w Wavelet) decHi() []float64 {
	m := len(w.scaling)
	g := make([]float64, m)
	for i := range g {
		if i%2 == 0 {
			g[i] = w.scaling[i]
		} else {
			g[i] = -w.scaling[i]
		}
	}
	return g
}

// ErrOddLength is returned when a single-level transform is requested on
// an odd-length signal.
var ErrOddLength = errors.New("wavelet: signal length must be even")

// Forward performs one analysis step with periodic extension, returning
// the approximation (lowpass) and detail (highpass) coefficients, each of
// length len(x)/2.
func (w Wavelet) Forward(x []float64) (approx, detail []float64, err error) {
	n := len(x)
	if n == 0 {
		return nil, nil, errors.New("wavelet: empty signal")
	}
	if n%2 != 0 {
		return nil, nil, ErrOddLength
	}
	h, g := w.decLo(), w.decHi()
	m := len(h)
	half := n / 2
	approx = make([]float64, half)
	detail = make([]float64, half)
	for i := 0; i < half; i++ {
		var a, d float64
		base := 2 * i
		for j := 0; j < m; j++ {
			idx := base + j
			if idx >= n {
				idx -= n // periodic wrap (m <= n is enforced by callers' sizes; wrap repeatedly below if not)
				for idx >= n {
					idx -= n
				}
			}
			a += h[j] * x[idx]
			d += g[j] * x[idx]
		}
		approx[i] = a
		detail[i] = d
	}
	return approx, detail, nil
}

// Inverse performs one synthesis step, the exact adjoint of Forward, so
// Inverse(Forward(x)) == x for any even-length x.
func (w Wavelet) Inverse(approx, detail []float64) ([]float64, error) {
	if len(approx) != len(detail) {
		return nil, fmt.Errorf("wavelet: approx/detail length mismatch %d vs %d", len(approx), len(detail))
	}
	if len(approx) == 0 {
		return nil, errors.New("wavelet: empty coefficients")
	}
	h, g := w.decLo(), w.decHi()
	m := len(h)
	n := 2 * len(approx)
	x := make([]float64, n)
	for i := range approx {
		base := 2 * i
		for j := 0; j < m; j++ {
			idx := base + j
			for idx >= n {
				idx -= n
			}
			x[idx] += h[j]*approx[i] + g[j]*detail[i]
		}
	}
	return x, nil
}

// Decomposition holds a multilevel DWT: Details[k] contains the detail
// coefficients of level k+1 (so Details[0] is the finest scale) and
// Approx the approximation at the deepest level.
type Decomposition struct {
	Wavelet Wavelet
	Approx  []float64
	Details [][]float64
}

// Levels returns the decomposition depth.
func (d *Decomposition) Levels() int { return len(d.Details) }

// Detail returns the detail coefficients of the given level (1-based, as
// in the paper's "seventh level permutation entropy"). It returns nil
// when the level is out of range.
//
//selflearn:hotpath
func (d *Decomposition) Detail(level int) []float64 {
	if level < 1 || level > len(d.Details) {
		return nil
	}
	return d.Details[level-1]
}

// MaxLevel returns the deepest decomposition level reachable for a signal
// of length n (each level halves the length; decomposition stops before
// the signal would become shorter than 2 samples or odd).
//
//selflearn:hotpath
func MaxLevel(n int) int {
	level := 0
	for n >= 2 && n%2 == 0 {
		n /= 2
		level++
	}
	return level
}

// Decompose performs a level-deep multilevel DWT of x. The length of x
// must be divisible by 2^level.
func (w Wavelet) Decompose(x []float64, level int) (*Decomposition, error) {
	if level < 1 {
		return nil, fmt.Errorf("wavelet: invalid level %d", level)
	}
	if MaxLevel(len(x)) < level {
		return nil, fmt.Errorf("wavelet: signal length %d does not support %d levels (max %d)",
			len(x), level, MaxLevel(len(x)))
	}
	d := &Decomposition{Wavelet: w}
	cur := append([]float64(nil), x...)
	for l := 0; l < level; l++ {
		a, det, err := w.Forward(cur)
		if err != nil {
			return nil, err
		}
		d.Details = append(d.Details, det)
		cur = a
	}
	d.Approx = cur
	return d, nil
}

// Reconstruct inverts a multilevel decomposition back to the original
// signal.
func (w Wavelet) Reconstruct(d *Decomposition) ([]float64, error) {
	if d == nil || len(d.Details) == 0 {
		return nil, errors.New("wavelet: empty decomposition")
	}
	cur := append([]float64(nil), d.Approx...)
	for l := len(d.Details) - 1; l >= 0; l-- {
		next, err := w.Inverse(cur, d.Details[l])
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// SubbandEnergies returns the energy (sum of squares) of each detail
// level, index 0 = level 1, followed by the approximation energy as the
// last element.
func (d *Decomposition) SubbandEnergies() []float64 {
	return d.AppendSubbandEnergies(make([]float64, 0, len(d.Details)+1))
}

// AppendSubbandEnergies appends the subband energies — details in level
// order, then the approximation — to dst and returns the extended
// slice: the allocation-free form of SubbandEnergies and the single
// definition of the subband-energy feature ordering.
func (d *Decomposition) AppendSubbandEnergies(dst []float64) []float64 {
	for _, det := range d.Details {
		dst = append(dst, energy(det))
	}
	return append(dst, energy(d.Approx))
}

// RelativeSubbandEnergies returns SubbandEnergies normalized to sum to 1;
// a zero-energy decomposition returns all zeros.
func (d *Decomposition) RelativeSubbandEnergies() []float64 {
	es := d.SubbandEnergies()
	var tot float64
	for _, e := range es {
		tot += e
	}
	if tot == 0 {
		return es
	}
	for i := range es {
		es[i] /= tot
	}
	return es
}

// TotalEnergy returns the energy summed over all subbands. For an
// orthonormal wavelet this equals the time-domain energy of the input.
func (d *Decomposition) TotalEnergy() float64 {
	var tot float64
	for _, e := range d.SubbandEnergies() {
		tot += e
	}
	return tot
}

func energy(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return s
}

// PadPow2 right-pads xs with its final value up to the next power of two,
// returning xs unchanged when it is already a power of two. An empty
// input is returned unchanged.
func PadPow2(xs []float64) []float64 {
	n := len(xs)
	if n == 0 {
		return xs
	}
	p := 1
	for p < n {
		p <<= 1
	}
	if p == n {
		return xs
	}
	out := make([]float64, p)
	copy(out, xs)
	last := xs[n-1]
	for i := n; i < p; i++ {
		out[i] = last
	}
	return out
}

// OrthonormalityError returns the maximum deviation of the wavelet's
// analysis filters from orthonormality; useful for validating custom
// coefficient sets. For the built-in wavelets it is ~1e-15.
func (w Wavelet) OrthonormalityError() float64 {
	h, g := w.decLo(), w.decHi()
	m := len(h)
	worst := 0.0
	dot := func(a, b []float64, shift int) float64 {
		var s float64
		for i := 0; i+shift < m; i++ {
			s += a[i] * b[i+shift]
		}
		return s
	}
	for k := 0; 2*k < m; k++ {
		want := 0.0
		if k == 0 {
			want = 1
		}
		worst = math.Max(worst, math.Abs(dot(h, h, 2*k)-want))
		worst = math.Max(worst, math.Abs(dot(g, g, 2*k)-want))
		worst = math.Max(worst, math.Abs(dot(h, g, 2*k)))
		worst = math.Max(worst, math.Abs(dot(g, h, 2*k)))
	}
	return worst
}
