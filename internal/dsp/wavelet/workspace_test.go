package wavelet

import (
	"math/rand"
	"testing"
)

// TestDecomposeIntoMatchesDecompose reuses one workspace and
// decomposition across signals of several lengths and wavelets,
// demanding bit-identical coefficients versus the allocating path.
func TestDecomposeIntoMatchesDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, w := range []Wavelet{Haar, DB4, Sym4} {
		ws := w.NewWorkspace()
		var d Decomposition
		for _, n := range []int{64, 512, 1024, 512} { // shrink back: buffers must resize down
			level := MaxLevel(n)
			if level > 7 {
				level = 7
			}
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
			want, err := w.Decompose(xs, level)
			if err != nil {
				t.Fatal(err)
			}
			if err := ws.DecomposeInto(&d, xs, level); err != nil {
				t.Fatal(err)
			}
			if d.Levels() != want.Levels() {
				t.Fatalf("%s n=%d: %d levels vs %d", w.Name(), n, d.Levels(), want.Levels())
			}
			for l := 1; l <= level; l++ {
				got, ref := d.Detail(l), want.Detail(l)
				if len(got) != len(ref) {
					t.Fatalf("%s n=%d L%d: %d coeffs vs %d", w.Name(), n, l, len(got), len(ref))
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s n=%d L%d[%d]: %g vs %g", w.Name(), n, l, i, got[i], ref[i])
					}
				}
			}
			for i := range want.Approx {
				if d.Approx[i] != want.Approx[i] {
					t.Fatalf("%s n=%d approx[%d]: %g vs %g", w.Name(), n, i, d.Approx[i], want.Approx[i])
				}
			}
		}
	}
}

// TestExtendIntoMatchesFullDecompose pins the pause-and-extend path the
// feature extractor uses to capture the level-3 approximation: stopping
// at an intermediate level and extending must be bit-identical to one
// full decomposition.
func TestExtendIntoMatchesFullDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	want, err := DB4.Decompose(xs, 7)
	if err != nil {
		t.Fatal(err)
	}
	ws := DB4.NewWorkspace()
	var d Decomposition
	if err := ws.DecomposeInto(&d, xs, 3); err != nil {
		t.Fatal(err)
	}
	approx3 := append([]float64(nil), d.Approx...)
	if err := ws.ExtendInto(&d, 7); err != nil {
		t.Fatal(err)
	}
	if err := ws.ExtendInto(&d, 7); err != nil { // no-op at target depth
		t.Fatal(err)
	}
	for l := 1; l <= 7; l++ {
		got, ref := d.Detail(l), want.Detail(l)
		if len(got) != len(ref) {
			t.Fatalf("L%d: %d coeffs vs %d", l, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("L%d[%d]: %g vs %g", l, i, got[i], ref[i])
			}
		}
	}
	for i := range want.Approx {
		if d.Approx[i] != want.Approx[i] {
			t.Fatalf("approx[%d]: %g vs %g", i, d.Approx[i], want.Approx[i])
		}
	}
	// The captured intermediate approximation must equal a direct
	// 3-level decomposition's.
	ref3, err := DB4.Decompose(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref3.Approx {
		if approx3[i] != ref3.Approx[i] {
			t.Fatalf("captured approx3[%d]: %g vs %g", i, approx3[i], ref3.Approx[i])
		}
	}
	if err := ws.ExtendInto(&d, 20); err == nil {
		t.Fatal("ExtendInto accepted an unreachable level")
	}
}

// TestWorkspacePadPow2 checks the padding buffer against the
// allocating helper, including the no-op power-of-two case.
func TestWorkspacePadPow2(t *testing.T) {
	ws := DB4.NewWorkspace()
	for _, n := range []int{1, 5, 8, 100, 1000, 1024} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
		}
		want := PadPow2(xs)
		got := ws.PadPow2(xs)
		if len(got) != len(want) {
			t.Fatalf("n=%d: len %d vs %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d [%d]: %g vs %g", n, i, got[i], want[i])
			}
		}
		if len(xs) == len(want) && &got[0] != &xs[0] {
			t.Fatalf("n=%d: power-of-two input was copied", n)
		}
	}
}

func BenchmarkDecompose(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DB4.Decompose(xs, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace", func(b *testing.B) {
		ws := DB4.NewWorkspace()
		var d Decomposition
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ws.DecomposeInto(&d, xs, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
}
