package spectrum

import (
	"math"
	"math/rand"
	"testing"

	"selflearn/internal/dsp/window"
)

func sine(freq, fs float64, n int, amp float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = amp * math.Sin(2*math.Pi*freq*float64(i)/fs)
	}
	return xs
}

func TestPeriodogramPeakAtToneFrequency(t *testing.T) {
	const fs = 256.0
	xs := sine(6, fs, 1024, 1) // theta-band tone
	psd, err := Periodogram(xs, fs, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	peak := PeakFrequency(psd, 1)
	if math.Abs(peak-6) > psd.BinWidth {
		t.Errorf("peak at %g Hz, want 6 Hz (bin width %g)", peak, psd.BinWidth)
	}
}

func TestPeriodogramParseval(t *testing.T) {
	// Total PSD power must match the time-domain mean square for a
	// rectangular window (no taper loss).
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 512)
	var msq float64
	for i := range xs {
		xs[i] = rng.NormFloat64()
		msq += xs[i] * xs[i]
	}
	msq /= float64(len(xs))
	psd, err := Periodogram(xs, 256, window.Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	if got := psd.TotalPower(); math.Abs(got-msq) > 1e-6*msq {
		t.Errorf("TotalPower = %g, want mean square %g", got, msq)
	}
}

func TestBandPowerConcentration(t *testing.T) {
	const fs = 256.0
	xs := sine(6, fs, 2048, 2)
	psd, err := Periodogram(xs, fs, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	theta := psd.BandPower(Theta)
	rel := psd.RelativeBandPower(Theta)
	if rel < 0.95 {
		t.Errorf("theta tone: relative theta power %g, want > 0.95", rel)
	}
	if theta <= psd.BandPower(Alpha) {
		t.Error("theta power should dominate alpha for a 6 Hz tone")
	}
}

func TestRelativeBandPowersSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	psd, err := Periodogram(xs, 256, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	// Bands covering the whole one-sided axis should account for all power.
	full := Band{"full", 0, 129}
	if math.Abs(psd.RelativeBandPower(full)-1) > 1e-12 {
		t.Errorf("full-band relative power = %g, want 1", psd.RelativeBandPower(full))
	}
}

func TestRelativeBandPowerZeroSignal(t *testing.T) {
	psd, err := Periodogram(make([]float64, 64), 256, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	if psd.RelativeBandPower(Theta) != 0 {
		t.Error("zero signal should have zero relative band power")
	}
}

func TestPeriodogramErrors(t *testing.T) {
	if _, err := Periodogram(nil, 256, window.Hann); err == nil {
		t.Error("empty signal should error")
	}
	if _, err := Periodogram([]float64{1, 2}, 0, window.Hann); err == nil {
		t.Error("zero sampling rate should error")
	}
	if _, err := Welch(nil, 256, 128, window.Hann); err == nil {
		t.Error("Welch empty signal should error")
	}
	if _, err := Welch([]float64{1, 2, 3}, 256, 0, window.Hann); err == nil {
		t.Error("Welch invalid segment should error")
	}
}

func TestWelchReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	single, err := Periodogram(xs, 256, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	welch, err := Welch(xs, 256, 512, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	varOf := func(ps []float64) float64 {
		var m float64
		for _, p := range ps {
			m += p
		}
		m /= float64(len(ps))
		var v float64
		for _, p := range ps {
			v += (p - m) * (p - m)
		}
		return v / float64(len(ps))
	}
	if varOf(welch.Power) >= varOf(single.Power) {
		t.Error("Welch averaging should reduce PSD variance for white noise")
	}
}

func TestWelchShortFallsBackToPeriodogram(t *testing.T) {
	xs := sine(6, 256, 100, 1)
	w, err := Welch(xs, 256, 512, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Periodogram(xs, 256, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Power) != len(p.Power) {
		t.Fatal("short-signal Welch should equal single periodogram")
	}
	for k := range w.Power {
		if math.Abs(w.Power[k]-p.Power[k]) > 1e-15 {
			t.Fatal("short-signal Welch should equal single periodogram bin-for-bin")
		}
	}
}

func TestBandPowers(t *testing.T) {
	xs := sine(10, 256, 1024, 1) // alpha tone
	bp, err := BandPowers(xs, 256, ClinicalBands())
	if err != nil {
		t.Fatal(err)
	}
	if len(bp) != 5 {
		t.Fatalf("want 5 band powers, got %d", len(bp))
	}
	// Alpha (index 2) should dominate.
	for i, p := range bp {
		if i != 2 && p >= bp[2] {
			t.Errorf("band %d power %g should be below alpha %g", i, p, bp[2])
		}
	}
}

func TestSpectralEdgeFrequency(t *testing.T) {
	xs := sine(6, 256, 2048, 1)
	psd, err := Periodogram(xs, 256, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	sef := SpectralEdgeFrequency(psd, 0.95)
	if math.Abs(sef-6) > 1 {
		t.Errorf("SEF95 of a 6 Hz tone = %g, want ≈6", sef)
	}
	if !math.IsNaN(SpectralEdgeFrequency(psd, 0)) {
		t.Error("q=0 should be NaN")
	}
	if !math.IsNaN(SpectralEdgeFrequency(psd, 1.5)) {
		t.Error("q>1 should be NaN")
	}
}

func TestClinicalBandsOrdered(t *testing.T) {
	bands := ClinicalBands()
	for i := 1; i < len(bands); i++ {
		if bands[i].Low != bands[i-1].High {
			t.Errorf("band %s should start where %s ends", bands[i].Name, bands[i-1].Name)
		}
	}
	if bands[0].Low != 0.5 || bands[0].High != 4 {
		t.Error("delta band must be [0.5, 4] Hz as in the paper")
	}
	if bands[1].Low != 4 || bands[1].High != 8 {
		t.Error("theta band must be [4, 8] Hz as in the paper")
	}
}

func TestWindowCoefficients(t *testing.T) {
	if window.Coefficients(window.Hann, 0) != nil {
		t.Error("n=0 should be nil")
	}
	w1 := window.Coefficients(window.Blackman, 1)
	if len(w1) != 1 || w1[0] != 1 {
		t.Errorf("n=1 window should be [1], got %v", w1)
	}
	h := window.Coefficients(window.Hann, 9)
	if math.Abs(h[0]) > 1e-12 || math.Abs(h[8]) > 1e-12 {
		t.Error("hann endpoints should be 0")
	}
	if math.Abs(h[4]-1) > 1e-12 {
		t.Error("hann midpoint should be 1")
	}
	// Symmetry for all types.
	for _, f := range []window.Func{window.Rectangular, window.Hann, window.Hamming, window.Blackman} {
		w := window.Coefficients(f, 33)
		for i := range w {
			if math.Abs(w[i]-w[len(w)-1-i]) > 1e-12 {
				t.Errorf("%v window asymmetric at %d", f, i)
			}
		}
	}
}

func TestWindowNames(t *testing.T) {
	names := map[window.Func]string{
		window.Rectangular: "rectangular",
		window.Hann:        "hann",
		window.Hamming:     "hamming",
		window.Blackman:    "blackman",
		window.Func(99):    "unknown",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("String() = %q, want %q", f.String(), want)
		}
	}
}
