package spectrum

import (
	"math/rand"
	"testing"

	"selflearn/internal/dsp/window"
)

// TestPeriodogramIntoMatchesPeriodogram reuses one workspace across
// many windows and demands bit-identical PSDs versus the one-shot
// estimator.
func TestPeriodogramIntoMatchesPeriodogram(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, fs = 512, 128.0
	ws, err := NewWorkspace(n, fs, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	var dst PSD
	for trial := 0; trial < 20; trial++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		want, err := Periodogram(xs, fs, window.Hann)
		if err != nil {
			t.Fatal(err)
		}
		if err := ws.PeriodogramInto(&dst, xs); err != nil {
			t.Fatal(err)
		}
		if dst.BinWidth != want.BinWidth {
			t.Fatalf("trial %d: BinWidth %g vs %g", trial, dst.BinWidth, want.BinWidth)
		}
		if len(dst.Power) != len(want.Power) {
			t.Fatalf("trial %d: %d bins vs %d", trial, len(dst.Power), len(want.Power))
		}
		for k := range want.Power {
			if dst.Power[k] != want.Power[k] {
				t.Fatalf("trial %d bin %d: %g vs %g", trial, k, dst.Power[k], want.Power[k])
			}
		}
		if dst.TotalPower() != want.TotalPower() {
			t.Fatalf("trial %d: TotalPower %g vs %g", trial, dst.TotalPower(), want.TotalPower())
		}
	}
	if err := ws.PeriodogramInto(&dst, make([]float64, n/2)); err == nil {
		t.Fatal("workspace accepted a wrong-length signal")
	}
}

// TestTotalPowerMemoConsistency checks the construction-time memo
// against a by-hand integral and pins the two mutation paths: Welch
// invalidates after averaging, and Invalidate forces a recompute.
func TestTotalPowerMemoConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	p, err := Periodogram(xs, 256, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	manual := 0.0
	for _, v := range p.Power {
		manual += v
	}
	manual *= p.BinWidth
	if got := p.TotalPower(); got != manual {
		t.Fatalf("memoized TotalPower %g != recomputed %g", got, manual)
	}
	if got := p.RelativeBandPower(Theta); got != p.BandPower(Theta)/manual {
		t.Fatalf("RelativeBandPower uses a stale total: %g", got)
	}

	w, err := Welch(xs, 256, 256, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	manual = 0.0
	for _, v := range w.Power {
		manual += v
	}
	manual *= w.BinWidth
	if got := w.TotalPower(); got != manual {
		t.Fatalf("Welch TotalPower %g != recomputed %g (stale memo survived averaging?)", got, manual)
	}

	// Hand mutation + Invalidate must recompute.
	before := p.TotalPower()
	p.Power[3] *= 10
	p.Invalidate()
	if p.TotalPower() == before {
		t.Fatal("Invalidate did not drop the memoized total")
	}
}

func BenchmarkPeriodogram(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Periodogram(xs, 256, window.Hann); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace", func(b *testing.B) {
		ws, err := NewWorkspace(len(xs), 256, window.Hann)
		if err != nil {
			b.Fatal(err)
		}
		var dst PSD
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ws.PeriodogramInto(&dst, xs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
