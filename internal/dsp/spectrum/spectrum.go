// Package spectrum estimates power spectral densities and EEG band powers.
// The paper's most discriminative features — total and relative delta
// ([0.5, 4] Hz) and theta ([4, 8] Hz) band power — are computed here from
// Welch/periodogram estimates.
package spectrum

import (
	"errors"
	"fmt"
	"math"

	"selflearn/internal/dsp/fft"
	"selflearn/internal/dsp/window"
)

// Band is a frequency interval in Hz, inclusive of Low, exclusive of High.
type Band struct {
	Name string
	Low  float64 // Hz
	High float64 // Hz
}

// The standard clinical EEG bands. Delta and Theta are the bands the
// paper's backward elimination retained.
var (
	Delta = Band{"delta", 0.5, 4}
	Theta = Band{"theta", 4, 8}
	Alpha = Band{"alpha", 8, 13}
	Beta  = Band{"beta", 13, 30}
	Gamma = Band{"gamma", 30, 100}
)

// ClinicalBands lists the five standard bands in ascending frequency.
func ClinicalBands() []Band {
	return []Band{Delta, Theta, Alpha, Beta, Gamma}
}

// PSD is a one-sided power spectral density estimate.
type PSD struct {
	// Power[k] is the density at frequency Freq(k), in signal-units²/Hz.
	Power []float64
	// BinWidth is the frequency spacing between consecutive bins in Hz.
	BinWidth float64

	// total memoizes TotalPower: the feature extractor integrates the
	// spectrum once per clinical band otherwise (RelativeBandPower per
	// band per window). Estimators set it at construction; a PSD built
	// or mutated by hand falls back to the lazy computation below.
	total    float64
	hasTotal bool
}

// Freq returns the frequency of bin k in Hz.
func (p *PSD) Freq(k int) float64 { return float64(k) * p.BinWidth }

// Invalidate drops the memoized total power; call it after mutating
// Power in place.
func (p *PSD) Invalidate() { p.hasTotal = false }

// TotalPower integrates the PSD over all frequencies. The integral is
// computed once and memoized (not goroutine-safe on first call; PSDs are
// per-window values, not shared state).
func (p *PSD) TotalPower() float64 {
	if !p.hasTotal {
		var s float64
		for _, v := range p.Power {
			s += v
		}
		p.total = s * p.BinWidth
		p.hasTotal = true
	}
	return p.total
}

// BandPower integrates the PSD over band b. Bins whose center frequency
// lies in [b.Low, b.High) contribute.
//
//selflearn:hotpath
func (p *PSD) BandPower(b Band) float64 {
	lo, hi := p.bandRange(b)
	var s float64
	for _, v := range p.Power[lo:hi] {
		s += v
	}
	return s * p.BinWidth
}

// bandRange returns the half-open bin range [lo, hi) whose center
// frequencies lie in [b.Low, b.High). The bounds are located by
// division and then pinned against the exact per-bin predicate
// (Freq(k) >= Low, Freq(k) < High), so the selected bins — and
// therefore BandPower's sum, term for term — are identical to the
// full scan this replaces, for any BinWidth rounding behavior.
//
//selflearn:hotpath
func (p *PSD) bandRange(b Band) (lo, hi int) {
	n := len(p.Power)
	bw := p.BinWidth
	if math.IsNaN(bw) {
		return 0, 0 // Freq(k) is NaN for every bin: nothing selects
	}
	if bw <= 0 {
		// Degenerate spacing: every bin sits at frequency k*bw <= 0;
		// bin 0 (and, for bw == 0, every bin) is at exactly 0.
		if bw == 0 && b.Low <= 0 && b.High > 0 {
			return 0, n
		}
		return 0, 0
	}
	lo = clampBin(int(b.Low/bw), n)
	for lo > 0 && float64(lo-1)*bw >= b.Low {
		lo--
	}
	for lo < n && float64(lo)*bw < b.Low {
		lo++
	}
	hi = clampBin(int(b.High/bw), n)
	for hi > 0 && float64(hi-1)*bw >= b.High {
		hi--
	}
	for hi < n && float64(hi)*bw < b.High {
		hi++
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func clampBin(k, n int) int {
	if k < 0 {
		return 0
	}
	if k > n {
		return n
	}
	return k
}

// RelativeBandPower returns BandPower(b)/TotalPower, or 0 when the total
// power is zero.
//
//selflearn:hotpath
func (p *PSD) RelativeBandPower(b Band) float64 {
	tot := p.TotalPower()
	if tot == 0 {
		return 0
	}
	return p.BandPower(b) / tot
}

// Workspace owns the reusable state of periodogram estimation at one
// fixed signal length: the memoized taper table, its power correction,
// and the FFT buffer. PeriodogramInto then estimates a PSD with zero
// steady-state allocations. A Workspace is not safe for concurrent use;
// give each streaming extractor its own.
type Workspace struct {
	n      int
	fs     float64
	coeffs []float64 // shared read-only taper table (window.Cached)
	wp     float64   // taper power correction
	rp     *fft.RealPlan
	rbuf   []float64 // tapered, zero-padded real input
	scale  float64
	half   int
}

// NewWorkspace builds a periodogram workspace for signals of exactly n
// samples at fs Hz tapered by taper.
func NewWorkspace(n int, fs float64, taper window.Func) (*Workspace, error) {
	if n <= 0 {
		return nil, errors.New("spectrum: empty signal")
	}
	if fs <= 0 {
		return nil, fmt.Errorf("spectrum: invalid sampling rate %g", fs)
	}
	nfft := fft.NextPow2(n)
	wp := window.Power(taper, n)
	if wp == 0 {
		wp = 1
	}
	ws := &Workspace{
		n:      n,
		fs:     fs,
		coeffs: window.Cached(taper, n),
		wp:     wp,
		rbuf:   make([]float64, nfft),
		// One-sided PSD with taper power correction. The denominator
		// uses the original (pre-padding) length so that total power
		// matches the time-domain mean square of the tapered signal.
		scale: 1 / (fs * float64(n) * wp),
		half:  nfft/2 + 1,
	}
	if nfft >= 2 {
		rp, err := fft.NewRealPlan(nfft)
		if err != nil {
			return nil, err
		}
		ws.rp = rp
	}
	return ws, nil
}

// NumBins returns the number of one-sided PSD bins the workspace produces.
func (ws *Workspace) NumBins() int { return ws.half }

// PeriodogramInto estimates the one-sided PSD of xs into dst, reusing
// dst.Power when already sized. len(xs) must equal the workspace length.
//
//selflearn:hotpath
func (ws *Workspace) PeriodogramInto(dst *PSD, xs []float64) error {
	if len(xs) != ws.n {
		return fmt.Errorf("spectrum: workspace sized for %d samples, got %d", ws.n, len(xs))
	}
	if cap(dst.Power) < ws.half {
		dst.Power = make([]float64, ws.half)
	}
	dst.Power = dst.Power[:ws.half]
	nfft := len(ws.rbuf)
	for i, v := range xs {
		ws.rbuf[i] = v * ws.coeffs[i]
	}
	for i := ws.n; i < nfft; i++ {
		ws.rbuf[i] = 0
	}
	if ws.rp != nil {
		// |X[k]|² straight into the PSD bins, via the half-size
		// real-input transform.
		if _, err := ws.rp.PowerSpectrumInto(dst.Power, ws.rbuf); err != nil {
			return err
		}
	} else {
		// nfft == 1: the single bin is the (tapered) sample itself.
		dst.Power[0] = ws.rbuf[0] * ws.rbuf[0]
	}
	var total float64
	for k := 0; k < ws.half; k++ {
		p := dst.Power[k] * ws.scale
		if k != 0 && k != nfft/2 {
			p *= 2 // fold negative frequencies
		}
		dst.Power[k] = p
		total += p
	}
	dst.BinWidth = ws.fs / float64(nfft)
	dst.total = total * dst.BinWidth
	dst.hasTotal = true
	return nil
}

// Periodogram estimates the one-sided PSD of xs sampled at fs Hz using a
// single tapered FFT. The signal is zero-padded to the next power of two.
// Streaming callers should hold a Workspace and use PeriodogramInto,
// which allocates nothing per window.
func Periodogram(xs []float64, fs float64, taper window.Func) (*PSD, error) {
	ws, err := NewWorkspace(len(xs), fs, taper)
	if err != nil {
		return nil, err
	}
	p := &PSD{}
	if err := ws.PeriodogramInto(p, xs); err != nil {
		return nil, err
	}
	return p, nil
}

// Welch estimates the PSD by averaging periodograms of segments of length
// segLen with 50% overlap. When the signal is shorter than segLen it falls
// back to a single periodogram.
func Welch(xs []float64, fs float64, segLen int, taper window.Func) (*PSD, error) {
	if len(xs) == 0 {
		return nil, errors.New("spectrum: empty signal")
	}
	if segLen <= 0 {
		return nil, fmt.Errorf("spectrum: invalid segment length %d", segLen)
	}
	if len(xs) < segLen {
		return Periodogram(xs, fs, taper)
	}
	hop := segLen / 2
	if hop == 0 {
		hop = 1
	}
	// One workspace serves every segment: the segment length is fixed,
	// so the taper table and FFT buffer are shared across the loop.
	ws, err := NewWorkspace(segLen, fs, taper)
	if err != nil {
		return nil, err
	}
	acc := &PSD{}
	var seg PSD
	var count int
	for start := 0; start+segLen <= len(xs); start += hop {
		if count == 0 {
			if err := ws.PeriodogramInto(acc, xs[start:start+segLen]); err != nil {
				return nil, err
			}
		} else {
			if err := ws.PeriodogramInto(&seg, xs[start:start+segLen]); err != nil {
				return nil, err
			}
			for k := range acc.Power {
				acc.Power[k] += seg.Power[k]
			}
		}
		count++
	}
	for k := range acc.Power {
		acc.Power[k] /= float64(count)
	}
	acc.Invalidate() // the averaging above outdated the memoized total
	return acc, nil
}

// BandPowers computes the total power in each band of bands from a single
// periodogram of xs. It is the convenience entry point used by the
// feature extractor.
func BandPowers(xs []float64, fs float64, bands []Band) ([]float64, error) {
	psd, err := Periodogram(xs, fs, window.Hann)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(bands))
	for i, b := range bands {
		out[i] = psd.BandPower(b)
	}
	return out, nil
}

// SpectralEdgeFrequency returns the frequency below which fraction q of
// the total spectral power lies (e.g. SEF95 with q = 0.95).
func SpectralEdgeFrequency(p *PSD, q float64) float64 {
	if q <= 0 || q > 1 || len(p.Power) == 0 {
		return math.NaN()
	}
	total := 0.0
	for _, v := range p.Power {
		total += v
	}
	if total == 0 {
		return 0
	}
	target := q * total
	cum := 0.0
	for k, v := range p.Power {
		cum += v
		if cum >= target {
			return p.Freq(k)
		}
	}
	return p.Freq(len(p.Power) - 1)
}

// PeakFrequency returns the frequency of the strongest PSD bin at or above
// minFreq (to let callers skip the DC bin).
func PeakFrequency(p *PSD, minFreq float64) float64 {
	best, bestP := math.NaN(), -1.0
	for k, v := range p.Power {
		f := p.Freq(k)
		if f < minFreq {
			continue
		}
		if v > bestP {
			bestP = v
			best = f
		}
	}
	return best
}
