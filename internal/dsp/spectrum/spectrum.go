// Package spectrum estimates power spectral densities and EEG band powers.
// The paper's most discriminative features — total and relative delta
// ([0.5, 4] Hz) and theta ([4, 8] Hz) band power — are computed here from
// Welch/periodogram estimates.
package spectrum

import (
	"errors"
	"fmt"
	"math"

	"selflearn/internal/dsp/fft"
	"selflearn/internal/dsp/window"
)

// Band is a frequency interval in Hz, inclusive of Low, exclusive of High.
type Band struct {
	Name string
	Low  float64 // Hz
	High float64 // Hz
}

// The standard clinical EEG bands. Delta and Theta are the bands the
// paper's backward elimination retained.
var (
	Delta = Band{"delta", 0.5, 4}
	Theta = Band{"theta", 4, 8}
	Alpha = Band{"alpha", 8, 13}
	Beta  = Band{"beta", 13, 30}
	Gamma = Band{"gamma", 30, 100}
)

// ClinicalBands lists the five standard bands in ascending frequency.
func ClinicalBands() []Band {
	return []Band{Delta, Theta, Alpha, Beta, Gamma}
}

// PSD is a one-sided power spectral density estimate.
type PSD struct {
	// Power[k] is the density at frequency Freq(k), in signal-units²/Hz.
	Power []float64
	// BinWidth is the frequency spacing between consecutive bins in Hz.
	BinWidth float64
}

// Freq returns the frequency of bin k in Hz.
func (p *PSD) Freq(k int) float64 { return float64(k) * p.BinWidth }

// TotalPower integrates the PSD over all frequencies.
func (p *PSD) TotalPower() float64 {
	var s float64
	for _, v := range p.Power {
		s += v
	}
	return s * p.BinWidth
}

// BandPower integrates the PSD over band b. Bins whose center frequency
// lies in [b.Low, b.High) contribute.
func (p *PSD) BandPower(b Band) float64 {
	var s float64
	for k := range p.Power {
		f := p.Freq(k)
		if f >= b.Low && f < b.High {
			s += p.Power[k]
		}
	}
	return s * p.BinWidth
}

// RelativeBandPower returns BandPower(b)/TotalPower, or 0 when the total
// power is zero.
func (p *PSD) RelativeBandPower(b Band) float64 {
	tot := p.TotalPower()
	if tot == 0 {
		return 0
	}
	return p.BandPower(b) / tot
}

// Periodogram estimates the one-sided PSD of xs sampled at fs Hz using a
// single tapered FFT. The signal is zero-padded to the next power of two.
func Periodogram(xs []float64, fs float64, taper window.Func) (*PSD, error) {
	if len(xs) == 0 {
		return nil, errors.New("spectrum: empty signal")
	}
	if fs <= 0 {
		return nil, fmt.Errorf("spectrum: invalid sampling rate %g", fs)
	}
	n := len(xs)
	tapered := window.Apply(taper, xs)
	spec, err := fft.ForwardReal(tapered)
	if err != nil {
		return nil, err
	}
	nfft := len(spec)
	wp := window.Power(taper, n)
	if wp == 0 {
		wp = 1
	}
	// One-sided PSD with taper power correction. The denominator uses the
	// original (pre-padding) length so that total power matches the
	// time-domain mean square of the tapered signal.
	scale := 1 / (fs * float64(n) * wp)
	half := nfft/2 + 1
	power := make([]float64, half)
	for k := 0; k < half; k++ {
		re, im := real(spec[k]), imag(spec[k])
		p := (re*re + im*im) * scale
		if k != 0 && k != nfft/2 {
			p *= 2 // fold negative frequencies
		}
		power[k] = p
	}
	return &PSD{Power: power, BinWidth: fs / float64(nfft)}, nil
}

// Welch estimates the PSD by averaging periodograms of segments of length
// segLen with 50% overlap. When the signal is shorter than segLen it falls
// back to a single periodogram.
func Welch(xs []float64, fs float64, segLen int, taper window.Func) (*PSD, error) {
	if len(xs) == 0 {
		return nil, errors.New("spectrum: empty signal")
	}
	if segLen <= 0 {
		return nil, fmt.Errorf("spectrum: invalid segment length %d", segLen)
	}
	if len(xs) < segLen {
		return Periodogram(xs, fs, taper)
	}
	hop := segLen / 2
	if hop == 0 {
		hop = 1
	}
	var acc *PSD
	var count int
	for start := 0; start+segLen <= len(xs); start += hop {
		p, err := Periodogram(xs[start:start+segLen], fs, taper)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = p
		} else {
			for k := range acc.Power {
				acc.Power[k] += p.Power[k]
			}
		}
		count++
	}
	for k := range acc.Power {
		acc.Power[k] /= float64(count)
	}
	return acc, nil
}

// BandPowers computes the total power in each band of bands from a single
// periodogram of xs. It is the convenience entry point used by the
// feature extractor.
func BandPowers(xs []float64, fs float64, bands []Band) ([]float64, error) {
	psd, err := Periodogram(xs, fs, window.Hann)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(bands))
	for i, b := range bands {
		out[i] = psd.BandPower(b)
	}
	return out, nil
}

// SpectralEdgeFrequency returns the frequency below which fraction q of
// the total spectral power lies (e.g. SEF95 with q = 0.95).
func SpectralEdgeFrequency(p *PSD, q float64) float64 {
	if q <= 0 || q > 1 || len(p.Power) == 0 {
		return math.NaN()
	}
	total := 0.0
	for _, v := range p.Power {
		total += v
	}
	if total == 0 {
		return 0
	}
	target := q * total
	cum := 0.0
	for k, v := range p.Power {
		cum += v
		if cum >= target {
			return p.Freq(k)
		}
	}
	return p.Freq(len(p.Power) - 1)
}

// PeakFrequency returns the frequency of the strongest PSD bin at or above
// minFreq (to let callers skip the DC bin).
func PeakFrequency(p *PSD, minFreq float64) float64 {
	best, bestP := math.NaN(), -1.0
	for k, v := range p.Power {
		f := p.Freq(k)
		if f < minFreq {
			continue
		}
		if v > bestP {
			bestP = v
			best = f
		}
	}
	return best
}
