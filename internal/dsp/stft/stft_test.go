package stft

import (
	"math"
	"math/rand"
	"testing"

	"selflearn/internal/dsp/spectrum"
	"selflearn/internal/dsp/window"
	"selflearn/internal/synth"
)

func chirp(fs float64, n int, f0, f1 float64) []float64 {
	xs := make([]float64, n)
	phase := 0.0
	for i := range xs {
		frac := float64(i) / float64(n)
		f := f0 + (f1-f0)*frac
		phase += 2 * math.Pi * f / fs
		xs[i] = math.Sin(phase)
	}
	return xs
}

func TestComputeShape(t *testing.T) {
	const fs = 256.0
	xs := chirp(fs, 60*256, 20, 5)
	sg, err := Compute(xs, fs, 1024, 256, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	// (60·256 - 1024)/256 + 1 = 57 frames.
	if sg.Frames() != 57 {
		t.Errorf("frames = %d, want 57", sg.Frames())
	}
	if sg.Bins() != 1024/2+1 {
		t.Errorf("bins = %d, want 513", sg.Bins())
	}
	if sg.HopSeconds != 1 {
		t.Errorf("hop = %g s", sg.HopSeconds)
	}
	if sg.FrameTime(0) != 2 {
		t.Errorf("frame 0 centered at %g s, want 2 s", sg.FrameTime(0))
	}
	if math.Abs(sg.Freq(4)-1) > 1e-12 {
		t.Errorf("bin 4 at %g Hz, want 1 Hz (bin width 0.25)", sg.Freq(4))
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, 256, 128, 64, window.Hann); err == nil {
		t.Error("empty signal should fail")
	}
	if _, err := Compute(make([]float64, 100), 0, 64, 32, window.Hann); err == nil {
		t.Error("fs=0 should fail")
	}
	if _, err := Compute(make([]float64, 100), 256, 0, 32, window.Hann); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := Compute(make([]float64, 100), 256, 64, 0, window.Hann); err == nil {
		t.Error("zero hop should fail")
	}
	if _, err := Compute(make([]float64, 10), 256, 64, 32, window.Hann); err == nil {
		t.Error("short signal should fail")
	}
}

func TestDominantFrequencyTracksChirp(t *testing.T) {
	const fs = 256.0
	xs := chirp(fs, 120*256, 20, 5)
	sg, err := Compute(xs, fs, 1024, 256, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	dom := sg.DominantFrequency(1)
	first, last := dom[0], dom[len(dom)-1]
	if first < 15 || first > 22 {
		t.Errorf("chirp start tracked at %g Hz, want ≈20", first)
	}
	if last < 4 || last > 8 {
		t.Errorf("chirp end tracked at %g Hz, want ≈5-6", last)
	}
	// Monotone-ish descent.
	if dom[len(dom)/2] >= first || dom[len(dom)/2] <= last-1 {
		t.Errorf("midpoint %g Hz should lie between %g and %g", dom[len(dom)/2], last, first)
	}
}

func TestBandSeriesDetectsSeizureEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fs := 256.0
	n := 300 * int(fs)
	bg := synth.Background(rng, n, fs, synth.DefaultBackground())
	if err := synth.AddSeizure(rng, bg, 120*int(fs), 60*int(fs), fs, synth.DefaultSeizure()); err != nil {
		t.Fatal(err)
	}
	sg, err := Compute(bg, fs, 1024, 256, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	theta := sg.BandSeries(spectrum.Theta)
	// Mean ictal theta (frames ~125-170) must dwarf background (~0-100).
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(theta[125:170]) < 5*mean(theta[:100]) {
		t.Errorf("ictal theta %g vs background %g", mean(theta[125:170]), mean(theta[:100]))
	}
}

func TestLogCompress(t *testing.T) {
	const fs = 256.0
	xs := chirp(fs, 20*256, 10, 10)
	sg, err := Compute(xs, fs, 512, 256, window.Hann)
	if err != nil {
		t.Fatal(err)
	}
	db := sg.LogCompress(-60)
	maxDB := -1e9
	for _, row := range db {
		for _, v := range row {
			if v > maxDB {
				maxDB = v
			}
			if v < -60 || v > 0+1e-12 {
				t.Fatalf("dB value %g outside [-60, 0]", v)
			}
		}
	}
	if math.Abs(maxDB) > 1e-9 {
		t.Errorf("max should be 0 dB, got %g", maxDB)
	}
}

func TestLogCompressZeroSignal(t *testing.T) {
	sg := &Spectrogram{Power: [][]float64{{0, 0}}, BinWidth: 1}
	db := sg.LogCompress(-40)
	for _, v := range db[0] {
		if v != -40 {
			t.Error("zero power should clamp to the floor")
		}
	}
	if sg.Bins() != 2 {
		t.Error("Bins")
	}
	var empty Spectrogram
	if empty.Bins() != 0 {
		t.Error("empty Bins")
	}
}
