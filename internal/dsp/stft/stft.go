// Package stft computes short-time Fourier transforms (spectrograms),
// the standard way to visualize how an EEG's spectral content evolves
// through a seizure: ictal rhythms show up as a high-power low-frequency
// band with a characteristic downward chirp.
package stft

import (
	"errors"
	"fmt"
	"math"

	"selflearn/internal/dsp/spectrum"
	"selflearn/internal/dsp/window"
)

// Spectrogram is a time-frequency power map.
type Spectrogram struct {
	// Power[t][k] is the PSD of frame t at frequency bin k.
	Power [][]float64
	// BinWidth is the frequency resolution in Hz.
	BinWidth float64
	// HopSeconds is the frame spacing in seconds.
	HopSeconds float64
	// StartOffset is the center time of frame 0 in seconds.
	StartOffset float64
}

// Frames returns the number of time frames.
func (s *Spectrogram) Frames() int { return len(s.Power) }

// Bins returns the number of frequency bins per frame.
func (s *Spectrogram) Bins() int {
	if len(s.Power) == 0 {
		return 0
	}
	return len(s.Power[0])
}

// FrameTime returns the center time in seconds of frame t.
func (s *Spectrogram) FrameTime(t int) float64 {
	return s.StartOffset + float64(t)*s.HopSeconds
}

// Freq returns the frequency in Hz of bin k.
func (s *Spectrogram) Freq(k int) float64 { return float64(k) * s.BinWidth }

// BandSeries returns the band power of each frame over band b — the
// time series a seizure detector thresholds.
func (s *Spectrogram) BandSeries(b spectrum.Band) []float64 {
	out := make([]float64, s.Frames())
	for t, frame := range s.Power {
		var sum float64
		for k, p := range frame {
			f := s.Freq(k)
			if f >= b.Low && f < b.High {
				sum += p
			}
		}
		out[t] = sum * s.BinWidth
	}
	return out
}

// Compute calculates the spectrogram of xs sampled at fs Hz with frames
// of winSamples and a hop of hopSamples, tapered by taper.
func Compute(xs []float64, fs float64, winSamples, hopSamples int, taper window.Func) (*Spectrogram, error) {
	if len(xs) == 0 {
		return nil, errors.New("stft: empty signal")
	}
	if fs <= 0 {
		return nil, fmt.Errorf("stft: invalid sampling rate %g", fs)
	}
	if winSamples <= 0 || hopSamples <= 0 {
		return nil, fmt.Errorf("stft: invalid framing %d/%d", winSamples, hopSamples)
	}
	if len(xs) < winSamples {
		return nil, fmt.Errorf("stft: signal of %d samples shorter than one %d-sample frame", len(xs), winSamples)
	}
	sg := &Spectrogram{
		HopSeconds:  float64(hopSamples) / fs,
		StartOffset: float64(winSamples) / fs / 2,
	}
	for start := 0; start+winSamples <= len(xs); start += hopSamples {
		psd, err := spectrum.Periodogram(xs[start:start+winSamples], fs, taper)
		if err != nil {
			return nil, err
		}
		if sg.BinWidth == 0 {
			sg.BinWidth = psd.BinWidth
		}
		sg.Power = append(sg.Power, psd.Power)
	}
	return sg, nil
}

// DominantFrequency returns, per frame, the frequency of the strongest
// bin at or above minFreq — during a spike-wave discharge this traces
// the ictal chirp.
func (s *Spectrogram) DominantFrequency(minFreq float64) []float64 {
	out := make([]float64, s.Frames())
	for t, frame := range s.Power {
		best, bestP := math.NaN(), -1.0
		for k, p := range frame {
			f := s.Freq(k)
			if f < minFreq {
				continue
			}
			if p > bestP {
				bestP, best = p, f
			}
		}
		out[t] = best
	}
	return out
}

// LogCompress returns a copy of the power map compressed to decibels
// relative to the maximum bin, floored at floorDB (e.g. -60), which is
// what renderers display.
func (s *Spectrogram) LogCompress(floorDB float64) [][]float64 {
	maxP := 0.0
	for _, frame := range s.Power {
		for _, p := range frame {
			if p > maxP {
				maxP = p
			}
		}
	}
	out := make([][]float64, len(s.Power))
	for t, frame := range s.Power {
		row := make([]float64, len(frame))
		for k, p := range frame {
			if maxP <= 0 || p <= 0 {
				row[k] = floorDB
				continue
			}
			db := 10 * math.Log10(p/maxP)
			if db < floorDB {
				db = floorDB
			}
			row[k] = db
		}
		out[t] = row
	}
	return out
}
