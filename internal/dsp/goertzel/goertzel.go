// Package goertzel implements the Goertzel algorithm: single-bin DFT
// power evaluation in O(N) per frequency with two multiplies per sample.
// On FPU-less MCUs it is the standard way to compute a handful of band
// powers without paying for a full FFT, so it is the natural embedded
// backend for the paper's delta/theta band-power features.
package goertzel

import (
	"errors"
	"fmt"
	"math"
)

// Power returns |X(f)|² of xs at analysis frequency f Hz for sampling
// rate fs, equivalent to the squared magnitude of the corresponding DFT
// bin (when f aligns with a bin center).
func Power(xs []float64, fs, f float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("goertzel: empty signal")
	}
	if fs <= 0 {
		return 0, fmt.Errorf("goertzel: invalid sampling rate %g", fs)
	}
	if f < 0 || f > fs/2 {
		return 0, fmt.Errorf("goertzel: frequency %g outside [0, %g]", f, fs/2)
	}
	w := 2 * math.Pi * f / fs
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range xs {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Standard non-phase form.
	return s1*s1 + s2*s2 - coeff*s1*s2, nil
}

// BandPower integrates Goertzel bin powers across [low, high) Hz on the
// DFT grid of len(xs) samples, one-sided (bins folded ×2 except DC and
// Nyquist), scaled to match the PSD integral convention of
// internal/dsp/spectrum for a rectangular window: dividing by fs·N and
// multiplying by the bin width fs/N cancels to 1/N².
func BandPower(xs []float64, fs, low, high float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("goertzel: empty signal")
	}
	if fs <= 0 {
		return 0, fmt.Errorf("goertzel: invalid sampling rate %g", fs)
	}
	if low < 0 || high <= low || high > fs/2+1e-9 {
		return 0, fmt.Errorf("goertzel: invalid band [%g, %g)", low, high)
	}
	n := len(xs)
	binWidth := fs / float64(n)
	var sum float64
	for k := 0; k <= n/2; k++ {
		fk := float64(k) * binWidth
		if fk < low || fk >= high {
			continue
		}
		p, err := Power(xs, fs, fk)
		if err != nil {
			return 0, err
		}
		if k != 0 && k != n/2 {
			p *= 2
		}
		sum += p
	}
	return sum / float64(n) / float64(n), nil
}

// Detector is a streaming single-frequency Goertzel filter: feed samples,
// read the running power of a fixed-length block. It is the form an ISR
// on the wearable would run.
type Detector struct {
	coeff   float64
	s1, s2  float64
	block   int
	counted int
}

// NewDetector builds a streaming detector for frequency f at rate fs
// with the given block length.
func NewDetector(fs, f float64, block int) (*Detector, error) {
	if fs <= 0 || f < 0 || f > fs/2 {
		return nil, fmt.Errorf("goertzel: invalid configuration fs=%g f=%g", fs, f)
	}
	if block < 1 {
		return nil, fmt.Errorf("goertzel: invalid block %d", block)
	}
	return &Detector{coeff: 2 * math.Cos(2*math.Pi*f/fs), block: block}, nil
}

// Push feeds one sample. When the block completes it returns the block
// power and true, and resets for the next block.
func (d *Detector) Push(x float64) (float64, bool) {
	s0 := x + d.coeff*d.s1 - d.s2
	d.s2 = d.s1
	d.s1 = s0
	d.counted++
	if d.counted < d.block {
		return 0, false
	}
	p := d.s1*d.s1 + d.s2*d.s2 - d.coeff*d.s1*d.s2
	d.s1, d.s2, d.counted = 0, 0, 0
	return p, true
}
