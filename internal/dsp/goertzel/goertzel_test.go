package goertzel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"selflearn/internal/dsp/fft"
	"selflearn/internal/dsp/spectrum"
	"selflearn/internal/dsp/window"
)

func sine(freq, fs float64, n int, amp float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = amp * math.Sin(2*math.Pi*freq*float64(i)/fs)
	}
	return xs
}

func TestPowerMatchesFFTBin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 256
	const fs = 256.0
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	spec, err := fft.ForwardReal(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 7, 50, 128} {
		f := float64(k) * fs / n
		p, err := Power(xs, fs, f)
		if err != nil {
			t.Fatal(err)
		}
		want := cmplx.Abs(spec[k]) * cmplx.Abs(spec[k])
		if math.Abs(p-want) > 1e-6*math.Max(1, want) {
			t.Errorf("bin %d: goertzel %g vs fft %g", k, p, want)
		}
	}
}

func TestPowerTone(t *testing.T) {
	const fs = 256.0
	const n = 1024
	xs := sine(8, fs, n, 1) // exactly bin 32
	p, err := Power(xs, fs, 8)
	if err != nil {
		t.Fatal(err)
	}
	// |X(f0)|² of a unit sine over N samples is (N/2)².
	want := float64(n) * float64(n) / 4
	if math.Abs(p-want) > 1e-6*want {
		t.Errorf("tone power %g, want %g", p, want)
	}
	off, err := Power(xs, fs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if off > want/1e6 {
		t.Errorf("off-tone power %g should be negligible", off)
	}
}

func TestPowerErrors(t *testing.T) {
	if _, err := Power(nil, 256, 10); err == nil {
		t.Error("empty signal should fail")
	}
	if _, err := Power([]float64{1}, 0, 10); err == nil {
		t.Error("fs=0 should fail")
	}
	if _, err := Power([]float64{1}, 256, 200); err == nil {
		t.Error("f beyond Nyquist should fail")
	}
	if _, err := Power([]float64{1}, 256, -1); err == nil {
		t.Error("negative f should fail")
	}
}

func TestBandPowerMatchesPeriodogram(t *testing.T) {
	// With a rectangular window the Goertzel band integral equals the
	// periodogram band power.
	rng := rand.New(rand.NewSource(2))
	const fs = 256.0
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	psd, err := spectrum.Periodogram(xs, fs, window.Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []spectrum.Band{spectrum.Delta, spectrum.Theta, spectrum.Alpha} {
		gp, err := BandPower(xs, fs, b.Low, b.High)
		if err != nil {
			t.Fatal(err)
		}
		want := psd.BandPower(b)
		if math.Abs(gp-want) > 1e-6*math.Max(want, 1e-12) {
			t.Errorf("%s: goertzel %g vs periodogram %g", b.Name, gp, want)
		}
	}
}

func TestBandPowerErrors(t *testing.T) {
	xs := sine(6, 256, 512, 1)
	if _, err := BandPower(nil, 256, 4, 8); err == nil {
		t.Error("empty signal should fail")
	}
	if _, err := BandPower(xs, -1, 4, 8); err == nil {
		t.Error("bad fs should fail")
	}
	if _, err := BandPower(xs, 256, 8, 4); err == nil {
		t.Error("inverted band should fail")
	}
	if _, err := BandPower(xs, 256, 4, 300); err == nil {
		t.Error("band beyond Nyquist should fail")
	}
}

func TestDetectorStreaming(t *testing.T) {
	const fs = 256.0
	const block = 256
	det, err := NewDetector(fs, 8, block)
	if err != nil {
		t.Fatal(err)
	}
	xs := sine(8, fs, 3*block, 1)
	var powers []float64
	for _, x := range xs {
		if p, done := det.Push(x); done {
			powers = append(powers, p)
		}
	}
	if len(powers) != 3 {
		t.Fatalf("want 3 block results, got %d", len(powers))
	}
	// Each block of a unit 8 Hz tone carries (block/2)².
	want := float64(block) * float64(block) / 4
	for i, p := range powers {
		if math.Abs(p-want) > 0.05*want {
			t.Errorf("block %d power %g, want ≈%g", i, p, want)
		}
	}
	// A detector tuned away from the tone sees little power.
	away, err := NewDetector(fs, 30, block)
	if err != nil {
		t.Fatal(err)
	}
	var off float64
	for _, x := range xs[:block] {
		if p, done := away.Push(x); done {
			off = p
		}
	}
	if off > want/100 {
		t.Errorf("off-frequency detector power %g too high", off)
	}
}

func TestNewDetectorErrors(t *testing.T) {
	if _, err := NewDetector(0, 8, 10); err == nil {
		t.Error("fs=0 should fail")
	}
	if _, err := NewDetector(256, 300, 10); err == nil {
		t.Error("f beyond Nyquist should fail")
	}
	if _, err := NewDetector(256, 8, 0); err == nil {
		t.Error("block 0 should fail")
	}
}
