package fixedpoint

// Bins is a monotone quantization grid: strictly increasing cut points
// over one feature. Code maps a real value to its integer rank against
// the grid, which is the order-preserving (and therefore
// decision-exact) analog of affine Q15 quantization for threshold
// comparisons: for any cut index j,
//
//	x <= b[j]  ⟺  Code(x) <= j
//
// so a decision tree that stores threshold ranks instead of float
// thresholds reproduces every float comparison exactly from the int16
// codes. An affine scale/offset mapping cannot make that guarantee —
// rounding merges values on either side of a cut — which is why the
// quantized forest derives its grids here instead of via FromFloat.
type Bins []float64

// Code returns the number of cuts strictly below x. NaN maps to
// len(b): NaN fails every x <= cut comparison, so it must outrank every
// cut, exactly like the float path's "NaN falls right" semantics
// (±Inf need no special case — they order correctly on their own).
//
//selflearn:hotpath
func (b Bins) Code(x float64) int {
	if x != x {
		return len(b)
	}
	// Binary search for the first cut >= x; its index is #{c : c < x}.
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
