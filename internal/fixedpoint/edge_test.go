package fixedpoint

import (
	"math"
	"math/rand"
	"testing"
)

// TestFromFloatSaturationBoundary walks the exact edge of the Q15
// range: one ulp inside ±1 must still saturate (rounding carries it to
// ±2^15), and the largest representable magnitudes must convert
// without saturating.
func TestFromFloatSaturationBoundary(t *testing.T) {
	if got := FromFloat(math.Nextafter(1, 0)); got != MaxQ15 {
		t.Errorf("FromFloat(1-ulp) = %d, want MaxQ15 (rounds to 2^15)", got)
	}
	if got := FromFloat(math.Nextafter(-1, 0)); got != MinQ15 {
		t.Errorf("FromFloat(-1+ulp) = %d, want MinQ15 (rounds to -2^15)", got)
	}
	// Rounding is half away from zero: (2^15 - 1.5)/2^15 lands exactly on
	// the .5 and carries up to MaxQ15, while half a step further in it
	// stays at MaxQ15-1.
	if got := FromFloat((oneQ15 - 1.5) / oneQ15); got != MaxQ15 {
		t.Errorf("FromFloat at the half-step boundary = %d, want %d", got, MaxQ15)
	}
	if got := FromFloat((oneQ15 - 2.5) / oneQ15); got != MaxQ15-1 {
		t.Errorf("FromFloat half a step further in = %d, want %d", got, MaxQ15-1)
	}
	if got := FromFloat(float64(MaxQ15-1) / oneQ15); got != MaxQ15-1 {
		t.Errorf("largest exact non-saturating value = %d, want %d", got, MaxQ15-1)
	}
	if got := FromFloat(math.Inf(1)); got != MaxQ15 {
		t.Errorf("FromFloat(+Inf) = %d, want MaxQ15", got)
	}
	if got := FromFloat(math.Inf(-1)); got != MinQ15 {
		t.Errorf("FromFloat(-Inf) = %d, want MinQ15", got)
	}
}

// TestFromFloatNaNDeterministic: NaN must quantize to exactly 0 on
// every platform — the float→int conversion it would otherwise reach
// is implementation-defined in Go.
func TestFromFloatNaNDeterministic(t *testing.T) {
	if got := FromFloat(math.NaN()); got != 0 {
		t.Errorf("FromFloat(NaN) = %d, want 0", got)
	}
}

// TestQuantizeColumnsConstant: a zero-variance column must quantize to
// all-zero codes with the identity scale, whatever its level.
func TestQuantizeColumnsConstant(t *testing.T) {
	for _, level := range []float64{0, -7.25, 1e9, 5e-324} {
		q, scales, err := QuantizeColumns([][]float64{{level, level, level, level}}, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range q[0] {
			if v != 0 {
				t.Errorf("constant column at %g: code[%d] = %d, want 0", level, i, v)
			}
		}
		if scales[0] != 1 {
			t.Errorf("constant column at %g: scale = %g, want 1", level, scales[0])
		}
	}
}

// TestQuantizeColumnsNaN: a NaN anywhere in a column poisons its mean
// and deviation, so the whole column must degrade to deterministic
// zeros — never to platform-dependent garbage codes.
func TestQuantizeColumnsNaN(t *testing.T) {
	cols := [][]float64{
		{1, math.NaN(), 3, 4},                            // one bad sample
		{math.NaN(), math.NaN(), math.NaN(), math.NaN()}, // dead channel
		{0, 1, 2, 3}, // healthy neighbor
	}
	q, scales, err := QuantizeColumns(cols, 4)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		for i, v := range q[c] {
			if v != 0 {
				t.Errorf("NaN column %d: code[%d] = %d, want 0", c, i, v)
			}
		}
		if scales[c] != 1 {
			t.Errorf("NaN column %d: scale = %g, want 1", c, scales[c])
		}
	}
	// The healthy column must be unaffected by its poisoned neighbors.
	if q[2][0] >= 0 || q[2][3] <= 0 {
		t.Errorf("healthy column miscoded next to NaN columns: %v", q[2])
	}
}

// TestBinsCodeOrderExactness is the property the quantized forest
// stands on: for every cut index j, x <= b[j] ⟺ Code(x) <= j — probed
// at the cuts themselves, one ulp on either side, and the infinities.
func TestBinsCodeOrderExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		seen := map[float64]bool{}
		var b Bins
		for len(b) < n {
			c := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			if !seen[c] {
				seen[c] = true
				b = append(b, c)
			}
		}
		sortBins(b)
		probes := []float64{math.Inf(-1), math.Inf(1), 0}
		for _, c := range b {
			probes = append(probes, c, math.Nextafter(c, math.Inf(-1)), math.Nextafter(c, math.Inf(1)))
		}
		for _, x := range probes {
			code := b.Code(x)
			for j, cut := range b {
				if (x <= cut) != (code <= j) {
					t.Fatalf("trial %d: x=%g cut[%d]=%g: float says %v, code %d says %v",
						trial, x, j, cut, x <= cut, code, code <= j)
				}
			}
		}
		if got := b.Code(math.NaN()); got != len(b) {
			t.Fatalf("Code(NaN) = %d, want len(b)=%d (NaN outranks every cut)", got, len(b))
		}
	}
}

func sortBins(b Bins) {
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && b[j] < b[j-1]; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}

// TestBinsCodeEmpty: an empty grid codes everything (including NaN) to
// zero — a forest with no splits on a feature never consults it.
func TestBinsCodeEmpty(t *testing.T) {
	var b Bins
	for _, x := range []float64{0, -1e300, 1e300, math.Inf(1), math.Inf(-1), math.NaN()} {
		if got := b.Code(x); got != 0 {
			t.Errorf("empty Bins Code(%g) = %d, want 0", x, got)
		}
	}
}

// TestBinsCodeInfiniteCuts: ±Inf cut points (degenerate but legal
// thresholds) order correctly without special-casing.
func TestBinsCodeInfiniteCuts(t *testing.T) {
	b := Bins{math.Inf(-1), -1, 1, math.Inf(1)}
	cases := []struct {
		x    float64
		want int
	}{
		{math.Inf(-1), 0}, // not strictly below the -Inf cut
		{-5, 1},
		{-1, 1},
		{0, 2},
		{1, 2},
		{2, 3},
		{math.Inf(1), 3}, // below no cut except itself
		{math.NaN(), 4},
	}
	for _, tc := range cases {
		if got := b.Code(tc.x); got != tc.want {
			t.Errorf("Code(%g) = %d, want %d", tc.x, got, tc.want)
		}
	}
}
