// Package fixedpoint provides Q15/Q31 fixed-point arithmetic and a
// fixed-point implementation of Algorithm 1's distance kernel.
//
// The target MCU (STM32L151, ARM Cortex-M3) has no floating-point unit:
// a deployed implementation of the a-posteriori labeling algorithm runs
// in integer arithmetic. This package mirrors that implementation so the
// repository can quantify what 16-bit quantization does to the labeling
// decision (see the fixed-vs-float ablation bench and tests): z-scored
// features live comfortably in Q15's [-1, 1) range after scaling, and
// the argmax decision agrees with the float64 implementation on all
// tested inputs.
package fixedpoint

import (
	"errors"
	"fmt"
	"math"
)

// Q15 is a signed 16-bit fixed-point number with 15 fractional bits,
// representing values in [-1, 1).
type Q15 int16

// Q15 limits.
const (
	MaxQ15 = Q15(math.MaxInt16) // 0.999969...
	MinQ15 = Q15(math.MinInt16) // -1.0
	oneQ15 = 1 << 15
)

// FromFloat converts a float64 to Q15 with saturation. NaN maps to 0:
// without the explicit case it would fall through both saturation
// comparisons into a float→int16 conversion whose result Go leaves
// implementation-defined — a nondeterminism the decision-parity tests
// would eventually trip over on some platform.
func FromFloat(v float64) Q15 {
	scaled := math.Round(v * oneQ15)
	if scaled != scaled {
		return 0
	}
	if scaled >= math.MaxInt16 {
		return MaxQ15
	}
	if scaled <= math.MinInt16 {
		return MinQ15
	}
	return Q15(scaled)
}

// Float converts back to float64.
func (q Q15) Float() float64 { return float64(q) / oneQ15 }

// SatAdd returns a+b with saturation.
func SatAdd(a, b Q15) Q15 {
	s := int32(a) + int32(b)
	if s > math.MaxInt16 {
		return MaxQ15
	}
	if s < math.MinInt16 {
		return MinQ15
	}
	return Q15(s)
}

// SatSub returns a−b with saturation.
func SatSub(a, b Q15) Q15 {
	s := int32(a) - int32(b)
	if s > math.MaxInt16 {
		return MaxQ15
	}
	if s < math.MinInt16 {
		return MinQ15
	}
	return Q15(s)
}

// Mul returns the Q15 product with rounding (the classic
// (a*b + 2^14) >> 15 kernel).
func Mul(a, b Q15) Q15 {
	p := (int32(a)*int32(b) + (1 << 14)) >> 15
	if p > math.MaxInt16 {
		return MaxQ15
	}
	if p < math.MinInt16 {
		return MinQ15
	}
	return Q15(p)
}

// Abs returns |a| with MinQ15 saturating to MaxQ15 (as on real DSPs).
func Abs(a Q15) Q15 {
	if a == MinQ15 {
		return MaxQ15
	}
	if a < 0 {
		return -a
	}
	return a
}

// Q31 is a signed 32-bit accumulator with 31 fractional bits; sums of
// Q15 products accumulate here without per-step saturation, matching the
// Cortex-M3's 32-bit MAC usage.
type Q31 int64

// AccumulateAbsDiff adds |a−b| (Q15) into the accumulator at Q15 scale.
func AccumulateAbsDiff(acc Q31, a, b Q15) Q31 {
	d := int64(a) - int64(b)
	if d < 0 {
		d = -d
	}
	return acc + Q31(d)
}

// QuantizeColumns z-scales feature columns into Q15. Each column is
// scaled so that scaleSigma standard deviations map to full range; the
// per-column scale factors are returned so distances can be interpreted.
// Columns with zero variance quantize to all-zero.
func QuantizeColumns(cols [][]float64, scaleSigma float64) ([][]Q15, []float64, error) {
	if len(cols) == 0 {
		return nil, nil, errors.New("fixedpoint: no columns")
	}
	if scaleSigma <= 0 {
		return nil, nil, fmt.Errorf("fixedpoint: invalid sigma scale %g", scaleSigma)
	}
	out := make([][]Q15, len(cols))
	scales := make([]float64, len(cols))
	for f, col := range cols {
		q := make([]Q15, len(col))
		// Column mean and std (population).
		var mean float64
		for _, v := range col {
			mean += v
		}
		if len(col) > 0 {
			mean /= float64(len(col))
		}
		var ss float64
		for _, v := range col {
			d := v - mean
			ss += d * d
		}
		sd := 0.0
		if len(col) > 0 {
			sd = math.Sqrt(ss / float64(len(col)))
		}
		scale := 1.0
		if sd > 0 {
			scale = 1 / (scaleSigma * sd)
		}
		scales[f] = scale
		for i, v := range col {
			q[i] = FromFloat((v - mean) * scale)
		}
		out[f] = q
	}
	return out, scales, nil
}

// LabelResult is the outcome of the fixed-point labeling kernel.
type LabelResult struct {
	// Index is the argmax window position.
	Index int
	// Distances is the per-position distance in accumulator units
	// (comparable within one run, not across runs).
	Distances []int64
}

// Label runs Algorithm 1's distance scan in Q15 arithmetic on a
// row-major feature matrix X[L][F] with window length w. Features are
// quantized at scaleSigma standard deviations full range (4 is a good
// default: ±4σ covers z-scored EEG features; artifacts saturate, which
// only helps the argmax). The across-feature reduction uses the sum of
// squared per-feature averages (monotone with the float implementation's
// Euclidean norm).
func Label(X [][]float64, w int, scaleSigma float64) (*LabelResult, error) {
	if len(X) == 0 {
		return nil, errors.New("fixedpoint: empty matrix")
	}
	f := len(X[0])
	if f == 0 {
		return nil, errors.New("fixedpoint: no features")
	}
	for i, row := range X {
		if len(row) != f {
			return nil, fmt.Errorf("fixedpoint: ragged row %d", i)
		}
	}
	if w < 1 || w >= len(X) {
		return nil, fmt.Errorf("fixedpoint: invalid window %d for %d rows", w, len(X))
	}
	l := len(X)
	cols := make([][]float64, f)
	for fi := 0; fi < f; fi++ {
		col := make([]float64, l)
		for i := range X {
			col[i] = X[i][fi]
		}
		cols[fi] = col
	}
	qcols, _, err := QuantizeColumns(cols, scaleSigma)
	if err != nil {
		return nil, err
	}
	nPos := l - w + 1
	distances := make([]int64, nPos)
	// Per-feature distance for each window, then squared-sum reduction.
	// The O(L·W) incremental trick from internal/core applies equally in
	// fixed point; for the reference kernel we keep the straightforward
	// O(L·W·L/4) loop bounded by small eval sizes, but use the stride-4
	// subsampling exactly as the paper does.
	feat := make([]int64, f)
	for i := 0; i < nPos; i++ {
		for fi := range feat {
			feat[fi] = 0
		}
		for fi := 0; fi < f; fi++ {
			col := qcols[fi]
			var acc Q31
			for p := i; p < i+w; p++ {
				for k := 0; k < l; k += 4 {
					if k >= i && k < i+w {
						continue
					}
					acc = AccumulateAbsDiff(acc, col[p], col[k])
				}
			}
			feat[fi] = int64(acc)
		}
		// Normalize per feature by (window · outside count) in integer
		// math — pre-scaled by 16 to keep fractional precision — then
		// reduce with a sum of squares (monotone with the float
		// implementation's Euclidean norm).
		outCount := int64((l - w) / 4)
		if outCount == 0 {
			outCount = 1
		}
		var total int64
		for _, v := range feat {
			avg := (v * 16) / (int64(w) * outCount)
			total += avg * avg
		}
		distances[i] = total
	}
	best := 0
	for i, d := range distances {
		if d > distances[best] {
			best = i
		}
	}
	return &LabelResult{Index: best, Distances: distances}, nil
}
