package fixedpoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"selflearn/internal/core"
)

func TestFromFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 0.5, -0.5, 0.25, -0.999, 0.999} {
		q := FromFloat(v)
		if math.Abs(q.Float()-v) > 1.0/(1<<15) {
			t.Errorf("round trip of %g -> %g", v, q.Float())
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(2.0) != MaxQ15 {
		t.Error("2.0 should saturate high")
	}
	if FromFloat(-2.0) != MinQ15 {
		t.Error("-2.0 should saturate low")
	}
	if FromFloat(1.0) != MaxQ15 {
		t.Error("1.0 is just out of Q15 range and must saturate")
	}
	if FromFloat(-1.0) != MinQ15 {
		t.Error("-1.0 is exactly MinQ15")
	}
}

func TestSatAddSub(t *testing.T) {
	if SatAdd(MaxQ15, 1) != MaxQ15 {
		t.Error("add should saturate high")
	}
	if SatAdd(MinQ15, -1) != MinQ15 {
		t.Error("add should saturate low")
	}
	if SatSub(MinQ15, 1) != MinQ15 {
		t.Error("sub should saturate low")
	}
	if SatSub(MaxQ15, -1) != MaxQ15 {
		t.Error("sub should saturate high")
	}
	if SatAdd(FromFloat(0.25), FromFloat(0.5)) != FromFloat(0.75) {
		t.Error("plain addition wrong")
	}
}

func TestMul(t *testing.T) {
	a, b := FromFloat(0.5), FromFloat(0.5)
	if got := Mul(a, b).Float(); math.Abs(got-0.25) > 1e-4 {
		t.Errorf("0.5·0.5 = %g", got)
	}
	// MinQ15 · MinQ15 = +1.0 which must saturate.
	if Mul(MinQ15, MinQ15) != MaxQ15 {
		t.Error("(-1)·(-1) must saturate to MaxQ15")
	}
}

func TestMulCommutativeProperty(t *testing.T) {
	f := func(a, b int16) bool {
		return Mul(Q15(a), Q15(b)) == Mul(Q15(b), Q15(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAbs(t *testing.T) {
	if Abs(FromFloat(-0.5)) != FromFloat(0.5) {
		t.Error("abs wrong")
	}
	if Abs(MinQ15) != MaxQ15 {
		t.Error("abs(MinQ15) must saturate (DSP convention)")
	}
	if Abs(0) != 0 {
		t.Error("abs(0)")
	}
}

func TestAccumulateAbsDiff(t *testing.T) {
	var acc Q31
	acc = AccumulateAbsDiff(acc, FromFloat(0.5), FromFloat(-0.5))
	if int64(acc) != int64(FromFloat(0.5))-int64(FromFloat(-0.5)) {
		t.Errorf("acc = %d", acc)
	}
	acc2 := AccumulateAbsDiff(0, FromFloat(-0.5), FromFloat(0.5))
	if acc != acc2 {
		t.Error("abs diff must be symmetric")
	}
}

func TestQuantizeColumns(t *testing.T) {
	cols := [][]float64{
		{0, 1, 2, 3, 4},
		{5, 5, 5, 5, 5}, // constant
	}
	q, scales, err := QuantizeColumns(cols, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 || len(scales) != 2 {
		t.Fatal("shape")
	}
	for _, v := range q[1] {
		if v != 0 {
			t.Error("constant column should quantize to zero")
		}
	}
	// First column: symmetric around mean.
	if q[0][0] != -q[0][4] {
		t.Errorf("symmetric values should quantize symmetrically: %d vs %d", q[0][0], q[0][4])
	}
	if _, _, err := QuantizeColumns(nil, 4); err == nil {
		t.Error("empty columns should fail")
	}
	if _, _, err := QuantizeColumns(cols, 0); err == nil {
		t.Error("zero sigma scale should fail")
	}
}

func blockMatrix(seed int64, l, f, pos, w int, shift float64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, l)
	for i := range X {
		row := make([]float64, f)
		for j := range row {
			row[j] = rng.NormFloat64()
			if i >= pos && i < pos+w {
				row[j] += shift
			}
		}
		X[i] = row
	}
	return X
}

func TestLabelFindsBlock(t *testing.T) {
	X := blockMatrix(1, 300, 6, 110, 30, 3)
	res, err := Label(X, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Index - 110; d < -3 || d > 3 {
		t.Errorf("fixed-point argmax at %d, want ≈110", res.Index)
	}
	if len(res.Distances) != 300-30+1 {
		t.Errorf("distances length %d", len(res.Distances))
	}
}

func TestLabelAgreesWithFloat(t *testing.T) {
	// The headline property: Q15 quantization must not move the argmax
	// materially relative to the float64 implementation.
	for seed := int64(0); seed < 8; seed++ {
		l := 200
		w := 25
		pos := 40 + int(seed)*15
		X := blockMatrix(seed, l, 5, pos, w, 2.5)
		fx, err := Label(X, w, 4)
		if err != nil {
			t.Fatal(err)
		}
		fl, err := core.Label(X, w)
		if err != nil {
			t.Fatal(err)
		}
		if d := fx.Index - fl.Index; d < -2 || d > 2 {
			t.Errorf("seed %d: fixed %d vs float %d", seed, fx.Index, fl.Index)
		}
	}
}

func TestLabelSaturationHelpsArtifacts(t *testing.T) {
	// A gigantic artifact saturates in Q15 but must still dominate the
	// argmax (saturation clips magnitude, not ordering).
	X := blockMatrix(3, 300, 4, 0, 1, 0) // plain noise
	for i := 200; i < 230; i++ {
		for j := range X[i] {
			X[i][j] += 1000 // absurd artifact
		}
	}
	res, err := Label(X, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index < 190 || res.Index > 210 {
		t.Errorf("saturated artifact not found: argmax %d", res.Index)
	}
}

func TestLabelErrors(t *testing.T) {
	if _, err := Label(nil, 5, 4); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := Label([][]float64{{}, {}}, 1, 4); err == nil {
		t.Error("no features should fail")
	}
	if _, err := Label([][]float64{{1}, {1, 2}}, 1, 4); err == nil {
		t.Error("ragged rows should fail")
	}
	X := blockMatrix(4, 50, 2, 10, 5, 1)
	if _, err := Label(X, 0, 4); err == nil {
		t.Error("w=0 should fail")
	}
	if _, err := Label(X, 50, 4); err == nil {
		t.Error("w=L should fail")
	}
	if _, err := Label(X, 5, -1); err == nil {
		t.Error("negative sigma scale should fail")
	}
}

func TestQ31AccumulatorHeadroom(t *testing.T) {
	// Worst case: every |diff| is full scale (65535) for an hour-scale
	// scan (3600 windows × 900 outside points); the accumulator must not
	// overflow.
	var acc Q31
	const steps = 3600 * 900 / 4
	for i := 0; i < 1000; i++ {
		acc = AccumulateAbsDiff(acc, MaxQ15, MinQ15)
	}
	perStep := int64(acc) / 1000
	if perStep*steps < 0 {
		t.Error("Q31 accumulator would overflow on worst-case hour scan")
	}
}
