package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
	"time"

	"selflearn/internal/rt"
	"selflearn/internal/serve"
)

func testPrefilterCfg() serve.PrefilterConfig {
	return serve.PrefilterConfig{
		Gate:           rt.GateConfig{Factor: 2.5, HistoryWindows: 64},
		AuditEvery:     32,
		DriftThreshold: 3,
	}
}

// TestPrefilterFramesRoundTrip: the v5 prefilter family must decode
// back field-for-field, AuditPush with bit-identical samples.
func TestPrefilterFramesRoundTrip(t *testing.T) {
	cfg := testPrefilterCfg()
	m := decodeOne(t, encode(t, func(e *Encoder) error { return e.PrefilterDecl("chb01", cfg) }))
	if m.Kind != KindPrefilterDecl || m.Patient != "chb01" || m.Prefilter != cfg {
		t.Fatalf("prefilter-decl = %+v", m)
	}

	d := serve.Digest{Windows: 59, SumAmp: 12.5, MinAmp: 0.0625, MaxAmp: 1.75}
	m = decodeOne(t, encode(t, func(e *Encoder) error { return e.PushDigest("chb01", d) }))
	if m.Kind != KindPushDigest || m.Patient != "chb01" || m.Digest != d {
		t.Fatalf("push-digest = %+v", m)
	}

	c0 := []float64{1.5, -2.25, math.Pi}
	c1 := []float64{0, 1e-300, 4}
	m = decodeOne(t, encode(t, func(e *Encoder) error { return e.AuditPush("chb01", c0, c1) }))
	if m.Kind != KindAuditPush || m.Patient != "chb01" {
		t.Fatalf("audit-push = %+v", m)
	}
	for i := range c0 {
		if math.Float64bits(m.C0[i]) != math.Float64bits(c0[i]) ||
			math.Float64bits(m.C1[i]) != math.Float64bits(c1[i]) {
			t.Fatalf("audit-push samples corrupted at %d: %v / %v", i, m.C0, m.C1)
		}
	}

	m = decodeOne(t, encode(t, func(e *Encoder) error { return e.AuditRequest("ward-3/bed 12") }))
	if m.Kind != KindAuditRequest || m.Patient != "ward-3/bed 12" {
		t.Fatalf("audit-request = %+v", m)
	}
}

// TestPrefilterVersionGate: every v5 frame must be refused with
// ErrVersionGated against a v4 (or v3) peer, and nothing may reach the
// wire — a v4 shardd would kill the connection on an unknown kind.
func TestPrefilterVersionGate(t *testing.T) {
	for _, v := range []uint32{3, 4} {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		e.SetVersion(v)
		steps := map[string]func() error{
			"PrefilterDecl": func() error { return e.PrefilterDecl("p", testPrefilterCfg()) },
			"PushDigest":    func() error { return e.PushDigest("p", serve.Digest{Windows: 1}) },
			"AuditPush":     func() error { return e.AuditPush("p", []float64{1}, []float64{2}) },
			"AuditRequest":  func() error { return e.AuditRequest("p") },
		}
		for name, fn := range steps {
			if err := fn(); err != ErrVersionGated {
				t.Fatalf("v%d %s err = %v, want ErrVersionGated", v, name, err)
			}
		}
		e.Flush()
		if buf.Len() != 0 {
			t.Fatalf("v%d-pinned encoder leaked %d bytes of v5 frames", v, buf.Len())
		}
		if e.BytesWritten() != 0 {
			t.Fatalf("v%d-pinned encoder counted %d bytes it never wrote", v, e.BytesWritten())
		}
	}
}

// TestStatsCrossVersionLayouts: Stats frames must cross in the layout
// the negotiated version defines — v5 peers exchange the suppression
// and audit counters, v4/v3 peers the pre-v5 layout with those fields
// zero on arrival, in both cases with every other field intact.
func TestStatsCrossVersionLayouts(t *testing.T) {
	full := serve.Stats{
		Sessions: 3, Batches: 100, Windows: 96, Alarms: 12,
		WindowsSuppressed: 5000, AuditSamples: 40, AuditDisagreements: 2,
		PrefilterDrift: 1, EventsDropped: 9, QueueDepth: 17,
		Uptime: 90 * time.Second,
	}
	for _, v := range []uint32{3, 4, 5} {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		e.SetVersion(v)
		if err := e.Stats(7, full); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		d := NewDecoder(&buf)
		d.SetVersion(v)
		m, err := d.Next()
		if err != nil {
			t.Fatalf("v%d stats: %v", v, err)
		}
		want := full
		if v < 5 {
			want.WindowsSuppressed = 0
			want.AuditSamples = 0
			want.AuditDisagreements = 0
			want.PrefilterDrift = 0
		}
		if m.Kind != KindStats || m.Token != 7 || m.Stats != want {
			t.Fatalf("v%d stats = %+v, want %+v", v, m.Stats, want)
		}
	}
}

// TestStatsVersionMismatchRejected: a decoder pinned to the wrong
// version must not silently misparse a Stats frame — the length checks
// catch the layout difference.
func TestStatsVersionMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf) // v5 layout
	if err := e.Stats(7, serve.Stats{Sessions: 1}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	d.SetVersion(4) // expects the shorter layout
	if _, err := d.Next(); err == nil {
		t.Fatal("v4-pinned decoder accepted a v5 stats frame")
	}

	buf.Reset()
	e = NewEncoder(&buf)
	e.SetVersion(4)
	if err := e.Stats(7, serve.Stats{Sessions: 1}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if _, err := NewDecoder(bytes.NewReader(buf.Bytes())).Next(); err == nil {
		t.Fatal("v5 decoder accepted a v4 stats frame")
	}
}

// TestPrefilterTruncatedPayloadRejected: cut v5 frame bodies must
// error, mirroring the PushQ truncation test.
func TestPrefilterTruncatedPayloadRejected(t *testing.T) {
	frames := [][]byte{
		encode(t, func(e *Encoder) error { return e.PrefilterDecl("chb01", testPrefilterCfg()) }),
		encode(t, func(e *Encoder) error {
			return e.PushDigest("chb01", serve.Digest{Windows: 9, SumAmp: 1, MinAmp: 0.5, MaxAmp: 2})
		}),
		encode(t, func(e *Encoder) error { return e.AuditPush("chb01", []float64{1, 2}, []float64{3, 4}) }),
	}
	for fi, raw := range frames {
		for cut := 5; cut < len(raw)-1; cut += 2 {
			trunc := append([]byte(nil), raw[:cut]...)
			if _, err := NewDecoder(bytes.NewReader(trunc)).Next(); err == nil {
				t.Fatalf("frame %d: decoder accepted a body truncated at %d", fi, cut)
			}
		}
	}
}

// TestDigestZeroAllocSteadyState: the digest is the stream's steady
// state under prefiltering — it must frame without garbage, like Push.
func TestDigestZeroAllocSteadyState(t *testing.T) {
	e := NewEncoder(io.Discard)
	d := serve.Digest{Windows: 60, SumAmp: 3, MinAmp: 0.01, MaxAmp: 0.2}
	if err := e.PushDigest("p", d); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.PushDigest("p", d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 { // same bufio slack tolerance as TestEncoderReusesScratch
		t.Fatalf("PushDigest allocates %.1f objects per frame in steady state", allocs)
	}
}

// TestBytesWritten: the uplink accounting must equal the exact framed
// bytes (headers included) — the witness's wire-byte ratios depend on it.
func TestBytesWritten(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Hello(); err != nil {
		t.Fatal(err)
	}
	if err := e.PushDigest("p", serve.Digest{Windows: 1, SumAmp: 1, MinAmp: 1, MaxAmp: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := e.BytesWritten(), uint64(buf.Len()); got != want {
		t.Fatalf("BytesWritten = %d, wire carried %d", got, want)
	}
}
