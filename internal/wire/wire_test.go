package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"testing"
	"time"

	"selflearn/internal/rt"
	"selflearn/internal/serve"
)

// encode runs fn against a fresh encoder and returns the framed bytes.
func encode(t *testing.T, fn func(*Encoder) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := fn(e); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeOne(t *testing.T, raw []byte) Msg {
	t.Helper()
	m, err := NewDecoder(bytes.NewReader(raw)).Next()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// allKinds enumerates every named frame kind by probing String()'s
// default branch, so tests built on it cannot silently fall behind a
// kind added to the codec.
func allKinds() []Kind {
	var out []Kind
	for k := 1; k < 256; k++ {
		if Kind(k).String() != fmt.Sprintf("kind(%d)", k) {
			out = append(out, Kind(k))
		}
	}
	return out
}

// kindFrames maps every frame kind to one canonical encode call. Both
// the parity test and the fuzz corpus derive from this table, so a new
// kind must land here to land at all.
func kindFrames() map[Kind]func(*Encoder) error {
	ev := serve.Event{
		Kind: serve.EventRetrain, Patient: "chb01",
		Time: time.Unix(0, 1712345678901234567), Seq: 9, Version: 2,
		Err: errors.New("labeling failed"),
	}
	return map[Kind]func(*Encoder) error{
		KindHello: func(e *Encoder) error { return e.Hello() },
		// 1e-300 is off any uint16 grid spanning the channel, so this
		// batch cannot quantize and the float layout is guaranteed.
		KindPush: func(e *Encoder) error { return e.Push("chb01", []float64{1, 2.5, -3}, []float64{0, 1e-300, 9}) },
		// Both channels sit on uint16 grids (integers; quarters), so a
		// v4 encoder auto-selects the quantized layout.
		KindPushQ: func(e *Encoder) error {
			return e.Push("chb01", []float64{1, 2, 3}, []float64{0.25, 0.5, 0.75})
		},
		KindConfirm:  func(e *Encoder) error { return e.Confirm("ward-3/bed 12") },
		KindEvent:    func(e *Encoder) error { return e.Event(ev) },
		KindStatsReq: func(e *Encoder) error { return e.StatsReq(7) },
		KindStats:    func(e *Encoder) error { return e.Stats(7, serve.Stats{Sessions: 3, Windows: 96, Alarms: 2}) },
		KindPing:     func(e *Encoder) error { return e.Ping(99) },
		KindPong:     func(e *Encoder) error { return e.Pong(99) },
		KindModelGet: func(e *Encoder) error { return e.ModelGet(11, "chb01") },
		KindModelPut: func(e *Encoder) error {
			return e.ModelPut(11, "chb01", 5, []byte(`{"trees":[],"oob_error":0.5}`))
		},
		KindModelAnnounce: func(e *Encoder) error { return e.ModelAnnounce("chb01", 5) },
		KindPrefilterDecl: func(e *Encoder) error {
			return e.PrefilterDecl("chb01", serve.PrefilterConfig{
				Gate:       rt.GateConfig{Factor: 2.5, HistoryWindows: 64},
				AuditEvery: 32, DriftThreshold: 3,
			})
		},
		KindPushDigest: func(e *Encoder) error {
			return e.PushDigest("chb01", serve.Digest{Windows: 17, SumAmp: 4.25, MinAmp: 0.125, MaxAmp: 0.75})
		},
		KindAuditPush: func(e *Encoder) error {
			return e.AuditPush("chb01", []float64{1, 2.5, -3}, []float64{0, 1e-300, 9})
		},
		KindAuditRequest: func(e *Encoder) error { return e.AuditRequest("chb01") },
	}
}

// TestFrameKindParity round-trips one frame of every kind the codec
// names: each must have a canonical encoding in kindFrames, and each
// must decode back to the same kind. This is the test-side twin of the
// wirebounds analyzer's encode/decode switch parity check.
func TestFrameKindParity(t *testing.T) {
	frames := kindFrames()
	kinds := allKinds()
	if len(frames) != len(kinds) {
		t.Errorf("kindFrames has %d entries for %d named kinds", len(frames), len(kinds))
	}
	for _, k := range kinds {
		fn, ok := frames[k]
		if !ok {
			t.Errorf("kind %v has no canonical frame in kindFrames", k)
			continue
		}
		m := decodeOne(t, encode(t, fn))
		if m.Kind != k {
			t.Errorf("frame encoded as %v decoded as %v", k, m.Kind)
		}
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	ts := time.Unix(0, 1712345678901234567)
	stats := serve.Stats{
		Sessions: 3, StreamsOpen: 4, SessionsCreated: 5, SessionsEvicted: 1,
		Batches: 100, BatchesDropped: 2, BatchesShed: 7, Windows: 96,
		WindowsPerSec: 31148.5, Alarms: 12, Confirms: 3, ConfirmsRejected: 1,
		ConfirmsDropped: 1, Retrains: 3, RetrainErrors: 1, StreamErrors: 0,
		ModelsCached: 3, StoreErrors: 2, EventsDropped: 9, QueueDepth: 17,
		Uptime: 90 * time.Second,
	}
	steps := []func() error{
		e.Hello,
		func() error { return e.Push("ward-3/bed 12", []float64{1.5, -2.25, math.Pi}, []float64{0, 1e-300, 4}) },
		func() error { return e.Confirm("chb01") },
		func() error {
			return e.Event(serve.Event{Kind: serve.EventAlarm, Patient: "chb01", Time: ts, Seq: 42})
		},
		func() error {
			return e.Event(serve.Event{Kind: serve.EventRetrain, Patient: "p", Time: ts, Seq: 43, Err: errors.New("labeling failed")})
		},
		func() error {
			return e.Event(serve.Event{Kind: serve.EventModelUpdated, Patient: "chb01", Time: ts, Seq: 44, Version: 3})
		},
		func() error { return e.StatsReq(7) },
		func() error { return e.Stats(7, stats) },
		func() error { return e.Ping(99) },
		func() error { return e.Pong(99) },
		func() error { return e.ModelGet(11, "chb01") },
		func() error { return e.ModelPut(11, "chb01", 5, []byte(`{"trees":[]}`)) },
		func() error { return e.ModelPut(0, "chb02", 0, nil) }, // "no model" reply
		func() error { return e.ModelAnnounce("chb01", 5) },
	}
	for i, fn := range steps {
		if err := fn(); err != nil {
			t.Fatalf("encode step %d: %v", i, err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	d := NewDecoder(&buf)
	next := func() Msg {
		t.Helper()
		m, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if m := next(); m.Kind != KindHello || m.Version != Version {
		t.Fatalf("hello = %+v", m)
	}
	m := next()
	if m.Kind != KindPush || m.Patient != "ward-3/bed 12" {
		t.Fatalf("push = %+v", m)
	}
	if len(m.C0) != 3 || m.C0[2] != math.Pi || len(m.C1) != 3 || m.C1[1] != 1e-300 {
		t.Fatalf("push channels = %v / %v", m.C0, m.C1)
	}
	if m := next(); m.Kind != KindConfirm || m.Patient != "chb01" {
		t.Fatalf("confirm = %+v", m)
	}
	m = next()
	if m.Kind != KindEvent || m.Event.Kind != serve.EventAlarm || m.Event.Patient != "chb01" ||
		!m.Event.Time.Equal(ts) || m.Event.Seq != 42 || m.Event.Err != nil {
		t.Fatalf("alarm event = %+v", m.Event)
	}
	m = next()
	if m.Event.Err == nil || m.Event.Err.Error() != "labeling failed" {
		t.Fatalf("retrain event error = %v", m.Event.Err)
	}
	m = next()
	if m.Event.Kind != serve.EventModelUpdated || m.Event.Version != 3 || m.Event.Seq != 44 {
		t.Fatalf("model-updated event = %+v", m.Event)
	}
	if m := next(); m.Kind != KindStatsReq || m.Token != 7 {
		t.Fatalf("stats-req = %+v", m)
	}
	m = next()
	if m.Kind != KindStats || m.Token != 7 || m.Stats != stats {
		t.Fatalf("stats = %+v, want %+v", m.Stats, stats)
	}
	if m := next(); m.Kind != KindPing || m.Token != 99 {
		t.Fatalf("ping = %+v", m)
	}
	if m := next(); m.Kind != KindPong || m.Token != 99 {
		t.Fatalf("pong = %+v", m)
	}
	if m := next(); m.Kind != KindModelGet || m.Token != 11 || m.Patient != "chb01" {
		t.Fatalf("model-get = %+v", m)
	}
	m = next()
	if m.Kind != KindModelPut || m.Token != 11 || m.Patient != "chb01" ||
		m.ModelVersion != 5 || string(m.Model) != `{"trees":[]}` {
		t.Fatalf("model-put = %+v", m)
	}
	m = next()
	if m.Kind != KindModelPut || m.Patient != "chb02" || m.ModelVersion != 0 || len(m.Model) != 0 {
		t.Fatalf("empty model-put = %+v", m)
	}
	if m := next(); m.Kind != KindModelAnnounce || m.Patient != "chb01" || m.ModelVersion != 5 {
		t.Fatalf("model-announce = %+v", m)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("after last frame err = %v, want io.EOF", err)
	}
}

// TestModelPutPayloadOutlivesDecoderBuffer: the checkpoint payload must
// be copied out of the decoder's reusable frame buffer — a replica held
// across the next frame would otherwise be silently corrupted.
func TestModelPutPayloadOutlivesDecoderBuffer(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	payload := []byte(`{"trees":[1,2,3]}`)
	if err := e.ModelPut(1, "p", 2, payload); err != nil {
		t.Fatal(err)
	}
	big := make([]float64, 1024)
	if err := e.Push("p", big, big); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(&buf)
	m, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err != nil { // overwrite the frame buffer
		t.Fatal(err)
	}
	if string(m.Model) != string(payload) {
		t.Fatalf("model payload corrupted after next frame: %q", m.Model)
	}
}

func TestEmptyBatchRoundTrips(t *testing.T) {
	// Empty channels quantize trivially, so a v4 encoder frames them as
	// PushQ; a v3-pinned encoder must still produce the float layout.
	m := decodeOne(t, encode(t, func(e *Encoder) error { return e.Push("p", nil, nil) }))
	if m.Kind != KindPushQ || len(m.C0) != 0 || len(m.C1) != 0 {
		t.Fatalf("empty push = %+v", m)
	}
	m = decodeOne(t, encode(t, func(e *Encoder) error {
		e.SetVersion(3)
		return e.Push("p", nil, nil)
	}))
	if m.Kind != KindPush || len(m.C0) != 0 || len(m.C1) != 0 {
		t.Fatalf("empty v3 push = %+v", m)
	}
}

// TestCutMidFrame: a connection dying inside a frame surfaces as
// ErrUnexpectedEOF, distinguishable from a clean close on a boundary.
func TestCutMidFrame(t *testing.T) {
	raw := encode(t, func(e *Encoder) error { return e.Push("p", []float64{1, 2, 3}, []float64{4, 5, 6}) })
	for _, cut := range []int{2, 5, len(raw) - 1} {
		if _, err := NewDecoder(bytes.NewReader(raw[:cut])).Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestCorruptFramesRejected: lying length fields inside the body must
// produce an error, not a crash or a silent misparse.
func TestCorruptFramesRejected(t *testing.T) {
	raw := encode(t, func(e *Encoder) error { return e.Push("patient", []float64{1}, []float64{2}) })
	// Inflate the patient-string length beyond the body.
	corrupt := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(corrupt[5:], 1<<30) // body starts at 4, kind byte at 4, str len at 5
	if _, err := NewDecoder(bytes.NewReader(corrupt)).Next(); err == nil {
		t.Fatal("decoder accepted a string length beyond the frame")
	}
	// Unknown kind byte.
	unknown := append([]byte(nil), raw...)
	unknown[4] = 0xEE
	if _, err := NewDecoder(bytes.NewReader(unknown)).Next(); err == nil {
		t.Fatal("decoder accepted an unknown frame kind")
	}
	// Trailing garbage inside a framed body.
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Ping(1); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	padded := buf.Bytes()
	padded = append(padded, 0xFF)
	binary.LittleEndian.PutUint32(padded[0:], uint32(len(padded)-4))
	if _, err := NewDecoder(bytes.NewReader(padded)).Next(); err == nil {
		t.Fatal("decoder accepted trailing bytes in a frame body")
	}
}

// TestOversizedFrameRejected: a hostile or corrupt length prefix must
// be refused before any allocation of that size.
func TestOversizedFrameRejected(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := NewDecoder(bytes.NewReader(hdr[:])).Next(); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestEncoderReusesScratch: steady-state push encoding must not grow
// garbage per batch — the scratch body buffer is reused once sized.
func TestEncoderReusesScratch(t *testing.T) {
	e := NewEncoder(io.Discard)
	c0, c1 := make([]float64, 256), make([]float64, 256)
	if err := e.Push("p", c0, c1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.Push("p", c0, c1); err != nil {
			t.Fatal(err)
		}
	})
	// One alloc of slack is tolerated for bufio internals; the float
	// payload itself (4 KB/batch) must not be reallocated.
	if allocs > 1 {
		t.Fatalf("Push allocates %.1f objects per batch in steady state", allocs)
	}
}
